// Package wsinterop reproduces "Understanding Interoperability Issues
// of Web Service Frameworks" (Elia, Laranjeiro, Vieira — DSN 2014): a
// large experimental campaign testing whether the client-side and
// server-side subsystems of popular SOAP web service frameworks can
// actually inter-operate.
//
// The implementation lives under internal/ (see DESIGN.md for the
// system inventory); cmd/interop runs the campaign and regenerates the
// paper's tables and figures, and bench_test.go in this directory
// holds the benchmark harness — one benchmark per table and figure
// plus the ablations called out in DESIGN.md §6.
package wsinterop
