// Crossplatform: the paper's §IV.B drill-downs. Each problematic
// class from the technical narratives is pushed through all eleven
// client frameworks, printing exactly where inter-operation breaks —
// including the same-framework failures (.NET clients against WCF).
//
// Run with:
//
//	go run ./examples/crossplatform
package main

import (
	"fmt"
	"log"

	"wsinterop/internal/campaign"
	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

// drilldown pairs a server framework with one narrative class.
type drilldown struct {
	serverPick func(...framework.ServerOption) framework.ServerFramework
	class      string
	note       string
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cases := []drilldown{
		{framework.NewMetroServer, typesys.JavaW3CEndpointReference,
			"dangling WS-Addressing reference; fails WS-I; breaks most generators"},
		{framework.NewMetroServer, typesys.JavaSimpleDateFormat,
			"vendor facet; fails WS-I; breaks the .NET languages and gSOAP"},
		{framework.NewJBossWSServer, typesys.JavaResponse,
			"zero-operation WSDL; passes WS-I yet is unusable"},
		{framework.NewMetroServer, "java.util.concurrent.AbstractHandlerException",
			"throwable family; Axis1 misnames the fault-wrapper member"},
		{framework.NewMetroServer, typesys.JavaXMLGregorianCalendar,
			"case-distinct properties; Axis2 collapses them into duplicate locals"},
		{framework.NewWCFServer, typesys.CSharpDataTable,
			"wildcard-only DataSet WSDL; WS-I compliant, breaks Java generators"},
		{framework.NewWCFServer, typesys.CSharpSocketError,
			"case-distinct properties on .NET; Axis2 compile error"},
	}

	clients := framework.Clients()
	for _, c := range cases {
		server := c.serverPick()
		cls, err := lookup(server, c.class)
		if err != nil {
			return err
		}
		doc, err := server.Publish(services.ForClass(cls))
		if err != nil {
			return fmt.Errorf("publish %s on %s: %w", cls.Name, server.Name(), err)
		}
		raw, err := wsdl.Marshal(doc)
		if err != nil {
			return err
		}
		rep := wsi.NewChecker().Check(doc)

		fmt.Printf("%s on %s\n", cls.Name, server.Name())
		fmt.Printf("  %s\n", c.note)
		fmt.Printf("  WS-I compliant: %v, findings: %d\n", rep.Compliant(), len(rep.Violations))
		for _, client := range clients {
			t := campaign.RunTest(client, campaign.PublishedService{
				Server: server.Name(), Class: cls.Name, Doc: raw,
			})
			fmt.Printf("  %-18s generation %-7s", client.Name(), verdict(t.Gen))
			if t.CompileRan {
				fmt.Printf(" verification %s", verdict(t.Compile))
			} else {
				fmt.Print(" verification skipped")
			}
			fmt.Println()
		}
		fmt.Println()
	}
	return nil
}

func lookup(server framework.ServerFramework, name string) (*typesys.Class, error) {
	cat := typesys.JavaCatalog()
	if server.Language() == typesys.CSharp {
		cat = typesys.CSharpCatalog()
	}
	if cls, ok := cat.Lookup(name); ok {
		return cls, nil
	}
	// The throwable drill-down uses a generated family name; fall back
	// to the first throwable in the catalog.
	for i := range cat.Classes {
		if cat.Classes[i].Hints.Has(typesys.HintThrowable) {
			return &cat.Classes[i], nil
		}
	}
	return nil, fmt.Errorf("class %q not found", name)
}

func verdict(o campaign.Outcome) string {
	switch {
	case o.Error:
		return "ERROR"
	case o.Warning:
		return "warning"
	default:
		return "ok"
	}
}
