// Quickstart: the three tested inter-operation steps for a single
// service, end to end through the public pipeline:
//
//  1. a server framework publishes the WSDL for an echo service,
//  2. the WS-I checker audits it,
//  3. a client framework generates artifacts from the document,
//  4. the artifacts are compiled.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"wsinterop/internal/artifact"
	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Preparation Phase: pick a native class and create its echo
	// service (one operation, same input and output type).
	cat := typesys.JavaCatalog()
	cls, ok := cat.Lookup("java.text.SimpleDateFormat")
	if !ok {
		return fmt.Errorf("class not found in catalog")
	}
	def := services.ForClass(cls)
	fmt.Printf("service: %s (operation %q, parameter %s)\n\n", def.Name, def.OperationName, cls.Name)
	fmt.Println(services.SourceSkeleton(def))

	// Step 1: Service Description Generation on Metro / GlassFish.
	server := framework.NewMetroServer()
	doc, err := server.Publish(def)
	if err != nil {
		return fmt.Errorf("publish: %w", err)
	}
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		return err
	}
	fmt.Printf("step 1: %s published a %d-byte WSDL\n", server.Name(), len(raw))

	// WS-I compliance check (the paper's description-step triage).
	rep := wsi.NewChecker().Check(doc)
	fmt.Printf("        WS-I compliant: %v (%d findings)\n", rep.Compliant(), len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("        - %s\n", v)
	}

	// Step 2: Client Artifact Generation with two different client
	// frameworks; SimpleDateFormat is one of the paper's §IV.B
	// narratives — Metro's own client consumes it, .NET's does not.
	for _, client := range []framework.ClientFramework{
		framework.NewMetroClient(),
		framework.NewDotNetClient(artifact.LangCSharp),
	} {
		gen := client.Generate(raw)
		fmt.Printf("step 2: %s (%s): failed=%v, %d issue(s)\n",
			client.Name(), client.Tool(), gen.Failed(), len(gen.Issues))
		for _, issue := range gen.Issues {
			fmt.Printf("        - %s\n", issue)
		}
		if gen.Unit == nil {
			fmt.Println("        no artifacts; compilation skipped")
			continue
		}

		// Step 3: Client Artifact Compilation.
		diags := client.Verify(gen.Unit)
		fmt.Printf("step 3: compiled %d classes: %d error(s), %d warning(s)\n",
			len(gen.Unit.Classes), len(artifact.Errors(diags)), len(artifact.Warnings(diags)))
	}
	return nil
}
