// Wsiaudit: the Service Description Generation step as a WS-I audit.
// Every class of both catalogs is deployed on every server framework;
// published WSDLs are checked against the profile (plus the extended
// zero-operation assertion) and the audit prints the per-assertion
// violation census — the data behind the paper's finding that servers
// happily publish non-compliant descriptions.
//
// Run with:
//
//	go run ./examples/wsiaudit
package main

import (
	"fmt"
	"log"
	"sort"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsi"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	checker := wsi.NewChecker()
	for _, server := range framework.Servers() {
		cat := typesys.JavaCatalog()
		if server.Language() == typesys.CSharp {
			cat = typesys.CSharpCatalog()
		}

		published, flagged, nonCompliant := 0, 0, 0
		byAssertion := make(map[string]int, 8)
		var flaggedClasses []string

		for i := range cat.Classes {
			doc, err := server.Publish(services.ForClass(&cat.Classes[i]))
			if err != nil {
				continue // not deployable: filtered at this step
			}
			published++
			rep := checker.Check(doc)
			if len(rep.Violations) == 0 {
				continue
			}
			flagged++
			if !rep.Compliant() {
				nonCompliant++
			}
			if len(flaggedClasses) < 6 {
				flaggedClasses = append(flaggedClasses, cat.Classes[i].Name)
			}
			seen := make(map[string]bool, len(rep.Violations))
			for _, v := range rep.Violations {
				if !seen[v.Assertion.ID] {
					seen[v.Assertion.ID] = true
					byAssertion[v.Assertion.ID]++
				}
			}
		}

		fmt.Printf("%s (%s): %d/%d published, %d flagged (%d fail the official profile)\n",
			server.Name(), server.Server(), published, cat.Len(), flagged, nonCompliant)
		ids := make([]string, 0, len(byAssertion))
		for id := range byAssertion {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			fmt.Printf("  %-8s violated by %d service(s)\n", id, byAssertion[id])
		}
		for _, c := range flaggedClasses {
			fmt.Printf("  e.g. %s\n", c)
		}
		fmt.Println()
	}
	return nil
}
