// Communication: the paper's announced future work — steps 4 and 5
// (Communication and Execution) — implemented and demonstrated. A
// clean service is published, deployed on a live loopback SOAP host,
// and invoked through a real HTTP round trip; a second invocation
// shows fault handling for an unknown operation.
//
// Run with:
//
//	go run ./examples/communication
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/soap"
	"wsinterop/internal/transport"
	"wsinterop/internal/typesys"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Steps 1–3 happen statically (see quickstart); here we pick a
	// clean class, publish it and go live.
	cat := typesys.JavaCatalog()
	var cls *typesys.Class
	for i := range cat.Classes {
		if cat.Classes[i].Kind == typesys.KindBean && cat.Classes[i].Hints == 0 {
			cls = &cat.Classes[i]
			break
		}
	}
	if cls == nil {
		return errors.New("no clean bean class in catalog")
	}
	def := services.ForClass(cls)

	server := framework.NewMetroServer()
	doc, err := server.Publish(def)
	if err != nil {
		return err
	}

	host := transport.NewHost()
	ep, err := host.DeployWSDL(doc)
	if err != nil {
		return err
	}
	base, err := host.Start()
	if err != nil {
		return err
	}
	defer func() {
		if err := host.Shutdown(context.Background()); err != nil {
			log.Printf("host shutdown: %v", err)
		}
	}()
	fmt.Printf("deployed %s at %s%s\n", def.Name, base, ep.Path)

	// Step 4 (Communication) + step 5 (Execution): live SOAP echo.
	client := transport.NewClient(nil)
	req := &soap.Message{
		Namespace: ep.Namespace,
		Local:     def.OperationName,
		Fields:    map[string]string{"input": "interoperability achieved"},
	}
	resp, err := client.Invoke(ctx, base+ep.Path, "", req)
	if err != nil {
		return fmt.Errorf("invoke: %w", err)
	}
	echoed, _ := resp.Field("input")
	fmt.Printf("invoked %s → %s, echoed %q\n", def.OperationName, resp.Local, echoed)

	// Fault path: unknown operation.
	bad := &soap.Message{Namespace: ep.Namespace, Local: "noSuchOperation"}
	if _, err := client.Invoke(ctx, base+ep.Path, "", bad); err != nil {
		var fault *soap.Fault
		if errors.As(err, &fault) {
			fmt.Printf("fault handling works: %s\n", fault)
			return nil
		}
		return err
	}
	return errors.New("expected a SOAP fault for an unknown operation")
}
