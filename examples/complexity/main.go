// Complexity: the paper's future work, implemented — interface
// complexity variants (multi-parameter operations, nested envelopes,
// collections) and the rpc/literal binding style. The example runs a
// scaled campaign per configuration and shows that the error picture
// is class-driven: complexity and style change emission cost, not the
// defect counts.
//
// Run with:
//
//	go run ./examples/complexity
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"wsinterop/internal/campaign"
	"wsinterop/internal/services"
	"wsinterop/internal/wsdl"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const limit = 300
	type config struct {
		name string
		cfg  campaign.Config
	}
	configs := []config{
		{"document/literal + simple (the paper)", campaign.Config{Limit: limit}},
		{"document/literal + multi-param", campaign.Config{Limit: limit, Variant: services.VariantMultiParam}},
		{"document/literal + nested", campaign.Config{Limit: limit, Variant: services.VariantNested}},
		{"document/literal + collection", campaign.Config{Limit: limit, Variant: services.VariantCollection}},
		{"rpc/literal + simple", campaign.Config{Limit: limit, Style: wsdl.StyleRPC}},
		{"rpc/literal + multi-param", campaign.Config{Limit: limit, Style: wsdl.StyleRPC, Variant: services.VariantMultiParam}},
	}

	fmt.Printf("%-40s %9s %8s %8s %9s %9s\n",
		"configuration", "published", "genErr", "compErr", "WS-I flag", "elapsed")
	for _, c := range configs {
		start := time.Now()
		res, err := campaign.NewRunner(c.cfg).Run(context.Background())
		if err != nil {
			return fmt.Errorf("%s: %w", c.name, err)
		}
		genErr, compErr := 0, 0
		for _, s := range res.Servers {
			genErr += s.GenErrors
			compErr += s.CompileErrors
		}
		fmt.Printf("%-40s %9d %8d %8d %9d %9s\n",
			c.name, res.TotalPublished, genErr, compErr, res.FlaggedServices,
			time.Since(start).Round(time.Millisecond))
	}
	fmt.Println("\nidentical defect counts across rows: the interoperability failures")
	fmt.Println("of this corpus are caused by parameter classes, not interface shape.")
	return nil
}
