# Build/verify/benchmark entry points for the wsinterop study.

GO ?= go
# Benchmarks recorded in the machine-readable trajectory. FullCampaign
# runs the complete 79 629-test study once; drop it (make bench-json
# BENCH='Fig4Campaign|TableIII$$|ShapeDedup') for a quicker refresh.
BENCH ?= Fig4Campaign|TableIII$$|FullCampaign|ShapeDedup|AnalysisCache

.PHONY: build test test-short bench bench-json bench-smoke vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# bench prints the campaign benchmarks to the terminal.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime 3x -count 1 .

# bench-json records the benchmark trajectory to BENCH_campaign.json,
# giving later changes a perf baseline to diff against.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime 3x -count 1 . | $(GO) run ./cmd/benchjson -o BENCH_campaign.json

# bench-smoke is the CI guard: every campaign benchmark must still run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig4Campaign|ShapeDedup|AnalysisCache' -benchtime 1x -count 1 .
