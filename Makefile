# Build/verify/benchmark entry points for the wsinterop study.

GO ?= go
# Benchmarks recorded in the machine-readable trajectory. FullCampaign
# runs the complete 79 629-test study once; drop it (make bench-json
# BENCH='Fig4Campaign|TableIII$$|ShapeDedup') for a quicker refresh.
BENCH ?= Fig4Campaign|TableIII$$|FullCampaign|ShapeDedup|AnalysisCache|Plan$$
# bench-check tolerance: fail when FullCampaign tests/s drops by more
# than this fraction vs the committed BENCH_campaign.json.
BENCH_TOLERANCE ?= 0.10
# bench-check catalog cap (classes per catalog); keeps the CI guard
# fast while still exercising the full pipeline.
BENCH_LIMIT ?= 300

.PHONY: build test test-short bench bench-json bench-check bench-smoke vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# bench prints the campaign benchmarks to the terminal.
bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime 3x -benchmem -count 1 .

# bench-json records the benchmark trajectory to BENCH_campaign.json,
# giving later changes a perf baseline to diff against.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchtime 3x -benchmem -count 1 . | $(GO) run ./cmd/benchjson -o BENCH_campaign.json

# bench-check is the perf regression guard: re-run FullCampaign on a
# reduced catalog (FULLCAMPAIGN_LIMIT) and fail when tests/s lands
# more than BENCH_TOLERANCE below the committed baseline. The run also
# writes a CPU profile (bench-cpu.prof) so a regression arrives with
# the evidence needed to diagnose it attached.
bench-check:
	FULLCAMPAIGN_LIMIT=$(BENCH_LIMIT) $(GO) test -run '^$$' -bench 'FullCampaign' -benchtime 3x -benchmem -count 1 -cpuprofile bench-cpu.prof . | $(GO) run ./cmd/benchjson -check -baseline BENCH_campaign.json -max-regress $(BENCH_TOLERANCE)

# bench-smoke is the CI guard: every campaign benchmark must still run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'Fig4Campaign|ShapeDedup|AnalysisCache' -benchtime 1x -count 1 .
