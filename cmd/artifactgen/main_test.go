package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestAxis2DefectVisibleInSource(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-server", "metro", "-client", "axis2",
		"-class", "javax.xml.datatype.XMLGregorianCalendar", "-diags",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if strings.Count(out, "Object local_timezone = null;") != 2 {
		t.Errorf("duplicate variable should appear twice in source:\n%s", out)
	}
	if !strings.Contains(out, "DUP_LOCAL") {
		t.Errorf("compiler diagnostic missing:\n%s", out)
	}
}

func TestDynamicClientRendering(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-server", "wcf", "-client", "suds", "-class", "System.Net.Sockets.SocketError", "-diags",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "class ") || !strings.Contains(out, "def echo(self") {
		t.Errorf("expected Python artifacts:\n%s", out)
	}
}

func TestToolOutputEchoed(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{
		"-server", "metro", "-client", "axis1",
		"-class", "javax.xml.ws.wsaddressing.W3CEndpointReference",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// Axis1 reports the error but still writes artifacts.
	out := buf.String()
	if !strings.Contains(out, "UNRESOLVABLE_REF") || !strings.Contains(out, "public class") {
		t.Errorf("expected error plus artifacts:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-class", ""}, &buf); err == nil {
		t.Error("missing class should fail")
	}
	if err := run([]string{"-server", "zzz", "-class", "x.Y"}, &buf); err == nil {
		t.Error("unknown server should fail")
	}
	if err := run([]string{"-client", "zzz", "-class", "x.Y"}, &buf); err == nil {
		t.Error("unknown client should fail")
	}
	if err := run([]string{"-class", "no.such.Class"}, &buf); err == nil {
		t.Error("unknown class should fail")
	}
	// A clean failure (no artifacts) surfaces as an error.
	if err := run([]string{
		"-server", "metro", "-client", "c#",
		"-class", "javax.xml.ws.wsaddressing.W3CEndpointReference",
	}, &buf); err == nil {
		t.Error("nil artifacts should be reported")
	}
}
