// Command artifactgen generates and prints the client artifacts one
// client framework produces for one service — the code the study's
// authors inspected when diagnosing interoperability failures.
//
// Usage:
//
//	artifactgen -server metro|jbossws|wcf -client NAME -class FQCN [-diags]
//
// Example (Axis2's duplicate-variable defect, visible in source):
//
//	artifactgen -server metro -client axis2 \
//	    -class javax.xml.datatype.XMLGregorianCalendar -diags
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wsinterop/internal/artifact"
	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "artifactgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("artifactgen", flag.ContinueOnError)
	serverName := fs.String("server", "metro", "server framework: metro, jbossws or wcf")
	clientName := fs.String("client", "metro", "client framework (substring match, e.g. axis2)")
	className := fs.String("class", "", "fully qualified class name")
	diags := fs.Bool("diags", false, "also print verification diagnostics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *className == "" {
		return fmt.Errorf("missing -class")
	}

	var server framework.ServerFramework
	for _, s := range framework.Servers() {
		if strings.Contains(strings.ToLower(s.Name()), strings.ToLower(*serverName)) {
			server = s
			break
		}
	}
	if server == nil {
		return fmt.Errorf("unknown server framework %q", *serverName)
	}
	var client framework.ClientFramework
	for _, c := range framework.Clients() {
		if strings.Contains(strings.ToLower(c.Name()), strings.ToLower(*clientName)) {
			client = c
			break
		}
	}
	if client == nil {
		return fmt.Errorf("unknown client framework %q", *clientName)
	}

	cat := typesys.JavaCatalog()
	if server.Language() == typesys.CSharp {
		cat = typesys.CSharpCatalog()
	}
	cls, ok := cat.Lookup(*className)
	if !ok {
		return fmt.Errorf("class %q is not in the %s catalog", *className, server.Language())
	}

	doc, err := server.Publish(services.ForClass(cls))
	if err != nil {
		return err
	}
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		return err
	}
	gen := client.Generate(raw)
	for _, issue := range gen.Issues {
		fmt.Fprintf(out, "// tool output: %s\n", issue)
	}
	if gen.Unit == nil {
		return fmt.Errorf("%s produced no artifacts for %s", client.Name(), cls.Name)
	}
	if _, err := io.WriteString(out, artifact.Render(gen.Unit)); err != nil {
		return err
	}
	if *diags {
		for _, d := range client.Verify(gen.Unit) {
			fmt.Fprintf(out, "// %s: %s\n", verifyStepName(client), d)
		}
	}
	return nil
}

func verifyStepName(c framework.ClientFramework) string {
	if c.ArtifactLanguage().Compiled() {
		return "compiler"
	}
	return "instantiation"
}
