package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
)

func writeWSDL(t *testing.T, server framework.ServerFramework, class string) string {
	t.Helper()
	cat := typesys.JavaCatalog()
	if server.Language() == typesys.CSharp {
		cat = typesys.CSharpCatalog()
	}
	cls, ok := cat.Lookup(class)
	if !ok {
		t.Fatalf("class %q missing", class)
	}
	doc, err := server.Publish(services.ForClass(cls))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	path := filepath.Join(t.TempDir(), "svc.wsdl")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompliantDocumentPasses(t *testing.T) {
	path := writeWSDL(t, framework.NewMetroServer(), typesys.JavaXMLGregorianCalendar)
	var buf bytes.Buffer
	code, err := run([]string{path}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, buf.String())
	}
	if !strings.Contains(buf.String(), "PASS") {
		t.Errorf("expected PASS:\n%s", buf.String())
	}
}

func TestNonCompliantDocumentFails(t *testing.T) {
	path := writeWSDL(t, framework.NewMetroServer(), typesys.JavaSimpleDateFormat)
	var buf bytes.Buffer
	code, err := run([]string{path}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(buf.String(), "R2112") {
		t.Errorf("expected R2112 finding:\n%s", buf.String())
	}
}

func TestZeroOperationOfficialVsExtended(t *testing.T) {
	path := writeWSDL(t, framework.NewJBossWSServer(), typesys.JavaResponse)

	var ext bytes.Buffer
	code, err := run([]string{path}, &ext)
	if err != nil || code != 0 {
		t.Fatalf("extended: code=%d err=%v", code, err)
	}
	if !strings.Contains(ext.String(), "EXT4001") {
		t.Errorf("extended mode should flag EXT4001:\n%s", ext.String())
	}

	var off bytes.Buffer
	code, err = run([]string{"-official", path}, &off)
	if err != nil || code != 0 {
		t.Fatalf("official: code=%d err=%v", code, err)
	}
	if strings.Contains(off.String(), "EXT4001") {
		t.Errorf("official mode must not flag EXT4001:\n%s", off.String())
	}
}

func TestAssertionListing(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-assertions"}, &buf)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	for _, want := range []string{"R2001", "R2706", "EXT4001", "extended"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("assertion listing missing %q", want)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	var buf bytes.Buffer
	if code, err := run(nil, &buf); err == nil || code != 2 {
		t.Error("missing file argument should be a usage error")
	}
	if code, err := run([]string{"/no/such/file.wsdl"}, &buf); err == nil || code != 2 {
		t.Error("unreadable file should be an error")
	}
	bad := filepath.Join(t.TempDir(), "bad.wsdl")
	if err := os.WriteFile(bad, []byte("not xml"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, err := run([]string{bad}, &buf); err == nil || code != 2 {
		t.Error("malformed document should be an error")
	}
}
