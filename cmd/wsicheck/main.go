// Command wsicheck runs the WS-I Basic Profile-style compliance
// checker over a WSDL document.
//
// Usage:
//
//	wsicheck [-official] file.wsdl
//	wsicheck -assertions
//
// The -official flag disables the extended assertions so the tool
// behaves like the official WS-I checker (which, as the paper shows,
// passes zero-operation WSDLs). The exit status is 1 when the
// document fails the profile.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsicheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("wsicheck", flag.ContinueOnError)
	official := fs.Bool("official", false, "disable extended assertions (official tool behaviour)")
	listAssertions := fs.Bool("assertions", false, "list implemented assertions and exit")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *listAssertions {
		for _, a := range wsi.AllAssertions() {
			kind := "profile"
			if a.Extended {
				kind = "extended"
			}
			fmt.Fprintf(out, "%-8s %-9s %s\n", a.ID, kind, a.Description)
		}
		return 0, nil
	}

	if fs.NArg() != 1 {
		return 2, fmt.Errorf("usage: wsicheck [-official] file.wsdl")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	doc, err := wsdl.Unmarshal(data)
	if err != nil {
		return 2, err
	}

	var opts []wsi.Option
	if *official {
		opts = append(opts, wsi.WithoutExtended())
	}
	rep := wsi.NewChecker(opts...).Check(doc)
	for _, v := range rep.Violations {
		fmt.Fprintln(out, v)
	}
	if rep.Compliant() && len(rep.Violations) == 0 {
		fmt.Fprintln(out, "PASS: document is WS-I compliant")
		return 0, nil
	}
	if rep.Compliant() {
		fmt.Fprintln(out, "PASS with extended findings: document is WS-I compliant but likely unusable")
		return 0, nil
	}
	fmt.Fprintln(out, "FAIL: document violates the profile")
	return 1, nil
}
