// Command wsicheck runs a compliance-profile checker over a WSDL
// document.
//
// Usage:
//
//	wsicheck [-official] [-profile NAME] file.wsdl
//	wsicheck -assertions [-profile NAME]
//	wsicheck -profiles
//
// The document is checked against one registered compliance profile
// (-profile, default bp11 — WS-I Basic Profile 1.1); -profiles lists
// the registry. The -official flag disables the extended assertions so
// the tool behaves like the official WS-I checker (which, as the paper
// shows, passes zero-operation WSDLs). The exit status is 1 when the
// document fails the selected profile.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsicheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("wsicheck", flag.ContinueOnError)
	official := fs.Bool("official", false, "disable extended assertions (official tool behaviour)")
	listAssertions := fs.Bool("assertions", false, "list the selected profile's assertions and exit")
	listProfiles := fs.Bool("profiles", false, "list registered compliance profiles and exit")
	profileID := fs.String("profile", wsi.DefaultProfile().ID, "compliance profile to check against (see -profiles)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	if *listProfiles {
		for _, p := range wsi.Profiles() {
			def := ""
			if p == wsi.DefaultProfile() {
				def = " (default)"
			}
			fmt.Fprintf(out, "%-8s %s%s\n         %s\n", p.ID, p.Name, def, p.Description)
		}
		return 0, nil
	}

	profile, ok := wsi.Lookup(*profileID)
	if !ok {
		return 2, fmt.Errorf("unknown profile %q (registered: %s)",
			*profileID, strings.Join(wsi.ProfileIDs(), ", "))
	}

	if *listAssertions {
		for _, a := range profile.Assertions() {
			kind := "profile"
			if a.Extended {
				kind = "extended"
			}
			fmt.Fprintf(out, "%-8s %-9s %s\n", a.ID, kind, a.Description)
		}
		return 0, nil
	}

	if fs.NArg() != 1 {
		return 2, fmt.Errorf("usage: wsicheck [-official] [-profile NAME] file.wsdl")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return 2, err
	}
	doc, err := wsdl.Unmarshal(data)
	if err != nil {
		return 2, err
	}

	opts := []wsi.Option{wsi.WithProfile(profile)}
	if *official {
		opts = append(opts, wsi.WithoutExtended())
	}
	rep := wsi.NewChecker(opts...).Check(doc)
	for _, v := range rep.Violations {
		fmt.Fprintln(out, v)
	}
	if rep.Compliant() && len(rep.Violations) == 0 {
		fmt.Fprintf(out, "PASS: document complies with %s\n", profile.Name)
		return 0, nil
	}
	if rep.Compliant() {
		fmt.Fprintf(out, "PASS with extended findings: document complies with %s but is likely unusable\n", profile.Name)
		return 0, nil
	}
	fmt.Fprintf(out, "FAIL: document violates %s\n", profile.Name)
	return 1, nil
}
