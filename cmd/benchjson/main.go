// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable benchmark trajectory file, so successive changes
// have a stable perf baseline to compare against.
//
// Usage:
//
//	go test -run '^$' -bench 'Fig4|TableIII|FullCampaign' . | go run ./cmd/benchjson -o BENCH_campaign.json
//
// Every metric the benchmarks report is preserved: ns/op, the
// campaign's tests/s throughput, the shape memo's classes/shape
// compression, allocation counters, and any future b.ReportMetric
// additions — the tool is schema-free on the metric axis.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the -cpu suffix stripped
	// (BenchmarkShapeDedup/dedup-8 → ShapeDedup/dedup).
	Name string `json:"name"`
	// Iterations is b.N for the recorded run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every reported metric (ns/op,
	// tests/s, classes/shape, B/op, allocs/op, ...).
	Metrics map[string]float64 `json:"metrics"`
}

// Trajectory is the file layout of BENCH_campaign.json.
type Trajectory struct {
	// Recorded is the RFC 3339 timestamp of the conversion.
	Recorded string `json:"recorded"`
	// Goos/Goarch/CPU/Pkg echo the `go test` environment header.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	// Gomaxprocs is the -N suffix of the benchmark lines: the
	// GOMAXPROCS the run used — and, since the campaign benches run
	// with Config.Workers=0, the worker-pool size behind every
	// throughput number.
	Gomaxprocs int `json:"gomaxprocs,omitempty"`
	// Workers is the campaign worker count the numbers were measured
	// at (equal to Gomaxprocs for the default-configured benches).
	Workers int `json:"workers,omitempty"`
	// Benchmarks holds one entry per benchmark line, in input order.
	Benchmarks []Benchmark `json:"benchmarks"`
	// History holds one compact snapshot per previous recording, in
	// chronological order: each refresh pushes the file's prior
	// current state here instead of discarding it, so the file shows
	// the perf trajectory across changes.
	History []HistoryEntry `json:"history,omitempty"`
}

// HistoryEntry is one superseded recording, reduced to its timestamp,
// CPU, and metric values.
type HistoryEntry struct {
	Recorded string `json:"recorded"`
	CPU      string `json:"cpu,omitempty"`
	// Metrics maps benchmark name → unit → value.
	Metrics map[string]map[string]float64 `json:"metrics"`
}

func main() {
	out := flag.String("o", "BENCH_campaign.json", "output file path")
	check := flag.Bool("check", false, "compare stdin against -baseline instead of writing; exit 1 on regression")
	baseline := flag.String("baseline", "BENCH_campaign.json", "baseline trajectory for -check")
	benchName := flag.String("bench", "FullCampaign", "benchmark compared by -check")
	metric := flag.String("metric", "tests/s", "metric compared by -check (higher is better)")
	maxRegress := flag.Float64("max-regress", 0.20, "maximum allowed fractional drop for -check")
	flag.Parse()
	traj, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *check {
		if err := checkRegression(traj, *baseline, *benchName, *metric, *maxRegress); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if prev, err := loadTrajectory(*out); err == nil {
		traj.History = append(prev.History, snapshot(prev))
	}
	data, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s (%d history entries)\n",
		len(traj.Benchmarks), *out, len(traj.History))
}

// loadTrajectory reads a previously written trajectory file.
func loadTrajectory(path string) (*Trajectory, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var traj Trajectory
	if err := json.Unmarshal(data, &traj); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &traj, nil
}

// snapshot reduces a trajectory's current state to a history entry.
func snapshot(traj *Trajectory) HistoryEntry {
	h := HistoryEntry{
		Recorded: traj.Recorded,
		CPU:      traj.CPU,
		Metrics:  make(map[string]map[string]float64, len(traj.Benchmarks)),
	}
	for _, bm := range traj.Benchmarks {
		h.Metrics[bm.Name] = bm.Metrics
	}
	return h
}

// metricOf finds the named benchmark's value for the unit, or an
// error naming what was missing.
func metricOf(traj *Trajectory, bench, unit string) (float64, error) {
	for _, bm := range traj.Benchmarks {
		if bm.Name != bench {
			continue
		}
		if v, ok := bm.Metrics[unit]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("benchmark %s has no %q metric", bench, unit)
	}
	return 0, fmt.Errorf("benchmark %s not found", bench)
}

// checkRegression compares the run on stdin against the committed
// baseline and fails when the metric (higher-is-better) dropped by
// more than the allowed fraction.
func checkRegression(cur *Trajectory, baselinePath, bench, unit string, maxRegress float64) error {
	base, err := loadTrajectory(baselinePath)
	if err != nil {
		return err
	}
	baseV, err := metricOf(base, bench, unit)
	if err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	curV, err := metricOf(cur, bench, unit)
	if err != nil {
		return fmt.Errorf("current run: %w", err)
	}
	floor := baseV * (1 - maxRegress)
	if curV < floor {
		return fmt.Errorf("%s %s regressed: %.0f < %.0f (baseline %.0f, tolerance %.0f%%)",
			bench, unit, curV, floor, baseV, maxRegress*100)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %s %s OK: %.0f vs baseline %.0f (floor %.0f)\n",
		bench, unit, curV, baseV, floor)
	return nil
}

// parse reads `go test -bench` output and collects header metadata
// and benchmark result lines. Non-benchmark lines (test output, PASS,
// ok) are ignored, so the tool can sit directly behind `go test`.
func parse(r io.Reader) (*Trajectory, error) {
	traj := &Trajectory{Recorded: time.Now().UTC().Format(time.RFC3339)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			traj.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			traj.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			traj.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "pkg:"):
			traj.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "Benchmark"):
			bm, procs, ok := parseBenchLine(line)
			if ok {
				traj.Benchmarks = append(traj.Benchmarks, bm)
				if traj.Gomaxprocs == 0 && procs > 0 {
					traj.Gomaxprocs = procs
					traj.Workers = procs
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(traj.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	if traj.Gomaxprocs == 0 {
		// go test omits the -N suffix exactly when GOMAXPROCS is 1.
		traj.Gomaxprocs, traj.Workers = 1, 1
	}
	return traj, nil
}

// parseBenchLine parses one result line, returning the benchmark and
// the -N GOMAXPROCS marker (0 when the name carries none):
//
//	BenchmarkFig4Campaign-8   10   79370513 ns/op   124455 tests/s
func parseBenchLine(line string) (Benchmark, int, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, 0, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, 0, false
	}
	name, procs := splitCPUSuffix(strings.TrimPrefix(fields[0], "Benchmark"))
	bm := Benchmark{
		Name:       name,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, 0, false
		}
		bm.Metrics[fields[i+1]] = v
	}
	return bm, procs, true
}

// splitCPUSuffix drops the trailing -N GOMAXPROCS marker from the last
// path segment of a benchmark name and returns its value (0 if none).
func splitCPUSuffix(name string) (string, int) {
	slash := strings.LastIndexByte(name, '/')
	dash := strings.LastIndexByte(name, '-')
	if dash <= slash {
		return name, 0
	}
	procs, err := strconv.Atoi(name[dash+1:])
	if err != nil {
		return name, 0
	}
	return name[:dash], procs
}
