// Command catalogdump exports a platform class catalog as JSON — the
// reproduction's equivalent of the study's published class lists —
// and verifies re-importability. Custom catalogs in the same format
// can be fed back into the campaign via campaign.Config.CatalogFor.
//
// Usage:
//
//	catalogdump [-lang java|csharp] [-stats]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"wsinterop/internal/typesys"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "catalogdump:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("catalogdump", flag.ContinueOnError)
	lang := fs.String("lang", "java", "catalog to export: java or csharp")
	stats := fs.Bool("stats", false, "print catalog statistics instead of JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var cat *typesys.Catalog
	switch *lang {
	case "java":
		cat = typesys.JavaCatalog()
	case "csharp":
		cat = typesys.CSharpCatalog()
	default:
		return fmt.Errorf("unknown language %q (java, csharp)", *lang)
	}

	if *stats {
		s := cat.Stats()
		fmt.Fprintf(out, "language: %s\nclasses:  %d\nbindable: %d\n", cat.Language, s.Total, s.Bindable)
		for _, k := range []typesys.Kind{
			typesys.KindBean, typesys.KindBeanVendor, typesys.KindAsyncHandle,
			typesys.KindInterface, typesys.KindAbstract, typesys.KindGeneric,
			typesys.KindNoCtor, typesys.KindStatic, typesys.KindDelegate,
		} {
			if n := s.ByKind[k]; n > 0 {
				fmt.Fprintf(out, "  %-12s %d\n", k, n)
			}
		}
		return nil
	}

	data, err := typesys.ExportJSON(cat)
	if err != nil {
		return err
	}
	_, err = out.Write(data)
	return err
}
