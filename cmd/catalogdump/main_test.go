package main

import (
	"bytes"
	"strings"
	"testing"

	"wsinterop/internal/typesys"
)

func TestDumpAndReimport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-lang", "java"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	cat, err := typesys.ImportJSON(buf.Bytes())
	if err != nil {
		t.Fatalf("reimport: %v", err)
	}
	if cat.Len() != typesys.JavaTotal {
		t.Errorf("reimported %d classes, want %d", cat.Len(), typesys.JavaTotal)
	}
}

func TestStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-lang", "csharp", "-stats"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "14082") || !strings.Contains(out, "bindable: 2502") {
		t.Errorf("stats output wrong:\n%s", out)
	}
}

func TestBadLanguage(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-lang", "cobol"}, &buf); err == nil {
		t.Error("unknown language should fail")
	}
}
