// Command wsdlgen prints the WSDL a server framework publishes for a
// given native class — the Service Description Generation step in
// isolation.
//
// Usage:
//
//	wsdlgen -server metro|jbossws|wcf -class FQCN
//	wsdlgen -list [-server ...]        # list deployable classes
//
// Example:
//
//	wsdlgen -server wcf -class System.Data.DataTable
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wsdlgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wsdlgen", flag.ContinueOnError)
	serverName := fs.String("server", "metro", "server framework: metro, jbossws or wcf")
	className := fs.String("class", "", "fully qualified class name")
	list := fs.Bool("list", false, "list deployable classes for the server instead")
	if err := fs.Parse(args); err != nil {
		return err
	}

	server, err := pickServer(*serverName)
	if err != nil {
		return err
	}
	cat := catalogFor(server)

	if *list {
		for i := range cat.Classes {
			if _, err := server.Publish(services.ForClass(&cat.Classes[i])); err == nil {
				fmt.Fprintln(out, cat.Classes[i].Name)
			}
		}
		return nil
	}
	if *className == "" {
		return fmt.Errorf("missing -class (try -list to see deployable classes)")
	}
	cls, ok := cat.Lookup(*className)
	if !ok {
		return fmt.Errorf("class %q is not in the %s catalog", *className, server.Language())
	}
	doc, err := server.Publish(services.ForClass(cls))
	if err != nil {
		return err
	}
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		return err
	}
	_, err = out.Write(raw)
	return err
}

func pickServer(name string) (framework.ServerFramework, error) {
	for _, s := range framework.Servers() {
		if strings.Contains(strings.ToLower(s.Name()), strings.ToLower(name)) {
			return s, nil
		}
	}
	return nil, fmt.Errorf("unknown server framework %q (metro, jbossws, wcf)", name)
}

func catalogFor(server framework.ServerFramework) *typesys.Catalog {
	if server.Language() == typesys.Java {
		return typesys.JavaCatalog()
	}
	return typesys.CSharpCatalog()
}
