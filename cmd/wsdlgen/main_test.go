package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestEmitWSDL(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-server", "wcf", "-class", "System.Data.DataTable"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"wsdl:definitions", "DataTable", "soap:address"} {
		if !strings.Contains(out, want) {
			t.Errorf("WSDL missing %q", want)
		}
	}
}

func TestListDeployable(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-server", "jbossws", "-list"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Count(strings.TrimSpace(buf.String()), "\n") + 1
	if lines != 2248 {
		t.Errorf("JBossWS deployable list has %d entries, want 2248", lines)
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-server", "nope", "-class", "x"}, &buf); err == nil {
		t.Error("unknown server should fail")
	}
	if err := run([]string{"-server", "metro", "-class", "no.such.Class"}, &buf); err == nil {
		t.Error("unknown class should fail")
	}
	if err := run([]string{"-server", "metro"}, &buf); err == nil {
		t.Error("missing -class should fail")
	}
	if err := run([]string{"-server", "metro", "-class", "java.util.concurrent.Future"}, &buf); err == nil {
		t.Error("refused deployment should surface as an error")
	}
}
