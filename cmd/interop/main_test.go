package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunScaledAllReports(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "120", "-report", "all"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig. 4", "Table III", "Main findings", "Paper vs measured",
		"Failure index", "bar chart",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing section %q", want)
		}
	}
}

func TestRunSingleReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "100", "-report", "findings"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "tests executed") {
		t.Errorf("findings missing:\n%s", out)
	}
	if strings.Contains(out, "Table III") {
		t.Error("single report should not print other sections")
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "60", "-report", "json"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"totalTests"`, `"matrix"`, `"communication"`, `"paperComparison"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestRunCommReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "60", "-report", "comm"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "no-operations") {
		t.Errorf("communication report missing:\n%s", buf.String())
	}
}

func TestRunServerClientFilters(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "60", "-server", "metro", "-client", "axis1", "-report", "table3"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Apache Axis1") || strings.Contains(out, "gSOAP") {
		t.Errorf("filtering broken:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-report", "nope", "-limit", "10"}, &buf); err == nil {
		t.Error("unknown report should fail")
	}
	if err := run([]string{"-server", "zzz"}, &buf); err == nil {
		t.Error("unknown server should fail")
	}
	if err := run([]string{"-client", "zzz"}, &buf); err == nil {
		t.Error("unknown client should fail")
	}
	if err := run([]string{"-bogusflag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}
