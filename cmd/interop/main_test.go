package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wsinterop/internal/obs"
)

func TestRunScaledAllReports(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "120", "-report", "all"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Fig. 4", "Table III", "Main findings", "Paper vs measured",
		"Failure index", "bar chart",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing section %q", want)
		}
	}
}

func TestRunSingleReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "100", "-report", "findings"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "tests executed") {
		t.Errorf("findings missing:\n%s", out)
	}
	if strings.Contains(out, "Table III") {
		t.Error("single report should not print other sections")
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "60", "-report", "json"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{`"totalTests"`, `"matrix"`, `"communication"`, `"paperComparison"`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q", want)
		}
	}
}

func TestRunCommReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "60", "-report", "comm"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(buf.String(), "no-operations") {
		t.Errorf("communication report missing:\n%s", buf.String())
	}
}

func TestRunFaultsReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "40", "-report", "robust"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Robustness extension", "status-500", "abort-once",
		"wrong-success cells: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("robust report missing %q:\n%s", want, out)
		}
	}
}

// TestRunFaultsDeterministicOutput is the CLI-level acceptance check:
// `interop -faults` must print a byte-identical matrix at any worker
// count.
func TestRunFaultsDeterministicOutput(t *testing.T) {
	var serial, parallel bytes.Buffer
	if err := run([]string{"-limit", "40", "-workers", "1", "-faults", "-report", "robust"}, &serial); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	if err := run([]string{"-limit", "40", "-workers", "8", "-faults", "-report", "robust"}, &parallel); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("fault matrix differs across worker counts:\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
			serial.String(), parallel.String())
	}
}

func TestRunVersionsReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "40", "-report", "versions"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Version matrix extension", "hybrid-fault", "typed-reject",
		"hybrid-fault cells accepted: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("versions report missing %q:\n%s", want, out)
		}
	}
}

// TestRunVersionsMergeCLI: shard workers journal the version matrix
// alongside the static campaign, and -merge -report versions folds
// them into the same report a single process prints (modulo the
// deploy-set-dependent path-collision line, absent at this scale).
func TestRunVersionsMergeCLI(t *testing.T) {
	var single bytes.Buffer
	if err := run([]string{"-limit", "20", "-report", "versions"}, &single); err != nil {
		t.Fatalf("single run: %v", err)
	}
	dirs := []string{t.TempDir(), t.TempDir()}
	for i, dir := range dirs {
		var buf bytes.Buffer
		args := []string{
			"-limit", "20", "-report", "versions",
			"-shard", fmt.Sprintf("%d/%d", i, len(dirs)), "-checkpoint", dir,
		}
		if err := run(args, &buf); err != nil {
			t.Fatalf("shard %d run: %v", i, err)
		}
	}
	var merged bytes.Buffer
	if err := run([]string{"-limit", "20", "-report", "versions", "-merge", strings.Join(dirs, ",")}, &merged); err != nil {
		t.Fatalf("merge run: %v", err)
	}
	if merged.String() != single.String() {
		t.Errorf("merged versions report differs from single-process run:\n--- single ---\n%s--- merged ---\n%s",
			single.String(), merged.String())
	}
}

func TestRunServerClientFilters(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "60", "-server", "metro", "-client", "axis1", "-report", "table3"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "Apache Axis1") || strings.Contains(out, "gSOAP") {
		t.Errorf("filtering broken:\n%s", out)
	}
}

func TestRunReparseMatchesCached(t *testing.T) {
	var cached, reparsed bytes.Buffer
	if err := run([]string{"-limit", "80", "-report", "findings"}, &cached); err != nil {
		t.Fatalf("cached run: %v", err)
	}
	if err := run([]string{"-limit", "80", "-report", "findings", "-reparse"}, &reparsed); err != nil {
		t.Fatalf("reparse run: %v", err)
	}
	if cached.String() != reparsed.String() {
		t.Errorf("reparse ablation changed the findings:\n--- cached ---\n%s--- reparse ---\n%s",
			cached.String(), reparsed.String())
	}
}

func TestRunCPUProfile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cpu.prof")
	var buf bytes.Buffer
	if err := run([]string{"-limit", "40", "-report", "findings", "-cpuprofile", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("profile not written: %v", err)
	}
	if info.Size() == 0 {
		t.Error("profile file is empty")
	}
	if err := run([]string{"-limit", "10", "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "x.prof")}, &buf); err == nil {
		t.Error("unwritable profile path should fail")
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-report", "nope", "-limit", "10"}, &buf); err == nil {
		t.Error("unknown report should fail")
	}
	if err := run([]string{"-resume", "-limit", "10"}, &buf); err == nil {
		t.Error("-resume without -checkpoint should fail")
	}
	if err := run([]string{"-server", "zzz"}, &buf); err == nil {
		t.Error("unknown server should fail")
	}
	if err := run([]string{"-client", "zzz"}, &buf); err == nil {
		t.Error("unknown client should fail")
	}
	if err := run([]string{"-bogusflag"}, &buf); err == nil {
		t.Error("bad flag should fail")
	}
}

// TestRunUnknownReportFailsFast: a typo in -report must be rejected
// before the campaign runs, listing the valid modes — not fall back to
// a default report or error only after minutes of work.
func TestRunUnknownReportFailsFast(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-report", "talbe3"}, &buf) // note: no -limit — validation must precede the campaign
	if err == nil {
		t.Fatal("unknown report should fail")
	}
	for _, want := range []string{"talbe3", "valid modes", "table3", "maturity", "markdown"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
	if buf.Len() != 0 {
		t.Errorf("unknown report still printed output:\n%s", buf.String())
	}
}

// TestRunCheckpointResume is the CLI-level resume acceptance check: a
// checkpointed run, a resume replaying it in full, and a plain clean
// run must print byte-identical reports.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-limit", "40", "-workers", "4", "-report", "table3"}
	var clean, checkpointed, resumed bytes.Buffer
	if err := run(args, &clean); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if err := run(append([]string{"-checkpoint", dir}, args...), &checkpointed); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if checkpointed.String() != clean.String() {
		t.Error("checkpointed run output differs from clean run")
	}
	// Resume at a different worker count: full replay, identical report.
	resumeArgs := []string{"-checkpoint", dir, "-resume", "-limit", "40", "-workers", "1", "-report", "table3"}
	if err := run(resumeArgs, &resumed); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if resumed.String() != clean.String() {
		t.Errorf("resumed run output differs from clean run:\n--- clean ---\n%s--- resumed ---\n%s",
			clean.String(), resumed.String())
	}
	// Reusing the journal directory without -resume must refuse.
	var buf bytes.Buffer
	if err := run(append([]string{"-checkpoint", dir}, args...), &buf); err == nil {
		t.Error("fresh -checkpoint into a used directory should fail")
	}
	// Resuming under a different configuration must refuse.
	if err := run([]string{"-checkpoint", dir, "-resume", "-limit", "60", "-report", "table3"}, &buf); err == nil {
		t.Error("resume with a different -limit should fail")
	}
}

func TestRunMetricsReport(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "40", "-report", "metrics"}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"Observability metrics", "campaign.publish.total", "campaign.wsi.checks",
		"campaign.generate.seconds", "campaign.compile.seconds", "histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics report missing %q:\n%s", want, out)
		}
	}
}

func TestRunMetricsJSONExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var buf bytes.Buffer
	if err := run([]string{"-limit", "40", "-report", "findings", "-metrics-json", path}, &buf); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics file not written: %v", err)
	}
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Histograms []struct {
			Name  string `json:"name"`
			Count int64  `json:"count"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if len(snap.Counters) == 0 || len(snap.Histograms) == 0 {
		t.Errorf("metrics JSON is empty: %d counters, %d histograms",
			len(snap.Counters), len(snap.Histograms))
	}
	var buf2 bytes.Buffer
	bad := filepath.Join(t.TempDir(), "no", "such", "dir", "m.json")
	if err := run([]string{"-limit", "10", "-report", "findings", "-metrics-json", bad}, &buf2); err == nil {
		t.Error("unwritable metrics path should fail")
	}
}

func TestRunDebugFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-limit", "10", "-report", "findings", "-debug", "127.0.0.1:0"}, &buf); err != nil {
		t.Fatalf("run with -debug: %v", err)
	}
	if err := run([]string{"-limit", "10", "-report", "findings", "-debug", "not-an-address"}, &buf); err == nil {
		t.Error("unbindable debug address should fail")
	}
}

func TestDebugMuxEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("smoke.counter").Inc()
	reg.Emit(obs.Event{Trace: "t", Stage: "s"})
	srv := httptest.NewServer(debugMux(reg))
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return body
	}

	var snap struct {
		Counters []struct {
			Name string `json:"name"`
		} `json:"counters"`
	}
	if err := json.Unmarshal(get("/debug/metrics"), &snap); err != nil {
		t.Fatalf("/debug/metrics does not parse: %v", err)
	}
	if len(snap.Counters) == 0 || snap.Counters[0].Name != "smoke.counter" {
		t.Errorf("/debug/metrics counters = %+v", snap.Counters)
	}
	var events []struct {
		Trace string `json:"trace"`
	}
	if err := json.Unmarshal(get("/debug/events"), &events); err != nil {
		t.Fatalf("/debug/events does not parse: %v", err)
	}
	if len(events) != 1 || events[0].Trace != "t" {
		t.Errorf("/debug/events = %+v", events)
	}
	if body := get("/debug/vars"); !bytes.Contains(body, []byte("cmdline")) {
		t.Errorf("/debug/vars missing expvar content: %s", body)
	}
	if body := get("/debug/pprof/"); !bytes.Contains(body, []byte("goroutine")) {
		t.Errorf("/debug/pprof/ missing index content")
	}
}

// TestRunShardMergeCLI is the CLI-level distributed acceptance check:
// N shard workers with private checkpoints plus a merge must print the
// same report as one single-process run.
func TestRunShardMergeCLI(t *testing.T) {
	var single bytes.Buffer
	if err := run([]string{"-limit", "40", "-report", "table3"}, &single); err != nil {
		t.Fatalf("single run: %v", err)
	}
	dirs := []string{t.TempDir(), t.TempDir()}
	for i, dir := range dirs {
		var buf bytes.Buffer
		args := []string{
			"-limit", "40", "-report", "findings",
			"-shard", fmt.Sprintf("%d/%d", i, len(dirs)), "-checkpoint", dir,
		}
		if err := run(args, &buf); err != nil {
			t.Fatalf("shard %d run: %v", i, err)
		}
	}
	var merged bytes.Buffer
	if err := run([]string{"-limit", "40", "-report", "table3", "-merge", strings.Join(dirs, ",")}, &merged); err != nil {
		t.Fatalf("merge run: %v", err)
	}
	if merged.String() != single.String() {
		t.Errorf("merged report differs from single-process run:\n--- single ---\n%s--- merged ---\n%s",
			single.String(), merged.String())
	}
}

func TestRunShardMergeServeFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-shard", "zero/4", "-limit", "10"},     // unparsable index
		{"-shard", "2", "-limit", "10"},          // missing /COUNT
		{"-shard", "4/4", "-limit", "10"},        // index out of range
		{"-merge", "x", "-shard", "0/2"},         // merge excludes shard
		{"-merge", "x", "-checkpoint", "y"},      // merge excludes checkpoint
		{"-serve", "127.0.0.1:0", "-merge", "x"}, // serve excludes merge
		{"-serve", "127.0.0.1:0", "-shard", "0/2"},
		{"-serve", "127.0.0.1:0", "-checkpoint", "y"},
		{"-serve", "not-an-address"}, // unbindable daemon address
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

// TestRunMetricsJSONPartialOnFailure: a failed run must still export
// the metrics snapshot — annotated partial — because the partial
// snapshot is most useful exactly when the run died.
func TestRunMetricsJSONPartialOnFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	missing := filepath.Join(t.TempDir(), "no-such-journal")
	var buf bytes.Buffer
	err := run([]string{"-limit", "10", "-report", "findings", "-merge", missing, "-metrics-json", path}, &buf)
	if err == nil {
		t.Fatal("merging a missing journal should fail")
	}
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		t.Fatalf("metrics snapshot not written on failure: %v", rerr)
	}
	var snap struct {
		Partial bool `json:"partial"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if !snap.Partial {
		t.Errorf("failed run's snapshot not marked partial: %s", data)
	}
	// A successful run's snapshot stays unmarked.
	if err := run([]string{"-limit", "10", "-report", "findings", "-metrics-json", path}, &buf); err != nil {
		t.Fatalf("clean run: %v", err)
	}
	data, _ = os.ReadFile(path)
	if strings.Contains(string(data), `"partial"`) {
		t.Errorf("clean run's snapshot marked partial: %s", data)
	}
}

// TestRunServeEndToEnd drives the -serve daemon through the CLI: boot,
// stream one campaign over TCP, hit the mounted debug endpoint, stop.
func TestRunServeEndToEnd(t *testing.T) {
	urls := make(chan string, 1)
	serveListening = func(u string) { urls <- u }
	serveStop = make(chan struct{})
	defer func() { serveListening, serveStop = nil, nil }()

	done := make(chan error, 1)
	go func() {
		var buf bytes.Buffer
		done <- run([]string{"-serve", "127.0.0.1:0"}, &buf)
	}()
	var base string
	select {
	case base = <-urls:
	case err := <-done:
		t.Fatalf("daemon exited before listening: %v", err)
	}

	resp, err := http.Post(base+"/campaigns", "application/json",
		strings.NewReader(`{"limit":20,"server":"Metro"}`))
	if err != nil {
		t.Fatalf("POST /campaigns: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /campaigns: status %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	var last struct {
		Type    string `json:"type"`
		Summary struct {
			TotalServices int `json:"totalServices"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatalf("final stream line does not parse: %v\n%s", err, body)
	}
	if last.Type != "result" || last.Summary.TotalServices != 20 {
		t.Errorf("final line = %+v, want result with 20 services", last)
	}

	// The debug mux is mounted on the daemon's registry.
	resp, err = http.Get(base + "/debug/metrics")
	if err != nil {
		t.Fatalf("GET /debug/metrics: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "daemon.campaigns.started") {
		t.Errorf("GET /debug/metrics: status %d, body %s", resp.StatusCode, body)
	}

	close(serveStop)
	if err := <-done; err != nil {
		t.Errorf("daemon shutdown: %v", err)
	}
}
