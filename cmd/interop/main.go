// Command interop runs the web service framework interoperability
// assessment campaign and prints the paper's tables and figures.
//
// Usage:
//
//	interop [-report fig4|chart|table3|findings|deploy|failures|dedup|profiles|maturity|compare|comm|robust|versions|plan|metrics|json|markdown|all]
//	        [-limit N] [-workers N] [-server NAME] [-client NAME] [-wsi-profile NAME]
//	        [-faults] [-versions] [-reparse] [-dedup=false] [-plan=false] [-plan-cache DIR]
//	        [-cpuprofile FILE] [-metrics-json FILE] [-debug ADDR]
//	        [-checkpoint DIR] [-resume]
//	        [-shard I/N] [-merge DIR,DIR,...] [-serve ADDR]
//
// With no flags it runs the full campaign (22 024 services, 79 629
// tests) and prints every textual report. -report comm additionally
// runs the communication/execution extension; -faults (or -report
// robust) runs the fault-injection robustness matrix on top of it;
// -versions (or -report versions) runs the SOAP 1.1/1.2/hybrid
// version interop matrix (DESIGN.md §14); -report json emits a
// machine-readable dump of everything.
//
// Durability: -checkpoint DIR journals every completed cell to DIR as
// the campaign runs; SIGINT/SIGTERM then drain in-flight work, flush
// the journal, and exit with resumable state, and a second invocation
// with -checkpoint DIR -resume replays the journaled cells and
// finishes the rest — producing output identical to an uninterrupted
// run (DESIGN.md §9).
//
// Planning: the campaign executes shape-first from a precomputed plan
// (DESIGN.md §12); -plan-cache DIR persists built plans keyed by the
// campaign configuration so repeated runs skip the catalog walk,
// -report plan prints the plan without running anything, and
// -plan=false selects the lazy class-first path (the planner
// ablation).
//
// Distribution: -shard I/N runs one deterministic slice of the
// campaign — N worker processes, each with its own -checkpoint DIR,
// cover every cell exactly once — and -merge DIR,DIR,... folds the
// completed shard journals into one report identical to a
// single-process run (DESIGN.md §11). -serve ADDR runs the command as
// a long-lived campaign daemon instead: POST /campaigns streams a
// campaign's progress as NDJSON, POST /services publishes a class's
// WSDL over real TCP, and the debug endpoint is mounted at /debug/.
//
// Observability: -report metrics prints the runner's stage-scoped
// counters and latency histograms as text; -metrics-json FILE exports
// the same snapshot as JSON (composable with any -report, and written
// on failure too, marked "partial"); -debug ADDR serves a live debug
// endpoint for the duration of the run — /debug/metrics (JSON
// snapshot), /debug/events (campaign event stream), /debug/vars
// (expvar) and /debug/pprof/*.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"slices"
	"strconv"
	"strings"
	"syscall"
	"time"

	"wsinterop/internal/campaign"
	"wsinterop/internal/framework"
	"wsinterop/internal/obs"
	"wsinterop/internal/report"
	"wsinterop/internal/wsi"
)

// validReports are the accepted -report modes, alphabetically, for
// up-front validation and the error message.
var validReports = []string{
	"all", "chart", "comm", "compare", "dedup", "deploy", "failures",
	"fig4", "findings", "json", "markdown", "maturity", "metrics",
	"plan", "profiles", "robust", "table3", "versions",
}

// Test hooks for -serve: serveListening (when set) receives the bound
// base URL once the daemon accepts connections, and closing serveStop
// shuts the daemon down as if it had been signalled.
var (
	serveListening func(url string)
	serveStop      chan struct{}
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "interop:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("interop", flag.ContinueOnError)
	reportKind := fs.String("report", "all",
		"report to print: "+strings.Join(validReports, ", "))
	faults := fs.Bool("faults", false,
		"run the fault-injection robustness matrix (server × client × fault) and print its report")
	versionMatrix := fs.Bool("versions", false,
		"run the SOAP version interop matrix (server × client × version scenario) and print its report")
	explainClass := fs.String("explain", "",
		"print the drill-down narrative for one class (combine with -server to restrict)")
	extended := fs.Bool("extended", false,
		"widen the setup with the Apache Axis2 server-side model (paper future work)")
	limit := fs.Int("limit", 0, "cap services per catalog (0 = all)")
	workers := fs.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	serverName := fs.String("server", "", "restrict to one server framework (substring match)")
	clientName := fs.String("client", "", "restrict to one client framework (substring match)")
	reparse := fs.Bool("reparse", false,
		"re-parse the WSDL bytes in every client test instead of sharing one analysis per service (the cache ablation)")
	dedup := fs.Bool("dedup", true,
		"memoize publish/WS-I/client-test work per structural shape; -dedup=false runs every class individually (the shape-memo ablation)")
	plan := fs.Bool("plan", true,
		"build the shape-first execution plan up front; -plan=false runs the lazy class-first path (the planner ablation)")
	planCache := fs.String("plan-cache", "",
		"cache built execution plans in this directory, keyed by the campaign configuration, so repeated runs skip the catalog walk")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	metricsJSON := fs.String("metrics-json", "", "write the observability metrics snapshot as JSON to this file (marked partial if the run failed)")
	debugAddr := fs.String("debug", "",
		"serve the live debug endpoint (/debug/metrics, /debug/events, /debug/vars, /debug/pprof) on this address for the duration of the run")
	checkpoint := fs.String("checkpoint", "",
		"journal every completed cell to this directory so an interrupted run can be continued with -resume")
	resume := fs.Bool("resume", false,
		"replay the cells journaled under -checkpoint DIR instead of re-executing them, then finish the rest")
	shard := fs.String("shard", "",
		"run one deterministic slice INDEX/COUNT of the campaign; combine with -checkpoint so the shard can be merged later (DESIGN.md §11)")
	merge := fs.String("merge", "",
		"merge completed shard journals (comma-separated checkpoint directories; positional arguments are appended) into one report")
	serveAddr := fs.String("serve", "",
		"run as a long-lived campaign daemon on this address: POST /campaigns (NDJSON progress stream), POST /services (publish a WSDL over TCP), /debug/*")
	progress := fs.Bool("progress", false,
		"print per-server progress lines and the WS-I memoized-vs-executed summary to stderr")
	wsiProfile := fs.String("wsi-profile", "",
		"compliance profile driving the campaign's WS-I verdicts (default bp11; see wsicheck -profiles)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate the report mode before any campaign work runs, so a typo
	// fails fast with the valid modes listed instead of silently
	// executing the whole campaign first.
	if !slices.Contains(validReports, *reportKind) {
		return fmt.Errorf("unknown report %q (valid modes: %s)", *reportKind, strings.Join(validReports, ", "))
	}
	if *resume && *checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint DIR")
	}
	if *serveAddr != "" {
		for flagName, set := range map[string]bool{
			"-merge": *merge != "", "-shard": *shard != "",
			"-checkpoint": *checkpoint != "", "-resume": *resume,
			"-explain": *explainClass != "",
		} {
			if set {
				return fmt.Errorf("-serve runs a daemon; it cannot be combined with %s", flagName)
			}
		}
	}
	var mergeDirs []string
	if *merge != "" {
		for _, dir := range strings.Split(*merge, ",") {
			if dir = strings.TrimSpace(dir); dir != "" {
				mergeDirs = append(mergeDirs, dir)
			}
		}
		mergeDirs = append(mergeDirs, fs.Args()...)
		for flagName, set := range map[string]bool{
			"-shard": *shard != "", "-checkpoint": *checkpoint != "",
			"-resume": *resume, "-explain": *explainClass != "",
		} {
			if set {
				return fmt.Errorf("-merge reads completed shard journals; it cannot be combined with %s", flagName)
			}
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := []campaign.Option{
		campaign.WithLimit(*limit), campaign.WithWorkers(*workers),
	}
	if *wsiProfile != "" {
		p, ok := wsi.Lookup(*wsiProfile)
		if !ok {
			return fmt.Errorf("unknown WS-I profile %q (registered: %s)",
				*wsiProfile, strings.Join(wsi.ProfileIDs(), ", "))
		}
		opts = append(opts, campaign.WithChecker(wsi.NewChecker(wsi.WithProfile(p))))
	}
	if *reparse {
		opts = append(opts, campaign.WithReparse())
	}
	if !*dedup {
		opts = append(opts, campaign.WithoutDedup())
	}
	if !*plan {
		opts = append(opts, campaign.WithoutPlan())
	}
	if *planCache != "" {
		opts = append(opts, campaign.WithPlanCache(*planCache))
	}
	if *checkpoint != "" {
		opts = append(opts, campaign.WithCheckpoint(*checkpoint))
	}
	if *resume {
		opts = append(opts, campaign.WithResume())
	}
	if *shard != "" {
		index, count, err := parseShard(*shard)
		if err != nil {
			return err
		}
		opts = append(opts, campaign.WithShard(index, count))
	}
	if *progress {
		opts = append(opts, campaign.WithProgress(func(stage string, done, total int) {
			fmt.Fprintf(os.Stderr, "interop: %-12s %d/%d services\r", stage, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	servers := framework.Servers()
	if *extended {
		servers = append(servers, framework.NewAxis2Server())
		opts = append(opts, campaign.WithServers(servers...))
	}
	if *serverName != "" {
		var matched []framework.ServerFramework
		for _, s := range servers {
			if strings.Contains(strings.ToLower(s.Name()), strings.ToLower(*serverName)) {
				matched = append(matched, s)
			}
		}
		if len(matched) == 0 {
			return fmt.Errorf("no server framework matches %q", *serverName)
		}
		servers = matched
		opts = append(opts, campaign.WithServers(servers...))
	}
	if *clientName != "" {
		var clients []framework.ClientFramework
		for _, c := range framework.Clients() {
			if strings.Contains(strings.ToLower(c.Name()), strings.ToLower(*clientName)) {
				clients = append(clients, c)
			}
		}
		if len(clients) == 0 {
			return fmt.Errorf("no client framework matches %q", *clientName)
		}
		opts = append(opts, campaign.WithClients(clients...))
	}
	if *reportKind == "failures" || *reportKind == "json" || *reportKind == "all" {
		opts = append(opts, campaign.WithKeepFailures())
	}

	if *serveAddr != "" {
		return runServe(*serveAddr, opts)
	}

	runner := campaign.New(opts...)

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		obs.PublishExpvar(runner.Obs())
		// Hardened like transport.Host.Start: a client that stalls mid
		// request header cannot pin a connection forever, and shutdown is
		// graceful — in-flight metric scrapes drain within the grace
		// window instead of being aborted by Close.
		srv := &http.Server{
			Handler:           debugMux(runner.Obs()),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() { _ = srv.Serve(ln) }()
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				_ = srv.Close()
			}
		}()
		fmt.Fprintf(os.Stderr, "interop: debug endpoint on http://%s/debug/metrics\n", ln.Addr())
	}

	// finish runs after the selected reports — the snapshot then covers
	// the static campaign plus any extension that ran. It writes on
	// failure too: a partial snapshot is most useful exactly when a run
	// died, so a run error annotates the export ("partial") rather than
	// suppressing it.
	finish := func(runErr error) error {
		if *metricsJSON == "" {
			return runErr
		}
		f, err := os.Create(*metricsJSON)
		if err != nil {
			return errors.Join(runErr, fmt.Errorf("metrics-json: %w", err))
		}
		snap := runner.Metrics()
		snap.Partial = runErr != nil
		werr := report.MetricsJSON(f, snap)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			werr = fmt.Errorf("metrics-json: %w", werr)
		}
		return errors.Join(runErr, werr)
	}

	if *explainClass != "" {
		return finish(explain(out, runner, servers, *explainClass))
	}

	if *reportKind == "plan" {
		// -report plan resolves the execution plan — from the cache when
		// -plan-cache holds one, from a catalog walk otherwise — and
		// describes it without running any campaign work.
		sum, err := runner.PlanSummary()
		if err != nil {
			return finish(err)
		}
		return finish(report.Plan(out, sum))
	}

	// With a checkpoint configured, SIGINT/SIGTERM cancel the campaign
	// context: in-flight workers drain, the journal flushes, and the
	// command exits non-zero with resumable state. A second signal after
	// the drain started kills the process the default way.
	ctx := context.Background()
	if *checkpoint != "" {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
		go func() {
			<-ctx.Done()
			stop()
		}()
	}
	execute := runner.Run
	if len(mergeDirs) > 0 {
		execute = func(ctx context.Context) (*campaign.Result, error) {
			return runner.Merge(ctx, mergeDirs)
		}
	}
	res, err := execute(ctx)
	if err != nil {
		if *checkpoint != "" && errors.Is(err, context.Canceled) {
			err = fmt.Errorf("interrupted — journal flushed to %s; rerun with -checkpoint %s -resume to continue",
				*checkpoint, *checkpoint)
		}
		return finish(err)
	}
	if *progress && res.Dedup != nil && res.Dedup.Enabled {
		d := res.Dedup
		fmt.Fprintf(os.Stderr, "interop: WS-I verdicts: %d executed, %d memoized from shapes\n",
			d.WSIChecks, d.WSIMemoized)
	}

	var comm *campaign.CommResult
	if *reportKind == "comm" || *reportKind == "json" || *reportKind == "markdown" {
		if comm, err = runner.RunCommunication(ctx); err != nil {
			return finish(err)
		}
	}
	var robust *campaign.RobustResult
	if *faults || *reportKind == "robust" {
		if robust, err = runner.RunRobustness(ctx); err != nil {
			return finish(err)
		}
	}
	var versions *campaign.VersionResult
	if *versionMatrix || *reportKind == "versions" {
		// Under -merge the version matrix is folded from the shards'
		// versions journals instead of re-executed, mirroring the static
		// campaign merge above.
		runVersions := runner.RunVersions
		if len(mergeDirs) > 0 {
			runVersions = func(ctx context.Context) (*campaign.VersionResult, error) {
				return runner.MergeVersions(ctx, mergeDirs)
			}
		}
		if versions, err = runVersions(ctx); err != nil {
			return finish(err)
		}
	}
	switch *reportKind {
	case "json":
		return finish(report.JSON(out, res, comm, robust, versions))
	case "markdown":
		return finish(report.Markdown(out, res, comm, robust, versions))
	}

	sections := []struct {
		name  string
		title string
		write func() error
	}{
		{"deploy", "Service description generation (Preparation + Step 1)", func() error { return report.Deploy(out, res) }},
		{"fig4", "Fig. 4 — per-server step overview", func() error { return report.Fig4(out, res) }},
		{"chart", "Fig. 4 — bar chart", func() error { return report.Fig4Chart(out, res) }},
		{"table3", "Table III — client × server issue matrix", func() error { return report.TableIII(out, res) }},
		{"failures", "Failure index (Table III footnotes)", func() error { return report.Failures(out, res, 12) }},
		{"findings", "Main findings (§IV)", func() error { return report.Findings(out, res) }},
		{"dedup", "Shape memoization statistics", func() error { return report.Dedup(out, res) }},
		{"profiles", "Compliance-profile matrix", func() error { return report.Profiles(out, res) }},
		{"maturity", "Client tool maturity (§IV.A)", func() error { return report.Maturity(out, res) }},
		{"compare", "Paper vs measured", func() error {
			return report.WriteComparisons(out, report.Comparisons(res))
		}},
		{"comm", "Communication & Execution extension (steps 4–5)", func() error {
			return report.Communication(out, comm)
		}},
		{"robust", "Robustness extension (fault injection, steps 4–5)", func() error {
			return report.Robustness(out, robust)
		}},
		{"versions", "Version matrix extension (SOAP 1.1 / 1.2 / hybrid)", func() error {
			return report.Versions(out, versions)
		}},
		{"metrics", "Observability metrics (stage counters & latency histograms)", func() error {
			// The runner's cumulative registry, so extension stages that
			// ran above (comm, robust) are included.
			return report.Metrics(out, runner.Metrics())
		}},
	}
	printed := false
	for _, s := range sections {
		if *reportKind != "all" && *reportKind != s.name {
			continue
		}
		if s.name == "comm" && comm == nil {
			continue // the extension runs only when requested explicitly
		}
		if s.name == "robust" && robust == nil {
			continue // runs only with -faults or -report robust
		}
		if s.name == "versions" && versions == nil {
			continue // runs only with -versions or -report versions
		}
		printed = true
		fmt.Fprintf(out, "== %s ==\n", s.title)
		if err := s.write(); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if !printed {
		// Unreachable: -report is validated up front. Kept as a guard for
		// future section renames.
		return fmt.Errorf("unknown report %q (valid modes: %s)", *reportKind, strings.Join(validReports, ", "))
	}
	return finish(nil)
}

// parseShard parses the -shard argument, INDEX/COUNT.
func parseShard(s string) (index, count int, err error) {
	is, ns, ok := strings.Cut(s, "/")
	if ok {
		index, err = strconv.Atoi(strings.TrimSpace(is))
		if err == nil {
			count, err = strconv.Atoi(strings.TrimSpace(ns))
		}
	}
	if !ok || err != nil {
		return 0, 0, fmt.Errorf("-shard wants INDEX/COUNT (e.g. 0/4), got %q", s)
	}
	return index, count, nil
}

// runServe runs the campaign daemon until SIGINT/SIGTERM, then shuts
// it down gracefully: running campaigns are cancelled cooperatively
// and their NDJSON streams end with an error line before the listener
// closes.
func runServe(addr string, baseOpts []campaign.Option) error {
	reg := obs.NewRegistry()
	obs.PublishExpvar(reg)
	d := campaign.NewDaemon(reg, baseOpts...)
	root := http.NewServeMux()
	root.Handle("/", d.Handler())
	root.Handle("/debug/", debugMux(reg))
	url, err := d.Start(addr, root)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "interop: campaign daemon on %s — POST %s/campaigns, debug on %s/debug/metrics\n",
		url, url, url)
	if serveListening != nil {
		serveListening(url)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
	case <-serveStop:
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return d.Shutdown(sctx)
}

// debugMux builds the live debug endpoint: the obs snapshot and event
// stream as JSON, expvar, and the pprof handlers (registered on a
// private mux so the command never touches http.DefaultServeMux).
func debugMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reg.Events())
	})
	return mux
}

// explain prints the §IV.B-style drill-down for one class on every
// configured (or matching) server framework.
func explain(out io.Writer, runner *campaign.Runner, servers []framework.ServerFramework, class string) error {
	found := false
	for _, s := range servers {
		e, err := runner.Explain(s.Name(), class)
		if err != nil {
			continue // class not in this server's catalog
		}
		found = true
		if err := report.Explain(out, e); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if !found {
		return fmt.Errorf("class %q is not in any configured catalog", class)
	}
	return nil
}
