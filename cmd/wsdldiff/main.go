// Command wsdldiff structurally compares the WSDL two server
// frameworks publish for the same class — the root-cause-analysis
// view behind the study's emitter-variant findings (e.g. why Axis2's
// W3CEndpointReference emission interoperates while Metro's and
// JBossWS's do not).
//
// Usage:
//
//	wsdldiff -a metro -b jbossws -class FQCN
//	wsdldiff -a fileA.wsdl -b fileB.wsdl         # compare two files
//
// Exit status is 1 when the descriptions differ.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wsdldiff:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("wsdldiff", flag.ContinueOnError)
	sideA := fs.String("a", "metro", "server framework name or .wsdl file path")
	sideB := fs.String("b", "jbossws", "server framework name or .wsdl file path")
	className := fs.String("class", "", "class to publish when a side names a server framework")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}

	docA, err := load(*sideA, *className)
	if err != nil {
		return 2, fmt.Errorf("side A: %w", err)
	}
	docB, err := load(*sideB, *className)
	if err != nil {
		return 2, fmt.Errorf("side B: %w", err)
	}

	deltas := wsdl.Diff(docA, docB)
	if len(deltas) == 0 {
		fmt.Fprintln(out, "descriptions are structurally equivalent")
		return 0, nil
	}
	for _, d := range deltas {
		fmt.Fprintln(out, d)
	}
	return 1, nil
}

// load resolves a side: a .wsdl file path, or a server framework name
// plus the class to publish.
func load(side, className string) (*wsdl.Definitions, error) {
	if strings.HasSuffix(side, ".wsdl") {
		data, err := os.ReadFile(side)
		if err != nil {
			return nil, err
		}
		return wsdl.Unmarshal(data)
	}
	servers := append(framework.Servers(), framework.NewAxis2Server())
	for _, s := range servers {
		if !strings.Contains(strings.ToLower(s.Name()), strings.ToLower(side)) {
			continue
		}
		if className == "" {
			return nil, fmt.Errorf("missing -class for server framework %q", side)
		}
		cat := typesys.JavaCatalog()
		if s.Language() == typesys.CSharp {
			cat = typesys.CSharpCatalog()
		}
		cls, ok := cat.Lookup(className)
		if !ok {
			return nil, fmt.Errorf("class %q is not in the %s catalog", className, s.Language())
		}
		return s.Publish(services.ForClass(cls))
	}
	return nil, fmt.Errorf("unknown server framework %q", side)
}
