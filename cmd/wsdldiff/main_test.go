package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"wsinterop/internal/wsdl"
)

func TestEmitterVariantDiff(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-a", "metro", "-b", "jbossws",
		"-class", "javax.xml.ws.wsaddressing.W3CEndpointReference"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Errorf("exit code = %d, want 1 (differences)", code)
	}
	if !strings.Contains(buf.String(), "2005/08/addressing") {
		t.Errorf("expected the import delta:\n%s", buf.String())
	}
}

func TestSameEmitterEquivalent(t *testing.T) {
	var buf bytes.Buffer
	code, err := run([]string{"-a", "metro", "-b", "metro",
		"-class", "javax.xml.datatype.XMLGregorianCalendar"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || !strings.Contains(buf.String(), "equivalent") {
		t.Errorf("identical emissions should be equivalent: code=%d\n%s", code, buf.String())
	}
}

func TestFileComparison(t *testing.T) {
	dir := t.TempDir()
	fileA := filepath.Join(dir, "a.wsdl")
	var bufA bytes.Buffer
	// Reuse the generator path to produce a file, then compare file vs
	// live emission.
	if _, err := run([]string{"-a", "wcf", "-b", "wcf", "-class", "System.Data.DataTable"}, &bufA); err != nil {
		t.Fatal(err)
	}
	// Produce the document bytes via wsdlgen-equivalent path.
	doc, err := load("wcf", "System.Data.DataTable")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(fileA, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	code, err := run([]string{"-a", fileA, "-b", "wcf", "-class", "System.Data.DataTable"}, &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Errorf("file vs live emission should be equivalent:\n%s", buf.String())
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := run([]string{"-a", "nope", "-b", "metro", "-class", "x.Y"}, &buf); err == nil {
		t.Error("unknown framework should fail")
	}
	if _, err := run([]string{"-a", "metro", "-b", "jbossws"}, &buf); err == nil {
		t.Error("missing -class should fail")
	}
	if _, err := run([]string{"-a", "/does/not/exist.wsdl", "-b", "metro", "-class", "x.Y"}, &buf); err == nil {
		t.Error("unreadable file should fail")
	}
}
