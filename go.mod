module wsinterop

go 1.22
