package wsinterop

import (
	"bytes"
	"testing"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/xsd"
)

// TestMarshalSchemaEquivalenceCorpus is the full-corpus differential
// proof for the hand-rolled schema writer (DESIGN.md §10): every
// schema block of every document any server publishes must serialize
// byte-identically through xsd.MarshalSchema (fastwrite.go) and
// xsd.MarshalSchemaReference (the retained encoding/xml oracle). The
// shape-template verification, journal resume re-split, and golden
// outputs all assume these bytes are stable.
func TestMarshalSchemaEquivalenceCorpus(t *testing.T) {
	limit := 0 // all classes
	if testing.Short() {
		limit = 400
	}
	catalogs := map[typesys.Language]*typesys.Catalog{
		typesys.Java:   typesys.JavaCatalog(),
		typesys.CSharp: typesys.CSharpCatalog(),
	}
	schemas, diverged := 0, 0
	for _, server := range framework.Servers() {
		defs := services.GenerateVariant(catalogs[server.Language()], services.VariantSimple)
		if limit > 0 && len(defs) > limit {
			defs = defs[:limit]
		}
		for _, def := range defs {
			doc, err := server.Publish(def)
			if err != nil {
				continue // not deployable; nothing to serialize
			}
			if doc.Types == nil {
				continue
			}
			for _, sch := range doc.Types.Schemas {
				want, err := xsd.MarshalSchemaReference(sch, nil)
				if err != nil {
					t.Fatalf("%s/%s: reference marshal: %v", server.Name(), def.Name, err)
				}
				got, err := xsd.MarshalSchema(sch, nil)
				if err != nil {
					t.Fatalf("%s/%s: fast marshal: %v", server.Name(), def.Name, err)
				}
				schemas++
				if !bytes.Equal(got, want) {
					diverged++
					if diverged <= 3 {
						t.Errorf("%s/%s schema %q diverges\nfast:\n%s\nreference:\n%s",
							server.Name(), def.Name, sch.TargetNamespace, got, want)
					}
				}
			}
		}
	}
	if diverged > 0 {
		t.Errorf("%d of %d schema blocks diverged", diverged, schemas)
	}
	if schemas == 0 {
		t.Fatal("corpus produced no schema blocks")
	}
	t.Logf("verified %d schema blocks byte-identical", schemas)
}
