package shape

import (
	"testing"

	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
)

func defFor(cls *typesys.Class) services.Definition {
	return services.ForClass(cls)
}

func sampleClass() *typesys.Class {
	return &typesys.Class{
		Language: typesys.Java,
		Package:  "com.example.pkg",
		Simple:   "Sample",
		Name:     "com.example.pkg.Sample",
		Kind:     typesys.KindBean,
		Fields: []typesys.Field{
			{Name: "alpha", Kind: typesys.FieldString},
			{Name: "beta", Kind: typesys.FieldInt},
		},
	}
}

func TestFingerprintIgnoresNames(t *testing.T) {
	a := sampleClass()
	b := sampleClass()
	b.Package = "org.other.deep.pkg"
	b.Simple = "Renamed"
	b.Name = "org.other.deep.pkg.Renamed"
	fa, fb := Of(defFor(a)), Of(defFor(b))
	if fa != fb {
		t.Errorf("fingerprint depends on class name: %s != %s", fa, fb)
	}
}

func TestFingerprintCoversTraits(t *testing.T) {
	base := Of(defFor(sampleClass()))
	mutations := map[string]func(*typesys.Class){
		"kind":        func(c *typesys.Class) { c.Kind = typesys.KindBeanVendor },
		"hints":       func(c *typesys.Class) { c.Hints |= 1 },
		"field name":  func(c *typesys.Class) { c.Fields[0].Name = "gamma" },
		"field kind":  func(c *typesys.Class) { c.Fields[0].Kind = typesys.FieldDouble },
		"field ref":   func(c *typesys.Class) { c.Fields[0].Ref = "Other" },
		"field order": func(c *typesys.Class) { c.Fields[0], c.Fields[1] = c.Fields[1], c.Fields[0] },
		"field count": func(c *typesys.Class) { c.Fields = c.Fields[:1] },
		"language":    func(c *typesys.Class) { c.Language = typesys.CSharp },
	}
	for name, mutate := range mutations {
		cls := sampleClass()
		mutate(cls)
		if Of(defFor(cls)) == base {
			t.Errorf("fingerprint blind to %s", name)
		}
	}
}

func TestFingerprintStable(t *testing.T) {
	def := defFor(sampleClass())
	want := Of(def)
	for i := 0; i < 100; i++ {
		if got := Of(def); got != want {
			t.Fatalf("fingerprint unstable at iteration %d: %s != %s", i, got, want)
		}
	}
}

func TestSentinelPreservesShape(t *testing.T) {
	def := defFor(sampleClass())
	sdef, svars := Sentinel(def)
	if Of(sdef) != Of(def) {
		t.Error("sentinel definition changed the structural fingerprint")
	}
	if len(svars) != numSlots {
		t.Fatalf("sentinel vars = %d, want %d", len(svars), numSlots)
	}
	seen := map[string]bool{}
	for i, v := range svars {
		if v == "" {
			t.Errorf("sentinel slot %d empty", i)
		}
		if seen[v] {
			t.Errorf("sentinel slot %d duplicates value %q", i, v)
		}
		seen[v] = true
	}
	if !Memoizable(sdef) {
		t.Error("sentinel definition must itself be memoizable")
	}
}

func TestVarsSlotOrder(t *testing.T) {
	def := defFor(sampleClass())
	vars := Vars(def)
	if vars[SlotService] != def.Name {
		t.Errorf("SlotService = %q, want %q", vars[SlotService], def.Name)
	}
	if vars[SlotNamespace] != typesys.NamespaceFor(typesys.Java, "com.example.pkg") {
		t.Errorf("SlotNamespace = %q", vars[SlotNamespace])
	}
	if vars[SlotSimple] != "Sample" {
		t.Errorf("SlotSimple = %q, want Sample", vars[SlotSimple])
	}
}

func TestMemoizableGuard(t *testing.T) {
	if !Memoizable(defFor(sampleClass())) {
		t.Fatal("plain class should be memoizable")
	}
	hostile := map[string]func(*typesys.Class){
		"quote in simple":   func(c *typesys.Class) { c.Simple = `Sam"ple` },
		"angle in simple":   func(c *typesys.Class) { c.Simple = "Sam<ple" },
		"ampersand":         func(c *typesys.Class) { c.Simple = "Sam&ple" },
		"non-ascii":         func(c *typesys.Class) { c.Simple = "Sämple" },
		"control char":      func(c *typesys.Class) { c.Simple = "Sam\tple" },
		"sanitized differs": func(c *typesys.Class) { c.Simple = "Sample$Inner" },
		"space in simple":   func(c *typesys.Class) { c.Simple = "Sam ple" },
	}
	for name, mutate := range hostile {
		cls := sampleClass()
		mutate(cls)
		cls.Name = cls.Package + "." + cls.Simple
		if Memoizable(defFor(cls)) {
			t.Errorf("%s: hostile name accepted by guard", name)
		}
	}
}
