// Package shape computes deterministic structural fingerprints for
// generated test services.
//
// The frameworks of the study map a class to a service description by
// its *structural traits* — binding kind, schema-mapping hints, bean
// field list, interface variant — never by its name. Most of the
// 22 024-class corpus therefore collapses into a small set of
// structural shapes: two classes with the same traits yield WSDL
// documents (and downstream client-test outcomes) that are identical
// up to the handful of name-derived strings. This package defines that
// equivalence precisely:
//
//   - Fingerprint is a content address over exactly the trait inputs
//     of server emission (everything framework.ServerFramework.Publish
//     reads except the name-derived strings).
//   - Vars lists the name-derived strings of a definition in a fixed
//     slot order, so a marshaled document can be split into a reusable
//     template (wsdl.Template) and re-rendered for a same-shape class.
//   - Sentinel builds a same-shape definition whose name-derived
//     strings are unique sentinel tokens, giving the campaign a clean
//     document to split templates from.
//
// The campaign runner uses these pieces to memoize the publish, WS-I
// checking, and client-testing work per (server, fingerprint) instead
// of per class (DESIGN.md §6.6).
package shape

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/xsd"
)

// Fingerprint is the content address of a definition's structural
// shape. Equal fingerprints mean the servers' emitted documents are
// identical after name substitution (a property the campaign verifies
// per shape rather than assuming — see DESIGN.md §6.6).
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as hex for reports and debugging.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:8]) }

// Hex renders the full fingerprint — the serialization the campaign's
// persistent plan cache stores and ParseHex round-trips.
func (f Fingerprint) Hex() string { return hex.EncodeToString(f[:]) }

// ParseHex decodes a full-length fingerprint produced by Hex. Anything
// else — wrong length, non-hex bytes — is an error, never a truncated
// or zero-padded fingerprint.
func ParseHex(s string) (Fingerprint, error) {
	var f Fingerprint
	raw, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("shape: malformed fingerprint %q: %w", s, err)
	}
	if len(raw) != len(f) {
		return f, fmt.Errorf("shape: fingerprint %q has %d bytes, want %d", s, len(raw), len(f))
	}
	copy(f[:], raw)
	return f, nil
}

// Of computes the structural fingerprint of a definition.
func Of(def services.Definition) Fingerprint {
	return sha256.Sum256(Canonical(def, nil))
}

// Canonical appends the canonical trait serialization of the
// definition to buf and returns the result. The encoding is
// length-prefixed so distinct trait lists cannot collide by
// concatenation, and it covers exactly the inputs server emission
// depends on beyond the name-derived strings: interface variant,
// implementation language, binding kind, structural hints, and the
// ordered bean field list (field order is part of the emitted
// sequence, so it is part of the shape).
func Canonical(def services.Definition, buf []byte) []byte {
	cls := def.Parameter
	buf = append(buf, "shape\x00v1\x00"...)
	buf = appendUint(buf, uint64(def.Variant))
	buf = appendUint(buf, uint64(cls.Language))
	buf = appendUint(buf, uint64(cls.Kind))
	buf = appendUint(buf, uint64(cls.Hints))
	buf = appendUint(buf, uint64(len(cls.Fields)))
	for _, f := range cls.Fields {
		buf = appendString(buf, f.Name)
		buf = appendUint(buf, uint64(f.Kind))
		// Ref names another schema type; the referenced type is emitted
		// with that exact name, so Ref is structural, not substitutable.
		buf = appendString(buf, f.Ref)
	}
	return buf
}

func appendUint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// Template variable slots, in the order Vars returns them. A split
// template carries one slot index per occurrence, so rendering for a
// different class substitutes each name-derived string independently.
const (
	// SlotService is the service name (services.Definition.Name); it
	// also names the port type, binding, service, port, and endpoint
	// path derived from it.
	SlotService = iota
	// SlotNamespace is the target namespace derived from the parameter
	// class's package.
	SlotNamespace
	// SlotSimple is the parameter class's local name; it names the
	// parameter complex type and its derived companion types.
	SlotSimple
	numSlots
)

// Vars returns the definition's name-derived strings in slot order.
func Vars(def services.Definition) []string {
	v := VarsArray(def)
	return v[:]
}

// VarsArray is the allocation-free form of Vars: the fixed-arity
// value array returned by value, so a caller that only needs the
// values for a Render call keeps them on its stack.
func VarsArray(def services.Definition) [3]string {
	cls := def.Parameter
	var v [3]string
	v[SlotService] = def.Name
	v[SlotNamespace] = typesys.NamespaceFor(cls.Language, cls.Package)
	v[SlotSimple] = cls.Simple
	return v
}

// Sentinel tokens. They are valid NCNames, survive SanitizeNCName
// unchanged, and are improbable enough that they cannot collide with
// structural text in an emitted document; the campaign still verifies
// each split template byte-for-byte before trusting it.
const (
	sentinelService = "Zz9ShapeSvcQx"
	sentinelPackage = "zz9shapepkgqx"
	sentinelSimple  = "Zz9ShapeTypeQx"
)

// Sentinel returns a definition with the same structural shape as def
// but with every name-derived string replaced by a sentinel token,
// together with the sentinel values of the template variable slots.
// Publishing the sentinel definition and splitting the marshaled bytes
// at the sentinel values yields the shape's document template.
func Sentinel(def services.Definition) (services.Definition, []string) {
	cls := *def.Parameter
	cls.Package = sentinelPackage
	cls.Simple = sentinelSimple
	cls.Name = sentinelPackage + "." + sentinelSimple
	sdef := services.Definition{
		Name:          sentinelService,
		OperationName: def.OperationName,
		Parameter:     &cls,
		Variant:       def.Variant,
	}
	return sdef, Vars(sdef)
}

// Memoizable reports whether the definition's name-derived strings
// render identically whether marshaled directly or spliced into a
// split template. Two properties are required of every variable
// value: it must pass through XML attribute serialization unescaped
// (plain printable ASCII without quoting hazards), and the service
// name must survive xsd.SanitizeNCName unchanged, because the
// endpoint path embeds the sanitized name in the same slot. Classes
// that fail the guard — hostile names — simply skip the memo layer
// and take the per-class path.
func Memoizable(def services.Definition) bool {
	for _, v := range Vars(def) {
		if !plain(v) {
			return false
		}
	}
	return xsd.SanitizeNCName(def.Name) == def.Name
}

// plain reports whether s is non-empty printable ASCII free of XML
// and Go-quoting escape triggers, so fmt %q and xml attribute
// escaping both emit it verbatim.
func plain(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e {
			return false
		}
		switch c {
		case '"', '\\', '&', '<', '>', '\'':
			return false
		}
	}
	return true
}
