package report

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"wsinterop/internal/campaign"
)

func failureResult(t *testing.T) *campaign.Result {
	t.Helper()
	res, err := campaign.NewRunner(campaign.Config{Limit: 120, KeepFailures: true}).Run(context.Background())
	if err != nil {
		t.Fatalf("campaign: %v", err)
	}
	return res
}

func TestGroupFailures(t *testing.T) {
	res := failureResult(t)
	groups := GroupFailures(res)
	if len(groups) == 0 {
		t.Fatal("no failure groups")
	}
	// The group list must account for every retained failure.
	entries := 0
	for _, g := range groups {
		entries += len(g.GenClients) + len(g.CompileClients)
		if g.Class == "" || g.Server == "" {
			t.Errorf("incomplete group %+v", g)
		}
	}
	if entries != res.InteropErrors {
		t.Errorf("grouped entries = %d, want %d (interop errors)", entries, res.InteropErrors)
	}
	// Sorted by server, then impact.
	for i := 1; i < len(groups); i++ {
		a, b := groups[i-1], groups[i]
		if a.Server == b.Server {
			ia := len(a.GenClients) + len(a.CompileClients)
			ib := len(b.GenClients) + len(b.CompileClients)
			if ia < ib {
				t.Errorf("groups not ordered by impact: %q(%d) before %q(%d)", a.Class, ia, b.Class, ib)
			}
		}
	}
}

func TestFailuresRendering(t *testing.T) {
	res := failureResult(t)
	var buf bytes.Buffer
	if err := Failures(&buf, res, 5); err != nil {
		t.Fatalf("Failures: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "W3CEndpointReference") {
		t.Errorf("footnote index should lead with the narrative classes:\n%s", out)
	}
	if !strings.Contains(out, "elided") {
		t.Errorf("capped listing should mention elided classes:\n%s", out)
	}
}

func TestFailuresWithoutRetention(t *testing.T) {
	res := sharedResult(t) // KeepFailures unset
	var buf bytes.Buffer
	if err := Failures(&buf, res, 0); err != nil {
		t.Fatalf("Failures: %v", err)
	}
	if !strings.Contains(buf.String(), "KeepFailures") {
		t.Errorf("should point to the retention flag:\n%s", buf.String())
	}
}

func TestFig4ChartRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4Chart(&buf, sharedResult(t)); err != nil {
		t.Fatalf("Fig4Chart: %v", err)
	}
	out := buf.String()
	for _, server := range sharedResult(t).ServerOrder {
		if !strings.Contains(out, server) {
			t.Errorf("chart missing server %q", server)
		}
	}
	if !strings.Contains(out, "#") {
		t.Error("chart has no bars")
	}
	// Bars stay within the width budget.
	for _, line := range strings.Split(out, "\n") {
		if n := strings.Count(line, "#"); n > 48 {
			t.Errorf("bar exceeds width: %q", line)
		}
	}
}

func TestJSONExport(t *testing.T) {
	res := failureResult(t)
	comm, err := campaign.NewRunner(campaign.Config{Limit: 60}).RunCommunication(context.Background())
	if err != nil {
		t.Fatalf("communication: %v", err)
	}
	var buf bytes.Buffer
	robust, err := campaign.NewRunner(campaign.Config{Limit: 60}).RunRobustness(context.Background())
	if err != nil {
		t.Fatalf("robustness: %v", err)
	}
	versions, err := campaign.NewRunner(campaign.Config{Limit: 60}).RunVersions(context.Background())
	if err != nil {
		t.Fatalf("versions: %v", err)
	}
	if err := JSON(&buf, res, comm, robust, versions); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	for _, key := range []string{"totalTests", "servers", "matrix", "failures", "paperComparison", "communication", "robustness", "versions"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("JSON missing key %q", key)
		}
	}
	if matrix, ok := decoded["matrix"].([]any); !ok || len(matrix) != 33 {
		t.Errorf("matrix should have 11×3 cells, got %v", decoded["matrix"])
	}
}

func TestJSONWithoutCommunication(t *testing.T) {
	var buf bytes.Buffer
	if err := JSON(&buf, sharedResult(t), nil, nil, nil); err != nil {
		t.Fatalf("JSON: %v", err)
	}
	if strings.Contains(buf.String(), `"communication"`) {
		t.Error("communication section should be omitted when absent")
	}
	if strings.Contains(buf.String(), `"robustness"`) {
		t.Error("robustness section should be omitted when absent")
	}
	if strings.Contains(buf.String(), `"versions"`) {
		t.Error("versions section should be omitted when absent")
	}
}

func TestCommunicationRendering(t *testing.T) {
	comm, err := campaign.NewRunner(campaign.Config{Limit: 60}).RunCommunication(context.Background())
	if err != nil {
		t.Fatalf("communication: %v", err)
	}
	var buf bytes.Buffer
	if err := Communication(&buf, comm); err != nil {
		t.Fatalf("Communication: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"blocked", "no-operations", "succeeded", "total", "%"} {
		if !strings.Contains(out, want) {
			t.Errorf("communication report missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	comm, err := campaign.NewRunner(campaign.Config{Limit: 60}).RunCommunication(context.Background())
	if err != nil {
		t.Fatalf("communication: %v", err)
	}
	var buf bytes.Buffer
	if err := Markdown(&buf, sharedResult(t), comm, nil, nil); err != nil {
		t.Fatalf("Markdown: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Campaign result", "### Per-server overview (Fig. 4)",
		"### Client × server matrix (Table III)", "### Paper vs measured",
		"### Communication & Execution extension", "| --- |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Every client appears as a table row.
	for _, client := range sharedResult(t).ClientOrder {
		if !strings.Contains(out, "| "+client+" |") {
			t.Errorf("markdown missing row for %q", client)
		}
	}
}

func TestMarkdownWithoutCommunication(t *testing.T) {
	var buf bytes.Buffer
	if err := Markdown(&buf, sharedResult(t), nil, nil, nil); err != nil {
		t.Fatalf("Markdown: %v", err)
	}
	if strings.Contains(buf.String(), "Communication & Execution") {
		t.Error("communication section should be omitted when absent")
	}
	if strings.Contains(buf.String(), "Robustness extension") {
		t.Error("robustness section should be omitted when absent")
	}
	if strings.Contains(buf.String(), "Version matrix extension") {
		t.Error("versions section should be omitted when absent")
	}
}

func TestRobustnessRendering(t *testing.T) {
	robust, err := campaign.NewRunner(campaign.Config{Limit: 60}).RunRobustness(context.Background())
	if err != nil {
		t.Fatalf("robustness: %v", err)
	}
	var buf bytes.Buffer
	if err := Robustness(&buf, robust); err != nil {
		t.Fatalf("Robustness: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"fault", "detected", "masked", "wrong-success", "retry-recovered",
		"total", "wrong-success cells:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("robustness report missing %q:\n%s", want, out)
		}
	}
	for _, fault := range robust.Faults {
		if !strings.Contains(out, fault) {
			t.Errorf("robustness report missing fault row %q", fault)
		}
	}
}

func TestVersionsRendering(t *testing.T) {
	versions, err := campaign.NewRunner(campaign.Config{Limit: 60}).RunVersions(context.Background())
	if err != nil {
		t.Fatalf("versions: %v", err)
	}
	var buf bytes.Buffer
	if err := Versions(&buf, versions); err != nil {
		t.Fatalf("Versions: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"scenario", "typed-reject", "silent-mishandle", "total",
		"hybrid-fault cells accepted: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("versions report missing %q:\n%s", want, out)
		}
	}
	for _, sc := range versions.Scenarios {
		if !strings.Contains(out, sc) {
			t.Errorf("versions report missing scenario row %q", sc)
		}
	}
	for _, client := range versions.ClientOrder {
		if !strings.Contains(out, client) {
			t.Errorf("versions report missing client row %q", client)
		}
	}

	// The markdown renderer carries the same matrix.
	var md bytes.Buffer
	if err := Markdown(&md, sharedResult(t), nil, nil, versions); err != nil {
		t.Fatalf("Markdown: %v", err)
	}
	for _, want := range []string{
		"### Version matrix extension (SOAP 1.1 / 1.2 / hybrid)",
		"| total | hybrid-fault |", "typed rejects:",
	} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("markdown versions section missing %q", want)
		}
	}
}

func TestExplainRendering(t *testing.T) {
	r := campaign.NewRunner(campaign.Config{})
	e, err := r.Explain("Metro", "javax.xml.ws.wsaddressing.W3CEndpointReference")
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	var buf bytes.Buffer
	if err := Explain(&buf, e); err != nil {
		t.Fatalf("Explain: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"W3CEndpointReference on Metro", "WSDL published", "WS-I: R2001",
		"FAILED", "no artifacts; verification skipped", "wsimport",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainRenderingRefused(t *testing.T) {
	r := campaign.NewRunner(campaign.Config{})
	e, err := r.Explain("Metro", "java.util.concurrent.Future")
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	var buf bytes.Buffer
	if err := Explain(&buf, e); err != nil {
		t.Fatalf("Explain: %v", err)
	}
	if !strings.Contains(buf.String(), "not deployed") {
		t.Errorf("refusal not rendered:\n%s", buf.String())
	}
}

func TestMaturityRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Maturity(&buf, sharedResult(t)); err != nil {
		t.Fatalf("Maturity: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"verdict", "mature", "immature", "Apache Axis1"} {
		if !strings.Contains(out, want) {
			t.Errorf("maturity report missing %q:\n%s", want, out)
		}
	}
}
