package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"wsinterop/internal/campaign"
)

// Maturity writes the per-client tool analysis behind the paper's
// §IV.A discussion: which artifact generation tools are "quite
// mature" (they fail cleanly at generation, almost only on non-WS-I-
// compliant documents, and never emit code that breaks compilation)
// and which are not.
func Maturity(w io.Writer, res *campaign.Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "client-side FW\ttests\tgenE\tcompW\tcompE\terr on flagged\terr on clean\tverdict")
	for _, name := range res.ClientOrder {
		c := res.Clients[name]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			name, c.Tests, c.GenErrors, c.CompileWarnings, c.CompileErrors,
			c.ErrorsOnFlagged, c.ErrorsOnClean, verdict(c))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "mature = fails only at generation (no compile errors or warnings), per §IV.A")
	return err
}

func verdict(c *campaign.ClientSummary) string {
	if c.Mature() {
		return "mature"
	}
	return "immature"
}
