package report

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"wsinterop/internal/campaign"
)

var (
	resOnce sync.Once
	res     *campaign.Result
	resErr  error
)

// sharedResult runs one scaled campaign for all report tests.
func sharedResult(t *testing.T) *campaign.Result {
	t.Helper()
	resOnce.Do(func() {
		res, resErr = campaign.NewRunner(campaign.Config{Limit: 120}).Run(context.Background())
	})
	if resErr != nil {
		t.Fatalf("campaign: %v", resErr)
	}
	return res
}

func TestFig4Rendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig4(&buf, sharedResult(t)); err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"services created", "WSDL published", "generation errors",
		"compilation warnings", "Metro", "JBossWS CXF", "WCF .NET", "total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 10 {
		t.Errorf("Fig4 should render 10 lines (header + 9 rows), got %d:\n%s", lines, out)
	}
}

func TestTableIIIRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := TableIII(&buf, sharedResult(t)); err != nil {
		t.Fatalf("TableIII: %v", err)
	}
	out := buf.String()
	for _, client := range sharedResult(t).ClientOrder {
		if !strings.Contains(out, client) {
			t.Errorf("TableIII missing client row %q", client)
		}
	}
	// Header + 11 client rows.
	if lines := strings.Count(out, "\n"); lines != 12 {
		t.Errorf("TableIII should render 12 lines, got %d:\n%s", lines, out)
	}
}

func TestFindingsRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Findings(&buf, sharedResult(t)); err != nil {
		t.Fatalf("Findings: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"tests executed", "interoperability error situations",
		"same-framework error situations", "WS-I-flagged services failing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Findings missing %q:\n%s", want, out)
		}
	}
}

func TestDeployRendering(t *testing.T) {
	var buf bytes.Buffer
	if err := Deploy(&buf, sharedResult(t)); err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if !strings.Contains(buf.String(), "excluded") {
		t.Errorf("Deploy output missing excluded column:\n%s", buf.String())
	}
}

func TestComparisons(t *testing.T) {
	cmp := Comparisons(sharedResult(t))
	if len(cmp) < 20 {
		t.Fatalf("expected a full comparison table, got %d rows", len(cmp))
	}
	seen := make(map[string]bool, len(cmp))
	for _, c := range cmp {
		if seen[c.Metric] {
			t.Errorf("duplicate comparison metric %q", c.Metric)
		}
		seen[c.Metric] = true
		if c.Delta() != c.Measured-c.Paper {
			t.Errorf("delta arithmetic broken for %q", c.Metric)
		}
	}
	var buf bytes.Buffer
	if err := WriteComparisons(&buf, cmp); err != nil {
		t.Fatalf("WriteComparisons: %v", err)
	}
	if !strings.Contains(buf.String(), "paper") || !strings.Contains(buf.String(), "delta") {
		t.Errorf("comparison table header missing:\n%s", buf.String())
	}
}

func TestSortedServerNames(t *testing.T) {
	names := SortedServerNames(sharedResult(t))
	if len(names) != 3 {
		t.Fatalf("names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("not sorted: %v", names)
		}
	}
}
