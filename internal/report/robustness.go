package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"wsinterop/internal/campaign"
)

// Robustness writes the fault-injection extension summary: the
// (server × fault) matrix of robustness outcomes, the per-client
// attribution, and the wrong-success verdict line.
func Robustness(w io.Writer, res *campaign.RobustResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "server\tfault\tcells\tskipped\tdetected\tmasked\twrong-success\tretry-recovered")
	write := func(server, fault string, c *campaign.RobustCounts) {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			server, fault, c.Cells, c.Skipped, c.Detected, c.Masked, c.WrongSuccess, c.Recovered)
	}
	for _, server := range res.ServerOrder {
		for _, fault := range res.Faults {
			write(server, fault, res.Servers[server][fault])
		}
	}
	faultTotals := res.FaultTotals()
	for _, fault := range res.Faults {
		write("total", fault, faultTotals[fault])
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if len(res.ClientOrder) > 0 {
		fmt.Fprintln(w)
		ct := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(ct, "client\tcells\tskipped\tdetected\tmasked\twrong-success\tretry-recovered")
		for _, name := range res.ClientOrder {
			c := res.Clients[name]
			fmt.Fprintf(ct, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
				name, c.Cells, c.Skipped, c.Detected, c.Masked, c.WrongSuccess, c.Recovered)
		}
		if err := ct.Flush(); err != nil {
			return err
		}
	}

	totals := res.Totals()
	if res.PathCollisions > 0 {
		fmt.Fprintf(w, "%d endpoint path collisions resolved with deterministic suffixes\n", res.PathCollisions)
	}
	_, err := fmt.Fprintf(w,
		"wrong-success cells: %d (0 means the client surfaces every wire-signaled failure); %d recovered by retry\n",
		totals.WrongSuccess, totals.Recovered)
	return err
}
