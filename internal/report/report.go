// Package report renders campaign results in the shapes the paper
// reports them: the Fig. 4 per-server step overview, the Table III
// client × server issue matrix, the §IV headline findings, and the
// service-filtering summary of the Preparation Phase.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"wsinterop/internal/campaign"
)

// Fig4 writes the per-server overview of warnings and errors at each
// Testing Phase step (the paper's Fig. 4).
func Fig4(w io.Writer, res *campaign.Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\t"+strings.Join(res.ServerOrder, "\t")+"\ttotal")
	rows := []struct {
		name string
		get  func(*campaign.ServerSummary) int
	}{
		{"services created", func(s *campaign.ServerSummary) int { return s.Created }},
		{"WSDL published", func(s *campaign.ServerSummary) int { return s.Deployed }},
		{"description warnings", func(s *campaign.ServerSummary) int { return s.DescriptionWarnings }},
		{"description errors", func(s *campaign.ServerSummary) int { return s.DescriptionErrors }},
		{"tests executed", func(s *campaign.ServerSummary) int { return s.Tests }},
		{"generation warnings", func(s *campaign.ServerSummary) int { return s.GenWarnings }},
		{"generation errors", func(s *campaign.ServerSummary) int { return s.GenErrors }},
		{"compilation warnings", func(s *campaign.ServerSummary) int { return s.CompileWarnings }},
		{"compilation errors", func(s *campaign.ServerSummary) int { return s.CompileErrors }},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.name)
		total := 0
		for _, name := range res.ServerOrder {
			v := r.get(res.Servers[name])
			total += v
			fmt.Fprintf(tw, "\t%d", v)
		}
		fmt.Fprintf(tw, "\t%d\n", total)
	}
	return tw.Flush()
}

// TableIII writes the detailed client × server issue matrix (the
// paper's Table III): per combination, generation warnings/errors and
// compilation warnings/errors.
func TableIII(w io.Writer, res *campaign.Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "client-side FW")
	for _, s := range res.ServerOrder {
		fmt.Fprintf(tw, "\t%s genW\tgenE\tcompW\tcompE", s)
	}
	fmt.Fprintln(tw)
	for _, c := range res.ClientOrder {
		fmt.Fprint(tw, c)
		for _, s := range res.ServerOrder {
			cell := res.Matrix[c][s]
			fmt.Fprintf(tw, "\t%d\t%d\t%d\t%d",
				cell.GenWarnings, cell.GenErrors, cell.CompileWarnings, cell.CompileErrors)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Findings writes the §IV headline statistics.
func Findings(w io.Writer, res *campaign.Result) error {
	genErrors, compErrors := 0, 0
	genWarnings, compWarnings := 0, 0
	for _, s := range res.Servers {
		genErrors += s.GenErrors
		compErrors += s.CompileErrors
		genWarnings += s.GenWarnings
		compWarnings += s.CompileWarnings
	}
	flaggedFailing := res.FlaggedServices - res.FlaggedCleanServices
	pct := 0.0
	if res.FlaggedServices > 0 {
		pct = 100 * float64(flaggedFailing) / float64(res.FlaggedServices)
	}
	lines := []string{
		fmt.Sprintf("services created:                   %d", res.TotalServices),
		fmt.Sprintf("service descriptions published:     %d", res.TotalPublished),
		fmt.Sprintf("services excluded (undeployable):   %d", res.TotalServices-res.TotalPublished),
		fmt.Sprintf("tests executed:                     %d", res.TotalTests),
		fmt.Sprintf("description-step warnings (WS-I):   %d", res.FlaggedServices),
		fmt.Sprintf("artifact generation warnings:       %d", genWarnings),
		fmt.Sprintf("artifact generation errors:         %d", genErrors),
		fmt.Sprintf("artifact compilation warnings:      %d", compWarnings),
		fmt.Sprintf("artifact compilation errors:        %d", compErrors),
		fmt.Sprintf("interoperability error situations:  %d", res.InteropErrors),
		fmt.Sprintf("same-framework error situations:    %d", res.SameFrameworkErrors),
		fmt.Sprintf("WS-I-flagged services failing on:   %d of %d (%.1f%%)", flaggedFailing, res.FlaggedServices, pct),
		fmt.Sprintf("WS-I-clean services still failing:  %d", res.UnflaggedFailingServices),
	}
	for _, ln := range lines {
		if _, err := fmt.Fprintln(w, ln); err != nil {
			return err
		}
	}
	return nil
}

// Dedup writes the structural-shape memoization statistics: how many
// distinct shapes the campaign saw and how much publish/WS-I/test
// work the memo layer absorbed.
func Dedup(w io.Writer, res *campaign.Result) error {
	d := res.Dedup
	if d == nil || !d.Enabled {
		_, err := fmt.Fprintln(w, "shape memoization disabled (-dedup=false)")
		return err
	}
	rate := func(hits, total int) float64 {
		if total == 0 {
			return 0
		}
		return 100 * float64(hits) / float64(total)
	}
	classes := 0.0
	if d.Shapes > 0 {
		classes = float64(d.PublishTotal) / float64(d.Shapes)
	}
	lines := []string{
		fmt.Sprintf("distinct structural shapes:         %d", d.Shapes),
		fmt.Sprintf("classes per shape:                  %.2f", classes),
		fmt.Sprintf("publishes memoized:                 %d of %d (%.1f%%)", d.PublishMemoized, d.PublishTotal, rate(d.PublishMemoized, d.PublishTotal)),
		fmt.Sprintf("client tests memoized:              %d of %d (%.1f%%)", d.TestMemoized, d.TestTotal, rate(d.TestMemoized, d.TestTotal)),
		fmt.Sprintf("template fallbacks (per-class):     %d", d.Fallbacks),
		fmt.Sprintf("WS-I verdicts memoized:             %d of %d (%.1f%%)",
			d.WSIMemoized, d.WSIMemoized+d.WSIChecks, rate(d.WSIMemoized, d.WSIMemoized+d.WSIChecks)),
	}
	for _, ln := range lines {
		if _, err := fmt.Fprintln(w, ln); err != nil {
			return err
		}
	}
	return nil
}

// Profiles writes the per-profile compliance matrix: for every
// registered compliance profile, how many of each server's published
// descriptions satisfied it. The primary profile drives the campaign's
// Flagged/Compliant verdicts; the other registered profiles are
// evaluated alongside it on the same documents.
func Profiles(w io.Writer, res *campaign.Result) error {
	if len(res.Profiles) == 0 {
		_, err := fmt.Fprintln(w, "no compliance profiles registered")
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "profile")
	for _, s := range res.ServerOrder {
		fmt.Fprintf(tw, "\t%s", s)
	}
	fmt.Fprintln(tw, "\ttotal\tchecked")
	for _, pc := range res.Profiles {
		fmt.Fprintf(tw, "%s", pc.ID)
		for _, s := range res.ServerOrder {
			fmt.Fprintf(tw, "\t%d", pc.Compliant[s])
		}
		fmt.Fprintf(tw, "\t%d\t%d\n", pc.TotalCompliant, res.TotalPublished)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, pc := range res.Profiles {
		if _, err := fmt.Fprintf(w, "%s: %s\n", pc.ID, pc.Name); err != nil {
			return err
		}
	}
	return nil
}

// Plan writes the execution-plan summary (-report plan): how the
// planner partitions each server's catalog into shape groups, and how
// much of the campaign the clone broadcast will serve (DESIGN.md §12).
func Plan(w io.Writer, sum *campaign.PlanSummary) error {
	fmt.Fprintf(w, "plan fingerprint: %s (source: %s)\n", sum.Fingerprint, sum.Source)
	if sum.NoDedup {
		fmt.Fprintln(w, "shape memoization disabled: every class runs the direct path")
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "server\tclasses\tshapes\tclones\tunsafe\tloose")
	for _, s := range sum.Servers {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\n",
			s.Server, s.Classes, s.Shapes, s.Clones, s.Unsafe, s.Loose)
	}
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\t%d\t%d\n",
		sum.Classes, sum.Shapes, sum.Clones, sum.Unsafe, sum.Loose)
	return tw.Flush()
}

// Deploy writes the Preparation Phase / description-step filtering
// summary (services created vs published per server).
func Deploy(w io.Writer, res *campaign.Result) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "server\tcreated\tpublished\texcluded")
	for _, name := range res.ServerOrder {
		s := res.Servers[name]
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", name, s.Created, s.Deployed, s.Created-s.Deployed)
	}
	fmt.Fprintf(tw, "total\t%d\t%d\t%d\n",
		res.TotalServices, res.TotalPublished, res.TotalServices-res.TotalPublished)
	return tw.Flush()
}

// PaperComparison is one paper-vs-measured row of EXPERIMENTS.md.
type PaperComparison struct {
	Metric   string
	Paper    int
	Measured int
}

// Delta returns measured − paper.
func (p PaperComparison) Delta() int { return p.Measured - p.Paper }

// Comparisons assembles the paper-vs-measured table for the full
// campaign (paper values from DESIGN.md §3).
func Comparisons(res *campaign.Result) []PaperComparison {
	genW, genE, compW, compE := 0, 0, 0, 0
	for _, s := range res.Servers {
		genW += s.GenWarnings
		genE += s.GenErrors
		compW += s.CompileWarnings
		compE += s.CompileErrors
	}
	cmp := []PaperComparison{
		{"services created", 22024, res.TotalServices},
		{"service descriptions published", 7239, res.TotalPublished},
		{"tests executed", 79629, res.TotalTests},
		{"description-step warnings", 86, res.FlaggedServices},
		{"generation warnings", 4763, genW},
		{"generation errors", 287, genE},
		{"compilation warnings", 14478, compW},
		{"compilation errors", 1301, compE},
		{"same-framework error situations", 307, res.SameFrameworkErrors},
		{"interoperability error situations (paper text: 1583)", 1588, res.InteropErrors},
	}
	for _, name := range res.ServerOrder {
		s := res.Servers[name]
		paper := map[string][4]int{
			"Metro":       {2489, 13, 4978, 529},
			"JBossWS CXF": {2248, 21, 4496, 464},
			"WCF .NET":    {2502, 253, 5004, 308},
		}[name]
		cmp = append(cmp,
			PaperComparison{name + ": published WSDLs", paper[0], s.Deployed},
			PaperComparison{name + ": generation errors", paper[1], s.GenErrors},
			PaperComparison{name + ": compilation warnings", paper[2], s.CompileWarnings},
			PaperComparison{name + ": compilation errors", paper[3], s.CompileErrors},
		)
	}
	return cmp
}

// WriteComparisons renders the paper-vs-measured table.
func WriteComparisons(w io.Writer, cmp []PaperComparison) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "metric\tpaper\tmeasured\tdelta")
	for _, c := range cmp {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%+d\n", c.Metric, c.Paper, c.Measured, c.Delta())
	}
	return tw.Flush()
}

// SortedServerNames returns result server names sorted alphabetically
// (utility for deterministic ad-hoc reporting).
func SortedServerNames(res *campaign.Result) []string {
	names := make([]string, 0, len(res.Servers))
	for n := range res.Servers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
