package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"wsinterop/internal/campaign"
)

// Versions writes the hybrid-version interop matrix summary: the
// (server × scenario) matrix of version outcomes, the per-client
// attribution, and the swallowed-fault verdict line.
func Versions(w io.Writer, res *campaign.VersionResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "server\tscenario\tcells\tskipped\taccept\ttyped-reject\tsilent-mishandle")
	write := func(server, scenario string, c *campaign.VersionCounts) {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\n",
			server, scenario, c.Cells, c.Skipped, c.Accepted, c.Rejected, c.Mishandled)
	}
	for _, server := range res.ServerOrder {
		for _, sc := range res.Scenarios {
			write(server, sc, res.Servers[server][sc])
		}
	}
	scenarioTotals := res.ScenarioTotals()
	for _, sc := range res.Scenarios {
		write("total", sc, scenarioTotals[sc])
	}
	if err := tw.Flush(); err != nil {
		return err
	}

	if len(res.ClientOrder) > 0 {
		fmt.Fprintln(w)
		ct := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(ct, "client\tcells\tskipped\taccept\ttyped-reject\tsilent-mishandle")
		for _, name := range res.ClientOrder {
			c := res.Clients[name]
			fmt.Fprintf(ct, "%s\t%d\t%d\t%d\t%d\t%d\n",
				name, c.Cells, c.Skipped, c.Accepted, c.Rejected, c.Mishandled)
		}
		if err := ct.Flush(); err != nil {
			return err
		}
	}

	if res.PathCollisions > 0 {
		fmt.Fprintf(w, "%d endpoint path collisions resolved with deterministic suffixes\n", res.PathCollisions)
	}
	hf := scenarioTotals["hybrid-fault"]
	accepted := 0
	if hf != nil {
		accepted = hf.Accepted
	}
	totals := res.Totals()
	_, err := fmt.Fprintf(w,
		"hybrid-fault cells accepted: %d (0 means no swallowed fault is reported as success); %d silent-mishandles overall\n",
		accepted, totals.Mishandled)
	return err
}
