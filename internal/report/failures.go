package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"

	"wsinterop/internal/campaign"
)

// FailureGroup is one footnote-style entry: a parameter class on one
// server, with the clients it broke and at which step.
type FailureGroup struct {
	Server string
	Class  string
	// GenClients and CompileClients list client frameworks whose
	// generation / compilation step errored, sorted.
	GenClients     []string
	CompileClients []string
}

// GroupFailures builds the footnote index from retained failures
// (requires campaign.Config.KeepFailures). Groups are ordered by
// server, then by descending client impact, then class name — so the
// classes that break the most clients (the paper's a–h narratives)
// lead the listing.
func GroupFailures(res *campaign.Result) []FailureGroup {
	type key struct{ server, class string }
	idx := make(map[key]*FailureGroup)
	for i := range res.Failures {
		f := &res.Failures[i]
		k := key{f.Server, f.Class}
		g, ok := idx[k]
		if !ok {
			g = &FailureGroup{Server: f.Server, Class: f.Class}
			idx[k] = g
		}
		if f.Gen.Error {
			g.GenClients = append(g.GenClients, f.Client)
		}
		if f.Compile.Error {
			g.CompileClients = append(g.CompileClients, f.Client)
		}
	}
	groups := make([]FailureGroup, 0, len(idx))
	for _, g := range idx {
		sort.Strings(g.GenClients)
		sort.Strings(g.CompileClients)
		groups = append(groups, *g)
	}
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].Server != groups[j].Server {
			return groups[i].Server < groups[j].Server
		}
		li := len(groups[i].GenClients) + len(groups[i].CompileClients)
		lj := len(groups[j].GenClients) + len(groups[j].CompileClients)
		if li != lj {
			return li > lj
		}
		return groups[i].Class < groups[j].Class
	})
	return groups
}

// Failures writes the footnote index. maxPerServer caps the listing
// per server (0 = unlimited); at full scale the WCF column alone has
// hundreds of throwaway entries, so the CLI uses a cap.
func Failures(w io.Writer, res *campaign.Result, maxPerServer int) error {
	groups := GroupFailures(res)
	if len(groups) == 0 {
		_, err := fmt.Fprintln(w, "no failures retained (run with KeepFailures)")
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "server\tparameter class\tgeneration errors\tcompilation errors")
	perServer := make(map[string]int, 4)
	elided := make(map[string]int, 4)
	for _, g := range groups {
		perServer[g.Server]++
		if maxPerServer > 0 && perServer[g.Server] > maxPerServer {
			elided[g.Server]++
			continue
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n",
			g.Server, g.Class, joinOrDash(g.GenClients), joinOrDash(g.CompileClients))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	servers := make([]string, 0, len(elided))
	for s := range elided {
		servers = append(servers, s)
	}
	sort.Strings(servers)
	for _, s := range servers {
		if _, err := fmt.Fprintf(w, "... %d more classes on %s elided\n", elided[s], s); err != nil {
			return err
		}
	}
	return nil
}

func joinOrDash(names []string) string {
	if len(names) == 0 {
		return "-"
	}
	return strings.Join(names, ", ")
}
