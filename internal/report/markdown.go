package report

import (
	"fmt"
	"io"
	"strings"

	"wsinterop/internal/campaign"
)

// Markdown renders the complete campaign result as GitHub-flavoured
// markdown — the format used by EXPERIMENTS.md, so CI runs can
// regenerate the record verbatim (`cmd/interop -report markdown`).
func Markdown(w io.Writer, res *campaign.Result, comm *campaign.CommResult, robust *campaign.RobustResult, versions *campaign.VersionResult) error {
	mw := &markdownWriter{w: w}

	mw.heading(2, "Campaign result")
	mw.printf("Services created: %d · published: %d · tests executed: %d\n\n",
		res.TotalServices, res.TotalPublished, res.TotalTests)
	mw.printf("Interoperability error situations: %d · same-framework: %d · WS-I-flagged services: %d (%d clean everywhere)\n",
		res.InteropErrors, res.SameFrameworkErrors, res.FlaggedServices, res.FlaggedCleanServices)

	mw.heading(3, "Per-server overview (Fig. 4)")
	header := append([]string{"metric"}, res.ServerOrder...)
	mw.tableHeader(append(header, "total"))
	rows := []struct {
		name string
		get  func(*campaign.ServerSummary) int
	}{
		{"services created", func(s *campaign.ServerSummary) int { return s.Created }},
		{"WSDL published", func(s *campaign.ServerSummary) int { return s.Deployed }},
		{"description warnings", func(s *campaign.ServerSummary) int { return s.DescriptionWarnings }},
		{"generation warnings", func(s *campaign.ServerSummary) int { return s.GenWarnings }},
		{"generation errors", func(s *campaign.ServerSummary) int { return s.GenErrors }},
		{"compilation warnings", func(s *campaign.ServerSummary) int { return s.CompileWarnings }},
		{"compilation errors", func(s *campaign.ServerSummary) int { return s.CompileErrors }},
	}
	for _, r := range rows {
		cells := []string{r.name}
		total := 0
		for _, name := range res.ServerOrder {
			v := r.get(res.Servers[name])
			total += v
			cells = append(cells, fmt.Sprintf("%d", v))
		}
		mw.tableRow(append(cells, fmt.Sprintf("%d", total)))
	}

	mw.heading(3, "Client × server matrix (Table III)")
	head := []string{"client"}
	for _, s := range res.ServerOrder {
		head = append(head, s+" genW/genE/compW/compE")
	}
	mw.tableHeader(head)
	for _, c := range res.ClientOrder {
		cells := []string{c}
		for _, s := range res.ServerOrder {
			cell := res.Matrix[c][s]
			cells = append(cells, fmt.Sprintf("%d / %d / %d / %d",
				cell.GenWarnings, cell.GenErrors, cell.CompileWarnings, cell.CompileErrors))
		}
		mw.tableRow(cells)
	}

	mw.heading(3, "Client tool maturity (§IV.A)")
	mw.tableHeader([]string{"client", "genE", "compW", "compE", "err flagged", "err clean", "verdict"})
	for _, name := range res.ClientOrder {
		c := res.Clients[name]
		mw.tableRow([]string{name,
			fmt.Sprintf("%d", c.GenErrors), fmt.Sprintf("%d", c.CompileWarnings),
			fmt.Sprintf("%d", c.CompileErrors), fmt.Sprintf("%d", c.ErrorsOnFlagged),
			fmt.Sprintf("%d", c.ErrorsOnClean), verdict(c)})
	}

	if len(res.Profiles) > 0 {
		mw.heading(3, "Compliance profiles")
		head := append([]string{"profile"}, res.ServerOrder...)
		mw.tableHeader(append(head, "total", "checked"))
		for _, pc := range res.Profiles {
			cells := []string{pc.ID}
			for _, s := range res.ServerOrder {
				cells = append(cells, fmt.Sprintf("%d", pc.Compliant[s]))
			}
			mw.tableRow(append(cells,
				fmt.Sprintf("%d", pc.TotalCompliant), fmt.Sprintf("%d", res.TotalPublished)))
		}
		for _, pc := range res.Profiles {
			mw.printf("\n`%s`: %s", pc.ID, pc.Name)
		}
		mw.printf("\n")
	}

	mw.heading(3, "Paper vs measured")
	mw.tableHeader([]string{"metric", "paper", "measured", "Δ"})
	for _, c := range Comparisons(res) {
		mw.tableRow([]string{c.Metric,
			fmt.Sprintf("%d", c.Paper), fmt.Sprintf("%d", c.Measured),
			fmt.Sprintf("%+d", c.Delta())})
	}

	if comm != nil {
		mw.heading(3, "Communication & Execution extension")
		mw.tableHeader([]string{"server", "combinations", "blocked", "no-operations",
			"faults", "mismatches", "succeeded", "msg-violations"})
		writeRow := func(s *campaign.CommSummary) {
			mw.tableRow([]string{s.Server,
				fmt.Sprintf("%d", s.Combinations), fmt.Sprintf("%d", s.Blocked),
				fmt.Sprintf("%d", s.NoOperations), fmt.Sprintf("%d", s.Faults),
				fmt.Sprintf("%d", s.Mismatches), fmt.Sprintf("%d", s.Succeeded),
				fmt.Sprintf("%d", s.MessageViolations)})
		}
		for _, name := range comm.ServerOrder {
			writeRow(comm.Servers[name])
		}
		totals := comm.Totals()
		writeRow(&totals)
	}

	if robust != nil {
		mw.heading(3, "Robustness extension (fault injection)")
		mw.tableHeader([]string{"server", "fault", "cells", "skipped", "detected",
			"masked", "wrong-success", "retry-recovered"})
		writeRobust := func(server, fault string, c *campaign.RobustCounts) {
			mw.tableRow([]string{server, fault,
				fmt.Sprintf("%d", c.Cells), fmt.Sprintf("%d", c.Skipped),
				fmt.Sprintf("%d", c.Detected), fmt.Sprintf("%d", c.Masked),
				fmt.Sprintf("%d", c.WrongSuccess), fmt.Sprintf("%d", c.Recovered)})
		}
		for _, server := range robust.ServerOrder {
			for _, fault := range robust.Faults {
				writeRobust(server, fault, robust.Servers[server][fault])
			}
		}
		faultTotals := robust.FaultTotals()
		for _, fault := range robust.Faults {
			writeRobust("total", fault, faultTotals[fault])
		}
		totals := robust.Totals()
		mw.printf("\nwrong-success cells: %d · retry-recovered: %d\n",
			totals.WrongSuccess, totals.Recovered)
	}

	if versions != nil {
		mw.heading(3, "Version matrix extension (SOAP 1.1 / 1.2 / hybrid)")
		mw.tableHeader([]string{"server", "scenario", "cells", "skipped", "accept",
			"typed-reject", "silent-mishandle"})
		writeVersion := func(server, scenario string, c *campaign.VersionCounts) {
			mw.tableRow([]string{server, scenario,
				fmt.Sprintf("%d", c.Cells), fmt.Sprintf("%d", c.Skipped),
				fmt.Sprintf("%d", c.Accepted), fmt.Sprintf("%d", c.Rejected),
				fmt.Sprintf("%d", c.Mishandled)})
		}
		for _, server := range versions.ServerOrder {
			for _, sc := range versions.Scenarios {
				writeVersion(server, sc, versions.Servers[server][sc])
			}
		}
		scenarioTotals := versions.ScenarioTotals()
		for _, sc := range versions.Scenarios {
			writeVersion("total", sc, scenarioTotals[sc])
		}
		totals := versions.Totals()
		mw.printf("\ntyped rejects: %d · silent mishandles: %d\n",
			totals.Rejected, totals.Mishandled)
	}
	return mw.err
}

// markdownWriter accumulates the first write error, keeping the
// rendering code linear.
type markdownWriter struct {
	w   io.Writer
	err error
}

func (m *markdownWriter) printf(format string, args ...any) {
	if m.err != nil {
		return
	}
	_, m.err = fmt.Fprintf(m.w, format, args...)
}

func (m *markdownWriter) heading(level int, text string) {
	m.printf("\n%s %s\n\n", strings.Repeat("#", level), text)
}

func (m *markdownWriter) tableHeader(cells []string) {
	m.tableRow(cells)
	seps := make([]string, len(cells))
	for i := range seps {
		seps[i] = "---"
	}
	m.tableRow(seps)
}

func (m *markdownWriter) tableRow(cells []string) {
	m.printf("| %s |\n", strings.Join(cells, " | "))
}
