package report

import (
	"fmt"
	"io"
	"text/tabwriter"

	"wsinterop/internal/campaign"
)

// Communication writes the communication/execution extension summary
// (experiment E6 at scale — the paper's future work).
func Communication(w io.Writer, res *campaign.CommResult) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "server\tcombinations\tblocked\tno-operations\tfaults\tmismatches\tsucceeded\texchanges\tmsg-violations\tpath-collisions")
	write := func(s *campaign.CommSummary) {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			s.Server, s.Combinations, s.Blocked, s.NoOperations,
			s.Faults, s.Mismatches, s.Succeeded, s.Exchanges, s.MessageViolations, s.PathCollisions)
	}
	for _, name := range res.ServerOrder {
		write(res.Servers[name])
	}
	totals := res.Totals()
	write(&totals)
	if err := tw.Flush(); err != nil {
		return err
	}

	// Per-client attribution of the blocked and silent combinations.
	if len(res.ClientOrder) > 0 {
		fmt.Fprintln(w)
		ct := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		fmt.Fprintln(ct, "client\tblocked\tno-operations\tsucceeded")
		for _, name := range res.ClientOrder {
			c := res.Clients[name]
			fmt.Fprintf(ct, "%s\t%d\t%d\t%d\n", name, c.Blocked, c.NoOperations, c.Succeeded)
		}
		if err := ct.Flush(); err != nil {
			return err
		}
	}
	if totals.Combinations > 0 {
		pct := 100 * float64(totals.Succeeded) / float64(totals.Combinations)
		_, err := fmt.Fprintf(w,
			"combinations whose static steps passed complete the round trip; %.1f%% of all combinations succeed end to end\n", pct)
		return err
	}
	return nil
}
