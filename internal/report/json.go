package report

import (
	"encoding/json"
	"io"

	"wsinterop/internal/campaign"
	"wsinterop/internal/obs"
)

// jsonResult is the machine-readable export shape. It is a distinct
// struct (rather than marshaling campaign.Result directly) so the
// wire contract is explicit and stable under internal refactors.
type jsonResult struct {
	TotalServices       int                    `json:"totalServices"`
	TotalPublished      int                    `json:"totalPublished"`
	TotalTests          int                    `json:"totalTests"`
	InteropErrors       int                    `json:"interopErrors"`
	SameFramework       int                    `json:"sameFrameworkErrors"`
	FlaggedServices     int                    `json:"flaggedServices"`
	FlaggedClean        int                    `json:"flaggedCleanServices"`
	Servers             []jsonServer           `json:"servers"`
	Matrix              []jsonCell             `json:"matrix"`
	Failures            []jsonFailure          `json:"failures,omitempty"`
	PaperComparisonRows []jsonComparison       `json:"paperComparison"`
	Communication       []campaign.CommSummary `json:"communication,omitempty"`
	Robustness          []jsonRobust           `json:"robustness,omitempty"`
	Versions            []jsonVersion          `json:"versions,omitempty"`
	Dedup               *jsonDedup             `json:"dedup,omitempty"`
	// Profiles is the per-profile compliance matrix: one row per
	// registered compliance profile, keyed per server.
	Profiles []jsonProfile `json:"profiles,omitempty"`
	// Metrics carries the runner's observability snapshot as taken at
	// the end of the static campaign (Result.Metrics).
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// jsonDedup exports the structural-shape memoization statistics.
type jsonDedup struct {
	Enabled         bool `json:"enabled"`
	Shapes          int  `json:"shapes"`
	PublishTotal    int  `json:"publishTotal"`
	PublishMemoized int  `json:"publishMemoized"`
	TestTotal       int  `json:"testTotal"`
	TestMemoized    int  `json:"testMemoized"`
	Fallbacks       int  `json:"fallbacks"`
	WSIChecks       int  `json:"wsiChecks"`
	WSIMemoized     int  `json:"wsiMemoized"`
}

// jsonProfile is one compliance profile's row of the per-profile
// matrix.
type jsonProfile struct {
	ID             string         `json:"id"`
	Name           string         `json:"name"`
	Compliant      map[string]int `json:"compliantByServer"`
	TotalCompliant int            `json:"totalCompliant"`
	Checked        int            `json:"checked"`
}

// jsonVersion is one (server × scenario) row of the hybrid-version
// interop matrix.
type jsonVersion struct {
	Server     string `json:"server"`
	Scenario   string `json:"scenario"`
	Cells      int    `json:"cells"`
	Skipped    int    `json:"skipped"`
	Accepted   int    `json:"accepted"`
	Rejected   int    `json:"typedReject"`
	Mishandled int    `json:"silentMishandle"`
}

// jsonRobust is one (server × fault) row of the robustness matrix.
type jsonRobust struct {
	Server       string `json:"server"`
	Fault        string `json:"fault"`
	Cells        int    `json:"cells"`
	Skipped      int    `json:"skipped"`
	Detected     int    `json:"detected"`
	Masked       int    `json:"masked"`
	WrongSuccess int    `json:"wrongSuccess"`
	Recovered    int    `json:"retryRecovered"`
}

type jsonServer struct {
	Name                string `json:"name"`
	Created             int    `json:"created"`
	Deployed            int    `json:"deployed"`
	DescriptionWarnings int    `json:"descriptionWarnings"`
	GenWarnings         int    `json:"generationWarnings"`
	GenErrors           int    `json:"generationErrors"`
	CompileWarnings     int    `json:"compilationWarnings"`
	CompileErrors       int    `json:"compilationErrors"`
}

type jsonCell struct {
	Client          string `json:"client"`
	Server          string `json:"server"`
	Tests           int    `json:"tests"`
	GenWarnings     int    `json:"generationWarnings"`
	GenErrors       int    `json:"generationErrors"`
	CompileWarnings int    `json:"compilationWarnings"`
	CompileErrors   int    `json:"compilationErrors"`
}

type jsonFailure struct {
	Server         string   `json:"server"`
	Class          string   `json:"class"`
	GenClients     []string `json:"generationErrorClients,omitempty"`
	CompileClients []string `json:"compilationErrorClients,omitempty"`
}

type jsonComparison struct {
	Metric   string `json:"metric"`
	Paper    int    `json:"paper"`
	Measured int    `json:"measured"`
	Delta    int    `json:"delta"`
}

// JSON writes the complete campaign result (and optional
// communication, robustness and version-matrix summaries) as indented
// JSON.
func JSON(w io.Writer, res *campaign.Result, comm *campaign.CommResult, robust *campaign.RobustResult, versions *campaign.VersionResult) error {
	out := jsonResult{
		TotalServices:   res.TotalServices,
		TotalPublished:  res.TotalPublished,
		TotalTests:      res.TotalTests,
		InteropErrors:   res.InteropErrors,
		SameFramework:   res.SameFrameworkErrors,
		FlaggedServices: res.FlaggedServices,
		FlaggedClean:    res.FlaggedCleanServices,
	}
	for _, name := range res.ServerOrder {
		s := res.Servers[name]
		out.Servers = append(out.Servers, jsonServer{
			Name: name, Created: s.Created, Deployed: s.Deployed,
			DescriptionWarnings: s.DescriptionWarnings,
			GenWarnings:         s.GenWarnings, GenErrors: s.GenErrors,
			CompileWarnings: s.CompileWarnings, CompileErrors: s.CompileErrors,
		})
	}
	for _, client := range res.ClientOrder {
		for _, server := range res.ServerOrder {
			c := res.Matrix[client][server]
			out.Matrix = append(out.Matrix, jsonCell{
				Client: client, Server: server, Tests: c.Tests,
				GenWarnings: c.GenWarnings, GenErrors: c.GenErrors,
				CompileWarnings: c.CompileWarnings, CompileErrors: c.CompileErrors,
			})
		}
	}
	for _, g := range GroupFailures(res) {
		out.Failures = append(out.Failures, jsonFailure(g))
	}
	if d := res.Dedup; d != nil {
		out.Dedup = &jsonDedup{
			Enabled: d.Enabled, Shapes: d.Shapes,
			PublishTotal: d.PublishTotal, PublishMemoized: d.PublishMemoized,
			TestTotal: d.TestTotal, TestMemoized: d.TestMemoized,
			Fallbacks: d.Fallbacks,
			WSIChecks: d.WSIChecks, WSIMemoized: d.WSIMemoized,
		}
	}
	for _, pc := range res.Profiles {
		compliant := make(map[string]int, len(pc.Compliant))
		for server, n := range pc.Compliant {
			compliant[server] = n
		}
		out.Profiles = append(out.Profiles, jsonProfile{
			ID: pc.ID, Name: pc.Name, Compliant: compliant,
			TotalCompliant: pc.TotalCompliant, Checked: res.TotalPublished,
		})
	}
	out.Metrics = res.Metrics
	for _, c := range Comparisons(res) {
		out.PaperComparisonRows = append(out.PaperComparisonRows, jsonComparison{
			Metric: c.Metric, Paper: c.Paper, Measured: c.Measured, Delta: c.Delta(),
		})
	}
	if comm != nil {
		for _, name := range comm.ServerOrder {
			out.Communication = append(out.Communication, *comm.Servers[name])
		}
	}
	if robust != nil {
		for _, server := range robust.ServerOrder {
			for _, fault := range robust.Faults {
				c := robust.Servers[server][fault]
				out.Robustness = append(out.Robustness, jsonRobust{
					Server: server, Fault: fault, Cells: c.Cells,
					Skipped: c.Skipped, Detected: c.Detected, Masked: c.Masked,
					WrongSuccess: c.WrongSuccess, Recovered: c.Recovered,
				})
			}
		}
	}
	if versions != nil {
		for _, server := range versions.ServerOrder {
			for _, sc := range versions.Scenarios {
				c := versions.Servers[server][sc]
				out.Versions = append(out.Versions, jsonVersion{
					Server: server, Scenario: sc, Cells: c.Cells,
					Skipped: c.Skipped, Accepted: c.Accepted,
					Rejected: c.Rejected, Mishandled: c.Mishandled,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
