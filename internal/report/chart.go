package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"wsinterop/internal/campaign"
)

// Fig4Chart renders the Fig. 4 overview as horizontal bars, mirroring
// the paper's bar-chart presentation. Bars use a logarithmic-feeling
// square-root scale because the series span four orders of magnitude
// (2 vs 5 004) — exactly the problem the original figure has.
func Fig4Chart(w io.Writer, res *campaign.Result) error {
	series := []struct {
		name string
		get  func(*campaign.ServerSummary) int
	}{
		{"description warnings", func(s *campaign.ServerSummary) int { return s.DescriptionWarnings }},
		{"description errors", func(s *campaign.ServerSummary) int { return s.DescriptionErrors }},
		{"generation warnings", func(s *campaign.ServerSummary) int { return s.GenWarnings }},
		{"generation errors", func(s *campaign.ServerSummary) int { return s.GenErrors }},
		{"compilation warnings", func(s *campaign.ServerSummary) int { return s.CompileWarnings }},
		{"compilation errors", func(s *campaign.ServerSummary) int { return s.CompileErrors }},
	}

	maxVal := 1
	for _, server := range res.ServerOrder {
		for _, sr := range series {
			if v := sr.get(res.Servers[server]); v > maxVal {
				maxVal = v
			}
		}
	}
	const width = 48
	scale := func(v int) int {
		if v <= 0 {
			return 0
		}
		n := int(float64(width) * math.Sqrt(float64(v)) / math.Sqrt(float64(maxVal)))
		if n == 0 {
			n = 1
		}
		return n
	}

	for _, server := range res.ServerOrder {
		if _, err := fmt.Fprintf(w, "%s\n", server); err != nil {
			return err
		}
		for _, sr := range series {
			v := sr.get(res.Servers[server])
			bar := strings.Repeat("#", scale(v))
			if _, err := fmt.Fprintf(w, "  %-22s %6d %s\n", sr.name, v, bar); err != nil {
				return err
			}
		}
	}
	return nil
}
