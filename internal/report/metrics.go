package report

import (
	"io"

	"wsinterop/internal/obs"
)

// Metrics writes a campaign observability snapshot as aligned text
// tables: counters, live gauges, and per-stage latency histograms.
func Metrics(w io.Writer, snap *obs.Snapshot) error {
	if snap == nil {
		snap = &obs.Snapshot{}
	}
	return snap.WriteText(w)
}

// MetricsJSON writes the snapshot as indented JSON — the same export
// the -metrics-json flag and the /debug/metrics endpoint serve.
func MetricsJSON(w io.Writer, snap *obs.Snapshot) error {
	if snap == nil {
		snap = &obs.Snapshot{}
	}
	return snap.WriteJSON(w)
}
