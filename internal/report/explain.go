package report

import (
	"fmt"
	"io"

	"wsinterop/internal/artifact"
	"wsinterop/internal/campaign"
)

// Explain renders a drill-down narrative (campaign.Explanation) in
// the style of the paper's §IV.B technical examples.
func Explain(w io.Writer, e *campaign.Explanation) error {
	if _, err := fmt.Fprintf(w, "%s on %s\n", e.Class, e.Server); err != nil {
		return err
	}
	if !e.Deployed {
		_, err := fmt.Fprintf(w, "  not deployed: %s\n", e.DeployError)
		return err
	}
	fmt.Fprintf(w, "  WSDL published (%d bytes)\n", len(e.Document))
	if len(e.Compliance) == 0 {
		fmt.Fprintln(w, "  WS-I: compliant, no findings")
	}
	for _, v := range e.Compliance {
		fmt.Fprintf(w, "  WS-I: %s\n", v)
	}
	for i := range e.Clients {
		c := &e.Clients[i]
		status := "ok"
		if c.Failed() {
			status = "FAILED"
		}
		fmt.Fprintf(w, "  %-18s (%s): %s\n", c.Client, c.Tool, status)
		for _, issue := range c.GenerationIssues {
			fmt.Fprintf(w, "    generation: %s\n", issue)
		}
		if !c.ArtifactsProduced {
			fmt.Fprintln(w, "    no artifacts; verification skipped")
			continue
		}
		errs, warns := artifact.Errors(c.Diagnostics), artifact.Warnings(c.Diagnostics)
		for _, d := range errs {
			fmt.Fprintf(w, "    verification: %s\n", d)
		}
		if len(warns) > 0 {
			fmt.Fprintf(w, "    verification: %d warning(s), e.g. %s\n", len(warns), warns[0])
		}
	}
	return nil
}
