// Package artifact models client-side artifacts — the code that
// framework tooling generates from a WSDL so an application can invoke
// the remote service — together with a name-resolution compiler that
// verifies them the way javac, csc, vbc, jsc or g++ would.
//
// The model is language-neutral: a generated artifact is a set of code
// units containing classes, fields, methods, parameters, locals and
// call references. The compiler performs the checks whose failures the
// study observed in the wild: duplicate identifiers, case-insensitive
// member collisions (Visual Basic), unresolved symbol references
// (Axis1's misnamed fault-wrapper attribute), missing functions (the
// JScript generator omitting accessors), and compiler capacity limits
// (the JScript "131 INTERNAL COMPILER CRASH").
//
// Errors therefore emerge from artifact *structure*, not from a lookup
// table: a generator with a naming bug produces a structurally
// defective unit, and this compiler finds the defect.
package artifact

import (
	"fmt"
	"strings"
	"sync"
)

// TargetLanguage identifies the language an artifact set is written
// in; it selects compiler semantics such as case sensitivity.
type TargetLanguage int

// Artifact target languages of the study's client frameworks.
const (
	LangJava TargetLanguage = iota + 1
	LangCSharp
	LangVB
	LangJScript
	LangCPP
	LangPHP
	LangPython
)

// String implements fmt.Stringer.
func (l TargetLanguage) String() string {
	switch l {
	case LangJava:
		return "Java"
	case LangCSharp:
		return "C#"
	case LangVB:
		return "VB.NET"
	case LangJScript:
		return "JScript.NET"
	case LangCPP:
		return "C++"
	case LangPHP:
		return "PHP"
	case LangPython:
		return "Python"
	default:
		return fmt.Sprintf("TargetLanguage(%d)", int(l))
	}
}

// Compiled reports whether artifacts in this language go through a
// compilation step. PHP and Python artifacts are instantiated
// dynamically instead (§III.B of the paper).
func (l TargetLanguage) Compiled() bool {
	return l != LangPHP && l != LangPython
}

// CaseInsensitive reports whether identifiers collide ignoring case.
func (l TargetLanguage) CaseInsensitive() bool { return l == LangVB }

// Field is one member variable of a generated class.
type Field struct {
	Name string
	// Type is the referenced type name; empty for built-in scalars.
	Type string
}

// Param is one parameter of a generated method.
type Param struct {
	Name string
	Type string
}

// Method is one generated method (or free function).
type Method struct {
	Name   string
	Params []Param
	// Locals are the local variable names the generated body declares.
	Locals []string
	// Calls lists names of functions/methods the body references;
	// unresolved calls are compile errors.
	Calls []string
	// FieldRefs lists member names the body reads or writes;
	// unresolved member references are compile errors.
	FieldRefs []string
	Return    string
}

// Class is one generated type.
type Class struct {
	Name    string
	Fields  []Field
	Methods []Method
	// NestingDepth records how deeply this type was nested in the
	// schema it was generated from; compilers with capacity limits
	// crash beyond their limit.
	NestingDepth int
	// UsesRawCollections marks bodies using unparameterized
	// collections — the source of javac's "unchecked or unsafe
	// operations" warning that Axis1/Axis2 artifacts always carry.
	UsesRawCollections bool
}

// Unit is a compilation unit: everything one generator run emitted.
type Unit struct {
	Language TargetLanguage
	// Name identifies the unit (usually the service name).
	Name    string
	Classes []Class
	// ExternalTypes lists type names the unit may reference without
	// declaring (the generator's runtime library).
	ExternalTypes []string
	// owner is an opaque recycling token set by generators that
	// arena-allocate the unit's backing storage; it survives Reset-style
	// reassignment of the exported fields.
	owner any
}

// SetOwner attaches the opaque recycling token of the arena that owns
// this unit's backing storage.
func (u *Unit) SetOwner(o any) { u.owner = o }

// Owner returns the recycling token set with SetOwner, or nil for a
// plainly allocated unit.
func (u *Unit) Owner() any { return u.owner }

// PortClass returns the generated service port/proxy class: by
// convention the first class of the unit, which is where generators
// place the invocable operations. Returns nil for an empty unit.
func (u *Unit) PortClass() *Class {
	if len(u.Classes) == 0 {
		return nil
	}
	return &u.Classes[0]
}

// MethodCount returns the total number of methods across the unit.
func (u *Unit) MethodCount() int {
	n := 0
	for i := range u.Classes {
		n += len(u.Classes[i].Methods)
	}
	return n
}

// Severity grades a compiler diagnostic.
type Severity int

// Diagnostic severities. SeverityFatal models a crash of the
// compilation tool itself.
const (
	SeverityWarning Severity = iota + 1
	SeverityError
	SeverityFatal
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	case SeverityFatal:
		return "fatal"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one compiler finding.
type Diagnostic struct {
	Severity Severity
	// Code is a stable machine-readable identifier, e.g. "DUP_LOCAL".
	Code    string
	Message string
	// Where locates the finding (class or class.method).
	Where string
}

// String renders the diagnostic in compiler-output style.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s] %s", d.Where, d.Severity, d.Code, d.Message)
}

// Diagnostic codes produced by the compiler.
const (
	CodeDupClass       = "DUP_CLASS"
	CodeDupMethod      = "DUP_METHOD"
	CodeDupField       = "DUP_FIELD"
	CodeDupParam       = "DUP_PARAM"
	CodeDupLocal       = "DUP_LOCAL"
	CodeMemberClash    = "MEMBER_CLASH"
	CodeUnresolvedType = "UNRESOLVED_TYPE"
	CodeUnresolvedFunc = "UNRESOLVED_FUNC"
	CodeUnresolvedRef  = "UNRESOLVED_MEMBER"
	CodeUnchecked      = "UNCHECKED_OPS"
	CodeCompilerCrash  = "COMPILER_CRASH"
)

// Compiler verifies artifact units. The zero value is unusable; use
// NewCompiler, which derives semantics from the target language.
type Compiler struct {
	lang TargetLanguage
	// maxNesting is the tool's type-nesting capacity; 0 means
	// unlimited. The JScript compiler of the study crashed beyond its
	// limit.
	maxNesting int
}

// Option customizes a Compiler.
type Option func(*Compiler)

// WithMaxNesting sets the compiler's type-nesting capacity limit.
func WithMaxNesting(n int) Option {
	return func(c *Compiler) { c.maxNesting = n }
}

// NewCompiler creates a compiler for the given artifact language.
func NewCompiler(lang TargetLanguage, opts ...Option) *Compiler {
	c := &Compiler{lang: lang}
	for _, o := range opts {
		o(c)
	}
	return c
}

// symbolSet is a small linear-scan string set. The name tables of one
// generated class number a handful of entries, where a probe over a
// contiguous slice beats a map — and resetting is a reslice, not a
// bucket sweep.
type symbolSet []string

func (ss *symbolSet) reset() { *ss = (*ss)[:0] }

func (ss *symbolSet) add(k string) { *ss = append(*ss, k) }

// eq compares two symbols under the language's identifier rules:
// case-folded for case-insensitive languages (VB), exact otherwise.
// Folding at comparison time instead of at insertion keeps the hot
// path free of the per-symbol ToLower allocation.
func (c *Compiler) eq(a, b string) bool {
	if c.lang.CaseInsensitive() {
		return strings.EqualFold(a, b)
	}
	return a == b
}

// has probes the set under the language's identifier rules.
func (c *Compiler) has(ss symbolSet, k string) bool {
	for _, v := range ss {
		if c.eq(v, k) {
			return true
		}
	}
	return false
}

// indexOf locates a symbol under the language's identifier rules.
func (c *Compiler) indexOf(ss symbolSet, k string) int {
	for i, v := range ss {
		if c.eq(v, k) {
			return i
		}
	}
	return -1
}

// compileScratch is the reusable working set of one Compile call: the
// symbol and member tables that would otherwise be re-allocated for
// every unit. Pooled and reset by reslicing, so a steady-state Compile
// allocates only its diagnostics.
type compileScratch struct {
	types      symbolSet // unit-level declared type symbols
	classNames symbolSet // class names seen so far, declared spellings
	fields     symbolSet // per-class member namespace
	methods    symbolSet // per-class method namespace
	allMethods symbolSet // per-class call-resolution set
	scope      symbolSet // per-method params + locals
}

var compileScratchPool = sync.Pool{New: func() any { return new(compileScratch) }}

// Compile verifies a unit and returns every diagnostic found. The
// unit is accepted (usable) if no diagnostic has severity error or
// fatal.
func (c *Compiler) Compile(u *Unit) []Diagnostic {
	var diags []Diagnostic

	// A tool crash aborts everything else, exactly as the study's
	// "131 INTERNAL COMPILER CRASH" did.
	if c.maxNesting > 0 {
		for i := range u.Classes {
			if u.Classes[i].NestingDepth > c.maxNesting {
				return []Diagnostic{{
					Severity: SeverityFatal,
					Code:     CodeCompilerCrash,
					Message: fmt.Sprintf("131 INTERNAL COMPILER CRASH: type nesting depth %d exceeds tool capacity %d",
						u.Classes[i].NestingDepth, c.maxNesting),
					Where: u.Classes[i].Name,
				}}
			}
		}
	}

	sc := compileScratchPool.Get().(*compileScratch)
	defer compileScratchPool.Put(sc)
	types := c.symbolTable(u, sc)

	sc.classNames.reset()
	for i := range u.Classes {
		cls := &u.Classes[i]
		if dup := c.indexOf(sc.classNames, cls.Name); dup >= 0 {
			diags = append(diags, Diagnostic{
				Severity: SeverityError,
				Code:     CodeDupClass,
				Message:  fmt.Sprintf("type %q already declared as %q", cls.Name, sc.classNames[dup]),
				Where:    cls.Name,
			})
			continue
		}
		sc.classNames.add(cls.Name)
		diags = append(diags, c.compileClass(cls, types, sc)...)
	}
	return diags
}

// Errors filters diagnostics with severity error or fatal.
func Errors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity >= SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// Warnings filters diagnostics with severity warning.
func Warnings(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == SeverityWarning {
			out = append(out, d)
		}
	}
	return out
}

func (c *Compiler) symbolTable(u *Unit, sc *compileScratch) symbolSet {
	sc.types.reset()
	for i := range u.Classes {
		sc.types.add(u.Classes[i].Name)
	}
	for _, t := range u.ExternalTypes {
		sc.types.add(t)
	}
	return sc.types
}

func (c *Compiler) compileClass(cls *Class, types symbolSet, sc *compileScratch) []Diagnostic {
	var diags []Diagnostic
	where := cls.Name

	if cls.UsesRawCollections {
		diags = append(diags, Diagnostic{
			Severity: SeverityWarning,
			Code:     CodeUnchecked,
			Message:  "uses unchecked or unsafe operations",
			Where:    where,
		})
	}

	// Member tables. Fields and methods share a namespace in
	// case-insensitive languages.
	sc.fields.reset()
	fields := &sc.fields
	for _, f := range cls.Fields {
		if c.has(*fields, f.Name) {
			diags = append(diags, Diagnostic{
				Severity: SeverityError,
				Code:     CodeDupField,
				Message:  fmt.Sprintf("duplicate member %q", f.Name),
				Where:    where,
			})
			continue
		}
		fields.add(f.Name)
		if f.Type != "" && !c.has(types, f.Type) {
			diags = append(diags, Diagnostic{
				Severity: SeverityError,
				Code:     CodeUnresolvedType,
				Message:  fmt.Sprintf("member %q references undeclared type %q", f.Name, f.Type),
				Where:    where,
			})
		}
	}

	sc.methods.reset()
	sc.allMethods.reset()
	methods, allMethods := &sc.methods, &sc.allMethods
	for i := range cls.Methods {
		allMethods.add(cls.Methods[i].Name)
	}

	for i := range cls.Methods {
		m := &cls.Methods[i]
		// Diagnostics are rare; build the dotted location only when one
		// is actually emitted.
		mWhere := func() string { return where + "." + m.Name }
		if c.has(*methods, m.Name) {
			diags = append(diags, Diagnostic{
				Severity: SeverityError,
				Code:     CodeDupMethod,
				Message:  fmt.Sprintf("duplicate method %q", m.Name),
				Where:    where,
			})
			continue
		}
		methods.add(m.Name)

		if c.lang.CaseInsensitive() && c.has(*fields, m.Name) {
			diags = append(diags, Diagnostic{
				Severity: SeverityError,
				Code:     CodeMemberClash,
				Message:  fmt.Sprintf("method %q clashes with member of the same name", m.Name),
				Where:    where,
			})
		}

		sc.scope.reset()
		scope := &sc.scope
		for _, p := range m.Params {
			if c.has(*scope, p.Name) {
				diags = append(diags, Diagnostic{
					Severity: SeverityError,
					Code:     CodeDupParam,
					Message:  fmt.Sprintf("duplicate parameter %q", p.Name),
					Where:    mWhere(),
				})
				continue
			}
			scope.add(p.Name)
			if c.lang.CaseInsensitive() && strings.EqualFold(p.Name, m.Name) {
				diags = append(diags, Diagnostic{
					Severity: SeverityError,
					Code:     CodeMemberClash,
					Message:  fmt.Sprintf("parameter %q collides with method name %q", p.Name, m.Name),
					Where:    mWhere(),
				})
			}
			if p.Type != "" && !c.has(types, p.Type) {
				diags = append(diags, Diagnostic{
					Severity: SeverityError,
					Code:     CodeUnresolvedType,
					Message:  fmt.Sprintf("parameter %q references undeclared type %q", p.Name, p.Type),
					Where:    mWhere(),
				})
			}
		}
		for _, l := range m.Locals {
			if c.has(*scope, l) {
				diags = append(diags, Diagnostic{
					Severity: SeverityError,
					Code:     CodeDupLocal,
					Message:  fmt.Sprintf("duplicate variable %q", l),
					Where:    mWhere(),
				})
				continue
			}
			scope.add(l)
		}
		if m.Return != "" && !c.has(types, m.Return) {
			diags = append(diags, Diagnostic{
				Severity: SeverityError,
				Code:     CodeUnresolvedType,
				Message:  fmt.Sprintf("return type %q is undeclared", m.Return),
				Where:    mWhere(),
			})
		}
		for _, call := range m.Calls {
			if !c.has(*allMethods, call) {
				diags = append(diags, Diagnostic{
					Severity: SeverityError,
					Code:     CodeUnresolvedFunc,
					Message:  fmt.Sprintf("call to undefined function %q", call),
					Where:    mWhere(),
				})
			}
		}
		for _, ref := range m.FieldRefs {
			if !c.has(*fields, ref) {
				diags = append(diags, Diagnostic{
					Severity: SeverityError,
					Code:     CodeUnresolvedRef,
					Message:  fmt.Sprintf("reference to undefined member %q", ref),
					Where:    mWhere(),
				})
			}
		}
	}
	return diags
}

// Instantiate models the dynamic-instantiation check used for PHP and
// Python artifacts: the client object must be constructible. A client
// object without invocable methods still instantiates (the dynamic
// toolkits report that condition during generation, not here), so the
// only failure mode is the absence of a client object altogether.
func Instantiate(u *Unit) []Diagnostic {
	if u.PortClass() == nil {
		return []Diagnostic{{
			Severity: SeverityError,
			Code:     CodeUnresolvedType,
			Message:  "no client object was generated",
			Where:    u.Name,
		}}
	}
	return nil
}
