package artifact

import (
	"fmt"
	"strings"
)

// This file renders artifact code models as source text in each
// client language. The study's authors inspected the code their tools
// generated to diagnose failures (misnamed wrapper attributes,
// duplicate variables, colliding members); Render makes the modelled
// artifacts inspectable the same way, and the cmd/artifactgen tool
// exposes it on the command line.
//
// The renderers are deliberately faithful to each ecosystem's idiom —
// JavaBeans accessors, C# auto-properties, VB.NET Function blocks,
// JScript functions, gSOAP-style C++ structs, PHP magic classes and
// Python attribute classes — so a developer can see exactly the
// defect the compiler reports (e.g. Axis2's duplicate "local_…"
// variables appear verbatim in the Java output).

// Render produces source text for the unit in its target language.
func Render(u *Unit) string {
	var b strings.Builder
	switch u.Language {
	case LangJava:
		renderJava(&b, u)
	case LangCSharp:
		renderCSharp(&b, u)
	case LangVB:
		renderVB(&b, u)
	case LangJScript:
		renderJScript(&b, u)
	case LangCPP:
		renderCPP(&b, u)
	case LangPHP:
		renderPHP(&b, u)
	case LangPython:
		renderPython(&b, u)
	default:
		fmt.Fprintf(&b, "// unsupported artifact language %v\n", u.Language)
	}
	return b.String()
}

func typeName(t, fallback string) string {
	if t == "" {
		return fallback
	}
	return t
}

func renderJava(b *strings.Builder, u *Unit) {
	fmt.Fprintf(b, "// Generated client artifacts for %s\n", u.Name)
	for i := range u.Classes {
		c := &u.Classes[i]
		if c.UsesRawCollections {
			fmt.Fprintf(b, "@SuppressWarnings({}) // uses raw collections: javac will warn\n")
		}
		fmt.Fprintf(b, "public class %s {\n", c.Name)
		for _, f := range c.Fields {
			fmt.Fprintf(b, "    private %s %s;\n", typeName(f.Type, "String"), f.Name)
		}
		for j := range c.Methods {
			m := &c.Methods[j]
			fmt.Fprintf(b, "    public %s %s(%s) {\n",
				typeName(m.Return, "void"), m.Name, javaParams(m.Params))
			for _, l := range m.Locals {
				fmt.Fprintf(b, "        Object %s = null;\n", l)
			}
			for _, ref := range m.FieldRefs {
				fmt.Fprintf(b, "        use(this.%s);\n", ref)
			}
			for _, call := range m.Calls {
				fmt.Fprintf(b, "        %s();\n", call)
			}
			if m.Return != "" {
				fmt.Fprintf(b, "        return null;\n")
			}
			fmt.Fprintf(b, "    }\n")
		}
		fmt.Fprintf(b, "}\n\n")
	}
}

func javaParams(params []Param) string {
	parts := make([]string, 0, len(params))
	for _, p := range params {
		parts = append(parts, typeName(p.Type, "String")+" "+p.Name)
	}
	return strings.Join(parts, ", ")
}

func renderCSharp(b *strings.Builder, u *Unit) {
	fmt.Fprintf(b, "// Generated client artifacts for %s\n", u.Name)
	fmt.Fprintf(b, "namespace %s {\n", u.Name)
	for i := range u.Classes {
		c := &u.Classes[i]
		fmt.Fprintf(b, "  public class %s {\n", c.Name)
		for _, f := range c.Fields {
			fmt.Fprintf(b, "    public %s %s { get; set; }\n", typeName(f.Type, "string"), f.Name)
		}
		for j := range c.Methods {
			m := &c.Methods[j]
			fmt.Fprintf(b, "    public %s %s(%s) { return default; }\n",
				typeName(m.Return, "void"), m.Name, csParams(m.Params))
		}
		fmt.Fprintf(b, "  }\n")
	}
	fmt.Fprintf(b, "}\n")
}

func csParams(params []Param) string {
	parts := make([]string, 0, len(params))
	for _, p := range params {
		parts = append(parts, typeName(p.Type, "string")+" "+p.Name)
	}
	return strings.Join(parts, ", ")
}

func renderVB(b *strings.Builder, u *Unit) {
	fmt.Fprintf(b, "' Generated client artifacts for %s\n", u.Name)
	for i := range u.Classes {
		c := &u.Classes[i]
		fmt.Fprintf(b, "Public Class %s\n", c.Name)
		for _, f := range c.Fields {
			fmt.Fprintf(b, "    Public %s As %s\n", f.Name, typeName(f.Type, "String"))
		}
		for j := range c.Methods {
			m := &c.Methods[j]
			params := make([]string, 0, len(m.Params))
			for _, p := range m.Params {
				params = append(params, "ByVal "+p.Name+" As "+typeName(p.Type, "String"))
			}
			fmt.Fprintf(b, "    Public Function %s(%s) As %s\n",
				m.Name, strings.Join(params, ", "), typeName(m.Return, "Object"))
			fmt.Fprintf(b, "        Return Nothing\n    End Function\n")
		}
		fmt.Fprintf(b, "End Class\n\n")
	}
}

func renderJScript(b *strings.Builder, u *Unit) {
	fmt.Fprintf(b, "// Generated client artifacts for %s\n", u.Name)
	for i := range u.Classes {
		c := &u.Classes[i]
		fmt.Fprintf(b, "class %s {\n", c.Name)
		for _, f := range c.Fields {
			fmt.Fprintf(b, "  var %s;\n", f.Name)
		}
		fmt.Fprintf(b, "}\n")
		for j := range c.Methods {
			m := &c.Methods[j]
			params := make([]string, 0, len(m.Params))
			for _, p := range m.Params {
				params = append(params, p.Name)
			}
			fmt.Fprintf(b, "function %s(%s) {\n", m.Name, strings.Join(params, ", "))
			for _, call := range m.Calls {
				fmt.Fprintf(b, "  %s();\n", call)
			}
			for _, ref := range m.FieldRefs {
				fmt.Fprintf(b, "  return this.%s;\n", ref)
			}
			fmt.Fprintf(b, "}\n")
		}
		b.WriteByte('\n')
	}
}

func renderCPP(b *strings.Builder, u *Unit) {
	fmt.Fprintf(b, "// Generated client artifacts for %s (soapcpp2 style)\n", u.Name)
	for i := range u.Classes {
		c := &u.Classes[i]
		fmt.Fprintf(b, "class %s {\npublic:\n", sanitizeCPP(c.Name))
		for _, f := range c.Fields {
			fmt.Fprintf(b, "    %s %s;\n", typeName(sanitizeCPP(f.Type), "std::string"), f.Name)
		}
		for j := range c.Methods {
			m := &c.Methods[j]
			params := make([]string, 0, len(m.Params))
			for _, p := range m.Params {
				params = append(params, typeName(sanitizeCPP(p.Type), "std::string")+" "+p.Name)
			}
			fmt.Fprintf(b, "    %s %s(%s);\n",
				typeName(sanitizeCPP(m.Return), "void"), m.Name, strings.Join(params, ", "))
		}
		fmt.Fprintf(b, "};\n\n")
	}
}

func sanitizeCPP(name string) string {
	return strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

func renderPHP(b *strings.Builder, u *Unit) {
	fmt.Fprintf(b, "<?php\n// Generated client artifacts for %s\n", u.Name)
	for i := range u.Classes {
		c := &u.Classes[i]
		fmt.Fprintf(b, "class %s {\n", c.Name)
		for _, f := range c.Fields {
			fmt.Fprintf(b, "    public $%s;\n", f.Name)
		}
		for j := range c.Methods {
			m := &c.Methods[j]
			params := make([]string, 0, len(m.Params))
			for _, p := range m.Params {
				params = append(params, "$"+p.Name)
			}
			fmt.Fprintf(b, "    public function %s(%s) { return null; }\n",
				m.Name, strings.Join(params, ", "))
		}
		fmt.Fprintf(b, "}\n")
	}
}

func renderPython(b *strings.Builder, u *Unit) {
	fmt.Fprintf(b, "# Generated client artifacts for %s\n", u.Name)
	for i := range u.Classes {
		c := &u.Classes[i]
		fmt.Fprintf(b, "class %s:\n", c.Name)
		if len(c.Fields)+len(c.Methods) == 0 {
			fmt.Fprintf(b, "    pass\n\n")
			continue
		}
		if len(c.Fields) > 0 {
			fmt.Fprintf(b, "    def __init__(self):\n")
			for _, f := range c.Fields {
				fmt.Fprintf(b, "        self.%s = None\n", f.Name)
			}
		}
		for j := range c.Methods {
			m := &c.Methods[j]
			params := make([]string, 0, len(m.Params)+1)
			params = append(params, "self")
			for _, p := range m.Params {
				params = append(params, p.Name)
			}
			fmt.Fprintf(b, "    def %s(%s):\n        return None\n",
				m.Name, strings.Join(params, ", "))
		}
		b.WriteByte('\n')
	}
}
