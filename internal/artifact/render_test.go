package artifact

import (
	"strings"
	"testing"
)

func renderUnit(lang TargetLanguage) *Unit {
	u := cleanUnit()
	u.Language = lang
	return u
}

func TestRenderJava(t *testing.T) {
	u := renderUnit(LangJava)
	u.Classes[1].UsesRawCollections = true
	u.Classes[1].Methods = []Method{{
		Name:      "getFaultInfo",
		Locals:    []string{"local_x", "local_x"},
		FieldRefs: []string{"payload"},
		Calls:     []string{"helper"},
	}}
	src := Render(u)
	for _, want := range []string{
		"public class EchoServicePort", "public class Payload",
		"private String value", "Payload echo(Payload input)",
		"Object local_x = null;", "use(this.payload);", "helper();",
		"raw collections",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("Java rendering missing %q:\n%s", want, src)
		}
	}
	// The duplicate local appears twice — the defect is visible.
	if strings.Count(src, "Object local_x = null;") != 2 {
		t.Error("duplicate local should be rendered twice")
	}
}

func TestRenderCSharp(t *testing.T) {
	src := Render(renderUnit(LangCSharp))
	for _, want := range []string{"namespace EchoService", "public class Payload", "{ get; set; }"} {
		if !strings.Contains(src, want) {
			t.Errorf("C# rendering missing %q:\n%s", want, src)
		}
	}
}

func TestRenderVB(t *testing.T) {
	src := Render(renderUnit(LangVB))
	for _, want := range []string{"Public Class Payload", "Public Function echo", "ByVal input As Payload", "End Class"} {
		if !strings.Contains(src, want) {
			t.Errorf("VB rendering missing %q:\n%s", want, src)
		}
	}
}

func TestRenderJScript(t *testing.T) {
	u := renderUnit(LangJScript)
	u.Classes[1].Methods = []Method{
		{Name: "marshal", Calls: []string{"get_value", "get_function"}},
		{Name: "get_value", FieldRefs: []string{"value"}},
	}
	src := Render(u)
	if !strings.Contains(src, "function marshal()") || !strings.Contains(src, "get_function();") {
		t.Errorf("JScript rendering should show the dangling call:\n%s", src)
	}
	if strings.Contains(src, "function get_function(") {
		t.Error("the omitted accessor must not be rendered — that is the bug")
	}
}

func TestRenderCPP(t *testing.T) {
	src := Render(renderUnit(LangCPP))
	for _, want := range []string{"class EchoServicePort", "public:", "std::string value;", "Payload echo(Payload input);"} {
		if !strings.Contains(src, want) {
			t.Errorf("C++ rendering missing %q:\n%s", want, src)
		}
	}
}

func TestRenderPHP(t *testing.T) {
	src := Render(renderUnit(LangPHP))
	for _, want := range []string{"<?php", "class Payload", "public $value;", "public function echo($input)"} {
		if !strings.Contains(src, want) {
			t.Errorf("PHP rendering missing %q:\n%s", want, src)
		}
	}
}

func TestRenderPython(t *testing.T) {
	u := renderUnit(LangPython)
	u.Classes = append(u.Classes, Class{Name: "Empty"})
	src := Render(u)
	for _, want := range []string{"class Payload:", "self.value = None", "def echo(self, input):", "class Empty:", "pass"} {
		if !strings.Contains(src, want) {
			t.Errorf("Python rendering missing %q:\n%s", want, src)
		}
	}
}

func TestRenderAllLanguagesNonEmpty(t *testing.T) {
	for _, lang := range []TargetLanguage{LangJava, LangCSharp, LangVB, LangJScript, LangCPP, LangPHP, LangPython} {
		if src := Render(renderUnit(lang)); len(src) == 0 {
			t.Errorf("%s rendering is empty", lang)
		}
	}
	if src := Render(&Unit{Language: TargetLanguage(99)}); !strings.Contains(src, "unsupported") {
		t.Error("unknown language should render a marker")
	}
}
