package artifact

import (
	"strings"
	"testing"
	"testing/quick"
)

func cleanUnit() *Unit {
	return &Unit{
		Language: LangJava,
		Name:     "EchoService",
		Classes: []Class{
			{
				Name: "EchoServicePort",
				Methods: []Method{{
					Name:   "echo",
					Params: []Param{{Name: "input", Type: "Payload"}},
					Return: "Payload",
				}},
			},
			{
				Name: "Payload",
				Fields: []Field{
					{Name: "value"},
					{Name: "child", Type: "Part"},
				},
			},
			{Name: "Part", Fields: []Field{{Name: "id"}}},
		},
	}
}

func codes(diags []Diagnostic) map[string]int {
	m := make(map[string]int, len(diags))
	for _, d := range diags {
		m[d.Code]++
	}
	return m
}

func TestCompileCleanUnit(t *testing.T) {
	diags := NewCompiler(LangJava).Compile(cleanUnit())
	if len(diags) != 0 {
		t.Errorf("clean unit produced diagnostics: %v", diags)
	}
}

func TestDuplicateClass(t *testing.T) {
	u := cleanUnit()
	u.Classes = append(u.Classes, Class{Name: "Payload"})
	diags := NewCompiler(LangJava).Compile(u)
	if codes(diags)[CodeDupClass] != 1 {
		t.Errorf("expected DUP_CLASS, got %v", diags)
	}
}

func TestDuplicateClassCaseInsensitive(t *testing.T) {
	u := cleanUnit()
	u.Classes = append(u.Classes, Class{Name: "payload"})
	if codes(NewCompiler(LangJava).Compile(u))[CodeDupClass] != 0 {
		t.Error("Java must treat payload/Payload as distinct")
	}
	u.Language = LangVB
	if codes(NewCompiler(LangVB).Compile(u))[CodeDupClass] != 1 {
		t.Error("VB must collapse payload/Payload")
	}
}

func TestDuplicateField(t *testing.T) {
	u := cleanUnit()
	u.Classes[1].Fields = append(u.Classes[1].Fields, Field{Name: "value"})
	diags := NewCompiler(LangJava).Compile(u)
	if codes(diags)[CodeDupField] != 1 {
		t.Errorf("expected DUP_FIELD, got %v", diags)
	}
}

func TestCaseCollidingFieldsPerLanguage(t *testing.T) {
	u := cleanUnit()
	u.Classes[1].Fields = []Field{{Name: "timezone"}, {Name: "timeZone"}}
	if diags := NewCompiler(LangJava).Compile(u); len(diags) != 0 {
		t.Errorf("Java: case-distinct fields must compile, got %v", diags)
	}
	if codes(NewCompiler(LangVB).Compile(u))[CodeDupField] != 1 {
		t.Error("VB: case-colliding fields must be an error")
	}
}

func TestUnresolvedFieldType(t *testing.T) {
	u := cleanUnit()
	u.Classes[1].Fields[1].Type = "Missing"
	diags := NewCompiler(LangJava).Compile(u)
	if codes(diags)[CodeUnresolvedType] != 1 {
		t.Errorf("expected UNRESOLVED_TYPE, got %v", diags)
	}
}

func TestExternalTypesResolve(t *testing.T) {
	u := cleanUnit()
	u.Classes[1].Fields[1].Type = "RuntimeThing"
	u.ExternalTypes = []string{"RuntimeThing"}
	if diags := NewCompiler(LangJava).Compile(u); len(diags) != 0 {
		t.Errorf("external type should resolve, got %v", diags)
	}
}

func TestDuplicateParam(t *testing.T) {
	u := cleanUnit()
	m := &u.Classes[0].Methods[0]
	m.Params = append(m.Params, Param{Name: "input"})
	diags := NewCompiler(LangJava).Compile(u)
	if codes(diags)[CodeDupParam] != 1 {
		t.Errorf("expected DUP_PARAM, got %v", diags)
	}
}

func TestDuplicateLocal(t *testing.T) {
	u := cleanUnit()
	u.Classes[1].Methods = []Method{{
		Name:   "parsePayload",
		Locals: []string{"local_timezone", "local_timezone"},
	}}
	diags := NewCompiler(LangJava).Compile(u)
	if codes(diags)[CodeDupLocal] != 1 {
		t.Errorf("expected DUP_LOCAL, got %v", diags)
	}
}

func TestLocalCollidesWithParam(t *testing.T) {
	u := cleanUnit()
	m := &u.Classes[0].Methods[0]
	m.Locals = []string{"input"}
	diags := NewCompiler(LangJava).Compile(u)
	if codes(diags)[CodeDupLocal] != 1 {
		t.Errorf("locals share scope with params; got %v", diags)
	}
}

func TestVBMethodParamCollision(t *testing.T) {
	u := cleanUnit()
	u.Classes[0].Methods[0].Params[0].Name = "Echo"
	if len(Errors(NewCompiler(LangJava).Compile(u))) != 0 {
		t.Error("Java: method/param name sharing is legal")
	}
	diags := NewCompiler(LangVB).Compile(u)
	if codes(diags)[CodeMemberClash] == 0 {
		t.Errorf("VB: parameter named like the method must clash, got %v", diags)
	}
}

func TestVBMethodFieldCollision(t *testing.T) {
	u := cleanUnit()
	u.Classes[1].Methods = []Method{{Name: "Value"}}
	diags := NewCompiler(LangVB).Compile(u)
	if codes(diags)[CodeMemberClash] == 0 {
		t.Errorf("VB: method named like a member must clash, got %v", diags)
	}
	if len(Errors(NewCompiler(LangCSharp).Compile(u))) != 0 {
		t.Error("C#: Value method vs value field is legal")
	}
}

func TestUnresolvedCall(t *testing.T) {
	u := cleanUnit()
	u.Classes[1].Methods = []Method{
		{Name: "marshal", Calls: []string{"get_value", "get_missing"}},
		{Name: "get_value"},
	}
	diags := NewCompiler(LangJScript).Compile(u)
	if codes(diags)[CodeUnresolvedFunc] != 1 {
		t.Errorf("expected one UNRESOLVED_FUNC, got %v", diags)
	}
}

func TestUnresolvedMemberRef(t *testing.T) {
	u := cleanUnit()
	u.Classes[1].Methods = []Method{{
		Name:      "getFaultInfo",
		FieldRefs: []string{"payloadException"},
	}}
	diags := NewCompiler(LangJava).Compile(u)
	if codes(diags)[CodeUnresolvedRef] != 1 {
		t.Errorf("expected UNRESOLVED_MEMBER, got %v", diags)
	}
}

func TestUncheckedWarning(t *testing.T) {
	u := cleanUnit()
	for i := range u.Classes {
		u.Classes[i].UsesRawCollections = true
	}
	diags := NewCompiler(LangJava).Compile(u)
	warnings := Warnings(diags)
	if len(warnings) != len(u.Classes) {
		t.Errorf("expected one warning per class, got %v", diags)
	}
	if len(Errors(diags)) != 0 {
		t.Errorf("warnings must not be errors: %v", diags)
	}
	for _, w := range warnings {
		if w.Code != CodeUnchecked || !strings.Contains(w.Message, "unchecked or unsafe operations") {
			t.Errorf("unexpected warning %v", w)
		}
	}
}

func TestCompilerCrash(t *testing.T) {
	u := cleanUnit()
	u.Classes[0].NestingDepth = 4
	diags := NewCompiler(LangJScript, WithMaxNesting(3)).Compile(u)
	if len(diags) != 1 || diags[0].Severity != SeverityFatal {
		t.Fatalf("expected a single fatal crash, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "131 INTERNAL COMPILER CRASH") {
		t.Errorf("crash message %q lacks the signature", diags[0].Message)
	}
	// No capacity limit → no crash.
	if diags := NewCompiler(LangCSharp).Compile(u); len(diags) != 0 {
		t.Errorf("unlimited compiler crashed: %v", diags)
	}
}

func TestCrashSuppressesOtherDiagnostics(t *testing.T) {
	u := cleanUnit()
	u.Classes[0].NestingDepth = 10
	u.Classes[1].Fields = append(u.Classes[1].Fields, Field{Name: "value"}) // would be DUP_FIELD
	diags := NewCompiler(LangJScript, WithMaxNesting(3)).Compile(u)
	if len(diags) != 1 || diags[0].Code != CodeCompilerCrash {
		t.Errorf("a crash must abort compilation, got %v", diags)
	}
}

func TestUnresolvedReturnType(t *testing.T) {
	u := cleanUnit()
	u.Classes[0].Methods[0].Return = "Gone"
	diags := NewCompiler(LangJava).Compile(u)
	if codes(diags)[CodeUnresolvedType] != 1 {
		t.Errorf("expected UNRESOLVED_TYPE for return, got %v", diags)
	}
}

func TestInstantiate(t *testing.T) {
	u := cleanUnit()
	if diags := Instantiate(u); len(diags) != 0 {
		t.Errorf("clean unit should instantiate, got %v", diags)
	}
	empty := &Unit{Language: LangPHP, Name: "X"}
	diags := Instantiate(empty)
	if len(Errors(diags)) != 1 {
		t.Errorf("missing port class must fail instantiation, got %v", diags)
	}
	// A methodless client object still instantiates.
	noMethods := &Unit{Language: LangPython, Name: "Y", Classes: []Class{{Name: "YClient"}}}
	if diags := Instantiate(noMethods); len(diags) != 0 {
		t.Errorf("methodless client should instantiate, got %v", diags)
	}
}

func TestLanguageProperties(t *testing.T) {
	for _, l := range []TargetLanguage{LangJava, LangCSharp, LangVB, LangJScript, LangCPP} {
		if !l.Compiled() {
			t.Errorf("%s should be compiled", l)
		}
	}
	for _, l := range []TargetLanguage{LangPHP, LangPython} {
		if l.Compiled() {
			t.Errorf("%s should not be compiled", l)
		}
	}
	if LangJava.CaseInsensitive() || !LangVB.CaseInsensitive() {
		t.Error("only VB is case-insensitive")
	}
}

func TestUnitHelpers(t *testing.T) {
	u := cleanUnit()
	if u.PortClass() == nil || u.PortClass().Name != "EchoServicePort" {
		t.Error("PortClass should return the first class")
	}
	if got := u.MethodCount(); got != 1 {
		t.Errorf("MethodCount = %d, want 1", got)
	}
	if (&Unit{}).PortClass() != nil {
		t.Error("empty unit has no port class")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Severity: SeverityError, Code: CodeDupLocal, Message: "duplicate variable", Where: "C.m"}
	s := d.String()
	for _, want := range []string{"C.m", "error", "DUP_LOCAL", "duplicate variable"} {
		if !strings.Contains(s, want) {
			t.Errorf("diagnostic string %q missing %q", s, want)
		}
	}
}

// TestCompileDeterministic verifies compilation yields identical
// diagnostics for identical units regardless of how often it runs.
func TestCompileDeterministic(t *testing.T) {
	u := cleanUnit()
	u.Classes[1].Fields = append(u.Classes[1].Fields, Field{Name: "value"}, Field{Name: "x", Type: "Nope"})
	c := NewCompiler(LangJava)
	first := c.Compile(u)
	for i := 0; i < 10; i++ {
		again := c.Compile(u)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d diagnostics vs %d", i, len(again), len(first))
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("run %d: diagnostic %d differs", i, j)
			}
		}
	}
}

// TestScopeCollisionProperty: for any pair of names, a method with
// both as parameters errors iff they fold to the same identifier.
func TestScopeCollisionProperty(t *testing.T) {
	f := func(a, b string) bool {
		if a == "" || b == "" {
			return true
		}
		u := &Unit{
			Language: LangVB,
			Name:     "P",
			Classes: []Class{{
				Name: "C",
				Methods: []Method{{
					Name:   "m",
					Params: []Param{{Name: a}, {Name: b}},
				}},
			}},
		}
		diags := NewCompiler(LangVB).Compile(u)
		collides := strings.ToLower(a) == strings.ToLower(b)
		hasDup := codes(diags)[CodeDupParam] > 0
		return collides == hasDup
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
