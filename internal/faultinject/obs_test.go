package faultinject

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"wsinterop/internal/obs"
)

func TestInjectionLogAndCounters(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("0123456789"))
	})
	reg := obs.NewRegistry()
	inj := New(inner)
	inj.Obs = reg

	req := httptest.NewRequest(http.MethodPost, "/svc", nil)
	req.Header.Set(HeaderFault, string(KindTruncate))
	req.Header.Set(HeaderAttempt, "2")
	req.Header.Set(obs.TraceHeader, "feedface00000000")
	inj.ServeHTTP(httptest.NewRecorder(), req)

	log := inj.Injections()
	if len(log) != 1 {
		t.Fatalf("injection log = %+v, want one record", log)
	}
	want := Injection{Kind: KindTruncate, Trace: "feedface00000000", Attempt: 2}
	if log[0] != want {
		t.Errorf("injection = %+v, want %+v", log[0], want)
	}
	if n := reg.Counter("faultinject.injected").Value(); n != 1 {
		t.Errorf("injected counter = %d, want 1", n)
	}
	if n := reg.Counter("faultinject.injected.truncate").Value(); n != 1 {
		t.Errorf("per-kind counter = %d, want 1", n)
	}

	// An unknown directive is rejected, not recorded: arbitrary header
	// input must not mint counter names or log entries.
	bad := httptest.NewRequest(http.MethodPost, "/svc", nil)
	bad.Header.Set(HeaderFault, "bogus-kind")
	rec := httptest.NewRecorder()
	inj.ServeHTTP(rec, bad)
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("unknown directive status = %d, want 500", rec.Code)
	}
	if len(inj.Injections()) != 1 || reg.Counter("faultinject.injected").Value() != 1 {
		t.Error("unknown directive was recorded")
	}

	// A transient fault past its attempt window passes through without
	// firing — and without a record.
	done := httptest.NewRequest(http.MethodPost, "/svc", nil)
	done.Header.Set(HeaderFault, string(KindTruncate)+";times=1")
	done.Header.Set(HeaderAttempt, "2")
	rec = httptest.NewRecorder()
	inj.ServeHTTP(rec, done)
	if rec.Body.String() != "0123456789" {
		t.Errorf("expired fault body = %q, want passthrough", rec.Body.String())
	}
	if len(inj.Injections()) != 1 {
		t.Error("expired transient fault was recorded")
	}
}
