// Package faultinject implements a wire-level fault-injection harness
// for the Communication and Execution steps (4–5 of the paper's
// Fig. 1). An Injector is http.Handler middleware — composable with
// transport.Sniffer and drivable through transport.Client or
// transport.LocalBridge — that corrupts the response of the handler it
// wraps according to a per-request directive: truncated envelopes,
// non-XML error pages, wrong content types, empty or oversized bodies,
// duplicated or renamed payload children, delays, and connection
// aborts.
//
// Faults are selected per request through the HeaderFault request
// header rather than injector state, so one injector instance serves
// any number of concurrent invocations deterministically — the
// property the campaign's Robustness mode relies on to produce a
// byte-identical (server × client × fault) matrix at any worker
// count. Transient faults ("kind;times=N") read the attempt number
// from HeaderAttempt, which a transport.RetryPolicy stamps via its
// Annotate hook; the fault fires only on the first N attempts,
// modeling the recoverable glitches that retry policies exist for.
package faultinject

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"

	"wsinterop/internal/obs"
	"wsinterop/internal/soap"
)

// Request headers steering the injector.
const (
	// HeaderFault carries the fault directive: a Kind, optionally
	// suffixed with ";times=N" to fire on the first N attempts only.
	HeaderFault = "X-Inject-Fault"
	// HeaderAttempt carries the 1-based attempt number of a retrying
	// client; absent means attempt 1.
	HeaderAttempt = "X-Inject-Attempt"
)

// Kind identifies one injectable wire-level fault.
type Kind string

// The fault kinds of the catalog.
const (
	// KindTruncate cuts the response body in half mid-envelope.
	KindTruncate Kind = "truncate"
	// KindHTMLError replaces the response with a 500 HTML error page —
	// the classic misconfigured-gateway body that is not XML at all.
	KindHTMLError Kind = "html-error"
	// KindStatus500 keeps the valid response body but rewrites the
	// status to 500 — the trap a status-blind client walks into.
	KindStatus500 Kind = "status-500"
	// KindWrongContentType serves the valid envelope with a non-XML
	// Content-Type.
	KindWrongContentType Kind = "wrong-content-type"
	// KindEmptyBody serves a 200 response with no body.
	KindEmptyBody Kind = "empty-body"
	// KindOversize pads the envelope past the client's read budget, so
	// a bounded read truncates it.
	KindOversize Kind = "oversize"
	// KindDuplicateChild duplicates the first payload child with a
	// corrupted value.
	KindDuplicateChild Kind = "dup-child"
	// KindRenameChild renames the first payload child.
	KindRenameChild Kind = "rename-child"
	// KindDelay pauses before responding.
	KindDelay Kind = "delay"
	// KindAbort drops the connection without a response.
	KindAbort Kind = "abort"
)

// Fault is one row of the robustness matrix: a named directive plus
// the conformance expectation the outcome classification keys on.
type Fault struct {
	// Name labels the matrix row.
	Name string
	// Directive is the HeaderFault value selecting the fault.
	Directive string
	// MustError reports whether a conforming client has to surface an
	// error for this fault — the wire carried an unambiguous failure
	// or corruption signal. A success against a MustError fault is a
	// wrong-success cell.
	MustError bool
}

// Catalog returns the fault matrix rows in their fixed presentation
// order. The final entry is the transient variant of abort: it fires
// on the first attempt only, so a client with a retry policy recovers.
func Catalog() []Fault {
	return []Fault{
		{Name: "truncate", Directive: string(KindTruncate), MustError: true},
		{Name: "html-error", Directive: string(KindHTMLError), MustError: true},
		{Name: "status-500", Directive: string(KindStatus500), MustError: true},
		{Name: "wrong-content-type", Directive: string(KindWrongContentType), MustError: false},
		{Name: "empty-body", Directive: string(KindEmptyBody), MustError: true},
		{Name: "oversize", Directive: string(KindOversize), MustError: true},
		{Name: "dup-child", Directive: string(KindDuplicateChild), MustError: true},
		{Name: "rename-child", Directive: string(KindRenameChild), MustError: true},
		{Name: "delay", Directive: string(KindDelay), MustError: false},
		{Name: "abort", Directive: string(KindAbort), MustError: true},
		{Name: "abort-once", Directive: string(KindAbort) + ";times=1", MustError: false},
	}
}

// oversizePad exceeds the 1 MiB body budget transport clients read,
// guaranteeing the padded envelope is cut off mid-document.
const oversizePad = 1<<20 + 1024

// Injection is one fired fault, recorded for post-hoc joining with
// campaign cells: Trace carries the request's X-Wsinterop-Trace header,
// minted per (server, class, client, fault) cell by the robustness
// runner.
type Injection struct {
	Kind    Kind
	Trace   string
	Attempt int
}

// Injector is the fault-injecting middleware. A request without the
// HeaderFault directive passes through untouched, so the injector can
// stay permanently composed into a handler chain.
type Injector struct {
	next http.Handler
	// Delay is the KindDelay pause; zero means one millisecond.
	Delay time.Duration
	// Sleep overrides the KindDelay sleeper. The campaign installs a
	// no-op here to keep the robustness matrix wall-clock-free.
	Sleep func(d time.Duration)
	// Obs, when non-nil, counts fired faults (faultinject.injected and
	// one faultinject.injected.<kind> counter per kind).
	Obs *obs.Registry
	// codec identifies the envelope version of the wrapped handler's
	// responses; KindOversize pads inside its closing Envelope tag. Nil
	// means SOAP 1.1, the historical wire format.
	codec soap.Codec

	mu  sync.Mutex
	log []Injection
}

// New wraps a handler with an injector.
func New(next http.Handler) *Injector { return &Injector{next: next} }

// WithCodec declares the envelope version the wrapped handler speaks
// and returns the injector for chaining. Injector holds a mutex, so
// this mutates in place rather than copying; call it before serving.
func (i *Injector) WithCodec(c soap.Codec) *Injector {
	i.codec = c
	return i
}

// record logs one fired fault and bumps its counters.
func (i *Injector) record(kind Kind, trace string, attempt int) {
	i.Obs.Counter("faultinject.injected").Inc()
	i.Obs.Counter("faultinject.injected." + string(kind)).Inc()
	i.mu.Lock()
	i.log = append(i.log, Injection{Kind: kind, Trace: trace, Attempt: attempt})
	i.mu.Unlock()
}

// Injections returns a copy of the fired-fault log, in firing order.
func (i *Injector) Injections() []Injection {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Injection(nil), i.log...)
}

var _ http.Handler = (*Injector)(nil)

// parseDirective splits "kind" / "kind;times=N". times 0 means every
// attempt.
func parseDirective(s string) (Kind, int) {
	kind, rest, ok := strings.Cut(s, ";")
	if !ok {
		return Kind(kind), 0
	}
	if v, found := strings.CutPrefix(rest, "times="); found {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return Kind(kind), n
		}
	}
	return Kind(kind), 0
}

// ServeHTTP implements http.Handler.
func (i *Injector) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	directive := r.Header.Get(HeaderFault)
	if directive == "" {
		i.next.ServeHTTP(w, r)
		return
	}
	kind, times := parseDirective(directive)
	attempt := 1
	if n, err := strconv.Atoi(r.Header.Get(HeaderAttempt)); err == nil {
		attempt = n
	}
	if times > 0 && attempt > times {
		i.next.ServeHTTP(w, r)
		return
	}
	switch kind {
	case KindAbort, KindDelay, KindTruncate, KindHTMLError, KindStatus500,
		KindWrongContentType, KindEmptyBody, KindOversize,
		KindDuplicateChild, KindRenameChild:
		i.record(kind, r.Header.Get(obs.TraceHeader), attempt)
	}
	switch kind {
	case KindAbort:
		// The stdlib convention for dropping the connection: a real
		// http.Server closes the socket, LocalBridge maps it to
		// transport.ErrAborted.
		panic(http.ErrAbortHandler)
	case KindDelay:
		d := i.Delay
		if d == 0 {
			d = time.Millisecond
		}
		if i.Sleep != nil {
			i.Sleep(d)
		} else {
			time.Sleep(d)
		}
		i.next.ServeHTTP(w, r)
	case KindTruncate, KindHTMLError, KindStatus500, KindWrongContentType,
		KindEmptyBody, KindOversize, KindDuplicateChild, KindRenameChild:
		rec := httptest.NewRecorder()
		i.next.ServeHTTP(rec, r)
		status, ctype, body := i.mutate(kind, rec.Code, rec.Header().Get("Content-Type"), rec.Body.Bytes())
		for k, v := range rec.Header() {
			w.Header()[k] = v
		}
		w.Header().Del("Content-Length")
		w.Header().Set("Content-Type", ctype)
		w.WriteHeader(status)
		_, _ = w.Write(body)
	default:
		http.Error(w, "faultinject: unknown fault directive "+directive, http.StatusInternalServerError)
	}
}

// mutate applies one body-level fault to a recorded response.
func (i *Injector) mutate(kind Kind, status int, ctype string, body []byte) (int, string, []byte) {
	switch kind {
	case KindTruncate:
		return status, ctype, body[:len(body)/2]
	case KindHTMLError:
		page := "<html><head><title>502 Bad Gateway</title></head>" +
			"<body><h1>Bad Gateway</h1><p>upstream produced an invalid response</p></body></html>\n"
		return http.StatusInternalServerError, "text/html; charset=utf-8", []byte(page)
	case KindStatus500:
		return http.StatusInternalServerError, ctype, body
	case KindWrongContentType:
		return status, "application/octet-stream", body
	case KindEmptyBody:
		return status, ctype, nil
	case KindOversize:
		return status, ctype, i.pad(body)
	case KindDuplicateChild:
		return status, ctype, mutateChild(body, true)
	case KindRenameChild:
		return status, ctype, mutateChild(body, false)
	}
	return status, ctype, body
}

// pad inserts whitespace inside the envelope (before the closing
// Envelope tag) so a budget-bounded reader truncates the document
// itself, not ignorable trailing bytes. The closing tag comes from the
// injector's codec, so a 1.2 handler's envelopes are padded inside the
// document too.
func (i *Injector) pad(body []byte) []byte {
	filler := bytes.Repeat([]byte(" "), oversizePad)
	codec := i.codec
	if codec == nil {
		codec = soap.V11
	}
	closing := []byte(codec.EnvelopeClose())
	if i := bytes.LastIndex(body, closing); i >= 0 {
		out := make([]byte, 0, len(body)+len(filler))
		out = append(out, body[:i]...)
		out = append(out, filler...)
		return append(out, body[i:]...)
	}
	return append(body, filler...)
}

// childLine matches one single-line payload child of the canonical
// soap.Marshal wire format: indented "<m:name>value</m:name>". The
// wrapper element spans multiple lines and carries an attribute, so
// only genuine children match.
var childLine = regexp.MustCompile(`(?m)^( +)<m:([A-Za-z0-9_.-]+)>(.*)</m:[A-Za-z0-9_.-]+>$`)

// mutateChild duplicates (with a corrupted value) or renames the first
// payload child. A body with no children — or a non-envelope body —
// is returned unchanged, making the fault a no-op for that exchange.
func mutateChild(body []byte, duplicate bool) []byte {
	loc := childLine.FindSubmatchIndex(body)
	if loc == nil {
		return body
	}
	indent := string(body[loc[2]:loc[3]])
	name := string(body[loc[4]:loc[5]])
	value := string(body[loc[6]:loc[7]])
	var repl string
	if duplicate {
		orig := string(body[loc[0]:loc[1]])
		repl = orig + "\n" + indent + "<m:" + name + ">" + value + "x</m:" + name + ">"
	} else {
		repl = indent + "<m:" + name + "X>" + value + "</m:" + name + "X>"
	}
	out := make([]byte, 0, len(body)+len(repl))
	out = append(out, body[:loc[0]]...)
	out = append(out, repl...)
	return append(out, body[loc[1]:]...)
}
