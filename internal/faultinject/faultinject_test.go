package faultinject

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wsinterop/internal/soap"
	"wsinterop/internal/transport"
	"wsinterop/internal/wsi"
)

// echoHandler is a minimal SOAP echo service: it parses the request
// payload and mirrors it back under a Response wrapper, like the real
// transport.Host does for catalog services.
func echoHandler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, r.ContentLength)
		if _, err := r.Body.Read(body); err != nil && err.Error() != "EOF" {
			t.Errorf("read request: %v", err)
		}
		msg, err := soap.V11.Unmarshal(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		resp, err := soap.V11.Marshal(&soap.Message{
			Namespace: msg.Namespace, Local: msg.Local + "Response", Fields: msg.Fields,
		})
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", soap.ContentType)
		_, _ = w.Write(resp)
	})
}

func echoRequest() *soap.Message {
	return &soap.Message{Namespace: "urn:test", Local: "echo",
		Fields: map[string]string{"input": "ping", "count": "3"}}
}

// invokeFaulted drives one invocation through the injector with the
// given directive stamped on every attempt.
func invokeFaulted(t *testing.T, handler http.Handler, directive string) (*soap.Message, error) {
	t.Helper()
	policy := &transport.RetryPolicy{
		Annotate: func(attempt int, h http.Header) {
			h.Set(HeaderFault, directive)
			h.Set(HeaderAttempt, "1")
		},
	}
	bridge := transport.NewLocalBridge(handler).WithRetry(policy)
	return bridge.Invoke(context.Background(), "/svc", echoRequest())
}

func TestPassthroughWithoutDirective(t *testing.T) {
	inj := New(echoHandler(t))
	resp, err := transport.NewLocalBridge(inj).Invoke(context.Background(), "/svc", echoRequest())
	if err != nil {
		t.Fatalf("clean invoke through idle injector: %v", err)
	}
	if v, _ := resp.Field("input"); v != "ping" {
		t.Errorf("echo = %q, want ping", v)
	}
}

// TestFaultKinds drives every catalog fault end to end through a
// LocalBridge and asserts the client-visible effect.
func TestFaultKinds(t *testing.T) {
	inj := New(echoHandler(t))
	inj.Sleep = func(time.Duration) {} // keep the delay fault instant

	isHTTPError := func(status int) func(*testing.T, *soap.Message, error) {
		return func(t *testing.T, _ *soap.Message, err error) {
			var he *transport.HTTPError
			if !errors.As(err, &he) {
				t.Fatalf("want *HTTPError, got %v", err)
			}
			if he.Status != status {
				t.Errorf("status = %d, want %d", he.Status, status)
			}
		}
	}
	isDecodeError := func(t *testing.T, _ *soap.Message, err error) {
		var de *soap.DecodeError
		if !errors.As(err, &de) {
			t.Fatalf("want *soap.DecodeError, got %v", err)
		}
	}

	cases := []struct {
		kind  Kind
		check func(*testing.T, *soap.Message, error)
	}{
		{KindTruncate, isDecodeError},
		{KindHTMLError, isHTTPError(http.StatusInternalServerError)},
		{KindStatus500, isHTTPError(http.StatusInternalServerError)},
		{KindWrongContentType, func(t *testing.T, resp *soap.Message, err error) {
			// The envelope is intact; only the media type lies. The codec
			// does not sniff media types, so the exchange succeeds — the
			// conformance violation is the sniffer's to flag.
			if err != nil {
				t.Fatalf("wrong content type should still decode: %v", err)
			}
			if v, _ := resp.Field("input"); v != "ping" {
				t.Errorf("echo = %q", v)
			}
		}},
		{KindEmptyBody, isDecodeError},
		{KindOversize, isDecodeError},
		{KindDuplicateChild, isDecodeError},
		{KindRenameChild, func(t *testing.T, resp *soap.Message, err error) {
			// Still a well-formed envelope: the corruption shows up as a
			// missing expected field, i.e. a response-shape mismatch.
			if err != nil {
				t.Fatalf("renamed child should still decode: %v", err)
			}
			if _, ok := resp.Field("count"); ok {
				t.Error("first (sorted) child should have been renamed away")
			}
			if _, ok := resp.Field("countX"); !ok {
				t.Errorf("renamed field missing; fields = %v", resp.Fields)
			}
		}},
		{KindDelay, func(t *testing.T, resp *soap.Message, err error) {
			if err != nil {
				t.Fatalf("delayed response should succeed: %v", err)
			}
		}},
		{KindAbort, func(t *testing.T, _ *soap.Message, err error) {
			if !errors.Is(err, transport.ErrAborted) {
				t.Fatalf("want ErrAborted, got %v", err)
			}
		}},
	}
	for _, c := range cases {
		t.Run(string(c.kind), func(t *testing.T) {
			resp, err := invokeFaulted(t, inj, string(c.kind))
			c.check(t, resp, err)
		})
	}
}

func TestDuplicateChildCorruptsValue(t *testing.T) {
	inj := New(echoHandler(t))
	_, err := invokeFaulted(t, inj, string(KindDuplicateChild))
	var de *soap.DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("duplicated child must be rejected by the codec, got %v", err)
	}
	if !strings.Contains(de.Reason, "duplicate") {
		t.Errorf("reason = %q, want duplicate-child rejection", de.Reason)
	}
}

// TestTransientFaultRespectsAttempts checks the ";times=N" directive:
// the fault fires on the first N attempts and passes through after.
func TestTransientFaultRespectsAttempts(t *testing.T) {
	inj := New(echoHandler(t))
	attempts := 0
	policy := &transport.RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
		Annotate: func(attempt int, h http.Header) {
			attempts = attempt
			h.Set(HeaderFault, string(KindAbort)+";times=1")
			h.Set(HeaderAttempt, itoa(attempt))
		},
	}
	bridge := transport.NewLocalBridge(inj).WithRetry(policy)
	resp, err := bridge.Invoke(context.Background(), "/svc", echoRequest())
	if err != nil {
		t.Fatalf("transient fault should recover under retry: %v", err)
	}
	if attempts != 2 {
		t.Errorf("attempts = %d, want 2 (fault on first only)", attempts)
	}
	if v, _ := resp.Field("input"); v != "ping" {
		t.Errorf("echo = %q", v)
	}
}

// itoa avoids strconv in the one place a test stamps attempt numbers.
func itoa(n int) string { return string(rune('0' + n)) }

func TestTransientFaultWithoutRetryFails(t *testing.T) {
	inj := New(echoHandler(t))
	_, err := invokeFaulted(t, inj, string(KindAbort)+";times=1")
	if !errors.Is(err, transport.ErrAborted) {
		t.Fatalf("single attempt must still hit the transient fault, got %v", err)
	}
}

func TestUnknownDirectiveIsServerError(t *testing.T) {
	inj := New(echoHandler(t))
	_, err := invokeFaulted(t, inj, "no-such-fault")
	var he *transport.HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusInternalServerError {
		t.Fatalf("unknown directive should 500, got %v", err)
	}
}

// TestComposesWithSniffer stacks the injector over a sniffer over a
// handler — the composition the campaign uses — and checks both
// middlewares observe the exchange.
func TestComposesWithSniffer(t *testing.T) {
	sniffer := transport.NewSniffer(echoHandler(t), wsi.NewChecker())
	inj := New(sniffer)

	if _, err := transport.NewLocalBridge(inj).Invoke(context.Background(), "/svc", echoRequest()); err != nil {
		t.Fatalf("clean invoke through the stack: %v", err)
	}
	if sniffer.Exchanges() != 1 {
		t.Errorf("sniffer exchanges = %d, want 1", sniffer.Exchanges())
	}
}

func TestOversizeExceedsReadBudget(t *testing.T) {
	rec := httptest.NewRecorder()
	inj := New(echoHandler(t))
	req := httptest.NewRequest(http.MethodPost, "/svc", strings.NewReader(mustMarshal(t)))
	req.Header.Set("Content-Type", soap.ContentType)
	req.Header.Set(HeaderFault, string(KindOversize))
	req.ContentLength = int64(len(mustMarshal(t)))
	inj.ServeHTTP(rec, req)
	if rec.Body.Len() <= 1<<20 {
		t.Errorf("oversize body = %d bytes, want > 1 MiB", rec.Body.Len())
	}
}

func mustMarshal(t *testing.T) string {
	t.Helper()
	b, err := soap.V11.Marshal(echoRequest())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestCatalogIsStable(t *testing.T) {
	c1, c2 := Catalog(), Catalog()
	if len(c1) == 0 {
		t.Fatal("empty catalog")
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Errorf("catalog row %d not stable: %+v vs %+v", i, c1[i], c2[i])
		}
	}
	seen := map[string]bool{}
	for _, f := range c1 {
		if seen[f.Name] {
			t.Errorf("duplicate catalog row %q", f.Name)
		}
		seen[f.Name] = true
	}
}
