package framework

import (
	"fmt"

	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// This file implements the three server-side framework subsystems.
// All three follow the same overall emission pipeline — map the
// parameter class to schema types, wrap the echo operation in
// document/literal request/response elements, bind over SOAP/HTTP —
// and differ in the documented quirks of the real products:
//
//   - Metro refuses to deploy async-handle classes but maps
//     vendor-annotated beans; its dangling WS-Addressing reference
//     carries no import at all, and its vendor facet is "jaxb-format".
//   - JBossWS CXF publishes zero-operation WSDLs for async-handle
//     classes (the paper's "unusable but WS-I-compliant" finding),
//     declares imports without schemaLocation, and uses "cxf-format".
//   - WCF emits the classic DataSet schema: an element reference to
//     xs:schema plus xml:lang attributes, wildcard content models,
//     deep inline nesting, and tempuri-rooted non-empty soapActions.

// WS-Addressing namespace used by the dangling reference services.
const addressingNamespace = "http://www.w3.org/2005/08/addressing"

// ServerOption customizes a server framework model.
type ServerOption func(*serverOptions)

type serverOptions struct {
	style wsdl.Style
}

// WithBindingStyle selects the SOAP binding style the emitter
// publishes (document/literal by default; rpc/literal is the
// complexity extension's second emission mode).
func WithBindingStyle(style wsdl.Style) ServerOption {
	return func(o *serverOptions) { o.style = style }
}

func applyServerOptions(opts []ServerOption) serverOptions {
	o := serverOptions{style: wsdl.StyleDocument}
	for _, apply := range opts {
		apply(&o)
	}
	return o
}

// javaServer holds what the two Java emitters share.
type javaServer struct {
	name    string
	server  string
	variant emitterVariant
	style   wsdl.Style
}

type emitterVariant int

const (
	variantMetro emitterVariant = iota + 1
	variantJBossWS
)

// NewMetroServer creates the Oracle Metro 2.3 / GlassFish 4 model.
func NewMetroServer(opts ...ServerOption) ServerFramework {
	o := applyServerOptions(opts)
	return &javaServer{name: "Metro", server: "GlassFish 4.0", variant: variantMetro, style: o.style}
}

// NewJBossWSServer creates the JBossWS CXF 4.2.3 / JBoss AS 7.2 model.
func NewJBossWSServer(opts ...ServerOption) ServerFramework {
	o := applyServerOptions(opts)
	return &javaServer{name: "JBossWS CXF", server: "JBoss AS 7.2", variant: variantJBossWS, style: o.style}
}

var _ ServerFramework = (*javaServer)(nil)

// Name implements ServerFramework.
func (s *javaServer) Name() string { return s.name }

// Server implements ServerFramework.
func (s *javaServer) Server() string { return s.server }

// Language implements ServerFramework.
func (s *javaServer) Language() typesys.Language { return typesys.Java }

// Publish implements ServerFramework.
func (s *javaServer) Publish(def services.Definition) (*wsdl.Definitions, error) {
	cls := def.Parameter
	switch cls.Kind {
	case typesys.KindBean:
		// Bindable by both Java frameworks.
	case typesys.KindBeanVendor:
		if s.variant == variantJBossWS {
			return nil, &NotDeployableError{
				Framework: s.name, Class: cls.Name,
				Reason: "type requires vendor-specific binding annotations",
			}
		}
	case typesys.KindAsyncHandle:
		if s.variant == variantMetro {
			// Metro signals the problem by refusing deployment — the
			// behaviour the paper calls "more adequate" (§IV.A).
			return nil, &NotDeployableError{
				Framework: s.name, Class: cls.Name,
				Reason: ErrRefused.Error(),
			}
		}
		return s.publishZeroOperation(def), nil
	default:
		return nil, &NotDeployableError{
			Framework: s.name, Class: cls.Name,
			Reason: fmt.Sprintf("kind %s cannot be bound to an XSD type", cls.Kind),
		}
	}
	return s.publishEcho(def), nil
}

// publishEcho builds the regular single-operation document.
func (s *javaServer) publishEcho(def services.Definition) *wsdl.Definitions {
	cls := def.Parameter
	tns := typesys.NamespaceFor(typesys.Java, cls.Package)
	sch := &xsd.Schema{TargetNamespace: tns, ElementFormDefault: "qualified"}

	paramType := s.emitClassType(sch, cls)
	doc := buildDefinitions(def, tns, sch, s.style, paramType)
	// Java frameworks emit empty soapAction values.
	for i := range doc.Bindings {
		for j := range doc.Bindings[i].Operations {
			doc.Bindings[i].Operations[j].SOAPAction = ""
		}
	}
	return doc
}

// publishZeroOperation builds the async-handle document: a port type
// with no operations, which passes the official WS-I check but is
// unusable (paper §IV.B.1).
func (s *javaServer) publishZeroOperation(def services.Definition) *wsdl.Definitions {
	cls := def.Parameter
	tns := typesys.NamespaceFor(typesys.Java, cls.Package)
	doc := &wsdl.Definitions{
		Name:            def.Name,
		TargetNamespace: tns,
		PortTypes:       []wsdl.PortType{{Name: def.Name + "PortType"}},
		Bindings: []wsdl.Binding{{
			Name:      def.Name + "Binding",
			PortType:  def.Name + "PortType",
			Transport: wsdl.NamespaceSOAPHTTP,
			Style:     wsdl.StyleDocument,
		}},
		Services: []wsdl.Service{{
			Name: def.Name,
			Ports: []wsdl.Port{{
				Name:     def.Name + "Port",
				Binding:  def.Name + "Binding",
				Location: endpointFor(def, s.server),
			}},
		}},
	}
	if cls.Hints.Has(typesys.HintEmptyTypes) {
		doc.Types = xsd.NewSchemaSet()
		return doc
	}
	sch := &xsd.Schema{TargetNamespace: tns, ElementFormDefault: "qualified"}
	s.emitClassType(sch, cls)
	doc.Types = xsd.NewSchemaSet(sch)
	return doc
}

// emitClassType maps a Java class to a complex type in the schema and
// returns its QName. The structural hints of the class materialize
// here.
func (s *javaServer) emitClassType(sch *xsd.Schema, cls *typesys.Class) xsd.QName {
	ct := xsd.ComplexType{Name: cls.Simple}
	ct.Sequence = make([]xsd.Element, 0, len(cls.Fields)+1)
	for _, f := range cls.Fields {
		switch {
		case f.Kind == typesys.FieldRef && cls.Hints.Has(typesys.HintUnresolvedAddressingRef):
			// The dangling WS-Addressing reference. Metro emits no
			// import at all; JBossWS declares the import but omits the
			// schemaLocation. Both leave the reference unresolvable.
			ct.Sequence = append(ct.Sequence, xsd.Element{
				Ref:    xsd.QName{Space: addressingNamespace, Local: "EndpointReference"},
				Occurs: xsd.Optional,
			})
			if s.variant == variantJBossWS {
				ensureImport(sch, addressingNamespace)
			}
		case f.Kind == typesys.FieldRef:
			ct.Sequence = append(ct.Sequence, xsd.Element{
				Name:   f.Name,
				Type:   xsd.QName{Space: sch.TargetNamespace, Local: f.Ref},
				Occurs: xsd.Optional,
			})
			ensureStubType(sch, f.Ref)
		default:
			ct.Sequence = append(ct.Sequence, xsd.Element{
				Name:   f.Name,
				Type:   fieldSimpleType(f.Kind),
				Occurs: xsd.Optional,
			})
		}
	}
	if cls.Hints.Has(typesys.HintVendorFacet) {
		facet := "jaxb-format"
		if s.variant == variantJBossWS {
			facet = "cxf-format"
		}
		stName := cls.Simple + "Pattern"
		sch.SimpleTypes = append(sch.SimpleTypes, xsd.SimpleType{
			Name: stName,
			Base: xsd.TypeString,
			Facets: []xsd.Facet{
				{Name: facet, Value: "yyyy-MM-dd'T'HH:mm:ss"},
			},
		})
		ct.Sequence = append(ct.Sequence, xsd.Element{
			Name:   "formatPattern",
			Type:   xsd.QName{Space: sch.TargetNamespace, Local: stName},
			Occurs: xsd.Optional,
		})
	}
	sch.ComplexTypes = append(sch.ComplexTypes, ct)
	return xsd.QName{Space: sch.TargetNamespace, Local: ct.Name}
}

// NewWCFServer creates the WCF .NET 4.0 / IIS 8.0 Express model.
func NewWCFServer(opts ...ServerOption) ServerFramework {
	o := applyServerOptions(opts)
	return &wcfServer{style: o.style}
}

type wcfServer struct {
	style wsdl.Style
}

var _ ServerFramework = (*wcfServer)(nil)

// Name implements ServerFramework.
func (s *wcfServer) Name() string { return "WCF .NET" }

// Server implements ServerFramework.
func (s *wcfServer) Server() string { return "IIS 8.0 Express" }

// Language implements ServerFramework.
func (s *wcfServer) Language() typesys.Language { return typesys.CSharp }

// Publish implements ServerFramework.
func (s *wcfServer) Publish(def services.Definition) (*wsdl.Definitions, error) {
	cls := def.Parameter
	if !cls.Kind.Bindable() || cls.Kind == typesys.KindAsyncHandle {
		return nil, &NotDeployableError{
			Framework: s.Name(), Class: cls.Name,
			Reason: fmt.Sprintf("kind %s cannot be serialized by DataContractSerializer", cls.Kind),
		}
	}
	tns := typesys.NamespaceFor(typesys.CSharp, cls.Package)
	sch := &xsd.Schema{TargetNamespace: tns, ElementFormDefault: "qualified"}
	paramType := s.emitClassType(sch, cls)
	doc := buildDefinitions(def, tns, sch, s.style, paramType)
	// .NET emits absolute soapAction URIs.
	for i := range doc.Bindings {
		for j := range doc.Bindings[i].Operations {
			doc.Bindings[i].Operations[j].SOAPAction = tns + def.OperationName
		}
	}
	return doc, nil
}

// emitClassType maps a C# class to schema structure, materializing
// the DataSet-style defects.
func (s *wcfServer) emitClassType(sch *xsd.Schema, cls *typesys.Class) xsd.QName {
	ct := xsd.ComplexType{Name: cls.Simple}

	switch {
	case cls.Hints.Has(typesys.HintWildcard):
		// DataTable family: wildcard-only content model, plus the
		// class's own properties mapped into a companion type so the
		// case-colliding members survive into artifacts.
		ct.Any = append(ct.Any, xsd.AnyParticle{
			Namespace:       "##any",
			ProcessContents: "lax",
			Occurs:          xsd.Unbounded,
		})
		if len(cls.Fields) > 0 {
			rows := xsd.ComplexType{Name: cls.Simple + "Row"}
			for _, f := range cls.Fields {
				rows.Sequence = append(rows.Sequence, xsd.Element{
					Name: f.Name, Type: fieldSimpleType(f.Kind), Occurs: xsd.Optional,
				})
			}
			sch.ComplexTypes = append(sch.ComplexTypes, rows)
		}
	case cls.Hints.Has(typesys.HintSchemaRefHard):
		s.emitSchemaRef(sch, &ct, cls)
	default:
		for _, f := range cls.Fields {
			el := xsd.Element{Name: f.Name, Occurs: xsd.Optional}
			if f.Kind == typesys.FieldRef {
				el.Type = xsd.QName{Space: sch.TargetNamespace, Local: f.Ref}
				ensureStubType(sch, f.Ref)
			} else {
				el.Type = fieldSimpleType(f.Kind)
			}
			ct.Sequence = append(ct.Sequence, el)
		}
	}

	if cls.Hints.Has(typesys.HintDeepNesting) {
		ct.Sequence = append(ct.Sequence, deeplyNestedElement(4))
	}
	if cls.Hints.Has(typesys.HintLangAttr) {
		langRef := xsd.Attribute{Ref: xsd.QName{Space: xsd.NamespaceXML, Local: "lang"}}
		ct.Attributes = append(ct.Attributes, langRef)
		if cls.Hints.Has(typesys.HintDoubleLang) {
			ct.Attributes = append(ct.Attributes, langRef)
		}
	}

	sch.ComplexTypes = append(sch.ComplexTypes, ct)
	return xsd.QName{Space: sch.TargetNamespace, Local: ct.Name}
}

// emitSchemaRef materializes the classic WCF DataSet construct: an
// element reference to xs:schema, in the structural variant the class
// hints select.
func (s *wcfServer) emitSchemaRef(sch *xsd.Schema, ct *xsd.ComplexType, cls *typesys.Class) {
	ref := xsd.Element{
		Ref:    xsd.QName{Space: xsd.NamespaceXSD, Local: "schema"},
		Occurs: xsd.Once,
	}
	switch {
	case cls.Hints.Has(typesys.HintSchemaRefUnbounded):
		ref.Occurs = xsd.Unbounded
	case cls.Hints.Has(typesys.HintOptionalRef):
		ref.Occurs = xsd.Optional
	}
	if cls.Hints.Has(typesys.HintNillableRef) {
		ref.Nillable = true
	}

	switch {
	case cls.Hints.Has(typesys.HintSchemaRefNested):
		// Nested variant: the reference hides inside an inline type.
		ct.Sequence = append(ct.Sequence, xsd.Element{
			Name: "payload",
			Inline: &xsd.ComplexType{
				Sequence: []xsd.Element{ref},
			},
			Occurs: xsd.Optional,
		})
	case cls.Hints.Has(typesys.HintSchemaRefWithAny):
		ct.Sequence = append(ct.Sequence, ref)
		ct.Any = append(ct.Any, xsd.AnyParticle{
			Namespace: "##any", ProcessContents: "lax", Occurs: xsd.Once,
		})
	default:
		ct.Sequence = append(ct.Sequence, ref)
	}
}

// ---------------------------------------------------------------
// Shared emission helpers.
// ---------------------------------------------------------------

// fieldSimpleType maps a field kind to its XSD built-in type.
func fieldSimpleType(k typesys.FieldKind) xsd.QName {
	switch k {
	case typesys.FieldString:
		return xsd.TypeString
	case typesys.FieldInt:
		return xsd.TypeInt
	case typesys.FieldLong:
		return xsd.TypeLong
	case typesys.FieldBool:
		return xsd.TypeBoolean
	case typesys.FieldDouble:
		return xsd.TypeDouble
	case typesys.FieldDateTime:
		return xsd.TypeDateTime
	case typesys.FieldBytes:
		return xsd.TypeBase64Binary
	default:
		return xsd.TypeAnyType
	}
}

// ensureStubType declares a minimal companion complex type so plain
// intra-namespace references resolve.
func ensureStubType(sch *xsd.Schema, name string) {
	for i := range sch.ComplexTypes {
		if sch.ComplexTypes[i].Name == name {
			return
		}
	}
	sch.ComplexTypes = append(sch.ComplexTypes, xsd.ComplexType{
		Name: name,
		Sequence: []xsd.Element{
			{Name: "detail", Type: xsd.TypeString, Occurs: xsd.Optional},
		},
	})
}

// ensureImport declares an import for the namespace without a
// schemaLocation (the JBossWS emission style).
func ensureImport(sch *xsd.Schema, ns string) {
	for _, imp := range sch.Imports {
		if imp.Namespace == ns {
			return
		}
	}
	sch.Imports = append(sch.Imports, xsd.Import{Namespace: ns})
}

// addEchoWrappers adds the document/literal wrapped request/response
// elements for the echo operation, shaped by the service's interface
// variant (the paper's future-work complexity extension).
func addEchoWrappers(sch *xsd.Schema, def services.Definition, paramType xsd.QName, respName string) {
	opName := def.OperationName
	// One allocation backs both wrapper complex types and their
	// sequences; cap-limited carves keep the in/out runs separate.
	sc := &struct {
		cts [2]xsd.ComplexType
		els [4]xsd.Element
	}{}
	var in, out []xsd.Element
	switch def.Variant {
	case services.VariantMultiParam:
		sc.els[0] = xsd.Element{Name: "input", Type: paramType, Occurs: xsd.Once}
		sc.els[1] = xsd.Element{Name: "options", Type: xsd.TypeString, Occurs: xsd.Optional}
		sc.els[2] = xsd.Element{Name: "count", Type: xsd.TypeInt, Occurs: xsd.Optional}
		sc.els[3] = xsd.Element{Name: "return", Type: paramType, Occurs: xsd.Once}
		in, out = sc.els[0:3:3], sc.els[3:4:4]
	case services.VariantNested:
		envelope := func(inner string) *xsd.ComplexType {
			return &xsd.ComplexType{
				Sequence: []xsd.Element{{
					Name: "envelope",
					Inline: &xsd.ComplexType{
						Sequence: []xsd.Element{
							{Name: inner, Type: paramType, Occurs: xsd.Once},
						},
					},
					Occurs: xsd.Once,
				}},
			}
		}
		sch.Elements = append(sch.Elements,
			xsd.Element{Name: opName, Inline: envelope("input")},
			xsd.Element{Name: opName + "Response", Inline: envelope("return")},
		)
		return
	case services.VariantCollection:
		sc.els[0] = xsd.Element{Name: "input", Type: paramType, Occurs: xsd.Unbounded}
		sc.els[1] = xsd.Element{Name: "return", Type: paramType, Occurs: xsd.Unbounded}
		in, out = sc.els[0:1:1], sc.els[1:2:2]
	default: // VariantSimple and the zero value
		sc.els[0] = xsd.Element{Name: "input", Type: paramType, Occurs: xsd.Once}
		sc.els[1] = xsd.Element{Name: "return", Type: paramType, Occurs: xsd.Once}
		in, out = sc.els[0:1:1], sc.els[1:2:2]
	}
	sc.cts[0] = xsd.ComplexType{Sequence: in}
	sc.cts[1] = xsd.ComplexType{Sequence: out}
	sch.Elements = append(sch.Elements,
		xsd.Element{Name: opName, Inline: &sc.cts[0]},
		xsd.Element{Name: respName, Inline: &sc.cts[1]},
	)
}

// deeplyNestedElement builds an element whose inline types nest to
// the requested depth.
func deeplyNestedElement(depth int) xsd.Element {
	el := xsd.Element{
		Name:   fmt.Sprintf("level%d", depth),
		Type:   xsd.TypeString,
		Occurs: xsd.Optional,
	}
	for d := depth - 1; d >= 1; d-- {
		el = xsd.Element{
			Name:   fmt.Sprintf("level%d", d),
			Inline: &xsd.ComplexType{Sequence: []xsd.Element{el}},
			Occurs: xsd.Optional,
		}
	}
	return el
}

// endpointFor derives the published endpoint address.
func endpointFor(def services.Definition, server string) string {
	return "http://localhost:8080/" + xsd.SanitizeNCName(def.Name)
}

// buildDefinitions assembles the document for a single-operation echo
// service over the prepared schema, in the requested binding style.
//
// Document/literal (the study's shape) wraps the operation in request
// and response elements; rpc/literal references the parameter type
// directly from typed message parts and declares the soapbind:body
// namespace WS-I requires (R2717). The nested and collection interface
// variants have no rpc equivalent and fall back to the simple shape,
// exactly as the original frameworks degrade them.
// defScaffold backs one Definitions tree with a single allocation: all
// the one- and two-element slices the tree hangs off live inline, and
// the slice headers are cap-limited carves so a later append can never
// write into a sibling array.
type defScaffold struct {
	defs     wsdl.Definitions
	messages [2]wsdl.Message
	parts    [4]wsdl.Part
	pts      [1]wsdl.PortType
	ops      [1]wsdl.Operation
	bindings [1]wsdl.Binding
	bops     [1]wsdl.BindingOperation
	services [1]wsdl.Service
	ports    [1]wsdl.Port
}

func buildDefinitions(def services.Definition, tns string, sch *xsd.Schema, style wsdl.Style, paramType xsd.QName) *wsdl.Definitions {
	op := def.OperationName
	portType := def.Name + "PortType"
	binding := def.Name + "Binding"
	reqName := op + "Request"
	respName := op + "Response"

	sc := &defScaffold{}
	bodyNamespace := ""
	if style == wsdl.StyleRPC {
		bodyNamespace = tns
		sc.parts[0] = wsdl.Part{Name: "input", Type: paramType}
		nin := 1
		if def.Variant == services.VariantMultiParam {
			sc.parts[1] = wsdl.Part{Name: "options", Type: xsd.TypeString}
			sc.parts[2] = wsdl.Part{Name: "count", Type: xsd.TypeInt}
			nin = 3
		}
		sc.parts[3] = wsdl.Part{Name: "return", Type: paramType}
		sc.messages[0] = wsdl.Message{Name: reqName, Parts: sc.parts[0:nin:nin]}
		sc.messages[1] = wsdl.Message{Name: respName, Parts: sc.parts[3:4:4]}
	} else {
		style = wsdl.StyleDocument
		addEchoWrappers(sch, def, paramType, respName)
		sc.parts[0] = wsdl.Part{Name: "parameters", Element: xsd.QName{Space: tns, Local: op}}
		sc.parts[1] = wsdl.Part{Name: "parameters", Element: xsd.QName{Space: tns, Local: respName}}
		sc.messages[0] = wsdl.Message{Name: reqName, Parts: sc.parts[0:1:1]}
		sc.messages[1] = wsdl.Message{Name: respName, Parts: sc.parts[1:2:2]}
	}

	sc.ops[0] = wsdl.Operation{
		Name:   op,
		Input:  wsdl.IORef{Message: reqName},
		Output: wsdl.IORef{Message: respName},
	}
	sc.pts[0] = wsdl.PortType{Name: portType, Operations: sc.ops[:]}
	sc.bops[0] = wsdl.BindingOperation{
		Name:          op,
		InputUse:      wsdl.UseLiteral,
		OutputUse:     wsdl.UseLiteral,
		BodyNamespace: bodyNamespace,
	}
	sc.bindings[0] = wsdl.Binding{
		Name:       binding,
		PortType:   portType,
		Transport:  wsdl.NamespaceSOAPHTTP,
		Style:      style,
		Operations: sc.bops[:],
	}
	sc.ports[0] = wsdl.Port{
		Name:     def.Name + "Port",
		Binding:  binding,
		Location: endpointFor(def, ""),
	}
	sc.services[0] = wsdl.Service{Name: def.Name, Ports: sc.ports[:]}

	sc.defs = wsdl.Definitions{
		Name:            def.Name,
		TargetNamespace: tns,
		Types:           xsd.NewSchemaSet(sch),
		Messages:        sc.messages[:],
		PortTypes:       sc.pts[:],
		Bindings:        sc.bindings[:],
		Services:        sc.services[:],
	}
	return &sc.defs
}
