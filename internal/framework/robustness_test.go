package framework

import (
	"math/rand"
	"testing"

	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
)

// mutate corrupts a document deterministically: byte flips, deletions,
// truncations and tag splices, seeded per iteration.
func mutate(r *rand.Rand, doc []byte) []byte {
	out := append([]byte(nil), doc...)
	switch r.Intn(4) {
	case 0: // flip random bytes
		for i := 0; i < 1+r.Intn(8); i++ {
			out[r.Intn(len(out))] = byte(r.Intn(256))
		}
	case 1: // delete a span
		start := r.Intn(len(out))
		end := start + r.Intn(len(out)-start)
		out = append(out[:start], out[end:]...)
	case 2: // truncate
		out = out[:r.Intn(len(out))]
	case 3: // splice a rogue tag
		pos := r.Intn(len(out))
		rogue := []byte("<rogue:tag attr='")
		out = append(out[:pos:pos], append(rogue, out[pos:]...)...)
	}
	return out
}

// TestClientsSurviveCorruptedDocuments feeds every client hundreds of
// corrupted WSDLs. Clients must neither panic nor produce artifacts
// with nil classes from garbage; a parse failure issue is the correct
// outcome for undecodable input.
func TestClientsSurviveCorruptedDocuments(t *testing.T) {
	base := publishRaw(t, NewWCFServer(), typesys.CSharpDataTable)
	clients := Clients()
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		doc := mutate(r, base)
		for _, c := range clients {
			func() {
				defer func() {
					if p := recover(); p != nil {
						t.Fatalf("iteration %d: %s panicked: %v\ndocument:\n%s", i, c.Name(), p, doc)
					}
				}()
				res := c.Generate(doc)
				if res.Unit != nil {
					// Whatever was generated must be safe to verify.
					c.Verify(res.Unit)
				}
			}()
		}
	}
}

// TestServersSurviveEveryCatalogClass ensures Publish never panics
// for any class, including the unbindable kinds.
func TestServersSurviveEveryCatalogClass(t *testing.T) {
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("publish panicked: %v", p)
		}
	}()
	for _, s := range Servers() {
		cat := typesys.JavaCatalog()
		if s.Language() == typesys.CSharp {
			cat = typesys.CSharpCatalog()
		}
		for i := range cat.Classes {
			def := services.ForClass(&cat.Classes[i])
			_, _ = s.Publish(def)
		}
	}
}
