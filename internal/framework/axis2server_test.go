package framework

import (
	"errors"
	"testing"

	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

func TestAxis2ServerDeployability(t *testing.T) {
	s := NewAxis2Server()
	cat := typesys.JavaCatalog()
	published := 0
	for i := range cat.Classes {
		if _, err := s.Publish(services.ForClass(&cat.Classes[i])); err == nil {
			published++
		} else {
			var nd *NotDeployableError
			if !errors.As(err, &nd) {
				t.Fatalf("unexpected error type: %v", err)
			}
		}
	}
	// Bean classes minus the 412 throwables: stricter than both study
	// servers — the extension's headline observation.
	want := typesys.JavaBeanBoth - typesys.JavaThrowablesBoth
	if published != want {
		t.Errorf("Axis2 server published %d, want %d", published, want)
	}
}

func TestAxis2ServerRefusesAsyncAndThrowables(t *testing.T) {
	s := NewAxis2Server()
	for _, name := range []string{typesys.JavaFuture, typesys.JavaResponse} {
		cls, _ := typesys.JavaCatalog().Lookup(name)
		if _, err := s.Publish(services.ForClass(cls)); err == nil {
			t.Errorf("%s should be refused", name)
		}
	}
	throwable := typesys.JavaCatalog().WithHint(typesys.HintThrowable)[0]
	if _, err := s.Publish(services.ForClass(throwable)); err == nil {
		t.Error("throwable classes should not be deployable on the Axis2 server")
	}
}

func TestAxis2ServerAddressingRefResolves(t *testing.T) {
	// Axis2 declares a located import: its W3CEndpointReference WSDL
	// is the only interoperable emission variant of that class.
	doc := mustPublish(t, NewAxis2Server(), typesys.JavaW3CEndpointReference)
	unresolved, err := doc.Types.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(unresolved) != 0 {
		t.Errorf("Axis2 variant should resolve, got %v", unresolved)
	}
	rep := wsi.NewChecker().Check(doc)
	if !rep.Compliant() {
		t.Errorf("Axis2 variant should be WS-I compliant, got %v", rep.Violations)
	}
	// Clients that fail on the Metro/JBossWS variants succeed here.
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range Clients() {
		if o := runClient(c, raw); o.genErr {
			t.Errorf("%s errored on the resolvable Axis2 variant", c.Name())
		}
	}
}

func TestAxis2ServerVendorFacetStillBreaksDotNet(t *testing.T) {
	doc := publishRaw(t, NewAxis2Server(), typesys.JavaSimpleDateFormat)
	for _, name := range []string{".NET C#", ".NET Visual Basic", ".NET JScript"} {
		if !runClient(clientByName(t, name), doc).genErr {
			t.Errorf("%s should fail on the adb-format facet", name)
		}
	}
	// gSOAP only chokes on the jaxb-format variant.
	if runClient(clientByName(t, "gSOAP"), doc).genErr {
		t.Error("gSOAP should tolerate the adb-format variant")
	}
}
