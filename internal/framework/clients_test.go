package framework

import (
	"strings"
	"testing"

	"wsinterop/internal/artifact"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
)

// publishRaw publishes a class on a server and serializes the WSDL.
func publishRaw(t *testing.T, server ServerFramework, className string) []byte {
	t.Helper()
	doc := mustPublish(t, server, className)
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return raw
}

// stepOutcome summarizes one client's run for assertions.
type stepOutcome struct {
	genWarn, genErr   bool
	compRan           bool
	compWarn, compErr bool
}

func runClient(client ClientFramework, doc []byte) stepOutcome {
	var o stepOutcome
	gen := client.Generate(doc)
	for _, i := range gen.Issues {
		if i.Severity >= artifact.SeverityError {
			o.genErr = true
		} else {
			o.genWarn = true
		}
	}
	if gen.Unit == nil {
		return o
	}
	o.compRan = true
	for _, d := range client.Verify(gen.Unit) {
		if d.Severity >= artifact.SeverityError {
			o.compErr = true
		} else {
			o.compWarn = true
		}
	}
	return o
}

func clientByName(t *testing.T, name string) ClientFramework {
	t.Helper()
	for _, c := range Clients() {
		if c.Name() == name {
			return c
		}
	}
	t.Fatalf("no client named %q", name)
	return nil
}

func TestClientRoster(t *testing.T) {
	clients := Clients()
	if len(clients) != 11 {
		t.Fatalf("expected 11 clients, got %d", len(clients))
	}
	seen := make(map[string]bool, len(clients))
	for _, c := range clients {
		if c.Name() == "" || c.Tool() == "" {
			t.Errorf("client %T lacks identity", c)
		}
		if seen[c.Name()] {
			t.Errorf("duplicate client name %q", c.Name())
		}
		seen[c.Name()] = true
	}
}

func TestCleanServiceInteroperatesEverywhere(t *testing.T) {
	// A plain bean service must work with all eleven clients — this is
	// the baseline the paper's error counts deviate from.
	var clean *typesys.Class
	for i := range typesys.JavaCatalog().Classes {
		c := &typesys.JavaCatalog().Classes[i]
		if c.Kind == typesys.KindBean && c.Hints == 0 {
			clean = c
			break
		}
	}
	doc := publishRaw(t, NewMetroServer(), clean.Name)
	for _, client := range Clients() {
		o := runClient(client, doc)
		if o.genErr || o.compErr {
			t.Errorf("%s: clean service failed: %+v", client.Name(), o)
		}
		switch client.Name() {
		case "Apache Axis1", "Apache Axis2":
			if !o.compWarn {
				t.Errorf("%s must emit unchecked-operations warnings", client.Name())
			}
		case ".NET JScript":
			if !o.genWarn {
				t.Errorf("JScript must warn on Java-convention documents")
			}
		}
	}
}

func TestW3CEndpointReferenceNarrative(t *testing.T) {
	// Table III row a/d: who fails on the dangling addressing ref.
	metroDoc := publishRaw(t, NewMetroServer(), typesys.JavaW3CEndpointReference)
	jbossDoc := publishRaw(t, NewJBossWSServer(), typesys.JavaW3CEndpointReference)

	wantErrOnMetro := map[string]bool{
		"Metro": true, "Apache Axis1": true, "Apache Axis2": true,
		"Apache CXF": true, "JBossWS CXF": true, ".NET C#": true,
		".NET Visual Basic": true, ".NET JScript": true,
		"gSOAP": false, "Zend Framework": false, "suds": true,
	}
	wantErrOnJBoss := map[string]bool{
		"Metro": true, "Apache Axis1": true, "Apache Axis2": false,
		"Apache CXF": true, "JBossWS CXF": true, ".NET C#": true,
		".NET Visual Basic": true, ".NET JScript": true,
		"gSOAP": false, "Zend Framework": false, "suds": false,
	}
	for _, client := range Clients() {
		if got := runClient(client, metroDoc).genErr; got != wantErrOnMetro[client.Name()] {
			t.Errorf("Metro variant × %s: genErr = %v, want %v", client.Name(), got, wantErrOnMetro[client.Name()])
		}
		if got := runClient(client, jbossDoc).genErr; got != wantErrOnJBoss[client.Name()] {
			t.Errorf("JBossWS variant × %s: genErr = %v, want %v", client.Name(), got, wantErrOnJBoss[client.Name()])
		}
	}
	// Zend absorbs the Metro variant silently and warns on the JBossWS
	// variant (the import-without-location emission).
	zend := clientByName(t, "Zend Framework")
	if runClient(zend, metroDoc).genWarn {
		t.Error("Zend should stay silent on the Metro variant")
	}
	if !runClient(zend, jbossDoc).genWarn {
		t.Error("Zend should warn on the JBossWS variant")
	}
}

func TestSimpleDateFormatNarrative(t *testing.T) {
	// Table III row b/e: the vendor facet breaks the three .NET
	// languages everywhere and gSOAP only on the Metro variant.
	metroDoc := publishRaw(t, NewMetroServer(), typesys.JavaSimpleDateFormat)
	jbossDoc := publishRaw(t, NewJBossWSServer(), typesys.JavaSimpleDateFormat)
	for _, name := range []string{".NET C#", ".NET Visual Basic", ".NET JScript"} {
		c := clientByName(t, name)
		if !runClient(c, metroDoc).genErr || !runClient(c, jbossDoc).genErr {
			t.Errorf("%s must fail on both vendor facet variants", name)
		}
	}
	gsoap := clientByName(t, "gSOAP")
	if !runClient(gsoap, metroDoc).genErr {
		t.Error("gSOAP must fail on the jaxb-format variant")
	}
	if runClient(gsoap, jbossDoc).genErr {
		t.Error("gSOAP must tolerate the cxf-format variant")
	}
	suds := clientByName(t, "suds")
	if !runClient(suds, jbossDoc).genWarn || runClient(suds, jbossDoc).genErr {
		t.Error("suds should warn (not fail) on the cxf-format variant")
	}
}

func TestZeroOperationNarrative(t *testing.T) {
	// §IV.B.1: Metro, Axis2 and the .NET languages reject the
	// zero-operation WSDLs; Axis1, CXF and JBossWS process them
	// silently; Zend and suds build method-less clients with warnings;
	// gSOAP fails only on the empty-types variant (Future).
	futureDoc := publishRaw(t, NewJBossWSServer(), typesys.JavaFuture)
	responseDoc := publishRaw(t, NewJBossWSServer(), typesys.JavaResponse)

	rejecting := []string{"Metro", "Apache Axis2", ".NET C#", ".NET Visual Basic", ".NET JScript"}
	for _, name := range rejecting {
		c := clientByName(t, name)
		if !runClient(c, futureDoc).genErr || !runClient(c, responseDoc).genErr {
			t.Errorf("%s must reject zero-operation documents", name)
		}
	}
	for _, name := range []string{"Apache Axis1", "Apache CXF", "JBossWS CXF"} {
		c := clientByName(t, name)
		for _, doc := range [][]byte{futureDoc, responseDoc} {
			o := runClient(c, doc)
			if o.genErr {
				t.Errorf("%s must process zero-operation documents silently", name)
			}
			if !o.compRan {
				t.Errorf("%s should still produce compilable artifacts", name)
			}
			if o.compErr {
				t.Errorf("%s empty stub must compile", name)
			}
		}
	}
	for _, name := range []string{"Zend Framework", "suds"} {
		c := clientByName(t, name)
		o := runClient(c, responseDoc)
		if o.genErr || !o.genWarn {
			t.Errorf("%s should warn about the method-less client, got %+v", name, o)
		}
	}
	gsoap := clientByName(t, "gSOAP")
	if !runClient(gsoap, futureDoc).genErr {
		t.Error("gSOAP must fail on the empty-types zero-operation variant")
	}
	if runClient(gsoap, responseDoc).genErr {
		t.Error("gSOAP must tolerate the typed zero-operation variant")
	}
}

func TestAxis1ThrowableCompileErrors(t *testing.T) {
	// §IV.B.3: Axis1 artifacts for Exception/Error services fail to
	// compile because of the misnamed wrapper attribute.
	throwable := typesys.JavaCatalog().WithHint(typesys.HintThrowable)[0]
	doc := publishRaw(t, NewMetroServer(), throwable.Name)
	axis1 := clientByName(t, "Apache Axis1")
	o := runClient(axis1, doc)
	if o.genErr {
		t.Fatal("Axis1 generation should succeed for throwables")
	}
	if !o.compErr {
		t.Error("Axis1 compilation must fail on throwable wrappers")
	}
	// The defect is specifically an unresolved member reference.
	gen := axis1.Generate(doc)
	found := false
	for _, d := range axis1.Verify(gen.Unit) {
		if d.Code == artifact.CodeUnresolvedRef {
			found = true
		}
	}
	if !found {
		t.Error("expected UNRESOLVED_MEMBER from the wrapper bug")
	}
	// Every other client compiles the same service cleanly.
	for _, c := range Clients() {
		if c.Name() == "Apache Axis1" {
			continue
		}
		if o := runClient(c, doc); o.compErr {
			t.Errorf("%s should compile throwable artifacts, got %+v", c.Name(), o)
		}
	}
}

func TestAxis2CaseCollisionCompileErrors(t *testing.T) {
	// §IV.B.3: Axis2's lower-cased locals collapse case-distinct
	// properties (XMLGregorianCalendar, SocketError, DataTable).
	axis2 := clientByName(t, "Apache Axis2")

	for _, tc := range []struct {
		server ServerFramework
		class  string
	}{
		{NewMetroServer(), typesys.JavaXMLGregorianCalendar},
		{NewJBossWSServer(), typesys.JavaXMLGregorianCalendar},
		{NewWCFServer(), typesys.CSharpSocketError},
		{NewWCFServer(), typesys.CSharpDataTable},
		{NewWCFServer(), typesys.CSharpDataTableCollection},
	} {
		doc := publishRaw(t, tc.server, tc.class)
		o := runClient(axis2, doc)
		if !o.compErr {
			t.Errorf("Axis2 × %s on %s: expected compile error", tc.class, tc.server.Name())
		}
	}
	// DataSet (wildcard, no case collision) compiles.
	doc := publishRaw(t, NewWCFServer(), typesys.CSharpDataSet)
	if o := runClient(axis2, doc); o.compErr {
		t.Error("Axis2 should compile DataSet artifacts")
	}
}

func TestVBEchoCollisionCompileErrors(t *testing.T) {
	vb := clientByName(t, ".NET Visual Basic")
	cs := clientByName(t, ".NET C#")

	javaDoc := publishRaw(t, NewMetroServer(), typesys.JavaVBCollisionClass)
	if !runClient(vb, javaDoc).compErr {
		t.Error("VB must fail on the Java echo-field class")
	}
	if runClient(cs, javaDoc).compErr {
		t.Error("C# must compile the same artifacts")
	}

	webControls := typesys.CSharpCatalog().WithHint(typesys.HintEchoField)
	if len(webControls) != typesys.CSharpEchoClasses {
		t.Fatalf("expected %d WebControls classes", typesys.CSharpEchoClasses)
	}
	for _, cls := range webControls {
		doc := publishRaw(t, NewWCFServer(), cls.Name)
		if !runClient(vb, doc).compErr {
			t.Errorf("VB must fail on %s", cls.Name)
		}
		if runClient(cs, doc).compErr {
			t.Errorf("C# must compile %s artifacts", cls.Name)
		}
	}
	// VB handles case collisions by renaming — SocketError compiles.
	doc := publishRaw(t, NewWCFServer(), typesys.CSharpSocketError)
	if runClient(vb, doc).compErr {
		t.Error("VB renames case collisions and must compile SocketError")
	}
}

func TestJScriptReservedWordCompileErrors(t *testing.T) {
	jscript := clientByName(t, ".NET JScript")
	reserved := typesys.JavaCatalog().WithHint(typesys.HintReservedWordField)[0]
	for _, server := range []ServerFramework{NewMetroServer(), NewJBossWSServer()} {
		doc := publishRaw(t, server, reserved.Name)
		o := runClient(jscript, doc)
		if o.genErr {
			t.Fatalf("JScript generation should succeed on %s", server.Name())
		}
		if !o.compErr {
			t.Errorf("JScript must fail compiling reserved-word artifacts from %s", server.Name())
		}
	}
	// Other clients handle the same service.
	doc := publishRaw(t, NewMetroServer(), reserved.Name)
	for _, c := range Clients() {
		if c.Name() == ".NET JScript" {
			continue
		}
		if o := runClient(c, doc); o.compErr {
			t.Errorf("%s should compile the reserved-word service", c.Name())
		}
	}
}

func TestJScriptCompilerCrash(t *testing.T) {
	jscript := clientByName(t, ".NET JScript")
	deep := typesys.CSharpCatalog().WithHint(typesys.HintDeepNesting)[0]
	doc := publishRaw(t, NewWCFServer(), deep.Name)
	gen := jscript.Generate(doc)
	if gen.Unit == nil {
		t.Fatal("generation should succeed; the crash is at compile time")
	}
	diags := jscript.Verify(gen.Unit)
	if len(diags) != 1 || diags[0].Code != artifact.CodeCompilerCrash {
		t.Fatalf("expected compiler crash, got %v", diags)
	}
	if !strings.Contains(diags[0].Message, "131 INTERNAL COMPILER CRASH") {
		t.Errorf("crash message %q lacks the paper's signature", diags[0].Message)
	}
	// The other .NET back-ends compile the same document.
	for _, name := range []string{".NET C#", ".NET Visual Basic"} {
		if o := runClient(clientByName(t, name), doc); o.compErr {
			t.Errorf("%s should compile the deeply nested artifacts", name)
		}
	}
}

func TestWCFSchemaRefNarrative(t *testing.T) {
	// §IV.B.2: the DataSet-style WSDLs break Metro, CXF and JBossWS;
	// gSOAP fails the nested subset; Axis1 the wildcard-paired subset;
	// suds the unbounded one. The .NET languages handle their own
	// format.
	cat := typesys.CSharpCatalog()
	wcf := NewWCFServer()

	plain := cat.WithHint(typesys.HintSchemaRefHard)
	var plainOnly *typesys.Class
	for _, c := range plain {
		if !c.Hints.Has(typesys.HintSchemaRefNested) && !c.Hints.Has(typesys.HintSchemaRefWithAny) &&
			!c.Hints.Has(typesys.HintSchemaRefUnbounded) && !c.Hints.Has(typesys.HintDoubleLang) &&
			!c.Hints.Has(typesys.HintNillableRef) && !c.Hints.Has(typesys.HintOptionalRef) {
			plainOnly = c
			break
		}
	}
	doc := publishRaw(t, wcf, plainOnly.Name)
	for _, name := range []string{"Metro", "Apache CXF", "JBossWS CXF"} {
		if !runClient(clientByName(t, name), doc).genErr {
			t.Errorf("%s must fail on the s:schema reference", name)
		}
	}
	for _, name := range []string{".NET C#", ".NET Visual Basic", ".NET JScript", "Apache Axis2", "gSOAP", "suds"} {
		if runClient(clientByName(t, name), doc).genErr {
			t.Errorf("%s should handle the plain s:schema reference", name)
		}
	}

	nested := cat.WithHint(typesys.HintSchemaRefNested)[0]
	if !runClient(clientByName(t, "gSOAP"), publishRaw(t, wcf, nested.Name)).genErr {
		t.Error("gSOAP must fail on the nested subset")
	}
	withAny := cat.WithHint(typesys.HintSchemaRefWithAny)[0]
	if !runClient(clientByName(t, "Apache Axis1"), publishRaw(t, wcf, withAny.Name)).genErr {
		t.Error("Axis1 must fail on the wildcard-paired subset")
	}
	unbounded := cat.WithHint(typesys.HintSchemaRefUnbounded)[0]
	if !runClient(clientByName(t, "suds"), publishRaw(t, wcf, unbounded.Name)).genErr {
		t.Error("suds must fail on the unbounded subset")
	}

	// Benign members of the family error nowhere.
	var benign *typesys.Class
	for i := range cat.Classes {
		c := &cat.Classes[i]
		if c.Hints.Has(typesys.HintLangAttr) && !c.Hints.Has(typesys.HintSchemaRefHard) {
			benign = c
			break
		}
	}
	benignDoc := publishRaw(t, wcf, benign.Name)
	for _, c := range Clients() {
		if o := runClient(c, benignDoc); o.genErr || o.compErr {
			t.Errorf("%s errored on a benign WS-I-failing service", c.Name())
		}
	}
}

func TestDotNetDoubleLangWarning(t *testing.T) {
	cls := typesys.CSharpCatalog().WithHint(typesys.HintDoubleLang)[0]
	doc := publishRaw(t, NewWCFServer(), cls.Name)
	for _, name := range []string{".NET C#", ".NET Visual Basic", ".NET JScript"} {
		o := runClient(clientByName(t, name), doc)
		if !o.genWarn || o.genErr {
			t.Errorf("%s should warn (only) on the duplicated xml:lang, got %+v", name, o)
		}
	}
}

func TestGenerateRejectsGarbageInput(t *testing.T) {
	for _, c := range Clients() {
		res := c.Generate([]byte("not a wsdl"))
		if !res.Failed() {
			t.Errorf("%s accepted garbage input", c.Name())
		}
		if res.Unit != nil {
			t.Errorf("%s produced artifacts from garbage", c.Name())
		}
	}
}

func TestGenerationResultFailed(t *testing.T) {
	ok := GenerationResult{Issues: []Issue{warn("W", "warning only")}}
	if ok.Failed() {
		t.Error("warnings alone must not mark a result failed")
	}
	bad := GenerationResult{Issues: []Issue{errIssue("E", "boom")}}
	if !bad.Failed() {
		t.Error("error issues must mark the result failed")
	}
}

func TestIssueString(t *testing.T) {
	i := errIssue(CodeSchemaRef, "cannot bind %s", "thing")
	s := i.String()
	for _, want := range []string{"error", CodeSchemaRef, "cannot bind thing"} {
		if !strings.Contains(s, want) {
			t.Errorf("issue string %q missing %q", s, want)
		}
	}
}

func TestArtifactLanguages(t *testing.T) {
	want := map[string]artifact.TargetLanguage{
		"Metro":             artifact.LangJava,
		"Apache Axis1":      artifact.LangJava,
		"Apache Axis2":      artifact.LangJava,
		"Apache CXF":        artifact.LangJava,
		"JBossWS CXF":       artifact.LangJava,
		".NET C#":           artifact.LangCSharp,
		".NET Visual Basic": artifact.LangVB,
		".NET JScript":      artifact.LangJScript,
		"gSOAP":             artifact.LangCPP,
		"Zend Framework":    artifact.LangPHP,
		"suds":              artifact.LangPython,
	}
	for _, c := range Clients() {
		if got := c.ArtifactLanguage(); got != want[c.Name()] {
			t.Errorf("%s artifact language = %v, want %v", c.Name(), got, want[c.Name()])
		}
	}
}

// TestBindingCustomizationRemediation reproduces §IV.B.2's remediation
// claim: the Metro/CXF/JBossWS generation errors on the WCF DataSet
// family "can be solved by using manual customization of the data
// type bindings". With the customization applied, all 79 errors per
// client disappear and the resulting artifacts compile.
func TestBindingCustomizationRemediation(t *testing.T) {
	cat := typesys.CSharpCatalog()
	wcf := NewWCFServer()

	hard := cat.WithHint(typesys.HintSchemaRefHard)[0]
	wildcard, _ := cat.Lookup(typesys.CSharpDataSet)

	for _, mk := range []func(...ClientOption) ClientFramework{
		NewMetroClient, NewCXFClient, NewJBossWSClient,
	} {
		plain := mk()
		fixed := mk(WithBindingCustomization())
		for _, cls := range []*typesys.Class{hard, wildcard} {
			doc := publishRaw(t, wcf, cls.Name)
			if !runClient(plain, doc).genErr {
				t.Errorf("%s should fail on %s without customization", plain.Name(), cls.Name)
			}
			o := runClient(fixed, doc)
			if o.genErr {
				t.Errorf("%s should succeed on %s with binding customization", fixed.Name(), cls.Name)
			}
			if !o.compRan || o.compErr {
				t.Errorf("%s customized artifacts for %s should compile: %+v", fixed.Name(), cls.Name, o)
			}
		}
		// The customization does not paper over unrelated defects: the
		// dangling WS-Addressing reference still fails.
		w3c := publishRaw(t, NewMetroServer(), typesys.JavaW3CEndpointReference)
		if !runClient(fixed, w3c).genErr {
			t.Errorf("%s: customization must not mask the addressing defect", fixed.Name())
		}
	}
}
