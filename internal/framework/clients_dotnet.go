package framework

import (
	"fmt"

	"wsinterop/internal/artifact"
)

// This file implements the three .NET language clients, all driven by
// the wsdl.exe artifact generator model. The generator behaves
// identically across languages at the generation step — it fails on
// unresolvable references, vendor facets and zero-operation documents,
// and warns on duplicated foreign attributes — while the language
// back-ends differ:
//
//   - C#: clean code generation, case-sensitive compilation.
//   - Visual Basic: the back-end flattens wrapper parameters, naming
//     the proxy method's parameter after the first bean property; a
//     property named like the operation then collides with the method
//     name in VB's case-insensitive member space (4 WCF + 2 Java-side
//     compile errors in the study).
//   - JScript: the tool warns on every empty-soapAction (Java
//     convention) document; the back-end emits accessor functions and
//     call sites but skips definitions for reserved-word properties
//     (50-class compile-error families per Java server), and the jsc
//     compiler crashes on deeply nested types with the study's
//     infamous "131 INTERNAL COMPILER CRASH" (301 services).

type dotNetClient struct {
	lang artifact.TargetLanguage
	// compiler is the language back-end; a Compiler is read-only
	// after construction, so one instance serves every Verify call.
	compiler *artifact.Compiler
}

var _ ClientFramework = (*dotNetClient)(nil)

// jscriptMaxNesting is the modelled type-nesting capacity of the
// JScript compiler.
const jscriptMaxNesting = 3

// NewDotNetClient creates the wsdl.exe model for one of the three
// .NET languages (artifact.LangCSharp, LangVB, LangJScript).
func NewDotNetClient(lang artifact.TargetLanguage) ClientFramework {
	switch lang {
	case artifact.LangCSharp, artifact.LangVB, artifact.LangJScript:
		var opts []artifact.Option
		if lang == artifact.LangJScript {
			opts = append(opts, artifact.WithMaxNesting(jscriptMaxNesting))
		}
		return &dotNetClient{lang: lang, compiler: artifact.NewCompiler(lang, opts...)}
	default:
		panic(fmt.Sprintf("framework: %v is not a .NET artifact language", lang))
	}
}

// Name implements ClientFramework.
func (c *dotNetClient) Name() string {
	switch c.lang {
	case artifact.LangVB:
		return ".NET Visual Basic"
	case artifact.LangJScript:
		return ".NET JScript"
	default:
		return ".NET C#"
	}
}

// Tool implements ClientFramework.
func (c *dotNetClient) Tool() string { return "wsdl.exe" }

// ArtifactLanguage implements ClientFramework.
func (c *dotNetClient) ArtifactLanguage() artifact.TargetLanguage { return c.lang }

// Generate implements ClientFramework.
func (c *dotNetClient) Generate(doc []byte) GenerationResult {
	f, err := analyze(doc)
	if err != nil {
		return parseFailure(err)
	}
	return c.generate(f)
}

// GenerateAnalyzed implements ClientFramework.
func (c *dotNetClient) GenerateAnalyzed(a *Analysis) GenerationResult {
	return c.generate(a.features)
}

func (c *dotNetClient) generate(f *docFeatures) GenerationResult {
	var issues []Issue
	if c.lang == artifact.LangJScript && f.style == styleJava {
		issues = append(issues, warn(CodeEmptySoapAction,
			"soapAction attribute is empty; generated proxy may be incompatible with the endpoint"))
	}
	if f.langAttrRefs >= 2 {
		issues = append(issues, warn(CodeDuplicateAttr,
			"attribute xml:lang is referenced more than once on the same type"))
	}
	if len(f.foreignRefs) > 0 {
		issues = append(issues, errIssue(CodeUnresolvableRef,
			"unable to import binding: undefined element %s", f.foreignRefs[0]))
	}
	if f.vendorFacet != "" {
		issues = append(issues, errIssue(CodeVendorFacet,
			"schema restriction uses unknown facet %q", f.vendorFacet))
	}
	if f.zeroOperations {
		issues = append(issues, errIssue(CodeNoOperations,
			"no classes were generated: the description declares no operations"))
	}
	for _, i := range issues {
		if i.Severity >= artifact.SeverityError {
			return GenerationResult{Issues: issues}
		}
	}

	b := unitBuilder{
		lang:     c.lang,
		stemSfx:  "Proxy",
		unitName: unitNameFor(f),
	}
	switch c.lang {
	case artifact.LangVB:
		b.flattenParams = true
		b.renameCaseCollisions = true
	case artifact.LangJScript:
		b.accessorCalls = true
		b.omitReservedAccessors = true
	}
	return GenerationResult{Unit: b.build(f), Issues: issues}
}

// Verify implements ClientFramework: compilation with the language
// back-end's semantics (csc, vbc or jsc).
func (c *dotNetClient) Verify(u *artifact.Unit) []artifact.Diagnostic {
	return c.compiler.Compile(u)
}
