package framework

import "testing"

// TestVersionStrictnessCoversRoster: every framework model in the
// campaign roster has an explicitly declared strictness — the default
// is a safety net for unknown names, not for the roster.
func TestVersionStrictnessCoversRoster(t *testing.T) {
	for _, s := range Servers() {
		if _, ok := versionStrictness[s.Name()]; !ok {
			t.Errorf("server %q has no declared version strictness", s.Name())
		}
	}
	for _, c := range Clients() {
		if _, ok := versionStrictness[c.Name()]; !ok {
			t.Errorf("client %q has no declared version strictness", c.Name())
		}
	}
}
