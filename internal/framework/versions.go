package framework

import "wsinterop/internal/soap"

// versionStrictness declares, per framework model, how the real stack
// treats SOAP traffic whose envelope version disagrees with the one
// it is bound to. The levels are sourced from the stacks' documented
// behavior (DESIGN.md §14 carries the full rationale):
//
//   - strict-reject: JAX-WS/Metro, CXF (plain and JBossWS-packaged)
//     and WCF validate the envelope namespace against the binding and
//     answer a VersionMismatch fault (it took a patched CXF to carry
//     Digikoppeling's hybrid WUS traffic); gSOAP's generated
//     deserializers hard-code the namespace check.
//   - lenient-accept: Axis 1.x predates 1.2 enforcement and matches
//     permissively; Axis2 is dual-stack and auto-detects the version
//     per message; PHP's ext/soap (Zend) consumes either.
//   - silent-coerce: the ASMX-era .NET clients (wsdl.exe C#/VB/
//     JScript) and suds resolve elements by local name, so foreign
//     version machinery parses as data instead of failing.
var versionStrictness = map[string]soap.Strictness{
	// Server models.
	"Metro":                 soap.StrictReject,
	"JBossWS CXF":           soap.StrictReject,
	"WCF .NET":              soap.StrictReject,
	"Apache Axis2 (server)": soap.LenientAccept,

	// Client models (Metro and JBossWS CXF share the entries above).
	"Apache Axis1":      soap.LenientAccept,
	"Apache Axis2":      soap.LenientAccept,
	"Apache CXF":        soap.StrictReject,
	".NET C#":           soap.SilentCoerce,
	".NET Visual Basic": soap.SilentCoerce,
	".NET JScript":      soap.SilentCoerce,
	"gSOAP":             soap.StrictReject,
	"Zend Framework":    soap.LenientAccept,
	"suds":              soap.SilentCoerce,
}

// VersionStrictness returns the declared version-coherence posture of
// one framework model by display name. Unknown names default to
// strict-reject: a stack we have not characterized is assumed to
// refuse what it does not understand rather than mishandle it.
func VersionStrictness(name string) soap.Strictness {
	if s, ok := versionStrictness[name]; ok {
		return s
	}
	return soap.StrictReject
}
