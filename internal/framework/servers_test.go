package framework

import (
	"errors"
	"strings"
	"testing"

	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
	"wsinterop/internal/xsd"
)

func mustPublish(t *testing.T, s ServerFramework, className string) *wsdl.Definitions {
	t.Helper()
	cat := typesys.JavaCatalog()
	if s.Language() == typesys.CSharp {
		cat = typesys.CSharpCatalog()
	}
	cls, ok := cat.Lookup(className)
	if !ok {
		t.Fatalf("class %q not in catalog", className)
	}
	doc, err := s.Publish(services.ForClass(cls))
	if err != nil {
		t.Fatalf("publish %s on %s: %v", className, s.Name(), err)
	}
	return doc
}

func TestServerIdentities(t *testing.T) {
	servers := Servers()
	if len(servers) != 3 {
		t.Fatalf("expected 3 servers, got %d", len(servers))
	}
	wantNames := []string{"Metro", "JBossWS CXF", "WCF .NET"}
	wantLangs := []typesys.Language{typesys.Java, typesys.Java, typesys.CSharp}
	for i, s := range servers {
		if s.Name() != wantNames[i] {
			t.Errorf("server %d name = %q, want %q", i, s.Name(), wantNames[i])
		}
		if s.Language() != wantLangs[i] {
			t.Errorf("server %d language = %v, want %v", i, s.Language(), wantLangs[i])
		}
		if s.Server() == "" {
			t.Errorf("server %d has no hosting application server", i)
		}
	}
}

func TestPublishCountsMatchPaper(t *testing.T) {
	tests := []struct {
		server ServerFramework
		want   int
	}{
		{NewMetroServer(), 2489},
		{NewJBossWSServer(), 2248},
		{NewWCFServer(), 2502},
	}
	for _, tt := range tests {
		t.Run(tt.server.Name(), func(t *testing.T) {
			cat := typesys.JavaCatalog()
			if tt.server.Language() == typesys.CSharp {
				cat = typesys.CSharpCatalog()
			}
			published := 0
			for i := range cat.Classes {
				if _, err := tt.server.Publish(services.ForClass(&cat.Classes[i])); err == nil {
					published++
				} else {
					var nd *NotDeployableError
					if !errors.As(err, &nd) {
						t.Fatalf("unexpected error type: %v", err)
					}
				}
			}
			if published != tt.want {
				t.Errorf("%s published %d services, want %d", tt.server.Name(), published, tt.want)
			}
		})
	}
}

func TestMetroRefusesAsyncHandles(t *testing.T) {
	metro := NewMetroServer()
	cls, _ := typesys.JavaCatalog().Lookup(typesys.JavaFuture)
	_, err := metro.Publish(services.ForClass(cls))
	var nd *NotDeployableError
	if !errors.As(err, &nd) {
		t.Fatalf("expected NotDeployableError, got %v", err)
	}
	if !strings.Contains(nd.Reason, "refused") {
		t.Errorf("refusal reason %q should mention refusal", nd.Reason)
	}
}

func TestJBossWSPublishesZeroOperationWSDL(t *testing.T) {
	jboss := NewJBossWSServer()
	for _, name := range []string{typesys.JavaFuture, typesys.JavaResponse} {
		doc := mustPublish(t, jboss, name)
		if doc.OperationCount() != 0 {
			t.Errorf("%s: expected zero operations, got %d", name, doc.OperationCount())
		}
		if len(doc.Services) != 1 {
			t.Errorf("%s: service section missing", name)
		}
		rep := wsi.NewChecker().Check(doc)
		if !rep.Compliant() {
			t.Errorf("%s: zero-operation WSDL must pass the official profile, got %v", name, rep.Violations)
		}
		if len(rep.ExtendedFindings()) != 1 {
			t.Errorf("%s: extended check should flag it, got %v", name, rep.Violations)
		}
	}
	// Future's types section is empty; Response's is not.
	future := mustPublish(t, jboss, typesys.JavaFuture)
	if len(future.Types.Schemas) != 0 {
		t.Error("Future should publish an empty types section")
	}
	response := mustPublish(t, jboss, typesys.JavaResponse)
	if len(response.Types.Schemas) == 0 {
		t.Error("Response should publish a schema")
	}
}

func TestJavaEmittersSoapActionEmpty(t *testing.T) {
	for _, s := range []ServerFramework{NewMetroServer(), NewJBossWSServer()} {
		doc := mustPublish(t, s, typesys.JavaXMLGregorianCalendar)
		for _, b := range doc.Bindings {
			for _, op := range b.Operations {
				if op.SOAPAction != "" {
					t.Errorf("%s: soapAction = %q, want empty", s.Name(), op.SOAPAction)
				}
			}
		}
	}
}

func TestWCFSoapActionSet(t *testing.T) {
	doc := mustPublish(t, NewWCFServer(), typesys.CSharpSocketError)
	for _, b := range doc.Bindings {
		for _, op := range b.Operations {
			if op.SOAPAction == "" {
				t.Error("WCF must emit non-empty soapAction")
			}
		}
	}
}

func TestAddressingRefVariants(t *testing.T) {
	// Metro: no import at all. JBossWS: import without schemaLocation.
	metroDoc := mustPublish(t, NewMetroServer(), typesys.JavaW3CEndpointReference)
	if len(metroDoc.Types.Schemas[0].Imports) != 0 {
		t.Error("Metro variant must not declare an import")
	}
	jbossDoc := mustPublish(t, NewJBossWSServer(), typesys.JavaW3CEndpointReference)
	imports := jbossDoc.Types.Schemas[0].Imports
	if len(imports) != 1 || imports[0].SchemaLocation != "" {
		t.Errorf("JBossWS variant must declare a location-less import, got %+v", imports)
	}
	for name, doc := range map[string]*wsdl.Definitions{"Metro": metroDoc, "JBossWS": jbossDoc} {
		unresolved, err := doc.Types.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(unresolved) != 1 {
			t.Errorf("%s: expected 1 dangling reference, got %v", name, unresolved)
		}
	}
}

func TestVendorFacetVariants(t *testing.T) {
	metroDoc := mustPublish(t, NewMetroServer(), typesys.JavaSimpleDateFormat)
	jbossDoc := mustPublish(t, NewJBossWSServer(), typesys.JavaSimpleDateFormat)
	facetOf := func(d *wsdl.Definitions) string {
		for _, st := range d.Types.Schemas[0].SimpleTypes {
			for _, f := range st.Facets {
				if !xsd.IsStandardFacet(f.Name) {
					return f.Name
				}
			}
		}
		return ""
	}
	if got := facetOf(metroDoc); got != "jaxb-format" {
		t.Errorf("Metro facet = %q, want jaxb-format", got)
	}
	if got := facetOf(jbossDoc); got != "cxf-format" {
		t.Errorf("JBossWS facet = %q, want cxf-format", got)
	}
}

func TestWCFSchemaRefVariants(t *testing.T) {
	wcf := NewWCFServer()
	cat := typesys.CSharpCatalog()

	variants := []struct {
		hint  typesys.Hint
		check func(f *docFeatures) bool
		name  string
	}{
		{typesys.HintSchemaRefNested, func(f *docFeatures) bool { return f.schemaRefNested }, "nested"},
		{typesys.HintSchemaRefWithAny, func(f *docFeatures) bool { return f.schemaRefWithAny }, "with any"},
		{typesys.HintSchemaRefUnbounded, func(f *docFeatures) bool { return f.schemaRefUnbounded }, "unbounded"},
		{typesys.HintNillableRef, func(f *docFeatures) bool { return f.schemaRefNillable }, "nillable"},
		{typesys.HintOptionalRef, func(f *docFeatures) bool { return f.schemaRefOptional }, "optional"},
	}
	for _, v := range variants {
		classes := cat.WithHint(v.hint)
		if len(classes) == 0 {
			t.Fatalf("no classes with hint for %s", v.name)
		}
		doc := mustPublish(t, wcf, classes[0].Name)
		raw, err := wsdl.Marshal(doc)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		f, err := analyze(raw)
		if err != nil {
			t.Fatalf("analyze: %v", err)
		}
		if len(f.schemaRefs) == 0 {
			t.Errorf("%s: xs:schema reference lost", v.name)
		}
		if !v.check(f) {
			t.Errorf("%s: structural marker not detected after round trip", v.name)
		}
		if f.langAttrRefs == 0 {
			t.Errorf("%s: xml:lang attribute missing", v.name)
		}
	}
}

func TestWCFDoubleLang(t *testing.T) {
	cls := typesys.CSharpCatalog().WithHint(typesys.HintDoubleLang)[0]
	doc := mustPublish(t, NewWCFServer(), cls.Name)
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := analyze(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.langAttrRefs != 2 {
		t.Errorf("double-lang class has %d lang refs, want 2", f.langAttrRefs)
	}
}

func TestWCFDeepNesting(t *testing.T) {
	cls := typesys.CSharpCatalog().WithHint(typesys.HintDeepNesting)[0]
	doc := mustPublish(t, NewWCFServer(), cls.Name)
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := analyze(raw)
	if err != nil {
		t.Fatal(err)
	}
	if f.maxNesting <= jscriptMaxNesting {
		t.Errorf("deep-nesting class nests to %d, want > %d", f.maxNesting, jscriptMaxNesting)
	}
}

func TestWCFWildcardCompliantButDetected(t *testing.T) {
	doc := mustPublish(t, NewWCFServer(), typesys.CSharpDataTable)
	rep := wsi.NewChecker().Check(doc)
	if !rep.Compliant() {
		t.Errorf("DataTable WSDL should be WS-I compliant, got %v", rep.Violations)
	}
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	f, err := analyze(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !f.wildcardOnly {
		t.Error("wildcard content model not detected")
	}
	if len(f.caseCollidingTypes) == 0 {
		t.Error("case-colliding companion type not detected")
	}
}

func TestWSIFlagCountsPerServer(t *testing.T) {
	if testing.Short() {
		t.Skip("full corpus scan skipped in -short mode")
	}
	checker := wsi.NewChecker()
	tests := []struct {
		server ServerFramework
		want   int
	}{
		{NewMetroServer(), 2},
		{NewJBossWSServer(), 4},
		{NewWCFServer(), 80},
	}
	for _, tt := range tests {
		t.Run(tt.server.Name(), func(t *testing.T) {
			cat := typesys.JavaCatalog()
			if tt.server.Language() == typesys.CSharp {
				cat = typesys.CSharpCatalog()
			}
			flagged := 0
			for i := range cat.Classes {
				doc, err := tt.server.Publish(services.ForClass(&cat.Classes[i]))
				if err != nil {
					continue
				}
				if len(checker.Check(doc).Violations) > 0 {
					flagged++
				}
			}
			if flagged != tt.want {
				t.Errorf("%s flagged %d services, want %d", tt.server.Name(), flagged, tt.want)
			}
		})
	}
}

func TestPublishedDocumentsValidate(t *testing.T) {
	// Structural integrity: every published document passes
	// wsdl.Validate and marshals/parses cleanly.
	for _, server := range Servers() {
		cat := typesys.JavaCatalog()
		if server.Language() == typesys.CSharp {
			cat = typesys.CSharpCatalog()
		}
		checked := 0
		for i := range cat.Classes {
			if checked >= 200 {
				break
			}
			doc, err := server.Publish(services.ForClass(&cat.Classes[i]))
			if err != nil {
				continue
			}
			checked++
			if errs := doc.Validate(); len(errs) != 0 {
				t.Fatalf("%s: %s: invalid document: %v", server.Name(), cat.Classes[i].Name, errs)
			}
			raw, err := wsdl.Marshal(doc)
			if err != nil {
				t.Fatalf("%s: %s: marshal: %v", server.Name(), cat.Classes[i].Name, err)
			}
			if _, err := wsdl.Unmarshal(raw); err != nil {
				t.Fatalf("%s: %s: reparse: %v", server.Name(), cat.Classes[i].Name, err)
			}
		}
	}
}

func TestNotDeployableErrorMessage(t *testing.T) {
	e := &NotDeployableError{Framework: "Metro", Class: "x.Y", Reason: "because"}
	for _, want := range []string{"Metro", "x.Y", "because"} {
		if !strings.Contains(e.Error(), want) {
			t.Errorf("error %q missing %q", e.Error(), want)
		}
	}
}
