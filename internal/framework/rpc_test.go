package framework

import (
	"testing"

	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

// mustPublishStyled publishes a class on a server created with
// options.
func mustPublishStyled(t *testing.T, mk func(...ServerOption) ServerFramework,
	className string, opts ...ServerOption) *wsdl.Definitions {
	t.Helper()
	s := mk(opts...)
	return mustPublish(t, s, className)
}

func TestRPCEmissionShape(t *testing.T) {
	doc := mustPublishStyled(t, NewMetroServer, typesys.JavaXMLGregorianCalendar,
		WithBindingStyle(wsdl.StyleRPC))
	if doc.Bindings[0].Style != wsdl.StyleRPC {
		t.Fatalf("style = %q", doc.Bindings[0].Style)
	}
	if ns := doc.Bindings[0].Operations[0].BodyNamespace; ns == "" {
		t.Error("rpc binding must declare the soapbind:body namespace (R2717)")
	}
	for _, m := range doc.Messages {
		for _, p := range m.Parts {
			if !p.Element.IsZero() {
				t.Errorf("rpc part %q references an element", p.Name)
			}
			if p.Type.IsZero() {
				t.Errorf("rpc part %q lacks a type reference", p.Name)
			}
		}
	}
	// No wrapper elements in the schema under rpc.
	if n := len(doc.Types.Schemas[0].Elements); n != 0 {
		t.Errorf("rpc schema declares %d global elements, want 0", n)
	}
}

func TestRPCDocumentsAreCompliant(t *testing.T) {
	for _, mk := range []func(...ServerOption) ServerFramework{NewMetroServer, NewJBossWSServer} {
		doc := mustPublishStyled(t, mk, typesys.JavaXMLGregorianCalendar,
			WithBindingStyle(wsdl.StyleRPC))
		rep := wsi.NewChecker().Check(doc)
		if len(rep.Violations) != 0 {
			t.Errorf("%s rpc document has findings: %v", doc.Name, rep.Violations)
		}
	}
	doc := mustPublishStyled(t, NewWCFServer, typesys.CSharpSocketError,
		WithBindingStyle(wsdl.StyleRPC))
	if rep := wsi.NewChecker().Check(doc); len(rep.Violations) != 0 {
		t.Errorf("WCF rpc document has findings: %v", rep.Violations)
	}
}

func TestRPCClientsMatchDocumentBehaviour(t *testing.T) {
	// The error picture is class-driven: each narrative service must
	// behave identically whichever binding style the server emits.
	cases := []struct {
		mk    func(...ServerOption) ServerFramework
		class string
	}{
		{NewMetroServer, typesys.JavaW3CEndpointReference},
		{NewMetroServer, typesys.JavaSimpleDateFormat},
		{NewMetroServer, typesys.JavaXMLGregorianCalendar},
		{NewMetroServer, typesys.JavaVBCollisionClass},
		{NewWCFServer, typesys.CSharpSocketError},
		{NewWCFServer, typesys.CSharpDataTable},
	}
	for _, tc := range cases {
		docStyle := mustPublishStyled(t, tc.mk, tc.class)
		rpcStyle := mustPublishStyled(t, tc.mk, tc.class, WithBindingStyle(wsdl.StyleRPC))
		rawDoc, err := wsdl.Marshal(docStyle)
		if err != nil {
			t.Fatal(err)
		}
		rawRPC, err := wsdl.Marshal(rpcStyle)
		if err != nil {
			t.Fatal(err)
		}
		for _, client := range Clients() {
			a := runClient(client, rawDoc)
			b := runClient(client, rawRPC)
			if a.genErr != b.genErr || a.compErr != b.compErr {
				t.Errorf("%s on %s: document %+v vs rpc %+v", client.Name(), tc.class, a, b)
			}
		}
	}
}

func TestRPCBodyNamespaceRoundTrip(t *testing.T) {
	doc := mustPublishStyled(t, NewWCFServer, typesys.CSharpDataSet,
		WithBindingStyle(wsdl.StyleRPC))
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := wsdl.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	want := doc.Bindings[0].Operations[0].BodyNamespace
	if got.Bindings[0].Operations[0].BodyNamespace != want {
		t.Errorf("BodyNamespace lost in round trip: %q", got.Bindings[0].Operations[0].BodyNamespace)
	}
	if got.Bindings[0].Style != wsdl.StyleRPC {
		t.Errorf("style lost in round trip: %q", got.Bindings[0].Style)
	}
}

func TestRPCMultiParamVariant(t *testing.T) {
	cls, _ := typesys.JavaCatalog().Lookup(typesys.JavaXMLGregorianCalendar)
	def := services.ForClassVariant(cls, services.VariantMultiParam)
	s := NewMetroServer(WithBindingStyle(wsdl.StyleRPC))
	doc, err := s.Publish(def)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(doc.Messages[0].Parts); n != 3 {
		t.Errorf("rpc multi-param request has %d parts, want 3", n)
	}
}
