package framework

import (
	"strconv"
	"strings"
	"sync"

	"wsinterop/internal/artifact"
	"wsinterop/internal/xsd"
)

// unitArena owns the backing storage of one generated Unit: the unit
// value itself plus the class, field, method and parameter arrays its
// slices are carved from. Arenas recycle through a pool so the test
// hot path — one generated unit per (shape, client) — reaches a
// steady state with no per-unit allocation at all. A unit built on an
// arena carries the arena as its owner token; ReleaseUnit returns it
// to the pool once the caller is done with the unit.
type unitArena struct {
	unit    artifact.Unit
	classes []artifact.Class
	fields  []artifact.Field
	methods []artifact.Method
	params  []artifact.Param
}

var unitArenas = sync.Pool{New: func() any { return new(unitArena) }}

// grow reslices the arena arrays to zero length, growing their
// capacity to the given counts when a previous tenant's were smaller.
func (a *unitArena) grow(classes, fields, methods, params int) {
	if cap(a.classes) < classes {
		a.classes = make([]artifact.Class, 0, classes)
	}
	if cap(a.fields) < fields {
		a.fields = make([]artifact.Field, 0, fields)
	}
	if cap(a.methods) < methods {
		a.methods = make([]artifact.Method, 0, methods)
	}
	if cap(a.params) < params {
		a.params = make([]artifact.Param, 0, params)
	}
	a.classes, a.fields = a.classes[:0], a.fields[:0]
	a.methods, a.params = a.methods[:0], a.params[:0]
}

// ReleaseUnit returns an arena-built unit's backing storage to the
// pool. The caller must not touch the unit afterwards. Units without
// an owner token (hand-built in tests) are ignored.
func ReleaseUnit(u *artifact.Unit) {
	if u == nil {
		return
	}
	if a, ok := u.Owner().(*unitArena); ok {
		unitArenas.Put(a)
	}
}

// unitBuilder configures the shared artifact generation machinery
// with the code-generation style — and bugs — of one client tool.
// Every quirk is expressed as a structural transformation of the
// generated code; the artifact compiler then finds (or does not find)
// the resulting defects.
type unitBuilder struct {
	lang     artifact.TargetLanguage
	stemSfx  string // port class suffix, e.g. "Stub", "Proxy"
	unitName string

	// rawCollections marks every generated class as using raw
	// collections (Axis1/Axis2 → javac unchecked-operations warnings).
	rawCollections bool
	// lowerLocals makes deserializer bodies declare one local per
	// element named "local_" + lower-cased element name (Axis2). Two
	// elements differing only by case collapse into a duplicate local.
	lowerLocals bool
	// throwableWrapperBug makes fault-wrapper accessors reference a
	// member named after the *type* instead of the element (Axis1);
	// the member does not exist, so compilation fails.
	throwableWrapperBug bool
	// accessorCalls emits per-field accessor functions plus call sites
	// (the JScript artifact style).
	accessorCalls bool
	// omitReservedAccessors drops accessor definitions for fields
	// whose names are reserved words — while keeping the call sites
	// (the JScript generator bug behind 100 compile errors).
	omitReservedAccessors bool
	// flattenParams names the port method's parameter after the first
	// property of the parameter bean instead of a fixed name (the
	// Visual Basic style behind the method/parameter collisions).
	flattenParams bool
	// renameCaseCollisions renames members that collide
	// case-insensitively by appending a numeric suffix, the way
	// wsdl.exe does for VB.
	renameCaseCollisions bool
}

// jscriptReservedWords is the identifier set the JScript generator
// mishandles.
var jscriptReservedWords = map[string]bool{
	"function": true, "var": true, "in": true, "with": true,
	"typeof": true, "instanceof": true, "delete": true,
}

// build generates the artifact unit for an analyzed document. The
// unit and every slice it carries are carved out of one pooled arena;
// the caller hands the storage back with ReleaseUnit when done.
func (b unitBuilder) build(f *docFeatures) *artifact.Unit {
	// The throwable set only matters when the Axis1 wrapper bug is on;
	// every other generator never reads it.
	var throwables map[string]bool
	if b.throwableWrapperBug && len(f.throwableTypes) > 0 {
		throwables = make(map[string]bool, len(f.throwableTypes))
		for _, t := range f.throwableTypes {
			throwables[t] = true
		}
	}

	// Simple types map to scalars in every generator; references to
	// them must not surface as class references in the artifacts.
	var scalars map[string]bool
	beans, totalFields := 0, 0
	if f.def.Types != nil {
		nScalars := 0
		for _, sch := range f.def.Types.Schemas {
			nScalars += len(sch.SimpleTypes)
			for i := range sch.ComplexTypes {
				if sch.ComplexTypes[i].Name != "" {
					beans++
					totalFields += len(sch.ComplexTypes[i].Sequence)
				}
			}
		}
		if nScalars > 0 {
			scalars = make(map[string]bool, nScalars)
			for _, sch := range f.def.Types.Schemas {
				for i := range sch.SimpleTypes {
					scalars[sch.SimpleTypes[i].Name] = true
				}
			}
		}
	}
	nOps := 0
	for _, pt := range f.def.PortTypes {
		nOps += len(pt.Operations)
	}

	// Method capacity: the port's operations plus the per-quirk bean
	// methods — one deserializer per bean (Axis2), one accessor per
	// field and one marshaller per bean (JScript), one fault accessor
	// per bean (Axis1). Over-counting only costs arena slack.
	methodsCap := nOps
	if b.lowerLocals {
		methodsCap += beans
	}
	if b.accessorCalls {
		methodsCap += beans + totalFields
	}
	if b.throwableWrapperBug {
		methodsCap += beans
	}

	a := unitArenas.Get().(*unitArena)
	a.grow(1+beans, totalFields, methodsCap, nOps)
	u := &a.unit
	*u = artifact.Unit{Language: b.lang, Name: b.unitName}
	u.SetOwner(a)

	// Slot 0 is reserved for the port class (Unit.PortClass
	// convention); beans fill in behind it with no re-copy.
	a.classes = append(a.classes, artifact.Class{})
	if f.def.Types != nil {
		for _, sch := range f.def.Types.Schemas {
			for i := range sch.ComplexTypes {
				ct := &sch.ComplexTypes[i]
				if ct.Name == "" {
					continue
				}
				a.classes = append(a.classes, b.beanClass(ct, throwables[ct.Name], scalars, &a.fields, &a.methods))
			}
		}
	}
	u.Classes = a.classes[:len(a.classes):len(a.classes)]

	port := &u.Classes[0]
	port.Name = b.unitName + b.stemSfx
	port.NestingDepth = f.maxNesting
	port.UsesRawCollections = b.rawCollections
	pstart := len(a.methods)
	for _, pt := range f.def.PortTypes {
		for _, op := range pt.Operations {
			a.methods = append(a.methods, b.portMethod(f, op.Name, &a.params))
		}
	}
	if n := len(a.methods) - pstart; n > 0 {
		port.Methods = a.methods[pstart : pstart+n : pstart+n]
	}
	return u
}

// portMethod generates one invocable proxy method, carving its
// parameter list from the arena's parameter array.
func (b unitBuilder) portMethod(f *docFeatures, opName string, params *[]artifact.Param) artifact.Method {
	paramType, firstField := operationParameter(f, opName)
	paramName := "input"
	if b.flattenParams && firstField != "" {
		paramName = firstField
	}
	pstart := len(*params)
	*params = append(*params, artifact.Param{Name: paramName, Type: paramType})
	m := artifact.Method{
		Name:   opName,
		Params: (*params)[pstart : pstart+1 : pstart+1],
		Return: paramType,
	}
	return m
}

// beanClass generates one data class, applying the configured
// code-generation style. scalars lists simple-type names that map to
// built-in scalars rather than generated classes.
func (b unitBuilder) beanClass(ct *xsd.ComplexType, throwable bool, scalars map[string]bool, farena *[]artifact.Field, marena *[]artifact.Method) artifact.Class {
	cls := artifact.Class{
		Name:               ct.Name,
		UsesRawCollections: b.rawCollections,
	}

	// This class's fields and methods are runs carved out of the
	// unit-wide arenas; build sized them up front, so the appends stay
	// in place and each carve is a cap-limited subslice, never an
	// allocation.
	fstart := len(*farena)

	// The case-collision map is only consulted by the wsdl.exe rename
	// quirk; skip the map (and the per-field ToLower) otherwise.
	var seen map[string]bool
	if b.renameCaseCollisions {
		seen = make(map[string]bool, len(ct.Sequence))
	}
	for i := range ct.Sequence {
		el := &ct.Sequence[i]
		name := el.Name
		if name == "" {
			// Reference particle: the tools that reach this point map
			// it to an opaque payload member.
			name = "payload" + lowerFirst(el.Ref.Local)
		}
		if b.renameCaseCollisions {
			base := name
			for n := 2; seen[strings.ToLower(name)]; n++ {
				name = base + "_" + strconv.Itoa(n)
			}
			seen[strings.ToLower(name)] = true
		}

		typeName := ""
		if el.Inline == nil && !el.Type.IsZero() && !xsd.IsBuiltin(el.Type) && !scalars[el.Type.Local] {
			typeName = el.Type.Local
		}
		*farena = append(*farena, artifact.Field{Name: name, Type: typeName})
	}
	fields := (*farena)[fstart:len(*farena):len(*farena)]
	cls.Fields = fields
	mstart := len(*marena)

	if b.lowerLocals && len(fields) > 0 {
		locals := make([]string, 0, len(fields))
		for i := range fields {
			locals = append(locals, "local_"+strings.ToLower(fields[i].Name))
		}
		*marena = append(*marena, artifact.Method{
			Name:   "parse" + ct.Name,
			Locals: locals,
		})
	}

	if b.accessorCalls {
		calls := make([]string, 0, len(fields))
		for i := range fields {
			fn := fields[i].Name
			accessor := "get_" + fn
			calls = append(calls, accessor)
			if b.omitReservedAccessors && jscriptReservedWords[fn] {
				continue // the bug: call emitted, definition skipped
			}
			*marena = append(*marena, artifact.Method{
				Name:      accessor,
				FieldRefs: []string{fn},
			})
		}
		*marena = append(*marena, artifact.Method{
			Name:  "marshal" + ct.Name,
			Calls: calls,
		})
	}

	if throwable && b.throwableWrapperBug {
		// Axis1 names the wrapper attribute after the element but the
		// generated accessor references a member named after the type:
		// an unresolved member reference.
		*marena = append(*marena, artifact.Method{
			Name:      "getFaultInfo",
			FieldRefs: []string{lowerFirst(ct.Name)},
		})
	}
	if n := len(*marena) - mstart; n > 0 {
		cls.Methods = (*marena)[mstart : mstart+n : mstart+n]
	}
	return cls
}

// operationParameter resolves the bean type name and its first
// property for the wrapped input element of an operation.
func operationParameter(f *docFeatures, opName string) (typeName, firstField string) {
	if f.def.Types == nil {
		return "", ""
	}
	for _, pt := range f.def.PortTypes {
		for _, op := range pt.Operations {
			if op.Name != opName || op.Input.Message == "" {
				continue
			}
			m := f.def.Message(op.Input.Message)
			if m == nil || len(m.Parts) == 0 {
				continue
			}
			// rpc-literal: the part references the type directly.
			if m.Parts[0].Element.IsZero() && !m.Parts[0].Type.IsZero() {
				q := m.Parts[0].Type
				if xsd.IsBuiltin(q) {
					return "", ""
				}
				if ct, ok := f.def.Types.ComplexType(q); ok {
					if len(ct.Sequence) > 0 {
						return ct.Name, ct.Sequence[0].Name
					}
					return ct.Name, ""
				}
				return q.Local, ""
			}
			el, ok := f.def.Types.Element(m.Parts[0].Element)
			if !ok || el.Inline == nil || len(el.Inline.Sequence) == 0 {
				continue
			}
			wrapped := el.Inline.Sequence[0]
			// Descend through anonymous envelope nesting (the
			// complexity-variant wrappers) to the first typed leaf.
			for wrapped.Type.IsZero() && wrapped.Inline != nil && len(wrapped.Inline.Sequence) > 0 {
				wrapped = wrapped.Inline.Sequence[0]
			}
			if wrapped.Type.IsZero() || xsd.IsBuiltin(wrapped.Type) {
				return "", ""
			}
			ct, ok := f.def.Types.ComplexType(wrapped.Type)
			if !ok {
				return wrapped.Type.Local, ""
			}
			if len(ct.Sequence) > 0 {
				return ct.Name, ct.Sequence[0].Name
			}
			return ct.Name, ""
		}
	}
	return "", ""
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}
