package framework

import (
	"strconv"
	"strings"

	"wsinterop/internal/artifact"
	"wsinterop/internal/xsd"
)

// unitBuilder configures the shared artifact generation machinery
// with the code-generation style — and bugs — of one client tool.
// Every quirk is expressed as a structural transformation of the
// generated code; the artifact compiler then finds (or does not find)
// the resulting defects.
type unitBuilder struct {
	lang     artifact.TargetLanguage
	stemSfx  string // port class suffix, e.g. "Stub", "Proxy"
	unitName string

	// rawCollections marks every generated class as using raw
	// collections (Axis1/Axis2 → javac unchecked-operations warnings).
	rawCollections bool
	// lowerLocals makes deserializer bodies declare one local per
	// element named "local_" + lower-cased element name (Axis2). Two
	// elements differing only by case collapse into a duplicate local.
	lowerLocals bool
	// throwableWrapperBug makes fault-wrapper accessors reference a
	// member named after the *type* instead of the element (Axis1);
	// the member does not exist, so compilation fails.
	throwableWrapperBug bool
	// accessorCalls emits per-field accessor functions plus call sites
	// (the JScript artifact style).
	accessorCalls bool
	// omitReservedAccessors drops accessor definitions for fields
	// whose names are reserved words — while keeping the call sites
	// (the JScript generator bug behind 100 compile errors).
	omitReservedAccessors bool
	// flattenParams names the port method's parameter after the first
	// property of the parameter bean instead of a fixed name (the
	// Visual Basic style behind the method/parameter collisions).
	flattenParams bool
	// renameCaseCollisions renames members that collide
	// case-insensitively by appending a numeric suffix, the way
	// wsdl.exe does for VB.
	renameCaseCollisions bool
}

// jscriptReservedWords is the identifier set the JScript generator
// mishandles.
var jscriptReservedWords = map[string]bool{
	"function": true, "var": true, "in": true, "with": true,
	"typeof": true, "instanceof": true, "delete": true,
}

// build generates the artifact unit for an analyzed document.
func (b unitBuilder) build(f *docFeatures) *artifact.Unit {
	u := &artifact.Unit{Language: b.lang, Name: b.unitName}

	throwables := make(map[string]bool, len(f.throwableTypes))
	for _, t := range f.throwableTypes {
		throwables[t] = true
	}

	// Simple types map to scalars in every generator; references to
	// them must not surface as class references in the artifacts.
	scalars := make(map[string]bool)
	if f.def.Types != nil {
		for _, sch := range f.def.Types.Schemas {
			for i := range sch.SimpleTypes {
				scalars[sch.SimpleTypes[i].Name] = true
			}
		}
	}

	// Bean classes from every named complex type.
	if f.def.Types != nil {
		for _, sch := range f.def.Types.Schemas {
			for i := range sch.ComplexTypes {
				ct := &sch.ComplexTypes[i]
				if ct.Name == "" {
					continue
				}
				u.Classes = append(u.Classes, b.beanClass(ct, throwables[ct.Name], scalars))
			}
		}
	}

	// The port class goes first (Unit.PortClass convention).
	port := artifact.Class{
		Name:               b.unitName + b.stemSfx,
		NestingDepth:       f.maxNesting,
		UsesRawCollections: b.rawCollections,
	}
	for _, pt := range f.def.PortTypes {
		for _, op := range pt.Operations {
			port.Methods = append(port.Methods, b.portMethod(f, op.Name))
		}
	}
	u.Classes = append([]artifact.Class{port}, u.Classes...)
	return u
}

// portMethod generates one invocable proxy method.
func (b unitBuilder) portMethod(f *docFeatures, opName string) artifact.Method {
	paramType, firstField := operationParameter(f, opName)
	paramName := "input"
	if b.flattenParams && firstField != "" {
		paramName = firstField
	}
	m := artifact.Method{
		Name:   opName,
		Params: []artifact.Param{{Name: paramName, Type: paramType}},
		Return: paramType,
	}
	return m
}

// beanClass generates one data class, applying the configured
// code-generation style. scalars lists simple-type names that map to
// built-in scalars rather than generated classes.
func (b unitBuilder) beanClass(ct *xsd.ComplexType, throwable bool, scalars map[string]bool) artifact.Class {
	cls := artifact.Class{
		Name:               ct.Name,
		UsesRawCollections: b.rawCollections,
	}

	seen := make(map[string]bool, len(ct.Sequence))
	var fieldNames []string
	for i := range ct.Sequence {
		el := &ct.Sequence[i]
		name := el.Name
		if name == "" {
			// Reference particle: the tools that reach this point map
			// it to an opaque payload member.
			name = "payload" + lowerFirst(el.Ref.Local)
		}
		if b.renameCaseCollisions {
			base := name
			for n := 2; seen[strings.ToLower(name)]; n++ {
				name = base + "_" + strconv.Itoa(n)
			}
		}
		seen[strings.ToLower(name)] = true

		typeName := ""
		if el.Inline == nil && !el.Type.IsZero() && !xsd.IsBuiltin(el.Type) && !scalars[el.Type.Local] {
			typeName = el.Type.Local
		}
		cls.Fields = append(cls.Fields, artifact.Field{Name: name, Type: typeName})
		fieldNames = append(fieldNames, name)
	}

	if b.lowerLocals && len(fieldNames) > 0 {
		locals := make([]string, 0, len(fieldNames))
		for _, fn := range fieldNames {
			locals = append(locals, "local_"+strings.ToLower(fn))
		}
		cls.Methods = append(cls.Methods, artifact.Method{
			Name:   "parse" + ct.Name,
			Locals: locals,
		})
	}

	if b.accessorCalls {
		var calls []string
		for _, fn := range fieldNames {
			accessor := "get_" + fn
			calls = append(calls, accessor)
			if b.omitReservedAccessors && jscriptReservedWords[fn] {
				continue // the bug: call emitted, definition skipped
			}
			cls.Methods = append(cls.Methods, artifact.Method{
				Name:      accessor,
				FieldRefs: []string{fn},
			})
		}
		cls.Methods = append(cls.Methods, artifact.Method{
			Name:  "marshal" + ct.Name,
			Calls: calls,
		})
	}

	if throwable && b.throwableWrapperBug {
		// Axis1 names the wrapper attribute after the element but the
		// generated accessor references a member named after the type:
		// an unresolved member reference.
		cls.Methods = append(cls.Methods, artifact.Method{
			Name:      "getFaultInfo",
			FieldRefs: []string{lowerFirst(ct.Name)},
		})
	}
	return cls
}

// operationParameter resolves the bean type name and its first
// property for the wrapped input element of an operation.
func operationParameter(f *docFeatures, opName string) (typeName, firstField string) {
	if f.def.Types == nil {
		return "", ""
	}
	for _, pt := range f.def.PortTypes {
		for _, op := range pt.Operations {
			if op.Name != opName || op.Input.Message == "" {
				continue
			}
			m := f.def.Message(op.Input.Message)
			if m == nil || len(m.Parts) == 0 {
				continue
			}
			// rpc-literal: the part references the type directly.
			if m.Parts[0].Element.IsZero() && !m.Parts[0].Type.IsZero() {
				q := m.Parts[0].Type
				if xsd.IsBuiltin(q) {
					return "", ""
				}
				if ct, ok := f.def.Types.ComplexType(q); ok {
					if len(ct.Sequence) > 0 {
						return ct.Name, ct.Sequence[0].Name
					}
					return ct.Name, ""
				}
				return q.Local, ""
			}
			el, ok := f.def.Types.Element(m.Parts[0].Element)
			if !ok || el.Inline == nil || len(el.Inline.Sequence) == 0 {
				continue
			}
			wrapped := el.Inline.Sequence[0]
			// Descend through anonymous envelope nesting (the
			// complexity-variant wrappers) to the first typed leaf.
			for wrapped.Type.IsZero() && wrapped.Inline != nil && len(wrapped.Inline.Sequence) > 0 {
				wrapped = wrapped.Inline.Sequence[0]
			}
			if wrapped.Type.IsZero() || xsd.IsBuiltin(wrapped.Type) {
				return "", ""
			}
			ct, ok := f.def.Types.ComplexType(wrapped.Type)
			if !ok {
				return wrapped.Type.Local, ""
			}
			if len(ct.Sequence) > 0 {
				return ct.Name, ct.Sequence[0].Name
			}
			return ct.Name, ""
		}
	}
	return "", ""
}

func lowerFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToLower(s[:1]) + s[1:]
}
