package framework

import (
	"wsinterop/internal/artifact"
)

// This file implements the remaining three client subsystems: gSOAP
// (C++), Zend Framework (PHP) and suds (Python).

// ---------------------------------------------------------------
// gSOAP 2.8.16 — wsdl2h + soapcpp2
// ---------------------------------------------------------------

// gsoapClient models the two-stage gSOAP toolchain. The study found
// the two tools inconsistent with each other: wsdl2h accepts
// constructs that soapcpp2 then rejects. The modelled failure set is
// structural: the "jaxb-format" vendor facet variant, descriptions
// with no operations *and* an empty types section, and xs:schema
// references nested inside inline types. Everything the toolchain
// does emit compiles cleanly — the paper highlights that gSOAP
// artifacts never fail compilation.
type gsoapClient struct{}

var _ ClientFramework = (*gsoapClient)(nil)

// NewGSOAPClient creates the gSOAP toolchain model.
func NewGSOAPClient() ClientFramework { return &gsoapClient{} }

// Name implements ClientFramework.
func (c *gsoapClient) Name() string { return "gSOAP" }

// Tool implements ClientFramework.
func (c *gsoapClient) Tool() string { return "wsdl2h + soapcpp2" }

// ArtifactLanguage implements ClientFramework.
func (c *gsoapClient) ArtifactLanguage() artifact.TargetLanguage { return artifact.LangCPP }

// Generate implements ClientFramework.
func (c *gsoapClient) Generate(doc []byte) GenerationResult {
	f, err := analyze(doc)
	if err != nil {
		return parseFailure(err)
	}
	return c.generate(f)
}

// GenerateAnalyzed implements ClientFramework.
func (c *gsoapClient) GenerateAnalyzed(a *Analysis) GenerationResult {
	return c.generate(a.features)
}

func (c *gsoapClient) generate(f *docFeatures) GenerationResult {
	var issues []Issue
	if f.vendorFacet == "jaxb-format" {
		// wsdl2h maps the facet to a typedef that soapcpp2 rejects.
		issues = append(issues, errIssue(CodeToolInconsistent,
			"soapcpp2 rejects typedef emitted by wsdl2h for facet %q", f.vendorFacet))
	}
	if f.zeroOperations && f.emptyTypes {
		issues = append(issues, errIssue(CodeNoOperations,
			"wsdl2h produced an empty header: no operations and no types"))
	}
	if f.schemaRefNested {
		issues = append(issues, errIssue(CodeSchemaRef,
			"wsdl2h cannot resolve xs:schema reference inside an inline type"))
	}
	if len(issues) > 0 {
		return GenerationResult{Issues: issues}
	}
	b := unitBuilder{lang: artifact.LangCPP, stemSfx: "SoapProxy", unitName: unitNameFor(f)}
	return GenerationResult{Unit: b.build(f)}
}

// Verify implements ClientFramework: g++ semantics, case-sensitive.
var cppCompiler = artifact.NewCompiler(artifact.LangCPP)

func (c *gsoapClient) Verify(u *artifact.Unit) []artifact.Diagnostic {
	return cppCompiler.Compile(u)
}

// ---------------------------------------------------------------
// Zend Framework 1.9 — Zend_Soap_Client (PHP)
// ---------------------------------------------------------------

// zendClient models the PHP dynamic client. It never fails outright:
// problematic constructs surface as notices during client
// construction. The notice set is structural: zero-operation
// documents (a client object without methods), imports without
// schemaLocation together with dangling references or vendor facets
// (the CXF emission variants), and nillable xs:schema references.
// Dangling references in documents without any import are absorbed
// into an "uncommon data structure" in the generated client — the
// paper notes this silent behaviour for the GlassFish services.
type zendClient struct{}

var _ ClientFramework = (*zendClient)(nil)

// NewZendClient creates the Zend_Soap_Client model.
func NewZendClient() ClientFramework { return &zendClient{} }

// Name implements ClientFramework.
func (c *zendClient) Name() string { return "Zend Framework" }

// Tool implements ClientFramework.
func (c *zendClient) Tool() string { return "Zend_Soap_Client" }

// ArtifactLanguage implements ClientFramework.
func (c *zendClient) ArtifactLanguage() artifact.TargetLanguage { return artifact.LangPHP }

// Generate implements ClientFramework.
func (c *zendClient) Generate(doc []byte) GenerationResult {
	f, err := analyze(doc)
	if err != nil {
		return parseFailure(err)
	}
	return c.generate(f)
}

// GenerateAnalyzed implements ClientFramework.
func (c *zendClient) GenerateAnalyzed(a *Analysis) GenerationResult {
	return c.generate(a.features)
}

func (c *zendClient) generate(f *docFeatures) GenerationResult {
	var issues []Issue
	if f.zeroOperations {
		issues = append(issues, warn(CodeNoMethods,
			"client object generated without invocable methods"))
	}
	if f.importWithoutLocation && len(f.foreignRefs) > 0 {
		issues = append(issues, warn(CodeUnresolvableRef,
			"schema import without location leaves %s unresolved", f.foreignRefs[0]))
	}
	if f.importWithoutLocation && f.vendorFacet != "" {
		issues = append(issues, warn(CodeVendorFacet,
			"unknown facet %q mapped to string", f.vendorFacet))
	}
	if f.vendorFacet == "cxf-format" && !f.importWithoutLocation {
		issues = append(issues, warn(CodeVendorFacet,
			"unknown facet %q mapped to string", f.vendorFacet))
	}
	if f.schemaRefNillable {
		issues = append(issues, warn(CodeOddStructure,
			"nillable xs:schema reference mapped to an untyped member"))
	}
	b := unitBuilder{lang: artifact.LangPHP, stemSfx: "SoapClient", unitName: unitNameFor(f)}
	return GenerationResult{Unit: b.build(f), Issues: issues}
}

// Verify implements ClientFramework: dynamic instantiation check.
func (c *zendClient) Verify(u *artifact.Unit) []artifact.Diagnostic {
	return artifact.Instantiate(u)
}

// ---------------------------------------------------------------
// suds 0.4 — Python
// ---------------------------------------------------------------

// sudsClient models the Python dynamic client. It fails on dangling
// references when the document declares no import for the namespace
// (the Metro and WCF emission variants) and on unbounded xs:schema
// references; it warns on zero-operation documents, on the
// "cxf-format" vendor facet, and on optional xs:schema references.
type sudsClient struct{}

var _ ClientFramework = (*sudsClient)(nil)

// NewSudsClient creates the suds model.
func NewSudsClient() ClientFramework { return &sudsClient{} }

// Name implements ClientFramework.
func (c *sudsClient) Name() string { return "suds" }

// Tool implements ClientFramework.
func (c *sudsClient) Tool() string { return "suds Python client" }

// ArtifactLanguage implements ClientFramework.
func (c *sudsClient) ArtifactLanguage() artifact.TargetLanguage { return artifact.LangPython }

// Generate implements ClientFramework.
func (c *sudsClient) Generate(doc []byte) GenerationResult {
	f, err := analyze(doc)
	if err != nil {
		return parseFailure(err)
	}
	return c.generate(f)
}

// GenerateAnalyzed implements ClientFramework.
func (c *sudsClient) GenerateAnalyzed(a *Analysis) GenerationResult {
	return c.generate(a.features)
}

func (c *sudsClient) generate(f *docFeatures) GenerationResult {
	var issues []Issue
	if len(f.foreignRefs) > 0 && !f.importWithoutLocation {
		issues = append(issues, errIssue(CodeUnresolvableRef,
			"suds.TypeNotFound: %s", f.foreignRefs[0]))
	}
	if f.schemaRefUnbounded {
		issues = append(issues, errIssue(CodeSchemaRef,
			"suds.TypeNotFound: unbounded reference to xs:schema"))
	}
	if f.zeroOperations {
		issues = append(issues, warn(CodeNoMethods,
			"client object generated without invocable methods"))
	}
	if f.vendorFacet == "cxf-format" {
		issues = append(issues, warn(CodeVendorFacet,
			"unknown facet %q ignored", f.vendorFacet))
	}
	if f.schemaRefOptional {
		issues = append(issues, warn(CodeOddStructure,
			"optional xs:schema reference mapped to an untyped member"))
	}
	for _, i := range issues {
		if i.Severity >= artifact.SeverityError {
			return GenerationResult{Issues: issues}
		}
	}
	b := unitBuilder{lang: artifact.LangPython, stemSfx: "Client", unitName: unitNameFor(f)}
	return GenerationResult{Unit: b.build(f), Issues: issues}
}

// Verify implements ClientFramework: dynamic instantiation check.
func (c *sudsClient) Verify(u *artifact.Unit) []artifact.Diagnostic {
	return artifact.Instantiate(u)
}
