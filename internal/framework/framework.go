// Package framework implements behavioural models of the web service
// framework subsystems of the study: three server-side WSDL emitters
// (Oracle Metro 2.3, JBossWS CXF 4.2.3, WCF .NET 4.0) and eleven
// client-side artifact generators (Metro, Axis1 1.4, Axis2 1.6.2,
// Apache CXF 2.7.6, JBossWS, .NET wsdl.exe for C# / Visual Basic /
// JScript, gSOAP 2.8.16, Zend_Soap_Client and suds 0.4).
//
// Server models map native classes (internal/typesys) to WSDL 1.1
// documents with each framework's documented emission quirks. Client
// models consume serialized WSDL — they re-parse the XML exactly as
// the real tools do — and generate artifact code models
// (internal/artifact) whose defects, where the modelled tool had a
// code-generation bug, are then caught mechanically by the artifact
// compiler. Behaviour therefore follows from document structure;
// no model consults the identity of the peer framework.
package framework

import (
	"errors"
	"fmt"
	"strings"

	"wsinterop/internal/artifact"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// Issue is one tool-reported finding during service description
// generation or client artifact generation.
type Issue struct {
	Severity artifact.Severity
	// Code is a stable machine-readable identifier.
	Code string
	// Message is the tool's output line.
	Message string
}

// String renders the issue in tool-output style.
func (i Issue) String() string {
	return fmt.Sprintf("%s [%s]: %s", i.Severity, i.Code, i.Message)
}

// Issue codes reported by the framework models.
const (
	CodeNotDeployable    = "NOT_DEPLOYABLE"
	CodeDeployRefused    = "DEPLOY_REFUSED"
	CodeUnresolvableRef  = "UNRESOLVABLE_REF"
	CodeSchemaRef        = "SCHEMA_REF_UNSUPPORTED"
	CodeWildcard         = "WILDCARD_UNSUPPORTED"
	CodeVendorFacet      = "VENDOR_FACET"
	CodeNoOperations     = "NO_OPERATIONS"
	CodeToolInconsistent = "TOOL_INCONSISTENT"
	CodeEmptySoapAction  = "EMPTY_SOAP_ACTION"
	CodeDuplicateAttr    = "DUPLICATE_ATTRIBUTE"
	CodeOddStructure     = "ODD_STRUCTURE"
	CodeNoMethods        = "NO_METHODS"
	CodeParseFailure     = "PARSE_FAILURE"
)

// NotDeployableError reports that a server framework cannot map a
// class to a service interface, so no WSDL is published. The study's
// service-description step filtered 14 785 of 22 024 services this
// way.
type NotDeployableError struct {
	Framework string
	Class     string
	Reason    string
}

// Error implements the error interface.
func (e *NotDeployableError) Error() string {
	return fmt.Sprintf("%s: class %s not deployable: %s", e.Framework, e.Class, e.Reason)
}

// ErrRefused marks the deliberate deployment refusal (Metro refusing
// the async-handle classes), as opposed to an inability to bind.
var ErrRefused = errors.New("deployment refused by server")

// ServerFramework is a server-side framework subsystem: it publishes
// WSDL service descriptions for test services.
type ServerFramework interface {
	// Name is the framework's display name (e.g. "Metro").
	Name() string
	// Server is the hosting application server's display name.
	Server() string
	// Language is the service implementation language it hosts.
	Language() typesys.Language
	// Publish generates the service description for a test service.
	// It returns a *NotDeployableError when the parameter class
	// cannot be bound (or deployment is refused).
	Publish(def services.Definition) (*wsdl.Definitions, error)
}

// GenerationResult is the outcome of running a client artifact
// generation tool against one WSDL document.
type GenerationResult struct {
	// Unit is the generated artifact set; nil when the tool failed
	// without producing usable output. Tools that fail "silently"
	// (Axis1, Axis2) report error issues and still return a unit.
	Unit *artifact.Unit
	// Issues is the tool's reported output.
	Issues []Issue
}

// Failed reports whether generation produced an error-severity issue.
func (r GenerationResult) Failed() bool {
	for _, i := range r.Issues {
		if i.Severity >= artifact.SeverityError {
			return true
		}
	}
	return false
}

// ClientFramework is a client-side framework subsystem: it generates
// and verifies invocation artifacts from WSDL documents.
type ClientFramework interface {
	// Name is the framework's display name.
	Name() string
	// Tool is the bundled artifact generation tool (e.g. "wsimport").
	Tool() string
	// ArtifactLanguage is the language of generated artifacts.
	ArtifactLanguage() artifact.TargetLanguage
	// Generate consumes a serialized WSDL document (the tools re-parse
	// the XML; handing over in-memory models would hide parser-level
	// interoperability issues).
	Generate(doc []byte) GenerationResult
	// GenerateAnalyzed is the shared-analysis fast path of Generate: it
	// consumes a pre-computed Analysis of the same document instead of
	// re-parsing the serialized XML, and produces an identical result.
	// All behavioural quirks key on the analysis, so skipping the
	// redundant parse hides no parser-level issue as long as the
	// analysis came from Analyze on the exact bytes Generate would see.
	GenerateAnalyzed(a *Analysis) GenerationResult
	// Verify performs the third step for this framework's artifacts:
	// compilation for compiled languages, dynamic instantiation
	// otherwise.
	Verify(u *artifact.Unit) []artifact.Diagnostic
}

// Analysis is an immutable parsed-and-analyzed view of one serialized
// WSDL document. After Analyze returns, every field is only ever read,
// so a single Analysis may be shared by many client frameworks across
// goroutines — the memoization contract behind the campaign runner's
// analysis cache.
type Analysis struct {
	features *docFeatures
}

// Definitions exposes the parsed document behind the analysis, so the
// transport layer can derive endpoints from the same single parse the
// clients share. Callers must treat it as read-only.
func (a *Analysis) Definitions() *wsdl.Definitions { return a.features.def }

// Analyze parses and inspects a serialized WSDL document once, for use
// with ClientFramework.GenerateAnalyzed. It fails exactly when the
// clients' own re-parse of the same bytes would fail.
func Analyze(doc []byte) (*Analysis, error) {
	f, err := analyze(doc)
	if err != nil {
		return nil, err
	}
	return &Analysis{features: f}, nil
}

// AnalyzeDoc inspects an already-parsed (or freshly published)
// document, skipping the serialize→re-parse round trip of Analyze.
// The caller must guarantee the document is what a client would see —
// the campaign's shape memo uses it on documents whose serialized
// form has been verified byte-for-byte against the per-class marshal
// (DESIGN.md §6.6) — and must not mutate the document afterwards.
func AnalyzeDoc(def *wsdl.Definitions) *Analysis {
	return &Analysis{features: analyzeDef(def)}
}

// Servers returns the three server-side subsystems of the study, in
// the paper's order, emitting document/literal descriptions.
func Servers() []ServerFramework {
	return ServersWithOptions()
}

// ServersWithOptions returns the three server-side subsystems with
// shared emitter options (e.g. WithBindingStyle(wsdl.StyleRPC)).
func ServersWithOptions(opts ...ServerOption) []ServerFramework {
	return []ServerFramework{
		NewMetroServer(opts...),
		NewJBossWSServer(opts...),
		NewWCFServer(opts...),
	}
}

// Clients returns the eleven client-side subsystems of the study, in
// the paper's order.
func Clients() []ClientFramework {
	return []ClientFramework{
		NewMetroClient(),
		NewAxis1Client(),
		NewAxis2Client(),
		NewCXFClient(),
		NewJBossWSClient(),
		NewDotNetClient(artifact.LangCSharp),
		NewDotNetClient(artifact.LangVB),
		NewDotNetClient(artifact.LangJScript),
		NewGSOAPClient(),
		NewZendClient(),
		NewSudsClient(),
	}
}

// ---------------------------------------------------------------
// Document feature analysis shared by the client models.
// ---------------------------------------------------------------

// emitterStyle is the convention family a WSDL document follows,
// detected from the document alone.
type emitterStyle int

const (
	// styleJava marks JAX-WS-convention documents: empty soapAction
	// values (the detail the JScript tool warns about on every run).
	styleJava emitterStyle = iota + 1
	// styleDotNet marks .NET-convention documents: tempuri-rooted
	// soapAction URIs.
	styleDotNet
)

// docFeatures is everything a client generator observes about a WSDL.
type docFeatures struct {
	def   *wsdl.Definitions
	style emitterStyle

	zeroOperations bool
	emptyTypes     bool

	// foreignRefs are unresolved element references into non-XSD
	// namespaces (the WS-Addressing reference of the
	// W3CEndpointReference services).
	foreignRefs []xsd.QName
	// schemaRefs are element references into the XML Schema namespace
	// itself (the WCF DataSet "s:schema" construct).
	schemaRefs []xsd.QName
	// importWithoutLocation distinguishes the JBossWS emission variant
	// (import declared but location omitted) from Metro's (no import).
	importWithoutLocation bool

	schemaRefNested    bool
	schemaRefWithAny   bool
	schemaRefUnbounded bool
	schemaRefNillable  bool
	schemaRefOptional  bool

	// vendorFacet is the non-standard facet name in use, if any.
	vendorFacet string
	// langAttrRefs counts xml:lang attribute references.
	langAttrRefs int
	// wildcardOnly reports a complex type whose content is a bare
	// wildcard.
	wildcardOnly bool

	// throwableTypes lists complex types with the message+cause shape.
	throwableTypes []string
	// caseCollidingTypes lists complex types owning two elements whose
	// names differ only by case.
	caseCollidingTypes []string
	// maxNesting is the deepest inline type nesting in the schema.
	maxNesting int
}

// analyze parses and inspects a serialized WSDL document.
func analyze(doc []byte) (*docFeatures, error) {
	def, err := wsdl.Unmarshal(doc)
	if err != nil {
		return nil, err
	}
	return analyzeDef(def), nil
}

// analyzeDef inspects a parsed document.
func analyzeDef(def *wsdl.Definitions) *docFeatures {
	f := &docFeatures{def: def}

	f.style = styleJava
	for _, b := range def.Bindings {
		for _, op := range b.Operations {
			if op.SOAPAction != "" {
				f.style = styleDotNet
			}
		}
	}

	f.zeroOperations = def.OperationCount() == 0
	f.emptyTypes = def.Types == nil || len(def.Types.Schemas) == 0
	if !f.emptyTypes {
		empty := true
		for _, sch := range def.Types.Schemas {
			if len(sch.Elements)+len(sch.ComplexTypes)+len(sch.SimpleTypes) > 0 {
				empty = false
				break
			}
		}
		f.emptyTypes = empty
	}

	if def.Types != nil {
		if unresolved, rerr := def.Types.Resolve(); rerr == nil {
			for _, u := range unresolved {
				if u.Kind != "element" {
					continue
				}
				if u.Ref.Space == xsd.NamespaceXSD {
					f.schemaRefs = append(f.schemaRefs, u.Ref)
				} else {
					f.foreignRefs = append(f.foreignRefs, u.Ref)
				}
			}
		}
		for _, sch := range def.Types.Schemas {
			for _, imp := range sch.Imports {
				if imp.SchemaLocation == "" {
					f.importWithoutLocation = true
				}
			}
			for _, st := range sch.SimpleTypes {
				for _, facet := range st.Facets {
					if !xsd.IsStandardFacet(facet.Name) {
						f.vendorFacet = facet.Name
					}
				}
			}
			inspectSchemaStructure(sch, f)
		}
	}
	return f
}

// inspectSchemaStructure walks one schema block collecting the
// structural markers the client quirk behaviours key on.
func inspectSchemaStructure(sch *xsd.Schema, f *docFeatures) {
	var walkCT func(ct *xsd.ComplexType, depth int, nested bool)
	walkCT = func(ct *xsd.ComplexType, depth int, nested bool) {
		if depth > f.maxNesting {
			f.maxNesting = depth
		}
		if len(ct.Sequence) == 0 && len(ct.Any) > 0 {
			f.wildcardOnly = true
		}
		hasSchemaRef := false
		lower := make(map[string]string, len(ct.Sequence))
		var hasMessage, hasCause bool
		for i := range ct.Sequence {
			el := &ct.Sequence[i]
			if el.Name == "message" {
				hasMessage = true
			}
			if el.Name == "cause" {
				hasCause = true
			}
			if el.Name != "" {
				key := strings.ToLower(el.Name)
				if prev, ok := lower[key]; ok && prev != el.Name {
					f.caseCollidingTypes = append(f.caseCollidingTypes, ct.Name)
				}
				lower[key] = el.Name
			}
			if el.Ref.Space == xsd.NamespaceXSD {
				hasSchemaRef = true
				if nested {
					f.schemaRefNested = true
				}
				if el.Occurs.Max < 0 {
					f.schemaRefUnbounded = true
				}
				if el.Occurs.Min == 0 && el.Occurs.Max >= 0 {
					f.schemaRefOptional = true
				}
				if el.Nillable {
					f.schemaRefNillable = true
				}
			}
			if el.Inline != nil {
				walkCT(el.Inline, depth+1, true)
			}
		}
		if hasSchemaRef && len(ct.Any) > 0 {
			f.schemaRefWithAny = true
		}
		if hasMessage && hasCause && ct.Name != "" {
			f.throwableTypes = append(f.throwableTypes, ct.Name)
		}
		for _, at := range ct.Attributes {
			if at.Ref.Space == xsd.NamespaceXML && at.Ref.Local == "lang" {
				f.langAttrRefs++
			}
		}
	}
	for i := range sch.ComplexTypes {
		walkCT(&sch.ComplexTypes[i], 1, false)
	}
	for i := range sch.Elements {
		if sch.Elements[i].Inline != nil {
			walkCT(sch.Elements[i].Inline, 1, false)
		}
	}
}

func warn(code, format string, args ...any) Issue {
	return Issue{Severity: artifact.SeverityWarning, Code: code, Message: fmt.Sprintf(format, args...)}
}

func errIssue(code, format string, args ...any) Issue {
	return Issue{Severity: artifact.SeverityError, Code: code, Message: fmt.Sprintf(format, args...)}
}

func parseFailure(err error) GenerationResult {
	return GenerationResult{Issues: []Issue{errIssue(CodeParseFailure, "cannot parse service description: %v", err)}}
}
