package framework

import (
	"wsinterop/internal/artifact"
)

// This file implements the five Java client-side subsystems. Their
// common trunk is javaClient; the behavioural differences observed in
// the study are expressed as per-tool policies:
//
//   - Metro's wsimport fails cleanly on unresolvable references,
//     wildcard-only content models and zero-operation documents.
//   - Apache CXF's and JBossWS's wsdl2java/wsconsume fail on
//     unresolvable references and wildcard-only models but process
//     zero-operation documents *silently*, producing stubs with no
//     methods (the silent-failure finding of §IV.A).
//   - Axis1's wsdl2java reports errors yet still writes artifacts
//     (which then javac compiles with "unchecked" warnings), and its
//     fault-wrapper accessor references a misnamed member.
//   - Axis2's wsdl2java lower-cases deserializer locals, collapsing
//     case-distinct elements into duplicate variables.

// javaToolPolicy captures how one Java tool reacts to document
// features.
type javaToolPolicy struct {
	name string
	tool string
	// errOnForeignRef fires on unresolvable non-XSD element
	// references.
	errOnForeignRef bool
	// foreignRefNeedsMissingImport restricts the above to documents
	// that do not even declare an import for the namespace (the Metro
	// emission variant) — Axis2's observed asymmetry.
	foreignRefNeedsMissingImport bool
	// errOnSchemaRef fires on xs:schema element references (the WCF
	// DataSet construct).
	errOnSchemaRef bool
	// schemaRefNeedsWildcard restricts the above to references paired
	// with a wildcard in the same sequence — Axis1's observed subset.
	schemaRefNeedsWildcard bool
	// errOnWildcardOnly fires on wildcard-only content models.
	errOnWildcardOnly bool
	// errOnZeroOps fires on documents without operations; tools
	// without it process such documents silently.
	errOnZeroOps bool
	// silentArtifacts keeps generating artifacts even after reporting
	// errors (Axis1/Axis2).
	silentArtifacts bool
	// builder is the tool's code-generation style.
	builder unitBuilder
}

type javaClient struct {
	policy javaToolPolicy
}

var _ ClientFramework = (*javaClient)(nil)

// ClientOption customizes a client framework model.
type ClientOption func(*javaToolPolicy)

// WithBindingCustomization applies the manual data-type binding
// customization of the paper's §IV.B.2 remediation (reference [29]):
// the developer supplies JAXB bindings that map the xs:schema
// reference and wildcard content models to generic types, so the
// JAX-WS-family tools no longer fail on the WCF DataSet WSDLs. The
// paper notes the fix works but "the client developer has to know
// precisely which binding to define".
func WithBindingCustomization() ClientOption {
	return func(p *javaToolPolicy) {
		p.errOnSchemaRef = false
		p.errOnWildcardOnly = false
	}
}

func applyClientOptions(p javaToolPolicy, opts []ClientOption) javaToolPolicy {
	for _, apply := range opts {
		apply(&p)
	}
	return p
}

// NewMetroClient creates the Oracle Metro 2.3 wsimport model.
func NewMetroClient(opts ...ClientOption) ClientFramework {
	return &javaClient{policy: applyClientOptions(javaToolPolicy{
		name:              "Metro",
		tool:              "wsimport",
		errOnForeignRef:   true,
		errOnSchemaRef:    true,
		errOnWildcardOnly: true,
		errOnZeroOps:      true,
		builder:           unitBuilder{lang: artifact.LangJava, stemSfx: "Port"},
	}, opts)}
}

// NewCXFClient creates the Apache CXF 2.7.6 wsdl2java model.
func NewCXFClient(opts ...ClientOption) ClientFramework {
	return &javaClient{policy: applyClientOptions(javaToolPolicy{
		name:              "Apache CXF",
		tool:              "wsdl2java",
		errOnForeignRef:   true,
		errOnSchemaRef:    true,
		errOnWildcardOnly: true,
		builder:           unitBuilder{lang: artifact.LangJava, stemSfx: "Client"},
	}, opts)}
}

// NewJBossWSClient creates the JBossWS CXF 4.2.3 wsconsume model.
func NewJBossWSClient(opts ...ClientOption) ClientFramework {
	return &javaClient{policy: applyClientOptions(javaToolPolicy{
		name:              "JBossWS CXF",
		tool:              "wsconsume",
		errOnForeignRef:   true,
		errOnSchemaRef:    true,
		errOnWildcardOnly: true,
		builder:           unitBuilder{lang: artifact.LangJava, stemSfx: "Service"},
	}, opts)}
}

// NewAxis1Client creates the Apache Axis1 1.4 wsdl2java model.
func NewAxis1Client() ClientFramework {
	return &javaClient{policy: javaToolPolicy{
		name:                   "Apache Axis1",
		tool:                   "wsdl2java",
		errOnForeignRef:        true,
		errOnSchemaRef:         true,
		schemaRefNeedsWildcard: true,
		silentArtifacts:        true,
		builder: unitBuilder{
			lang:                artifact.LangJava,
			stemSfx:             "SoapBindingStub",
			rawCollections:      true,
			throwableWrapperBug: true,
		},
	}}
}

// NewAxis2Client creates the Apache Axis2 1.6.2 wsdl2java model.
func NewAxis2Client() ClientFramework {
	return &javaClient{policy: javaToolPolicy{
		name:                         "Apache Axis2",
		tool:                         "wsdl2java",
		errOnForeignRef:              true,
		foreignRefNeedsMissingImport: true,
		errOnZeroOps:                 true,
		silentArtifacts:              true,
		builder: unitBuilder{
			lang:           artifact.LangJava,
			stemSfx:        "Stub",
			rawCollections: true,
			lowerLocals:    true,
		},
	}}
}

// Name implements ClientFramework.
func (c *javaClient) Name() string { return c.policy.name }

// Tool implements ClientFramework.
func (c *javaClient) Tool() string { return c.policy.tool }

// ArtifactLanguage implements ClientFramework.
func (c *javaClient) ArtifactLanguage() artifact.TargetLanguage { return artifact.LangJava }

// Generate implements ClientFramework.
func (c *javaClient) Generate(doc []byte) GenerationResult {
	f, err := analyze(doc)
	if err != nil {
		return parseFailure(err)
	}
	return c.generate(f)
}

// GenerateAnalyzed implements ClientFramework.
func (c *javaClient) GenerateAnalyzed(a *Analysis) GenerationResult {
	return c.generate(a.features)
}

func (c *javaClient) generate(f *docFeatures) GenerationResult {
	p := &c.policy

	var issues []Issue
	if p.errOnForeignRef && len(f.foreignRefs) > 0 {
		if !p.foreignRefNeedsMissingImport || !f.importWithoutLocation {
			issues = append(issues, errIssue(CodeUnresolvableRef,
				"undefined element declaration %s", f.foreignRefs[0]))
		}
	}
	if p.errOnSchemaRef && len(f.schemaRefs) > 0 {
		if !p.schemaRefNeedsWildcard || f.schemaRefWithAny {
			issues = append(issues, errIssue(CodeSchemaRef,
				"unable to process reference %s: s:schema is not a known element", f.schemaRefs[0]))
		}
	}
	if p.errOnWildcardOnly && f.wildcardOnly {
		issues = append(issues, errIssue(CodeWildcard,
			"cannot bind wildcard-only content model (s:any)"))
	}
	if p.errOnZeroOps && f.zeroOperations {
		issues = append(issues, errIssue(CodeNoOperations,
			"service description declares no operations"))
	}

	hasError := false
	for _, i := range issues {
		if i.Severity >= artifact.SeverityError {
			hasError = true
			break
		}
	}
	if hasError && !p.silentArtifacts {
		return GenerationResult{Issues: issues}
	}

	b := p.builder
	b.unitName = unitNameFor(f)
	return GenerationResult{Unit: b.build(f), Issues: issues}
}

// Verify implements ClientFramework: Java artifacts are compiled with
// javac semantics.
var javaCompiler = artifact.NewCompiler(artifact.LangJava)

func (c *javaClient) Verify(u *artifact.Unit) []artifact.Diagnostic {
	return javaCompiler.Compile(u)
}

// unitNameFor derives the artifact unit name from the document.
func unitNameFor(f *docFeatures) string {
	if f.def.Name != "" {
		return f.def.Name
	}
	for _, svc := range f.def.Services {
		if svc.Name != "" {
			return svc.Name
		}
	}
	return "Service"
}
