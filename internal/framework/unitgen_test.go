package framework

import (
	"testing"

	"wsinterop/internal/artifact"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// featuresFor parses a hand-built document through the analyzer.
func featuresFor(t *testing.T, d *wsdl.Definitions) *docFeatures {
	t.Helper()
	raw, err := wsdl.Marshal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	f, err := analyze(raw)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return f
}

// miniDoc builds a small document-literal echo description around the
// given parameter complex type.
func miniDoc(param xsd.ComplexType) *wsdl.Definitions {
	tns := "http://mini.test/"
	paramRef := xsd.QName{Space: tns, Local: param.Name}
	sch := &xsd.Schema{
		TargetNamespace:    tns,
		ElementFormDefault: "qualified",
		ComplexTypes:       []xsd.ComplexType{param},
		Elements: []xsd.Element{
			{Name: "echo", Inline: &xsd.ComplexType{Sequence: []xsd.Element{
				{Name: "input", Type: paramRef, Occurs: xsd.Once},
			}}},
			{Name: "echoResponse", Inline: &xsd.ComplexType{Sequence: []xsd.Element{
				{Name: "return", Type: paramRef, Occurs: xsd.Once},
			}}},
		},
	}
	return &wsdl.Definitions{
		Name:            "MiniService",
		TargetNamespace: tns,
		Types:           xsd.NewSchemaSet(sch),
		Messages: []wsdl.Message{
			{Name: "in", Parts: []wsdl.Part{{Name: "parameters", Element: xsd.QName{Space: tns, Local: "echo"}}}},
			{Name: "out", Parts: []wsdl.Part{{Name: "parameters", Element: xsd.QName{Space: tns, Local: "echoResponse"}}}},
		},
		PortTypes: []wsdl.PortType{{Name: "PT", Operations: []wsdl.Operation{{
			Name: "echo", Input: wsdl.IORef{Message: "in"}, Output: wsdl.IORef{Message: "out"},
		}}}},
		Bindings: []wsdl.Binding{{
			Name: "B", PortType: "PT", Transport: wsdl.NamespaceSOAPHTTP,
			Style:      wsdl.StyleDocument,
			Operations: []wsdl.BindingOperation{{Name: "echo"}},
		}},
		Services: []wsdl.Service{{Name: "S", Ports: []wsdl.Port{{Name: "P", Binding: "B", Location: "http://x/"}}}},
	}
}

func TestOperationParameterDocumentStyle(t *testing.T) {
	f := featuresFor(t, miniDoc(xsd.ComplexType{
		Name: "Widget",
		Sequence: []xsd.Element{
			{Name: "first", Type: xsd.TypeString, Occurs: xsd.Once},
			{Name: "second", Type: xsd.TypeInt, Occurs: xsd.Once},
		},
	}))
	typeName, firstField := operationParameter(f, "echo")
	if typeName != "Widget" || firstField != "first" {
		t.Errorf("operationParameter = %q, %q", typeName, firstField)
	}
	if tn, ff := operationParameter(f, "noSuchOp"); tn != "" || ff != "" {
		t.Errorf("unknown operation should resolve to nothing, got %q %q", tn, ff)
	}
}

func TestUnitBuilderPortFirst(t *testing.T) {
	f := featuresFor(t, miniDoc(xsd.ComplexType{
		Name:     "Widget",
		Sequence: []xsd.Element{{Name: "v", Type: xsd.TypeString, Occurs: xsd.Once}},
	}))
	b := unitBuilder{lang: artifact.LangJava, stemSfx: "Port", unitName: "MiniService"}
	u := b.build(f)
	if u.PortClass() == nil || u.PortClass().Name != "MiniServicePort" {
		t.Fatalf("port class misplaced: %+v", u.Classes)
	}
	if u.MethodCount() != 1 {
		t.Errorf("method count = %d, want 1", u.MethodCount())
	}
	if diags := artifact.NewCompiler(artifact.LangJava).Compile(u); len(diags) != 0 {
		t.Errorf("mini unit should compile: %v", diags)
	}
}

func TestRenameCaseCollisionsSuffixes(t *testing.T) {
	f := featuresFor(t, miniDoc(xsd.ComplexType{
		Name: "Tri",
		Sequence: []xsd.Element{
			{Name: "x", Type: xsd.TypeString, Occurs: xsd.Once},
			{Name: "X", Type: xsd.TypeString, Occurs: xsd.Once},
			{Name: "x_2", Type: xsd.TypeString, Occurs: xsd.Once},
		},
	}))
	b := unitBuilder{lang: artifact.LangVB, stemSfx: "Proxy", unitName: "M", renameCaseCollisions: true}
	u := b.build(f)
	var tri *artifact.Class
	for i := range u.Classes {
		if u.Classes[i].Name == "Tri" {
			tri = &u.Classes[i]
		}
	}
	if tri == nil {
		t.Fatal("Tri class missing")
	}
	if diags := artifact.Errors(artifact.NewCompiler(artifact.LangVB).Compile(u)); len(diags) != 0 {
		t.Errorf("renamed members must satisfy the VB compiler: %v\nfields: %+v", diags, tri.Fields)
	}
}

func TestUnitBuilderSkipsAnonymousTypes(t *testing.T) {
	// Wrapper elements use anonymous inline types; they must not leak
	// into the unit as named classes.
	f := featuresFor(t, miniDoc(xsd.ComplexType{
		Name:     "Widget",
		Sequence: []xsd.Element{{Name: "v", Type: xsd.TypeString, Occurs: xsd.Once}},
	}))
	b := unitBuilder{lang: artifact.LangJava, stemSfx: "Port", unitName: "M"}
	u := b.build(f)
	if len(u.Classes) != 2 { // port + Widget
		t.Errorf("classes = %d, want 2: %+v", len(u.Classes), u.Classes)
	}
}

func TestLowerFirst(t *testing.T) {
	tests := []struct{ in, want string }{
		{"FooException", "fooException"}, {"", ""}, {"x", "x"},
	}
	for _, tt := range tests {
		if got := lowerFirst(tt.in); got != tt.want {
			t.Errorf("lowerFirst(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestAnalyzeStyleDetection(t *testing.T) {
	d := miniDoc(xsd.ComplexType{
		Name:     "Widget",
		Sequence: []xsd.Element{{Name: "v", Type: xsd.TypeString, Occurs: xsd.Once}},
	})
	f := featuresFor(t, d)
	if f.style != styleJava {
		t.Error("empty soapAction should read as the Java convention")
	}
	d.Bindings[0].Operations[0].SOAPAction = "http://tempuri.org/echo"
	f = featuresFor(t, d)
	if f.style != styleDotNet {
		t.Error("non-empty soapAction should read as the .NET convention")
	}
}
