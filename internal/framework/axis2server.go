package framework

import (
	"fmt"

	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// This file implements a fourth server-side subsystem — Apache Axis2
// 1.6.2 as a *service host* — the paper's announced future work of
// widening the server-side setup. Axis2 is the only framework of the
// study whose server side was not exercised; the model below follows
// its documented behaviour:
//
//   - like JBossWS, it cannot map vendor-annotated beans (no JAXB
//     vendor extensions in ADB binding);
//   - like Metro, it refuses async-handle classes outright rather
//     than publishing unusable descriptions;
//   - uniquely, its ADB data binding cannot handle throwable-shaped
//     graphs with self-referential cause chains, so exception/error
//     classes are not deployable either — a server-side counterpart
//     of the Axis1/Axis2 client-side fault-handling weaknesses;
//   - its emitter produces the same document/literal shape as the
//     other Java frameworks, with empty soapAction values, and
//     declares imports with schemaLocation (unlike JBossWS).
//
// The model is additive: it does not participate in the paper's
// default three-server campaign (framework.Servers()) and is selected
// explicitly via NewAxis2Server for extension experiments.

// NewAxis2Server creates the Apache Axis2 1.6.2 server-side model
// (extension; not part of the study's server set).
func NewAxis2Server(opts ...ServerOption) ServerFramework {
	o := applyServerOptions(opts)
	return &axis2Server{style: o.style}
}

type axis2Server struct {
	style wsdl.Style
}

var _ ServerFramework = (*axis2Server)(nil)

// Name implements ServerFramework.
func (s *axis2Server) Name() string { return "Apache Axis2 (server)" }

// Server implements ServerFramework.
func (s *axis2Server) Server() string { return "Apache Tomcat 7.0" }

// Language implements ServerFramework.
func (s *axis2Server) Language() typesys.Language { return typesys.Java }

// Publish implements ServerFramework.
func (s *axis2Server) Publish(def services.Definition) (*wsdl.Definitions, error) {
	cls := def.Parameter
	switch {
	case cls.Kind == typesys.KindBeanVendor:
		return nil, &NotDeployableError{
			Framework: s.Name(), Class: cls.Name,
			Reason: "ADB binding does not support vendor binding annotations",
		}
	case cls.Kind == typesys.KindAsyncHandle:
		return nil, &NotDeployableError{
			Framework: s.Name(), Class: cls.Name,
			Reason: ErrRefused.Error(),
		}
	case cls.Kind != typesys.KindBean:
		return nil, &NotDeployableError{
			Framework: s.Name(), Class: cls.Name,
			Reason: fmt.Sprintf("kind %s cannot be bound by ADB", cls.Kind),
		}
	case cls.Hints.Has(typesys.HintThrowable):
		return nil, &NotDeployableError{
			Framework: s.Name(), Class: cls.Name,
			Reason: "ADB cannot serialize self-referential throwable graphs",
		}
	}

	tns := typesys.NamespaceFor(typesys.Java, cls.Package)
	sch := &xsd.Schema{TargetNamespace: tns, ElementFormDefault: "qualified"}
	paramType := s.emitClassType(sch, cls)
	doc := buildDefinitions(def, tns, sch, s.style, paramType)
	for i := range doc.Bindings {
		for j := range doc.Bindings[i].Operations {
			doc.Bindings[i].Operations[j].SOAPAction = ""
		}
	}
	return doc, nil
}

// emitClassType maps the class like the other Java emitters but with
// Axis2's own conventions: imports carry a schemaLocation, and the
// vendor facet family is "adb-format".
func (s *axis2Server) emitClassType(sch *xsd.Schema, cls *typesys.Class) xsd.QName {
	ct := xsd.ComplexType{Name: cls.Simple}
	for _, f := range cls.Fields {
		switch {
		case f.Kind == typesys.FieldRef && cls.Hints.Has(typesys.HintUnresolvedAddressingRef):
			// Axis2 declares a located import — the reference resolves,
			// so this emission variant is actually interoperable.
			ct.Sequence = append(ct.Sequence, xsd.Element{
				Ref:    xsd.QName{Space: addressingNamespace, Local: "EndpointReference"},
				Occurs: xsd.Optional,
			})
			ensureLocatedImport(sch, addressingNamespace,
				"http://www.w3.org/2006/03/addressing/ws-addr.xsd")
		case f.Kind == typesys.FieldRef:
			ct.Sequence = append(ct.Sequence, xsd.Element{
				Name:   f.Name,
				Type:   xsd.QName{Space: sch.TargetNamespace, Local: f.Ref},
				Occurs: xsd.Optional,
			})
			ensureStubType(sch, f.Ref)
		default:
			ct.Sequence = append(ct.Sequence, xsd.Element{
				Name:   f.Name,
				Type:   fieldSimpleType(f.Kind),
				Occurs: xsd.Optional,
			})
		}
	}
	if cls.Hints.Has(typesys.HintVendorFacet) {
		stName := cls.Simple + "Pattern"
		sch.SimpleTypes = append(sch.SimpleTypes, xsd.SimpleType{
			Name: stName,
			Base: xsd.TypeString,
			Facets: []xsd.Facet{
				{Name: "adb-format", Value: "yyyy-MM-dd'T'HH:mm:ss"},
			},
		})
		ct.Sequence = append(ct.Sequence, xsd.Element{
			Name:   "formatPattern",
			Type:   xsd.QName{Space: sch.TargetNamespace, Local: stName},
			Occurs: xsd.Optional,
		})
	}
	sch.ComplexTypes = append(sch.ComplexTypes, ct)
	return xsd.QName{Space: sch.TargetNamespace, Local: ct.Name}
}

// ensureLocatedImport declares an import with a schemaLocation (the
// Axis2 emission style; contrast ensureImport).
func ensureLocatedImport(sch *xsd.Schema, ns, location string) {
	for _, imp := range sch.Imports {
		if imp.Namespace == ns {
			return
		}
	}
	sch.Imports = append(sch.Imports, xsd.Import{Namespace: ns, SchemaLocation: location})
}
