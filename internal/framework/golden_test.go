package framework

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"wsinterop/internal/typesys"
)

var updateGolden = flag.Bool("update", false, "rewrite golden WSDL files")

// TestGoldenWSDLs pins the exact serialized form of the narrative
// services' descriptions. Emission is a wire contract for every
// downstream consumer (clients re-parse the bytes), so accidental
// format drift must be caught; regenerate deliberately with
// `go test ./internal/framework -run TestGoldenWSDLs -update`.
func TestGoldenWSDLs(t *testing.T) {
	cases := []struct {
		file   string
		server ServerFramework
		class  string
	}{
		{"metro_w3cendpointreference.wsdl", NewMetroServer(), typesys.JavaW3CEndpointReference},
		{"jbossws_w3cendpointreference.wsdl", NewJBossWSServer(), typesys.JavaW3CEndpointReference},
		{"metro_simpledateformat.wsdl", NewMetroServer(), typesys.JavaSimpleDateFormat},
		{"jbossws_response_zeroop.wsdl", NewJBossWSServer(), typesys.JavaResponse},
		{"wcf_datatable.wsdl", NewWCFServer(), typesys.CSharpDataTable},
		{"wcf_socketerror.wsdl", NewWCFServer(), typesys.CSharpSocketError},
		{"axis2_w3cendpointreference.wsdl", NewAxis2Server(), typesys.JavaW3CEndpointReference},
	}
	for _, tc := range cases {
		t.Run(tc.file, func(t *testing.T) {
			got := publishRaw(t, tc.server, tc.class)
			path := filepath.Join("testdata", tc.file)
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("emission drift for %s; rerun with -update if intentional\n got:\n%s\nwant:\n%s",
					tc.file, got, want)
			}
		})
	}
}
