package xsd

import (
	"bytes"
	"strings"
	"testing"
)

// equivalenceSchemas enumerates schema shapes chosen to hit every
// branch of the hand-rolled writer: empty blocks, facets (which
// re-declare the XSD namespace), extension bases, inline anonymous
// types, wildcards, occurs variants, foreign-namespace prefixes in
// construction order, and attribute values needing every escape form.
func equivalenceSchemas() map[string]*Schema {
	foreignA := QName{Space: "urn:foreign-a", Local: "ThingA"}
	foreignB := QName{Space: "urn:foreign-b", Local: "ThingB"}
	return map[string]*Schema{
		"empty": {TargetNamespace: "urn:empty"},
		"no-target-namespace": {
			Elements: []Element{{Name: "root", Type: TypeString}},
		},
		"qualified": {
			TargetNamespace:    "urn:q",
			ElementFormDefault: "qualified",
			Elements:           []Element{{Name: "root", Type: TypeString}},
		},
		"imports": {
			TargetNamespace: "urn:imp",
			Imports: []Import{
				{Namespace: "urn:located", SchemaLocation: "http://example.com/a.xsd"},
				{Namespace: "urn:bare"},
			},
		},
		"simple-types": {
			TargetNamespace: "urn:st",
			SimpleTypes: []SimpleType{
				{Name: "Bare", Base: TypeString},
				{Name: "", Base: TypeInt},
				{Name: "Faceted", Base: TypeString, Facets: []Facet{
					{Name: "maxLength", Value: "10"},
					{Name: "pattern", Value: `[a-z<>&"']+`},
					{Name: "CLR-Facet_1", Value: "odd but valid name"},
				}},
			},
		},
		"complex-kitchen-sink": {
			TargetNamespace: "urn:ct",
			ComplexTypes: []ComplexType{
				{Name: "Empty"},
				{Name: "Abstract", Abstract: true},
				{Name: "Seq", Sequence: []Element{
					{Name: "a", Type: TypeString, Occurs: Optional, Nillable: true},
					{Name: "b", Type: foreignA, Occurs: Unbounded},
					{Name: "c", Ref: foreignB},
					{Name: "weird", Type: TypeInt, Occurs: Occurs{Min: 2, Max: 7}},
				}},
				{Name: "WithAny", Any: []AnyParticle{
					{Namespace: "##any", ProcessContents: "lax", Occurs: Unbounded},
					{},
				}},
				{Name: "Attrs", Attributes: []Attribute{
					{Name: "id", Type: TypeString},
					{Ref: QName{Space: NamespaceXML, Local: "lang"}},
					{Name: "f", Type: QName{Space: "urn:foreign-c", Local: "AttrT"}},
				}},
				{Name: "Derived", Base: QName{Space: "urn:ct", Local: "Seq"},
					Sequence: []Element{{Name: "extra", Type: TypeBoolean}}},
				{Name: "DerivedEmpty", Base: foreignA,
					Attributes: []Attribute{{Name: "x", Type: TypeString}}},
				{Name: "Inline", Sequence: []Element{
					{Name: "nested", Inline: &ComplexType{
						// The inline form must drop the name attribute.
						Name: "ShouldNotAppear",
						Sequence: []Element{
							{Name: "deep", Inline: &ComplexType{
								Sequence: []Element{{Name: "leaf", Type: TypeString}},
							}},
						},
					}},
				}},
			},
		},
		"hostile-names": {
			TargetNamespace: "urn:hostile&<>\"'\t\n\rns" + string(rune(0x7)),
			Elements: []Element{
				{Name: "Hostile&<>\"'Name", Type: TypeString},
				{Name: "Ctrl" + string(rune(0x1)) + "Char", Type: TypeString},
				{Name: "Uni code�", Type: TypeString},
			},
			SimpleTypes: []SimpleType{
				{Name: "esc<>&", Base: TypeString, Facets: []Facet{
					{Name: "enumeration", Value: "a&b<c>d\"e'f\tg\nh\ri"},
				}},
			},
		},
		"foreign-prefix-order": {
			// The extension base is resolved AFTER sequence and attribute
			// refs during wire-struct construction but printed first; the
			// q-prefix numbering must follow construction order.
			TargetNamespace: "urn:order",
			ComplexTypes: []ComplexType{
				{
					Name:       "T",
					Base:       QName{Space: "urn:z-base", Local: "B"},
					Sequence:   []Element{{Name: "s", Type: QName{Space: "urn:a-seq", Local: "S"}}},
					Attributes: []Attribute{{Name: "at", Type: QName{Space: "urn:m-attr", Local: "A"}}},
				},
			},
		},
	}
}

// TestMarshalSchemaMatchesReference proves the hand-rolled writer
// emits byte-identical output to the retained encoding/xml path for
// every synthetic edge case.
func TestMarshalSchemaMatchesReference(t *testing.T) {
	for name, sch := range equivalenceSchemas() {
		t.Run(name, func(t *testing.T) {
			want, err := MarshalSchemaReference(sch, nil)
			if err != nil {
				t.Fatalf("reference marshal: %v", err)
			}
			got, err := MarshalSchema(sch, nil)
			if err != nil {
				t.Fatalf("fast marshal: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("output diverges\nfast:\n%s\nreference:\n%s", got, want)
			}
		})
	}
}

// TestMarshalSchemaToPrefix checks the streamed form used by the WSDL
// writer: every line carries the base prefix and the bytes otherwise
// match MarshalSchema.
func TestMarshalSchemaToPrefix(t *testing.T) {
	sch := equivalenceSchemas()["complex-kitchen-sink"]
	flat, err := MarshalSchema(sch, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := MarshalSchemaTo(&buf, sch, nil, "    "); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for i, line := range strings.Split(string(flat), "\n") {
		if i > 0 {
			want.WriteByte('\n')
		}
		if line != "" {
			want.WriteString("    ")
		}
		want.WriteString(line)
	}
	if buf.String() != want.String() {
		t.Errorf("prefixed output diverges\ngot:\n%s\nwant:\n%s", buf.String(), want.String())
	}
}

// TestMarshalSchemaHostileFacetNames checks the writer replicates the
// reference encoder's quirks for degenerate facet element names: the
// name is emitted verbatim (no validation or escaping), and an empty
// name falls back to the wire field name without the namespace
// re-declaration.
func TestMarshalSchemaHostileFacetNames(t *testing.T) {
	for _, bad := range []string{"", "1leading", "sp ace", "a<b", "a&b"} {
		sch := &Schema{
			TargetNamespace: "urn:bad",
			SimpleTypes: []SimpleType{
				{Name: "S", Base: TypeString, Facets: []Facet{{Name: bad, Value: "v"}}},
			},
		}
		want, err := MarshalSchemaReference(sch, nil)
		if err != nil {
			t.Fatalf("facet name %q: reference marshal: %v", bad, err)
		}
		got, err := MarshalSchema(sch, nil)
		if err != nil {
			t.Fatalf("facet name %q: fast marshal: %v", bad, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("facet name %q diverges\nfast:\n%s\nreference:\n%s", bad, got, want)
		}
	}
}
