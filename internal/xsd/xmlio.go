package xsd

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// schemaBufs recycles schema serialization buffers across
// MarshalSchema calls — the same pattern as wsdl.Marshal, which
// serializes one or more schema blocks per published document.
var schemaBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// This file implements XML serialization and parsing for the schema
// object model. The wire format follows the conventional layout used
// by JAX-WS and WCF emitters: one xs:schema element per target
// namespace, qualified references written as prefix:local with the
// prefix map declared on the schema element.
//
// The writer assigns prefixes deterministically (tns for the target
// namespace, xs for XML Schema, q1..qN for foreign namespaces) so that
// document output is byte-stable for a given model — a property the
// campaign runner and the round-trip property tests rely on.

// xmlSchema is the wire representation of a Schema.
type xmlSchema struct {
	XMLName            xml.Name         `xml:"http://www.w3.org/2001/XMLSchema schema"`
	TargetNamespace    string           `xml:"targetNamespace,attr,omitempty"`
	ElementFormDefault string           `xml:"elementFormDefault,attr,omitempty"`
	Attrs              []xml.Attr       `xml:",any,attr"`
	Imports            []xmlImport      `xml:"import"`
	SimpleTypes        []xmlSimpleType  `xml:"simpleType"`
	ComplexTypes       []xmlComplexType `xml:"complexType"`
	Elements           []xmlElement     `xml:"element"`
}

type xmlImport struct {
	Namespace      string `xml:"namespace,attr"`
	SchemaLocation string `xml:"schemaLocation,attr,omitempty"`
}

type xmlElement struct {
	Name      string          `xml:"name,attr,omitempty"`
	Type      string          `xml:"type,attr,omitempty"`
	Ref       string          `xml:"ref,attr,omitempty"`
	MinOccurs string          `xml:"minOccurs,attr,omitempty"`
	MaxOccurs string          `xml:"maxOccurs,attr,omitempty"`
	Nillable  string          `xml:"nillable,attr,omitempty"`
	Inline    *xmlComplexType `xml:"complexType"`
}

type xmlComplexType struct {
	Name      string        `xml:"name,attr,omitempty"`
	Abstract  string        `xml:"abstract,attr,omitempty"`
	Sequence  *xmlSequence  `xml:"sequence"`
	Extension *xmlExtension `xml:"complexContent>extension"`
	Attrs     []xmlAttrDecl `xml:"attribute"`
}

type xmlExtension struct {
	Base     string        `xml:"base,attr"`
	Sequence *xmlSequence  `xml:"sequence"`
	Attrs    []xmlAttrDecl `xml:"attribute"`
}

type xmlSequence struct {
	Elements []xmlElement `xml:"element"`
	Any      []xmlAny     `xml:"any"`
}

type xmlAny struct {
	Namespace       string `xml:"namespace,attr,omitempty"`
	ProcessContents string `xml:"processContents,attr,omitempty"`
	MinOccurs       string `xml:"minOccurs,attr,omitempty"`
	MaxOccurs       string `xml:"maxOccurs,attr,omitempty"`
}

type xmlAttrDecl struct {
	Name string `xml:"name,attr,omitempty"`
	Type string `xml:"type,attr,omitempty"`
	Ref  string `xml:"ref,attr,omitempty"`
}

type xmlSimpleType struct {
	Name        string          `xml:"name,attr"`
	Restriction *xmlRestriction `xml:"restriction"`
}

type xmlRestriction struct {
	Base   string     `xml:"base,attr"`
	Inner  []innerXML `xml:",any"`
	Facets []Facet    `xml:"-"`
}

type innerXML struct {
	XMLName xml.Name
	Value   string `xml:"value,attr"`
}

// PrefixTable maps namespace URIs to prefixes for one schema document.
// The mapping is a pair of parallel slices in assignment order: a
// document declares a handful of namespaces, where a linear probe
// beats a map and construction costs two small allocations.
type PrefixTable struct {
	ns     []string
	prefix []string
	target string
}

// ptInlineSlots sizes the inline namespace arrays: the three standing
// assignments plus a few foreign namespaces cover every document the
// study generates.
const ptInlineSlots = 6

// NewPrefixTable creates a deterministic prefix assignment for the
// given target namespace.
func NewPrefixTable(target string) *PrefixTable {
	pt := &PrefixTable{
		ns:     make([]string, 0, ptInlineSlots),
		prefix: make([]string, 0, ptInlineSlots),
	}
	pt.init(target)
	return pt
}

func (pt *PrefixTable) init(target string) {
	pt.target = target
	pt.assign(NamespaceXSD, "xs")
	if target != "" {
		pt.assign(target, "tns")
	}
	pt.assign(NamespaceXML, "xml")
}

var prefixTables = sync.Pool{New: func() any { return NewPrefixTable("") }}

// AcquirePrefixTable returns a pooled table initialized for the target
// namespace. Release with ReleasePrefixTable once the document using
// it has been fully written; tables are never retained by marshaling.
func AcquirePrefixTable(target string) *PrefixTable {
	pt := prefixTables.Get().(*PrefixTable)
	pt.ns = pt.ns[:0]
	pt.prefix = pt.prefix[:0]
	pt.init(target)
	return pt
}

// ReleasePrefixTable recycles a table obtained from AcquirePrefixTable.
func ReleasePrefixTable(pt *PrefixTable) {
	prefixTables.Put(pt)
}

func (pt *PrefixTable) assign(ns, prefix string) {
	for _, have := range pt.ns {
		if have == ns {
			return
		}
	}
	pt.ns = append(pt.ns, ns)
	pt.prefix = append(pt.prefix, prefix)
}

// Prefix returns the prefix for ns, assigning q1..qN on first use of a
// foreign namespace.
func (pt *PrefixTable) Prefix(ns string) string {
	for i, have := range pt.ns {
		if have == ns {
			return pt.prefix[i]
		}
	}
	p := "q" + strconv.Itoa(len(pt.ns))
	pt.ns = append(pt.ns, ns)
	pt.prefix = append(pt.prefix, p)
	return p
}

// Note assigns a prefix for the QName's namespace without rendering
// the reference — the allocation-free form the pre-assignment walks
// use, where only the assignment order matters.
func (pt *PrefixTable) Note(q QName) {
	if q.IsZero() || q.Space == "" {
		return
	}
	pt.Prefix(q.Space)
}

// Ref renders a QName as prefix:local using this table.
func (pt *PrefixTable) Ref(q QName) string {
	if q.IsZero() {
		return ""
	}
	if q.Space == "" {
		return q.Local
	}
	return pt.Prefix(q.Space) + ":" + q.Local
}

// Declarations returns the xmlns attributes for every assigned prefix
// except the reserved xml: prefix.
func (pt *PrefixTable) Declarations() []xml.Attr {
	attrs := make([]xml.Attr, 0, len(pt.ns))
	for i, ns := range pt.ns {
		if ns == NamespaceXML {
			continue
		}
		attrs = append(attrs, xml.Attr{
			Name:  xml.Name{Local: "xmlns:" + pt.prefix[i]},
			Value: ns,
		})
	}
	return attrs
}

// MarshalSchemaReference serializes one schema block through the wire
// structs and encoding/xml — the original implementation, retained as
// the differential-testing oracle for the hand-rolled writer
// (fastwrite.go). MarshalSchema must produce byte-identical output;
// the equivalence tests prove it over the full published corpus.
func MarshalSchemaReference(sch *Schema, pt *PrefixTable) ([]byte, error) {
	if pt == nil {
		pt = NewPrefixTable(sch.TargetNamespace)
	}
	ws := toWireSchema(sch, pt)
	ws.Attrs = pt.Declarations()
	buf := schemaBufs.Get().(*bytes.Buffer)
	defer schemaBufs.Put(buf)
	buf.Reset()
	enc := xml.NewEncoder(buf)
	enc.Indent("", "  ")
	if err := enc.Encode(ws); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

func toWireSchema(sch *Schema, pt *PrefixTable) *xmlSchema {
	ws := &xmlSchema{
		TargetNamespace:    sch.TargetNamespace,
		ElementFormDefault: sch.ElementFormDefault,
	}
	for _, imp := range sch.Imports {
		ws.Imports = append(ws.Imports, xmlImport(imp))
	}
	for i := range sch.SimpleTypes {
		ws.SimpleTypes = append(ws.SimpleTypes, toWireSimpleType(&sch.SimpleTypes[i], pt))
	}
	for i := range sch.ComplexTypes {
		ws.ComplexTypes = append(ws.ComplexTypes, *toWireComplexType(&sch.ComplexTypes[i], pt))
	}
	for i := range sch.Elements {
		ws.Elements = append(ws.Elements, toWireElement(&sch.Elements[i], pt))
	}
	return ws
}

func toWireElement(el *Element, pt *PrefixTable) xmlElement {
	we := xmlElement{
		Name: el.Name,
		Type: pt.Ref(el.Type),
		Ref:  pt.Ref(el.Ref),
	}
	if el.Occurs != Once && el.Occurs != (Occurs{}) {
		we.MinOccurs = strconv.Itoa(el.Occurs.Min)
		if el.Occurs.Max < 0 {
			we.MaxOccurs = "unbounded"
		} else {
			we.MaxOccurs = strconv.Itoa(el.Occurs.Max)
		}
	}
	if el.Nillable {
		we.Nillable = "true"
	}
	if el.Inline != nil {
		ct := toWireComplexType(el.Inline, pt)
		ct.Name = ""
		we.Inline = ct
	}
	return we
}

func toWireComplexType(ct *ComplexType, pt *PrefixTable) *xmlComplexType {
	wct := &xmlComplexType{Name: ct.Name}
	if ct.Abstract {
		wct.Abstract = "true"
	}
	seq := &xmlSequence{}
	for i := range ct.Sequence {
		seq.Elements = append(seq.Elements, toWireElement(&ct.Sequence[i], pt))
	}
	for _, a := range ct.Any {
		wa := xmlAny{Namespace: a.Namespace, ProcessContents: a.ProcessContents}
		if a.Occurs != Once && a.Occurs != (Occurs{}) {
			wa.MinOccurs = strconv.Itoa(a.Occurs.Min)
			if a.Occurs.Max < 0 {
				wa.MaxOccurs = "unbounded"
			} else {
				wa.MaxOccurs = strconv.Itoa(a.Occurs.Max)
			}
		}
		seq.Any = append(seq.Any, wa)
	}
	var attrs []xmlAttrDecl
	for _, at := range ct.Attributes {
		attrs = append(attrs, xmlAttrDecl{Name: at.Name, Type: pt.Ref(at.Type), Ref: pt.Ref(at.Ref)})
	}
	if !ct.Base.IsZero() {
		wct.Extension = &xmlExtension{Base: pt.Ref(ct.Base), Sequence: seq, Attrs: attrs}
	} else {
		if len(seq.Elements) > 0 || len(seq.Any) > 0 {
			wct.Sequence = seq
		}
		wct.Attrs = attrs
	}
	return wct
}

func toWireSimpleType(st *SimpleType, pt *PrefixTable) xmlSimpleType {
	wst := xmlSimpleType{Name: st.Name}
	r := &xmlRestriction{Base: pt.Ref(st.Base)}
	for _, f := range st.Facets {
		r.Inner = append(r.Inner, innerXML{
			XMLName: xml.Name{Space: NamespaceXSD, Local: f.Name},
			Value:   f.Value,
		})
	}
	wst.Restriction = r
	return wst
}

// nsResolver resolves prefix:local strings back to QNames using the
// xmlns declarations captured during parsing.
type nsResolver struct {
	prefixes map[string]string
}

func newNSResolver(attrs []xml.Attr, target string) *nsResolver {
	r := &nsResolver{prefixes: map[string]string{
		"xml": NamespaceXML,
	}}
	for _, a := range attrs {
		if a.Name.Space == "xmlns" {
			r.prefixes[a.Name.Local] = a.Value
		} else if strings.HasPrefix(a.Name.Local, "xmlns:") {
			r.prefixes[strings.TrimPrefix(a.Name.Local, "xmlns:")] = a.Value
		} else if a.Name.Local == "xmlns" && a.Name.Space == "" {
			r.prefixes[""] = a.Value
		}
	}
	if _, ok := r.prefixes[""]; !ok {
		r.prefixes[""] = target
	}
	return r
}

func (r *nsResolver) qname(s string) (QName, error) {
	if s == "" {
		return QName{}, nil
	}
	prefix, local := "", s
	if i := strings.IndexByte(s, ':'); i >= 0 {
		prefix, local = s[:i], s[i+1:]
	}
	ns, ok := r.prefixes[prefix]
	if !ok {
		return QName{}, fmt.Errorf("xsd: undeclared namespace prefix %q in %q", prefix, s)
	}
	return QName{Space: ns, Local: local}, nil
}

// UnmarshalSchema parses one xs:schema XML document into the object
// model. Extra xmlns declarations present on the element are honoured
// when resolving qualified references.
func UnmarshalSchema(data []byte) (*Schema, error) {
	var ws xmlSchema
	if err := xml.Unmarshal(data, &ws); err != nil {
		return nil, fmt.Errorf("xsd: parse schema: %w", err)
	}
	return fromWireSchema(&ws)
}

func fromWireSchema(ws *xmlSchema) (*Schema, error) {
	res := newNSResolver(ws.Attrs, ws.TargetNamespace)
	sch := &Schema{
		TargetNamespace:    ws.TargetNamespace,
		ElementFormDefault: ws.ElementFormDefault,
	}
	for _, imp := range ws.Imports {
		sch.Imports = append(sch.Imports, Import(imp))
	}
	for _, wst := range ws.SimpleTypes {
		st, err := fromWireSimpleType(&wst, res)
		if err != nil {
			return nil, err
		}
		sch.SimpleTypes = append(sch.SimpleTypes, *st)
	}
	for i := range ws.ComplexTypes {
		ct, err := fromWireComplexType(&ws.ComplexTypes[i], res)
		if err != nil {
			return nil, err
		}
		sch.ComplexTypes = append(sch.ComplexTypes, *ct)
	}
	for i := range ws.Elements {
		el, err := fromWireElement(&ws.Elements[i], res)
		if err != nil {
			return nil, err
		}
		sch.Elements = append(sch.Elements, *el)
	}
	return sch, nil
}

func parseOccurs(minA, maxA string) (Occurs, error) {
	oc := Once
	if minA != "" {
		v, err := strconv.Atoi(minA)
		if err != nil {
			return oc, fmt.Errorf("xsd: bad minOccurs %q: %w", minA, err)
		}
		oc.Min = v
	}
	switch {
	case maxA == "unbounded":
		oc.Max = -1
	case maxA != "":
		v, err := strconv.Atoi(maxA)
		if err != nil {
			return oc, fmt.Errorf("xsd: bad maxOccurs %q: %w", maxA, err)
		}
		oc.Max = v
	}
	return oc, nil
}

func fromWireElement(we *xmlElement, res *nsResolver) (*Element, error) {
	el := &Element{Name: we.Name, Nillable: we.Nillable == "true"}
	var err error
	if el.Occurs, err = parseOccurs(we.MinOccurs, we.MaxOccurs); err != nil {
		return nil, err
	}
	if el.Type, err = res.qname(we.Type); err != nil {
		return nil, err
	}
	if el.Ref, err = res.qname(we.Ref); err != nil {
		return nil, err
	}
	if we.Inline != nil {
		ct, err := fromWireComplexType(we.Inline, res)
		if err != nil {
			return nil, err
		}
		el.Inline = ct
	}
	return el, nil
}

func fromWireComplexType(wct *xmlComplexType, res *nsResolver) (*ComplexType, error) {
	ct := &ComplexType{Name: wct.Name, Abstract: wct.Abstract == "true"}
	seq := wct.Sequence
	attrs := wct.Attrs
	if wct.Extension != nil {
		base, err := res.qname(wct.Extension.Base)
		if err != nil {
			return nil, err
		}
		ct.Base = base
		seq = wct.Extension.Sequence
		attrs = wct.Extension.Attrs
	}
	if seq != nil {
		for i := range seq.Elements {
			el, err := fromWireElement(&seq.Elements[i], res)
			if err != nil {
				return nil, err
			}
			ct.Sequence = append(ct.Sequence, *el)
		}
		for _, wa := range seq.Any {
			oc, err := parseOccurs(wa.MinOccurs, wa.MaxOccurs)
			if err != nil {
				return nil, err
			}
			ct.Any = append(ct.Any, AnyParticle{
				Namespace:       wa.Namespace,
				ProcessContents: wa.ProcessContents,
				Occurs:          oc,
			})
		}
	}
	for _, wa := range attrs {
		at := Attribute{Name: wa.Name}
		var err error
		if at.Type, err = res.qname(wa.Type); err != nil {
			return nil, err
		}
		if at.Ref, err = res.qname(wa.Ref); err != nil {
			return nil, err
		}
		ct.Attributes = append(ct.Attributes, at)
	}
	return ct, nil
}

func fromWireSimpleType(wst *xmlSimpleType, res *nsResolver) (*SimpleType, error) {
	st := &SimpleType{Name: wst.Name}
	if wst.Restriction != nil {
		base, err := res.qname(wst.Restriction.Base)
		if err != nil {
			return nil, err
		}
		st.Base = base
		for _, in := range wst.Restriction.Inner {
			st.Facets = append(st.Facets, Facet{Name: in.XMLName.Local, Value: in.Value})
		}
	}
	return st, nil
}
