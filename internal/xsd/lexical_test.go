package xsd

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestValidLexicalTable(t *testing.T) {
	tests := []struct {
		typ   QName
		value string
		want  bool
	}{
		{TypeString, "anything at all", true},
		{TypeString, "", true},
		{TypeInt, "42", true},
		{TypeInt, " 42 ", true},
		{TypeInt, "2147483647", true},
		{TypeInt, "2147483648", false},
		{TypeInt, "-2147483649", false},
		{TypeInt, "x", false},
		{TypeLong, "9223372036854775807", true},
		{TypeLong, "9223372036854775808", false},
		{XSD("short"), "32767", true},
		{XSD("short"), "32768", false},
		{XSD("byte"), "-128", true},
		{XSD("byte"), "-129", false},
		{XSD("unsignedInt"), "0", true},
		{XSD("unsignedInt"), "-1", false},
		{TypeBoolean, "true", true},
		{TypeBoolean, "false", true},
		{TypeBoolean, "1", true},
		{TypeBoolean, "0", true},
		{TypeBoolean, "TRUE", false},
		{TypeBoolean, "yes", false},
		{TypeDouble, "1.5", true},
		{TypeDouble, "-3e8", true},
		{TypeDouble, "one", false},
		{TypeDecimal, "10.01", true},
		{TypeDateTime, "2014-06-23T10:00:00", true},
		{TypeDateTime, "2014-06-23T10:00:00Z", true},
		{TypeDateTime, "2014-06-23T10:00:00.123+01:00", true},
		{TypeDateTime, "2014-06-23", false},
		{TypeDateTime, "not a date", false},
		{XSD("date"), "2014-06-23", true},
		{XSD("date"), "23/06/2014", false},
		{XSD("time"), "10:00:00", true},
		{XSD("time"), "25:00:00", false},
		{TypeBase64Binary, "AA==", true},
		{TypeBase64Binary, "!!!", false},
		{XSD("hexBinary"), "00ff", true},
		{XSD("hexBinary"), "0f0", false},
		{XSD("hexBinary"), "zz", false},
		{XSD("duration"), "P1DT2H", true},
		{XSD("duration"), "-P1D", true},
		{XSD("duration"), "1D", false},
		{TypeQNameType, "tns:Widget", true},
		{TypeQNameType, "Widget", true},
		{TypeQNameType, ":bad", false},
		{TypeQNameType, "a:b:c", false},
		{TypeAnyType, "whatever", true},
		// Non-XSD types carry opaque content.
		{QName{Space: "http://beans/", Local: "Widget"}, "<anything/>", true},
	}
	for _, tt := range tests {
		if got := ValidLexical(tt.typ, tt.value); got != tt.want {
			t.Errorf("ValidLexical(%s, %q) = %v, want %v", tt.typ, tt.value, got, tt.want)
		}
	}
}

// TestValidLexicalIntProperty: the int validator agrees with the
// parser over the whole integer range.
func TestValidLexicalIntProperty(t *testing.T) {
	f := func(v int64) bool {
		want := v >= -2147483648 && v <= 2147483647
		return ValidLexical(TypeInt, strconv.FormatInt(v, 10)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestValidLexicalNeverPanics: arbitrary strings never panic any
// validator.
func TestValidLexicalNeverPanics(t *testing.T) {
	types := []QName{
		TypeString, TypeInt, TypeLong, TypeBoolean, TypeDouble,
		TypeDateTime, TypeBase64Binary, XSD("hexBinary"), XSD("duration"),
		TypeQNameType, XSD("date"), XSD("time"), XSD("unsignedLong"),
	}
	f := func(s string) bool {
		for _, q := range types {
			_ = ValidLexical(q, s)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
