// Package xsd implements a compact object model for the subset of XML
// Schema (XSD 1.0) that WSDL 1.1 documents embed in their <types>
// section, together with XML serialization, parsing, and reference
// resolution.
//
// The model is deliberately structural: it captures exactly the schema
// shapes that web service framework emitters produce when mapping a
// native language type (a Java or C# class) to a service interface —
// global element declarations, complex types with sequences, attribute
// declarations, wildcard particles (xs:any), and cross-namespace
// references. Those shapes are what downstream artifact generators and
// WS-I compliance checkers consume, so fidelity here determines the
// fidelity of the whole interoperability pipeline.
package xsd

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Namespace constants used throughout the schema and WSDL layers.
const (
	// NamespaceXSD is the XML Schema definition namespace.
	NamespaceXSD = "http://www.w3.org/2001/XMLSchema"
	// NamespaceXSI is the XML Schema instance namespace.
	NamespaceXSI = "http://www.w3.org/2001/XMLSchema-instance"
	// NamespaceXML is the reserved xml: namespace (xml:lang et al.).
	NamespaceXML = "http://www.w3.org/XML/1998/namespace"
)

// QName is a qualified XML name: a local name within a namespace.
type QName struct {
	Space string `json:"space"`
	Local string `json:"local"`
}

// String renders the QName in Clark notation ({ns}local), the
// conventional unambiguous textual form.
func (q QName) String() string {
	if q.Space == "" {
		return q.Local
	}
	return "{" + q.Space + "}" + q.Local
}

// IsZero reports whether the QName is entirely empty.
func (q QName) IsZero() bool { return q.Space == "" && q.Local == "" }

// XSD builds a QName in the XML Schema namespace. It is the idiomatic
// way to reference built-in simple types such as xs:string.
func XSD(local string) QName { return QName{Space: NamespaceXSD, Local: local} }

// Builtin simple types referenced by framework type mappings.
var (
	TypeString       = XSD("string")
	TypeInt          = XSD("int")
	TypeLong         = XSD("long")
	TypeShort        = XSD("short")
	TypeByte         = XSD("byte")
	TypeBoolean      = XSD("boolean")
	TypeFloat        = XSD("float")
	TypeDouble       = XSD("double")
	TypeDecimal      = XSD("decimal")
	TypeDateTime     = XSD("dateTime")
	TypeBase64Binary = XSD("base64Binary")
	TypeAnyType      = XSD("anyType")
	TypeQNameType    = XSD("QName")
)

// builtinLocals is the set of built-in simple type local names the
// resolver accepts without a schema-level declaration.
var builtinLocals = map[string]bool{
	"string": true, "int": true, "long": true, "short": true,
	"byte": true, "boolean": true, "float": true, "double": true,
	"decimal": true, "dateTime": true, "date": true, "time": true,
	"base64Binary": true, "hexBinary": true, "anyType": true,
	"anySimpleType": true, "anyURI": true, "QName": true,
	"integer": true, "unsignedByte": true, "unsignedShort": true,
	"unsignedInt": true, "unsignedLong": true, "duration": true,
	"normalizedString": true, "token": true, "language": true,
}

// IsBuiltin reports whether q names an XSD built-in simple type.
func IsBuiltin(q QName) bool {
	return q.Space == NamespaceXSD && builtinLocals[q.Local]
}

// Occurs describes particle cardinality. Max < 0 means "unbounded".
type Occurs struct {
	Min int `json:"min"`
	Max int `json:"max"`
}

// Once is the default cardinality (1..1).
var Once = Occurs{Min: 1, Max: 1}

// Optional is the 0..1 cardinality used for nillable bean properties.
var Optional = Occurs{Min: 0, Max: 1}

// Unbounded is the 0..unbounded cardinality used for collections.
var Unbounded = Occurs{Min: 0, Max: -1}

// Element is an element declaration or particle. Exactly one of
// Name/Type, Name/inline complex type, or Ref is populated:
//
//   - a named element with Type referencing a global or built-in type,
//   - a named element with an anonymous inline ComplexType,
//   - a reference particle (Ref) pointing at a global element, possibly
//     in another namespace — the shape behind the classic unresolved
//     "s:schema" reference that WCF DataSet WSDLs carry.
type Element struct {
	Name     string       `json:"name,omitempty"`
	Type     QName        `json:"type,omitempty"`
	Ref      QName        `json:"ref,omitempty"`
	Inline   *ComplexType `json:"inline,omitempty"`
	Occurs   Occurs       `json:"occurs"`
	Nillable bool         `json:"nillable,omitempty"`
}

// Attribute is an attribute declaration. Ref is used for references to
// attributes in foreign namespaces (e.g. xml:lang).
type Attribute struct {
	Name string `json:"name,omitempty"`
	Type QName  `json:"type,omitempty"`
	Ref  QName  `json:"ref,omitempty"`
}

// AnyParticle is an xs:any wildcard inside a sequence.
type AnyParticle struct {
	Namespace       string `json:"namespace,omitempty"`       // e.g. "##any", "##other"
	ProcessContents string `json:"processContents,omitempty"` // "lax", "skip", "strict"
	Occurs          Occurs `json:"occurs"`
}

// ComplexType is a named or anonymous complex type whose content model
// is a single xs:sequence (the only content model WS framework
// emitters produce for bean-style mappings), plus attributes.
type ComplexType struct {
	Name       string        `json:"name,omitempty"`
	Sequence   []Element     `json:"sequence,omitempty"`
	Any        []AnyParticle `json:"any,omitempty"`
	Attributes []Attribute   `json:"attributes,omitempty"`
	Abstract   bool          `json:"abstract,omitempty"`
	// Base, when set, models derivation by extension.
	Base QName `json:"base,omitempty"`
}

// SimpleType is a named simple type restriction. Facets carries
// restriction facet names; non-standard facets (outside the XSD
// vocabulary) are how certain emitters break WS-I compliance.
type SimpleType struct {
	Name   string  `json:"name"`
	Base   QName   `json:"base"`
	Facets []Facet `json:"facets,omitempty"`
}

// Facet is a single restriction facet. Standard facet names are those
// of XSD (enumeration, pattern, length, ...); anything else marks the
// schema as non-standard.
type Facet struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// standardFacets is the XSD 1.0 restriction facet vocabulary.
var standardFacets = map[string]bool{
	"length": true, "minLength": true, "maxLength": true,
	"pattern": true, "enumeration": true, "whiteSpace": true,
	"maxInclusive": true, "maxExclusive": true,
	"minInclusive": true, "minExclusive": true,
	"totalDigits": true, "fractionDigits": true,
}

// IsStandardFacet reports whether name is part of the XSD facet
// vocabulary.
func IsStandardFacet(name string) bool { return standardFacets[name] }

// Schema is one xs:schema block: a target namespace with global
// elements, complex types and simple types, plus import declarations.
type Schema struct {
	TargetNamespace    string        `json:"targetNamespace"`
	ElementFormDefault string        `json:"elementFormDefault,omitempty"`
	Imports            []Import      `json:"imports,omitempty"`
	Elements           []Element     `json:"elements,omitempty"`
	ComplexTypes       []ComplexType `json:"complexTypes,omitempty"`
	SimpleTypes        []SimpleType  `json:"simpleTypes,omitempty"`
}

// Import is an xs:import declaration. A SchemaLocation may be empty,
// which is legal XSD but is precisely what makes some references
// unresolvable for artifact generators.
type Import struct {
	Namespace      string `json:"namespace"`
	SchemaLocation string `json:"schemaLocation,omitempty"`
}

// SchemaSet is the collection of schema blocks embedded in one WSDL
// <types> section, indexed for resolution.
type SchemaSet struct {
	Schemas []*Schema
}

// NewSchemaSet builds a SchemaSet over the given schemas. The slice is
// copied so later caller mutations do not alias the set.
func NewSchemaSet(schemas ...*Schema) *SchemaSet {
	cp := make([]*Schema, len(schemas))
	copy(cp, schemas)
	return &SchemaSet{Schemas: cp}
}

// SchemaFor returns the schema block declaring the given target
// namespace, or nil.
func (s *SchemaSet) SchemaFor(ns string) *Schema {
	for _, sch := range s.Schemas {
		if sch.TargetNamespace == ns {
			return sch
		}
	}
	return nil
}

// Element looks up a global element declaration by qualified name.
func (s *SchemaSet) Element(q QName) (*Element, bool) {
	sch := s.SchemaFor(q.Space)
	if sch == nil {
		return nil, false
	}
	for i := range sch.Elements {
		if sch.Elements[i].Name == q.Local {
			return &sch.Elements[i], true
		}
	}
	return nil, false
}

// ComplexType looks up a global complex type by qualified name.
func (s *SchemaSet) ComplexType(q QName) (*ComplexType, bool) {
	sch := s.SchemaFor(q.Space)
	if sch == nil {
		return nil, false
	}
	for i := range sch.ComplexTypes {
		if sch.ComplexTypes[i].Name == q.Local {
			return &sch.ComplexTypes[i], true
		}
	}
	return nil, false
}

// SimpleType looks up a global simple type by qualified name.
func (s *SchemaSet) SimpleType(q QName) (*SimpleType, bool) {
	sch := s.SchemaFor(q.Space)
	if sch == nil {
		return nil, false
	}
	for i := range sch.SimpleTypes {
		if sch.SimpleTypes[i].Name == q.Local {
			return &sch.SimpleTypes[i], true
		}
	}
	return nil, false
}

// TypeExists reports whether q resolves to a built-in, complex, or
// simple type within the set.
func (s *SchemaSet) TypeExists(q QName) bool {
	if IsBuiltin(q) {
		return true
	}
	if _, ok := s.ComplexType(q); ok {
		return true
	}
	_, ok := s.SimpleType(q)
	return ok
}

// UnresolvedError reports a dangling reference discovered during
// schema resolution.
type UnresolvedError struct {
	Kind string // "element", "type", or "attribute"
	Ref  QName
	From string // context description
}

// Error implements the error interface.
func (e *UnresolvedError) Error() string {
	return fmt.Sprintf("unresolved %s reference %s (referenced from %s)", e.Kind, e.Ref, e.From)
}

// ErrEmptySchemaSet is returned when resolving a set with no schemas.
var ErrEmptySchemaSet = errors.New("xsd: schema set contains no schemas")

// Resolve walks every reference in the set and returns one
// UnresolvedError per dangling element/type/attribute reference. A nil
// slice means the set is fully resolvable. References into namespaces
// covered by an import with a schemaLocation are assumed external and
// resolvable; imports without a location do not vouch for anything —
// matching how real artifact generators behave (and fail).
func (s *SchemaSet) Resolve() ([]*UnresolvedError, error) {
	if len(s.Schemas) == 0 {
		return nil, ErrEmptySchemaSet
	}
	for i, sch := range s.Schemas {
		if sch == nil {
			return nil, fmt.Errorf("xsd: schema set entry %d is nil", i)
		}
	}
	var unresolved []*UnresolvedError
	for _, sch := range s.Schemas {
		var located map[string]bool
		for _, imp := range sch.Imports {
			if imp.SchemaLocation != "" {
				if located == nil {
					located = make(map[string]bool, len(sch.Imports))
				}
				located[imp.Namespace] = true
			}
		}
		ctx := &resolveContext{set: s, located: located}
		if ctx.schemaClean(sch) {
			// Every reference resolves: skip the error pass and the
			// location strings it would build.
			continue
		}
		for i := range sch.Elements {
			unresolved = append(unresolved, ctx.checkElement(&sch.Elements[i], "global element "+sch.Elements[i].Name)...)
		}
		for i := range sch.ComplexTypes {
			ct := &sch.ComplexTypes[i]
			unresolved = append(unresolved, ctx.checkComplexType(ct, "complexType "+ct.Name)...)
		}
		for i := range sch.SimpleTypes {
			st := &sch.SimpleTypes[i]
			if !st.Base.IsZero() && !s.TypeExists(st.Base) && !located[st.Base.Space] {
				unresolved = append(unresolved, &UnresolvedError{Kind: "type", Ref: st.Base, From: "simpleType " + st.Name})
			}
		}
	}
	return unresolved, nil
}

type resolveContext struct {
	set     *SchemaSet
	located map[string]bool
}

func (c *resolveContext) vouched(ns string) bool {
	return c.located[ns] || ns == NamespaceXSD
}

// schemaClean reports whether every reference in the schema resolves —
// the allocation-free probe Resolve runs before the error-building
// pass, mirroring its conditions exactly.
func (c *resolveContext) schemaClean(sch *Schema) bool {
	for i := range sch.Elements {
		if !c.elementClean(&sch.Elements[i]) {
			return false
		}
	}
	for i := range sch.ComplexTypes {
		if !c.complexTypeClean(&sch.ComplexTypes[i]) {
			return false
		}
	}
	for i := range sch.SimpleTypes {
		st := &sch.SimpleTypes[i]
		if !st.Base.IsZero() && !c.set.TypeExists(st.Base) && !c.located[st.Base.Space] {
			return false
		}
	}
	return true
}

func (c *resolveContext) elementClean(el *Element) bool {
	switch {
	case !el.Ref.IsZero():
		_, ok := c.set.Element(el.Ref)
		vouched := c.located[el.Ref.Space] && el.Ref.Space != NamespaceXSD
		return ok || vouched
	case el.Inline != nil:
		return c.complexTypeClean(el.Inline)
	case !el.Type.IsZero():
		return c.set.TypeExists(el.Type) || c.vouched(el.Type.Space)
	}
	return true
}

func (c *resolveContext) complexTypeClean(ct *ComplexType) bool {
	if !ct.Base.IsZero() {
		if _, ok := c.set.ComplexType(ct.Base); !ok && !c.vouched(ct.Base.Space) {
			return false
		}
	}
	for i := range ct.Sequence {
		if !c.elementClean(&ct.Sequence[i]) {
			return false
		}
	}
	for _, at := range ct.Attributes {
		if !at.Ref.IsZero() {
			if at.Ref.Space != NamespaceXML && !c.vouched(at.Ref.Space) {
				return false
			}
		} else if !at.Type.IsZero() && !c.set.TypeExists(at.Type) && !c.vouched(at.Type.Space) {
			return false
		}
	}
	return true
}

func (c *resolveContext) checkElement(el *Element, from string) []*UnresolvedError {
	var out []*UnresolvedError
	switch {
	case !el.Ref.IsZero():
		// Element references are never vouched for by the XML Schema
		// namespace itself: xs:schema is not a declarable element, so a
		// reference to it (the WCF DataSet construct) is always
		// dangling regardless of imports.
		_, ok := c.set.Element(el.Ref)
		vouched := c.located[el.Ref.Space] && el.Ref.Space != NamespaceXSD
		if !ok && !vouched {
			out = append(out, &UnresolvedError{Kind: "element", Ref: el.Ref, From: from})
		}
	case el.Inline != nil:
		out = append(out, c.checkComplexType(el.Inline, from+" (inline type)")...)
	case !el.Type.IsZero():
		if !c.set.TypeExists(el.Type) && !c.vouched(el.Type.Space) {
			out = append(out, &UnresolvedError{Kind: "type", Ref: el.Type, From: from})
		}
	}
	return out
}

func (c *resolveContext) checkComplexType(ct *ComplexType, from string) []*UnresolvedError {
	var out []*UnresolvedError
	if !ct.Base.IsZero() {
		if _, ok := c.set.ComplexType(ct.Base); !ok && !c.vouched(ct.Base.Space) {
			out = append(out, &UnresolvedError{Kind: "type", Ref: ct.Base, From: from + " (base)"})
		}
	}
	for i := range ct.Sequence {
		out = append(out, c.checkElement(&ct.Sequence[i], from)...)
	}
	for _, at := range ct.Attributes {
		if !at.Ref.IsZero() {
			if at.Ref.Space != NamespaceXML && !c.vouched(at.Ref.Space) {
				out = append(out, &UnresolvedError{Kind: "attribute", Ref: at.Ref, From: from})
			}
		} else if !at.Type.IsZero() && !c.set.TypeExists(at.Type) && !c.vouched(at.Type.Space) {
			out = append(out, &UnresolvedError{Kind: "type", Ref: at.Type, From: from + " attribute " + at.Name})
		}
	}
	return out
}

// HasNonStandardFacets reports whether any simple type in the set uses
// a facet outside the XSD vocabulary.
func (s *SchemaSet) HasNonStandardFacets() bool {
	for _, sch := range s.Schemas {
		for _, st := range sch.SimpleTypes {
			for _, f := range st.Facets {
				if !IsStandardFacet(f.Name) {
					return true
				}
			}
		}
	}
	return false
}

// HasWildcard reports whether any complex type (global or inline)
// contains an xs:any wildcard particle.
func (s *SchemaSet) HasWildcard() bool {
	for _, sch := range s.Schemas {
		for i := range sch.ComplexTypes {
			if complexHasWildcard(&sch.ComplexTypes[i]) {
				return true
			}
		}
		for i := range sch.Elements {
			if sch.Elements[i].Inline != nil && complexHasWildcard(sch.Elements[i].Inline) {
				return true
			}
		}
	}
	return false
}

func complexHasWildcard(ct *ComplexType) bool {
	if len(ct.Any) > 0 {
		return true
	}
	for i := range ct.Sequence {
		if ct.Sequence[i].Inline != nil && complexHasWildcard(ct.Sequence[i].Inline) {
			return true
		}
	}
	return false
}

// GlobalNames returns the sorted list of all global declaration names
// (elements and types) across the set; useful for deterministic
// artifact generation.
func (s *SchemaSet) GlobalNames() []string {
	var names []string
	for _, sch := range s.Schemas {
		for _, e := range sch.Elements {
			names = append(names, e.Name)
		}
		for _, ct := range sch.ComplexTypes {
			names = append(names, ct.Name)
		}
		for _, st := range sch.SimpleTypes {
			names = append(names, st.Name)
		}
	}
	sort.Strings(names)
	return names
}

// Clone produces a deep copy of the schema, so emitters can hand out
// documents without aliasing internal state.
func (sch *Schema) Clone() *Schema {
	cp := &Schema{
		TargetNamespace:    sch.TargetNamespace,
		ElementFormDefault: sch.ElementFormDefault,
		Imports:            append([]Import(nil), sch.Imports...),
	}
	cp.Elements = cloneElements(sch.Elements)
	cp.ComplexTypes = make([]ComplexType, len(sch.ComplexTypes))
	for i := range sch.ComplexTypes {
		cp.ComplexTypes[i] = *cloneComplexType(&sch.ComplexTypes[i])
	}
	cp.SimpleTypes = make([]SimpleType, len(sch.SimpleTypes))
	for i, st := range sch.SimpleTypes {
		cp.SimpleTypes[i] = SimpleType{Name: st.Name, Base: st.Base, Facets: append([]Facet(nil), st.Facets...)}
	}
	return cp
}

func cloneElements(els []Element) []Element {
	if els == nil {
		return nil
	}
	out := make([]Element, len(els))
	for i, e := range els {
		out[i] = e
		if e.Inline != nil {
			out[i].Inline = cloneComplexType(e.Inline)
		}
	}
	return out
}

func cloneComplexType(ct *ComplexType) *ComplexType {
	cp := &ComplexType{
		Name:       ct.Name,
		Abstract:   ct.Abstract,
		Base:       ct.Base,
		Any:        append([]AnyParticle(nil), ct.Any...),
		Attributes: append([]Attribute(nil), ct.Attributes...),
	}
	cp.Sequence = cloneElements(ct.Sequence)
	return cp
}

// SanitizeNCName converts an arbitrary identifier into a valid XML
// NCName by replacing illegal characters with underscores. Framework
// emitters apply this to language-level class names.
func SanitizeNCName(name string) string {
	if name == "" {
		return "_"
	}
	// Fast path: most names are already clean ASCII identifiers, in
	// which case the input is returned unchanged with no allocation.
	clean := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case (c == '-' || c == '.') && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			clean = false
		}
		if !clean {
			break
		}
	}
	if clean {
		return name
	}
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == '-' || r == '.' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && (r == '-' || r == '.') {
			ok = false
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}
