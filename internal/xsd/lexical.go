package xsd

import (
	"encoding/base64"
	"strconv"
	"strings"
	"time"
)

// Lexical validation of simple-type values. The Execution step of the
// inter-operation lifecycle deserializes message payloads against the
// service schema; this file provides the value-space checks the
// transport runtime applies to incoming payloads, covering the
// built-in types the framework emitters map bean properties to.

// ValidLexical reports whether value is a valid lexical form of the
// built-in simple type q. Unknown or non-XSD types accept any value
// (they map to anyType-style handling in every framework of the
// study).
func ValidLexical(q QName, value string) bool {
	if q.Space != NamespaceXSD {
		return true
	}
	switch q.Local {
	case "string", "anyType", "anySimpleType", "anyURI",
		"normalizedString", "token", "language":
		return true
	case "int":
		v, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64)
		return err == nil && v >= -2147483648 && v <= 2147483647
	case "long", "integer":
		_, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64)
		return err == nil
	case "short":
		v, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64)
		return err == nil && v >= -32768 && v <= 32767
	case "byte":
		v, err := strconv.ParseInt(strings.TrimSpace(value), 10, 64)
		return err == nil && v >= -128 && v <= 127
	case "unsignedByte", "unsignedShort", "unsignedInt", "unsignedLong":
		_, err := strconv.ParseUint(strings.TrimSpace(value), 10, 64)
		return err == nil
	case "boolean":
		switch strings.TrimSpace(value) {
		case "true", "false", "1", "0":
			return true
		}
		return false
	case "float", "double", "decimal":
		_, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
		return err == nil
	case "dateTime":
		return validDateTime(strings.TrimSpace(value))
	case "date":
		_, err := time.Parse("2006-01-02", strings.TrimSpace(value))
		return err == nil
	case "time":
		_, err := time.Parse("15:04:05", strings.TrimSpace(value))
		return err == nil
	case "base64Binary":
		_, err := base64.StdEncoding.DecodeString(strings.TrimSpace(value))
		return err == nil
	case "hexBinary":
		s := strings.TrimSpace(value)
		if len(s)%2 != 0 {
			return false
		}
		for _, r := range s {
			ok := (r >= '0' && r <= '9') || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
			if !ok {
				return false
			}
		}
		return true
	case "duration":
		return strings.HasPrefix(strings.TrimSpace(value), "P") ||
			strings.HasPrefix(strings.TrimSpace(value), "-P")
	case "QName":
		s := strings.TrimSpace(value)
		return s != "" && !strings.HasPrefix(s, ":") && !strings.HasSuffix(s, ":") &&
			strings.Count(s, ":") <= 1
	default:
		return true
	}
}

// validDateTime accepts the XSD dateTime lexical space: ISO 8601 with
// optional fractional seconds and optional zone designator.
func validDateTime(s string) bool {
	layouts := []string{
		"2006-01-02T15:04:05",
		"2006-01-02T15:04:05Z07:00",
		"2006-01-02T15:04:05.999999999",
		"2006-01-02T15:04:05.999999999Z07:00",
	}
	for _, layout := range layouts {
		if _, err := time.Parse(layout, s); err == nil {
			return true
		}
	}
	return false
}
