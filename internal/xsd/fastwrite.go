package xsd

import (
	"bytes"
	"strconv"
	"unicode/utf8"
)

// This file is the hand-rolled schema serializer. MarshalSchema used to
// build the wire structs of xmlio.go and hand them to encoding/xml's
// reflection encoder; at campaign scale that encoder dominated the
// publish hot path (~40% of a full run's CPU). The writer below emits
// the schema directly, byte-for-byte identical to the reference
// encoder — a property the shape-template verification, the checkpoint
// journal's re-split on resume, and the golden tests all depend on.
// MarshalSchemaReference keeps the old path alive as the differential
// oracle; TestMarshalSchemaMatchesReference (and its full-corpus
// variant) prove the two agree over every published document.

// indentUnit is the per-depth indentation the reference encoder was
// configured with (xml.Encoder.Indent("", "  ")).
const indentUnit = "  "

// MarshalSchemaTo serializes one schema block directly into buf, each
// line prefixed with basePrefix — the allocation-free form of
// MarshalSchema used by the WSDL writer, which embeds schema blocks at
// a fixed indentation. The output carries no trailing newline, exactly
// like the reference encoder's.
func MarshalSchemaTo(buf *bytes.Buffer, sch *Schema, pt *PrefixTable, basePrefix string) error {
	if pt == nil {
		pt = AcquirePrefixTable(sch.TargetNamespace)
		defer ReleasePrefixTable(pt)
	}
	// Pre-assign foreign-namespace prefixes in the order the reference
	// encoder's wire-struct construction resolves them (sequence refs
	// before attribute refs before the extension base), so q1..qN land
	// on the same namespaces.
	assignSchemaPrefixes(sch, pt)
	w := schemaWriter{buf: buf, base: basePrefix, first: true}
	return w.schema(sch, pt)
}

// MarshalSchema serializes one schema block to XML. The prefix table
// may be shared with an enclosing WSDL writer; pass nil to create a
// fresh one.
func MarshalSchema(sch *Schema, pt *PrefixTable) ([]byte, error) {
	buf := schemaBufs.Get().(*bytes.Buffer)
	defer schemaBufs.Put(buf)
	buf.Reset()
	if err := MarshalSchemaTo(buf, sch, pt, ""); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// assignSchemaPrefixes walks the schema's qualified references in
// reference-encoder order, assigning q-prefixes for foreign namespaces.
func assignSchemaPrefixes(sch *Schema, pt *PrefixTable) {
	for i := range sch.SimpleTypes {
		pt.Note(sch.SimpleTypes[i].Base)
	}
	for i := range sch.ComplexTypes {
		assignComplexTypePrefixes(&sch.ComplexTypes[i], pt)
	}
	for i := range sch.Elements {
		assignElementPrefixes(&sch.Elements[i], pt)
	}
}

func assignElementPrefixes(el *Element, pt *PrefixTable) {
	pt.Note(el.Type)
	pt.Note(el.Ref)
	if el.Inline != nil {
		assignComplexTypePrefixes(el.Inline, pt)
	}
}

func assignComplexTypePrefixes(ct *ComplexType, pt *PrefixTable) {
	for i := range ct.Sequence {
		assignElementPrefixes(&ct.Sequence[i], pt)
	}
	for i := range ct.Attributes {
		pt.Note(ct.Attributes[i].Type)
		pt.Note(ct.Attributes[i].Ref)
	}
	pt.Note(ct.Base)
}

// schemaWriter emits indented XML lines. Every element starts on its
// own line (no newline before the very first); an element without
// child elements closes on the same line, matching the reference
// encoder's layout.
type schemaWriter struct {
	buf   *bytes.Buffer
	base  string
	first bool
}

var indentPad = []byte("                                                                ")

// line starts a new output line at the given depth.
func (w *schemaWriter) line(depth int) {
	if w.first {
		w.first = false
	} else {
		w.buf.WriteByte('\n')
	}
	w.buf.WriteString(w.base)
	for n := depth * len(indentUnit); n > 0; {
		c := n
		if c > len(indentPad) {
			c = len(indentPad)
		}
		w.buf.Write(indentPad[:c])
		n -= c
	}
}

// qref writes one qualified-reference attribute straight from the
// QName — the same bytes attr(name, pt.Ref(q)) produces, without
// materializing the prefix:local string. An attribute whose QName is
// zero is omitted, mirroring the callers' `if ref != ""` guards.
func (w *schemaWriter) qref(name string, pt *PrefixTable, q QName) {
	if q.IsZero() {
		return
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(name)
	w.buf.WriteString(`="`)
	if q.Space != "" {
		xmlEscapeTo(w.buf, pt.Prefix(q.Space))
		w.buf.WriteByte(':')
	}
	xmlEscapeTo(w.buf, q.Local)
	w.buf.WriteByte('"')
}

// attr writes one attribute with XML-escaped value.
func (w *schemaWriter) attr(name, value string) {
	w.buf.WriteByte(' ')
	w.buf.WriteString(name)
	w.buf.WriteString(`="`)
	xmlEscapeTo(w.buf, value)
	w.buf.WriteByte('"')
}

func (w *schemaWriter) schema(sch *Schema, pt *PrefixTable) error {
	w.line(0)
	w.buf.WriteString(`<schema xmlns="` + NamespaceXSD + `"`)
	if sch.TargetNamespace != "" {
		w.attr("targetNamespace", sch.TargetNamespace)
	}
	if sch.ElementFormDefault != "" {
		w.attr("elementFormDefault", sch.ElementFormDefault)
	}
	for i, ns := range pt.ns {
		if ns == NamespaceXML {
			continue
		}
		w.buf.WriteString(" xmlns:")
		w.buf.WriteString(pt.prefix[i])
		w.buf.WriteString(`="`)
		xmlEscapeTo(w.buf, ns)
		w.buf.WriteByte('"')
	}
	w.buf.WriteByte('>')

	if len(sch.Imports) == 0 && len(sch.SimpleTypes) == 0 &&
		len(sch.ComplexTypes) == 0 && len(sch.Elements) == 0 {
		// Childless schema: the reference encoder closes on the same line.
		w.buf.WriteString("</schema>")
		return nil
	}

	for i := range sch.Imports {
		imp := &sch.Imports[i]
		w.line(1)
		w.buf.WriteString("<import")
		w.attr("namespace", imp.Namespace)
		if imp.SchemaLocation != "" {
			w.attr("schemaLocation", imp.SchemaLocation)
		}
		w.buf.WriteString("></import>")
	}
	for i := range sch.SimpleTypes {
		if err := w.simpleType(&sch.SimpleTypes[i], pt); err != nil {
			return err
		}
	}
	for i := range sch.ComplexTypes {
		w.complexType(&sch.ComplexTypes[i], pt, 1, true)
	}
	for i := range sch.Elements {
		w.element(&sch.Elements[i], pt, 1)
	}

	w.line(0)
	w.buf.WriteString("</schema>")
	return nil
}

func (w *schemaWriter) simpleType(st *SimpleType, pt *PrefixTable) error {
	w.line(1)
	w.buf.WriteString("<simpleType")
	w.attr("name", st.Name)
	w.buf.WriteByte('>')
	w.line(2)
	w.buf.WriteString("<restriction")
	if st.Base.IsZero() {
		// The reference path emits base="" for a zero QName.
		w.attr("base", "")
	} else {
		w.qref("base", pt, st.Base)
	}
	w.buf.WriteByte('>')
	for _, f := range st.Facets {
		// The reference encoder emits the facet element name verbatim —
		// no validation, no escaping — and re-declares the XSD namespace
		// on each (the wire xml.Name carries an explicit Space). A facet
		// with an empty name falls back to the wire field name, with no
		// namespace re-declaration. Replicate both quirks.
		name := f.Name
		w.line(3)
		w.buf.WriteByte('<')
		if name == "" {
			name = "Inner"
			w.buf.WriteString(name)
		} else {
			w.buf.WriteString(name)
			w.attr("xmlns", NamespaceXSD)
		}
		w.attr("value", f.Value)
		w.buf.WriteString("></")
		w.buf.WriteString(name)
		w.buf.WriteByte('>')
	}
	if len(st.Facets) > 0 {
		w.line(2)
	}
	w.buf.WriteString("</restriction>")
	w.line(1)
	w.buf.WriteString("</simpleType>")
	return nil
}

// complexType writes one complexType block. named=false is the inline
// (anonymous) form, whose name attribute the reference path clears.
func (w *schemaWriter) complexType(ct *ComplexType, pt *PrefixTable, depth int, named bool) {
	w.line(depth)
	w.buf.WriteString("<complexType")
	if named && ct.Name != "" {
		w.attr("name", ct.Name)
	}
	if ct.Abstract {
		w.attr("abstract", "true")
	}
	w.buf.WriteByte('>')

	hasSeq := len(ct.Sequence) > 0 || len(ct.Any) > 0
	if !ct.Base.IsZero() {
		// complexContent>extension: the sequence element is emitted even
		// when empty, mirroring the wire struct's always-set pointer.
		w.line(depth + 1)
		w.buf.WriteString("<complexContent>")
		w.line(depth + 2)
		w.buf.WriteString("<extension")
		w.qref("base", pt, ct.Base)
		w.buf.WriteByte('>')
		w.sequence(ct, pt, depth+3, true)
		w.attributes(ct, pt, depth+3)
		w.line(depth + 2)
		w.buf.WriteString("</extension>")
		w.line(depth + 1)
		w.buf.WriteString("</complexContent>")
		w.line(depth)
	} else {
		if hasSeq {
			w.sequence(ct, pt, depth+1, false)
		}
		w.attributes(ct, pt, depth+1)
		if hasSeq || len(ct.Attributes) > 0 {
			w.line(depth)
		}
	}
	w.buf.WriteString("</complexType>")
}

// sequence writes the sequence block; always=true emits an empty
// <sequence></sequence> (the extension form).
func (w *schemaWriter) sequence(ct *ComplexType, pt *PrefixTable, depth int, always bool) {
	empty := len(ct.Sequence) == 0 && len(ct.Any) == 0
	if empty && !always {
		return
	}
	w.line(depth)
	w.buf.WriteString("<sequence>")
	for i := range ct.Sequence {
		w.element(&ct.Sequence[i], pt, depth+1)
	}
	for i := range ct.Any {
		a := &ct.Any[i]
		w.line(depth + 1)
		w.buf.WriteString("<any")
		if a.Namespace != "" {
			w.attr("namespace", a.Namespace)
		}
		if a.ProcessContents != "" {
			w.attr("processContents", a.ProcessContents)
		}
		w.occurs(a.Occurs)
		w.buf.WriteString("></any>")
	}
	if !empty {
		w.line(depth)
	}
	w.buf.WriteString("</sequence>")
}

func (w *schemaWriter) attributes(ct *ComplexType, pt *PrefixTable, depth int) {
	for i := range ct.Attributes {
		at := &ct.Attributes[i]
		w.line(depth)
		w.buf.WriteString("<attribute")
		if at.Name != "" {
			w.attr("name", at.Name)
		}
		w.qref("type", pt, at.Type)
		w.qref("ref", pt, at.Ref)
		w.buf.WriteString("></attribute>")
	}
}

func (w *schemaWriter) element(el *Element, pt *PrefixTable, depth int) {
	w.line(depth)
	w.buf.WriteString("<element")
	if el.Name != "" {
		w.attr("name", el.Name)
	}
	w.qref("type", pt, el.Type)
	w.qref("ref", pt, el.Ref)
	w.occurs(el.Occurs)
	if el.Nillable {
		w.attr("nillable", "true")
	}
	w.buf.WriteByte('>')
	if el.Inline != nil {
		w.complexType(el.Inline, pt, depth+1, false)
		w.line(depth)
	}
	w.buf.WriteString("</element>")
}

// occurs writes the minOccurs/maxOccurs pair under the same condition
// the wire conversion uses: only when the value is neither Once nor the
// zero Occurs.
func (w *schemaWriter) occurs(oc Occurs) {
	if oc == Once || oc == (Occurs{}) {
		return
	}
	w.attr("minOccurs", strconv.Itoa(oc.Min))
	if oc.Max < 0 {
		w.attr("maxOccurs", "unbounded")
	} else {
		w.attr("maxOccurs", strconv.Itoa(oc.Max))
	}
}

// xmlEscapeTo writes s with the exact escaping xml.EscapeText applies
// inside attribute values: the five XML specials, the three whitespace
// controls, and U+FFFD for bytes outside the XML character range.
func xmlEscapeTo(buf *bytes.Buffer, s string) {
	last := 0
	for i := 0; i < len(s); {
		r, width := utf8.DecodeRuneInString(s[i:])
		var esc string
		switch r {
		case '"':
			esc = "&#34;"
		case '\'':
			esc = "&#39;"
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			if !isInCharacterRange(r) || (r == utf8.RuneError && width == 1) {
				esc = "�"
				break
			}
			i += width
			continue
		}
		buf.WriteString(s[last:i])
		buf.WriteString(esc)
		i += width
		last = i
	}
	buf.WriteString(s[last:])
}

// isInCharacterRange mirrors encoding/xml's XML character production.
func isInCharacterRange(r rune) bool {
	return r == 0x09 ||
		r == 0x0A ||
		r == 0x0D ||
		r >= 0x20 && r <= 0xD7FF ||
		r >= 0xE000 && r <= 0xFFFD ||
		r >= 0x10000 && r <= 0x10FFFF
}
