package xsd

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestQNameString(t *testing.T) {
	tests := []struct {
		name string
		q    QName
		want string
	}{
		{"full", QName{Space: "http://ns/", Local: "foo"}, "{http://ns/}foo"},
		{"local only", QName{Local: "foo"}, "foo"},
		{"zero", QName{}, ""},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.q.String(); got != tt.want {
				t.Errorf("String() = %q, want %q", got, tt.want)
			}
		})
	}
}

func TestQNameIsZero(t *testing.T) {
	if !(QName{}).IsZero() {
		t.Error("empty QName should be zero")
	}
	if (QName{Local: "x"}).IsZero() {
		t.Error("QName with local name should not be zero")
	}
	if (QName{Space: "ns"}).IsZero() {
		t.Error("QName with namespace should not be zero")
	}
}

func TestIsBuiltin(t *testing.T) {
	tests := []struct {
		q    QName
		want bool
	}{
		{TypeString, true},
		{TypeInt, true},
		{TypeDateTime, true},
		{XSD("schema"), false}, // xs:schema is an element, not a type
		{QName{Space: "http://other/", Local: "string"}, false},
		{QName{Space: NamespaceXSD, Local: "noSuchType"}, false},
	}
	for _, tt := range tests {
		if got := IsBuiltin(tt.q); got != tt.want {
			t.Errorf("IsBuiltin(%s) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestIsStandardFacet(t *testing.T) {
	for _, name := range []string{"pattern", "enumeration", "minLength", "totalDigits"} {
		if !IsStandardFacet(name) {
			t.Errorf("IsStandardFacet(%q) = false, want true", name)
		}
	}
	for _, name := range []string{"jaxb-format", "cxf-format", ""} {
		if IsStandardFacet(name) {
			t.Errorf("IsStandardFacet(%q) = true, want false", name)
		}
	}
}

func testSchema() *Schema {
	return &Schema{
		TargetNamespace:    "http://example.test/",
		ElementFormDefault: "qualified",
		ComplexTypes: []ComplexType{
			{
				Name: "Widget",
				Sequence: []Element{
					{Name: "name", Type: TypeString, Occurs: Optional},
					{Name: "size", Type: TypeInt, Occurs: Once},
					{Name: "child", Type: QName{Space: "http://example.test/", Local: "Part"}, Occurs: Optional},
				},
			},
			{
				Name: "Part",
				Sequence: []Element{
					{Name: "id", Type: TypeLong, Occurs: Once},
				},
			},
		},
		Elements: []Element{
			{
				Name: "echo",
				Inline: &ComplexType{
					Sequence: []Element{
						{Name: "input", Type: QName{Space: "http://example.test/", Local: "Widget"}, Occurs: Once},
					},
				},
			},
		},
	}
}

func TestSchemaSetLookups(t *testing.T) {
	set := NewSchemaSet(testSchema())
	tns := "http://example.test/"

	if _, ok := set.ComplexType(QName{Space: tns, Local: "Widget"}); !ok {
		t.Error("ComplexType(Widget) not found")
	}
	if _, ok := set.ComplexType(QName{Space: tns, Local: "Gadget"}); ok {
		t.Error("ComplexType(Gadget) unexpectedly found")
	}
	if _, ok := set.Element(QName{Space: tns, Local: "echo"}); !ok {
		t.Error("Element(echo) not found")
	}
	if _, ok := set.Element(QName{Space: "http://other/", Local: "echo"}); ok {
		t.Error("Element in foreign namespace unexpectedly found")
	}
	if !set.TypeExists(TypeString) {
		t.Error("TypeExists(xs:string) = false")
	}
	if !set.TypeExists(QName{Space: tns, Local: "Part"}) {
		t.Error("TypeExists(Part) = false")
	}
}

func TestResolveCleanSchema(t *testing.T) {
	set := NewSchemaSet(testSchema())
	unresolved, err := set.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(unresolved) != 0 {
		t.Errorf("expected no unresolved references, got %v", unresolved)
	}
}

func TestResolveEmptySet(t *testing.T) {
	if _, err := NewSchemaSet().Resolve(); err != ErrEmptySchemaSet {
		t.Errorf("Resolve on empty set = %v, want ErrEmptySchemaSet", err)
	}
}

func TestResolveDanglingElementRef(t *testing.T) {
	sch := testSchema()
	sch.ComplexTypes[0].Sequence = append(sch.ComplexTypes[0].Sequence, Element{
		Ref: QName{Space: "http://www.w3.org/2005/08/addressing", Local: "EndpointReference"},
	})
	unresolved, err := NewSchemaSet(sch).Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(unresolved) != 1 {
		t.Fatalf("expected 1 unresolved reference, got %d", len(unresolved))
	}
	if unresolved[0].Kind != "element" {
		t.Errorf("unresolved kind = %q, want element", unresolved[0].Kind)
	}
	if !strings.Contains(unresolved[0].Error(), "EndpointReference") {
		t.Errorf("error message %q should name the reference", unresolved[0].Error())
	}
}

func TestResolveImportWithLocationVouches(t *testing.T) {
	sch := testSchema()
	sch.Imports = []Import{{Namespace: "http://external/", SchemaLocation: "http://external/schema.xsd"}}
	sch.ComplexTypes[0].Sequence = append(sch.ComplexTypes[0].Sequence, Element{
		Ref: QName{Space: "http://external/", Local: "Thing"},
	})
	unresolved, err := NewSchemaSet(sch).Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(unresolved) != 0 {
		t.Errorf("located import should vouch for the reference; got %v", unresolved)
	}
}

func TestResolveImportWithoutLocationDoesNotVouch(t *testing.T) {
	sch := testSchema()
	sch.Imports = []Import{{Namespace: "http://external/"}}
	sch.ComplexTypes[0].Sequence = append(sch.ComplexTypes[0].Sequence, Element{
		Ref: QName{Space: "http://external/", Local: "Thing"},
	})
	unresolved, err := NewSchemaSet(sch).Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(unresolved) != 1 {
		t.Errorf("import without location must not vouch; got %v", unresolved)
	}
}

func TestResolveSchemaElementRefNeverResolves(t *testing.T) {
	// The WCF DataSet construct: a reference to xs:schema must stay
	// unresolved even when an import with a location names the XSD
	// namespace.
	sch := testSchema()
	sch.Imports = []Import{{Namespace: NamespaceXSD, SchemaLocation: "http://www.w3.org/2001/XMLSchema.xsd"}}
	sch.ComplexTypes[0].Sequence = append(sch.ComplexTypes[0].Sequence, Element{
		Ref: QName{Space: NamespaceXSD, Local: "schema"},
	})
	unresolved, err := NewSchemaSet(sch).Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(unresolved) != 1 {
		t.Errorf("xs:schema element reference must be unresolved, got %v", unresolved)
	}
}

func TestResolveDanglingTypeRef(t *testing.T) {
	sch := testSchema()
	sch.ComplexTypes[0].Sequence[2].Type = QName{Space: "http://example.test/", Local: "Missing"}
	unresolved, err := NewSchemaSet(sch).Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(unresolved) != 1 || unresolved[0].Kind != "type" {
		t.Errorf("expected 1 unresolved type, got %v", unresolved)
	}
}

func TestResolveForeignAttributeRef(t *testing.T) {
	sch := testSchema()
	// xml:lang is special-cased: structurally resolvable (the xml
	// namespace is built in) so it is not an unresolved reference —
	// the WS-I layer flags it instead.
	sch.ComplexTypes[0].Attributes = []Attribute{
		{Ref: QName{Space: NamespaceXML, Local: "lang"}},
	}
	unresolved, err := NewSchemaSet(sch).Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(unresolved) != 0 {
		t.Errorf("xml:lang should resolve structurally, got %v", unresolved)
	}

	sch.ComplexTypes[0].Attributes = []Attribute{
		{Ref: QName{Space: "http://foreign/", Local: "attr"}},
	}
	unresolved, err = NewSchemaSet(sch).Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(unresolved) != 1 || unresolved[0].Kind != "attribute" {
		t.Errorf("expected 1 unresolved attribute, got %v", unresolved)
	}
}

func TestHasNonStandardFacets(t *testing.T) {
	sch := testSchema()
	set := NewSchemaSet(sch)
	if set.HasNonStandardFacets() {
		t.Error("clean schema should have no non-standard facets")
	}
	sch.SimpleTypes = append(sch.SimpleTypes, SimpleType{
		Name: "Odd", Base: TypeString,
		Facets: []Facet{{Name: "jaxb-format", Value: "x"}},
	})
	if !set.HasNonStandardFacets() {
		t.Error("jaxb-format facet should be detected")
	}
}

func TestHasWildcard(t *testing.T) {
	sch := testSchema()
	set := NewSchemaSet(sch)
	if set.HasWildcard() {
		t.Error("clean schema should have no wildcard")
	}
	sch.ComplexTypes[1].Any = []AnyParticle{{Namespace: "##any"}}
	if !set.HasWildcard() {
		t.Error("wildcard should be detected")
	}
}

func TestHasWildcardNestedInline(t *testing.T) {
	sch := testSchema()
	sch.Elements[0].Inline.Sequence[0] = Element{
		Name: "wrapped",
		Inline: &ComplexType{
			Any: []AnyParticle{{Namespace: "##any"}},
		},
	}
	if !NewSchemaSet(sch).HasWildcard() {
		t.Error("wildcard nested in an inline type should be detected")
	}
}

func TestSchemaClone(t *testing.T) {
	orig := testSchema()
	cp := orig.Clone()
	cp.ComplexTypes[0].Sequence[0].Name = "mutated"
	cp.ComplexTypes[0].Name = "Mutated"
	if orig.ComplexTypes[0].Sequence[0].Name != "name" {
		t.Error("Clone aliases sequence storage")
	}
	if orig.ComplexTypes[0].Name != "Widget" {
		t.Error("Clone aliases complex type storage")
	}
}

func TestSchemaCloneInline(t *testing.T) {
	orig := testSchema()
	cp := orig.Clone()
	cp.Elements[0].Inline.Sequence[0].Name = "mutated"
	if orig.Elements[0].Inline.Sequence[0].Name != "input" {
		t.Error("Clone aliases inline type storage")
	}
}

func TestGlobalNamesSorted(t *testing.T) {
	set := NewSchemaSet(testSchema())
	names := set.GlobalNames()
	want := []string{"Part", "Widget", "echo"}
	if len(names) != len(want) {
		t.Fatalf("GlobalNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("GlobalNames[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestSanitizeNCName(t *testing.T) {
	tests := []struct{ in, want string }{
		{"EchoService", "EchoService"},
		{"java.util.BitSet", "java.util.BitSet"},
		{"has space", "has_space"},
		{"9starts", "_starts"},
		{"", "_"},
		{"-leading", "_leading"},
	}
	for _, tt := range tests {
		if got := SanitizeNCName(tt.in); got != tt.want {
			t.Errorf("SanitizeNCName(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

// TestSanitizeNCNameAlwaysValid is a property test: the output must
// always be a valid NCName regardless of input.
func TestSanitizeNCNameAlwaysValid(t *testing.T) {
	valid := func(s string) bool {
		out := SanitizeNCName(s)
		if out == "" {
			return false
		}
		for i, r := range out {
			ok := r == '_' || r == '-' || r == '.' ||
				(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
				(r >= '0' && r <= '9')
			if i == 0 && (r >= '0' && r <= '9' || r == '-' || r == '.') {
				return false
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(valid, nil); err != nil {
		t.Error(err)
	}
}

func TestOccursValues(t *testing.T) {
	if Once != (Occurs{Min: 1, Max: 1}) {
		t.Error("Once should be 1..1")
	}
	if Optional != (Occurs{Min: 0, Max: 1}) {
		t.Error("Optional should be 0..1")
	}
	if Unbounded.Max >= 0 {
		t.Error("Unbounded.Max should be negative")
	}
}
