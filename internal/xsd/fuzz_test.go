package xsd

import "testing"

// FuzzUnmarshalSchema exercises the schema parser with arbitrary
// bytes: no panics, and accepted schemas must survive a marshal /
// re-parse cycle.
func FuzzUnmarshalSchema(f *testing.F) {
	seed, err := MarshalSchema(testSchema(), nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`<schema xmlns="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:x"/>`))
	f.Add([]byte(`<schema xmlns="urn:not-xsd"><element type="und:ef"/></schema>`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		sch, err := UnmarshalSchema(data)
		if err != nil {
			return
		}
		out, err := MarshalSchema(sch, nil)
		if err != nil {
			t.Fatalf("accepted schema failed to marshal: %v", err)
		}
		if _, err := UnmarshalSchema(out); err != nil {
			t.Fatalf("marshal output failed to reparse: %v\n%s", err, out)
		}
	})
}
