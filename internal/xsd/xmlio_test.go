package xsd

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestMarshalSchemaDeterministic(t *testing.T) {
	a, err := MarshalSchema(testSchema(), nil)
	if err != nil {
		t.Fatalf("MarshalSchema: %v", err)
	}
	b, err := MarshalSchema(testSchema(), nil)
	if err != nil {
		t.Fatalf("MarshalSchema: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Error("serialization is not byte-stable for identical models")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	orig := testSchema()
	orig.Imports = []Import{{Namespace: "http://external/", SchemaLocation: "ext.xsd"}}
	orig.SimpleTypes = []SimpleType{{
		Name: "Pattern", Base: TypeString,
		Facets: []Facet{{Name: "pattern", Value: "[a-z]+"}, {Name: "jaxb-format", Value: "x"}},
	}}
	orig.ComplexTypes[0].Attributes = []Attribute{
		{Name: "version", Type: TypeString},
		{Ref: QName{Space: NamespaceXML, Local: "lang"}},
	}
	orig.ComplexTypes[0].Any = []AnyParticle{
		{Namespace: "##any", ProcessContents: "lax", Occurs: Unbounded},
	}

	data, err := MarshalSchema(orig, nil)
	if err != nil {
		t.Fatalf("MarshalSchema: %v", err)
	}
	got, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatalf("UnmarshalSchema: %v\ndocument:\n%s", err, data)
	}
	normalizeSchema(orig)
	normalizeSchema(got)
	if !reflect.DeepEqual(orig, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v\ndocument:\n%s", got, orig, data)
	}
}

// normalizeSchema canonicalizes occurrence defaults so the comparison
// is on semantics rather than representation (the writer omits 1..1).
func normalizeSchema(s *Schema) {
	var normCT func(ct *ComplexType)
	normEl := func(el *Element) {
		if el.Occurs == (Occurs{}) {
			el.Occurs = Once
		}
	}
	normCT = func(ct *ComplexType) {
		for i := range ct.Sequence {
			normEl(&ct.Sequence[i])
			if ct.Sequence[i].Inline != nil {
				normCT(ct.Sequence[i].Inline)
			}
		}
		for i := range ct.Any {
			if ct.Any[i].Occurs == (Occurs{}) {
				ct.Any[i].Occurs = Once
			}
		}
	}
	for i := range s.Elements {
		normEl(&s.Elements[i])
		if s.Elements[i].Inline != nil {
			normCT(s.Elements[i].Inline)
		}
	}
	for i := range s.ComplexTypes {
		normCT(&s.ComplexTypes[i])
	}
}

func TestRoundTripExtensionBase(t *testing.T) {
	orig := &Schema{
		TargetNamespace: "http://example.test/",
		ComplexTypes: []ComplexType{
			{Name: "Base", Sequence: []Element{{Name: "id", Type: TypeInt, Occurs: Once}}},
			{
				Name: "Derived",
				Base: QName{Space: "http://example.test/", Local: "Base"},
				Sequence: []Element{
					{Name: "extra", Type: TypeString, Occurs: Once},
				},
			},
		},
	}
	data, err := MarshalSchema(orig, nil)
	if err != nil {
		t.Fatalf("MarshalSchema: %v", err)
	}
	got, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatalf("UnmarshalSchema: %v", err)
	}
	if got.ComplexTypes[1].Base != orig.ComplexTypes[1].Base {
		t.Errorf("extension base = %v, want %v", got.ComplexTypes[1].Base, orig.ComplexTypes[1].Base)
	}
	if len(got.ComplexTypes[1].Sequence) != 1 {
		t.Errorf("extension sequence lost: %+v", got.ComplexTypes[1])
	}
}

func TestRoundTripUnbounded(t *testing.T) {
	orig := &Schema{
		TargetNamespace: "http://example.test/",
		ComplexTypes: []ComplexType{{
			Name: "List",
			Sequence: []Element{
				{Name: "item", Type: TypeString, Occurs: Unbounded},
				{Name: "flag", Type: TypeBoolean, Occurs: Optional, Nillable: true},
			},
		}},
	}
	data, err := MarshalSchema(orig, nil)
	if err != nil {
		t.Fatalf("MarshalSchema: %v", err)
	}
	got, err := UnmarshalSchema(data)
	if err != nil {
		t.Fatalf("UnmarshalSchema: %v", err)
	}
	seq := got.ComplexTypes[0].Sequence
	if seq[0].Occurs.Max != -1 {
		t.Errorf("unbounded maxOccurs lost: %+v", seq[0])
	}
	if !seq[1].Nillable {
		t.Error("nillable lost in round trip")
	}
	if seq[1].Occurs != Optional {
		t.Errorf("optional occurs lost: %+v", seq[1].Occurs)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalSchema([]byte("this is not xml")); err == nil {
		t.Error("expected parse error for non-XML input")
	}
	if _, err := UnmarshalSchema([]byte(`<schema xmlns="urn:x"><element type="und:ef"/></schema>`)); err == nil {
		t.Error("expected error for undeclared prefix")
	}
}

func TestPrefixTableDeterministic(t *testing.T) {
	pt := NewPrefixTable("http://tns/")
	if got := pt.Prefix(NamespaceXSD); got != "xs" {
		t.Errorf("XSD prefix = %q, want xs", got)
	}
	if got := pt.Prefix("http://tns/"); got != "tns" {
		t.Errorf("target prefix = %q, want tns", got)
	}
	q1 := pt.Prefix("http://a/")
	q2 := pt.Prefix("http://b/")
	if q1 == q2 {
		t.Errorf("foreign namespaces share prefix %q", q1)
	}
	if again := pt.Prefix("http://a/"); again != q1 {
		t.Errorf("prefix assignment not stable: %q then %q", q1, again)
	}
}

func TestPrefixTableRef(t *testing.T) {
	pt := NewPrefixTable("http://tns/")
	tests := []struct {
		q    QName
		want string
	}{
		{TypeString, "xs:string"},
		{QName{Space: "http://tns/", Local: "Widget"}, "tns:Widget"},
		{QName{}, ""},
		{QName{Local: "bare"}, "bare"},
	}
	for _, tt := range tests {
		if got := pt.Ref(tt.q); got != tt.want {
			t.Errorf("Ref(%v) = %q, want %q", tt.q, got, tt.want)
		}
	}
}

// randomSchema builds a structurally valid random schema for the
// round-trip property test.
func randomSchema(r *rand.Rand) *Schema {
	kinds := []QName{TypeString, TypeInt, TypeLong, TypeBoolean, TypeDouble, TypeDateTime}
	sch := &Schema{
		TargetNamespace:    "http://prop.test/",
		ElementFormDefault: "qualified",
	}
	nTypes := 1 + r.Intn(4)
	for i := 0; i < nTypes; i++ {
		ct := ComplexType{Name: "T" + string(rune('A'+i))}
		nFields := 1 + r.Intn(5)
		for j := 0; j < nFields; j++ {
			oc := Once
			switch r.Intn(3) {
			case 1:
				oc = Optional
			case 2:
				oc = Unbounded
			}
			ct.Sequence = append(ct.Sequence, Element{
				Name:     "f" + string(rune('a'+j)),
				Type:     kinds[r.Intn(len(kinds))],
				Occurs:   oc,
				Nillable: r.Intn(2) == 0,
			})
		}
		sch.ComplexTypes = append(sch.ComplexTypes, ct)
	}
	return sch
}

// TestSchemaRoundTripProperty checks marshal→unmarshal identity over
// randomized schemas.
func TestSchemaRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		orig := randomSchema(r)
		data, err := MarshalSchema(orig, nil)
		if err != nil {
			t.Fatalf("iteration %d: MarshalSchema: %v", i, err)
		}
		got, err := UnmarshalSchema(data)
		if err != nil {
			t.Fatalf("iteration %d: UnmarshalSchema: %v\n%s", i, err, data)
		}
		normalizeSchema(orig)
		normalizeSchema(got)
		if !reflect.DeepEqual(orig, got) {
			t.Fatalf("iteration %d: round trip mismatch\n got %+v\nwant %+v\n%s", i, got, orig, data)
		}
	}
}

// TestMarshalEscapesFacetValues ensures marshaling never produces
// invalid XML for hostile facet values.
func TestMarshalEscapesFacetValues(t *testing.T) {
	f := func(value string) bool {
		sch := &Schema{
			TargetNamespace: "http://esc.test/",
			SimpleTypes: []SimpleType{{
				Name: "S", Base: TypeString,
				Facets: []Facet{{Name: "pattern", Value: value}},
			}},
		}
		data, err := MarshalSchema(sch, nil)
		if err != nil {
			return false
		}
		_, err = UnmarshalSchema(data)
		return err == nil
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalForeignPrefixReferences(t *testing.T) {
	doc := `<schema xmlns="http://www.w3.org/2001/XMLSchema"
	  xmlns:wsa="http://www.w3.org/2005/08/addressing"
	  targetNamespace="http://t/">
	  <complexType name="C">
	    <sequence><element ref="wsa:EndpointReference"/></sequence>
	  </complexType>
	</schema>`
	sch, err := UnmarshalSchema([]byte(doc))
	if err != nil {
		t.Fatalf("UnmarshalSchema: %v", err)
	}
	ref := sch.ComplexTypes[0].Sequence[0].Ref
	want := QName{Space: "http://www.w3.org/2005/08/addressing", Local: "EndpointReference"}
	if ref != want {
		t.Errorf("ref = %v, want %v", ref, want)
	}
	if !strings.Contains(doc, "wsa:") {
		t.Fatal("test document must use a prefix")
	}
}
