package wsi

import (
	"strings"
	"testing"

	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// Regression tests for four checker defects. Each test fails against
// the pre-fix checker: the first two assertions were "phantoms"
// (advertised by AllAssertions but emitted by no check), R2800 held
// for any port regardless of its binding, schema-resolution errors
// were swallowed, and CheckMessage passed unparseable payloads clean.

// TestParsedDocMissingSOAPActionFailsR2745 drives the fix end-to-end
// through the byte layer: a document whose soapbind:operation carries
// no soapAction attribute must fail R2745 after parsing. Pre-fix the
// parser could not even represent attribute absence, and no check
// emitted R2745.
func TestParsedDocMissingSOAPActionFailsR2745(t *testing.T) {
	d := cleanDoc()
	d.Bindings[0].Operations[0].OmitSOAPAction = true
	raw, err := wsdl.Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if strings.Contains(string(raw), "soapAction") {
		t.Fatalf("fixture still declares soapAction:\n%s", raw)
	}
	parsed, err := wsdl.Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	r := NewChecker().Check(parsed)
	if !violated(r, AssertionSOAPAction.ID) {
		t.Errorf("expected R2745 for missing soapAction, got %v", r.Violations)
	}

	// A declared-but-empty soapAction (every corpus document) is fine.
	clean := NewChecker().Check(cleanDoc())
	if violated(clean, AssertionSOAPAction.ID) {
		t.Errorf("declared empty soapAction must pass R2745: %v", clean.Violations)
	}
}

// TestMixedOperationStylesFailR2705 exercises the other phantom: a
// binding mixing document- and rpc-style operations must fail R2705.
// Pre-fix the model had no per-operation style, so the mix was
// unrepresentable and the assertion never fired.
func TestMixedOperationStylesFailR2705(t *testing.T) {
	d := cleanDoc()
	pt := &d.PortTypes[0]
	second := pt.Operations[0]
	second.Name = "echoTwice"
	pt.Operations = append(pt.Operations, second)
	b := &d.Bindings[0]
	bsecond := b.Operations[0]
	bsecond.Name = "echoTwice"
	bsecond.Style = wsdl.StyleRPC
	b.Operations = append(b.Operations, bsecond)

	// Through the byte layer too: the per-op style must survive the
	// round trip for parsed documents to be checkable.
	raw, err := wsdl.Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	parsed, err := wsdl.Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	for _, doc := range []*wsdl.Definitions{d, parsed} {
		r := NewChecker().Check(doc)
		if !violated(r, AssertionConsistentStyle.ID) {
			t.Errorf("expected R2705 for mixed styles, got %v", r.Violations)
		}
	}

	// Uniform per-op styles that merely restate the binding style are
	// not a mix.
	u := cleanDoc()
	u.Bindings[0].Operations[0].Style = wsdl.StyleDocument
	if r := NewChecker().Check(u); violated(r, AssertionConsistentStyle.ID) {
		t.Errorf("uniform styles flagged as mixed: %v", r.Violations)
	}
}

// TestPortBindingMustResolveForR2800 pins the R2800 fix: a service
// "has a SOAP port" only if some port's binding resolves and uses the
// SOAP/HTTP transport. Pre-fix any port at all satisfied the check.
func TestPortBindingMustResolveForR2800(t *testing.T) {
	// Port references a binding that does not exist.
	d := cleanDoc()
	d.Services[0].Ports[0].Binding = "NoSuchBinding"
	r := NewChecker().Check(d)
	if !violated(r, AssertionServicePresent.ID) {
		t.Errorf("expected R2800 when the only port's binding is unresolvable, got %v", r.Violations)
	}

	// Port's binding resolves but is not SOAP-over-HTTP.
	d = cleanDoc()
	d.Bindings[0].Transport = "http://schemas.xmlsoap.org/soap/smtp"
	r = NewChecker().Check(d)
	if !violated(r, AssertionServicePresent.ID) {
		t.Errorf("expected R2800 when the only port's binding is non-HTTP, got %v", r.Violations)
	}

	// A resolvable SOAP/HTTP port still satisfies R2800.
	if r = NewChecker().Check(cleanDoc()); violated(r, AssertionServicePresent.ID) {
		t.Errorf("clean document must pass R2800: %v", r.Violations)
	}
	// An empty transport means the SOAP/HTTP default: also satisfied.
	d = cleanDoc()
	d.Bindings[0].Transport = ""
	if r = NewChecker().Check(d); violated(r, AssertionServicePresent.ID) {
		t.Errorf("default transport must pass R2800: %v", r.Violations)
	}
}

// TestSchemaResolutionErrorSurfacesAsR2001 pins the swallowed-error
// fix: a schema set whose Resolve fails outright (here: a nil schema
// entry) must surface as an R2001 violation. Pre-fix the error was
// discarded — and this particular input panicked the checker before
// reaching Resolve at all.
func TestSchemaResolutionErrorSurfacesAsR2001(t *testing.T) {
	d := cleanDoc()
	d.Types.Schemas = append(d.Types.Schemas, nil)
	r := NewChecker().Check(d)
	if !violated(r, AssertionResolvableRefs.ID) {
		t.Errorf("expected R2001 for a failing schema resolution, got %v", r.Violations)
	}
	if r.Compliant() {
		t.Error("document with unresolvable schema set must not be compliant")
	}
}

// TestCheckMessageUnparseablePayloads pins the RM9980 fix: payloads
// that never yield a root element — empty, non-XML garbage, truncated
// before the root closes enough to parse — must fail RM9980 instead of
// passing clean, and a payload whose XML breaks off after the root is
// reported as truncated.
func TestCheckMessageUnparseablePayloads(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"garbage":        "HTTP/500 definitely } not xml <<<",
		"truncated-root": "<soap:Envel",
	}
	for name, raw := range cases {
		r := NewChecker().CheckMessage([]byte(raw), cleanMeta())
		if !violated(r, AssertionMsgEnvelope.ID) {
			t.Errorf("%s: expected RM9980, got %v", name, r.Violations)
		}
	}

	// Root parses, then the document breaks off: truncation, also
	// RM9980.
	trunc := `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"><soap:Body>`
	r := NewChecker().CheckMessage([]byte(trunc), cleanMeta())
	if !violated(r, AssertionMsgEnvelope.ID) {
		t.Errorf("truncated-after-root: expected RM9980, got %v", r.Violations)
	}

	// The clean envelope still passes.
	if r = NewChecker().CheckMessage([]byte(cleanEnvelope), cleanMeta()); len(r.Violations) != 0 {
		t.Errorf("clean envelope regressed: %v", r.Violations)
	}
}

// TestNilSchemaEntryResolveError pins the xsd-level half of the R2001
// fix at its source.
func TestNilSchemaEntryResolveError(t *testing.T) {
	s := xsd.NewSchemaSet(cleanDoc().Types.Schemas[0], nil)
	if _, err := s.Resolve(); err == nil {
		t.Error("Resolve must reject a nil schema entry")
	}
}
