package wsi

import (
	"testing"

	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// rpcDoc converts the clean test document to rpc/literal.
func rpcDoc() *wsdl.Definitions {
	d := cleanDoc()
	tns := d.TargetNamespace
	d.Bindings[0].Style = wsdl.StyleRPC
	d.Bindings[0].Operations[0].BodyNamespace = tns
	d.Messages = []wsdl.Message{
		{Name: "in", Parts: []wsdl.Part{{Name: "input", Type: xsd.QName{Space: tns, Local: "Payload"}}}},
		{Name: "out", Parts: []wsdl.Part{{Name: "return", Type: xsd.QName{Space: tns, Local: "Payload"}}}},
	}
	// rpc documents do not declare wrapper elements.
	d.Types.Schemas[0].Elements = nil
	return d
}

func TestRPCCleanDocumentPasses(t *testing.T) {
	r := NewChecker().Check(rpcDoc())
	if len(r.Violations) != 0 {
		t.Errorf("clean rpc document has findings: %v", r.Violations)
	}
}

func TestRPCElementPartFailsR2203(t *testing.T) {
	d := rpcDoc()
	d.Types.Schemas[0].Elements = []xsd.Element{{
		Name: "echo",
		Type: xsd.QName{Space: d.TargetNamespace, Local: "Payload"},
	}}
	d.Messages[0].Parts[0] = wsdl.Part{
		Name:    "input",
		Element: xsd.QName{Space: d.TargetNamespace, Local: "echo"},
	}
	r := NewChecker().Check(d)
	if !violated(r, AssertionRPCPartType.ID) {
		t.Errorf("expected R2203, got %v", r.Violations)
	}
}

func TestRPCMissingBodyNamespaceFailsR2717(t *testing.T) {
	d := rpcDoc()
	d.Bindings[0].Operations[0].BodyNamespace = ""
	r := NewChecker().Check(d)
	if !violated(r, AssertionRPCNamespace.ID) {
		t.Errorf("expected R2717, got %v", r.Violations)
	}
}

func TestDocumentWithBodyNamespaceFailsR2716(t *testing.T) {
	d := cleanDoc()
	d.Bindings[0].Operations[0].BodyNamespace = d.TargetNamespace
	r := NewChecker().Check(d)
	if !violated(r, AssertionDocNoNamespace.ID) {
		t.Errorf("expected R2716, got %v", r.Violations)
	}
}
