package wsi

// Shape-level checking (DESIGN.md §10). The campaign's structural
// shape memo (internal/shape, internal/campaign/dedup.go) proves that
// two same-shape classes publish documents identical up to a fixed
// set of name-derived strings — the wsdl.Template variable chunks.
// This file classifies every assertion by how its verdict behaves
// under that substitution, so a per-shape verdict can stand in for
// the per-class check:
//
//   - A *name-invariant* assertion inspects only structure the
//     substitution never touches (binding transports, body use,
//     facet vocabularies, part reference kinds, operation counts,
//     ...). Its verdict is memoized once per shape fingerprint and
//     reused verbatim for every same-shape class.
//
//   - A *name-sensitive* assertion could in principle flip if a
//     substituted string were degenerate: an empty targetNamespace
//     flips R2105, and a namespace colliding with a specification
//     namespace could change what R2001/R2101 resolution sees. For
//     these the campaign runs SubstitutionSafe — cheap predicates
//     over the template's variable chunks, no XML in sight. When the
//     predicates hold, a consistent renaming is verdict-preserving
//     for the name-sensitive assertions too, and the memoized report
//     applies; when they fail, the class takes the full per-class
//     check (exactly like the shape memo's own Memoizable guard).
//
// The soundness argument is not assumed: TestWSIShapeEquivalenceFull
// replays the full 22 024-class corpus through both paths and
// requires identical violated-assertion multisets per class, and the
// chunk predicates are fuzzed against hostile NCNames in
// FuzzWSISubstitutionSafe.

import (
	"encoding/xml"
	"strings"
	"unicode/utf8"

	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// nameSensitive holds the assertions whose verdicts depend on the
// name-derived strings of a published document. Everything else the
// checker implements — document and message assertions alike — is
// invariant under consistent name substitution.
var nameSensitive = map[string]bool{
	// R2105: a substituted empty namespace removes the schema's
	// targetNamespace attribute.
	AssertionTargetNamespace.ID: true,
	// R2001: QName resolution can change if the substituted namespace
	// collides with (or departs from) a specification namespace the
	// resolver treats specially.
	AssertionResolvableRefs.ID: true,
	// R2101: structural reference resolution names bindings, port
	// types, messages and services after the service name.
	AssertionBindingResolves.ID: true,
}

// NameInvariant reports whether the assertion's verdict is invariant
// under a consistent substitution of a document's name-derived
// strings (service name, target namespace, parameter type name).
// Holds for both document (Rxxxx/EXTxxxx) and message (RMxxxx)
// assertions.
func NameInvariant(a Assertion) bool {
	return !nameSensitive[a.ID]
}

// reservedNamespaces are namespaces with fixed meaning to WSDL/XSD
// tooling. A class namespace colliding with one of these could alter
// what reference resolution (R2001/R2101) accepts relative to the
// shape's representative, so SubstitutionSafe rejects them.
var reservedNamespaces = map[string]bool{
	xsd.NamespaceXSD:       true,
	xsd.NamespaceXML:       true,
	wsdl.NamespaceWSDL:     true,
	wsdl.NamespaceSOAP:     true,
	wsdl.NamespaceSOAPHTTP: true,
}

// SubstitutionSafe reports whether substituting the given name-derived
// strings into a shape template preserves the name-sensitive assertion
// verdicts of the shape's representative. service and simple must be
// valid NCNames; namespace must be a non-empty, XML-attribute-safe
// plain-ASCII URI that is not a reserved specification namespace.
// These are the chunk predicates of the shape-level WS-I path: they
// run over raw template variables, never over rendered XML.
func SubstitutionSafe(service, namespace, simple string) bool {
	if !IsNCName(service) || !IsNCName(simple) {
		return false
	}
	if namespace == "" || reservedNamespaces[namespace] {
		return false
	}
	for i := 0; i < len(namespace); i++ {
		c := namespace[i]
		if c < 0x20 || c > 0x7e {
			return false
		}
		switch c {
		case '"', '\\', '&', '<', '>', '\'':
			return false
		}
	}
	return true
}

// IsNCName reports whether s is a valid XML NCName (a Name with no
// colon) — the production service and type names must satisfy for a
// substitution to leave reference resolution untouched.
func IsNCName(s string) bool {
	if s == "" || !utf8.ValidString(s) {
		// Invalid UTF-8 decodes as U+FFFD — a legal NCName rune — so
		// a byte-wise hostile name would pass the rune checks below
		// while the raw bytes corrupt the rendered document.
		return false
	}
	ascii := true
	for i, r := range s {
		if r >= utf8.RuneSelf {
			ascii = false
		}
		if i == 0 {
			if !isNCNameStart(r) {
				return false
			}
			continue
		}
		if !isNCNameChar(r) {
			return false
		}
	}
	if ascii {
		return true
	}
	return parserAcceptsName(s)
}

// parserAcceptsName probes encoding/xml with the candidate name. The
// rune tables above implement the XML 1.0 fifth-edition NCName
// production, but the parser on the consuming side of a round trip
// uses the stricter fourth-edition Letter tables (e.g. it rejects
// U+0379, which the fifth edition allows); a non-ASCII name only
// memoizes safely if that parser reads it back intact.
func parserAcceptsName(s string) bool {
	dec := xml.NewDecoder(strings.NewReader("<" + s + "/>"))
	tok, err := dec.Token()
	if err != nil {
		return false
	}
	se, ok := tok.(xml.StartElement)
	return ok && se.Name.Local == s
}

func isNCNameStart(r rune) bool {
	return r == '_' ||
		r >= 'A' && r <= 'Z' || r >= 'a' && r <= 'z' ||
		r >= 0xC0 && r <= 0xD6 || r >= 0xD8 && r <= 0xF6 ||
		r >= 0xF8 && r <= 0x2FF || r >= 0x370 && r <= 0x37D ||
		r >= 0x37F && r <= 0x1FFF || r >= 0x200C && r <= 0x200D ||
		r >= 0x2070 && r <= 0x218F || r >= 0x2C00 && r <= 0x2FEF ||
		r >= 0x3001 && r <= 0xD7FF || r >= 0xF900 && r <= 0xFDCF ||
		r >= 0xFDF0 && r <= 0xFFFD || r >= 0x10000 && r <= 0xEFFFF
}

func isNCNameChar(r rune) bool {
	return isNCNameStart(r) || r == '-' || r == '.' ||
		r >= '0' && r <= '9' || r == 0xB7 ||
		r >= 0x300 && r <= 0x36F || r >= 0x203F && r <= 0x2040
}
