package wsi

// Compliance-profile engine. A Profile packages one interoperability
// profile as data — identifier, advertised assertion sets — plus the
// predicate functions that enforce it over *wsdl.Definitions documents
// and captured messages. Profiles live in a package-level registry so
// the campaign, the report renderers and the CLI tools enumerate the
// same roster; adding a profile (a SOAP 1.2 / BP 2.0-style set, say)
// is one Register call, with no checker surgery.
//
// Three real profiles are registered:
//
//   - bp11 — WS-I Basic Profile 1.1, the paper's profile. This is the
//     default profile and the one AllAssertions describes; NewChecker
//     without options checks against it, so the historical checker
//     behaviour is exactly the bp11 profile.
//
//   - bp20 — a BP 2.0-style hybrid guard: BP 1.1's structural
//     description rules plus SOAP 1.2 message rules and the RMH001
//     version-coherence assertion rejecting mixed 1.1/1.2 signals
//     (the error class the version matrix measures).
//
//   - ivoa — the IVOA Web Services Basic Profile (PAPERS.md,
//     arXiv:1110.0511), a stricter subset used by the Virtual
//     Observatory community: everything BP 1.1 requires, plus
//     document-style-only bindings and mandatory service metadata
//     (a wsdl:documentation element).
//
// Per-profile memo soundness: every profile classifies its assertions
// as name-invariant or name-sensitive (Profile.NameInvariant). The
// shape-level memoized WS-I path (DESIGN.md §10) is sound for a
// profile exactly when its name-sensitive set is covered by the
// SubstitutionSafe chunk predicates — true for both registered
// profiles, whose name-sensitive sets coincide (the IVOA additions
// inspect only structure and metadata presence, never names), and
// proven per profile at full corpus scale by
// TestWSIShapeEquivalenceFull.

import (
	"fmt"
	"sort"
	"strings"

	"wsinterop/internal/soap"
	"wsinterop/internal/wsdl"
)

// check is one predicate over a description document, appending any
// violations it finds to the report.
type check func(d *wsdl.Definitions, r *Report)

// Profile is one registered compliance profile: an identifier, the
// assertion sets it advertises, and the checks that enforce them.
type Profile struct {
	// ID is the short registry key (e.g. "bp11"), used by CLI flags
	// and report matrices.
	ID string
	// Name is the human-readable profile title.
	Name string
	// Description states the profile's provenance in one line.
	Description string

	// assertions is the advertised description-level assertion set, in
	// check order, including extended assertions.
	assertions []Assertion
	// messageAssertions is the advertised message-level assertion set.
	messageAssertions []Assertion
	// checks are the core document checks; extended holds the checks
	// gated by Checker's WithoutExtended option.
	checks   []check
	extended []check
	// nameSensitive classifies the profile's assertions for the
	// shape-level memoized path: an assertion listed here may change
	// verdict under a name substitution, so memoized verdicts apply
	// only when the SubstitutionSafe chunk predicates hold.
	nameSensitive map[string]bool
	// messageVersion selects the envelope version the profile's
	// message-level rules bind to; the zero value means SOAP 1.1.
	messageVersion soap.Version
	// versionGuard enables the RMH001 hybrid check on messages.
	versionGuard bool
}

// Assertions returns the profile's advertised description-level
// assertion set in check order (a copy).
func (p *Profile) Assertions() []Assertion {
	out := make([]Assertion, len(p.assertions))
	copy(out, p.assertions)
	return out
}

// MessageAssertions returns the profile's message-level assertion set
// (a copy).
func (p *Profile) MessageAssertions() []Assertion {
	out := make([]Assertion, len(p.messageAssertions))
	copy(out, p.messageAssertions)
	return out
}

// NameInvariant reports whether the assertion's verdict is invariant
// under a consistent substitution of a document's name-derived
// strings, per this profile's classification.
func (p *Profile) NameInvariant(a Assertion) bool {
	return !p.nameSensitive[a.ID]
}

// Evaluate runs the profile's core checks (no extended assertions)
// against the document. A nil document yields a single R2101
// violation, matching Checker.Check.
func (p *Profile) Evaluate(d *wsdl.Definitions) *Report {
	r := &Report{}
	if d == nil {
		r.add(AssertionBindingResolves, "no description document")
		return r
	}
	for _, chk := range p.checks {
		chk(d, r)
	}
	return r
}

// ---- registry ----

var (
	profileOrder []*Profile
	profileByID  = make(map[string]*Profile)
)

// Register adds a profile to the registry. Profile IDs must be unique;
// registration order is the roster order every consumer sees, so it
// must be deterministic (package init only, for the built-in
// profiles).
func Register(p *Profile) {
	if p == nil || p.ID == "" {
		panic("wsi: Register needs a profile with a non-empty ID")
	}
	if _, dup := profileByID[p.ID]; dup {
		panic(fmt.Sprintf("wsi: profile %q registered twice", p.ID))
	}
	profileByID[p.ID] = p
	profileOrder = append(profileOrder, p)
}

// Profiles returns every registered profile in registration order (a
// copy of the roster slice).
func Profiles() []*Profile {
	out := make([]*Profile, len(profileOrder))
	copy(out, profileOrder)
	return out
}

// Lookup returns the profile registered under id.
func Lookup(id string) (*Profile, bool) {
	p, ok := profileByID[id]
	return p, ok
}

// ProfileIDs returns the sorted registry keys, for error messages and
// configuration fingerprints.
func ProfileIDs() []string {
	ids := make([]string, 0, len(profileByID))
	for id := range profileByID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// DefaultProfile returns the BP 1.1 profile — the profile a zero
// Checker verifies against.
func DefaultProfile() *Profile { return bp11Profile }

// ---- built-in profiles ----

// IVOA-specific assertions, IVB-prefixed to distinguish them from the
// BP 1.1 R-assertions they extend.
var (
	AssertionIVOADocumentStyle = Assertion{
		ID:          "IVB2201",
		Description: "an IVOA basic-profile binding must use document-style operations exclusively",
	}
	AssertionIVOAMetadata = Assertion{
		ID:          "IVB2402",
		Description: "an IVOA basic-profile DESCRIPTION must carry a wsdl:documentation element describing the service",
	}
)

// checkIVOAStyle enforces IVB2201: every binding operation's effective
// style must be document.
func checkIVOAStyle(d *wsdl.Definitions, r *Report) {
	for bi := range d.Bindings {
		b := &d.Bindings[bi]
		if len(b.Operations) == 0 {
			if b.EffectiveStyle(&wsdl.BindingOperation{}) != wsdl.StyleDocument {
				r.add(AssertionIVOADocumentStyle,
					"binding %q declares the rpc style", b.Name)
			}
			continue
		}
		for oi := range b.Operations {
			bop := &b.Operations[oi]
			if b.EffectiveStyle(bop) != wsdl.StyleDocument {
				r.add(AssertionIVOADocumentStyle,
					"binding %q operation %q uses the rpc style", b.Name, bop.Name)
			}
		}
	}
}

// checkIVOAMetadata enforces IVB2402: the description must document
// itself.
func checkIVOAMetadata(d *wsdl.Definitions, r *Report) {
	if strings.TrimSpace(d.Documentation) == "" {
		r.add(AssertionIVOAMetadata, "description carries no wsdl:documentation")
	}
}

// coreAssertions filters the extended assertions out of a listing.
func coreAssertions(all []Assertion) []Assertion {
	out := make([]Assertion, 0, len(all))
	for _, a := range all {
		if !a.Extended {
			out = append(out, a)
		}
	}
	return out
}

var bp11Profile = &Profile{
	ID:                "bp11",
	Name:              "WS-I Basic Profile 1.1",
	Description:       "the WS-I Basic Profile 1.1 assertion families the study's corpus exercises",
	assertions:        AllAssertions(),
	messageAssertions: MessageAssertions(),
	checks:            []check{checkSchemas, checkStructure, checkBindings},
	extended:          []check{checkExtendedOperations},
	nameSensitive:     nameSensitive,
}

var bp20Profile = &Profile{
	ID:          "bp20",
	Name:        "WS-I Basic Profile 2.0 (hybrid guard)",
	Description: "a BP 2.0-style profile for SOAP 1.2-era messaging: the structural BP 1.1 description rules plus version-coherent (non-hybrid) message rules",
	// BP 2.0 inherits the description-level structure rules wholesale —
	// the profiles differ at the messaging layer, where 2.0 binds to
	// SOAP 1.2 and (here) refuses mixed version signals.
	assertions:        coreAssertions(AllAssertions()),
	messageAssertions: MessageAssertions12(),
	checks:            []check{checkSchemas, checkStructure, checkBindings},
	extended:          []check{checkExtendedOperations},
	// The messaging additions never inspect description names, so the
	// name-sensitive set is exactly BP 1.1's — the shape-level memo
	// stays sound (DESIGN.md §10).
	nameSensitive:  nameSensitive,
	messageVersion: soap.Version12,
	versionGuard:   true,
}

var ivoaProfile = &Profile{
	ID:          "ivoa",
	Name:        "IVOA Web Services Basic Profile",
	Description: "the IVOA basic interoperability profile (arXiv:1110.0511): BP 1.1 plus document-only style and mandatory service metadata",
	assertions: append(coreAssertions(AllAssertions()),
		AssertionIVOADocumentStyle, AssertionIVOAMetadata, AssertionHasOperations),
	messageAssertions: MessageAssertions(),
	checks:            []check{checkSchemas, checkStructure, checkBindings, checkIVOAStyle, checkIVOAMetadata},
	extended:          []check{checkExtendedOperations},
	// The IVOA additions inspect binding styles and documentation
	// presence — both invariant under name substitution — so the
	// name-sensitive set is exactly BP 1.1's.
	nameSensitive: nameSensitive,
}

func init() {
	Register(bp11Profile)
	Register(bp20Profile)
	Register(ivoaProfile)
}
