package wsi

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"mime"
	"strings"
)

// This file implements message-level conformance checking: validating
// the SOAP messages actually exchanged on the wire, independently of
// the description-level assertions. The paper's related work (§II,
// Ramsokul & Sowmya) proposes exactly this sniffer-based runtime
// checking; here it complements the static three-step study and plugs
// into the transport layer (transport.Sniffer) during the
// Communication/Execution extension.
//
// The checker deliberately re-parses raw bytes with its own XML walk
// rather than reusing internal/soap: a conformance checker that
// shares the implementation under test would inherit its blind spots.

// Message-level assertions (BP 1.1 messaging requirements, RM-prefixed
// to distinguish them from the description-level R-assertions).
var (
	AssertionMsgEnvelope = Assertion{
		ID:          "RM9980",
		Description: "a MESSAGE must be serialized as a soap:Envelope in the SOAP 1.1 namespace",
	}
	AssertionMsgBodyChild = Assertion{
		ID:          "RM1011",
		Description: "a MESSAGE body must contain at most one child element",
	}
	AssertionMsgQualified = Assertion{
		ID:          "RM1014",
		Description: "children of soap:Body must be namespace-qualified",
	}
	AssertionMsgContentType = Assertion{
		ID:          "RM1119",
		Description: "a MESSAGE must be sent with a text/xml content type",
	}
	AssertionMsgSOAPAction = Assertion{
		ID:          "RM1109",
		Description: "the SOAPAction HTTP header value must be a quoted string",
	}
	AssertionMsgFaultShape = Assertion{
		ID:          "RM1004",
		Description: "a soap:Fault must carry faultcode and faultstring children",
	}
	AssertionMsgFaultStatus = Assertion{
		ID:          "RM1126",
		Description: "an HTTP response carrying a soap:Fault must use status 500",
	}
)

// MessageAssertions lists the message-level assertion set.
func MessageAssertions() []Assertion {
	return []Assertion{
		AssertionMsgEnvelope, AssertionMsgBodyChild, AssertionMsgQualified,
		AssertionMsgContentType, AssertionMsgSOAPAction,
		AssertionMsgFaultShape, AssertionMsgFaultStatus,
	}
}

// MessageMeta carries the HTTP-level context of one captured message.
type MessageMeta struct {
	// ContentType is the Content-Type header value.
	ContentType string
	// SOAPAction is the raw SOAPAction header (requests only; empty
	// means absent, which is acceptable for responses).
	SOAPAction string
	// HTTPStatus is the response status (0 for requests).
	HTTPStatus int
}

const soapEnvelopeNS = "http://schemas.xmlsoap.org/soap/envelope/"

// CheckMessage validates one captured SOAP message against the
// message-level assertion set.
func (c *Checker) CheckMessage(raw []byte, meta MessageMeta) *Report {
	r := &Report{}
	c.checkTransportMeta(meta, r)

	dec := xml.NewDecoder(bytes.NewReader(raw))
	depth := 0
	sawRoot := false
	inBody := false
	bodyDepth := 0
	bodyChildren := 0
	isFault := false
	var faultFields map[string]bool
	var pathStack []xml.Name
	var tokenErr error

	for {
		tok, err := dec.Token()
		if err != nil {
			if err != io.EOF {
				tokenErr = err
			}
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			pathStack = append(pathStack, t.Name)
			switch {
			case depth == 1:
				sawRoot = true
				if t.Name.Local != "Envelope" || t.Name.Space != soapEnvelopeNS {
					r.add(AssertionMsgEnvelope,
						"root element is {%s}%s", t.Name.Space, t.Name.Local)
				}
			case depth == 2 && t.Name.Local == "Body" && t.Name.Space == soapEnvelopeNS:
				inBody = true
				bodyDepth = depth
			case inBody && depth == bodyDepth+1:
				bodyChildren++
				if t.Name.Space == "" {
					r.add(AssertionMsgQualified,
						"body child %q is unqualified", t.Name.Local)
				}
				if t.Name.Local == "Fault" && t.Name.Space == soapEnvelopeNS {
					isFault = true
					faultFields = make(map[string]bool, 2)
				}
			case isFault && depth == bodyDepth+2:
				faultFields[t.Name.Local] = true
			}
		case xml.EndElement:
			if inBody && depth == bodyDepth {
				inBody = false
			}
			depth--
			if len(pathStack) > 0 {
				pathStack = pathStack[:len(pathStack)-1]
			}
		}
	}

	// A payload that never yields a root element is not a soap:Envelope
	// at all — empty bodies, non-XML garbage and truncated-before-root
	// documents must not pass RM9980 by breaking out of the token loop
	// early. A payload whose root parsed but whose XML then broke off
	// is counted as truncated.
	switch {
	case !sawRoot && len(raw) == 0:
		r.add(AssertionMsgEnvelope, "message payload is empty")
	case !sawRoot && tokenErr != nil:
		r.add(AssertionMsgEnvelope, "no root element parses in %d bytes: %v", len(raw), tokenErr)
	case !sawRoot:
		r.add(AssertionMsgEnvelope, "no root element in %d bytes of payload", len(raw))
	case tokenErr != nil:
		r.add(AssertionMsgEnvelope, "message truncated after %d bytes: %v", len(raw), tokenErr)
	}

	if bodyChildren > 1 {
		r.add(AssertionMsgBodyChild, "body has %d children", bodyChildren)
	}
	if isFault {
		if !faultFields["faultcode"] || !faultFields["faultstring"] {
			r.add(AssertionMsgFaultShape, "fault lacks faultcode and/or faultstring")
		}
		if meta.HTTPStatus != 0 && meta.HTTPStatus != 500 {
			r.add(AssertionMsgFaultStatus, "fault returned with HTTP %d", meta.HTTPStatus)
		}
	}
	return r
}

func (c *Checker) checkTransportMeta(meta MessageMeta, r *Report) {
	if meta.ContentType != "" {
		mediaType, _, err := mime.ParseMediaType(meta.ContentType)
		if err != nil || mediaType != "text/xml" {
			r.add(AssertionMsgContentType, "content type %q", meta.ContentType)
		}
	}
	if meta.SOAPAction != "" {
		v := meta.SOAPAction
		if !strings.HasPrefix(v, `"`) || !strings.HasSuffix(v, `"`) || len(v) < 2 {
			r.add(AssertionMsgSOAPAction, "SOAPAction %s is not quoted", fmt.Sprintf("%q", v))
		}
	}
}
