package wsi

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"mime"
	"strings"

	"wsinterop/internal/soap"
)

// This file implements message-level conformance checking: validating
// the SOAP messages actually exchanged on the wire, independently of
// the description-level assertions. The paper's related work (§II,
// Ramsokul & Sowmya) proposes exactly this sniffer-based runtime
// checking; here it complements the static three-step study and plugs
// into the transport layer (transport.Sniffer) during the
// Communication/Execution extension.
//
// The checker deliberately re-parses raw bytes with its own XML walk
// rather than reusing internal/soap: a conformance checker that
// shares the implementation under test would inherit its blind spots.
// The soap import supplies only version identity (namespace and media
// type constants via the Codec), never a parser.

// Message-level assertions (BP 1.1 messaging requirements, RM-prefixed
// to distinguish them from the description-level R-assertions).
var (
	AssertionMsgEnvelope = Assertion{
		ID:          "RM9980",
		Description: "a MESSAGE must be serialized as a soap:Envelope in the SOAP 1.1 namespace",
	}
	AssertionMsgBodyChild = Assertion{
		ID:          "RM1011",
		Description: "a MESSAGE body must contain at most one child element",
	}
	AssertionMsgQualified = Assertion{
		ID:          "RM1014",
		Description: "children of soap:Body must be namespace-qualified",
	}
	AssertionMsgContentType = Assertion{
		ID:          "RM1119",
		Description: "a MESSAGE must be sent with a text/xml content type",
	}
	AssertionMsgSOAPAction = Assertion{
		ID:          "RM1109",
		Description: "the SOAPAction HTTP header value must be a quoted string",
	}
	AssertionMsgFaultShape = Assertion{
		ID:          "RM1004",
		Description: "a soap:Fault must carry faultcode and faultstring children",
	}
	AssertionMsgFaultStatus = Assertion{
		ID:          "RM1126",
		Description: "an HTTP response carrying a soap:Fault must use status 500",
	}
)

// Message-level assertions for the SOAP 1.2 binding and the hybrid
// guard (the bp20 profile's messaging rules).
var (
	AssertionMsgEnvelope12 = Assertion{
		ID:          "RM9981",
		Description: "a MESSAGE must be serialized as an env:Envelope in the SOAP 1.2 namespace",
	}
	AssertionMsgContentType12 = Assertion{
		ID:          "RM1130",
		Description: "a MESSAGE must be sent with an application/soap+xml content type",
	}
	AssertionMsgFaultShape12 = Assertion{
		ID:          "RM1005",
		Description: "an env:Fault must carry env:Code and env:Reason children",
	}
	AssertionMsgFaultStatus12 = Assertion{
		ID:          "RM1127",
		Description: "an HTTP response carrying an env:Fault must use status 400 or 500",
	}
	AssertionMsgVersionCoherent = Assertion{
		ID:          "RMH001",
		Description: "a MESSAGE must not mix SOAP 1.1 and SOAP 1.2 version signals (envelope namespace, media type, fault shape)",
	}
)

// MessageAssertions lists the SOAP 1.1 message-level assertion set.
func MessageAssertions() []Assertion {
	return []Assertion{
		AssertionMsgEnvelope, AssertionMsgBodyChild, AssertionMsgQualified,
		AssertionMsgContentType, AssertionMsgSOAPAction,
		AssertionMsgFaultShape, AssertionMsgFaultStatus,
	}
}

// MessageAssertions12 lists the SOAP 1.2 / hybrid-guard message-level
// assertion set.
func MessageAssertions12() []Assertion {
	return []Assertion{
		AssertionMsgEnvelope12, AssertionMsgBodyChild, AssertionMsgQualified,
		AssertionMsgContentType12,
		AssertionMsgFaultShape12, AssertionMsgFaultStatus12,
		AssertionMsgVersionCoherent,
	}
}

// MessageMeta carries the HTTP-level context of one captured message.
type MessageMeta struct {
	// ContentType is the Content-Type header value.
	ContentType string
	// SOAPAction is the raw SOAPAction header (requests only; empty
	// means absent, which is acceptable for responses).
	SOAPAction string
	// HTTPStatus is the response status (0 for requests).
	HTTPStatus int
}

const (
	soapEnvelopeNS   = "http://schemas.xmlsoap.org/soap/envelope/"
	soapEnvelopeNS12 = "http://www.w3.org/2003/05/soap-envelope"
)

// msgRules parameterizes the message walk by envelope version: which
// namespace and media type the envelope must use, which fault shape
// is canonical, and whether to flag mixed version signals (the bp20
// hybrid guard).
type msgRules struct {
	envNS        string
	envAssert    Assertion // envelope-namespace assertion for this version
	mediaType    string
	ctAssert     Assertion // content-type assertion for this version
	fault12      bool      // expect env:Code/env:Reason instead of faultcode/faultstring
	versionGuard bool      // flag mixed 1.1/1.2 signals (RMH001)
}

var v11MsgRules = msgRules{
	envNS:     soapEnvelopeNS,
	envAssert: AssertionMsgEnvelope,
	mediaType: "text/xml",
	ctAssert:  AssertionMsgContentType,
}

var v12MsgRules = msgRules{
	envNS:     soapEnvelopeNS12,
	envAssert: AssertionMsgEnvelope12,
	mediaType: "application/soap+xml",
	ctAssert:  AssertionMsgContentType12,
	fault12:   true,
}

// CheckMessage validates one captured SOAP message against the
// checker's profile: its message-version rules (SOAP 1.1 unless the
// profile binds messaging to 1.2, as bp20 does) and, when the profile
// requests it, the RMH001 hybrid guard.
func (c *Checker) CheckMessage(raw []byte, meta MessageMeta) *Report {
	rules := v11MsgRules
	if c.profile != nil {
		if c.profile.messageVersion == soap.Version12 {
			rules = v12MsgRules
		}
		rules.versionGuard = c.profile.versionGuard
	}
	return c.checkMessageRules(raw, meta, rules)
}

// CheckMessageCodec validates one captured message against the
// messaging rules of the given envelope version regardless of the
// checker's profile, always including the hybrid version-coherence
// guard: a message mixing 1.1 and 1.2 signals is flagged under RMH001
// even when each signal would be valid alone.
func (c *Checker) CheckMessageCodec(raw []byte, meta MessageMeta, codec soap.Codec) *Report {
	rules := v11MsgRules
	if codec.Version() == soap.Version12 {
		rules = v12MsgRules
	}
	rules.versionGuard = true
	return c.checkMessageRules(raw, meta, rules)
}

func (c *Checker) checkMessageRules(raw []byte, meta MessageMeta, rules msgRules) *Report {
	r := &Report{}
	ctVersion := c.checkTransportMeta(meta, rules, r)

	dec := xml.NewDecoder(bytes.NewReader(raw))
	depth := 0
	sawRoot := false
	var rootName xml.Name
	inBody := false
	bodyDepth := 0
	bodyChildren := 0
	isFault := false
	faultNS := ""
	var faultFields map[string]bool
	var tokenErr error

	for {
		tok, err := dec.Token()
		if err != nil {
			if err != io.EOF {
				tokenErr = err
			}
			break
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			switch {
			case depth == 1:
				sawRoot = true
				rootName = t.Name
				if t.Name.Local != "Envelope" || t.Name.Space != rules.envNS {
					r.add(rules.envAssert,
						"root element is {%s}%s", t.Name.Space, t.Name.Local)
				}
			case depth == 2 && t.Name.Local == "Body" &&
				(t.Name.Space == rules.envNS || (rules.versionGuard && isEnvelopeNS(t.Name.Space))):
				inBody = true
				bodyDepth = depth
			case inBody && depth == bodyDepth+1:
				bodyChildren++
				if t.Name.Space == "" {
					r.add(AssertionMsgQualified,
						"body child %q is unqualified", t.Name.Local)
				}
				if t.Name.Local == "Fault" &&
					(t.Name.Space == rules.envNS || (rules.versionGuard && isEnvelopeNS(t.Name.Space))) {
					isFault = true
					faultNS = t.Name.Space
					faultFields = make(map[string]bool, 2)
				}
			case isFault && depth == bodyDepth+2:
				faultFields[t.Name.Local] = true
			}
		case xml.EndElement:
			if inBody && depth == bodyDepth {
				inBody = false
			}
			depth--
		}
	}

	// A payload that never yields a root element is not a soap:Envelope
	// at all — empty bodies, non-XML garbage and truncated-before-root
	// documents must not pass RM9980 by breaking out of the token loop
	// early. A payload whose root parsed but whose XML then broke off
	// is counted as truncated.
	switch {
	case !sawRoot && len(raw) == 0:
		r.add(rules.envAssert, "message payload is empty")
	case !sawRoot && tokenErr != nil:
		r.add(rules.envAssert, "no root element parses in %d bytes: %v", len(raw), tokenErr)
	case !sawRoot:
		r.add(rules.envAssert, "no root element in %d bytes of payload", len(raw))
	case tokenErr != nil:
		r.add(rules.envAssert, "message truncated after %d bytes: %v", len(raw), tokenErr)
	}

	if bodyChildren > 1 {
		r.add(AssertionMsgBodyChild, "body has %d children", bodyChildren)
	}
	if isFault {
		if rules.fault12 {
			if !faultFields["Code"] || !faultFields["Reason"] {
				r.add(AssertionMsgFaultShape12, "fault lacks env:Code and/or env:Reason")
			}
			if meta.HTTPStatus != 0 && meta.HTTPStatus != 400 && meta.HTTPStatus != 500 {
				r.add(AssertionMsgFaultStatus12, "fault returned with HTTP %d", meta.HTTPStatus)
			}
		} else {
			if !faultFields["faultcode"] || !faultFields["faultstring"] {
				r.add(AssertionMsgFaultShape, "fault lacks faultcode and/or faultstring")
			}
			if meta.HTTPStatus != 0 && meta.HTTPStatus != 500 {
				r.add(AssertionMsgFaultStatus, "fault returned with HTTP %d", meta.HTTPStatus)
			}
		}
	}

	if rules.versionGuard {
		c.checkVersionCoherence(rootName, ctVersion, faultNS, faultFields, r)
	}
	return r
}

// isEnvelopeNS reports whether ns is either SOAP envelope namespace.
func isEnvelopeNS(ns string) bool {
	return ns == soapEnvelopeNS || ns == soapEnvelopeNS12
}

// checkVersionCoherence applies the hybrid guard: each version signal
// (envelope namespace, media type, fault element namespace, fault
// child shape) votes 1.1 or 1.2; ballots for both raise RMH001. The
// signal collection deliberately mirrors soap.Detect without calling
// it — see the package comment on checker independence.
func (c *Checker) checkVersionCoherence(root xml.Name, ctVersion int, faultNS string, faultFields map[string]bool, r *Report) {
	var sees11, sees12 bool
	vote := func(ns string) {
		switch ns {
		case soapEnvelopeNS:
			sees11 = true
		case soapEnvelopeNS12:
			sees12 = true
		}
	}
	if root.Local == "Envelope" {
		vote(root.Space)
	}
	vote(faultNS)
	switch ctVersion {
	case 1:
		sees11 = true
	case 2:
		sees12 = true
	}
	if faultFields["faultcode"] || faultFields["faultstring"] {
		sees11 = true
	}
	if faultFields["Code"] || faultFields["Reason"] {
		sees12 = true
	}
	if sees11 && sees12 {
		r.add(AssertionMsgVersionCoherent, "message mixes SOAP 1.1 and SOAP 1.2 version signals")
	}
}

// checkTransportMeta validates the HTTP framing and returns the media
// type's version vote (0 neutral, 1 for text/xml, 2 for
// application/soap+xml) for the hybrid guard.
func (c *Checker) checkTransportMeta(meta MessageMeta, rules msgRules, r *Report) int {
	ctVersion := 0
	if meta.ContentType != "" {
		mediaType, _, err := mime.ParseMediaType(meta.ContentType)
		if err != nil || mediaType != rules.mediaType {
			r.add(rules.ctAssert, "content type %q", meta.ContentType)
		}
		if err == nil {
			switch mediaType {
			case "text/xml":
				ctVersion = 1
			case "application/soap+xml":
				ctVersion = 2
			}
		}
	}
	if meta.SOAPAction != "" {
		v := meta.SOAPAction
		if !strings.HasPrefix(v, `"`) || !strings.HasSuffix(v, `"`) || len(v) < 2 {
			r.add(AssertionMsgSOAPAction, "SOAPAction %s is not quoted", fmt.Sprintf("%q", v))
		}
	}
	return ctVersion
}
