package wsi

import (
	"testing"

	"wsinterop/internal/soap"
)

const cleanEnvelope = `<?xml version="1.0"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Body>
    <m:echo xmlns:m="http://svc.test/">
      <m:input>hello</m:input>
    </m:echo>
  </soap:Body>
</soap:Envelope>`

const cleanFault = `<?xml version="1.0"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Body>
    <soap:Fault>
      <faultcode>soap:Client</faultcode>
      <faultstring>bad</faultstring>
    </soap:Fault>
  </soap:Body>
</soap:Envelope>`

const cleanEnvelope12 = `<?xml version="1.0"?>
<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">
  <env:Body>
    <m:echo xmlns:m="http://svc.test/">
      <m:input>hello</m:input>
    </m:echo>
  </env:Body>
</env:Envelope>`

const cleanFault12 = `<?xml version="1.0"?>
<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">
  <env:Body>
    <env:Fault>
      <env:Code><env:Value>env:Sender</env:Value></env:Code>
      <env:Reason><env:Text xml:lang="en">bad</env:Text></env:Reason>
    </env:Fault>
  </env:Body>
</env:Envelope>`

func cleanMeta() MessageMeta {
	return MessageMeta{ContentType: "text/xml; charset=utf-8", SOAPAction: `""`}
}

func cleanMeta12() MessageMeta {
	return MessageMeta{ContentType: "application/soap+xml; charset=utf-8"}
}

func TestCheckMessageClean(t *testing.T) {
	r := NewChecker().CheckMessage([]byte(cleanEnvelope), cleanMeta())
	if len(r.Violations) != 0 {
		t.Errorf("clean message has findings: %v", r.Violations)
	}
}

func TestCheckMessageWrongEnvelopeNamespace(t *testing.T) {
	bad := `<Envelope xmlns="urn:wrong"><Body/></Envelope>`
	r := NewChecker().CheckMessage([]byte(bad), cleanMeta())
	if !violated(r, AssertionMsgEnvelope.ID) {
		t.Errorf("expected RM9980, got %v", r.Violations)
	}
}

func TestCheckMessageMultipleBodyChildren(t *testing.T) {
	bad := `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
	<soap:Body>
	  <a:x xmlns:a="urn:a"/><a:y xmlns:a="urn:a"/>
	</soap:Body></soap:Envelope>`
	r := NewChecker().CheckMessage([]byte(bad), cleanMeta())
	if !violated(r, AssertionMsgBodyChild.ID) {
		t.Errorf("expected RM1011, got %v", r.Violations)
	}
}

func TestCheckMessageUnqualifiedChild(t *testing.T) {
	bad := `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
	<soap:Body><echo/></soap:Body></soap:Envelope>`
	r := NewChecker().CheckMessage([]byte(bad), cleanMeta())
	if !violated(r, AssertionMsgQualified.ID) {
		t.Errorf("expected RM1014, got %v", r.Violations)
	}
}

func TestCheckMessageContentType(t *testing.T) {
	meta := cleanMeta()
	meta.ContentType = "application/soap+xml" // SOAP 1.2's type: not BP 1.1
	r := NewChecker().CheckMessage([]byte(cleanEnvelope), meta)
	if !violated(r, AssertionMsgContentType.ID) {
		t.Errorf("expected RM1119, got %v", r.Violations)
	}
}

func TestCheckMessageSOAPActionQuoting(t *testing.T) {
	meta := cleanMeta()
	meta.SOAPAction = "http://unquoted/action"
	r := NewChecker().CheckMessage([]byte(cleanEnvelope), meta)
	if !violated(r, AssertionMsgSOAPAction.ID) {
		t.Errorf("expected RM1109, got %v", r.Violations)
	}
	meta.SOAPAction = `"http://quoted/action"`
	r = NewChecker().CheckMessage([]byte(cleanEnvelope), meta)
	if violated(r, AssertionMsgSOAPAction.ID) {
		t.Errorf("quoted SOAPAction should pass, got %v", r.Violations)
	}
}

func TestCheckMessageFaultShape(t *testing.T) {
	r := NewChecker().CheckMessage([]byte(cleanFault), MessageMeta{
		ContentType: "text/xml", HTTPStatus: 500,
	})
	if len(r.Violations) != 0 {
		t.Errorf("well-formed fault has findings: %v", r.Violations)
	}

	bad := `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
	<soap:Body><soap:Fault><faultstring>x</faultstring></soap:Fault></soap:Body></soap:Envelope>`
	r = NewChecker().CheckMessage([]byte(bad), MessageMeta{ContentType: "text/xml", HTTPStatus: 500})
	if !violated(r, AssertionMsgFaultShape.ID) {
		t.Errorf("expected RM1004, got %v", r.Violations)
	}
}

func TestCheckMessageFaultStatus(t *testing.T) {
	r := NewChecker().CheckMessage([]byte(cleanFault), MessageMeta{
		ContentType: "text/xml", HTTPStatus: 200,
	})
	if !violated(r, AssertionMsgFaultStatus.ID) {
		t.Errorf("expected RM1126, got %v", r.Violations)
	}
}

func TestMessageAssertionIDsUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range append(AllAssertions(), MessageAssertions()...) {
		if seen[a.ID] {
			t.Errorf("duplicate assertion ID %s", a.ID)
		}
		seen[a.ID] = true
	}
}

// TestCheckMessageCodecClean12: a clean 1.2 exchange passes the 1.2
// rules, and a clean 1.2 fault may ride HTTP 400 (the 1.2 binding's
// Sender status).
func TestCheckMessageCodecClean12(t *testing.T) {
	c := NewChecker()
	if r := c.CheckMessageCodec([]byte(cleanEnvelope12), cleanMeta12(), soap.V12); len(r.Violations) != 0 {
		t.Errorf("clean 1.2 message has findings: %v", r.Violations)
	}
	meta := cleanMeta12()
	meta.HTTPStatus = 400
	if r := c.CheckMessageCodec([]byte(cleanFault12), meta, soap.V12); len(r.Violations) != 0 {
		t.Errorf("clean 1.2 fault at 400 has findings: %v", r.Violations)
	}
}

// TestCheckMessageCodecHybrid: the guard flags a version mix that is
// invisible to each single-version rule set — a 1.1 envelope under
// 1.2 framing, and a 1.2-shaped fault inside a 1.1 envelope.
func TestCheckMessageCodecHybrid(t *testing.T) {
	c := NewChecker()
	r := c.CheckMessageCodec([]byte(cleanEnvelope), cleanMeta12(), soap.V11)
	found := false
	for _, v := range r.Violations {
		if v.Assertion.ID == AssertionMsgVersionCoherent.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("hybrid framing not flagged under RMH001: %v", r.Violations)
	}
	hybrid := `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
	<soap:Body><env:Fault xmlns:env="http://www.w3.org/2003/05/soap-envelope">
	<env:Code><env:Value>env:Sender</env:Value></env:Code>
	<env:Reason><env:Text>x</env:Text></env:Reason></env:Fault></soap:Body></soap:Envelope>`
	r = c.CheckMessageCodec([]byte(hybrid), MessageMeta{ContentType: "text/xml", HTTPStatus: 500}, soap.V11)
	found = false
	for _, v := range r.Violations {
		if v.Assertion.ID == AssertionMsgVersionCoherent.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("hybrid fault not flagged under RMH001: %v", r.Violations)
	}
}
