// Package wsi implements a WS-I Basic Profile 1.1-style compliance
// checker for WSDL 1.1 service descriptions.
//
// The Web Services Interoperability Organization's Basic Profile is a
// set of testable assertions that constrain how the underlying
// standards (WSDL 1.1, SOAP 1.1, XML Schema) may be used, so that
// descriptions remain consumable by every mainstream toolkit. This
// package implements the assertion families the study's corpus
// exercises: resolvable schema references, SOAP-over-HTTP bindings,
// literal use, consistent styles, declared soapAction attributes, and
// the recommended XSD facet vocabulary.
//
// Beyond the profile itself the checker offers one *extended*
// assertion, EXT4001, flagging WSDLs that declare no operations. The
// paper (§IV.A) shows such documents pass the official WS-I check yet
// are unusable, and argues the schema's minimum operation count should
// be raised — EXT4001 is that recommendation, implemented.
package wsi

import (
	"fmt"

	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// Assertion identifies one profile assertion.
type Assertion struct {
	// ID is the assertion identifier. IDs follow the BP numbering
	// style (Rxxxx); extended assertions use the EXT prefix.
	ID string
	// Description states the requirement.
	Description string
	// Extended marks assertions beyond the official profile.
	Extended bool
}

// Violation is one failed assertion instance.
type Violation struct {
	Assertion Assertion
	// Detail describes the offending construct.
	Detail string
}

// String renders the violation in report style.
func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (%s)", v.Assertion.ID, v.Detail, v.Assertion.Description)
}

// Report is the outcome of checking one document.
type Report struct {
	// Violations lists every failed assertion instance, profile
	// assertions first.
	Violations []Violation
}

// Compliant reports whether the document passes every assertion of
// the official profile. Extended-assertion findings do not affect
// compliance.
func (r *Report) Compliant() bool {
	for _, v := range r.Violations {
		if !v.Assertion.Extended {
			return false
		}
	}
	return true
}

// ExtendedFindings returns only the extended (beyond-profile)
// violations.
func (r *Report) ExtendedFindings() []Violation {
	var out []Violation
	for _, v := range r.Violations {
		if v.Assertion.Extended {
			out = append(out, v)
		}
	}
	return out
}

// Assertions implemented by the checker.
var (
	AssertionResolvableRefs = Assertion{
		ID:          "R2001",
		Description: "a DESCRIPTION must only use QName references that can be resolved within the description or its imports",
	}
	AssertionImportLocation = Assertion{
		ID:          "R2007",
		Description: "an xsd:import must not omit the schemaLocation attribute",
	}
	AssertionTargetNamespace = Assertion{
		ID:          "R2105",
		Description: "all xsd:schema elements contained in a types element must have a targetNamespace",
	}
	AssertionStandardFacets = Assertion{
		ID:          "R2112",
		Description: "simple type restrictions must use only XML Schema facets",
	}
	AssertionNoForeignAttrs = Assertion{
		ID:          "R2113",
		Description: "element declarations must not reference attributes from foreign vocabularies such as xml:lang",
	}
	AssertionSOAPTransport = Assertion{
		ID:          "R2702",
		Description: "a wsdl:binding must use the SOAP/HTTP transport",
	}
	AssertionLiteralUse = Assertion{
		ID:          "R2706",
		Description: "a wsdl:binding must use use=\"literal\" in soapbind:body elements",
	}
	AssertionConsistentStyle = Assertion{
		ID:          "R2705",
		Description: "a wsdl:binding must use the same operation style for all its operations",
	}
	AssertionSOAPAction = Assertion{
		ID:          "R2745",
		Description: "soapbind:operation must declare a soapAction attribute",
	}
	AssertionBindingResolves = Assertion{
		ID:          "R2101",
		Description: "binding, portType, message and service references must resolve within the description",
	}
	AssertionPartReference = Assertion{
		ID:          "R2204",
		Description: "document-literal message parts must reference global element declarations",
	}
	AssertionRPCPartType = Assertion{
		ID:          "R2203",
		Description: "rpc-literal message parts must use the type attribute",
	}
	AssertionRPCNamespace = Assertion{
		ID:          "R2717",
		Description: "rpc-literal soapbind:body elements must declare a namespace attribute",
	}
	AssertionDocNoNamespace = Assertion{
		ID:          "R2716",
		Description: "document-literal soapbind:body elements must not declare a namespace attribute",
	}
	AssertionUniqueOperations = Assertion{
		ID:          "R2304",
		Description: "operations within a wsdl:portType must have unique names",
	}
	AssertionServicePresent = Assertion{
		ID:          "R2800",
		Description: "a DESCRIPTION must include at least one wsdl:service with a SOAP port",
	}
	AssertionHasOperations = Assertion{
		ID:          "EXT4001",
		Description: "a usable DESCRIPTION should declare at least one operation (extended assertion; see DSN'14 §IV.A)",
		Extended:    true,
	}
)

// AllAssertions lists every assertion of the default (BP 1.1)
// profile, in check order. Other registered profiles advertise their
// own sets through Profile.Assertions.
func AllAssertions() []Assertion {
	return []Assertion{
		AssertionResolvableRefs, AssertionImportLocation,
		AssertionTargetNamespace, AssertionStandardFacets,
		AssertionNoForeignAttrs, AssertionSOAPTransport,
		AssertionLiteralUse, AssertionConsistentStyle,
		AssertionSOAPAction, AssertionBindingResolves,
		AssertionPartReference, AssertionRPCPartType,
		AssertionRPCNamespace, AssertionDocNoNamespace,
		AssertionUniqueOperations, AssertionServicePresent,
		AssertionHasOperations,
	}
}

// Checker verifies WSDL documents against one compliance profile. The
// zero value runs every assertion of the default BP 1.1 profile; use
// NewChecker for option handling.
type Checker struct {
	// profile is the compliance profile to check against; nil means
	// the default BP 1.1 profile.
	profile *Profile
	// skipExtended disables the extended assertions, reproducing the
	// official tool's behaviour.
	skipExtended bool
}

// Option customizes a Checker.
type Option func(*Checker)

// WithoutExtended disables the extended assertions so the checker
// matches the official WS-I tool, which the paper shows is blind to
// zero-operation WSDLs.
func WithoutExtended() Option {
	return func(c *Checker) { c.skipExtended = true }
}

// WithProfile selects the compliance profile the checker verifies
// against. A nil profile keeps the default (BP 1.1).
func WithProfile(p *Profile) Option {
	return func(c *Checker) { c.profile = p }
}

// NewChecker creates a checker.
func NewChecker(opts ...Option) *Checker {
	c := &Checker{}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Profile returns the profile this checker verifies against.
func (c *Checker) Profile() *Profile {
	if c.profile != nil {
		return c.profile
	}
	return DefaultProfile()
}

// Check runs every assertion of the checker's profile against the
// document and returns the report. A nil document yields a single
// R2101 violation.
func (c *Checker) Check(d *wsdl.Definitions) *Report {
	p := c.Profile()
	r := &Report{}
	if d == nil {
		r.add(AssertionBindingResolves, "no description document")
		return r
	}
	for _, chk := range p.checks {
		chk(d, r)
	}
	if !c.skipExtended {
		for _, chk := range p.extended {
			chk(d, r)
		}
	}
	return r
}

func (r *Report) add(a Assertion, format string, args ...any) {
	r.Violations = append(r.Violations, Violation{
		Assertion: a,
		Detail:    fmt.Sprintf(format, args...),
	})
}

func checkSchemas(d *wsdl.Definitions, r *Report) {
	if d.Types == nil || len(d.Types.Schemas) == 0 {
		return
	}
	for _, sch := range d.Types.Schemas {
		if sch == nil {
			// A broken set; Resolve reports it below.
			continue
		}
		if sch.TargetNamespace == "" {
			r.add(AssertionTargetNamespace, "schema without targetNamespace")
		}
		for _, imp := range sch.Imports {
			if imp.SchemaLocation == "" {
				r.add(AssertionImportLocation, "import of %q omits schemaLocation", imp.Namespace)
			}
		}
		for _, st := range sch.SimpleTypes {
			for _, f := range st.Facets {
				if !xsd.IsStandardFacet(f.Name) {
					r.add(AssertionStandardFacets,
						"simpleType %q uses non-standard facet %q", st.Name, f.Name)
				}
			}
		}
		checkForeignAttrs(sch, r)
	}
	unresolved, err := d.Types.Resolve()
	if err != nil {
		// A set too broken to resolve at all is the profile violation,
		// not a free pass: every QName reference into it is unresolvable.
		r.add(AssertionResolvableRefs, "schema resolution failed: %v", err)
		return
	}
	for _, u := range unresolved {
		r.add(AssertionResolvableRefs, "%s", u.Error())
	}
}

func checkForeignAttrs(sch *xsd.Schema, r *Report) {
	// Most schemas carry no foreign attribute at all; probe with an
	// allocation-free walk first and build the location strings only
	// for the schemas that will actually report.
	if !schemaHasForeignAttr(sch) {
		return
	}
	var walk func(ct *xsd.ComplexType, where string)
	walk = func(ct *xsd.ComplexType, where string) {
		for _, at := range ct.Attributes {
			if at.Ref.Space == xsd.NamespaceXML {
				r.add(AssertionNoForeignAttrs,
					"%s references foreign attribute %s", where, at.Ref)
			}
		}
		for i := range ct.Sequence {
			if ct.Sequence[i].Inline != nil {
				walk(ct.Sequence[i].Inline, where+"/"+ct.Sequence[i].Name)
			}
		}
	}
	for i := range sch.ComplexTypes {
		walk(&sch.ComplexTypes[i], "complexType "+sch.ComplexTypes[i].Name)
	}
	for i := range sch.Elements {
		if sch.Elements[i].Inline != nil {
			walk(sch.Elements[i].Inline, "element "+sch.Elements[i].Name)
		}
	}
}

// schemaHasForeignAttr reports whether any complex type in the schema
// (at any inline depth) references an xml-namespace attribute.
func schemaHasForeignAttr(sch *xsd.Schema) bool {
	for i := range sch.ComplexTypes {
		if ctHasForeignAttr(&sch.ComplexTypes[i]) {
			return true
		}
	}
	for i := range sch.Elements {
		if sch.Elements[i].Inline != nil && ctHasForeignAttr(sch.Elements[i].Inline) {
			return true
		}
	}
	return false
}

func ctHasForeignAttr(ct *xsd.ComplexType) bool {
	for _, at := range ct.Attributes {
		if at.Ref.Space == xsd.NamespaceXML {
			return true
		}
	}
	for i := range ct.Sequence {
		if ct.Sequence[i].Inline != nil && ctHasForeignAttr(ct.Sequence[i].Inline) {
			return true
		}
	}
	return false
}

func checkStructure(d *wsdl.Definitions, r *Report) {
	for _, se := range d.Validate() {
		r.add(AssertionBindingResolves, "%s", se.Error())
	}
	for _, pt := range d.PortTypes {
		seen := make(map[string]bool, len(pt.Operations))
		for _, op := range pt.Operations {
			if seen[op.Name] {
				r.add(AssertionUniqueOperations,
					"portType %q declares operation %q more than once", pt.Name, op.Name)
			}
			seen[op.Name] = true
		}
	}
	// R2800 requires a SOAP port, not merely a port: each port's
	// binding must resolve and use the SOAP/HTTP transport (an empty
	// transport serializes as SOAP/HTTP, so it counts).
	hasSOAPPort := false
	for _, svc := range d.Services {
		for _, p := range svc.Ports {
			b := d.Binding(p.Binding)
			if b == nil {
				continue
			}
			if b.Transport == "" || b.Transport == wsdl.NamespaceSOAPHTTP {
				hasSOAPPort = true
			}
		}
	}
	if !hasSOAPPort {
		r.add(AssertionServicePresent, "no wsdl:service with a SOAP port")
	}
	// Per-style part constraints: document-literal parts must
	// reference elements (R2204), rpc-literal parts must reference
	// types (R2203).
	for _, b := range d.Bindings {
		rpc := b.Style == wsdl.StyleRPC
		pt := d.PortType(b.PortType)
		if pt == nil {
			continue
		}
		for _, op := range pt.Operations {
			for _, ref := range []wsdl.IORef{op.Input, op.Output} {
				if ref.Message == "" {
					continue
				}
				m := d.Message(ref.Message)
				if m == nil {
					continue
				}
				for _, part := range m.Parts {
					switch {
					case !rpc && part.Element.IsZero() && !part.Type.IsZero():
						r.add(AssertionPartReference,
							"message %q part %q uses a type reference under a document-style binding", m.Name, part.Name)
					case rpc && part.Type.IsZero() && !part.Element.IsZero():
						r.add(AssertionRPCPartType,
							"message %q part %q uses an element reference under an rpc-style binding", m.Name, part.Name)
					}
				}
			}
		}
	}
}

func checkBindings(d *wsdl.Definitions, r *Report) {
	for bi := range d.Bindings {
		b := &d.Bindings[bi]
		if b.Transport != "" && b.Transport != wsdl.NamespaceSOAPHTTP {
			r.add(AssertionSOAPTransport,
				"binding %q uses transport %q", b.Name, b.Transport)
		}
		rpc := b.Style == wsdl.StyleRPC
		var firstStyle wsdl.Style
		mixed := false
		for oi := range b.Operations {
			bop := &b.Operations[oi]
			if bop.OmitSOAPAction {
				r.add(AssertionSOAPAction,
					"binding %q operation %q does not declare a soapAction attribute", b.Name, bop.Name)
			}
			es := b.EffectiveStyle(bop)
			if firstStyle == "" {
				firstStyle = es
			} else if es != firstStyle {
				mixed = true
			}
			if bop.InputUse == wsdl.UseEncoded || bop.OutputUse == wsdl.UseEncoded {
				r.add(AssertionLiteralUse,
					"binding %q operation %q uses encoded bodies", b.Name, bop.Name)
			}
			switch {
			case rpc && bop.BodyNamespace == "":
				r.add(AssertionRPCNamespace,
					"binding %q operation %q omits the soapbind:body namespace", b.Name, bop.Name)
			case !rpc && bop.BodyNamespace != "":
				r.add(AssertionDocNoNamespace,
					"binding %q operation %q declares a soapbind:body namespace", b.Name, bop.Name)
			}
		}
		if mixed {
			r.add(AssertionConsistentStyle,
				"binding %q mixes document and rpc operation styles", b.Name)
		}
	}
}

// checkExtendedOperations is the extended EXT4001 check: a usable
// description declares at least one operation (DSN'14 §IV.A).
func checkExtendedOperations(d *wsdl.Definitions, r *Report) {
	if d.OperationCount() == 0 {
		r.add(AssertionHasOperations, "description declares no operations")
	}
}
