package wsi

import (
	"strings"
	"testing"

	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

func TestNameInvariantClassification(t *testing.T) {
	sensitive := map[string]bool{"R2105": true, "R2001": true, "R2101": true}
	for _, a := range AllAssertions() {
		if got, want := NameInvariant(a), !sensitive[a.ID]; got != want {
			t.Errorf("NameInvariant(%s) = %v, want %v", a.ID, got, want)
		}
	}
	for _, a := range MessageAssertions() {
		if !NameInvariant(a) {
			t.Errorf("message assertion %s should be name-invariant", a.ID)
		}
	}
}

func TestSubstitutionSafe(t *testing.T) {
	cases := []struct {
		service, namespace, simple string
		want                       bool
	}{
		{"EchoSvc", "http://types.example.org/", "Point", true},
		{"_svc", "urn:a", "T_1", true},
		// Invalid NCNames.
		{"", "urn:a", "T", false},
		{"1Svc", "urn:a", "T", false},
		{"a:b", "urn:a", "T", false},
		{"Svc", "urn:a", "ty pe", false},
		{"S vc", "urn:a", "T", false},
		// Degenerate namespaces.
		{"Svc", "", "T", false},
		{"Svc", "urn:a&b", "T", false},
		{"Svc", "urn:a\"b", "T", false},
		{"Svc", "urn:\xc3\xa9", "T", false},
		{"Svc", "urn:a\nb", "T", false},
		// Reserved specification namespaces.
		{"Svc", xsd.NamespaceXSD, "T", false},
		{"Svc", xsd.NamespaceXML, "T", false},
		{"Svc", wsdl.NamespaceWSDL, "T", false},
		{"Svc", wsdl.NamespaceSOAP, "T", false},
		{"Svc", wsdl.NamespaceSOAPHTTP, "T", false},
	}
	for _, c := range cases {
		if got := SubstitutionSafe(c.service, c.namespace, c.simple); got != c.want {
			t.Errorf("SubstitutionSafe(%q, %q, %q) = %v, want %v",
				c.service, c.namespace, c.simple, got, c.want)
		}
	}
}

// substitutedDoc builds a minimal but complete document-literal
// description whose name-derived strings are exactly the three
// template variable slots — the document family the campaign's shape
// templates substitute into.
func substitutedDoc(service, namespace, simple string) *wsdl.Definitions {
	elem := xsd.QName{Space: namespace, Local: simple}
	return &wsdl.Definitions{
		Name:            service,
		TargetNamespace: namespace,
		Types: xsd.NewSchemaSet(&xsd.Schema{
			TargetNamespace: namespace,
			Elements: []xsd.Element{
				{Name: simple, Inline: &xsd.ComplexType{
					Sequence: []xsd.Element{{Name: "value", Type: xsd.TypeString}},
				}},
			},
		}),
		Messages: []wsdl.Message{
			{Name: "echoRequest", Parts: []wsdl.Part{{Name: "parameters", Element: elem}}},
			{Name: "echoResponse", Parts: []wsdl.Part{{Name: "parameters", Element: elem}}},
		},
		PortTypes: []wsdl.PortType{
			{Name: service + "PortType", Operations: []wsdl.Operation{
				{Name: "echo",
					Input:  wsdl.IORef{Message: "echoRequest"},
					Output: wsdl.IORef{Message: "echoResponse"}},
			}},
		},
		Bindings: []wsdl.Binding{
			{Name: service + "Binding", PortType: service + "PortType",
				Transport: wsdl.NamespaceSOAPHTTP, Style: wsdl.StyleDocument,
				Operations: []wsdl.BindingOperation{
					{Name: "echo", SOAPAction: namespace + "echo",
						InputUse: wsdl.UseLiteral, OutputUse: wsdl.UseLiteral},
				}},
		},
		Services: []wsdl.Service{
			{Name: service, Ports: []wsdl.Port{
				{Name: service + "Port", Binding: service + "Binding",
					Location: "http://localhost/" + service},
			}},
		},
	}
}

func verdictIDs(r *Report) string {
	ids := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		ids[i] = v.Assertion.ID
	}
	return strings.Join(ids, ",")
}

// FuzzWSISubstitutionSafe is the chunk-predicate soundness fuzz: for
// any (service, namespace, simple) triple the predicates accept,
// substituting the triple into a document must leave the checker's
// violated-assertion sequence identical to a known-good baseline's —
// including after a serialize → re-parse round trip, which is how a
// rendered template's bytes would actually reach a consumer. Hostile
// seeds concentrate on NCName edge forms and strings that mimic the
// template chunk boundaries (sentinel tokens, attribute-closing
// quotes, namespace collisions).
func FuzzWSISubstitutionSafe(f *testing.F) {
	f.Add("EchoSvc", "http://types.example.org/", "Point")
	// Sentinel tokens: exactly what sits at template chunk boundaries.
	f.Add("Zz9ShapeSvcQx", "http://zz9shapepkgqx/", "Zz9ShapeTypeQx")
	// NCName edge forms.
	f.Add("_", "urn:a", "_")
	f.Add("1Svc", "urn:a", "Point")
	f.Add("a:b", "urn:a", "c:d")
	f.Add("svc-with.dots_и", "urn:a", "T·x")
	// Chunk-boundary escapes: values that would terminate the
	// enclosing attribute or element if substituted unescaped.
	f.Add(`Svc"/><fake>`, "urn:a", `T"><!--`)
	f.Add("Svc", `urn:a"/><wsdl:binding name="X`, "T")
	f.Add("Svc&amp;", "urn:a&amp;b", "T&lt;")
	// Reserved namespace collisions.
	f.Add("Svc", xsd.NamespaceXSD, "T")
	f.Add("Svc", wsdl.NamespaceWSDL, "T")
	// Whitespace and controls crossing boundaries.
	f.Add("Svc\n", "urn:a\tb", "T\r")

	checker := NewChecker()
	baseline := verdictIDs(checker.Check(substitutedDoc("BaseSvc", "urn:wsi-base", "BaseType")))

	f.Fuzz(func(t *testing.T, service, namespace, simple string) {
		if !SubstitutionSafe(service, namespace, simple) {
			return // rejected: the campaign takes the per-class path
		}
		doc := substitutedDoc(service, namespace, simple)
		if got := verdictIDs(checker.Check(doc)); got != baseline {
			t.Fatalf("verdict changed under substitution (%q, %q, %q): got [%s], baseline [%s]",
				service, namespace, simple, got, baseline)
		}
		raw, err := wsdl.Marshal(doc)
		if err != nil {
			t.Fatalf("marshal (%q, %q, %q): %v", service, namespace, simple, err)
		}
		reparsed, err := wsdl.Unmarshal(raw)
		if err != nil {
			t.Fatalf("re-parse (%q, %q, %q): %v", service, namespace, simple, err)
		}
		if got := verdictIDs(checker.Check(reparsed)); got != baseline {
			t.Fatalf("verdict changed after round trip (%q, %q, %q): got [%s], baseline [%s]",
				service, namespace, simple, got, baseline)
		}
	})
}
