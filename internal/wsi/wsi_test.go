package wsi

import (
	"strings"
	"testing"

	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// cleanDoc builds a document that passes every assertion.
func cleanDoc() *wsdl.Definitions {
	tns := "http://clean.test/"
	sch := &xsd.Schema{
		TargetNamespace:    tns,
		ElementFormDefault: "qualified",
		ComplexTypes: []xsd.ComplexType{{
			Name:     "Payload",
			Sequence: []xsd.Element{{Name: "v", Type: xsd.TypeString, Occurs: xsd.Once}},
		}},
		Elements: []xsd.Element{
			{Name: "echo", Inline: &xsd.ComplexType{Sequence: []xsd.Element{
				{Name: "input", Type: xsd.QName{Space: tns, Local: "Payload"}, Occurs: xsd.Once},
			}}},
			{Name: "echoResponse", Inline: &xsd.ComplexType{Sequence: []xsd.Element{
				{Name: "return", Type: xsd.QName{Space: tns, Local: "Payload"}, Occurs: xsd.Once},
			}}},
		},
	}
	return &wsdl.Definitions{
		Name:            "Clean",
		TargetNamespace: tns,
		Types:           xsd.NewSchemaSet(sch),
		Messages: []wsdl.Message{
			{Name: "in", Parts: []wsdl.Part{{Name: "parameters", Element: xsd.QName{Space: tns, Local: "echo"}}}},
			{Name: "out", Parts: []wsdl.Part{{Name: "parameters", Element: xsd.QName{Space: tns, Local: "echoResponse"}}}},
		},
		PortTypes: []wsdl.PortType{{
			Name: "PT",
			Operations: []wsdl.Operation{{
				Name: "echo", Input: wsdl.IORef{Message: "in"}, Output: wsdl.IORef{Message: "out"},
			}},
		}},
		Bindings: []wsdl.Binding{{
			Name: "B", PortType: "PT",
			Transport: wsdl.NamespaceSOAPHTTP, Style: wsdl.StyleDocument,
			Operations: []wsdl.BindingOperation{{
				Name: "echo", InputUse: wsdl.UseLiteral, OutputUse: wsdl.UseLiteral,
			}},
		}},
		Services: []wsdl.Service{{
			Name:  "S",
			Ports: []wsdl.Port{{Name: "P", Binding: "B", Location: "http://localhost/clean"}},
		}},
	}
}

func violated(r *Report, id string) bool {
	for _, v := range r.Violations {
		if v.Assertion.ID == id {
			return true
		}
	}
	return false
}

func TestCleanDocumentPasses(t *testing.T) {
	r := NewChecker().Check(cleanDoc())
	if len(r.Violations) != 0 {
		t.Errorf("clean document has findings: %v", r.Violations)
	}
	if !r.Compliant() {
		t.Error("clean document should be compliant")
	}
}

func TestNilDocument(t *testing.T) {
	r := NewChecker().Check(nil)
	if r.Compliant() {
		t.Error("nil document must not be compliant")
	}
	if !violated(r, AssertionBindingResolves.ID) {
		t.Errorf("expected R2101, got %v", r.Violations)
	}
}

func TestUnresolvedReferenceFailsR2001(t *testing.T) {
	d := cleanDoc()
	sch := d.Types.Schemas[0]
	sch.ComplexTypes[0].Sequence = append(sch.ComplexTypes[0].Sequence, xsd.Element{
		Ref: xsd.QName{Space: "http://www.w3.org/2005/08/addressing", Local: "EndpointReference"},
	})
	r := NewChecker().Check(d)
	if !violated(r, AssertionResolvableRefs.ID) {
		t.Errorf("expected R2001, got %v", r.Violations)
	}
	if r.Compliant() {
		t.Error("document with dangling reference must not be compliant")
	}
}

func TestImportWithoutLocationFailsR2007(t *testing.T) {
	d := cleanDoc()
	d.Types.Schemas[0].Imports = []xsd.Import{{Namespace: "http://ext/"}}
	r := NewChecker().Check(d)
	if !violated(r, AssertionImportLocation.ID) {
		t.Errorf("expected R2007, got %v", r.Violations)
	}
}

func TestMissingTargetNamespaceFailsR2105(t *testing.T) {
	d := cleanDoc()
	d.Types.Schemas[0].TargetNamespace = ""
	r := NewChecker().Check(d)
	if !violated(r, AssertionTargetNamespace.ID) {
		t.Errorf("expected R2105, got %v", r.Violations)
	}
}

func TestNonStandardFacetFailsR2112(t *testing.T) {
	d := cleanDoc()
	d.Types.Schemas[0].SimpleTypes = []xsd.SimpleType{{
		Name: "Odd", Base: xsd.TypeString,
		Facets: []xsd.Facet{{Name: "jaxb-format", Value: "x"}},
	}}
	r := NewChecker().Check(d)
	if !violated(r, AssertionStandardFacets.ID) {
		t.Errorf("expected R2112, got %v", r.Violations)
	}
}

func TestStandardFacetPasses(t *testing.T) {
	d := cleanDoc()
	d.Types.Schemas[0].SimpleTypes = []xsd.SimpleType{{
		Name: "Fine", Base: xsd.TypeString,
		Facets: []xsd.Facet{{Name: "pattern", Value: "[a-z]+"}},
	}}
	r := NewChecker().Check(d)
	if len(r.Violations) != 0 {
		t.Errorf("standard facet should pass, got %v", r.Violations)
	}
}

func TestXMLLangAttributeFailsR2113(t *testing.T) {
	d := cleanDoc()
	d.Types.Schemas[0].ComplexTypes[0].Attributes = []xsd.Attribute{
		{Ref: xsd.QName{Space: xsd.NamespaceXML, Local: "lang"}},
	}
	r := NewChecker().Check(d)
	if !violated(r, AssertionNoForeignAttrs.ID) {
		t.Errorf("expected R2113, got %v", r.Violations)
	}
}

func TestXMLLangInsideInlineTypeDetected(t *testing.T) {
	d := cleanDoc()
	sch := d.Types.Schemas[0]
	sch.Elements[0].Inline.Sequence = append(sch.Elements[0].Inline.Sequence, xsd.Element{
		Name: "nested",
		Inline: &xsd.ComplexType{
			Attributes: []xsd.Attribute{{Ref: xsd.QName{Space: xsd.NamespaceXML, Local: "lang"}}},
		},
	})
	r := NewChecker().Check(d)
	if !violated(r, AssertionNoForeignAttrs.ID) {
		t.Errorf("expected R2113 for nested attribute, got %v", r.Violations)
	}
}

func TestNonHTTPTransportFailsR2702(t *testing.T) {
	d := cleanDoc()
	d.Bindings[0].Transport = "http://schemas.xmlsoap.org/soap/smtp"
	r := NewChecker().Check(d)
	if !violated(r, AssertionSOAPTransport.ID) {
		t.Errorf("expected R2702, got %v", r.Violations)
	}
}

func TestEncodedUseFailsR2706(t *testing.T) {
	d := cleanDoc()
	d.Bindings[0].Operations[0].InputUse = wsdl.UseEncoded
	r := NewChecker().Check(d)
	if !violated(r, AssertionLiteralUse.ID) {
		t.Errorf("expected R2706, got %v", r.Violations)
	}
}

func TestDuplicateOperationsFailR2304(t *testing.T) {
	d := cleanDoc()
	ops := d.PortTypes[0].Operations
	d.PortTypes[0].Operations = append(ops, ops[0])
	d.Bindings[0].Operations = append(d.Bindings[0].Operations, d.Bindings[0].Operations[0])
	r := NewChecker().Check(d)
	if !violated(r, AssertionUniqueOperations.ID) {
		t.Errorf("expected R2304, got %v", r.Violations)
	}
}

func TestNoServiceFailsR2800(t *testing.T) {
	d := cleanDoc()
	d.Services = nil
	r := NewChecker().Check(d)
	if !violated(r, AssertionServicePresent.ID) {
		t.Errorf("expected R2800, got %v", r.Violations)
	}
}

func TestTypePartUnderDocumentStyleFailsR2204(t *testing.T) {
	d := cleanDoc()
	d.Messages[0].Parts[0] = wsdl.Part{Name: "arg", Type: xsd.TypeString}
	r := NewChecker().Check(d)
	if !violated(r, AssertionPartReference.ID) {
		t.Errorf("expected R2204, got %v", r.Violations)
	}
}

func TestZeroOperationsExtendedAssertion(t *testing.T) {
	d := cleanDoc()
	d.PortTypes[0].Operations = nil
	d.Bindings[0].Operations = nil
	d.Messages = nil

	r := NewChecker().Check(d)
	if !violated(r, AssertionHasOperations.ID) {
		t.Errorf("expected EXT4001, got %v", r.Violations)
	}
	if !r.Compliant() {
		// The whole point of the paper's §IV.A recommendation: the
		// official profile passes such documents.
		t.Error("zero-operation document should remain profile-compliant")
	}
	if len(r.ExtendedFindings()) != 1 {
		t.Errorf("expected 1 extended finding, got %v", r.ExtendedFindings())
	}

	official := NewChecker(WithoutExtended()).Check(d)
	if violated(official, AssertionHasOperations.ID) {
		t.Error("official mode must not run extended assertions")
	}
	if len(official.Violations) != 0 {
		t.Errorf("official mode findings: %v", official.Violations)
	}
}

func TestWildcardIsCompliant(t *testing.T) {
	d := cleanDoc()
	d.Types.Schemas[0].ComplexTypes[0].Any = []xsd.AnyParticle{
		{Namespace: "##any", ProcessContents: "lax"},
	}
	r := NewChecker().Check(d)
	if !r.Compliant() || len(r.Violations) != 0 {
		// s:any is legal schema — the paper's DataTable services pass
		// WS-I despite being unusable by several generators.
		t.Errorf("wildcard content should be compliant, got %v", r.Violations)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Assertion: AssertionResolvableRefs, Detail: "dangling thing"}
	s := v.String()
	if !strings.Contains(s, "R2001") || !strings.Contains(s, "dangling thing") {
		t.Errorf("unhelpful violation string: %q", s)
	}
}

func TestAllAssertionsHaveUniqueIDs(t *testing.T) {
	seen := make(map[string]bool)
	for _, a := range AllAssertions() {
		if a.ID == "" || a.Description == "" {
			t.Errorf("assertion %+v incomplete", a)
		}
		if seen[a.ID] {
			t.Errorf("duplicate assertion ID %s", a.ID)
		}
		seen[a.ID] = true
	}
}
