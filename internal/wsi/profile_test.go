package wsi

import (
	"sort"
	"testing"

	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

func TestProfileRegistry(t *testing.T) {
	profiles := Profiles()
	if len(profiles) < 2 {
		t.Fatalf("registry has %d profiles, want at least 2 (bp11 + ivoa)", len(profiles))
	}
	if profiles[0].ID != "bp11" {
		t.Errorf("first registered profile = %q, want bp11 (roster order is verdict-mask order)", profiles[0].ID)
	}
	if DefaultProfile().ID != "bp11" {
		t.Errorf("default profile = %q, want bp11", DefaultProfile().ID)
	}
	for _, id := range []string{"bp11", "ivoa"} {
		p, ok := Lookup(id)
		if !ok || p.ID != id {
			t.Errorf("Lookup(%q) = %v, %v", id, p, ok)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of an unregistered ID must fail")
	}
	ids := ProfileIDs()
	if !sort.StringsAreSorted(ids) {
		t.Errorf("ProfileIDs not sorted: %v", ids)
	}
	if len(ids) != len(profiles) {
		t.Errorf("ProfileIDs has %d entries, registry has %d", len(ids), len(profiles))
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("re-registering bp11 should panic")
		}
	}()
	Register(&Profile{ID: "bp11"})
}

func TestCheckerProfileSelection(t *testing.T) {
	if got := NewChecker().Profile(); got != DefaultProfile() {
		t.Errorf("zero checker profile = %q, want the default", got.ID)
	}
	ivoa, _ := Lookup("ivoa")
	if got := NewChecker(WithProfile(ivoa)).Profile(); got != ivoa {
		t.Errorf("WithProfile checker profile = %q, want ivoa", got.ID)
	}
}

// ivoaDoc is the clean document upgraded to IVOA compliance: document
// style throughout (already true) plus service metadata.
func ivoaDoc() *wsdl.Definitions {
	d := cleanDoc()
	d.Documentation = "Echoes a payload back to the caller."
	return d
}

func TestIVOACleanDocumentPasses(t *testing.T) {
	ivoa, _ := Lookup("ivoa")
	r := NewChecker(WithProfile(ivoa)).Check(ivoaDoc())
	if len(r.Violations) != 0 {
		t.Errorf("IVOA-clean document has findings: %v", r.Violations)
	}
}

func TestIVOARequiresDocumentation(t *testing.T) {
	ivoa, _ := Lookup("ivoa")
	d := ivoaDoc()
	d.Documentation = "  \n "
	r := NewChecker(WithProfile(ivoa)).Check(d)
	if !violated(r, AssertionIVOAMetadata.ID) {
		t.Errorf("expected IVB2402, got %v", r.Violations)
	}
	// BP 1.1 does not require documentation.
	if bp := NewChecker().Check(d); !bp.Compliant() {
		t.Errorf("bp11 must not require documentation: %v", bp.Violations)
	}
}

func TestIVOARejectsRPCStyle(t *testing.T) {
	ivoa, _ := Lookup("ivoa")
	d := rpcDoc()
	d.Documentation = "rpc service"
	r := NewChecker(WithProfile(ivoa)).Check(d)
	if !violated(r, AssertionIVOADocumentStyle.ID) {
		t.Errorf("expected IVB2201, got %v", r.Violations)
	}
	// The same document is clean under BP 1.1 (rpc/literal is allowed).
	if bp := NewChecker().Check(d); !bp.Compliant() {
		t.Errorf("bp11 allows rpc/literal: %v", bp.Violations)
	}
}

func TestIVOARejectsPerOperationRPCStyle(t *testing.T) {
	ivoa, _ := Lookup("ivoa")
	d := ivoaDoc()
	d.Bindings[0].Operations[0].Style = wsdl.StyleRPC
	r := NewChecker(WithProfile(ivoa)).Check(d)
	if !violated(r, AssertionIVOADocumentStyle.ID) {
		t.Errorf("expected IVB2201 for per-operation rpc override, got %v", r.Violations)
	}
}

func TestProfileEvaluateMatchesChecker(t *testing.T) {
	docs := map[string]*wsdl.Definitions{
		"clean": cleanDoc(),
		"rpc":   rpcDoc(),
		"ivoa":  ivoaDoc(),
		"nil":   nil,
	}
	for _, p := range Profiles() {
		// Evaluate runs core checks only, so compare against the
		// extended-free checker.
		c := NewChecker(WithProfile(p), WithoutExtended())
		for name, d := range docs {
			want := c.Check(d)
			got := p.Evaluate(d)
			if len(got.Violations) != len(want.Violations) {
				t.Errorf("%s/%s: Evaluate found %d violations, Check found %d",
					p.ID, name, len(got.Violations), len(want.Violations))
				continue
			}
			for i := range got.Violations {
				if got.Violations[i].Assertion.ID != want.Violations[i].Assertion.ID {
					t.Errorf("%s/%s: violation %d = %s, want %s", p.ID, name, i,
						got.Violations[i].Assertion.ID, want.Violations[i].Assertion.ID)
				}
			}
		}
	}
}

func TestProfileNameInvarianceClassification(t *testing.T) {
	for _, p := range Profiles() {
		for _, a := range p.Assertions() {
			want := NameInvariant(a)
			if p.ID == "bp11" && p.NameInvariant(a) != want {
				t.Errorf("bp11 classification of %s diverges from the package-level NameInvariant", a.ID)
			}
		}
	}
	ivoa, _ := Lookup("ivoa")
	for _, a := range []Assertion{AssertionIVOADocumentStyle, AssertionIVOAMetadata} {
		if !ivoa.NameInvariant(a) {
			t.Errorf("%s inspects structure/metadata only; must be name-invariant", a.ID)
		}
	}
}

// ---- fixture meta-test ----

// docFixtures maps every description-level assertion ID to a document
// that triggers it. The meta-test below requires an entry for each
// assertion a profile advertises, so a "phantom" assertion — declared
// in a roster but emitted by no check — cannot reappear.
func docFixtures() map[string]*wsdl.Definitions {
	f := make(map[string]*wsdl.Definitions)

	d := cleanDoc()
	sch := d.Types.Schemas[0]
	sch.ComplexTypes[0].Sequence = append(sch.ComplexTypes[0].Sequence, xsd.Element{
		Ref: xsd.QName{Space: "http://elsewhere.test/", Local: "Missing"},
	})
	f["R2001"] = d

	d = cleanDoc()
	d.Types.Schemas[0].Imports = []xsd.Import{{Namespace: "http://ext/"}}
	f["R2007"] = d

	d = cleanDoc()
	d.Types.Schemas[0].TargetNamespace = ""
	f["R2105"] = d

	d = cleanDoc()
	d.Types.Schemas[0].SimpleTypes = []xsd.SimpleType{{
		Name: "Odd", Base: xsd.TypeString,
		Facets: []xsd.Facet{{Name: "jaxb-format", Value: "x"}},
	}}
	f["R2112"] = d

	d = cleanDoc()
	d.Types.Schemas[0].ComplexTypes[0].Attributes = []xsd.Attribute{
		{Ref: xsd.QName{Space: xsd.NamespaceXML, Local: "lang"}},
	}
	f["R2113"] = d

	d = cleanDoc()
	d.Bindings[0].Transport = "http://schemas.xmlsoap.org/soap/smtp"
	f["R2702"] = d

	d = cleanDoc()
	d.Bindings[0].Operations[0].InputUse = wsdl.UseEncoded
	f["R2706"] = d

	d = cleanDoc()
	pt := &d.PortTypes[0]
	second := pt.Operations[0]
	second.Name = "echoTwice"
	pt.Operations = append(pt.Operations, second)
	b := &d.Bindings[0]
	bsecond := b.Operations[0]
	bsecond.Name = "echoTwice"
	bsecond.Style = wsdl.StyleRPC // overrides the binding's document style
	b.Operations = append(b.Operations, bsecond)
	f["R2705"] = d

	d = cleanDoc()
	d.Bindings[0].Operations[0].OmitSOAPAction = true
	f["R2745"] = d

	d = cleanDoc()
	d.Services[0].Ports[0].Binding = "NoSuchBinding"
	f["R2101"] = d

	d = cleanDoc()
	d.Messages[0].Parts[0] = wsdl.Part{Name: "arg", Type: xsd.TypeString}
	f["R2204"] = d

	d = rpcDoc()
	d.Types.Schemas[0].Elements = []xsd.Element{{
		Name: "echo", Type: xsd.QName{Space: d.TargetNamespace, Local: "Payload"},
	}}
	d.Messages[0].Parts[0] = wsdl.Part{
		Name: "input", Element: xsd.QName{Space: d.TargetNamespace, Local: "echo"},
	}
	f["R2203"] = d

	d = rpcDoc()
	d.Bindings[0].Operations[0].BodyNamespace = ""
	f["R2717"] = d

	d = cleanDoc()
	d.Bindings[0].Operations[0].BodyNamespace = d.TargetNamespace
	f["R2716"] = d

	d = cleanDoc()
	d.PortTypes[0].Operations = append(d.PortTypes[0].Operations, d.PortTypes[0].Operations[0])
	d.Bindings[0].Operations = append(d.Bindings[0].Operations, d.Bindings[0].Operations[0])
	f["R2304"] = d

	d = cleanDoc()
	d.Services = nil
	f["R2800"] = d

	d = cleanDoc()
	d.PortTypes[0].Operations = nil
	d.Bindings[0].Operations = nil
	d.Messages = nil
	f["EXT4001"] = d

	d = rpcDoc()
	f["IVB2201"] = d

	d = cleanDoc() // no Documentation set
	f["IVB2402"] = d

	return f
}

// msgFixture is one captured message that triggers a message-level
// assertion.
type msgFixture struct {
	raw  string
	meta MessageMeta
}

func msgFixtures() map[string]msgFixture {
	return map[string]msgFixture{
		"RM9980": {raw: "this is not xml <<<", meta: cleanMeta()},
		"RM1011": {raw: `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
			<soap:Body><a:x xmlns:a="urn:a"/><a:y xmlns:a="urn:a"/></soap:Body></soap:Envelope>`,
			meta: cleanMeta()},
		"RM1014": {raw: `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
			<soap:Body><echo/></soap:Body></soap:Envelope>`, meta: cleanMeta()},
		"RM1119": {raw: cleanEnvelope, meta: MessageMeta{ContentType: "application/json", SOAPAction: `""`}},
		"RM1109": {raw: cleanEnvelope, meta: MessageMeta{ContentType: "text/xml", SOAPAction: "unquoted"}},
		"RM1004": {raw: `<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
			<soap:Body><soap:Fault><faultstring>x</faultstring></soap:Fault></soap:Body></soap:Envelope>`,
			meta: MessageMeta{ContentType: "text/xml", HTTPStatus: 500}},
		"RM1126": {raw: cleanFault, meta: MessageMeta{ContentType: "text/xml", HTTPStatus: 200}},
		// bp20 (SOAP 1.2 / hybrid guard) fixtures.
		"RM9981": {raw: "this is not xml <<<",
			meta: MessageMeta{ContentType: "application/soap+xml"}},
		"RM1130": {raw: cleanEnvelope12, meta: MessageMeta{ContentType: "application/json"}},
		"RM1005": {raw: `<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope">
			<env:Body><env:Fault><env:Reason><env:Text>x</env:Text></env:Reason></env:Fault></env:Body></env:Envelope>`,
			meta: MessageMeta{ContentType: "application/soap+xml", HTTPStatus: 500}},
		"RM1127": {raw: cleanFault12,
			meta: MessageMeta{ContentType: "application/soap+xml", HTTPStatus: 200}},
		"RMH001": {raw: cleanEnvelope, meta: MessageMeta{ContentType: "application/soap+xml"}},
	}
}

// TestEveryAdvertisedAssertionTriggerable proves the advertised
// assertion sets honest for every registered profile: each
// description-level assertion must fire on its fixture document under
// that profile's checker, and each message-level assertion on its
// fixture message. This is the regression fence for the phantom
// R2705/R2745 bug, where AllAssertions advertised IDs no check could
// ever emit.
func TestEveryAdvertisedAssertionTriggerable(t *testing.T) {
	docs := docFixtures()
	msgs := msgFixtures()
	for _, p := range Profiles() {
		c := NewChecker(WithProfile(p))
		for _, a := range p.Assertions() {
			fixture, ok := docs[a.ID]
			if !ok {
				t.Errorf("%s: assertion %s advertised but no fixture exists — phantom assertion?", p.ID, a.ID)
				continue
			}
			if r := c.Check(fixture); !violated(r, a.ID) {
				t.Errorf("%s: assertion %s did not fire on its fixture; got %v", p.ID, a.ID, r.Violations)
			}
		}
		for _, a := range p.MessageAssertions() {
			fixture, ok := msgs[a.ID]
			if !ok {
				t.Errorf("%s: message assertion %s advertised but no fixture exists", p.ID, a.ID)
				continue
			}
			if r := c.CheckMessage([]byte(fixture.raw), fixture.meta); !violated(r, a.ID) {
				t.Errorf("%s: message assertion %s did not fire on its fixture; got %v", p.ID, a.ID, r.Violations)
			}
		}
	}
}
