package wsdl

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"wsinterop/internal/xsd"
)

func TestMarshalDeterministic(t *testing.T) {
	a, err := Marshal(testDefinitions())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	b, err := Marshal(testDefinitions())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Error("WSDL serialization is not byte-stable")
	}
}

func TestMarshalContainsSections(t *testing.T) {
	raw, err := Marshal(testDefinitions())
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	doc := string(raw)
	for _, want := range []string{
		"wsdl:definitions", "wsdl:types", "wsdl:message", "wsdl:portType",
		"wsdl:binding", "wsdl:service", "soap:address", "soap:binding",
		`targetNamespace="http://svc.test/"`, `soapAction=""`,
	} {
		if !strings.Contains(doc, want) {
			t.Errorf("document missing %q:\n%s", want, doc)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	orig := testDefinitions()
	raw, err := Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, raw)
	}

	if got.Name != orig.Name || got.TargetNamespace != orig.TargetNamespace {
		t.Errorf("identity lost: %q %q", got.Name, got.TargetNamespace)
	}
	if !reflect.DeepEqual(got.Messages, orig.Messages) {
		t.Errorf("messages mismatch:\n got %+v\nwant %+v", got.Messages, orig.Messages)
	}
	if !reflect.DeepEqual(got.PortTypes, orig.PortTypes) {
		t.Errorf("portTypes mismatch:\n got %+v\nwant %+v", got.PortTypes, orig.PortTypes)
	}
	if !reflect.DeepEqual(got.Bindings, orig.Bindings) {
		t.Errorf("bindings mismatch:\n got %+v\nwant %+v", got.Bindings, orig.Bindings)
	}
	if !reflect.DeepEqual(got.Services, orig.Services) {
		t.Errorf("services mismatch:\n got %+v\nwant %+v", got.Services, orig.Services)
	}
	if len(got.Types.Schemas) != 1 {
		t.Fatalf("embedded schema lost: %d schemas", len(got.Types.Schemas))
	}
	sch := got.Types.Schemas[0]
	if sch.TargetNamespace != orig.TargetNamespace {
		t.Errorf("schema target namespace = %q", sch.TargetNamespace)
	}
	if len(sch.ComplexTypes) != 1 || len(sch.Elements) != 2 {
		t.Errorf("schema content lost: %d types, %d elements", len(sch.ComplexTypes), len(sch.Elements))
	}
	if _, ok := got.Types.Element(xsd.QName{Space: orig.TargetNamespace, Local: "echo"}); !ok {
		t.Error("echo wrapper element lost in round trip")
	}
}

func TestRoundTripPreservesDanglingRefs(t *testing.T) {
	orig := testDefinitions()
	sch := orig.Types.Schemas[0]
	sch.ComplexTypes[0].Sequence = append(sch.ComplexTypes[0].Sequence, xsd.Element{
		Ref: xsd.QName{Space: "http://www.w3.org/2005/08/addressing", Local: "EndpointReference"},
	})
	raw, err := Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, raw)
	}
	unresolved, err := got.Types.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(unresolved) != 1 {
		t.Errorf("dangling reference lost in round trip: %v\n%s", unresolved, raw)
	}
}

func TestRoundTripZeroOperations(t *testing.T) {
	orig := testDefinitions()
	orig.PortTypes[0].Operations = nil
	orig.Bindings[0].Operations = nil
	orig.Messages = nil
	raw, err := Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.OperationCount() != 0 {
		t.Errorf("operations appeared from nowhere: %d", got.OperationCount())
	}
	if len(got.Services) != 1 {
		t.Errorf("service section lost")
	}
}

func TestRoundTripEmptyTypes(t *testing.T) {
	orig := testDefinitions()
	orig.Types = xsd.NewSchemaSet()
	orig.Messages = nil
	orig.PortTypes[0].Operations = nil
	orig.Bindings[0].Operations = nil
	raw, err := Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(got.Types.Schemas) != 0 {
		t.Errorf("expected empty types, got %d schemas", len(got.Types.Schemas))
	}
}

func TestRoundTripFaults(t *testing.T) {
	orig := testDefinitions()
	orig.Messages = append(orig.Messages, Message{
		Name:  "echoFault",
		Parts: []Part{{Name: "fault", Element: xsd.QName{Space: orig.TargetNamespace, Local: "echo"}}},
	})
	orig.PortTypes[0].Operations[0].Faults = []IORef{{Name: "echoFault", Message: "echoFault"}}
	raw, err := Marshal(orig)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	faults := got.PortTypes[0].Operations[0].Faults
	if len(faults) != 1 || faults[0].Message != "echoFault" {
		t.Errorf("fault refs lost: %+v", faults)
	}
}

func TestUnmarshalRejectsNonWSDL(t *testing.T) {
	// A definitions element in the wrong namespace is detected by the
	// namespace check.
	_, err := Unmarshal([]byte(`<definitions xmlns="urn:not-wsdl"></definitions>`))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("expected ParseError, got %v", err)
	}
	if !errors.Is(err, ErrNoDefinitions) {
		t.Errorf("expected ErrNoDefinitions, got %v", err)
	}
	// Any other root element fails at the XML layer.
	if _, err := Unmarshal([]byte(`<html></html>`)); err == nil {
		t.Error("expected error for non-definitions root")
	}
}

func TestUnmarshalRejectsMalformedXML(t *testing.T) {
	_, err := Unmarshal([]byte(`<wsdl:definitions`))
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("expected ParseError, got %v", err)
	}
}

func TestUnmarshalRPCStyleTypeParts(t *testing.T) {
	doc := `<?xml version="1.0"?>
	<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
	  xmlns:xs="http://www.w3.org/2001/XMLSchema"
	  xmlns:tns="http://rpc.test/" targetNamespace="http://rpc.test/">
	  <wsdl:types></wsdl:types>
	  <wsdl:message name="req">
	    <wsdl:part name="arg" type="xs:string"/>
	  </wsdl:message>
	</wsdl:definitions>`
	d, err := Unmarshal([]byte(doc))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	part := d.Messages[0].Parts[0]
	if part.Type != xsd.TypeString {
		t.Errorf("part type = %v, want xs:string", part.Type)
	}
	if !part.Element.IsZero() {
		t.Errorf("part element should be zero, got %v", part.Element)
	}
}

func TestUnmarshalUndeclaredPrefixFails(t *testing.T) {
	doc := `<?xml version="1.0"?>
	<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
	  targetNamespace="http://bad.test/">
	  <wsdl:message name="req"><wsdl:part name="p" element="nope:el"/></wsdl:message>
	</wsdl:definitions>`
	if _, err := Unmarshal([]byte(doc)); err == nil {
		t.Error("expected error for undeclared prefix in part element")
	}
}

func TestMarshalDocumentationEscaped(t *testing.T) {
	d := testDefinitions()
	d.Documentation = `contains <angle> & "quotes"`
	raw, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, raw)
	}
	if got.Documentation != d.Documentation {
		t.Errorf("documentation = %q, want %q", got.Documentation, d.Documentation)
	}
}
