package wsdl

import (
	"bytes"
	"fmt"
)

// This file implements the template-split half of the campaign's
// structural-shape memoization (DESIGN.md §6.6): a marshaled document
// is split at every occurrence of a set of variable strings, yielding
// an immutable template that can be re-rendered with a different
// value per variable. Rendering is pure byte concatenation — orders
// of magnitude cheaper than re-publishing and re-marshaling a
// same-shape document.

// Template is a marshaled document split at variable occurrences:
// len(chunks) == len(slots)+1 literal byte runs interleaved with
// variable slots. A Template is immutable after NewTemplate and safe
// for concurrent Render calls.
type Template struct {
	chunks [][]byte
	slots  []int
	// literal is the total literal byte length, for render sizing.
	literal int
	// counts tracks occurrences per variable, for sizing and stats.
	counts []int
}

// NewTemplate splits raw at every occurrence of the given variable
// strings. Occurrences are found leftmost-first; where two variables
// match at the same position the longer wins, so a variable that is a
// prefix of another cannot shadow it. Variables must be non-empty and
// pairwise distinct.
func NewTemplate(raw []byte, vars []string) (*Template, error) {
	for i, v := range vars {
		if v == "" {
			return nil, fmt.Errorf("wsdl template: variable %d is empty", i)
		}
		for j := 0; j < i; j++ {
			if vars[j] == v {
				return nil, fmt.Errorf("wsdl template: variable %q appears twice", v)
			}
		}
	}
	t := &Template{counts: make([]int, len(vars))}
	// Cache each variable's next occurrence (absolute position in raw)
	// so the split is one forward scan per variable instead of a fresh
	// search per chunk. A cached match at or past the cursor is still
	// the leftmost one — any earlier match would have been found by the
	// search that produced it.
	varBytes := make([][]byte, len(vars))
	next := make([]int, len(vars))
	occurrences := 0
	for i, v := range vars {
		varBytes[i] = []byte(v)
		next[i] = bytes.Index(raw, varBytes[i])
		// Raw per-variable counts over-estimate when matches shadow each
		// other, which only costs a little slack in the exact-size
		// allocations below.
		occurrences += bytes.Count(raw, varBytes[i])
	}
	t.chunks = make([][]byte, 0, occurrences+1)
	t.slots = make([]int, 0, occurrences)
	off := 0
	for off < len(raw) {
		slot, pos := -1, len(raw)
		for i := range vars {
			if p := next[i]; p >= 0 && p < off {
				p = bytes.Index(raw[off:], varBytes[i])
				if p >= 0 {
					p += off
				}
				next[i] = p
			}
			p := next[i]
			if p < 0 || p > pos {
				continue
			}
			// Longer match wins at equal positions.
			if p < pos || len(vars[i]) > len(vars[slot]) {
				slot, pos = i, p
			}
		}
		if slot < 0 {
			break
		}
		t.chunks = append(t.chunks, raw[off:pos])
		t.literal += pos - off
		t.slots = append(t.slots, slot)
		t.counts[slot]++
		off = pos + len(vars[slot])
	}
	t.chunks = append(t.chunks, raw[off:])
	t.literal += len(raw) - off
	return t, nil
}

// MarshalTemplate marshals the document and splits the output at the
// variable strings — the shape-memo entry point.
func MarshalTemplate(d *Definitions, vars []string) (*Template, error) {
	raw, err := Marshal(d)
	if err != nil {
		return nil, err
	}
	return NewTemplate(raw, vars)
}

// Slots returns the number of variable occurrences in the template.
func (t *Template) Slots() int { return len(t.slots) }

// Render substitutes vals (one per variable, in NewTemplate order)
// into the template and returns the assembled document.
func (t *Template) Render(vals []string) ([]byte, error) {
	if len(vals) != len(t.counts) {
		return nil, fmt.Errorf("wsdl template: %d values for %d variables", len(vals), len(t.counts))
	}
	n := t.literal
	for i, c := range t.counts {
		n += c * len(vals[i])
	}
	out := make([]byte, 0, n)
	for i, slot := range t.slots {
		out = append(out, t.chunks[i]...)
		out = append(out, vals[slot]...)
	}
	out = append(out, t.chunks[len(t.chunks)-1]...)
	return out, nil
}
