package wsdl

import (
	"fmt"
	"sort"

	"wsinterop/internal/xsd"
)

// Diff computes a structural comparison of two service descriptions.
// The study's root cause analysis repeatedly compares what different
// emitters publish for the same class (Metro vs JBossWS vs Axis2
// variants of W3CEndpointReference differ only in their import
// declarations, yet split the client field into three behaviours);
// Diff makes those emitter deltas first-class.
//
// The comparison is structural and order-insensitive where the
// specification is order-insensitive (operations, messages, global
// schema declarations), and covers the properties the client models
// react to: binding style and body namespace, soapAction values,
// imports and their locations, schema global declarations, simple
// type facets and reference particles.

// Delta is one structural difference between two descriptions.
type Delta struct {
	// Area localizes the difference (e.g. "binding", "schema",
	// "imports", "operations").
	Area string
	// Detail describes it, naming both sides as A and B.
	Detail string
}

// String renders the delta.
func (d Delta) String() string { return d.Area + ": " + d.Detail }

// Diff returns every structural difference between a and b. An empty
// result means the descriptions are structurally equivalent.
func Diff(a, b *Definitions) []Delta {
	var out []Delta
	add := func(area, format string, args ...any) {
		out = append(out, Delta{Area: area, Detail: fmt.Sprintf(format, args...)})
	}

	if a.TargetNamespace != b.TargetNamespace {
		add("definitions", "target namespace A=%q B=%q", a.TargetNamespace, b.TargetNamespace)
	}
	if a.OperationCount() != b.OperationCount() {
		add("operations", "operation count A=%d B=%d", a.OperationCount(), b.OperationCount())
	}
	diffOperations(a, b, add)
	diffBindings(a, b, add)
	diffSchemas(a, b, add)
	return out
}

func diffOperations(a, b *Definitions, add func(string, string, ...any)) {
	ops := func(d *Definitions) map[string]bool {
		m := make(map[string]bool)
		for _, pt := range d.PortTypes {
			for _, op := range pt.Operations {
				m[op.Name] = true
			}
		}
		return m
	}
	ao, bo := ops(a), ops(b)
	for _, name := range sortedKeys(ao) {
		if !bo[name] {
			add("operations", "operation %q only in A", name)
		}
	}
	for _, name := range sortedKeys(bo) {
		if !ao[name] {
			add("operations", "operation %q only in B", name)
		}
	}
	// Message part shapes for shared operations.
	for _, name := range sortedKeys(ao) {
		if !bo[name] {
			continue
		}
		pa, pb := partShape(a, name), partShape(b, name)
		if pa != pb {
			add("messages", "operation %q input shape A=%s B=%s", name, pa, pb)
		}
	}
}

// partShape summarizes how an operation's input message references
// its payload: by element or by type.
func partShape(d *Definitions, opName string) string {
	for _, pt := range d.PortTypes {
		for _, op := range pt.Operations {
			if op.Name != opName {
				continue
			}
			m := d.Message(op.Input.Message)
			if m == nil || len(m.Parts) == 0 {
				return "none"
			}
			if !m.Parts[0].Element.IsZero() {
				return fmt.Sprintf("element(%d parts)", len(m.Parts))
			}
			return fmt.Sprintf("type(%d parts)", len(m.Parts))
		}
	}
	return "none"
}

func diffBindings(a, b *Definitions, add func(string, string, ...any)) {
	styleOf := func(d *Definitions) (Style, string, string) {
		for _, bd := range d.Bindings {
			style := bd.Style
			if style == "" {
				style = StyleDocument
			}
			for _, op := range bd.Operations {
				return style, op.SOAPAction, op.BodyNamespace
			}
			return style, "", ""
		}
		return "", "", ""
	}
	sa, actA, nsA := styleOf(a)
	sb, actB, nsB := styleOf(b)
	if sa != sb {
		add("binding", "style A=%q B=%q", sa, sb)
	}
	if (actA == "") != (actB == "") {
		add("binding", "soapAction A=%q B=%q", actA, actB)
	}
	if nsA != nsB {
		add("binding", "body namespace A=%q B=%q", nsA, nsB)
	}
}

func diffSchemas(a, b *Definitions, add func(string, string, ...any)) {
	type importShape struct{ ns, loc string }
	collect := func(d *Definitions) (imports map[importShape]bool, globals map[string]bool, facets map[string]bool, refs map[string]bool) {
		imports = make(map[importShape]bool)
		globals = make(map[string]bool)
		facets = make(map[string]bool)
		refs = make(map[string]bool)
		if d.Types == nil {
			return
		}
		for _, sch := range d.Types.Schemas {
			for _, imp := range sch.Imports {
				imports[importShape{imp.Namespace, imp.SchemaLocation}] = true
			}
			for _, name := range (&xsd.SchemaSet{Schemas: []*xsd.Schema{sch}}).GlobalNames() {
				globals[name] = true
			}
			for _, st := range sch.SimpleTypes {
				for _, f := range st.Facets {
					facets[f.Name] = true
				}
			}
			for i := range sch.ComplexTypes {
				collectRefs(&sch.ComplexTypes[i], refs)
			}
		}
		return
	}
	ia, ga, fa, ra := collect(a)
	ib, gb, fb, rb := collect(b)

	for imp := range ia {
		if !ib[imp] {
			add("imports", "import {%s loc=%q} only in A", imp.ns, imp.loc)
		}
	}
	for imp := range ib {
		if !ia[imp] {
			add("imports", "import {%s loc=%q} only in B", imp.ns, imp.loc)
		}
	}
	diffStringSets("schema", "global declaration", ga, gb, add)
	diffStringSets("facets", "facet", fa, fb, add)
	diffStringSets("references", "reference particle", ra, rb, add)
}

func collectRefs(ct *xsd.ComplexType, refs map[string]bool) {
	for i := range ct.Sequence {
		el := &ct.Sequence[i]
		if !el.Ref.IsZero() {
			refs[el.Ref.String()] = true
		}
		if el.Inline != nil {
			collectRefs(el.Inline, refs)
		}
	}
	for _, at := range ct.Attributes {
		if !at.Ref.IsZero() {
			refs[at.Ref.String()] = true
		}
	}
}

func diffStringSets(area, what string, a, b map[string]bool, add func(string, string, ...any)) {
	for _, k := range sortedKeys(a) {
		if !b[k] {
			add(area, "%s %q only in A", what, k)
		}
	}
	for _, k := range sortedKeys(b) {
		if !a[k] {
			add(area, "%s %q only in B", what, k)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
