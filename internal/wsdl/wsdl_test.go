package wsdl

import (
	"strings"
	"testing"

	"wsinterop/internal/xsd"
)

// testDefinitions builds a minimal but complete echo-service document.
func testDefinitions() *Definitions {
	tns := "http://svc.test/"
	sch := &xsd.Schema{
		TargetNamespace:    tns,
		ElementFormDefault: "qualified",
		ComplexTypes: []xsd.ComplexType{{
			Name: "Payload",
			Sequence: []xsd.Element{
				{Name: "value", Type: xsd.TypeString, Occurs: xsd.Optional},
			},
		}},
		Elements: []xsd.Element{
			{Name: "echo", Inline: &xsd.ComplexType{Sequence: []xsd.Element{
				{Name: "input", Type: xsd.QName{Space: tns, Local: "Payload"}, Occurs: xsd.Once},
			}}},
			{Name: "echoResponse", Inline: &xsd.ComplexType{Sequence: []xsd.Element{
				{Name: "return", Type: xsd.QName{Space: tns, Local: "Payload"}, Occurs: xsd.Once},
			}}},
		},
	}
	return &Definitions{
		Name:            "EchoService",
		TargetNamespace: tns,
		Types:           xsd.NewSchemaSet(sch),
		Messages: []Message{
			{Name: "echoRequest", Parts: []Part{{Name: "parameters", Element: xsd.QName{Space: tns, Local: "echo"}}}},
			{Name: "echoResponse", Parts: []Part{{Name: "parameters", Element: xsd.QName{Space: tns, Local: "echoResponse"}}}},
		},
		PortTypes: []PortType{{
			Name: "EchoPortType",
			Operations: []Operation{{
				Name:   "echo",
				Input:  IORef{Message: "echoRequest"},
				Output: IORef{Message: "echoResponse"},
			}},
		}},
		Bindings: []Binding{{
			Name:      "EchoBinding",
			PortType:  "EchoPortType",
			Transport: NamespaceSOAPHTTP,
			Style:     StyleDocument,
			Operations: []BindingOperation{{
				Name: "echo", SOAPAction: "", InputUse: UseLiteral, OutputUse: UseLiteral,
			}},
		}},
		Services: []Service{{
			Name: "EchoService",
			Ports: []Port{{
				Name: "EchoPort", Binding: "EchoBinding",
				Location: "http://localhost:8080/echo",
			}},
		}},
	}
}

func TestLookups(t *testing.T) {
	d := testDefinitions()
	if d.Message("echoRequest") == nil {
		t.Error("Message(echoRequest) = nil")
	}
	if d.Message("missing") != nil {
		t.Error("Message(missing) should be nil")
	}
	if d.PortType("EchoPortType") == nil {
		t.Error("PortType lookup failed")
	}
	if d.Binding("EchoBinding") == nil {
		t.Error("Binding lookup failed")
	}
	if got := d.OperationCount(); got != 1 {
		t.Errorf("OperationCount = %d, want 1", got)
	}
}

func TestValidateClean(t *testing.T) {
	if errs := testDefinitions().Validate(); len(errs) != 0 {
		t.Errorf("clean document should validate, got %v", errs)
	}
}

func TestValidateFindsEveryDefect(t *testing.T) {
	t.Run("dangling message", func(t *testing.T) {
		d := testDefinitions()
		d.PortTypes[0].Operations[0].Input.Message = "missing"
		if errs := d.Validate(); len(errs) != 1 || errs[0].Section != "portType" {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("dangling portType", func(t *testing.T) {
		d := testDefinitions()
		d.Bindings[0].PortType = "missing"
		if errs := d.Validate(); len(errs) != 1 || errs[0].Section != "binding" {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("binding op not in portType", func(t *testing.T) {
		d := testDefinitions()
		d.Bindings[0].Operations[0].Name = "other"
		if errs := d.Validate(); len(errs) != 1 || errs[0].Section != "binding" {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("dangling binding in port", func(t *testing.T) {
		d := testDefinitions()
		d.Services[0].Ports[0].Binding = "missing"
		if errs := d.Validate(); len(errs) != 1 || errs[0].Section != "service" {
			t.Errorf("got %v", errs)
		}
	})
	t.Run("dangling part element", func(t *testing.T) {
		d := testDefinitions()
		d.Messages[0].Parts[0].Element = xsd.QName{Space: d.TargetNamespace, Local: "missing"}
		if errs := d.Validate(); len(errs) != 1 || errs[0].Section != "message" {
			t.Errorf("got %v", errs)
		}
	})
}

func TestValidateReportsAllProblems(t *testing.T) {
	d := testDefinitions()
	d.Bindings[0].PortType = "missing"
	d.Services[0].Ports[0].Binding = "alsoMissing"
	errs := d.Validate()
	if len(errs) != 2 {
		t.Errorf("expected both problems reported, got %v", errs)
	}
}

func TestZeroOperationDocument(t *testing.T) {
	d := testDefinitions()
	d.PortTypes[0].Operations = nil
	d.Bindings[0].Operations = nil
	d.Messages = nil
	if got := d.OperationCount(); got != 0 {
		t.Errorf("OperationCount = %d, want 0", got)
	}
	if errs := d.Validate(); len(errs) != 0 {
		// The zero-operation WSDL is structurally valid — that is the
		// paper's point.
		t.Errorf("zero-operation document should validate, got %v", errs)
	}
}

func TestStructuralErrorMessage(t *testing.T) {
	e := &StructuralError{Section: "binding", Detail: "broken"}
	if !strings.Contains(e.Error(), "binding") || !strings.Contains(e.Error(), "broken") {
		t.Errorf("unhelpful error: %q", e.Error())
	}
}
