package wsdl

import (
	"strings"
	"testing"

	"wsinterop/internal/xsd"
)

func TestDiffIdentical(t *testing.T) {
	if deltas := Diff(testDefinitions(), testDefinitions()); len(deltas) != 0 {
		t.Errorf("identical documents differ: %v", deltas)
	}
}

func hasDelta(deltas []Delta, area, substr string) bool {
	for _, d := range deltas {
		if d.Area == area && strings.Contains(d.Detail, substr) {
			return true
		}
	}
	return false
}

func TestDiffOperations(t *testing.T) {
	a, b := testDefinitions(), testDefinitions()
	b.PortTypes[0].Operations = nil
	b.Bindings[0].Operations = nil
	deltas := Diff(a, b)
	if !hasDelta(deltas, "operations", "operation count") {
		t.Errorf("missing operation-count delta: %v", deltas)
	}
	if !hasDelta(deltas, "operations", `"echo" only in A`) {
		t.Errorf("missing operation-name delta: %v", deltas)
	}
}

func TestDiffBindingStyleAndAction(t *testing.T) {
	a, b := testDefinitions(), testDefinitions()
	b.Bindings[0].Style = StyleRPC
	b.Bindings[0].Operations[0].SOAPAction = "urn:act"
	b.Bindings[0].Operations[0].BodyNamespace = "urn:tns"
	deltas := Diff(a, b)
	for _, want := range []string{"style", "soapAction", "body namespace"} {
		if !hasDelta(deltas, "binding", want) {
			t.Errorf("missing binding delta %q: %v", want, deltas)
		}
	}
}

func TestDiffImports(t *testing.T) {
	a, b := testDefinitions(), testDefinitions()
	b.Types.Schemas[0].Imports = []xsd.Import{{Namespace: "urn:ext", SchemaLocation: "x.xsd"}}
	deltas := Diff(a, b)
	if !hasDelta(deltas, "imports", "only in B") {
		t.Errorf("missing import delta: %v", deltas)
	}
	// Same namespace but different location is still a difference.
	a.Types.Schemas[0].Imports = []xsd.Import{{Namespace: "urn:ext"}}
	deltas = Diff(a, b)
	if !hasDelta(deltas, "imports", "only in A") || !hasDelta(deltas, "imports", "only in B") {
		t.Errorf("location difference not detected: %v", deltas)
	}
}

func TestDiffSchemaContent(t *testing.T) {
	a, b := testDefinitions(), testDefinitions()
	sch := b.Types.Schemas[0]
	sch.SimpleTypes = append(sch.SimpleTypes, xsd.SimpleType{
		Name: "Odd", Base: xsd.TypeString,
		Facets: []xsd.Facet{{Name: "jaxb-format", Value: "y"}},
	})
	sch.ComplexTypes[0].Sequence = append(sch.ComplexTypes[0].Sequence, xsd.Element{
		Ref: xsd.QName{Space: xsd.NamespaceXSD, Local: "schema"},
	})
	deltas := Diff(a, b)
	if !hasDelta(deltas, "schema", `"Odd" only in B`) {
		t.Errorf("missing global-declaration delta: %v", deltas)
	}
	if !hasDelta(deltas, "facets", "jaxb-format") {
		t.Errorf("missing facet delta: %v", deltas)
	}
	if !hasDelta(deltas, "references", "schema") {
		t.Errorf("missing reference delta: %v", deltas)
	}
}

func TestDiffPartShape(t *testing.T) {
	a, b := testDefinitions(), testDefinitions()
	b.Messages[0].Parts = []Part{{Name: "arg", Type: xsd.TypeString}}
	deltas := Diff(a, b)
	if !hasDelta(deltas, "messages", "input shape") {
		t.Errorf("missing part-shape delta: %v", deltas)
	}
}
