// Package wsdl implements an object model for WSDL 1.1 service
// description documents together with XML serialization and parsing.
//
// The model covers the document structure that SOAP web service
// frameworks emit for document/literal and rpc/literal services:
// embedded XSD schemas (<types>), abstract messages, port types with
// operations, SOAP bindings, and service/port endpoints. It is the
// interchange artifact at the centre of the interoperability study:
// server-side framework subsystems produce these documents and
// client-side subsystems consume them.
package wsdl

import (
	"fmt"

	"wsinterop/internal/xsd"
)

// Namespace constants for WSDL 1.1 and its SOAP 1.1 binding.
const (
	NamespaceWSDL     = "http://schemas.xmlsoap.org/wsdl/"
	NamespaceSOAP     = "http://schemas.xmlsoap.org/wsdl/soap/"
	NamespaceSOAPHTTP = "http://schemas.xmlsoap.org/soap/http"
)

// Style is the SOAP binding style.
type Style string

// Binding styles defined by WSDL 1.1.
const (
	StyleDocument Style = "document"
	StyleRPC      Style = "rpc"
)

// Use is the SOAP body use attribute.
type Use string

// Body uses defined by WSDL 1.1. WS-I Basic Profile permits only
// literal.
const (
	UseLiteral Use = "literal"
	UseEncoded Use = "encoded"
)

// Definitions is the root of a WSDL 1.1 document.
type Definitions struct {
	Name            string
	TargetNamespace string
	Documentation   string
	Types           *xsd.SchemaSet
	Messages        []Message
	PortTypes       []PortType
	Bindings        []Binding
	Services        []Service
}

// Message is an abstract message with typed parts.
type Message struct {
	Name  string
	Parts []Part
}

// Part is one message part, referencing either a global element
// (document style) or a type (rpc style).
type Part struct {
	Name    string
	Element xsd.QName // element reference (document/literal)
	Type    xsd.QName // type reference (rpc)
}

// PortType is the abstract interface: a named set of operations.
type PortType struct {
	Name       string
	Operations []Operation
}

// Operation is one abstract operation with input and output messages
// (request-response MEP; the study's services are all echo-style
// request-response).
type Operation struct {
	Name   string
	Input  IORef
	Output IORef
	Faults []IORef
}

// IORef references a message by local name within the document's
// target namespace.
type IORef struct {
	Name    string
	Message string
}

// Binding binds a port type to SOAP 1.1 over HTTP.
type Binding struct {
	Name       string
	PortType   string // local name of the bound port type
	Transport  string // soap:binding transport URI
	Style      Style
	Operations []BindingOperation
}

// BindingOperation carries the per-operation SOAP binding details.
// BodyNamespace is the soapbind:body namespace attribute, which WS-I
// requires for rpc-literal bindings (R2717) and forbids for
// document-literal ones.
type BindingOperation struct {
	Name          string
	SOAPAction    string
	InputUse      Use
	OutputUse     Use
	BodyNamespace string
	// Style is the per-operation soapbind:operation style attribute;
	// empty means the operation inherits the binding's style. WS-I
	// R2705 requires every operation of a binding to use one style.
	Style Style
	// OmitSOAPAction records that the parsed soapbind:operation carried
	// no soapAction attribute at all — distinct from soapAction="",
	// which is a declared (empty) action and satisfies WS-I R2745. The
	// zero value means "declared", matching both the documents this
	// model constructs programmatically and the serializer, which
	// always emits the attribute unless this flag is set.
	OmitSOAPAction bool
}

// EffectiveStyle resolves the operation's SOAP style against the
// binding default: the per-operation style when declared, otherwise
// the binding's style, otherwise document (the WSDL 1.1 default).
func (b *Binding) EffectiveStyle(bop *BindingOperation) Style {
	if bop.Style != "" {
		return bop.Style
	}
	if b.Style != "" {
		return b.Style
	}
	return StyleDocument
}

// Service exposes ports at concrete endpoint addresses.
type Service struct {
	Name  string
	Ports []Port
}

// Port is one endpoint: a binding plus a location URI.
type Port struct {
	Name     string
	Binding  string // local name of the binding
	Location string
}

// Message returns the message with the given local name, or nil.
func (d *Definitions) Message(name string) *Message {
	for i := range d.Messages {
		if d.Messages[i].Name == name {
			return &d.Messages[i]
		}
	}
	return nil
}

// PortType returns the port type with the given local name, or nil.
func (d *Definitions) PortType(name string) *PortType {
	for i := range d.PortTypes {
		if d.PortTypes[i].Name == name {
			return &d.PortTypes[i]
		}
	}
	return nil
}

// Binding returns the binding with the given local name, or nil.
func (d *Definitions) Binding(name string) *Binding {
	for i := range d.Bindings {
		if d.Bindings[i].Name == name {
			return &d.Bindings[i]
		}
	}
	return nil
}

// OperationCount returns the total number of abstract operations
// across all port types. Zero operations is the "unusable WSDL"
// condition §IV.A of the study highlights.
func (d *Definitions) OperationCount() int {
	n := 0
	for i := range d.PortTypes {
		n += len(d.PortTypes[i].Operations)
	}
	return n
}

// StructuralError describes an internal inconsistency in a WSDL
// document discovered by Validate.
type StructuralError struct {
	Section string // e.g. "binding", "service", "message"
	Detail  string
}

// Error implements the error interface.
func (e *StructuralError) Error() string {
	return fmt.Sprintf("wsdl %s: %s", e.Section, e.Detail)
}

// Validate checks referential integrity of the document: operations
// reference declared messages, bindings reference declared port types
// (and mirror their operations), service ports reference declared
// bindings, and document-style parts reference schema elements that
// exist. It returns every problem found rather than stopping at the
// first, because the results-classification step needs the full list.
func (d *Definitions) Validate() []*StructuralError {
	var errs []*StructuralError
	for _, pt := range d.PortTypes {
		for _, op := range pt.Operations {
			for _, ref := range []IORef{op.Input, op.Output} {
				if ref.Message == "" {
					continue
				}
				if d.Message(ref.Message) == nil {
					errs = append(errs, &StructuralError{
						Section: "portType",
						Detail:  fmt.Sprintf("operation %s references undeclared message %q", op.Name, ref.Message),
					})
				}
			}
		}
	}
	for _, b := range d.Bindings {
		pt := d.PortType(b.PortType)
		if pt == nil {
			errs = append(errs, &StructuralError{
				Section: "binding",
				Detail:  fmt.Sprintf("binding %s references undeclared portType %q", b.Name, b.PortType),
			})
			continue
		}
		for _, bop := range b.Operations {
			found := false
			for _, op := range pt.Operations {
				if op.Name == bop.Name {
					found = true
					break
				}
			}
			if !found {
				errs = append(errs, &StructuralError{
					Section: "binding",
					Detail:  fmt.Sprintf("binding %s declares operation %q absent from portType %s", b.Name, bop.Name, pt.Name),
				})
			}
		}
	}
	for _, svc := range d.Services {
		for _, p := range svc.Ports {
			if d.Binding(p.Binding) == nil {
				errs = append(errs, &StructuralError{
					Section: "service",
					Detail:  fmt.Sprintf("port %s references undeclared binding %q", p.Name, p.Binding),
				})
			}
		}
	}
	if d.Types != nil {
		for _, m := range d.Messages {
			for _, part := range m.Parts {
				if part.Element.IsZero() {
					continue
				}
				if _, ok := d.Types.Element(part.Element); !ok {
					errs = append(errs, &StructuralError{
						Section: "message",
						Detail:  fmt.Sprintf("part %s of message %s references undeclared element %s", part.Name, m.Name, part.Element),
					})
				}
			}
		}
	}
	return errs
}
