package wsdl

import (
	"testing"
)

// FuzzUnmarshal exercises the WSDL parser with arbitrary bytes: it
// must never panic, and anything it accepts must re-serialize and
// re-parse (parse → marshal → parse stability).
func FuzzUnmarshal(f *testing.F) {
	seed, err := Marshal(testDefinitions())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/" targetNamespace="urn:x"></wsdl:definitions>`))
	f.Add([]byte(``))
	f.Add([]byte(`<html>`))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := Marshal(d)
		if err != nil {
			t.Fatalf("accepted document failed to marshal: %v", err)
		}
		if _, err := Unmarshal(out); err != nil {
			t.Fatalf("marshal output failed to reparse: %v\n%s", err, out)
		}
	})
}
