package wsdl

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"wsinterop/internal/xsd"
)

// This file serializes Definitions to WSDL 1.1 XML and parses it back.
//
// The writer produces the document layout emitted by mainstream
// framework tooling (definitions → types → messages → portTypes →
// bindings → services) with a deterministic prefix assignment, so the
// same model always yields the same bytes. The parser is tolerant in
// the ways real client tooling is tolerant — and strict in the ways
// real tooling is strict, returning ParseError for malformed
// documents.

// ParseError reports a malformed WSDL document.
type ParseError struct {
	Reason string
	Err    error
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Err != nil {
		return "wsdl parse: " + e.Reason + ": " + e.Err.Error()
	}
	return "wsdl parse: " + e.Reason
}

// Unwrap exposes the wrapped cause.
func (e *ParseError) Unwrap() error { return e.Err }

// ErrNoDefinitions is wrapped by ParseError when the root element is
// not wsdl:definitions.
var ErrNoDefinitions = errors.New("root element is not wsdl:definitions")

// marshalBufs recycles serialization buffers across Marshal calls;
// the campaign's publish workers serialize tens of thousands of
// documents, and reusing the grown buffers removes most of the
// allocation churn on that path.
var marshalBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Marshal renders the document as WSDL 1.1 XML.
func Marshal(d *Definitions) ([]byte, error) {
	buf := marshalBufs.Get().(*bytes.Buffer)
	defer marshalBufs.Put(buf)
	buf.Reset()
	if err := marshalTo(buf, d); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// qattr writes one ` name="value"` attribute with Go-quoted (%q)
// semantics — the exact bytes the fmt.Fprintf(" %s=%q") form this
// writer used to emit, without the fmt reflection cost.
func qattr(buf *bytes.Buffer, name, value string) {
	buf.WriteByte(' ')
	buf.WriteString(name)
	buf.WriteByte('=')
	if quotePlain(value) {
		// Printable ASCII with nothing to escape: %q is the value
		// verbatim between quotes, no strconv scan needed.
		buf.WriteByte('"')
		buf.WriteString(value)
		buf.WriteByte('"')
		return
	}
	buf.Write(strconv.AppendQuote(buf.AvailableBuffer(), value))
}

// qref writes a qualified-reference attribute straight from the
// QName, producing the same bytes as qattr(buf, name, pt.Ref(q))
// without materializing the prefix:local string.
func qref(buf *bytes.Buffer, name string, pt *xsd.PrefixTable, q xsd.QName) {
	if q.Space == "" {
		qattr(buf, name, q.Local)
		return
	}
	p := pt.Prefix(q.Space)
	if quotePlain(p) && quotePlain(q.Local) {
		buf.WriteByte(' ')
		buf.WriteString(name)
		buf.WriteString(`="`)
		buf.WriteString(p)
		buf.WriteByte(':')
		buf.WriteString(q.Local)
		buf.WriteByte('"')
		return
	}
	qattr(buf, name, pt.Ref(q))
}

// quotePlain reports whether %q renders s as `"` + s + `"` — printable
// ASCII containing neither quote nor backslash. Nearly every attribute
// value the campaign emits qualifies.
func quotePlain(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' {
			return false
		}
	}
	return true
}

// marshalTo writes the document into a caller-owned buffer.
func marshalTo(buf *bytes.Buffer, d *Definitions) error {
	buf.WriteString(xml.Header)

	pt := xsd.AcquirePrefixTable(d.TargetNamespace)
	defer xsd.ReleasePrefixTable(pt)
	// Pre-assigned WSDL-layer prefixes, deterministic.
	const wsdlPrefix = "wsdl"
	const soapPrefix = "soap"

	type attr struct{ name, value string }
	attrs := []attr{
		{"xmlns:" + wsdlPrefix, NamespaceWSDL},
		{"xmlns:" + soapPrefix, NamespaceSOAP},
		{"xmlns:xs", xsd.NamespaceXSD},
		{"xmlns:tns", d.TargetNamespace},
		{"targetNamespace", d.TargetNamespace},
	}
	if d.Name != "" {
		attrs = append(attrs, attr{"name", d.Name})
	}

	// Collect foreign namespaces referenced from message parts so their
	// prefixes are declared on the root element.
	for _, m := range d.Messages {
		for _, p := range m.Parts {
			for _, q := range []xsd.QName{p.Element, p.Type} {
				if !q.IsZero() && q.Space != d.TargetNamespace && q.Space != xsd.NamespaceXSD {
					attrs = append(attrs, attr{"xmlns:" + pt.Prefix(q.Space), q.Space})
				}
			}
		}
	}

	buf.WriteString("<" + wsdlPrefix + ":definitions")
	for i, a := range attrs {
		dup := false
		for _, prev := range attrs[:i] {
			if prev.name == a.name {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		qattr(buf, a.name, a.value)
	}
	buf.WriteString(">\n")

	if d.Documentation != "" {
		fmt.Fprintf(buf, "  <%s:documentation>%s</%s:documentation>\n", wsdlPrefix, escape(d.Documentation), wsdlPrefix)
	}

	// <types>
	buf.WriteString("  <" + wsdlPrefix + ":types>\n")
	if d.Types != nil {
		for _, sch := range d.Types.Schemas {
			// Stream the schema straight into the document buffer at its
			// embedding indentation — the hand-rolled writer produces the
			// same bytes the old marshal-then-reindent pass did.
			if err := xsd.MarshalSchemaTo(buf, sch, nil, "    "); err != nil {
				return fmt.Errorf("marshal embedded schema %q: %w", sch.TargetNamespace, err)
			}
			buf.WriteByte('\n')
		}
	}
	buf.WriteString("  </" + wsdlPrefix + ":types>\n")

	// <message>
	for _, m := range d.Messages {
		buf.WriteString("  <" + wsdlPrefix + ":message")
		qattr(buf, "name", m.Name)
		buf.WriteString(">\n")
		for _, p := range m.Parts {
			buf.WriteString("    <" + wsdlPrefix + ":part")
			qattr(buf, "name", p.Name)
			if !p.Element.IsZero() {
				qref(buf, "element", pt, p.Element)
			}
			if !p.Type.IsZero() {
				qref(buf, "type", pt, p.Type)
			}
			buf.WriteString("/>\n")
		}
		buf.WriteString("  </" + wsdlPrefix + ":message>\n")
	}

	// <portType>
	for _, ptype := range d.PortTypes {
		buf.WriteString("  <" + wsdlPrefix + ":portType")
		qattr(buf, "name", ptype.Name)
		buf.WriteString(">\n")
		for _, op := range ptype.Operations {
			buf.WriteString("    <" + wsdlPrefix + ":operation")
			qattr(buf, "name", op.Name)
			buf.WriteString(">\n")
			if op.Input.Message != "" {
				buf.WriteString("      <" + wsdlPrefix + ":input message=\"tns:")
				buf.WriteString(op.Input.Message)
				buf.WriteString("\"/>\n")
			}
			if op.Output.Message != "" {
				buf.WriteString("      <" + wsdlPrefix + ":output message=\"tns:")
				buf.WriteString(op.Output.Message)
				buf.WriteString("\"/>\n")
			}
			for _, f := range op.Faults {
				buf.WriteString("      <" + wsdlPrefix + ":fault")
				qattr(buf, "name", f.Name)
				buf.WriteString(" message=\"tns:")
				buf.WriteString(f.Message)
				buf.WriteString("\"/>\n")
			}
			buf.WriteString("    </" + wsdlPrefix + ":operation>\n")
		}
		buf.WriteString("  </" + wsdlPrefix + ":portType>\n")
	}

	// <binding>
	for _, b := range d.Bindings {
		buf.WriteString("  <" + wsdlPrefix + ":binding")
		qattr(buf, "name", b.Name)
		buf.WriteString(" type=\"tns:")
		buf.WriteString(b.PortType)
		buf.WriteString("\">\n")
		style := b.Style
		if style == "" {
			style = StyleDocument
		}
		transport := b.Transport
		if transport == "" {
			transport = NamespaceSOAPHTTP
		}
		buf.WriteString("    <" + soapPrefix + ":binding")
		qattr(buf, "transport", transport)
		qattr(buf, "style", string(style))
		buf.WriteString("/>\n")
		for _, bop := range b.Operations {
			buf.WriteString("    <" + wsdlPrefix + ":operation")
			qattr(buf, "name", bop.Name)
			buf.WriteString(">\n")
			buf.WriteString("      <" + soapPrefix + ":operation")
			if !bop.OmitSOAPAction {
				qattr(buf, "soapAction", bop.SOAPAction)
			}
			if bop.Style != "" {
				qattr(buf, "style", string(bop.Style))
			}
			buf.WriteString("/>\n")
			inUse, outUse := bop.InputUse, bop.OutputUse
			if inUse == "" {
				inUse = UseLiteral
			}
			if outUse == "" {
				outUse = UseLiteral
			}
			buf.WriteString("      <" + wsdlPrefix + ":input><" + soapPrefix + ":body")
			qattr(buf, "use", string(inUse))
			if bop.BodyNamespace != "" {
				qattr(buf, "namespace", bop.BodyNamespace)
			}
			buf.WriteString("/></" + wsdlPrefix + ":input>\n")
			buf.WriteString("      <" + wsdlPrefix + ":output><" + soapPrefix + ":body")
			qattr(buf, "use", string(outUse))
			if bop.BodyNamespace != "" {
				qattr(buf, "namespace", bop.BodyNamespace)
			}
			buf.WriteString("/></" + wsdlPrefix + ":output>\n")
			buf.WriteString("    </" + wsdlPrefix + ":operation>\n")
		}
		buf.WriteString("  </" + wsdlPrefix + ":binding>\n")
	}

	// <service>
	for _, svc := range d.Services {
		buf.WriteString("  <" + wsdlPrefix + ":service")
		qattr(buf, "name", svc.Name)
		buf.WriteString(">\n")
		for _, p := range svc.Ports {
			buf.WriteString("    <" + wsdlPrefix + ":port")
			qattr(buf, "name", p.Name)
			buf.WriteString(" binding=\"tns:")
			buf.WriteString(p.Binding)
			buf.WriteString("\">\n")
			buf.WriteString("      <" + soapPrefix + ":address")
			qattr(buf, "location", p.Location)
			buf.WriteString("/>\n")
			buf.WriteString("    </" + wsdlPrefix + ":port>\n")
		}
		buf.WriteString("  </" + wsdlPrefix + ":service>\n")
	}

	buf.WriteString("</" + wsdlPrefix + ":definitions>\n")
	return nil
}

func escape(s string) string {
	var b bytes.Buffer
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

// ---- parsing ----

type xmlDefinitions struct {
	XMLName   xml.Name      `xml:"definitions"`
	Name      string        `xml:"name,attr"`
	TargetNS  string        `xml:"targetNamespace,attr"`
	Attrs     []xml.Attr    `xml:",any,attr"`
	Doc       string        `xml:"documentation"`
	Types     xmlTypes      `xml:"types"`
	Messages  []xmlMessage  `xml:"message"`
	PortTypes []xmlPortType `xml:"portType"`
	Bindings  []xmlBinding  `xml:"binding"`
	Services  []xmlService  `xml:"service"`
}

type xmlTypes struct {
	Schemas []rawSchema `xml:"schema"`
}

type rawSchema struct {
	Raw []byte `xml:",innerxml"`
	// We re-serialize the full schema element for the xsd parser, so
	// capture its attributes too.
	Attrs []xml.Attr `xml:",any,attr"`
}

type xmlMessage struct {
	Name  string    `xml:"name,attr"`
	Parts []xmlPart `xml:"part"`
}

type xmlPart struct {
	Name    string `xml:"name,attr"`
	Element string `xml:"element,attr"`
	Type    string `xml:"type,attr"`
}

type xmlPortType struct {
	Name       string         `xml:"name,attr"`
	Operations []xmlOperation `xml:"operation"`
}

type xmlOperation struct {
	Name   string     `xml:"name,attr"`
	Input  xmlIORef   `xml:"input"`
	Output xmlIORef   `xml:"output"`
	Faults []xmlIORef `xml:"fault"`
}

type xmlIORef struct {
	Name    string `xml:"name,attr"`
	Message string `xml:"message,attr"`
}

type xmlBinding struct {
	Name       string        `xml:"name,attr"`
	Type       string        `xml:"type,attr"`
	SOAP       []xmlSOAPBind `xml:"http://schemas.xmlsoap.org/wsdl/soap/ binding"`
	Operations []xmlBindOp   `xml:"operation"`
}

type xmlSOAPBind struct {
	Transport string `xml:"transport,attr"`
	Style     string `xml:"style,attr"`
}

type xmlBindOp struct {
	Name   string       `xml:"name,attr"`
	SOAPOp []xmlSOAPOp  `xml:"http://schemas.xmlsoap.org/wsdl/soap/ operation"`
	Input  *xmlBodyWrap `xml:"input"`
	Output *xmlBodyWrap `xml:"output"`
}

type xmlSOAPOp struct {
	// encoding/xml cannot distinguish an absent attribute from an
	// empty one through a tagged string field, and WS-I R2745 needs
	// exactly that distinction for soapAction — so capture the raw
	// attribute list and scan it.
	Attrs []xml.Attr `xml:",any,attr"`
}

type xmlBodyWrap struct {
	Body *xmlSOAPBody `xml:"http://schemas.xmlsoap.org/wsdl/soap/ body"`
}

type xmlSOAPBody struct {
	Use       string `xml:"use,attr"`
	Namespace string `xml:"namespace,attr"`
}

type xmlService struct {
	Name  string    `xml:"name,attr"`
	Ports []xmlPort `xml:"port"`
}

type xmlPort struct {
	Name    string       `xml:"name,attr"`
	Binding string       `xml:"binding,attr"`
	Addr    *xmlSOAPAddr `xml:"http://schemas.xmlsoap.org/wsdl/soap/ address"`
}

type xmlSOAPAddr struct {
	Location string `xml:"location,attr"`
}

// Unmarshal parses a WSDL 1.1 XML document into the object model.
func Unmarshal(data []byte) (*Definitions, error) {
	var xd xmlDefinitions
	if err := xml.Unmarshal(data, &xd); err != nil {
		return nil, &ParseError{Reason: "malformed XML", Err: err}
	}
	if xd.XMLName.Space != NamespaceWSDL {
		return nil, &ParseError{Reason: fmt.Sprintf("unexpected root element namespace %q", xd.XMLName.Space), Err: ErrNoDefinitions}
	}
	d := &Definitions{
		Name:            xd.Name,
		TargetNamespace: xd.TargetNS,
		Documentation:   strings.TrimSpace(xd.Doc),
	}

	prefixes := prefixMap(xd.Attrs, xd.TargetNS)

	var schemas []*xsd.Schema
	for _, raw := range xd.Types.Schemas {
		doc := rebuildSchemaElement(raw)
		sch, err := xsd.UnmarshalSchema(doc)
		if err != nil {
			return nil, &ParseError{Reason: "embedded schema", Err: err}
		}
		schemas = append(schemas, sch)
	}
	d.Types = xsd.NewSchemaSet(schemas...)

	for _, m := range xd.Messages {
		msg := Message{Name: m.Name}
		for _, p := range m.Parts {
			part := Part{Name: p.Name}
			var err error
			if part.Element, err = resolveQName(p.Element, prefixes); err != nil {
				return nil, &ParseError{Reason: "message part element", Err: err}
			}
			if part.Type, err = resolveQName(p.Type, prefixes); err != nil {
				return nil, &ParseError{Reason: "message part type", Err: err}
			}
			msg.Parts = append(msg.Parts, part)
		}
		d.Messages = append(d.Messages, msg)
	}

	for _, p := range xd.PortTypes {
		ptype := PortType{Name: p.Name}
		for _, op := range p.Operations {
			o := Operation{
				Name:   op.Name,
				Input:  IORef{Name: op.Input.Name, Message: localPart(op.Input.Message)},
				Output: IORef{Name: op.Output.Name, Message: localPart(op.Output.Message)},
			}
			for _, f := range op.Faults {
				o.Faults = append(o.Faults, IORef{Name: f.Name, Message: localPart(f.Message)})
			}
			ptype.Operations = append(ptype.Operations, o)
		}
		d.PortTypes = append(d.PortTypes, ptype)
	}

	for _, b := range xd.Bindings {
		bind := Binding{Name: b.Name, PortType: localPart(b.Type)}
		if len(b.SOAP) > 0 {
			bind.Transport = b.SOAP[0].Transport
			bind.Style = Style(b.SOAP[0].Style)
		}
		for _, bop := range b.Operations {
			// An operation with no soapbind:operation element, or one
			// whose element lacks the attribute, has no declared
			// soapAction; soapAction="" stays a declared empty action.
			bo := BindingOperation{Name: bop.Name, OmitSOAPAction: true}
			if len(bop.SOAPOp) > 0 {
				for _, a := range bop.SOAPOp[0].Attrs {
					if a.Name.Space != "" {
						continue
					}
					switch a.Name.Local {
					case "soapAction":
						bo.SOAPAction = a.Value
						bo.OmitSOAPAction = false
					case "style":
						bo.Style = Style(a.Value)
					}
				}
			}
			if bop.Input != nil && bop.Input.Body != nil {
				bo.InputUse = Use(bop.Input.Body.Use)
				bo.BodyNamespace = bop.Input.Body.Namespace
			}
			if bop.Output != nil && bop.Output.Body != nil {
				bo.OutputUse = Use(bop.Output.Body.Use)
				if bo.BodyNamespace == "" {
					bo.BodyNamespace = bop.Output.Body.Namespace
				}
			}
			bind.Operations = append(bind.Operations, bo)
		}
		d.Bindings = append(d.Bindings, bind)
	}

	for _, s := range xd.Services {
		svc := Service{Name: s.Name}
		for _, p := range s.Ports {
			port := Port{Name: p.Name, Binding: localPart(p.Binding)}
			if p.Addr != nil {
				port.Location = p.Addr.Location
			}
			svc.Ports = append(svc.Ports, port)
		}
		d.Services = append(d.Services, svc)
	}
	return d, nil
}

func prefixMap(attrs []xml.Attr, target string) map[string]string {
	m := map[string]string{"": target, "xml": xsd.NamespaceXML}
	for _, a := range attrs {
		switch {
		case a.Name.Space == "xmlns":
			m[a.Name.Local] = a.Value
		case strings.HasPrefix(a.Name.Local, "xmlns:"):
			m[strings.TrimPrefix(a.Name.Local, "xmlns:")] = a.Value
		}
	}
	return m
}

func resolveQName(s string, prefixes map[string]string) (xsd.QName, error) {
	if s == "" {
		return xsd.QName{}, nil
	}
	prefix, local := "", s
	if i := strings.IndexByte(s, ':'); i >= 0 {
		prefix, local = s[:i], s[i+1:]
	}
	ns, ok := prefixes[prefix]
	if !ok {
		return xsd.QName{}, fmt.Errorf("undeclared prefix %q in %q", prefix, s)
	}
	return xsd.QName{Space: ns, Local: local}, nil
}

func localPart(s string) string {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// rebuildSchemaElement re-wraps the captured inner XML and attributes
// of an embedded xs:schema so it can be handed to the xsd parser as a
// standalone document.
func rebuildSchemaElement(raw rawSchema) []byte {
	var buf bytes.Buffer
	buf.WriteString(`<schema xmlns="` + xsd.NamespaceXSD + `"`)
	for _, a := range raw.Attrs {
		name := a.Name.Local
		if a.Name.Space == "" && a.Name.Local == "xmlns" {
			continue // default xmlns is re-declared above
		}
		if a.Name.Space == "xmlns" {
			name = "xmlns:" + a.Name.Local
		} else if a.Name.Space != "" && a.Name.Space != xsd.NamespaceXSD {
			// Re-declare a foreign-namespace attribute with a synthetic
			// prefix; embedded schemas in this corpus do not use any.
			continue
		}
		fmt.Fprintf(&buf, " %s=%q", name, a.Value)
	}
	buf.WriteString(">")
	buf.Write(raw.Raw)
	buf.WriteString("</schema>")
	return buf.Bytes()
}
