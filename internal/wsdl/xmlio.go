package wsdl

import (
	"bytes"
	"encoding/xml"
	"errors"
	"fmt"
	"strings"
	"sync"

	"wsinterop/internal/xsd"
)

// This file serializes Definitions to WSDL 1.1 XML and parses it back.
//
// The writer produces the document layout emitted by mainstream
// framework tooling (definitions → types → messages → portTypes →
// bindings → services) with a deterministic prefix assignment, so the
// same model always yields the same bytes. The parser is tolerant in
// the ways real client tooling is tolerant — and strict in the ways
// real tooling is strict, returning ParseError for malformed
// documents.

// ParseError reports a malformed WSDL document.
type ParseError struct {
	Reason string
	Err    error
}

// Error implements the error interface.
func (e *ParseError) Error() string {
	if e.Err != nil {
		return "wsdl parse: " + e.Reason + ": " + e.Err.Error()
	}
	return "wsdl parse: " + e.Reason
}

// Unwrap exposes the wrapped cause.
func (e *ParseError) Unwrap() error { return e.Err }

// ErrNoDefinitions is wrapped by ParseError when the root element is
// not wsdl:definitions.
var ErrNoDefinitions = errors.New("root element is not wsdl:definitions")

// marshalBufs recycles serialization buffers across Marshal calls;
// the campaign's publish workers serialize tens of thousands of
// documents, and reusing the grown buffers removes most of the
// allocation churn on that path.
var marshalBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Marshal renders the document as WSDL 1.1 XML.
func Marshal(d *Definitions) ([]byte, error) {
	buf := marshalBufs.Get().(*bytes.Buffer)
	defer marshalBufs.Put(buf)
	buf.Reset()
	if err := marshalTo(buf, d); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// marshalTo writes the document into a caller-owned buffer.
func marshalTo(buf *bytes.Buffer, d *Definitions) error {
	buf.WriteString(xml.Header)

	pt := xsd.NewPrefixTable(d.TargetNamespace)
	// Pre-assign the WSDL-layer prefixes deterministically.
	wsdlPrefix := "wsdl"
	soapPrefix := "soap"

	type attr struct{ name, value string }
	attrs := []attr{
		{"xmlns:" + wsdlPrefix, NamespaceWSDL},
		{"xmlns:" + soapPrefix, NamespaceSOAP},
		{"xmlns:xs", xsd.NamespaceXSD},
		{"xmlns:tns", d.TargetNamespace},
		{"targetNamespace", d.TargetNamespace},
	}
	if d.Name != "" {
		attrs = append(attrs, attr{"name", d.Name})
	}

	// Collect foreign namespaces referenced from message parts so their
	// prefixes are declared on the root element.
	for _, m := range d.Messages {
		for _, p := range m.Parts {
			for _, q := range []xsd.QName{p.Element, p.Type} {
				if !q.IsZero() && q.Space != d.TargetNamespace && q.Space != xsd.NamespaceXSD {
					attrs = append(attrs, attr{"xmlns:" + pt.Prefix(q.Space), q.Space})
				}
			}
		}
	}

	buf.WriteString("<" + wsdlPrefix + ":definitions")
	seen := make(map[string]bool, len(attrs))
	for _, a := range attrs {
		if seen[a.name] {
			continue
		}
		seen[a.name] = true
		fmt.Fprintf(buf, " %s=%q", a.name, a.value)
	}
	buf.WriteString(">\n")

	if d.Documentation != "" {
		fmt.Fprintf(buf, "  <%s:documentation>%s</%s:documentation>\n", wsdlPrefix, escape(d.Documentation), wsdlPrefix)
	}

	// <types>
	buf.WriteString("  <" + wsdlPrefix + ":types>\n")
	if d.Types != nil {
		for _, sch := range d.Types.Schemas {
			b, err := xsd.MarshalSchema(sch, nil)
			if err != nil {
				return fmt.Errorf("marshal embedded schema %q: %w", sch.TargetNamespace, err)
			}
			buf.Write(indent(b, "    "))
			buf.WriteByte('\n')
		}
	}
	buf.WriteString("  </" + wsdlPrefix + ":types>\n")

	// <message>
	for _, m := range d.Messages {
		fmt.Fprintf(buf, "  <%s:message name=%q>\n", wsdlPrefix, m.Name)
		for _, p := range m.Parts {
			fmt.Fprintf(buf, "    <%s:part name=%q", wsdlPrefix, p.Name)
			if !p.Element.IsZero() {
				fmt.Fprintf(buf, " element=%q", pt.Ref(p.Element))
			}
			if !p.Type.IsZero() {
				fmt.Fprintf(buf, " type=%q", pt.Ref(p.Type))
			}
			buf.WriteString("/>\n")
		}
		fmt.Fprintf(buf, "  </%s:message>\n", wsdlPrefix)
	}

	// <portType>
	for _, ptype := range d.PortTypes {
		fmt.Fprintf(buf, "  <%s:portType name=%q>\n", wsdlPrefix, ptype.Name)
		for _, op := range ptype.Operations {
			fmt.Fprintf(buf, "    <%s:operation name=%q>\n", wsdlPrefix, op.Name)
			if op.Input.Message != "" {
				fmt.Fprintf(buf, "      <%s:input message=\"tns:%s\"/>\n", wsdlPrefix, op.Input.Message)
			}
			if op.Output.Message != "" {
				fmt.Fprintf(buf, "      <%s:output message=\"tns:%s\"/>\n", wsdlPrefix, op.Output.Message)
			}
			for _, f := range op.Faults {
				fmt.Fprintf(buf, "      <%s:fault name=%q message=\"tns:%s\"/>\n", wsdlPrefix, f.Name, f.Message)
			}
			fmt.Fprintf(buf, "    </%s:operation>\n", wsdlPrefix)
		}
		fmt.Fprintf(buf, "  </%s:portType>\n", wsdlPrefix)
	}

	// <binding>
	for _, b := range d.Bindings {
		fmt.Fprintf(buf, "  <%s:binding name=%q type=\"tns:%s\">\n", wsdlPrefix, b.Name, b.PortType)
		style := b.Style
		if style == "" {
			style = StyleDocument
		}
		transport := b.Transport
		if transport == "" {
			transport = NamespaceSOAPHTTP
		}
		fmt.Fprintf(buf, "    <%s:binding transport=%q style=%q/>\n", soapPrefix, transport, style)
		for _, bop := range b.Operations {
			fmt.Fprintf(buf, "    <%s:operation name=%q>\n", wsdlPrefix, bop.Name)
			fmt.Fprintf(buf, "      <%s:operation soapAction=%q/>\n", soapPrefix, bop.SOAPAction)
			inUse, outUse := bop.InputUse, bop.OutputUse
			if inUse == "" {
				inUse = UseLiteral
			}
			if outUse == "" {
				outUse = UseLiteral
			}
			nsAttr := ""
			if bop.BodyNamespace != "" {
				nsAttr = fmt.Sprintf(" namespace=%q", bop.BodyNamespace)
			}
			fmt.Fprintf(buf, "      <%s:input><%s:body use=%q%s/></%s:input>\n", wsdlPrefix, soapPrefix, inUse, nsAttr, wsdlPrefix)
			fmt.Fprintf(buf, "      <%s:output><%s:body use=%q%s/></%s:output>\n", wsdlPrefix, soapPrefix, outUse, nsAttr, wsdlPrefix)
			fmt.Fprintf(buf, "    </%s:operation>\n", wsdlPrefix)
		}
		fmt.Fprintf(buf, "  </%s:binding>\n", wsdlPrefix)
	}

	// <service>
	for _, svc := range d.Services {
		fmt.Fprintf(buf, "  <%s:service name=%q>\n", wsdlPrefix, svc.Name)
		for _, p := range svc.Ports {
			fmt.Fprintf(buf, "    <%s:port name=%q binding=\"tns:%s\">\n", wsdlPrefix, p.Name, p.Binding)
			fmt.Fprintf(buf, "      <%s:address location=%q/>\n", soapPrefix, p.Location)
			fmt.Fprintf(buf, "    </%s:port>\n", wsdlPrefix)
		}
		fmt.Fprintf(buf, "  </%s:service>\n", wsdlPrefix)
	}

	buf.WriteString("</" + wsdlPrefix + ":definitions>\n")
	return nil
}

func escape(s string) string {
	var b bytes.Buffer
	if err := xml.EscapeText(&b, []byte(s)); err != nil {
		return s
	}
	return b.String()
}

func indent(b []byte, prefix string) []byte {
	lines := bytes.Split(b, []byte("\n"))
	var out bytes.Buffer
	for i, ln := range lines {
		if i > 0 {
			out.WriteByte('\n')
		}
		if len(ln) > 0 {
			out.WriteString(prefix)
			out.Write(ln)
		}
	}
	return out.Bytes()
}

// ---- parsing ----

type xmlDefinitions struct {
	XMLName   xml.Name      `xml:"definitions"`
	Name      string        `xml:"name,attr"`
	TargetNS  string        `xml:"targetNamespace,attr"`
	Attrs     []xml.Attr    `xml:",any,attr"`
	Doc       string        `xml:"documentation"`
	Types     xmlTypes      `xml:"types"`
	Messages  []xmlMessage  `xml:"message"`
	PortTypes []xmlPortType `xml:"portType"`
	Bindings  []xmlBinding  `xml:"binding"`
	Services  []xmlService  `xml:"service"`
}

type xmlTypes struct {
	Schemas []rawSchema `xml:"schema"`
}

type rawSchema struct {
	Raw []byte `xml:",innerxml"`
	// We re-serialize the full schema element for the xsd parser, so
	// capture its attributes too.
	Attrs []xml.Attr `xml:",any,attr"`
}

type xmlMessage struct {
	Name  string    `xml:"name,attr"`
	Parts []xmlPart `xml:"part"`
}

type xmlPart struct {
	Name    string `xml:"name,attr"`
	Element string `xml:"element,attr"`
	Type    string `xml:"type,attr"`
}

type xmlPortType struct {
	Name       string         `xml:"name,attr"`
	Operations []xmlOperation `xml:"operation"`
}

type xmlOperation struct {
	Name   string     `xml:"name,attr"`
	Input  xmlIORef   `xml:"input"`
	Output xmlIORef   `xml:"output"`
	Faults []xmlIORef `xml:"fault"`
}

type xmlIORef struct {
	Name    string `xml:"name,attr"`
	Message string `xml:"message,attr"`
}

type xmlBinding struct {
	Name       string        `xml:"name,attr"`
	Type       string        `xml:"type,attr"`
	SOAP       []xmlSOAPBind `xml:"http://schemas.xmlsoap.org/wsdl/soap/ binding"`
	Operations []xmlBindOp   `xml:"operation"`
}

type xmlSOAPBind struct {
	Transport string `xml:"transport,attr"`
	Style     string `xml:"style,attr"`
}

type xmlBindOp struct {
	Name   string       `xml:"name,attr"`
	SOAPOp []xmlSOAPOp  `xml:"http://schemas.xmlsoap.org/wsdl/soap/ operation"`
	Input  *xmlBodyWrap `xml:"input"`
	Output *xmlBodyWrap `xml:"output"`
}

type xmlSOAPOp struct {
	SOAPAction string `xml:"soapAction,attr"`
}

type xmlBodyWrap struct {
	Body *xmlSOAPBody `xml:"http://schemas.xmlsoap.org/wsdl/soap/ body"`
}

type xmlSOAPBody struct {
	Use       string `xml:"use,attr"`
	Namespace string `xml:"namespace,attr"`
}

type xmlService struct {
	Name  string    `xml:"name,attr"`
	Ports []xmlPort `xml:"port"`
}

type xmlPort struct {
	Name    string       `xml:"name,attr"`
	Binding string       `xml:"binding,attr"`
	Addr    *xmlSOAPAddr `xml:"http://schemas.xmlsoap.org/wsdl/soap/ address"`
}

type xmlSOAPAddr struct {
	Location string `xml:"location,attr"`
}

// Unmarshal parses a WSDL 1.1 XML document into the object model.
func Unmarshal(data []byte) (*Definitions, error) {
	var xd xmlDefinitions
	if err := xml.Unmarshal(data, &xd); err != nil {
		return nil, &ParseError{Reason: "malformed XML", Err: err}
	}
	if xd.XMLName.Space != NamespaceWSDL {
		return nil, &ParseError{Reason: fmt.Sprintf("unexpected root element namespace %q", xd.XMLName.Space), Err: ErrNoDefinitions}
	}
	d := &Definitions{
		Name:            xd.Name,
		TargetNamespace: xd.TargetNS,
		Documentation:   strings.TrimSpace(xd.Doc),
	}

	prefixes := prefixMap(xd.Attrs, xd.TargetNS)

	var schemas []*xsd.Schema
	for _, raw := range xd.Types.Schemas {
		doc := rebuildSchemaElement(raw)
		sch, err := xsd.UnmarshalSchema(doc)
		if err != nil {
			return nil, &ParseError{Reason: "embedded schema", Err: err}
		}
		schemas = append(schemas, sch)
	}
	d.Types = xsd.NewSchemaSet(schemas...)

	for _, m := range xd.Messages {
		msg := Message{Name: m.Name}
		for _, p := range m.Parts {
			part := Part{Name: p.Name}
			var err error
			if part.Element, err = resolveQName(p.Element, prefixes); err != nil {
				return nil, &ParseError{Reason: "message part element", Err: err}
			}
			if part.Type, err = resolveQName(p.Type, prefixes); err != nil {
				return nil, &ParseError{Reason: "message part type", Err: err}
			}
			msg.Parts = append(msg.Parts, part)
		}
		d.Messages = append(d.Messages, msg)
	}

	for _, p := range xd.PortTypes {
		ptype := PortType{Name: p.Name}
		for _, op := range p.Operations {
			o := Operation{
				Name:   op.Name,
				Input:  IORef{Name: op.Input.Name, Message: localPart(op.Input.Message)},
				Output: IORef{Name: op.Output.Name, Message: localPart(op.Output.Message)},
			}
			for _, f := range op.Faults {
				o.Faults = append(o.Faults, IORef{Name: f.Name, Message: localPart(f.Message)})
			}
			ptype.Operations = append(ptype.Operations, o)
		}
		d.PortTypes = append(d.PortTypes, ptype)
	}

	for _, b := range xd.Bindings {
		bind := Binding{Name: b.Name, PortType: localPart(b.Type)}
		if len(b.SOAP) > 0 {
			bind.Transport = b.SOAP[0].Transport
			bind.Style = Style(b.SOAP[0].Style)
		}
		for _, bop := range b.Operations {
			bo := BindingOperation{Name: bop.Name}
			if len(bop.SOAPOp) > 0 {
				bo.SOAPAction = bop.SOAPOp[0].SOAPAction
			}
			if bop.Input != nil && bop.Input.Body != nil {
				bo.InputUse = Use(bop.Input.Body.Use)
				bo.BodyNamespace = bop.Input.Body.Namespace
			}
			if bop.Output != nil && bop.Output.Body != nil {
				bo.OutputUse = Use(bop.Output.Body.Use)
				if bo.BodyNamespace == "" {
					bo.BodyNamespace = bop.Output.Body.Namespace
				}
			}
			bind.Operations = append(bind.Operations, bo)
		}
		d.Bindings = append(d.Bindings, bind)
	}

	for _, s := range xd.Services {
		svc := Service{Name: s.Name}
		for _, p := range s.Ports {
			port := Port{Name: p.Name, Binding: localPart(p.Binding)}
			if p.Addr != nil {
				port.Location = p.Addr.Location
			}
			svc.Ports = append(svc.Ports, port)
		}
		d.Services = append(d.Services, svc)
	}
	return d, nil
}

func prefixMap(attrs []xml.Attr, target string) map[string]string {
	m := map[string]string{"": target, "xml": xsd.NamespaceXML}
	for _, a := range attrs {
		switch {
		case a.Name.Space == "xmlns":
			m[a.Name.Local] = a.Value
		case strings.HasPrefix(a.Name.Local, "xmlns:"):
			m[strings.TrimPrefix(a.Name.Local, "xmlns:")] = a.Value
		}
	}
	return m
}

func resolveQName(s string, prefixes map[string]string) (xsd.QName, error) {
	if s == "" {
		return xsd.QName{}, nil
	}
	prefix, local := "", s
	if i := strings.IndexByte(s, ':'); i >= 0 {
		prefix, local = s[:i], s[i+1:]
	}
	ns, ok := prefixes[prefix]
	if !ok {
		return xsd.QName{}, fmt.Errorf("undeclared prefix %q in %q", prefix, s)
	}
	return xsd.QName{Space: ns, Local: local}, nil
}

func localPart(s string) string {
	if i := strings.IndexByte(s, ':'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// rebuildSchemaElement re-wraps the captured inner XML and attributes
// of an embedded xs:schema so it can be handed to the xsd parser as a
// standalone document.
func rebuildSchemaElement(raw rawSchema) []byte {
	var buf bytes.Buffer
	buf.WriteString(`<schema xmlns="` + xsd.NamespaceXSD + `"`)
	for _, a := range raw.Attrs {
		name := a.Name.Local
		if a.Name.Space == "" && a.Name.Local == "xmlns" {
			continue // default xmlns is re-declared above
		}
		if a.Name.Space == "xmlns" {
			name = "xmlns:" + a.Name.Local
		} else if a.Name.Space != "" && a.Name.Space != xsd.NamespaceXSD {
			// Re-declare a foreign-namespace attribute with a synthetic
			// prefix; embedded schemas in this corpus do not use any.
			continue
		}
		fmt.Fprintf(&buf, " %s=%q", name, a.Value)
	}
	buf.WriteString(">")
	buf.Write(raw.Raw)
	buf.WriteString("</schema>")
	return buf.Bytes()
}
