package wsdl

import (
	"strings"
	"testing"
)

// These tests pin the soapbind:operation attribute model: soapAction
// presence is a fact of the document (OmitSOAPAction), distinct from
// an empty soapAction value, and a per-operation style override
// survives the Marshal/Unmarshal round trip. Both distinctions feed
// WS-I assertions (R2745 and R2705), so losing either in serialization
// would silently blind the checker on parsed documents.

func TestMarshalOmitsSOAPActionWhenAbsent(t *testing.T) {
	d := testDefinitions()
	d.Bindings[0].Operations[0].OmitSOAPAction = true
	raw, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if strings.Contains(string(raw), "soapAction") {
		t.Errorf("OmitSOAPAction operation still serialized a soapAction attribute:\n%s", raw)
	}

	// The default (zero value) keeps the historical byte output: an
	// explicit soapAction="" attribute.
	if raw, err = Marshal(testDefinitions()); err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.Contains(string(raw), `soapAction=""`) {
		t.Errorf("declared empty soapAction must serialize as soapAction=\"\":\n%s", raw)
	}
}

func TestRoundTripSOAPActionPresence(t *testing.T) {
	d := testDefinitions()
	d.Bindings[0].Operations[0].OmitSOAPAction = true
	raw, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, raw)
	}
	if !got.Bindings[0].Operations[0].OmitSOAPAction {
		t.Error("absent soapAction parsed as declared")
	}

	// And the inverse: a declared empty soapAction must not read back
	// as absent — encoding/xml alone cannot make this distinction,
	// which is exactly why the parser scans raw attributes.
	got, err = Unmarshal(mustMarshal(t, testDefinitions()))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Bindings[0].Operations[0].OmitSOAPAction {
		t.Error("declared empty soapAction parsed as absent")
	}
	if got.Bindings[0].Operations[0].SOAPAction != "" {
		t.Errorf("soapAction value = %q, want empty", got.Bindings[0].Operations[0].SOAPAction)
	}
}

func TestRoundTripPerOperationStyle(t *testing.T) {
	d := testDefinitions()
	d.Bindings[0].Operations[0].Style = StyleRPC
	raw, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	if !strings.Contains(string(raw), `style="rpc"`) {
		t.Errorf("per-operation style not serialized:\n%s", raw)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatalf("Unmarshal: %v\n%s", err, raw)
	}
	if got.Bindings[0].Operations[0].Style != StyleRPC {
		t.Errorf("per-operation style = %q after round trip, want rpc", got.Bindings[0].Operations[0].Style)
	}

	// No per-op style declared → none serialized, none parsed.
	got, err = Unmarshal(mustMarshal(t, testDefinitions()))
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if got.Bindings[0].Operations[0].Style != "" {
		t.Errorf("phantom per-operation style %q after round trip", got.Bindings[0].Operations[0].Style)
	}
}

func TestEffectiveStyle(t *testing.T) {
	b := &Binding{Style: StyleDocument}
	if s := b.EffectiveStyle(&BindingOperation{}); s != StyleDocument {
		t.Errorf("inherit binding style: got %q", s)
	}
	if s := b.EffectiveStyle(&BindingOperation{Style: StyleRPC}); s != StyleRPC {
		t.Errorf("per-op override: got %q", s)
	}
	if s := (&Binding{}).EffectiveStyle(&BindingOperation{}); s != StyleDocument {
		t.Errorf("WSDL default is document: got %q", s)
	}
}

func mustMarshal(t *testing.T, d *Definitions) []byte {
	t.Helper()
	raw, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return raw
}
