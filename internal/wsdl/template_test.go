package wsdl

import (
	"bytes"
	"strings"
	"testing"
)

func TestTemplateRoundTrip(t *testing.T) {
	raw := []byte(`<svc name="Alpha" ns="urn:one">Alpha echoes urn:one</svc>`)
	tmpl, err := NewTemplate(raw, []string{"Alpha", "urn:one"})
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Slots() != 4 {
		t.Errorf("slots = %d, want 4", tmpl.Slots())
	}
	same, err := tmpl.Render([]string{"Alpha", "urn:one"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(same, raw) {
		t.Errorf("identity render differs:\n got %q\nwant %q", same, raw)
	}
	got, err := tmpl.Render([]string{"Beta", "urn:two"})
	if err != nil {
		t.Fatal(err)
	}
	want := `<svc name="Beta" ns="urn:two">Beta echoes urn:two</svc>`
	if string(got) != want {
		t.Errorf("render = %q, want %q", got, want)
	}
}

// TestTemplateLongerMatchWins covers variables where one value is a
// prefix of another: the longer occurrence must be split as itself,
// not shadowed by its prefix.
func TestTemplateLongerMatchWins(t *testing.T) {
	raw := []byte("SvcService and Svc")
	tmpl, err := NewTemplate(raw, []string{"Svc", "SvcService"})
	if err != nil {
		t.Fatal(err)
	}
	got, err := tmpl.Render([]string{"A", "B"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "B and A" {
		t.Errorf("render = %q, want %q", got, "B and A")
	}
}

func TestTemplateNoOccurrences(t *testing.T) {
	raw := []byte("nothing to substitute here")
	tmpl, err := NewTemplate(raw, []string{"Zz9MissingQx"})
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Slots() != 0 {
		t.Errorf("slots = %d, want 0", tmpl.Slots())
	}
	got, err := tmpl.Render([]string{"anything"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, raw) {
		t.Errorf("render mutated literal-only template: %q", got)
	}
}

func TestTemplateValidation(t *testing.T) {
	if _, err := NewTemplate([]byte("x"), []string{""}); err == nil {
		t.Error("empty variable accepted")
	}
	if _, err := NewTemplate([]byte("x"), []string{"a", "a"}); err == nil {
		t.Error("duplicate variable accepted")
	}
	tmpl, err := NewTemplate([]byte("a b"), []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tmpl.Render([]string{"only-one"}); err == nil {
		t.Error("arity mismatch accepted by Render")
	}
}

// TestTemplateRenderSizing asserts the pre-sized output buffer is
// exact for value lengths shorter and longer than the originals.
func TestTemplateRenderSizing(t *testing.T) {
	raw := []byte(strings.Repeat("pre X mid Y post ", 5))
	tmpl, err := NewTemplate(raw, []string{"X", "Y"})
	if err != nil {
		t.Fatal(err)
	}
	for _, vals := range [][]string{{"", ""}, {"longer-value", "even-longer-value"}} {
		got, err := tmpl.Render(vals)
		if err != nil {
			t.Fatal(err)
		}
		want := strings.ReplaceAll(strings.ReplaceAll(string(raw), "X", vals[0]), "Y", vals[1])
		if string(got) != want {
			t.Errorf("render with %q = %q, want %q", vals, got, want)
		}
		if cap(got) != len(got) {
			t.Errorf("render over-allocated: len %d cap %d", len(got), cap(got))
		}
	}
}

func TestTemplateConcurrentRender(t *testing.T) {
	raw := []byte(`<a n="V">V</a>`)
	tmpl, err := NewTemplate(raw, []string{"V"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for i := 0; i < 200; i++ {
				got, err := tmpl.Render([]string{"W"})
				if err != nil || string(got) != `<a n="W">W</a>` {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
