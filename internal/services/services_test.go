package services

import (
	"strings"
	"testing"

	"wsinterop/internal/typesys"
)

func TestForClass(t *testing.T) {
	cls, ok := typesys.JavaCatalog().Lookup(typesys.JavaSimpleDateFormat)
	if !ok {
		t.Fatal("catalog lookup failed")
	}
	def := ForClass(cls)
	if def.Name != "EchoJavaTextSimpleDateFormatService" {
		t.Errorf("service name = %q", def.Name)
	}
	if def.OperationName != OperationName {
		t.Errorf("operation = %q, want %q", def.OperationName, OperationName)
	}
	if def.Parameter != cls {
		t.Error("parameter class not threaded through")
	}
}

func TestGenerateFullCorpus(t *testing.T) {
	jdefs := Generate(typesys.JavaCatalog())
	if len(jdefs) != typesys.JavaTotal {
		t.Errorf("Java services = %d, want %d", len(jdefs), typesys.JavaTotal)
	}
	cdefs := Generate(typesys.CSharpCatalog())
	if len(cdefs) != typesys.CSharpTotal {
		t.Errorf("C# services = %d, want %d", len(cdefs), typesys.CSharpTotal)
	}
	// One service per class, names unique.
	seen := make(map[string]bool, len(jdefs))
	for _, d := range jdefs {
		if seen[d.Name] {
			t.Fatalf("duplicate service name %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestSourceSkeletons(t *testing.T) {
	jcls, _ := typesys.JavaCatalog().Lookup(typesys.JavaSimpleDateFormat)
	jsrc := SourceSkeleton(ForClass(jcls))
	for _, want := range []string{"@WebService", "java.text.SimpleDateFormat", "echo", "return input;"} {
		if !strings.Contains(jsrc, want) {
			t.Errorf("Java skeleton missing %q:\n%s", want, jsrc)
		}
	}
	ccls, _ := typesys.CSharpCatalog().Lookup(typesys.CSharpDataTable)
	csrc := SourceSkeleton(ForClass(ccls))
	for _, want := range []string{"[ServiceContract]", "System.Data.DataTable"} {
		if !strings.Contains(csrc, want) {
			t.Errorf("C# skeleton missing %q:\n%s", want, csrc)
		}
	}
}

func TestCamelizeViaNames(t *testing.T) {
	tests := []struct{ class, want string }{
		{"java.util.concurrent.Future", "EchoJavaUtilConcurrentFutureService"},
		{"System.Data.DataSet", "EchoSystemDataDataSetService"},
	}
	for _, tt := range tests {
		var cls *typesys.Class
		if c, ok := typesys.JavaCatalog().Lookup(tt.class); ok {
			cls = c
		} else if c, ok := typesys.CSharpCatalog().Lookup(tt.class); ok {
			cls = c
		} else {
			t.Fatalf("class %q missing", tt.class)
		}
		if got := ForClass(cls).Name; got != tt.want {
			t.Errorf("service name for %s = %q, want %q", tt.class, got, tt.want)
		}
	}
}

func TestVariants(t *testing.T) {
	vs := Variants()
	if len(vs) != 4 || vs[0] != VariantSimple {
		t.Fatalf("Variants() = %v", vs)
	}
	seen := map[string]bool{}
	for _, v := range vs {
		s := v.String()
		if s == "" || strings.HasPrefix(s, "Variant(") || seen[s] {
			t.Errorf("bad variant name %q", s)
		}
		seen[s] = true
	}
	if !strings.HasPrefix(Variant(99).String(), "Variant(") {
		t.Error("unknown variant should render numerically")
	}
}

func TestGenerateVariantPropagates(t *testing.T) {
	defs := GenerateVariant(typesys.JavaCatalog(), VariantCollection)
	if len(defs) != typesys.JavaTotal {
		t.Fatalf("defs = %d", len(defs))
	}
	for i := range defs[:10] {
		if defs[i].Variant != VariantCollection {
			t.Fatalf("variant not propagated: %+v", defs[i])
		}
	}
}

func TestForClassVariant(t *testing.T) {
	cls, _ := typesys.JavaCatalog().Lookup(typesys.JavaSimpleDateFormat)
	def := ForClassVariant(cls, VariantNested)
	if def.Variant != VariantNested || def.Parameter != cls {
		t.Errorf("ForClassVariant = %+v", def)
	}
}
