// Package services implements the Preparation Phase of the
// interoperability assessment approach: generating the corpus of test
// web services.
//
// Following §III.A of the paper, every service is a minimal echo
// implementation with a single operation whose one input parameter and
// one output parameter share the same type — one of the native classes
// of the host platform. The business logic is irrelevant by design:
// the services exist to exercise the interface-mapping machinery of
// the frameworks, which is where interoperability breaks.
package services

import (
	"fmt"
	"strings"
	"sync"

	"wsinterop/internal/typesys"
)

// Variant selects the interface complexity of a generated service.
// The paper's first batch uses VariantSimple throughout; the other
// variants implement its announced future work — "services with a
// higher level of complexity to cover more elaborate patterns of
// inter-operation".
type Variant int

// Service interface variants.
const (
	// VariantSimple is the paper's shape: one operation, one input,
	// one output of the same type.
	VariantSimple Variant = iota + 1
	// VariantMultiParam gives the operation three input parameters
	// (the class parameter plus scalar options).
	VariantMultiParam
	// VariantNested wraps the parameter one level deeper inside an
	// envelope structure.
	VariantNested
	// VariantCollection passes an unbounded sequence of the parameter
	// type.
	VariantCollection
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantSimple:
		return "simple"
	case VariantMultiParam:
		return "multi-param"
	case VariantNested:
		return "nested"
	case VariantCollection:
		return "collection"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants lists every implemented variant in ascending complexity.
func Variants() []Variant {
	return []Variant{VariantSimple, VariantMultiParam, VariantNested, VariantCollection}
}

// Definition describes one generated test service.
type Definition struct {
	// Name is the service name, derived from the parameter class
	// (e.g. "EchoJavaUtilBitSetService").
	Name string
	// OperationName is the single operation's name.
	OperationName string
	// Parameter is the native class used as both the input and output
	// parameter type.
	Parameter *typesys.Class
	// Variant is the interface complexity (VariantSimple when zero).
	Variant Variant
}

// OperationName is the fixed operation name of every generated echo
// service.
const OperationName = "echo"

// ForClass creates the echo service definition for one native class.
func ForClass(c *typesys.Class) Definition {
	return ForClassVariant(c, VariantSimple)
}

// ForClassVariant creates a service definition with the given
// interface complexity.
func ForClassVariant(c *typesys.Class, v Variant) Definition {
	return Definition{
		Name:          "Echo" + camelize(c.Name) + "Service",
		OperationName: OperationName,
		Parameter:     c,
		Variant:       v,
	}
}

// Generate creates the full service corpus for one catalog, one
// service per class, in catalog order. The paper generated 3 971 Java
// and 14 082 C# services this way.
func Generate(cat *typesys.Catalog) []Definition {
	return GenerateVariant(cat, VariantSimple)
}

// corpusKey identifies one generated corpus: the catalog identity
// (catalogs are shared and immutable once built) and the variant.
type corpusKey struct {
	cat *typesys.Catalog
	v   Variant
}

// corpora caches generated corpora. A campaign walks the same catalog
// once per server and once per Run; the walk — one Definition with a
// camelized name per class, 22 024 across the study's catalogs — is
// identical every time, so it is performed once per (catalog, variant).
var corpora sync.Map // corpusKey → []Definition

// GenerateVariant creates the corpus at the given interface
// complexity. The returned slice is shared and cached per (catalog,
// variant): callers may reslice it but must not modify its elements.
func GenerateVariant(cat *typesys.Catalog, v Variant) []Definition {
	key := corpusKey{cat, v}
	if defs, ok := corpora.Load(key); ok {
		return defs.([]Definition)
	}
	defs := make([]Definition, 0, cat.Len())
	for i := range cat.Classes {
		defs = append(defs, ForClassVariant(&cat.Classes[i], v))
	}
	defs = defs[:len(defs):len(defs)]
	actual, _ := corpora.LoadOrStore(key, defs)
	return actual.([]Definition)
}

// camelize converts a dotted fully qualified class name into a camel
// case identifier fragment: "java.util.BitSet" → "JavaUtilBitSet".
func camelize(fq string) string {
	parts := strings.Split(fq, ".")
	var b strings.Builder
	for _, p := range parts {
		if p == "" {
			continue
		}
		b.WriteString(strings.ToUpper(p[:1]))
		b.WriteString(p[1:])
	}
	return b.String()
}

// SourceSkeleton renders an illustrative host-language source skeleton
// for a service definition. The original study generated real Java
// and C# sources with a script; the skeleton preserves that artifact
// for documentation and the quickstart example.
func SourceSkeleton(def Definition) string {
	cls := def.Parameter
	switch cls.Language {
	case typesys.Java:
		return fmt.Sprintf(
			"@WebService\npublic class %s {\n    @WebMethod\n    public %s %s(%s input) {\n        return input;\n    }\n}\n",
			def.Name, cls.Name, def.OperationName, cls.Name)
	case typesys.CSharp:
		return fmt.Sprintf(
			"[ServiceContract]\npublic class %s {\n    [OperationContract]\n    public %s %s(%s input) {\n        return input;\n    }\n}\n",
			def.Name, cls.Name, def.OperationName, cls.Name)
	default:
		return fmt.Sprintf("service %s { %s(%s) -> %s }\n",
			def.Name, def.OperationName, cls.Name, cls.Name)
	}
}
