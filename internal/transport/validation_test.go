package transport

import (
	"context"
	"errors"
	"testing"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/soap"
	"wsinterop/internal/typesys"
)

// deployVariant deploys one service with the given interface variant
// and returns a local bridge plus the endpoint.
func deployVariant(t *testing.T, v services.Variant) (*LocalBridge, *Endpoint) {
	t.Helper()
	cls, ok := typesys.JavaCatalog().Lookup(typesys.JavaXMLGregorianCalendar)
	if !ok {
		t.Fatal("class missing")
	}
	doc, err := framework.NewMetroServer().Publish(services.ForClassVariant(cls, v))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	host := NewHost()
	ep, err := host.DeployWSDL(doc)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return host.Local(), ep
}

func TestPayloadValidationAccepts(t *testing.T) {
	bridge, ep := deployVariant(t, services.VariantMultiParam)
	specs := ep.Inputs["echo"]
	if len(specs) != 3 {
		t.Fatalf("specs = %+v, want 3 fields", specs)
	}
	fields := make(map[string]string, len(specs))
	for _, s := range specs {
		fields[s.Name] = SampleValue(s, "payload")
	}
	resp, err := bridge.Invoke(context.Background(), ep.Path, &soap.Message{
		Namespace: ep.Namespace, Local: "echo", Fields: fields,
	})
	if err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	if v, _ := resp.Field("count"); v != "42" {
		t.Errorf("count echoed as %q", v)
	}
}

func TestPayloadValidationRejects(t *testing.T) {
	bridge, ep := deployVariant(t, services.VariantMultiParam)
	cases := map[string]map[string]string{
		"missing required": {"options": "x"},
		"unknown element":  {"input": "x", "bogus": "y"},
		"bad int":          {"input": "x", "count": "not-a-number"},
	}
	for name, fields := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := bridge.Invoke(context.Background(), ep.Path, &soap.Message{
				Namespace: ep.Namespace, Local: "echo", Fields: fields,
			})
			var fault *soap.Fault
			if !errors.As(err, &fault) {
				t.Fatalf("expected a client fault, got %v", err)
			}
			if fault.Code != soap.FaultClient {
				t.Errorf("fault code = %q", fault.Code)
			}
		})
	}
}

func TestPayloadValidationNestedVariantFlattens(t *testing.T) {
	bridge, ep := deployVariant(t, services.VariantNested)
	specs := ep.Inputs["echo"]
	if len(specs) != 1 || specs[0].Name != "input" || !specs[0].Required {
		t.Fatalf("nested specs should flatten to the input leaf: %+v", specs)
	}
	if _, err := bridge.Invoke(context.Background(), ep.Path, &soap.Message{
		Namespace: ep.Namespace, Local: "echo",
		Fields: map[string]string{"input": "x"},
	}); err != nil {
		t.Fatalf("flattened payload rejected: %v", err)
	}
}

func TestSampleValueLexicallyValid(t *testing.T) {
	bridge, ep := deployVariant(t, services.VariantSimple)
	_ = bridge
	for _, specs := range ep.Inputs {
		for _, s := range specs {
			v := SampleValue(s, "payload")
			if v == "" && s.Type.Space != "" {
				t.Errorf("empty sample for %+v", s)
			}
		}
	}
}
