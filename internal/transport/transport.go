// Package transport implements the Communication and Execution steps
// of the web service inter-operation lifecycle (steps 4 and 5 of the
// paper's Fig. 1) — the extension the paper announces as future work.
//
// A Host deploys the echo services a server framework published and
// serves them over real HTTP on a loopback listener. A Client invokes
// a deployed operation by exchanging SOAP 1.1 envelopes with the
// endpoint, completing the round trip that the first three
// (statically tested) steps enable.
package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"wsinterop/internal/obs"
	"wsinterop/internal/soap"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/xsd"
)

// FieldSpec describes one expected payload field of an operation: the
// leaf-level view of the wrapper element's children (document/literal)
// or the message parts (rpc/literal).
type FieldSpec struct {
	Name string
	// Type is the field's declared type; XSD built-ins get lexical
	// validation, everything else is treated as opaque content.
	Type xsd.QName
	// Required reports whether the field must be present.
	Required bool
}

// Endpoint is one deployed echo service.
type Endpoint struct {
	// Path is the HTTP path the service is served at.
	Path string
	// Namespace is the service target namespace.
	Namespace string
	// Operations maps operation name → response wrapper local name.
	Operations map[string]string
	// Inputs maps operation name → expected payload fields; when
	// present the host validates incoming payloads against it (the
	// Execution step's deserialization checks).
	Inputs map[string][]FieldSpec
	// Description is the serialized WSDL served at GET <path>?wsdl —
	// the discovery convention every framework of the study supports.
	Description []byte
}

// SampleValue returns a lexically valid sample for a field, carrying
// the payload string for opaque (non-built-in) content.
func SampleValue(spec FieldSpec, payload string) string {
	if spec.Type.Space != xsd.NamespaceXSD {
		return payload
	}
	switch spec.Type.Local {
	case "int", "long", "short", "byte", "integer",
		"unsignedByte", "unsignedShort", "unsignedInt", "unsignedLong":
		return "42"
	case "boolean":
		return "true"
	case "float", "double", "decimal":
		return "1.5"
	case "dateTime":
		return "2014-06-23T10:00:00Z"
	case "date":
		return "2014-06-23"
	case "time":
		return "10:00:00"
	case "base64Binary":
		return "AA=="
	case "hexBinary":
		return "00ff"
	case "duration":
		return "P1D"
	default:
		return payload
	}
}

// FromWSDL derives the endpoint dispatch table from a service
// description. It returns an error when the description declares no
// operations — a live deployment of the "unusable WSDL" finding.
func FromWSDL(d *wsdl.Definitions) (*Endpoint, error) {
	if d.OperationCount() == 0 {
		return nil, fmt.Errorf("transport: description %q declares no operations", d.Name)
	}
	ep := &Endpoint{
		Path:      "/" + strings.ReplaceAll(d.Name, " ", ""),
		Namespace: d.TargetNamespace,
		Operations: make(map[string]string,
			d.OperationCount()),
		Inputs: make(map[string][]FieldSpec, d.OperationCount()),
	}
	for _, pt := range d.PortTypes {
		for _, op := range pt.Operations {
			ep.Operations[op.Name] = op.Name + "Response"
			ep.Inputs[op.Name] = inputSpecs(d, op)
		}
	}
	raw, err := wsdl.Marshal(d)
	if err != nil {
		return nil, fmt.Errorf("transport: serialize description: %w", err)
	}
	ep.Description = raw
	return ep, nil
}

// inputSpecs derives the expected payload fields of one operation,
// flattening anonymous envelope nesting to the leaf level (the shape
// soap.Message carries).
func inputSpecs(d *wsdl.Definitions, op wsdl.Operation) []FieldSpec {
	m := d.Message(op.Input.Message)
	if m == nil {
		return nil
	}
	// rpc/literal: one field per typed part, all required.
	if len(m.Parts) > 0 && m.Parts[0].Element.IsZero() {
		specs := make([]FieldSpec, 0, len(m.Parts))
		for _, p := range m.Parts {
			specs = append(specs, FieldSpec{Name: p.Name, Type: p.Type, Required: true})
		}
		return specs
	}
	// document/literal: the wrapper element's leaf children.
	if d.Types == nil || len(m.Parts) == 0 {
		return nil
	}
	el, ok := d.Types.Element(m.Parts[0].Element)
	if !ok || el.Inline == nil {
		return nil
	}
	var specs []FieldSpec
	var walk func(ct *xsd.ComplexType, ancestorsRequired bool)
	walk = func(ct *xsd.ComplexType, ancestorsRequired bool) {
		for i := range ct.Sequence {
			child := &ct.Sequence[i]
			required := ancestorsRequired && child.Occurs.Min > 0
			if child.Inline != nil {
				walk(child.Inline, required)
				continue
			}
			if child.Name == "" {
				continue // reference particles carry opaque content
			}
			specs = append(specs, FieldSpec{Name: child.Name, Type: child.Type, Required: required})
		}
	}
	walk(el.Inline, true)
	return specs
}

// validatePayload applies the Execution-step deserialization checks:
// required fields present, no unknown fields, lexically valid scalar
// values.
func validatePayload(specs []FieldSpec, fields map[string]string) error {
	if specs == nil {
		return nil
	}
	known := make(map[string]*FieldSpec, len(specs))
	for i := range specs {
		known[specs[i].Name] = &specs[i]
	}
	for name, value := range fields {
		spec, ok := known[name]
		if !ok {
			return fmt.Errorf("unexpected element %q in payload", name)
		}
		if !xsd.ValidLexical(spec.Type, value) {
			return fmt.Errorf("value %q is not a valid %s for element %q", value, spec.Type.Local, name)
		}
	}
	for i := range specs {
		if specs[i].Required {
			if _, ok := fields[specs[i].Name]; !ok {
				return fmt.Errorf("required element %q missing from payload", specs[i].Name)
			}
		}
	}
	return nil
}

// Host serves deployed services over HTTP on a loopback listener.
type Host struct {
	mu        sync.RWMutex
	endpoints map[string]*Endpoint
	version   *VersionPolicy

	srv      *http.Server
	listener net.Listener
	done     chan struct{}
	serveErr error
}

// NewHost creates an empty host.
func NewHost() *Host {
	return &Host{endpoints: make(map[string]*Endpoint, 8)}
}

// VersionPolicy pins the envelope version a host speaks and declares
// how it treats a request whose detected version disagrees.
type VersionPolicy struct {
	// Codec is the version the host answers in.
	Codec soap.Codec
	// Strictness selects the mismatch behavior: StrictReject answers a
	// VersionMismatch fault, LenientAccept parses either version (and
	// hybrids) but answers natively, SilentCoerce parses namespace-
	// blind and mirrors the request's framing back — producing the
	// observably hybrid responses the version matrix measures.
	Strictness soap.Strictness
}

// SetVersionPolicy configures version handling; nil (the default)
// keeps the historical strict SOAP 1.1 behavior. Not safe to call
// concurrently with serving.
func (h *Host) SetVersionPolicy(p *VersionPolicy) { h.version = p }

// ErrPathCollision is wrapped by Deploy when two endpoints derive the
// same HTTP path (FromWSDL strips spaces from service names, so "My
// Service" and "MyService" collide). Silently replacing the earlier
// endpoint would make one of the two services unreachable without any
// trace in the results.
var ErrPathCollision = errors.New("transport: endpoint path already deployed")

// Deploy registers an endpoint. Deploying a path that is already
// serving a different endpoint is an error; the earlier endpoint is
// kept.
func (h *Host) Deploy(ep *Endpoint) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, taken := h.endpoints[ep.Path]; taken {
		return fmt.Errorf("%w: %s", ErrPathCollision, ep.Path)
	}
	h.endpoints[ep.Path] = ep
	return nil
}

// DeployWSDL derives an endpoint from a description and deploys it.
func (h *Host) DeployWSDL(d *wsdl.Definitions) (*Endpoint, error) {
	ep, err := FromWSDL(d)
	if err != nil {
		return nil, err
	}
	if err := h.Deploy(ep); err != nil {
		return nil, err
	}
	return ep, nil
}

// Start binds a loopback listener and serves until Shutdown. It
// returns the base URL of the host.
func (h *Host) Start() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("transport: listen: %w", err)
	}
	h.listener = ln
	h.done = make(chan struct{})
	h.srv = &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		defer close(h.done)
		if err := h.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			h.serveErr = err
		}
	}()
	return "http://" + ln.Addr().String(), nil
}

// Shutdown stops the host and waits for the serve goroutine to exit.
func (h *Host) Shutdown(ctx context.Context) error {
	if h.srv == nil {
		return nil
	}
	err := h.srv.Shutdown(ctx)
	<-h.done
	if err != nil {
		return err
	}
	return h.serveErr
}

var _ http.Handler = (*Host)(nil)

// ServeHTTP implements the SOAP 1.1 HTTP binding: POST with a textual
// XML body; faults use HTTP 500 as the binding requires.
func (h *Host) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mu.RLock()
	ep := h.endpoints[r.URL.Path]
	h.mu.RUnlock()

	// GET <path>?wsdl serves the description — the discovery
	// convention of every framework in the study.
	if r.Method == http.MethodGet {
		if ep == nil {
			http.NotFound(w, r)
			return
		}
		if _, ok := r.URL.Query()["wsdl"]; ok {
			if len(ep.Description) == 0 {
				// The client asked the right question of the right
				// endpoint; a 405 "accept POST (or GET ?wsdl)" here would
				// point at the method, not the real problem.
				http.Error(w, "no description published for this endpoint", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			_, _ = w.Write(ep.Description)
			return
		}
		http.Error(w, "SOAP endpoints accept POST (or GET ?wsdl)", http.StatusMethodNotAllowed)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "SOAP endpoints accept POST only", http.StatusMethodNotAllowed)
		return
	}
	if ep == nil {
		http.NotFound(w, r)
		return
	}

	codec := soap.Codec(soap.V11)
	if h.version != nil && h.version.Codec != nil {
		codec = h.version.Codec
	}
	// respCT is the response framing; SilentCoerce mirrors mismatched
	// request framing back, making the hybrid observable on the wire.
	respCT := codec.ContentType("")

	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeFault(w, codec, respCT, &soap.Fault{Code: soap.FaultClient, String: "unreadable request body"})
		return
	}

	var msg *soap.Message
	if h.version == nil {
		msg, err = soap.V11.Unmarshal(body)
	} else {
		reqCT := r.Header.Get("Content-Type")
		detected := soap.Detect(body, reqCT)
		mismatch := detected != soap.VersionUnknown && detected != codec.Version()
		switch {
		case mismatch && h.version.Strictness == soap.StrictReject:
			writeFault(w, codec, respCT, &soap.Fault{
				Code:   codec.FaultCode(soap.FaultVersionMismatch),
				String: fmt.Sprintf("endpoint speaks %s, request detected as %s", codec.Version(), detected),
			})
			return
		case mismatch && h.version.Strictness == soap.SilentCoerce:
			msg, err = soap.UnmarshalCoerce(body)
			if reqCT != "" {
				respCT = reqCT
			}
		case mismatch: // LenientAccept
			msg, err = soap.UnmarshalFlexible(body)
		default:
			msg, err = codec.Unmarshal(body)
		}
	}
	if err != nil {
		writeFault(w, codec, respCT, &soap.Fault{Code: codec.FaultCode(soap.FaultClient), String: err.Error()})
		return
	}

	respLocal, ok := ep.Operations[msg.Local]
	if !ok {
		writeFault(w, codec, respCT, &soap.Fault{
			Code:   codec.FaultCode(soap.FaultClient),
			String: fmt.Sprintf("unknown operation %q", msg.Local),
		})
		return
	}
	if err := validatePayload(ep.Inputs[msg.Local], msg.Fields); err != nil {
		writeFault(w, codec, respCT, &soap.Fault{Code: codec.FaultCode(soap.FaultClient), String: err.Error()})
		return
	}

	// Execution step: the echo business logic returns the input.
	resp := &soap.Message{
		Namespace: ep.Namespace,
		Local:     respLocal,
		Fields:    msg.Fields,
	}
	out, err := codec.Marshal(resp)
	if err != nil {
		writeFault(w, codec, respCT, &soap.Fault{Code: codec.FaultCode(soap.FaultServer), String: err.Error()})
		return
	}
	w.Header().Set("Content-Type", respCT)
	if _, err := w.Write(out); err != nil {
		return // client went away; nothing to do
	}
}

// writeFault serializes a fault in the host's envelope version. SOAP
// 1.1 always uses HTTP 500; the 1.2 HTTP binding distinguishes Sender
// faults (400) from the rest (500).
func writeFault(w http.ResponseWriter, codec soap.Codec, contentType string, f *soap.Fault) {
	out, err := codec.MarshalFault(f)
	if err != nil {
		http.Error(w, f.Error(), http.StatusInternalServerError)
		return
	}
	status := http.StatusInternalServerError
	if codec.Version() == soap.Version12 && f.Code == soap.Fault12Sender {
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(status)
	_, _ = w.Write(out)
}

// Client invokes deployed SOAP endpoints.
type Client struct {
	httpClient *http.Client
	retry      *RetryPolicy
	meters     *invokeMeters
	codec      soap.Codec      // nil means soap.V11
	strict     soap.Strictness // zero value is StrictReject
}

// NewClient creates a SOAP client. Pass nil to use a default HTTP
// client with a 10-second timeout.
func NewClient(hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 10 * time.Second}
	}
	return &Client{httpClient: hc}
}

// WithRetry returns a copy of the client that invokes under the given
// retry policy.
func (c *Client) WithRetry(p *RetryPolicy) *Client {
	cp := *c
	cp.retry = p
	return &cp
}

// WithObs returns a copy of the client that records invoke latency,
// attempts, retries and error classes into the registry.
func (c *Client) WithObs(reg *obs.Registry) *Client {
	cp := *c
	cp.meters = newInvokeMeters(reg)
	return &cp
}

// WithCodec returns a copy of the client pinned to an envelope
// version: requests are framed per the codec's binding (Content-Type,
// SOAPAction vs action parameter) and responses are required to match
// it under the configured strictness. The default is soap.V11, which
// keeps the historical wire format byte for byte.
func (c *Client) WithCodec(codec soap.Codec) *Client {
	cp := *c
	cp.codec = codec
	return &cp
}

// WithStrictness returns a copy of the client that treats
// version-mismatched responses per the given framework model:
// StrictReject (default) surfaces a *VersionMismatchError,
// LenientAccept parses either version, SilentCoerce parses
// namespace-blind — reproducing the framework behaviors the version
// matrix measures.
func (c *Client) WithStrictness(s soap.Strictness) *Client {
	cp := *c
	cp.strict = s
	return &cp
}

// stampTrace copies the invocation context's campaign trace ID onto
// the request, making the exchange joinable to its (server, client,
// class) cell in sniffer captures and fault-injection logs.
func stampTrace(ctx context.Context, h http.Header) {
	if tr := obs.TraceFrom(ctx); tr != "" {
		h.Set(obs.TraceHeader, tr)
	}
}

// Invoke sends a request message to url and returns the response
// message. A SOAP fault is returned as a *soap.Fault error; a non-2xx
// response without a fault envelope as an *HTTPError. A configured
// RetryPolicy re-attempts transient failures (see Retryable).
func (c *Client) Invoke(ctx context.Context, url, soapAction string, req *soap.Message) (*soap.Message, error) {
	codec := c.codec
	if codec == nil {
		codec = soap.V11
	}
	body, err := codec.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encode request: %w", err)
	}
	return invokeWithRetry(ctx, c.meters, c.retry, func(ctx context.Context, n int) (*soap.Message, error) {
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, strings.NewReader(string(body)))
		if err != nil {
			return nil, fmt.Errorf("build request: %w", err)
		}
		httpReq.Header.Set("Content-Type", codec.ContentType(soapAction))
		if codec.UsesActionHeader() {
			httpReq.Header.Set("SOAPAction", fmt.Sprintf("%q", soapAction))
		}
		stampTrace(ctx, httpReq.Header)
		c.retry.annotate(n, httpReq.Header)

		httpResp, err := c.httpClient.Do(httpReq)
		if err != nil {
			return nil, fmt.Errorf("invoke %s: %w", url, err)
		}
		defer func() { _ = httpResp.Body.Close() }()

		// One byte past the budget lets the decode distinguish an
		// exactly-full response from an oversized one.
		respBody, err := io.ReadAll(io.LimitReader(httpResp.Body, maxResponseBytes+1))
		if err != nil {
			return nil, fmt.Errorf("read response: %w", err)
		}
		return decodeResponse(codec, c.strict, httpResp.StatusCode, httpResp.Header.Get("Content-Type"), respBody)
	})
}
