package transport

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"wsinterop/internal/soap"
)

// cannedHandler serves a fixed (status, content type, body) triple —
// the knob for the status × body decode matrix.
func cannedHandler(status int, contentType string, body []byte) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", contentType)
		w.WriteHeader(status)
		_, _ = w.Write(body)
	})
}

func echoEnvelope(t *testing.T) []byte {
	t.Helper()
	body, err := soap.V11.Marshal(&soap.Message{
		Namespace: "urn:test", Local: "echoResponse",
		Fields: map[string]string{"input": "ping"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func faultEnvelope(t *testing.T) []byte {
	t.Helper()
	body, err := soap.V11.MarshalFault(&soap.Fault{Code: soap.FaultServer, String: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestStatusDecodeMatrix drives the status-aware decode through both
// invocation paths: every combination of HTTP status class and body
// shape must map to the same typed result. The 4xx/5xx × envelope rows
// are the status-blind bug fix — before it, a well-formed body on an
// error status was reported as success.
func TestStatusDecodeMatrix(t *testing.T) {
	req := &soap.Message{Namespace: "urn:test", Local: "echo",
		Fields: map[string]string{"input": "ping"}}

	type want int
	const (
		wantMessage want = iota
		wantFault
		wantHTTPError
		wantDecodeError
	)
	cases := []struct {
		name        string
		status      int
		contentType string
		body        func(*testing.T) []byte
		want        want
	}{
		{"200 envelope", 200, soap.ContentType, echoEnvelope, wantMessage},
		{"200 fault", 200, soap.ContentType, faultEnvelope, wantFault},
		{"200 garbage", 200, soap.ContentType,
			func(*testing.T) []byte { return []byte("not xml") }, wantDecodeError},
		{"400 envelope", 400, soap.ContentType, echoEnvelope, wantHTTPError},
		{"404 garbage", 404, "text/plain",
			func(*testing.T) []byte { return []byte("404 page not found") }, wantHTTPError},
		{"500 fault", 500, soap.ContentType, faultEnvelope, wantFault},
		{"500 envelope", 500, soap.ContentType, echoEnvelope, wantHTTPError},
		{"500 garbage", 500, "text/html",
			func(*testing.T) []byte { return []byte("<html>err</html>") }, wantHTTPError},
		{"503 empty", 503, "text/plain",
			func(*testing.T) []byte { return nil }, wantHTTPError},
	}

	check := func(t *testing.T, c struct {
		name        string
		status      int
		contentType string
		body        func(*testing.T) []byte
		want        want
	}, resp *soap.Message, err error) {
		t.Helper()
		switch c.want {
		case wantMessage:
			if err != nil {
				t.Fatalf("want message, got error %v", err)
			}
			if v, _ := resp.Field("input"); v != "ping" {
				t.Errorf("echo = %q", v)
			}
		case wantFault:
			var fault *soap.Fault
			if !errors.As(err, &fault) {
				t.Fatalf("want *soap.Fault, got %v", err)
			}
		case wantHTTPError:
			var he *HTTPError
			if !errors.As(err, &he) {
				t.Fatalf("want *HTTPError, got %v", err)
			}
			if he.Status != c.status {
				t.Errorf("HTTPError.Status = %d, want %d", he.Status, c.status)
			}
		case wantDecodeError:
			var de *soap.DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("want *soap.DecodeError, got %v", err)
			}
		}
	}

	for _, c := range cases {
		t.Run("bridge/"+c.name, func(t *testing.T) {
			bridge := NewLocalBridge(cannedHandler(c.status, c.contentType, c.body(t)))
			resp, err := bridge.Invoke(context.Background(), "/svc", req)
			check(t, c, resp, err)
		})
		t.Run("client/"+c.name, func(t *testing.T) {
			srv := httptest.NewServer(cannedHandler(c.status, c.contentType, c.body(t)))
			defer srv.Close()
			resp, err := NewClient(nil).Invoke(context.Background(), srv.URL, "", req)
			check(t, c, resp, err)
		})
	}
}

// flakyHandler fails the first n requests with a 503, then echoes.
type flakyHandler struct {
	failures int
	seen     int
	echo     []byte
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.seen++
	if h.seen <= h.failures {
		http.Error(w, "unavailable", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", soap.ContentType)
	_, _ = w.Write(h.echo)
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	h := &flakyHandler{failures: 2, echo: echoEnvelope(t)}
	var slept []time.Duration
	policy := &RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   10 * time.Millisecond,
		Sleep: func(_ context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}
	bridge := NewLocalBridge(h).WithRetry(policy)
	resp, err := bridge.Invoke(context.Background(),
		"/svc", &soap.Message{Namespace: "urn:test", Local: "echo",
			Fields: map[string]string{"input": "ping"}})
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if v, _ := resp.Field("input"); v != "ping" {
		t.Errorf("echo = %q", v)
	}
	if h.seen != 3 {
		t.Errorf("attempts = %d, want 3", h.seen)
	}
	// Fake clock observed the exponential backoff: base, then doubled.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	h := &flakyHandler{failures: 10, echo: echoEnvelope(t)}
	policy := &RetryPolicy{
		MaxAttempts: 4,
		Sleep:       func(context.Context, time.Duration) error { return nil },
	}
	_, err := NewLocalBridge(h).WithRetry(policy).Invoke(context.Background(),
		"/svc", &soap.Message{Namespace: "urn:test", Local: "echo"})
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("want 503 HTTPError after exhaustion, got %v", err)
	}
	if h.seen != 4 {
		t.Errorf("attempts = %d, want 4 (MaxAttempts)", h.seen)
	}
}

func TestNoRetryOnDefinitiveErrors(t *testing.T) {
	cases := []struct {
		name    string
		status  int
		body    func(*testing.T) []byte
		ctype   string
		wantErr func(error) bool
	}{
		{"soap fault", 500, faultEnvelope, soap.ContentType, func(err error) bool {
			var f *soap.Fault
			return errors.As(err, &f)
		}},
		{"client 4xx", 400, func(*testing.T) []byte { return []byte("bad request") },
			"text/plain", func(err error) bool {
				var he *HTTPError
				return errors.As(err, &he) && he.Status == 400
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			seen := 0
			h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				seen++
				w.Header().Set("Content-Type", c.ctype)
				w.WriteHeader(c.status)
				_, _ = w.Write(c.body(t))
			})
			policy := &RetryPolicy{MaxAttempts: 5,
				Sleep: func(context.Context, time.Duration) error { return nil }}
			_, err := NewLocalBridge(h).WithRetry(policy).Invoke(context.Background(),
				"/svc", &soap.Message{Namespace: "urn:test", Local: "echo"})
			if !c.wantErr(err) {
				t.Fatalf("unexpected error: %v", err)
			}
			if seen != 1 {
				t.Errorf("attempts = %d, want 1 (definitive errors must not retry)", seen)
			}
		})
	}
}

func TestBackoffCapAndJitter(t *testing.T) {
	jitterCalls := 0
	p := &RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    35 * time.Millisecond,
		Jitter: func(attempt int, d time.Duration) time.Duration {
			jitterCalls++
			return d + time.Duration(attempt)
		},
	}
	// Doubling capped at MaxDelay, each nudged by the jitter hook.
	want := []time.Duration{
		10*time.Millisecond + 1,
		20*time.Millisecond + 2,
		35*time.Millisecond + 3,
		35*time.Millisecond + 4,
	}
	for i, attempt := range []int{1, 2, 3, 4} {
		if got := p.backoff(attempt); got != want[i] {
			t.Errorf("backoff(%d) = %v, want %v", attempt, got, want[i])
		}
	}
	if jitterCalls != 4 {
		t.Errorf("jitter calls = %d, want 4", jitterCalls)
	}
}

func TestRetryDeadlineBoundsInvocation(t *testing.T) {
	h := &flakyHandler{failures: 1 << 30, echo: nil}
	policy := &RetryPolicy{
		MaxAttempts: 1 << 20,
		Deadline:    20 * time.Millisecond,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			// A cooperative fake clock: yield until the deadline context
			// expires rather than spinning through a million attempts.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Millisecond):
				return nil
			}
		},
	}
	start := time.Now()
	_, err := NewLocalBridge(h).WithRetry(policy).Invoke(context.Background(),
		"/svc", &soap.Message{Namespace: "urn:test", Local: "echo"})
	if err == nil {
		t.Fatal("want error after deadline")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline did not bound the invocation: %v", elapsed)
	}
	// The surfaced error is the last attempt's, not a bare context error.
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Errorf("want last attempt's HTTPError, got %v", err)
	}
}

func TestAnnotateStampsEveryAttempt(t *testing.T) {
	var stamps []string
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		stamps = append(stamps, r.Header.Get("X-Attempt"))
		http.Error(w, "unavailable", http.StatusServiceUnavailable)
	})
	policy := &RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(context.Context, time.Duration) error { return nil },
		Annotate: func(attempt int, hdr http.Header) {
			hdr.Set("X-Attempt", string(rune('0'+attempt)))
		},
	}
	_, _ = NewLocalBridge(h).WithRetry(policy).Invoke(context.Background(),
		"/svc", &soap.Message{Namespace: "urn:test", Local: "echo"})
	if len(stamps) != 3 || stamps[0] != "1" || stamps[1] != "2" || stamps[2] != "3" {
		t.Errorf("attempt stamps = %v, want [1 2 3]", stamps)
	}
}

func TestLocalBridgeAbortIsTyped(t *testing.T) {
	h := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	})
	_, err := NewLocalBridge(h).Invoke(context.Background(),
		"/svc", &soap.Message{Namespace: "urn:test", Local: "echo"})
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	if !Retryable(err) {
		t.Error("aborted connections must be retryable")
	}
}
