package transport

import (
	"context"
	"errors"
	"net/http"
	"testing"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/soap"
	"wsinterop/internal/typesys"
)

// versionTestHost publishes one clean service onto a host with the
// given version policy, returning the host and its endpoint; no
// listener is bound (the tests drive the LocalBridge).
func versionTestHost(t *testing.T, policy *VersionPolicy) (*Host, *Endpoint) {
	t.Helper()
	cat := typesys.JavaCatalog()
	var cls *typesys.Class
	for i := range cat.Classes {
		if cat.Classes[i].Kind == typesys.KindBean && cat.Classes[i].Hints == 0 {
			cls = &cat.Classes[i]
			break
		}
	}
	doc, err := framework.NewMetroServer().Publish(services.ForClass(cls))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	h := NewHost()
	h.SetVersionPolicy(policy)
	ep, err := h.DeployWSDL(doc)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	return h, ep
}

func versionTestRequest(ep *Endpoint) *soap.Message {
	return &soap.Message{
		Namespace: ep.Namespace,
		Local:     "echo",
		Fields:    map[string]string{"input": "ping"},
	}
}

// TestV12EndToEnd drives a full 1.2 exchange: V12 host, V12 bridge,
// application/soap+xml framing on both legs.
func TestV12EndToEnd(t *testing.T) {
	h, ep := versionTestHost(t, &VersionPolicy{Codec: soap.V12})
	bridge := h.Local().WithCodec(soap.V12)
	resp, err := bridge.Invoke(context.Background(), ep.Path, versionTestRequest(ep))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Local != "echoResponse" || resp.Fields["input"] != "ping" {
		t.Fatalf("echo mismatch: %+v", resp)
	}
}

// TestStrictHostRejectsOtherVersion pins the server-side strict
// behavior: a 1.2 request to a strict 1.1 host draws a
// VersionMismatch fault in the host's own version.
func TestStrictHostRejectsOtherVersion(t *testing.T) {
	h, ep := versionTestHost(t, &VersionPolicy{Codec: soap.V11, Strictness: soap.StrictReject})
	// The lenient client parses the 1.1 fault rather than tripping on
	// the version gate, so the fault code is observable.
	bridge := h.Local().WithCodec(soap.V12).WithStrictness(soap.LenientAccept)
	_, err := bridge.Invoke(context.Background(), ep.Path, versionTestRequest(ep))
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *soap.Fault", err)
	}
	if fault.Code != soap.FaultVersionMismatch {
		t.Fatalf("fault code = %q, want %q", fault.Code, soap.FaultVersionMismatch)
	}
}

// TestStrictClientRejectsOtherVersion pins the client-side strict
// behavior: a strict 1.2 client refuses a 1.1 response with a typed,
// non-retryable *VersionMismatchError.
func TestStrictClientRejectsOtherVersion(t *testing.T) {
	h, ep := versionTestHost(t, &VersionPolicy{Codec: soap.V11, Strictness: soap.LenientAccept})
	bridge := h.Local().WithCodec(soap.V12) // strict by default
	_, err := bridge.Invoke(context.Background(), ep.Path, versionTestRequest(ep))
	var vm *VersionMismatchError
	if !errors.As(err, &vm) {
		t.Fatalf("err = %v, want *VersionMismatchError", err)
	}
	if vm.Want != soap.Version12 || vm.Got != soap.Version11 {
		t.Fatalf("mismatch = %+v", vm)
	}
	if Retryable(err) {
		t.Fatal("version mismatch must not be retryable")
	}
}

// TestLenientHostAnswersNatively: a lenient 1.1 host accepts a 1.2
// request and answers in its own version, which a lenient client
// consumes.
func TestLenientHostAnswersNatively(t *testing.T) {
	h, ep := versionTestHost(t, &VersionPolicy{Codec: soap.V11, Strictness: soap.LenientAccept})
	bridge := h.Local().WithCodec(soap.V12).WithStrictness(soap.LenientAccept)
	resp, err := bridge.Invoke(context.Background(), ep.Path, versionTestRequest(ep))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Local != "echoResponse" {
		t.Fatalf("echo mismatch: %+v", resp)
	}
}

// TestCoerceHostMirrorsFraming: a silent-coerce 1.1 host answers a
// mismatched request by mirroring its Content-Type over a 1.1 body —
// an observably hybrid response that a strict client must refuse.
func TestCoerceHostMirrorsFraming(t *testing.T) {
	h, ep := versionTestHost(t, &VersionPolicy{Codec: soap.V11, Strictness: soap.SilentCoerce})
	bridge := h.Local().WithCodec(soap.V12) // strict by default
	_, err := bridge.Invoke(context.Background(), ep.Path, versionTestRequest(ep))
	var vm *VersionMismatchError
	if !errors.As(err, &vm) {
		t.Fatalf("err = %v, want *VersionMismatchError", err)
	}
	if vm.Got != soap.VersionHybrid {
		t.Fatalf("detected %v, want hybrid (1.1 body under mirrored 1.2 framing)", vm.Got)
	}
}

// TestV12FaultStatus pins the 1.2 HTTP binding detail: Sender faults
// ride HTTP 400, others 500, and the fault surfaces either way.
func TestV12FaultStatus(t *testing.T) {
	h, ep := versionTestHost(t, &VersionPolicy{Codec: soap.V12})
	bridge := h.Local().WithCodec(soap.V12)
	bad := &soap.Message{Namespace: ep.Namespace, Local: "noSuchOperation"}
	_, err := bridge.Invoke(context.Background(), ep.Path, bad)
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("err = %v, want *soap.Fault", err)
	}
	if fault.Code != soap.Fault12Sender {
		t.Fatalf("fault code = %q, want %q", fault.Code, soap.Fault12Sender)
	}
}

// TestDefaultPathUnchanged: with no policy and no codec, the exchange
// is the historical SOAP 1.1 wire format.
func TestDefaultPathUnchanged(t *testing.T) {
	h, ep := versionTestHost(t, nil)
	var gotCT, gotAction string
	probe := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotCT = r.Header.Get("Content-Type")
		gotAction = r.Header.Get("SOAPAction")
		h.ServeHTTP(w, r)
	})
	resp, err := NewLocalBridge(probe).Invoke(context.Background(), ep.Path, versionTestRequest(ep))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Local != "echoResponse" {
		t.Fatalf("echo mismatch: %+v", resp)
	}
	if gotCT != soap.ContentType || gotAction != `""` {
		t.Fatalf("legacy framing changed: ct=%q action=%q", gotCT, gotAction)
	}
}
