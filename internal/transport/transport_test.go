package transport

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/soap"
	"wsinterop/internal/typesys"
)

// startEchoHost publishes one clean Java service and serves it.
func startEchoHost(t *testing.T) (base string, ep *Endpoint, shutdown func()) {
	t.Helper()
	cat := typesys.JavaCatalog()
	var cls *typesys.Class
	for i := range cat.Classes {
		if cat.Classes[i].Kind == typesys.KindBean && cat.Classes[i].Hints == 0 {
			cls = &cat.Classes[i]
			break
		}
	}
	doc, err := framework.NewMetroServer().Publish(services.ForClass(cls))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	host := NewHost()
	ep, err = host.DeployWSDL(doc)
	if err != nil {
		t.Fatalf("deploy: %v", err)
	}
	base, err = host.Start()
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	return base, ep, func() {
		if err := host.Shutdown(context.Background()); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}
}

func TestEchoRoundTrip(t *testing.T) {
	base, ep, shutdown := startEchoHost(t)
	defer shutdown()

	client := NewClient(nil)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	req := &soap.Message{
		Namespace: ep.Namespace,
		Local:     "echo",
		Fields:    map[string]string{"input": "ping"},
	}
	resp, err := client.Invoke(ctx, base+ep.Path, "", req)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if resp.Local != "echoResponse" {
		t.Errorf("response wrapper = %q, want echoResponse", resp.Local)
	}
	if v, _ := resp.Field("input"); v != "ping" {
		t.Errorf("echoed value = %q, want ping", v)
	}
}

func TestUnknownOperationFaults(t *testing.T) {
	base, ep, shutdown := startEchoHost(t)
	defer shutdown()

	client := NewClient(nil)
	ctx := context.Background()
	_, err := client.Invoke(ctx, base+ep.Path, "", &soap.Message{
		Namespace: ep.Namespace, Local: "bogus",
	})
	var fault *soap.Fault
	if !errors.As(err, &fault) {
		t.Fatalf("expected SOAP fault, got %v", err)
	}
	if fault.Code != soap.FaultClient {
		t.Errorf("fault code = %q, want %q", fault.Code, soap.FaultClient)
	}
}

func TestUnknownPathIs404(t *testing.T) {
	base, _, shutdown := startEchoHost(t)
	defer shutdown()
	resp, err := http.Post(base+"/no/such/service", soap.ContentType, strings.NewReader("<x/>"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestGETRejected(t *testing.T) {
	base, ep, shutdown := startEchoHost(t)
	defer shutdown()
	resp, err := http.Get(base + ep.Path)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}

func TestMalformedEnvelopeFaults(t *testing.T) {
	base, ep, shutdown := startEchoHost(t)
	defer shutdown()
	resp, err := http.Post(base+ep.Path, soap.ContentType, strings.NewReader("not xml"))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500 (SOAP 1.1 fault binding)", resp.StatusCode)
	}
}

func TestFromWSDLRejectsZeroOperations(t *testing.T) {
	cls, _ := typesys.JavaCatalog().Lookup(typesys.JavaResponse)
	doc, err := framework.NewJBossWSServer().Publish(services.ForClass(cls))
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if _, err := FromWSDL(doc); err == nil {
		t.Error("zero-operation WSDL must not deploy — the unusable-WSDL finding, live")
	}
}

func TestConcurrentInvocations(t *testing.T) {
	base, ep, shutdown := startEchoHost(t)
	defer shutdown()

	client := NewClient(nil)
	ctx := context.Background()
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := &soap.Message{
				Namespace: ep.Namespace,
				Local:     "echo",
				Fields:    map[string]string{"input": strings.Repeat("x", i+1)},
			}
			resp, err := client.Invoke(ctx, base+ep.Path, "", req)
			if err != nil {
				errs[i] = err
				return
			}
			if v, _ := resp.Field("input"); len(v) != i+1 {
				errs[i] = errors.New("wrong echo length")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("invocation %d: %v", i, err)
		}
	}
}

func TestShutdownIdempotentOnFreshHost(t *testing.T) {
	h := NewHost()
	if err := h.Shutdown(context.Background()); err != nil {
		t.Errorf("shutdown of unstarted host: %v", err)
	}
}

func TestDeployCollisionIsError(t *testing.T) {
	h := NewHost()
	if err := h.Deploy(&Endpoint{Path: "/svc", Namespace: "urn:a", Operations: map[string]string{"op": "opResponse"}}); err != nil {
		t.Fatalf("first deploy: %v", err)
	}
	err := h.Deploy(&Endpoint{Path: "/svc", Namespace: "urn:b", Operations: map[string]string{"op": "opResponse"}})
	if !errors.Is(err, ErrPathCollision) {
		t.Fatalf("second deploy on same path: err = %v, want ErrPathCollision", err)
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	if h.endpoints["/svc"].Namespace != "urn:a" {
		t.Error("collision must keep the earlier endpoint, not silently replace it")
	}
}

func TestWSDLDiscoveryEndpoint(t *testing.T) {
	base, ep, shutdown := startEchoHost(t)
	defer shutdown()

	resp, err := http.Get(base + ep.Path + "?wsdl")
	if err != nil {
		t.Fatalf("get ?wsdl: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "wsdl:definitions") {
		t.Errorf("?wsdl did not return a description:\n%s", body)
	}
}

// TestDiscoveryFlow is the full end-to-end loop: fetch the WSDL over
// HTTP, run a client framework's artifact generation on the fetched
// bytes, then invoke the live operation — all five steps of the
// paper's Fig. 1 against one deployment.
func TestDiscoveryFlow(t *testing.T) {
	base, ep, shutdown := startEchoHost(t)
	defer shutdown()

	resp, err := http.Get(base + ep.Path + "?wsdl")
	if err != nil {
		t.Fatalf("discover: %v", err)
	}
	fetched, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}

	client := framework.NewMetroClient()
	gen := client.Generate(fetched)
	if gen.Failed() || gen.Unit == nil {
		t.Fatalf("artifact generation from fetched WSDL failed: %v", gen.Issues)
	}
	if diags := client.Verify(gen.Unit); len(diags) != 0 {
		t.Fatalf("verification: %v", diags)
	}
	port := gen.Unit.PortClass()
	if port == nil || len(port.Methods) == 0 {
		t.Fatal("no invocable proxy method")
	}

	soapClient := NewClient(nil)
	req := &soap.Message{
		Namespace: ep.Namespace,
		Local:     port.Methods[0].Name,
		Fields:    map[string]string{"input": "discovered"},
	}
	got, err := soapClient.Invoke(context.Background(), base+ep.Path, "", req)
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if v, _ := got.Field("input"); v != "discovered" {
		t.Errorf("echo = %q", v)
	}
}
