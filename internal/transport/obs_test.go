package transport

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"unicode/utf8"

	"wsinterop/internal/obs"
	"wsinterop/internal/soap"
)

func TestSnippetRuneBoundary(t *testing.T) {
	// Byte 120 falls inside the two-byte é: the cut must back up to the
	// rune start instead of splitting the sequence.
	body := []byte(strings.Repeat("a", 119) + "é" + strings.Repeat("b", 40))
	got := snippet(body)
	if !utf8.ValidString(got) {
		t.Errorf("snippet produced invalid UTF-8: %q", got)
	}
	if want := strings.Repeat("a", 119) + "..."; got != want {
		t.Errorf("snippet = %q, want %q", got, want)
	}
	// Sweep the limit across 2-, 3- and 4-byte sequences: every offset
	// must yield valid UTF-8.
	for pad := 100; pad <= 125; pad++ {
		b := []byte(strings.Repeat("x", pad) + strings.Repeat("é€𝄞", 20))
		if s := snippet(b); !utf8.ValidString(s) {
			t.Errorf("pad %d: snippet produced invalid UTF-8: %q", pad, s)
		}
	}
	if s := snippet([]byte("  short  ")); s != "short" {
		t.Errorf("short body snippet = %q, want %q", s, "short")
	}
}

func TestRecordingWriterImplicitStatus(t *testing.T) {
	// A handler that writes a body without WriteHeader gets net/http's
	// implicit 200; the recorder must see the same.
	w := &recordingWriter{ResponseWriter: httptest.NewRecorder()}
	if _, err := w.Write([]byte("hi")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if w.Status() != http.StatusOK {
		t.Errorf("implicit status = %d, want 200", w.Status())
	}

	// An explicit status is preserved, and only the first one counts.
	w = &recordingWriter{ResponseWriter: httptest.NewRecorder()}
	w.WriteHeader(http.StatusTeapot)
	w.WriteHeader(http.StatusOK)
	if w.Status() != http.StatusTeapot {
		t.Errorf("explicit status = %d, want 418", w.Status())
	}

	// A handler that writes nothing at all is still an implicit 200.
	w = &recordingWriter{ResponseWriter: httptest.NewRecorder()}
	if w.Status() != http.StatusOK {
		t.Errorf("silent handler status = %d, want 200", w.Status())
	}
}

func TestRecordingWriterFlusherPassthrough(t *testing.T) {
	var _ http.Flusher = (*recordingWriter)(nil)
	rec := httptest.NewRecorder()
	w := &recordingWriter{ResponseWriter: rec}
	w.Flush()
	if !rec.Flushed {
		t.Error("Flush did not reach the wrapped writer")
	}
	// A writer without Flusher support is a no-op, not a panic.
	(&recordingWriter{ResponseWriter: newRecorder()}).Flush()
}

func TestSnifferRecordsImplicitStatus(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("<x/>")) // no WriteHeader call
	})
	s := NewSniffer(inner, nil)
	req := httptest.NewRequest(http.MethodPost, "/svc", strings.NewReader("<x/>"))
	s.ServeHTTP(httptest.NewRecorder(), req)
	log := s.ExchangeLog()
	if len(log) != 1 || log[0].Status != http.StatusOK {
		t.Errorf("exchange log = %+v, want one record with status 200", log)
	}
}

// errAfterReader yields its data, then fails.
type errAfterReader struct {
	data []byte
	err  error
	done bool
}

func (r *errAfterReader) Read(p []byte) (int, error) {
	if r.done {
		return 0, r.err
	}
	r.done = true
	return copy(p, r.data), nil
}

func TestSnifferBodyReadError(t *testing.T) {
	var got []byte
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got, _ = io.ReadAll(r.Body)
		http.Error(w, "bad request", http.StatusBadRequest)
	})
	reg := obs.NewRegistry()
	s := NewSniffer(inner, nil).WithObs(reg)
	req := httptest.NewRequest(http.MethodPost, "/svc",
		&errAfterReader{data: []byte("<partial"), err: errors.New("connection torn")})
	s.ServeHTTP(httptest.NewRecorder(), req)
	// The handler must receive exactly the bytes the capture saw — a
	// cleanly truncated document, not the half-drained original stream.
	if string(got) != "<partial" {
		t.Errorf("handler saw %q, want the %q prefix the sniffer read", got, "<partial")
	}
	if n := reg.Counter("sniffer.request.read_errors").Value(); n != 1 {
		t.Errorf("read_errors counter = %d, want 1", n)
	}
}

func TestWSDLQueryWithoutDescriptionIs404(t *testing.T) {
	host := NewHost()
	if err := host.Deploy(&Endpoint{
		Path: "/svc", Namespace: "urn:x",
		Operations: map[string]string{"echo": "echoResponse"},
	}); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	rec := httptest.NewRecorder()
	host.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/svc?wsdl", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET ?wsdl status = %d, want 404", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "no description published") {
		t.Errorf("GET ?wsdl body = %q, want the missing-description explanation", rec.Body.String())
	}
	// A plain GET still points at the method contract.
	rec = httptest.NewRecorder()
	host.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/svc", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("plain GET status = %d, want 405", rec.Code)
	}
}

func TestTraceStampedThroughLocalBridge(t *testing.T) {
	host := NewHost()
	if err := host.Deploy(&Endpoint{
		Path: "/echo", Namespace: "urn:x",
		Operations: map[string]string{"echo": "echoResponse"},
	}); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	var captured string
	mw := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		captured = r.Header.Get(obs.TraceHeader)
		host.ServeHTTP(w, r)
	})
	bridge := NewLocalBridge(mw)
	req := &soap.Message{Namespace: "urn:x", Local: "echo", Fields: map[string]string{"input": "x"}}

	trace := obs.TraceID("server", "Class", "client")
	if _, err := bridge.Invoke(obs.WithTrace(context.Background(), trace), "/echo", req); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if captured != trace {
		t.Errorf("wire trace = %q, want %q", captured, trace)
	}

	// An untraced context leaves the header off the wire.
	if _, err := bridge.Invoke(context.Background(), "/echo", req); err != nil {
		t.Fatalf("untraced invoke: %v", err)
	}
	if captured != "" {
		t.Errorf("untraced invoke carried header %q", captured)
	}
}

func TestTraceStampedThroughClient(t *testing.T) {
	var captured string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		captured = r.Header.Get(obs.TraceHeader)
		resp, err := soap.V11.Marshal(&soap.Message{
			Namespace: "urn:x", Local: "echoResponse", Fields: map[string]string{"input": "x"}})
		if err != nil {
			t.Errorf("marshal: %v", err)
		}
		w.Header().Set("Content-Type", soap.ContentType)
		_, _ = w.Write(resp)
	}))
	defer srv.Close()

	trace := obs.TraceID("server", "Class", "client")
	client := NewClient(nil)
	req := &soap.Message{Namespace: "urn:x", Local: "echo", Fields: map[string]string{"input": "x"}}
	if _, err := client.Invoke(obs.WithTrace(context.Background(), trace), srv.URL, "", req); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if captured != trace {
		t.Errorf("wire trace = %q, want %q", captured, trace)
	}
}

func TestInvokeMetersRecordAttemptsAndErrors(t *testing.T) {
	host := NewHost()
	if err := host.Deploy(&Endpoint{
		Path: "/echo", Namespace: "urn:x",
		Operations: map[string]string{"echo": "echoResponse"},
	}); err != nil {
		t.Fatalf("deploy: %v", err)
	}
	reg := obs.NewRegistry()
	bridge := NewLocalBridge(host).WithObs(reg)

	ok := &soap.Message{Namespace: "urn:x", Local: "echo", Fields: map[string]string{"input": "x"}}
	if _, err := bridge.Invoke(context.Background(), "/echo", ok); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	// Unknown operation surfaces a SOAP fault — a counted error class.
	if _, err := bridge.Invoke(context.Background(), "/echo",
		&soap.Message{Namespace: "urn:x", Local: "bogus"}); err == nil {
		t.Fatal("expected fault")
	}

	if n := reg.Counter("transport.attempts").Value(); n != 2 {
		t.Errorf("attempts = %d, want 2", n)
	}
	if n := reg.Counter("transport.errors.fault").Value(); n != 1 {
		t.Errorf("fault errors = %d, want 1", n)
	}
	snap := reg.Snapshot()
	for _, h := range snap.Histograms {
		if h.Name == "transport.invoke.seconds" {
			if h.Count != 2 {
				t.Errorf("invoke latency count = %d, want 2", h.Count)
			}
			return
		}
	}
	t.Error("transport.invoke.seconds histogram missing from snapshot")
}
