package transport

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"time"
	"unicode/utf8"

	"wsinterop/internal/obs"
	"wsinterop/internal/soap"
)

// ErrAborted reports a connection the server dropped mid-exchange
// before a complete response could be read.
var ErrAborted = errors.New("transport: connection aborted")

// maxResponseBytes is the response read budget shared by Client and
// LocalBridge. A response padded past it is truncated mid-document,
// which the decode then rejects.
const maxResponseBytes = 1 << 20

// HTTPError is the typed transport error for an HTTP response whose
// status code contradicts success: a non-2xx status whose body is not
// a SOAP fault envelope. It covers both plain-text error pages (the
// 404/405 http.Error bodies that used to surface as a confusing
// "malformed envelope" decode error) and — the status-blind client
// bug — error statuses whose body happens to parse as a message.
type HTTPError struct {
	// Status is the HTTP status code.
	Status int
	// ContentType is the response's declared media type.
	ContentType string
	// Snippet is a bounded prefix of the response body, for diagnosis.
	Snippet string
}

// Error implements the error interface.
func (e *HTTPError) Error() string {
	if e.Snippet == "" {
		return fmt.Sprintf("transport: HTTP %d (%s)", e.Status, e.ContentType)
	}
	return fmt.Sprintf("transport: HTTP %d (%s): %s", e.Status, e.ContentType, e.Snippet)
}

// VersionMismatchError is the typed transport error for a response
// whose detected SOAP version contradicts the version the caller is
// pinned to: the other pure version, or a hybrid mixing both. It is
// the client-side face of strict-reject framework behavior, and is
// definitive (never retryable) — the peer will keep speaking the same
// version on every attempt.
type VersionMismatchError struct {
	// Want is the version the caller's codec speaks.
	Want soap.Version
	// Got is the version Detect assigned to the response.
	Got soap.Version
	// ContentType is the response's declared media type.
	ContentType string
}

// Error implements the error interface.
func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("transport: version mismatch: want %s, got %s (%s)",
		e.Want, e.Got, e.ContentType)
}

// snippet bounds a body prefix for HTTPError diagnostics. The cut
// backs up to a rune boundary so a multi-byte UTF-8 sequence spanning
// the limit is dropped whole rather than split — a byte-offset
// truncation would put invalid UTF-8 into error messages (and into
// every log and report that quotes them).
func snippet(body []byte) string {
	s := strings.TrimSpace(string(body))
	if len(s) > 120 {
		cut := 120
		for cut > 0 && !utf8.RuneStart(s[cut]) {
			cut--
		}
		s = s[:cut] + "..."
	}
	return s
}

// decodeResponse is the status-, version- and strictness-aware decode
// shared by Client and LocalBridge:
//
//   - a response whose detected version contradicts the pinned codec
//     is a *VersionMismatchError under StrictReject — the typed
//     refusal strict frameworks produce;
//   - a fault envelope is returned as *soap.Fault whatever the status
//     (the SOAP 1.1 binding sends faults with HTTP 500);
//   - a non-2xx status is an *HTTPError — even when the body parses as
//     a message, success is not success if the wire said otherwise;
//   - a 2xx body that fails to parse stays a decode error, stamped
//     with the detected version for diagnostics.
//
// Under LenientAccept the body is parsed flexibly (either version,
// hybrids included); under SilentCoerce it is parsed namespace-blind,
// reproducing the frameworks that turn hybrid faults into data.
func decodeResponse(codec soap.Codec, strict soap.Strictness, status int, contentType string, body []byte) (*soap.Message, error) {
	ok := status >= 200 && status <= 299
	if len(body) > maxResponseBytes {
		// The reader fetched one byte past the budget: the response is
		// oversized and necessarily incomplete. Reject it without paying
		// for a parse of megabytes of padding.
		return nil, &soap.DecodeError{
			Reason: fmt.Sprintf("response exceeds the %d-byte read budget", maxResponseBytes)}
	}
	detected := soap.Detect(body, contentType)
	if strict == soap.StrictReject && detected != soap.VersionUnknown && detected != codec.Version() {
		return nil, &VersionMismatchError{Want: codec.Version(), Got: detected, ContentType: contentType}
	}
	var msg *soap.Message
	var err error
	switch strict {
	case soap.LenientAccept:
		msg, err = soap.UnmarshalFlexible(body)
	case soap.SilentCoerce:
		msg, err = soap.UnmarshalCoerce(body)
	default:
		msg, err = codec.Unmarshal(body)
	}
	if err != nil {
		var fault *soap.Fault
		if errors.As(err, &fault) {
			return nil, fault
		}
		if !ok {
			return nil, &HTTPError{Status: status, ContentType: contentType, Snippet: snippet(body)}
		}
		var de *soap.DecodeError
		if errors.As(err, &de) && de.Version == soap.VersionUnknown {
			de.Version = detected
		}
		return nil, fmt.Errorf("decode response (HTTP %d): %w", status, err)
	}
	if !ok {
		return nil, &HTTPError{Status: status, ContentType: contentType, Snippet: snippet(body)}
	}
	return msg, nil
}

// RetryPolicy bounds and paces invocation retries: a deadline over the
// whole invocation, a capped number of attempts, and exponential
// backoff between them. The Jitter, Sleep and Annotate hooks keep the
// policy deterministic and testable — a fake clock slots into Sleep,
// a seeded spread into Jitter, and per-attempt request stamping (the
// fault-injection harness uses it) into Annotate.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts; values below 2 mean
	// a single attempt (no retry).
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles
	// per retry. Zero means no pause.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff when positive.
	MaxDelay time.Duration
	// Deadline, when positive, bounds the whole invocation (all
	// attempts and backoffs) via a derived context.
	Deadline time.Duration
	// Jitter, when non-nil, maps the computed backoff of an attempt to
	// the delay actually slept. Keeping it a hook (rather than baked-in
	// randomness) is what makes campaign runs reproducible.
	Jitter func(attempt int, d time.Duration) time.Duration
	// Sleep, when non-nil, replaces the real timer between attempts.
	Sleep func(ctx context.Context, d time.Duration) error
	// Annotate, when non-nil, is called with each attempt's number and
	// request headers before the request is sent.
	Annotate func(attempt int, h http.Header)
}

// maxAttempts normalizes the attempt budget; a nil policy means one.
func (p *RetryPolicy) maxAttempts() int {
	if p == nil || p.MaxAttempts < 2 {
		return 1
	}
	return p.MaxAttempts
}

// annotate stamps one attempt's request headers.
func (p *RetryPolicy) annotate(attempt int, h http.Header) {
	if p != nil && p.Annotate != nil {
		p.Annotate(attempt, h)
	}
}

// backoff computes the pause after a failed attempt (1-based).
func (p *RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.MaxDelay > 0 && d >= p.MaxDelay {
			d = p.MaxDelay
			break
		}
	}
	if p.Jitter != nil {
		d = p.Jitter(attempt, d)
	}
	return d
}

// sleep pauses between attempts, honoring the Sleep hook and context.
func (p *RetryPolicy) sleep(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Retryable reports whether an invocation error may succeed on a
// fresh attempt. SOAP faults and client-side HTTP errors (4xx) are
// definitive answers from the peer; server errors, aborted
// connections, malformed bodies and network failures are transient
// wire conditions worth retrying.
func Retryable(err error) bool {
	var fault *soap.Fault
	if errors.As(err, &fault) {
		return false
	}
	var vm *VersionMismatchError
	if errors.As(err, &vm) {
		return false
	}
	var he *HTTPError
	if errors.As(err, &he) {
		return he.Status >= 500
	}
	var de *soap.DecodeError
	if errors.As(err, &de) {
		return true
	}
	if errors.Is(err, ErrAborted) || errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// invokeMeters caches one registry's transport instruments so the
// per-attempt hot path pays atomic operations only. A nil *invokeMeters
// (no registry configured) is a no-op.
type invokeMeters struct {
	reg      *obs.Registry
	latency  *obs.Histogram // transport.invoke.seconds, per attempt
	attempts *obs.Counter   // transport.attempts
	retries  *obs.Counter   // transport.retries (attempts beyond the first)
	faults   *obs.Counter   // transport.errors.fault (definitive SOAP faults)
	httpErrs *obs.Counter   // transport.errors.http (*HTTPError)
	decode   *obs.Counter   // transport.errors.decode (malformed bodies)
	version  *obs.Counter   // transport.errors.version (*VersionMismatchError)
	aborted  *obs.Counter   // transport.errors.aborted (dropped connections)
	other    *obs.Counter   // transport.errors.other (network and the rest)
}

// newInvokeMeters resolves the instruments; nil registry → nil meters.
func newInvokeMeters(reg *obs.Registry) *invokeMeters {
	if reg == nil {
		return nil
	}
	return &invokeMeters{
		reg:      reg,
		latency:  reg.Histogram("transport.invoke.seconds"),
		attempts: reg.Counter("transport.attempts"),
		retries:  reg.Counter("transport.retries"),
		faults:   reg.Counter("transport.errors.fault"),
		httpErrs: reg.Counter("transport.errors.http"),
		decode:   reg.Counter("transport.errors.decode"),
		version:  reg.Counter("transport.errors.version"),
		aborted:  reg.Counter("transport.errors.aborted"),
		other:    reg.Counter("transport.errors.other"),
	}
}

// record folds one attempt's outcome into the meters. Error counters
// classify what the wire surfaced — the "fault detections" the
// robustness taxonomy keys on.
func (m *invokeMeters) record(start time.Time, n int, err error) {
	if m == nil {
		return
	}
	m.latency.Observe(m.reg.Since(start))
	m.attempts.Inc()
	if n > 1 {
		m.retries.Inc()
	}
	if err == nil {
		return
	}
	var fault *soap.Fault
	var he *HTTPError
	var de *soap.DecodeError
	var vm *VersionMismatchError
	switch {
	case errors.As(err, &fault):
		m.faults.Inc()
	case errors.As(err, &he):
		m.httpErrs.Inc()
	case errors.As(err, &vm):
		m.version.Inc()
	case errors.As(err, &de):
		m.decode.Inc()
	case errors.Is(err, ErrAborted):
		m.aborted.Inc()
	default:
		m.other.Inc()
	}
}

// now reads the meters' clock; the zero time when metering is off.
func (m *invokeMeters) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return m.reg.Now()
}

// invokeWithRetry drives one attempt function under a policy. The
// final error is the last attempt's (a deadline hit during backoff
// surfaces the invocation error, not the context error).
func invokeWithRetry(ctx context.Context, m *invokeMeters, p *RetryPolicy,
	attempt func(ctx context.Context, n int) (*soap.Message, error)) (*soap.Message, error) {
	if p != nil && p.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Deadline)
		defer cancel()
	}
	budget := p.maxAttempts()
	var err error
	for n := 1; n <= budget; n++ {
		var msg *soap.Message
		start := m.now()
		msg, err = attempt(ctx, n)
		m.record(start, n, err)
		if err == nil {
			return msg, nil
		}
		if n == budget || !Retryable(err) {
			return nil, err
		}
		if ctx.Err() != nil || p.sleep(ctx, p.backoff(n)) != nil {
			return nil, err
		}
	}
	return nil, err
}
