package transport

import (
	"context"
	"net/http"
	"strings"
	"testing"

	"wsinterop/internal/soap"
)

func snifferFixture(t *testing.T) (*Sniffer, *LocalBridge, *Endpoint) {
	t.Helper()
	host := NewHost()
	ep := &Endpoint{
		Path:       "/echo",
		Namespace:  "http://svc.test/",
		Operations: map[string]string{"echo": "echoResponse"},
	}
	host.Deploy(ep)
	sniffer := NewSniffer(host, nil)
	return sniffer, NewLocalBridge(sniffer), ep
}

func TestSnifferCleanExchange(t *testing.T) {
	sniffer, bridge, ep := snifferFixture(t)
	req := &soap.Message{
		Namespace: ep.Namespace, Local: "echo",
		Fields: map[string]string{"input": "x"},
	}
	if _, err := bridge.Invoke(context.Background(), ep.Path, req); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if sniffer.Exchanges() != 1 {
		t.Errorf("exchanges = %d, want 1", sniffer.Exchanges())
	}
	if findings := sniffer.Findings(); len(findings) != 0 {
		t.Errorf("clean exchange produced findings: %v", findings)
	}
}

func TestSnifferFaultExchangeIsConformant(t *testing.T) {
	sniffer, bridge, ep := snifferFixture(t)
	// Unknown operation: the host faults with HTTP 500 — which is the
	// conformant behaviour, so no finding.
	_, err := bridge.Invoke(context.Background(), ep.Path, &soap.Message{
		Namespace: ep.Namespace, Local: "bogus",
	})
	if err == nil {
		t.Fatal("expected fault")
	}
	if findings := sniffer.Findings(); len(findings) != 0 {
		t.Errorf("conformant fault produced findings: %v", findings)
	}
}

func TestSnifferFlagsBadRequests(t *testing.T) {
	sniffer, _, ep := snifferFixture(t)
	// Hand-roll a nonconformant request: wrong content type, unquoted
	// SOAPAction, garbage body.
	req, err := http.NewRequest(http.MethodPost, ep.Path, strings.NewReader("<not-an-envelope/>"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("SOAPAction", "unquoted")
	rec := newRecorder()
	sniffer.ServeHTTP(rec, req)

	findings := sniffer.Findings()
	ids := make(map[string]bool, len(findings))
	for _, f := range findings {
		if f.Direction == "request" {
			ids[f.Violation.Assertion.ID] = true
		}
	}
	for _, want := range []string{"RM9980", "RM1119", "RM1109"} {
		if !ids[want] {
			t.Errorf("expected request finding %s, got %v", want, findings)
		}
	}
}

// newRecorder avoids importing httptest in two places.
func newRecorder() http.ResponseWriter {
	return &discardWriter{header: make(http.Header)}
}

type discardWriter struct {
	header http.Header
}

func (d *discardWriter) Header() http.Header         { return d.header }
func (d *discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d *discardWriter) WriteHeader(int)             {}
