package transport

import (
	"bytes"
	"io"
	"net/http"
	"sync"

	"wsinterop/internal/wsi"
)

// Sniffer is HTTP middleware that captures every SOAP exchange passing
// through a handler and validates both directions against the WS-I
// message-level assertions (wsi.CheckMessage). It implements, on this
// reproduction's runtime, the sniffer-based conformance checking the
// paper's related work proposes: description-level compliance is
// checked statically in step 1, message-level compliance at steps 4–5.
type Sniffer struct {
	next    http.Handler
	checker *wsi.Checker

	mu        sync.Mutex
	exchanges int
	findings  []CapturedViolation
}

// CapturedViolation is one message-level finding with its direction.
type CapturedViolation struct {
	// Direction is "request" or "response".
	Direction string
	Violation wsi.Violation
}

// NewSniffer wraps a handler. A nil checker uses the default.
func NewSniffer(next http.Handler, checker *wsi.Checker) *Sniffer {
	if checker == nil {
		checker = wsi.NewChecker()
	}
	return &Sniffer{next: next, checker: checker}
}

var _ http.Handler = (*Sniffer)(nil)

// recordingWriter captures the response for post-hoc validation.
type recordingWriter struct {
	http.ResponseWriter
	status int
	body   bytes.Buffer
}

func (w *recordingWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

func (w *recordingWriter) Write(p []byte) (int, error) {
	w.body.Write(p)
	return w.ResponseWriter.Write(p)
}

// ServeHTTP implements http.Handler.
func (s *Sniffer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqBody, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err == nil {
		r.Body = io.NopCloser(bytes.NewReader(reqBody))
	}
	reqReport := s.checker.CheckMessage(reqBody, wsi.MessageMeta{
		ContentType: r.Header.Get("Content-Type"),
		SOAPAction:  r.Header.Get("SOAPAction"),
	})

	rec := &recordingWriter{ResponseWriter: w, status: http.StatusOK}
	s.next.ServeHTTP(rec, r)

	respReport := s.checker.CheckMessage(rec.body.Bytes(), wsi.MessageMeta{
		ContentType: rec.Header().Get("Content-Type"),
		HTTPStatus:  rec.status,
	})

	s.mu.Lock()
	defer s.mu.Unlock()
	s.exchanges++
	for _, v := range reqReport.Violations {
		s.findings = append(s.findings, CapturedViolation{Direction: "request", Violation: v})
	}
	for _, v := range respReport.Violations {
		s.findings = append(s.findings, CapturedViolation{Direction: "response", Violation: v})
	}
}

// Exchanges reports how many request/response pairs were captured.
func (s *Sniffer) Exchanges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exchanges
}

// Findings returns a copy of every captured violation.
func (s *Sniffer) Findings() []CapturedViolation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CapturedViolation(nil), s.findings...)
}
