package transport

import (
	"bytes"
	"io"
	"net/http"
	"sync"

	"wsinterop/internal/obs"
	"wsinterop/internal/wsi"
)

// Sniffer is HTTP middleware that captures every SOAP exchange passing
// through a handler and validates both directions against the WS-I
// message-level assertions (wsi.CheckMessage). It implements, on this
// reproduction's runtime, the sniffer-based conformance checking the
// paper's related work proposes: description-level compliance is
// checked statically in step 1, message-level compliance at steps 4–5.
type Sniffer struct {
	next    http.Handler
	checker *wsi.Checker
	// reg, when non-nil, receives exchange and violation counters.
	reg *obs.Registry

	mu        sync.Mutex
	exchanges []Exchange
	findings  []CapturedViolation
}

// CapturedViolation is one message-level finding with its direction.
type CapturedViolation struct {
	// Direction is "request" or "response".
	Direction string
	Violation wsi.Violation
	// Trace is the campaign cell's correlation ID, copied from the
	// request's X-Wsinterop-Trace header; empty for untraced traffic.
	Trace string
}

// Exchange is the per-pair capture record: one row per
// request/response observed, joinable to a campaign cell by trace ID
// even when the exchange produced no findings.
type Exchange struct {
	// Trace is the request's X-Wsinterop-Trace header value.
	Trace string
	// Status is the recorded response status; an implicit 200 when the
	// inner handler wrote a body (or nothing) without calling
	// WriteHeader.
	Status int
	// RequestViolations and ResponseViolations count the exchange's
	// message-level findings per direction.
	RequestViolations  int
	ResponseViolations int
}

// NewSniffer wraps a handler. A nil checker uses the default.
func NewSniffer(next http.Handler, checker *wsi.Checker) *Sniffer {
	if checker == nil {
		checker = wsi.NewChecker()
	}
	return &Sniffer{next: next, checker: checker}
}

// WithObs sets the registry receiving the sniffer's exchange and
// violation counters and returns the sniffer for chaining.
func (s *Sniffer) WithObs(reg *obs.Registry) *Sniffer {
	s.reg = reg
	return s
}

var _ http.Handler = (*Sniffer)(nil)

// recordingWriter captures the response for post-hoc validation.
type recordingWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
	body        bytes.Buffer
}

func (w *recordingWriter) WriteHeader(status int) {
	if !w.wroteHeader {
		w.status = status
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *recordingWriter) Write(p []byte) (int, error) {
	// A handler that writes without WriteHeader gets the implicit 200
	// from net/http; record the same, or post-hoc validation would see
	// status 0 and misclassify the exchange.
	if !w.wroteHeader {
		w.status = http.StatusOK
		w.wroteHeader = true
	}
	w.body.Write(p)
	return w.ResponseWriter.Write(p)
}

// Flush passes http.Flusher through to the wrapped writer, so a
// streaming handler behind the sniffer keeps working.
func (w *recordingWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Status returns the recorded status, applying the implicit 200 for a
// handler that never wrote anything at all.
func (w *recordingWriter) Status() int {
	if !w.wroteHeader {
		return http.StatusOK
	}
	return w.status
}

// ServeHTTP implements http.Handler.
func (s *Sniffer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	reqBody, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	// Hand the inner handler exactly the bytes the capture saw — also
	// on a read error, where the original body is a half-drained stream
	// that would otherwise be forwarded silently corrupted. The handler
	// then sees a cleanly truncated document and fails the exchange
	// explicitly (a malformed-envelope fault) instead of arbitrarily.
	r.Body = io.NopCloser(bytes.NewReader(reqBody))
	if err != nil {
		s.reg.Counter("sniffer.request.read_errors").Inc()
	}
	reqReport := s.checker.CheckMessage(reqBody, wsi.MessageMeta{
		ContentType: r.Header.Get("Content-Type"),
		SOAPAction:  r.Header.Get("SOAPAction"),
	})

	rec := &recordingWriter{ResponseWriter: w}
	s.next.ServeHTTP(rec, r)

	respReport := s.checker.CheckMessage(rec.body.Bytes(), wsi.MessageMeta{
		ContentType: rec.Header().Get("Content-Type"),
		HTTPStatus:  rec.Status(),
	})

	trace := r.Header.Get(obs.TraceHeader)
	s.reg.Counter("sniffer.exchanges").Inc()
	s.reg.Counter("sniffer.violations").Add(int64(len(reqReport.Violations) + len(respReport.Violations)))

	s.mu.Lock()
	defer s.mu.Unlock()
	s.exchanges = append(s.exchanges, Exchange{
		Trace:              trace,
		Status:             rec.Status(),
		RequestViolations:  len(reqReport.Violations),
		ResponseViolations: len(respReport.Violations),
	})
	for _, v := range reqReport.Violations {
		s.findings = append(s.findings, CapturedViolation{Direction: "request", Violation: v, Trace: trace})
	}
	for _, v := range respReport.Violations {
		s.findings = append(s.findings, CapturedViolation{Direction: "response", Violation: v, Trace: trace})
	}
}

// Exchanges reports how many request/response pairs were captured.
func (s *Sniffer) Exchanges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.exchanges)
}

// ExchangeLog returns a copy of the per-exchange capture records.
func (s *Sniffer) ExchangeLog() []Exchange {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Exchange(nil), s.exchanges...)
}

// Findings returns a copy of every captured violation.
func (s *Sniffer) Findings() []CapturedViolation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]CapturedViolation(nil), s.findings...)
}
