package transport

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"

	"wsinterop/internal/soap"
)

// LocalBridge invokes an HTTP SOAP handler in-process, without binding
// a network listener. The full handler path still executes (request
// construction, dispatch, fault mapping), so behaviour is identical to
// the networked path minus the socket. The communication-step
// campaign extension uses this bridge to drive tens of thousands of
// invocations cheaply — optionally through a Sniffer middleware.
type LocalBridge struct {
	handler http.Handler
}

// Local returns an in-process bridge to the host. The host does not
// need to be started.
func (h *Host) Local() *LocalBridge { return NewLocalBridge(h) }

// NewLocalBridge builds a bridge over any SOAP-speaking handler
// (typically a Host, or a Sniffer wrapping one).
func NewLocalBridge(h http.Handler) *LocalBridge { return &LocalBridge{handler: h} }

// Invoke sends a request message to the endpoint path and returns the
// response message. SOAP faults are returned as *soap.Fault errors,
// mirroring Client.Invoke.
func (b *LocalBridge) Invoke(ctx context.Context, path string, req *soap.Message) (*soap.Message, error) {
	body, err := soap.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encode request: %w", err)
	}
	httpReq := httptest.NewRequest("POST", path, strings.NewReader(string(body)))
	httpReq.Header.Set("Content-Type", soap.ContentType)
	httpReq.Header.Set("SOAPAction", `""`)
	httpReq = httpReq.WithContext(ctx)

	rec := httptest.NewRecorder()
	b.handler.ServeHTTP(rec, httpReq)

	if rec.Code == 404 {
		return nil, fmt.Errorf("no endpoint deployed at %s", path)
	}
	msg, err := soap.Unmarshal(rec.Body.Bytes())
	if err != nil {
		var fault *soap.Fault
		if errors.As(err, &fault) {
			return nil, fault
		}
		return nil, fmt.Errorf("decode response (HTTP %d): %w", rec.Code, err)
	}
	return msg, nil
}
