package transport

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"

	"wsinterop/internal/obs"
	"wsinterop/internal/soap"
)

// LocalBridge invokes an HTTP SOAP handler in-process, without binding
// a network listener. The full handler path still executes (request
// construction, dispatch, fault mapping), so behaviour is identical to
// the networked path minus the socket. The communication-step
// campaign extension uses this bridge to drive tens of thousands of
// invocations cheaply — optionally through a Sniffer or fault
// injector middleware.
type LocalBridge struct {
	handler http.Handler
	retry   *RetryPolicy
	meters  *invokeMeters
	codec   soap.Codec      // nil means soap.V11
	strict  soap.Strictness // zero value is StrictReject
}

// Local returns an in-process bridge to the host. The host does not
// need to be started.
func (h *Host) Local() *LocalBridge { return NewLocalBridge(h) }

// NewLocalBridge builds a bridge over any SOAP-speaking handler
// (typically a Host, or middleware wrapping one).
func NewLocalBridge(h http.Handler) *LocalBridge { return &LocalBridge{handler: h} }

// WithRetry returns a copy of the bridge that invokes under the given
// retry policy, mirroring Client.WithRetry.
func (b *LocalBridge) WithRetry(p *RetryPolicy) *LocalBridge {
	cp := *b
	cp.retry = p
	return &cp
}

// WithObs returns a copy of the bridge that records invoke latency,
// attempts, retries and error classes, mirroring Client.WithObs.
func (b *LocalBridge) WithObs(reg *obs.Registry) *LocalBridge {
	cp := *b
	cp.meters = newInvokeMeters(reg)
	return &cp
}

// WithCodec returns a copy of the bridge pinned to an envelope
// version. The default is soap.V11, which keeps the historical wire
// format byte for byte.
func (b *LocalBridge) WithCodec(c soap.Codec) *LocalBridge {
	cp := *b
	cp.codec = c
	return &cp
}

// WithStrictness returns a copy of the bridge that treats
// version-mismatched responses per the given framework model; the
// default is soap.StrictReject, mirroring Client.WithStrictness.
func (b *LocalBridge) WithStrictness(s soap.Strictness) *LocalBridge {
	cp := *b
	cp.strict = s
	return &cp
}

// Invoke sends a request message to the endpoint path and returns the
// response message. SOAP faults are returned as *soap.Fault errors and
// non-2xx responses as *HTTPError, mirroring Client.Invoke.
func (b *LocalBridge) Invoke(ctx context.Context, path string, req *soap.Message) (*soap.Message, error) {
	codec := b.codec
	if codec == nil {
		codec = soap.V11
	}
	body, err := codec.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("encode request: %w", err)
	}
	return invokeWithRetry(ctx, b.meters, b.retry, func(ctx context.Context, n int) (*soap.Message, error) {
		httpReq := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		httpReq.Header.Set("Content-Type", codec.ContentType(""))
		if codec.UsesActionHeader() {
			httpReq.Header.Set("SOAPAction", `""`)
		}
		stampTrace(ctx, httpReq.Header)
		b.retry.annotate(n, httpReq.Header)
		httpReq = httpReq.WithContext(ctx)

		rec := httptest.NewRecorder()
		if err := b.serve(rec, httpReq); err != nil {
			return nil, err
		}
		return decodeResponse(codec, b.strict, rec.Code, rec.Header().Get("Content-Type"), rec.Body.Bytes())
	})
}

// serve runs the handler, mapping an http.ErrAbortHandler panic — the
// stdlib convention for "drop the connection mid-response", which a
// real http.Server swallows by closing the socket — to the same
// ErrAborted a networked client would observe.
func (b *LocalBridge) serve(w http.ResponseWriter, r *http.Request) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler {
				err = ErrAborted
				return
			}
			panic(rec)
		}
	}()
	b.handler.ServeHTTP(w, r)
	return nil
}
