package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func testMeta() Meta { return Meta{Fingerprint: "fp-test"} }

func record(i int) Record {
	return Record{
		Trace:     fmt.Sprintf("trace-%04d", i),
		Server:    "SrvA",
		Class:     fmt.Sprintf("pkg.Class%d", i),
		Mode:      "built",
		Published: true,
		Verified:  i%2 == 0,
		Doc:       []byte("<definitions/>"),
		Tests: []TestRecord{
			{Client: "c1", Ran: true, GenWarning: i%3 == 0},
			{Client: "c2", CompileRan: true, CompileError: i%5 == 0},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	var want []Record
	for i := 0; i < 25; i++ {
		rec := record(i)
		want = append(want, rec)
		if err := j.Append(rec); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if j.Appended() != 25 {
		t.Errorf("Appended = %d, want 25", j.Appended())
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	j2, err := Open(dir, testMeta(), true)
	if err != nil {
		t.Fatalf("open resume: %v", err)
	}
	defer func() { _ = j2.Close() }()
	if got := j2.Records(); !reflect.DeepEqual(got, want) {
		t.Errorf("records after reload differ:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestFreshOpenRefusesExistingState(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if err := j.Append(record(0)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := Open(dir, testMeta(), false); !errors.Is(err, ErrExists) {
		t.Errorf("second fresh open: err = %v, want ErrExists", err)
	}
}

func TestFingerprintMismatchRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := Open(dir, Meta{Fingerprint: "other"}, true); !errors.Is(err, ErrFingerprint) {
		t.Errorf("mismatched resume: err = %v, want ErrFingerprint", err)
	}
}

func TestResumeOnEmptyDirIsFresh(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), true)
	if err != nil {
		t.Fatalf("resume on empty dir: %v", err)
	}
	if j.Len() != 0 {
		t.Errorf("Len = %d, want 0", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestTornFinalLineRecovered is the hard-kill scenario: the process
// died mid-append, leaving a partial last line. Reopening must drop
// exactly that line, keep every complete record, and leave the file
// appendable at a clean boundary.
func TestTornFinalLineRecovered(t *testing.T) {
	for _, torn := range []string{
		`{"trace":"trace-9999","server":"Srv`, // cut mid-JSON, no newline
		`{"trace":"trace-9999"`,               // cut mid-JSON
		`garbage that is not JSON`,            // overwritten tail
		`{"server":"no-trace-field"}`,         // parses but invalid, final line
	} {
		t.Run(torn[:10], func(t *testing.T) {
			dir := t.TempDir()
			j, err := Open(dir, testMeta(), false)
			if err != nil {
				t.Fatalf("open fresh: %v", err)
			}
			for i := 0; i < 5; i++ {
				if err := j.Append(record(i)); err != nil {
					t.Fatalf("append: %v", err)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			path := filepath.Join(dir, "journal.jsonl")
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatalf("reopen for tearing: %v", err)
			}
			if _, err := f.WriteString(torn); err != nil {
				t.Fatalf("tear: %v", err)
			}
			if err := f.Close(); err != nil {
				t.Fatalf("close torn file: %v", err)
			}

			j2, err := Open(dir, testMeta(), true)
			if err != nil {
				t.Fatalf("resume over torn tail: %v", err)
			}
			if j2.Len() != 5 {
				t.Errorf("Len = %d, want 5 (torn line dropped)", j2.Len())
			}
			// The torn bytes must be gone: appending and reloading again
			// must parse cleanly.
			if err := j2.Append(record(5)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := j2.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			j3, err := Open(dir, testMeta(), true)
			if err != nil {
				t.Fatalf("reload after recovery append: %v", err)
			}
			defer func() { _ = j3.Close() }()
			if j3.Len() != 6 {
				t.Errorf("Len after recovery append = %d, want 6", j3.Len())
			}
		})
	}
}

func TestMidFileCorruptionRefused(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	path := filepath.Join(dir, "journal.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Corrupt the SECOND line — not the tail — which recovery must not
	// silently skip.
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = "XX" + lines[1][2:]
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatalf("write corrupted: %v", err)
	}
	if _, err := Open(dir, testMeta(), true); err == nil {
		t.Error("mid-file corruption should refuse to load")
	}
}

// TestSnapshotCompaction proves the journal compacts into an atomic
// snapshot every CompactEvery appends and that the store reloads
// completely at every boundary.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	j.CompactEvery = 4
	const n = 11
	for i := 0; i < n; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := j.Compactions(); got != 2 {
		t.Errorf("Compactions = %d, want 2 (11 appends, every 4)", got)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	snap, err := os.Stat(filepath.Join(dir, "snapshot.jsonl"))
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	if snap.Size() == 0 {
		t.Error("snapshot is empty")
	}
	// The journal holds only the post-compaction tail (11 - 8 = 3).
	j2, err := Open(dir, testMeta(), true)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	defer func() { _ = j2.Close() }()
	if j2.Len() != n {
		t.Errorf("Len after compaction reload = %d, want %d", j2.Len(), n)
	}
	traces := make(map[string]bool)
	for _, rec := range j2.Records() {
		traces[rec.Trace] = true
	}
	for i := 0; i < n; i++ {
		if !traces[fmt.Sprintf("trace-%04d", i)] {
			t.Errorf("record %d lost across compaction", i)
		}
	}
}

// TestDuplicateTraceLastWins: a resumed session may legitimately
// re-append a cell that was already snapshotted if it was replayed
// into a fresh journal file; the newest record must win on load.
func TestDuplicateTraceLastWins(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	rec := record(1)
	if err := j.Append(rec); err != nil {
		t.Fatalf("append: %v", err)
	}
	rec.Mode = "memoized"
	if err := j.Append(rec); err != nil {
		t.Fatalf("append dup: %v", err)
	}
	if j.Len() != 1 {
		t.Errorf("Len = %d, want 1 (dedup by trace)", j.Len())
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	j2, err := Open(dir, testMeta(), true)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	defer func() { _ = j2.Close() }()
	recs := j2.Records()
	if len(recs) != 1 || recs[0].Mode != "memoized" {
		t.Errorf("records = %+v, want single record with last-written mode", recs)
	}
}

func TestAfterAppendHook(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	defer func() { _ = j.Close() }()
	var seen []int
	j.AfterAppend = func(total int) { seen = append(seen, total) }
	for i := 0; i < 3; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if !reflect.DeepEqual(seen, []int{1, 2, 3}) {
		t.Errorf("AfterAppend saw %v, want [1 2 3]", seen)
	}
}

// TestFlushEveryGroupCommit exercises the batched-append contract:
// records become durable at flush boundaries (FlushEvery-th append,
// explicit Flush, compaction, Close), AfterAppend fires once per
// record in order at its durable point, and a reopened store replays
// everything that was flushed.
func TestFlushEveryGroupCommit(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	j.FlushEvery = 4
	var seen []int
	j.AfterAppend = func(total int) { seen = append(seen, total) }

	for i := 0; i < 6; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Appends 1-4 crossed the FlushEvery boundary; 5-6 are pending.
	if want := []int{1, 2, 3, 4}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("AfterAppend saw %v before explicit flush, want %v", seen, want)
	}
	if err := j.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if want := []int{1, 2, 3, 4, 5, 6}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("AfterAppend saw %v after flush, want %v", seen, want)
	}
	// A no-op flush must not re-notify.
	if err := j.Flush(); err != nil {
		t.Fatalf("idempotent flush: %v", err)
	}
	if len(seen) != 6 {
		t.Fatalf("no-op flush re-notified: %v", seen)
	}
	// Close flushes the pending tail.
	if err := j.Append(record(6)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if want := []int{1, 2, 3, 4, 5, 6, 7}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("AfterAppend saw %v after close, want %v", seen, want)
	}

	re, err := Open(dir, testMeta(), true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = re.Close() }()
	if got := len(re.Records()); got != 7 {
		t.Errorf("reopened store holds %d records, want 7", got)
	}
}

// TestFlushEveryCompactionIsDurable checks that a compaction mid-batch
// counts as the batch's durable point: the snapshot captures pending
// records, AfterAppend fires for them, and nothing is lost on reopen.
func TestFlushEveryCompactionIsDurable(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	j.FlushEvery = 100 // never reached
	j.CompactEvery = 5
	var seen []int
	j.AfterAppend = func(total int) { seen = append(seen, total) }
	for i := 0; i < 7; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// The compaction at append 5 made 1-5 durable; 6-7 pend.
	if want := []int{1, 2, 3, 4, 5}; !reflect.DeepEqual(seen, want) {
		t.Fatalf("AfterAppend saw %v after compaction, want %v", seen, want)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, err := Open(dir, testMeta(), true)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer func() { _ = re.Close() }()
	if got := len(re.Records()); got != 7 {
		t.Errorf("reopened store holds %d records, want 7", got)
	}
}

// TestFlushEveryTornTailRecovery drops the unflushed tail plus a torn
// final line, as a hard kill mid-batch would, and requires the lenient
// recovery path to surface every record before the tear untouched.
func TestFlushEveryTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, testMeta(), false)
	if err != nil {
		t.Fatalf("open fresh: %v", err)
	}
	j.FlushEvery = 3
	for i := 0; i < 9; i++ {
		if err := j.Append(record(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Simulate the kill: truncate the journal mid-line.
	path := filepath.Join(dir, journalFile)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("journal has %d lines, need at least 2", len(lines))
	}
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatalf("tear journal: %v", err)
	}
	re, err := Open(dir, testMeta(), true)
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	defer func() { _ = re.Close() }()
	if got := len(re.Records()); got != 8 {
		t.Errorf("torn reopen surfaced %d records, want 8", got)
	}
}

// shardMeta builds a shard-stamped Meta for the distributed tests.
func shardMeta(index, count int) Meta {
	return Meta{Fingerprint: "fp-test", Shard: &ShardMeta{Index: index, Count: count, Lease: fmt.Sprintf("lease-%d-%d", index, count)}}
}

func TestShardMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, shardMeta(1, 4), false)
	if err != nil {
		t.Fatalf("open sharded: %v", err)
	}
	if err := j.Append(record(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume under the identical shard identity succeeds.
	j2, err := Open(dir, shardMeta(1, 4), true)
	if err != nil {
		t.Fatalf("resume same shard: %v", err)
	}
	_ = j2.Close()

	// A different shard identity — or none — is refused.
	for _, meta := range []Meta{shardMeta(2, 4), shardMeta(1, 8), testMeta()} {
		if _, err := Open(dir, meta, true); !errors.Is(err, ErrShard) {
			t.Errorf("resume as %s: err = %v, want ErrShard", meta.Shard.describe(), err)
		}
	}
	// And a whole-campaign journal refuses a shard resume.
	plain := t.TempDir()
	jp, err := Open(plain, testMeta(), false)
	if err != nil {
		t.Fatal(err)
	}
	_ = jp.Close()
	if _, err := Open(plain, shardMeta(0, 2), true); !errors.Is(err, ErrShard) {
		t.Errorf("shard resume of whole-campaign journal: err = %v, want ErrShard", err)
	}
}

// TestLoadReadOnly: Load sees snapshot + journal records, tolerates a
// torn final journal line, and never mutates the store.
func TestLoadReadOnly(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, shardMeta(0, 2), false)
	if err != nil {
		t.Fatal(err)
	}
	j.CompactEvery = 10
	var want []Record
	for i := 0; i < 25; i++ { // crosses two compactions: snapshot + live journal
		rec := record(i)
		want = append(want, rec)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final journal line the way a hard kill would.
	path := filepath.Join(dir, "journal.jsonl")
	pre, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, pre...), []byte(`{"trace":"torn`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	meta, recs, err := Load(dir)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if meta.Shard == nil || meta.Shard.Index != 0 || meta.Shard.Count != 2 {
		t.Errorf("loaded meta shard = %+v", meta.Shard)
	}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("loaded records differ: got %d, want %d", len(recs), len(want))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, torn) {
		t.Error("Load mutated the journal file")
	}
	if _, _, err := Load(t.TempDir()); err == nil {
		t.Error("Load of an empty directory should fail")
	}
}

func TestCheckShards(t *testing.T) {
	sm := func(index, count int) *Meta {
		m := shardMeta(index, count)
		return &m
	}
	whole := &Meta{Version: Version, Fingerprint: "fp-test"}
	cases := []struct {
		name  string
		metas []*Meta
		ok    bool
	}{
		{"complete-pair", []*Meta{sm(0, 2), sm(1, 2)}, true},
		{"order-free", []*Meta{sm(1, 2), sm(0, 2)}, true},
		{"single-shard", []*Meta{sm(0, 1)}, true},
		{"whole-campaign", []*Meta{whole}, true},
		{"none", nil, false},
		{"missing", []*Meta{sm(0, 2)}, false},
		{"duplicate", []*Meta{sm(0, 2), sm(0, 2)}, false},
		{"mixed-count", []*Meta{sm(0, 2), sm(1, 3)}, false},
		{"whole-plus-shard", []*Meta{whole, sm(1, 2)}, false},
		{"index-out-of-range", []*Meta{&Meta{Fingerprint: "fp-test", Shard: &ShardMeta{Index: 2, Count: 2}}, sm(0, 2)}, false},
		{"mixed-fingerprint", []*Meta{sm(0, 2), {Fingerprint: "other", Shard: &ShardMeta{Index: 1, Count: 2}}}, false},
	}
	for _, c := range cases {
		if err := CheckShards(c.metas); (err == nil) != c.ok {
			t.Errorf("%s: CheckShards = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}
