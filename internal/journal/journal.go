// Package journal is the campaign's durable checkpoint store: an
// append-only JSONL journal of completed campaign cells, keyed by the
// cell's content-addressed trace ID (obs.TraceID), plus a periodically
// compacted atomic snapshot. A campaign run that is interrupted —
// SIGINT, SIGTERM, preemption, crash — leaves a journal from which a
// later run replays every completed cell instead of re-executing it,
// and the replayed-plus-executed Result is byte-identical to an
// uninterrupted run (internal/campaign, DESIGN.md §9).
//
// Durability model
//
//   - journal.jsonl: one JSON record per line, appended and flushed as
//     each cell completes. The final line may be torn by a hard kill;
//     Open drops an unparseable or newline-less final line and
//     truncates the file back to the last valid record. A torn line
//     anywhere else is corruption and refuses to load.
//   - snapshot.jsonl: every CompactEvery appends, all records so far
//     are rewritten to a temporary file, fsynced, and renamed over the
//     snapshot — atomic on POSIX — after which journal.jsonl restarts
//     empty. Load order is snapshot first, then journal (journal
//     wins), so a kill at any instant leaves a loadable store.
//   - meta.json: the campaign configuration fingerprint. Resuming
//     under a different configuration (roster, limit, variant, memo
//     ablations) is refused rather than silently merging
//     incompatible cells.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

const (
	journalFile  = "journal.jsonl"
	snapshotFile = "snapshot.jsonl"
	metaFile     = "meta.json"

	// Version is the record schema version stamped into meta.json.
	Version = 1

	// DefaultCompactEvery is the append count between snapshot
	// compactions.
	DefaultCompactEvery = 4096
)

// ErrExists reports that a checkpoint directory already holds state
// and the caller did not ask to resume. Refusing protects a completed
// or interrupted run's journal from accidental truncation.
var ErrExists = errors.New("journal: checkpoint state already exists (resume it, or point at an empty directory)")

// ErrFingerprint reports a resume attempt under a configuration that
// does not match the one the journal was written with.
var ErrFingerprint = errors.New("journal: checkpoint was written by a different campaign configuration")

// ErrShard reports a resume attempt under a shard lease that does not
// match the one the journal was written for: a worker must finish the
// slice it started, not a different one.
var ErrShard = errors.New("journal: checkpoint was written for a different shard lease")

// Meta identifies the run a journal belongs to.
type Meta struct {
	Version     int    `json:"version"`
	Fingerprint string `json:"fingerprint"`
	// Shard identifies the catalog slice a distributed worker journaled
	// (nil for a whole-campaign journal). The merge coordinator uses it
	// to verify that a set of journals tiles the campaign exactly once.
	Shard *ShardMeta `json:"shard,omitempty"`
	// Plan records the execution plan the session ran under (nil for
	// lazy-dedup runs). It is provenance, deliberately not part of the
	// resume identity check: planned and lazy execution are
	// result-identical, so either mode may finish the other's journal.
	Plan *PlanMeta `json:"plan,omitempty"`
}

// PlanMeta is the journal-side record of a campaign execution plan
// (internal/campaign plan cache): its content-addressed fingerprint
// and the catalog scale it covered.
type PlanMeta struct {
	Fingerprint string `json:"fingerprint"`
	Classes     int    `json:"classes,omitempty"`
	Shapes      int    `json:"shapes,omitempty"`
}

// ShardMeta is the journal-side record of one shard lease: which slice
// of the campaign this journal holds and the content-addressed lease ID
// the planner issued for it.
type ShardMeta struct {
	Index int    `json:"index"`
	Count int    `json:"count"`
	Lease string `json:"lease,omitempty"`
}

// equal reports whether two shard identities match; both-nil matches.
func (s *ShardMeta) equal(o *ShardMeta) bool {
	if s == nil || o == nil {
		return s == o
	}
	return s.Index == o.Index && s.Count == o.Count && s.Lease == o.Lease
}

// describe renders a shard identity for error messages.
func (s *ShardMeta) describe() string {
	if s == nil {
		return "the whole campaign"
	}
	return fmt.Sprintf("shard %d/%d", s.Index, s.Count)
}

// TestRecord is one client framework's classified outcome within a
// service cell. Ran distinguishes a test the run actually executed
// from one served by the structural-shape memo; resume replays the
// same distinction so memo statistics and stage counters reconstruct
// exactly.
type TestRecord struct {
	Client         string `json:"client"`
	Ran            bool   `json:"ran,omitempty"`
	GenWarning     bool   `json:"genW,omitempty"`
	GenError       bool   `json:"genE,omitempty"`
	CompileRan     bool   `json:"compileRan,omitempty"`
	CompileWarning bool   `json:"compileW,omitempty"`
	CompileError   bool   `json:"compileE,omitempty"`
}

// VersionRecord is one client framework's classified outcomes across
// the version-scenario catalog within a version-matrix cell, in the
// fixed scenario order the campaign fingerprint pins.
type VersionRecord struct {
	Client   string   `json:"client"`
	Outcomes []string `json:"outcomes"`
}

// Record is one completed campaign cell: a (server, class) service
// that finished the description step — published or rejected — and,
// when published, every client test against it. Trace is the cell's
// content-addressed ID (obs.TraceID(server, class)); Mode is the
// campaign's publish route (direct, fallback, built, memo-rejected,
// memo-fallback, memoized) so replay reconstructs memo statistics and
// the shape table; Doc carries the serialized WSDL only for Mode
// "built" records, where it seeds the shape template on resume.
type Record struct {
	Trace     string `json:"trace"`
	Server    string `json:"server"`
	Class     string `json:"class"`
	Mode      string `json:"mode"`
	Published bool   `json:"published,omitempty"`
	Verified  bool   `json:"verified,omitempty"`
	Flagged   bool   `json:"flagged,omitempty"`
	Compliant bool   `json:"compliant,omitempty"`
	// Profiles lists the IDs of the compliance profiles the published
	// description satisfied (the per-profile verdict row of the
	// campaign's compliance matrix). The campaign fingerprint covers
	// the profile roster, so a nil list on a published record always
	// means "checked, compliant with none", never "not checked".
	Profiles []string     `json:"profiles,omitempty"`
	Doc      []byte       `json:"doc,omitempty"`
	Tests    []TestRecord `json:"tests,omitempty"`
	// Versions holds the version-matrix outcomes of the cell's clients
	// (`interop -versions`); nil for static-campaign records.
	Versions []VersionRecord `json:"versions,omitempty"`
	// Collisions preserves a server stage's deploy path-collision count
	// on a versions-mode completion sentinel; zero everywhere else.
	Collisions int `json:"collisions,omitempty"`
}

// Journal is an open checkpoint store. Append must be serialized by
// the caller (the campaign writes from a single goroutine); the other
// methods are not safe for concurrent use either.
type Journal struct {
	dir     string
	f       *os.File
	w       *bufio.Writer
	records map[string]Record
	order   []string // trace IDs in first-seen order

	// CompactEvery is the number of appends between snapshot
	// compactions; set it before the first Append to override
	// DefaultCompactEvery.
	CompactEvery int
	// FlushEvery is the number of appends between durable flushes; 0
	// or 1 (the default) flushes every record before Append returns.
	// Larger values group-commit: records become durable at the next
	// flush boundary (every FlushEvery appends, at a compaction, at
	// Flush, or at Close), and a hard kill in between loses only the
	// unflushed tail — buffered lines reach the file whole except
	// possibly the last, which torn-tail recovery already drops.
	FlushEvery int
	// AfterAppend, when non-nil, observes every durable append with
	// the total number of appends this session — the campaign's
	// kill-point test hook. Under a group-commit FlushEvery it fires
	// once per record, in order, when the batch holding the record
	// becomes durable.
	AfterAppend func(total int)

	appended     int
	sinceCompact int
	sinceFlush   int
	notified     int
	compactions  int
}

// Open opens (resume=true) or initializes (resume=false) the
// checkpoint store in dir, creating the directory as needed. A fresh
// open refuses a directory that already holds checkpoint state; a
// resume open loads the snapshot and journal, recovers a torn final
// journal line, and verifies the meta fingerprint.
func Open(dir string, meta Meta, resume bool) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	meta.Version = Version
	existing, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	switch {
	case existing == nil && hasState(dir):
		return nil, fmt.Errorf("journal: %s holds journal data but no meta.json — refusing to touch it", dir)
	case existing == nil:
		if err := writeMeta(dir, meta); err != nil {
			return nil, err
		}
	case !resume:
		return nil, fmt.Errorf("%w: %s", ErrExists, dir)
	case existing.Version != meta.Version:
		return nil, fmt.Errorf("journal: %s has schema version %d, this build writes %d", dir, existing.Version, meta.Version)
	case existing.Fingerprint != meta.Fingerprint:
		return nil, fmt.Errorf("%w: %s", ErrFingerprint, dir)
	case !existing.Shard.equal(meta.Shard):
		return nil, fmt.Errorf("%w: %s holds %s, resuming as %s", ErrShard, dir,
			existing.Shard.describe(), meta.Shard.describe())
	}

	j := &Journal{
		dir:          dir,
		records:      make(map[string]Record),
		CompactEvery: DefaultCompactEvery,
	}
	if err := j.loadFile(filepath.Join(dir, snapshotFile), false); err != nil {
		return nil, err
	}
	valid, err := j.loadJournal()
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, journalFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	// Drop a torn final line so appends continue at the last valid
	// record boundary.
	if err := f.Truncate(valid); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return j, nil
}

// hasState reports whether dir holds journal or snapshot data.
func hasState(dir string) bool {
	for _, name := range []string{journalFile, snapshotFile} {
		if info, err := os.Stat(filepath.Join(dir, name)); err == nil && info.Size() > 0 {
			return true
		}
	}
	return false
}

func readMeta(dir string) (*Meta, error) {
	data, err := os.ReadFile(filepath.Join(dir, metaFile))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	m := &Meta{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("journal: meta.json corrupt: %w", err)
	}
	return m, nil
}

func writeMeta(dir string, meta Meta) error {
	data, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return atomicWrite(dir, metaFile, append(data, '\n'))
}

// atomicWrite lands content at dir/name via a fsynced temporary file
// and rename, so readers never observe a partial file.
func atomicWrite(dir, name string, content []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	if _, err := tmp.Write(content); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close()
		return fmt.Errorf("journal: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	return nil
}

// loadFile loads one JSONL file into the record map. With lenient
// false every line must parse; the journal file instead goes through
// loadJournal, which tolerates a torn final line.
func (j *Journal) loadFile(path string, lenient bool) error {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	_, err = j.consume(path, data, lenient)
	return err
}

// loadJournal loads journal.jsonl, dropping a torn final line, and
// returns the byte offset of the last valid record boundary.
func (j *Journal) loadJournal() (int64, error) {
	path := filepath.Join(j.dir, journalFile)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: %w", err)
	}
	return j.consume(path, data, true)
}

// consume parses JSONL content into the record map and returns the
// offset just past the last valid record. With lenient set, a final
// line that is incomplete (no trailing newline) or unparseable is
// dropped; an invalid line followed by more content is corruption.
func (j *Journal) consume(path string, data []byte, lenient bool) (int64, error) {
	offset := int64(0)
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		line, rest := data, []byte(nil)
		torn := nl < 0
		if !torn {
			line, rest = data[:nl], data[nl+1:]
		}
		var rec Record
		parseErr := json.Unmarshal(line, &rec)
		if parseErr == nil && rec.Trace == "" {
			parseErr = errors.New("record has no trace ID")
		}
		if parseErr != nil || torn {
			if lenient && len(bytes.TrimSpace(rest)) == 0 {
				// Torn final line: recoverable.
				return offset, nil
			}
			return 0, fmt.Errorf("journal: %s corrupt at offset %d: %v", path, offset, parseErr)
		}
		j.put(rec)
		offset += int64(nl + 1)
		data = rest
	}
	return offset, nil
}

func (j *Journal) put(rec Record) {
	if _, seen := j.records[rec.Trace]; !seen {
		j.order = append(j.order, rec.Trace)
	}
	j.records[rec.Trace] = rec
}

// Records returns the loaded-plus-appended records in first-seen
// order. The slice is a copy; records themselves are shared.
func (j *Journal) Records() []Record {
	out := make([]Record, 0, len(j.order))
	for _, trace := range j.order {
		out = append(out, j.records[trace])
	}
	return out
}

// Len reports the number of distinct records in the store.
func (j *Journal) Len() int { return len(j.records) }

// Appended reports the number of records appended this session.
func (j *Journal) Appended() int { return j.appended }

// Compactions reports the number of snapshot compactions this session.
func (j *Journal) Compactions() int { return j.compactions }

// Append records one completed cell. With the default FlushEvery the
// line is written and flushed before Append returns, so a kill after
// Append never loses the cell; a group-commit FlushEvery defers the
// flush to the next batch boundary. Every CompactEvery appends the
// store compacts into an atomic snapshot and restarts the journal
// file (which also makes every pending record durable).
func (j *Journal) Append(rec Record) error {
	if rec.Trace == "" {
		return errors.New("journal: record has no trace ID")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.put(rec)
	j.appended++
	j.sinceCompact++
	j.sinceFlush++
	if fe := j.FlushEvery; fe <= 1 || j.sinceFlush >= fe {
		if err := j.Flush(); err != nil {
			return err
		}
	}
	if j.sinceCompact >= j.CompactEvery {
		if err := j.compact(); err != nil {
			return err
		}
		j.notifyDurable()
	}
	return nil
}

// Flush makes every appended record durable and notifies AfterAppend
// of each newly durable append. A no-op when nothing is pending.
func (j *Journal) Flush() error {
	if j.sinceFlush == 0 {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.sinceFlush = 0
	j.notifyDurable()
	return nil
}

// notifyDurable reports every append that has become durable since
// the last notification, one AfterAppend call per record in order —
// so hooks keyed on exact totals (the kill-point tests) see the same
// sequence whether or not appends were batched.
func (j *Journal) notifyDurable() {
	if j.AfterAppend == nil {
		j.notified = j.appended
		return
	}
	for j.notified < j.appended {
		j.notified++
		j.AfterAppend(j.notified)
	}
}

// compact rewrites every record into the snapshot file atomically and
// truncates the journal. A kill before the rename keeps the old
// snapshot plus the full journal; a kill after it keeps the new
// snapshot plus whatever was appended since — both load completely.
func (j *Journal) compact() error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, trace := range j.order {
		if err := enc.Encode(j.records[trace]); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	if err := atomicWrite(j.dir, snapshotFile, buf.Bytes()); err != nil {
		return err
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	// Pending buffered bytes are already captured in the snapshot;
	// Reset discards them and the records count as flushed.
	j.w.Reset(j.f)
	j.sinceCompact = 0
	j.sinceFlush = 0
	j.compactions++
	return nil
}

// Load reads the checkpoint store in dir without opening it for
// writing: the meta identity plus every record, snapshot first then
// journal, tolerating a torn final journal line exactly as a resume
// open would (but without truncating the file — Load never mutates the
// store). It is the merge coordinator's view of a shard worker's
// journal.
func Load(dir string) (*Meta, []Record, error) {
	meta, err := readMeta(dir)
	if err != nil {
		return nil, nil, err
	}
	if meta == nil {
		return nil, nil, fmt.Errorf("journal: %s holds no checkpoint (missing %s)", dir, metaFile)
	}
	if meta.Version != Version {
		return nil, nil, fmt.Errorf("journal: %s has schema version %d, this build reads %d", dir, meta.Version, Version)
	}
	j := &Journal{records: make(map[string]Record)}
	if err := j.loadFile(filepath.Join(dir, snapshotFile), false); err != nil {
		return nil, nil, err
	}
	j.dir = dir
	if _, err := j.loadJournal(); err != nil {
		return nil, nil, err
	}
	return meta, j.Records(), nil
}

// CheckShards verifies that a set of journal identities tiles one
// campaign exactly once: same schema version and configuration
// fingerprint everywhere, and the shard identities are 0..Count-1 of a
// single Count with no slice missing or duplicated. A single
// whole-campaign journal (nil Shard) is also a valid tiling.
func CheckShards(metas []*Meta) error {
	if len(metas) == 0 {
		return errors.New("journal: no shard journals to check")
	}
	first := metas[0]
	for _, m := range metas[1:] {
		if m.Version != first.Version {
			return fmt.Errorf("journal: mixed schema versions %d and %d", first.Version, m.Version)
		}
		if m.Fingerprint != first.Fingerprint {
			return fmt.Errorf("%w: shard journals disagree on the campaign fingerprint", ErrFingerprint)
		}
	}
	if first.Shard == nil {
		if len(metas) > 1 {
			return errors.New("journal: a whole-campaign journal cannot be merged with shard journals")
		}
		return nil
	}
	count := first.Shard.Count
	if count != len(metas) {
		return fmt.Errorf("journal: %d journals for a %d-shard campaign", len(metas), count)
	}
	seen := make([]bool, count)
	for _, m := range metas {
		sh := m.Shard
		switch {
		case sh == nil:
			return errors.New("journal: a whole-campaign journal cannot be merged with shard journals")
		case sh.Count != count:
			return fmt.Errorf("journal: shard %d/%d mixed into a %d-shard merge", sh.Index, sh.Count, count)
		case sh.Index < 0 || sh.Index >= count:
			return fmt.Errorf("journal: shard index %d out of range for count %d", sh.Index, count)
		case seen[sh.Index]:
			return fmt.Errorf("journal: shard %d/%d appears twice", sh.Index, count)
		}
		seen[sh.Index] = true
	}
	return nil
}

// Close flushes and syncs the journal file. The store stays loadable
// afterwards; a completed run's journal simply replays in full.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	ferr := j.Flush()
	if serr := j.f.Sync(); ferr == nil {
		ferr = serr
	}
	if cerr := j.f.Close(); ferr == nil {
		ferr = cerr
	}
	j.f = nil
	return ferr
}
