package typesys

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestJavaCatalogSize(t *testing.T) {
	cat := JavaCatalog()
	if got := cat.Len(); got != JavaTotal {
		t.Errorf("Java catalog size = %d, want %d", got, JavaTotal)
	}
}

func TestCSharpCatalogSize(t *testing.T) {
	cat := CSharpCatalog()
	if got := cat.Len(); got != CSharpTotal {
		t.Errorf("C# catalog size = %d, want %d", got, CSharpTotal)
	}
}

func TestJavaDeployabilityQuotas(t *testing.T) {
	cat := JavaCatalog()
	s := cat.Stats()
	// Metro publishes bean + bean-vendor; JBossWS publishes bean +
	// async-handle — the 2 489 / 2 248 split of Table III.
	metro := s.ByKind[KindBean] + s.ByKind[KindBeanVendor]
	jboss := s.ByKind[KindBean] + s.ByKind[KindAsyncHandle]
	if metro != 2489 {
		t.Errorf("Metro-deployable classes = %d, want 2489", metro)
	}
	if jboss != 2248 {
		t.Errorf("JBossWS-deployable classes = %d, want 2248", jboss)
	}
	if s.ByKind[KindAsyncHandle] != JavaAsyncHandles {
		t.Errorf("async handles = %d, want %d", s.ByKind[KindAsyncHandle], JavaAsyncHandles)
	}
}

func TestCSharpDeployabilityQuota(t *testing.T) {
	s := CSharpCatalog().Stats()
	if s.Bindable != CSharpBindable {
		t.Errorf("bindable C# classes = %d, want %d", s.Bindable, CSharpBindable)
	}
}

func TestJavaTraitPopulations(t *testing.T) {
	cat := JavaCatalog()
	tests := []struct {
		hint Hint
		want int
	}{
		{HintThrowable, JavaThrowablesBoth + JavaThrowablesVendor},
		{HintReservedWordField, JavaReservedWordClasses},
		{HintUnresolvedAddressingRef, 1},
		{HintVendorFacet, 1},
		{HintZeroOperations, 2},
		{HintEmptyTypes, 1},
		{HintEchoField, 1},
		{HintCaseCollidingFields, 1},
	}
	for _, tt := range tests {
		if got := len(cat.WithHint(tt.hint)); got != tt.want {
			t.Errorf("Java classes with hint %b = %d, want %d", tt.hint, got, tt.want)
		}
	}
}

func TestJavaThrowableSplit(t *testing.T) {
	cat := JavaCatalog()
	both, vendor := 0, 0
	for _, c := range cat.WithHint(HintThrowable) {
		switch c.Kind {
		case KindBean:
			both++
		case KindBeanVendor:
			vendor++
		default:
			t.Errorf("throwable %s has unexpected kind %s", c.Name, c.Kind)
		}
	}
	if both != JavaThrowablesBoth || vendor != JavaThrowablesVendor {
		t.Errorf("throwable split = %d/%d, want %d/%d", both, vendor, JavaThrowablesBoth, JavaThrowablesVendor)
	}
}

func TestCSharpTraitPopulations(t *testing.T) {
	cat := CSharpCatalog()
	tests := []struct {
		name string
		hint Hint
		want int
	}{
		{"lang attr (WS-I failing family)", HintLangAttr, CSharpSchemaRefTotal},
		{"hard schema refs", HintSchemaRefHard, 76},
		{"nested subset", HintSchemaRefNested, CSharpSchemaRefNested},
		{"with-any subset", HintSchemaRefWithAny, CSharpSchemaRefWithAny},
		{"unbounded subset", HintSchemaRefUnbounded, CSharpSchemaRefUnbounded},
		{"double lang", HintDoubleLang, 1},
		{"nillable refs", HintNillableRef, 8},
		{"optional refs", HintOptionalRef, 8},
		{"wildcards", HintWildcard, CSharpWildcardClasses},
		{"case colliding", HintCaseCollidingFields, 3}, // DataTable, DataTableCollection, SocketError
		{"echo fields", HintEchoField, CSharpEchoClasses},
		{"deep nesting", HintDeepNesting, CSharpDeepNesting},
	}
	for _, tt := range tests {
		if got := len(cat.WithHint(tt.hint)); got != tt.want {
			t.Errorf("%s = %d, want %d", tt.name, got, tt.want)
		}
	}
}

func TestSchemaRefSubsetsAreDisjointAndHard(t *testing.T) {
	cat := CSharpCatalog()
	for _, c := range cat.WithHint(HintSchemaRefNested) {
		if !c.Hints.Has(HintSchemaRefHard) {
			t.Errorf("%s nested but not hard", c.Name)
		}
		if c.Hints.Has(HintSchemaRefWithAny) || c.Hints.Has(HintSchemaRefUnbounded) {
			t.Errorf("%s belongs to multiple subsets", c.Name)
		}
	}
	for _, c := range cat.WithHint(HintSchemaRefWithAny) {
		if c.Hints.Has(HintSchemaRefUnbounded) {
			t.Errorf("%s belongs to multiple subsets", c.Name)
		}
	}
	// Every hard class carries the lang attribute (the WS-I trigger).
	for _, c := range cat.WithHint(HintSchemaRefHard) {
		if !c.Hints.Has(HintLangAttr) {
			t.Errorf("%s hard but missing lang attr", c.Name)
		}
	}
}

func TestNamedNarrativeClassesExist(t *testing.T) {
	jc := JavaCatalog()
	for _, name := range []string{
		JavaW3CEndpointReference, JavaSimpleDateFormat, JavaFuture,
		JavaResponse, JavaXMLGregorianCalendar, JavaVBCollisionClass,
	} {
		if _, ok := jc.Lookup(name); !ok {
			t.Errorf("Java narrative class %s missing", name)
		}
	}
	cc := CSharpCatalog()
	for _, name := range []string{
		CSharpDataTable, CSharpDataTableCollection, CSharpDataSet, CSharpSocketError,
	} {
		if _, ok := cc.Lookup(name); !ok {
			t.Errorf("C# narrative class %s missing", name)
		}
	}
}

func TestLookupMissing(t *testing.T) {
	if _, ok := JavaCatalog().Lookup("no.such.Class"); ok {
		t.Error("Lookup of missing class succeeded")
	}
}

func TestCatalogDeterminism(t *testing.T) {
	// The sync.Once caches, so compare two fresh builds.
	a, b := buildJava(), buildJava()
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Classes {
		ca, cb := &a.Classes[i], &b.Classes[i]
		if ca.Name != cb.Name || ca.Kind != cb.Kind || ca.Hints != cb.Hints {
			t.Fatalf("class %d differs: %+v vs %+v", i, ca, cb)
		}
	}
	x, y := buildCSharp(), buildCSharp()
	for i := range x.Classes {
		if x.Classes[i].Name != y.Classes[i].Name || x.Classes[i].Hints != y.Classes[i].Hints {
			t.Fatalf("C# class %d differs", i)
		}
	}
}

func TestClassNamesWellFormed(t *testing.T) {
	check := func(cat *Catalog) {
		for i := range cat.Classes {
			c := &cat.Classes[i]
			if c.Name != c.Package+"."+c.Simple {
				t.Fatalf("name decomposition broken for %q", c.Name)
			}
			if c.Simple == "" || c.Package == "" {
				t.Fatalf("empty name component in %+v", c)
			}
		}
	}
	check(JavaCatalog())
	check(CSharpCatalog())
}

func TestBindableClassesHaveFields(t *testing.T) {
	for _, cat := range []*Catalog{JavaCatalog(), CSharpCatalog()} {
		for i := range cat.Classes {
			c := &cat.Classes[i]
			if c.Kind == KindBean && len(c.Fields) == 0 {
				t.Errorf("bean class %s has no fields", c.Name)
			}
		}
	}
}

func TestReservedWordClassesHaveReservedField(t *testing.T) {
	for _, c := range JavaCatalog().WithHint(HintReservedWordField) {
		found := false
		for _, f := range c.Fields {
			if f.Name == "function" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s lacks the reserved-word field", c.Name)
		}
	}
}

func TestEchoClassesHaveEchoField(t *testing.T) {
	all := append(JavaCatalog().WithHint(HintEchoField), CSharpCatalog().WithHint(HintEchoField)...)
	for _, c := range all {
		if len(c.Fields) == 0 || c.Fields[0].Name != "echo" {
			t.Errorf("%s first field should be echo, got %+v", c.Name, c.Fields)
		}
	}
}

func TestCaseCollidingClassesCollide(t *testing.T) {
	all := append(JavaCatalog().WithHint(HintCaseCollidingFields), CSharpCatalog().WithHint(HintCaseCollidingFields)...)
	for _, c := range all {
		lower := make(map[string]int)
		for _, f := range c.Fields {
			lower[strings.ToLower(f.Name)]++
		}
		collides := false
		for _, n := range lower {
			if n > 1 {
				collides = true
			}
		}
		if !collides {
			t.Errorf("%s marked case-colliding but fields do not collide: %+v", c.Name, c.Fields)
		}
	}
}

func TestNamespaceFor(t *testing.T) {
	tests := []struct {
		lang Language
		pkg  string
		want string
	}{
		{Java, "java.util", "http://util.java/"},
		{Java, "javax.xml.ws", "http://ws.xml.javax/"},
		{CSharp, "System.Data", "http://tempuri.org/System/Data/"},
	}
	for _, tt := range tests {
		if got := NamespaceFor(tt.lang, tt.pkg); got != tt.want {
			t.Errorf("NamespaceFor(%v, %q) = %q, want %q", tt.lang, tt.pkg, got, tt.want)
		}
	}
}

func TestHintHas(t *testing.T) {
	h := HintWildcard | HintCaseCollidingFields
	if !h.Has(HintWildcard) || !h.Has(HintCaseCollidingFields) {
		t.Error("Has should report set bits")
	}
	if h.Has(HintThrowable) {
		t.Error("Has reported an unset bit")
	}
	if !h.Has(HintWildcard | HintCaseCollidingFields) {
		t.Error("Has should support multi-bit queries")
	}
}

func TestSyntheticFieldsDeterministicAndUnique(t *testing.T) {
	f := func(name string) bool {
		a := syntheticFields(name, 0)
		b := syntheticFields(name, 0)
		if len(a) != len(b) || len(a) == 0 || len(a) > 4 {
			return false
		}
		seen := make(map[string]bool, len(a))
		for i := range a {
			if a[i] != b[i] {
				return false
			}
			if seen[a[i].Name] {
				return false
			}
			seen[a[i].Name] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKindStringsAndBindable(t *testing.T) {
	bindable := []Kind{KindBean, KindBeanVendor, KindAsyncHandle}
	for _, k := range bindable {
		if !k.Bindable() {
			t.Errorf("%s should be bindable", k)
		}
	}
	for _, k := range []Kind{KindInterface, KindAbstract, KindGeneric, KindNoCtor, KindStatic, KindDelegate} {
		if k.Bindable() {
			t.Errorf("%s should not be bindable", k)
		}
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("%d has no display name", k)
		}
	}
}

func TestWithKind(t *testing.T) {
	cat := JavaCatalog()
	async := cat.WithKind(KindAsyncHandle)
	if len(async) != 2 {
		t.Fatalf("async handles = %d, want 2", len(async))
	}
	names := map[string]bool{async[0].Name: true, async[1].Name: true}
	if !names[JavaFuture] || !names[JavaResponse] {
		t.Errorf("unexpected async handles: %v", names)
	}
}

func TestSortedPackages(t *testing.T) {
	pkgs := JavaCatalog().SortedPackages()
	if len(pkgs) < 10 {
		t.Errorf("suspiciously few packages: %d", len(pkgs))
	}
	for i := 1; i < len(pkgs); i++ {
		if pkgs[i-1] >= pkgs[i] {
			t.Errorf("packages not sorted: %q >= %q", pkgs[i-1], pkgs[i])
		}
	}
}
