package typesys

import (
	"reflect"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	for _, cat := range []*Catalog{JavaCatalog(), CSharpCatalog()} {
		data, err := ExportJSON(cat)
		if err != nil {
			t.Fatalf("%s export: %v", cat.Language, err)
		}
		got, err := ImportJSON(data)
		if err != nil {
			t.Fatalf("%s import: %v", cat.Language, err)
		}
		if got.Len() != cat.Len() || got.Language != cat.Language {
			t.Fatalf("%s: identity lost (%d classes)", cat.Language, got.Len())
		}
		for i := range cat.Classes {
			a, b := &cat.Classes[i], &got.Classes[i]
			if a.Name != b.Name || a.Kind != b.Kind || a.Hints != b.Hints ||
				a.Package != b.Package || a.Simple != b.Simple {
				t.Fatalf("%s: class %d differs: %+v vs %+v", cat.Language, i, a, b)
			}
			if !reflect.DeepEqual(a.Fields, b.Fields) && !(a.Fields == nil && len(b.Fields) == 0) {
				t.Fatalf("%s: fields of %s differ", cat.Language, a.Name)
			}
		}
	}
}

func TestHintNamesRoundTrip(t *testing.T) {
	masks := []Hint{
		0,
		HintThrowable,
		HintLangAttr | HintSchemaRefHard | HintSchemaRefNested,
		HintWildcard | HintCaseCollidingFields,
	}
	for _, m := range masks {
		names := HintNames(m)
		back, err := ParseHints(names)
		if err != nil {
			t.Fatalf("parse %v: %v", names, err)
		}
		if back != m {
			t.Errorf("round trip %b → %v → %b", m, names, back)
		}
	}
	if _, err := ParseHints([]string{"no-such-hint"}); err == nil {
		t.Error("unknown hint name should fail")
	}
}

func TestHintNamesCoverEveryBit(t *testing.T) {
	all := []Hint{
		HintUnresolvedAddressingRef, HintVendorFacet, HintZeroOperations,
		HintEmptyTypes, HintLangAttr, HintSchemaRefHard, HintSchemaRefNested,
		HintSchemaRefWithAny, HintSchemaRefUnbounded, HintDoubleLang,
		HintNillableRef, HintOptionalRef, HintWildcard,
		HintCaseCollidingFields, HintThrowable, HintReservedWordField,
		HintDeepNesting, HintEchoField,
	}
	for _, h := range all {
		if names := HintNames(h); len(names) != 1 {
			t.Errorf("hint %b has %d names", h, len(names))
		}
	}
}

func TestImportRejectsBadData(t *testing.T) {
	cases := map[string]string{
		"garbage":        "not json",
		"bad language":   `{"language":"COBOL","classes":[]}`,
		"bad kind":       `{"language":"Java","classes":[{"name":"a.B","kind":"alien"}]}`,
		"bad hint":       `{"language":"Java","classes":[{"name":"a.B","kind":"bean","hints":["x"]}]}`,
		"bad field kind": `{"language":"Java","classes":[{"name":"a.B","kind":"bean","fields":[{"name":"f","kind":"blob"}]}]}`,
		"unqualified":    `{"language":"Java","classes":[{"name":"NoPackage","kind":"bean"}]}`,
		"duplicate":      `{"language":"Java","classes":[{"name":"a.B","kind":"bean"},{"name":"a.B","kind":"bean"}]}`,
	}
	for name, data := range cases {
		if _, err := ImportJSON([]byte(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestImportedCatalogIsQueryable(t *testing.T) {
	data := `{"language":"Java","classes":[
	  {"name":"com.example.Widget","kind":"bean",
	   "fields":[{"name":"value","kind":"string"},{"name":"part","kind":"ref","ref":"Part"}]},
	  {"name":"com.example.Broken","kind":"bean","hints":["case-colliding-fields"],
	   "fields":[{"name":"id","kind":"int"},{"name":"Id","kind":"int"}]}
	]}`
	cat, err := ImportJSON([]byte(data))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if _, ok := cat.Lookup("com.example.Widget"); !ok {
		t.Error("lookup failed")
	}
	if n := len(cat.WithHint(HintCaseCollidingFields)); n != 1 {
		t.Errorf("hint query = %d, want 1", n)
	}
}
