// Package typesys models the native type systems of the two service
// implementation languages of the study — Java SE 7 and C# (.NET 4.0)
// — as deterministic synthetic class catalogs.
//
// The original study crawled the public API documentation of both
// platforms and created one test service per native class (3 971 Java
// classes, 14 082 C# classes). Since the proprietary class libraries
// are not available here, this package synthesizes catalogs of the
// same size whose classes carry the *structural properties* that
// matter to the interoperability pipeline: the shape each class maps
// to in XML Schema (bean fields, wildcards, cross-namespace
// references, vendor facets, naming hazards) and the binding kind that
// determines whether a server framework can publish it at all.
//
// All catalogs are fully deterministic: calling Java() or CSharp()
// twice yields identical catalogs, and the exact counts reported by
// the paper (deployable services, trait populations) hold as
// invariants verified by the test suite.
package typesys

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Language identifies the implementation language of a class.
type Language int

// Languages of the study.
const (
	Java Language = iota + 1
	CSharp
)

// String implements fmt.Stringer.
func (l Language) String() string {
	switch l {
	case Java:
		return "Java"
	case CSharp:
		return "C#"
	default:
		return fmt.Sprintf("Language(%d)", int(l))
	}
}

// Kind is the binding kind of a class: it determines whether a
// server-side framework subsystem can map the class to a service
// interface (and so publish a WSDL for a service using it).
type Kind int

// Binding kinds. Only bean-like kinds are bindable; the remaining
// kinds model the class populations the paper's service-description
// step filtered out (14 785 of 22 024 services).
const (
	// KindBean is a concrete class with a default constructor and
	// readable/writable properties: bindable by every framework.
	KindBean Kind = iota + 1
	// KindBeanVendor is bindable only via vendor-specific binding
	// annotations: Metro maps it, JBossWS CXF does not.
	KindBeanVendor
	// KindAsyncHandle is an asynchronous invocation handle type
	// (java.util.concurrent.Future, javax.xml.ws.Response): JBossWS
	// publishes a WSDL without operations for it, Metro refuses to
	// deploy it.
	KindAsyncHandle
	// KindInterface cannot be instantiated: unbindable.
	KindInterface
	// KindAbstract cannot be instantiated: unbindable.
	KindAbstract
	// KindGeneric carries unbound type parameters: unbindable.
	KindGeneric
	// KindNoCtor has no accessible default constructor: unbindable.
	KindNoCtor
	// KindStatic is a static holder class (C#): unbindable.
	KindStatic
	// KindDelegate is a delegate type (C#): unbindable.
	KindDelegate
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBean:
		return "bean"
	case KindBeanVendor:
		return "bean-vendor"
	case KindAsyncHandle:
		return "async-handle"
	case KindInterface:
		return "interface"
	case KindAbstract:
		return "abstract"
	case KindGeneric:
		return "generic"
	case KindNoCtor:
		return "no-ctor"
	case KindStatic:
		return "static"
	case KindDelegate:
		return "delegate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Bindable reports whether a server framework can in principle map
// the kind to a service interface.
func (k Kind) Bindable() bool {
	switch k {
	case KindBean, KindBeanVendor, KindAsyncHandle:
		return true
	default:
		return false
	}
}

// Hint is a bitmask of structural properties of a class's XML Schema
// mapping. Hints are *materialized* by server framework emitters as
// concrete schema structures; client-side behaviour then follows from
// the structure alone. Each hint corresponds to a defect family
// documented in §IV.B of the paper (see DESIGN.md §3.5).
type Hint uint32

// Structural hints.
const (
	// HintUnresolvedAddressingRef makes the schema reference a
	// WS-Addressing element without a resolvable import
	// (javax.xml.ws.wsaddressing.W3CEndpointReference).
	HintUnresolvedAddressingRef Hint = 1 << iota
	// HintVendorFacet makes the schema use a non-standard restriction
	// facet (java.text.SimpleDateFormat).
	HintVendorFacet
	// HintZeroOperations makes the published WSDL carry a port type
	// with no operations (Future / Response on JBossWS).
	HintZeroOperations
	// HintEmptyTypes additionally leaves the types section empty
	// (Future); distinguishes the gSOAP-breaking no-operation variant.
	HintEmptyTypes
	// HintLangAttr makes the schema reference the xml:lang attribute
	// (the WCF DataSet WSDL family; fails the WS-I check).
	HintLangAttr
	// HintSchemaRefHard embeds an element reference to xs:schema in an
	// un-importable namespace (76 of the 80 WCF classes).
	HintSchemaRefHard
	// HintSchemaRefNested nests the xs:schema reference inside an
	// inline complex type (the 13-class subset that breaks gSOAP).
	HintSchemaRefNested
	// HintSchemaRefWithAny pairs the reference with a wildcard in the
	// same sequence (the 2-class subset that breaks Axis1).
	HintSchemaRefWithAny
	// HintSchemaRefUnbounded gives the reference unbounded cardinality
	// (the 1-class subset that breaks suds).
	HintSchemaRefUnbounded
	// HintDoubleLang duplicates the xml:lang attribute reference (the
	// 1 class that draws a warning from all three .NET languages).
	HintDoubleLang
	// HintNillableRef marks the reference nillable (the 8 classes that
	// draw Zend warnings).
	HintNillableRef
	// HintOptionalRef gives the reference minOccurs=0 (the 8 classes
	// that draw suds warnings).
	HintOptionalRef
	// HintWildcard maps the class to a wildcard-only content model
	// (System.Data.DataTable family; WS-I compliant, breaks
	// Metro/CXF/JBossWS generation).
	HintWildcard
	// HintCaseCollidingFields gives the class two properties whose
	// names differ only in letter case; Axis2's lower-cased local
	// variable naming collapses them into a duplicate variable.
	HintCaseCollidingFields
	// HintThrowable marks exception/error classes whose fault-wrapper
	// attribute Axis1 misnames (889 compile errors).
	HintThrowable
	// HintReservedWordField gives the class a property named after a
	// JScript reserved word; the JScript generator silently omits the
	// accessor function (50 Java classes).
	HintReservedWordField
	// HintDeepNesting maps the class to deeply nested inline types
	// that crash the JScript compiler (301 C# classes; the paper's
	// "131 INTERNAL COMPILER CRASH").
	HintDeepNesting
	// HintEchoField gives the class a property named like the service
	// operation, producing a case-insensitive method/parameter
	// collision in Visual Basic artifacts (4 C# + 1 Java class).
	HintEchoField
)

// Has reports whether all bits of q are set in h.
func (h Hint) Has(q Hint) bool { return h&q == q }

// FieldKind is the value category of a bean property.
type FieldKind int

// Field kinds map onto XSD built-in simple types, except FieldRef
// which references another complex type.
const (
	FieldString FieldKind = iota + 1
	FieldInt
	FieldLong
	FieldBool
	FieldDouble
	FieldDateTime
	FieldBytes
	FieldRef
)

// Field is one bean property of a class.
type Field struct {
	Name string
	Kind FieldKind
	// Ref is the referenced complex type local name when Kind is
	// FieldRef.
	Ref string
}

// Class is one native class of a platform library.
type Class struct {
	// Name is the fully qualified class name, e.g. "java.util.BitSet"
	// or "System.Data.DataTable".
	Name string
	// Package is the namespace / package portion of Name.
	Package string
	// Simple is the local class name.
	Simple string
	// Language is the implementation language.
	Language Language
	// Kind is the binding kind.
	Kind Kind
	// Hints are the structural schema-mapping properties.
	Hints Hint
	// Fields is the bean property list mapped into the schema.
	Fields []Field
}

// Catalog is the complete class catalog of one platform.
type Catalog struct {
	Language Language
	Classes  []Class

	byName map[string]int
}

// Lookup returns the class with the given fully qualified name.
func (c *Catalog) Lookup(name string) (*Class, bool) {
	i, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return &c.Classes[i], true
}

// Len returns the number of classes in the catalog.
func (c *Catalog) Len() int { return len(c.Classes) }

// WithHint returns the classes carrying all bits of the given hint,
// in catalog order.
func (c *Catalog) WithHint(h Hint) []*Class {
	var out []*Class
	for i := range c.Classes {
		if c.Classes[i].Hints.Has(h) {
			out = append(out, &c.Classes[i])
		}
	}
	return out
}

// WithKind returns the classes of the given binding kind.
func (c *Catalog) WithKind(k Kind) []*Class {
	var out []*Class
	for i := range c.Classes {
		if c.Classes[i].Kind == k {
			out = append(out, &c.Classes[i])
		}
	}
	return out
}

// Stats summarizes a catalog for invariant checking and reporting.
type Stats struct {
	Total    int
	ByKind   map[Kind]int
	Bindable int
}

// Stats computes catalog statistics.
func (c *Catalog) Stats() Stats {
	s := Stats{Total: len(c.Classes), ByKind: make(map[Kind]int, 8)}
	for i := range c.Classes {
		s.ByKind[c.Classes[i].Kind]++
		if c.Classes[i].Kind.Bindable() {
			s.Bindable++
		}
	}
	return s
}

// finish indexes the catalog and verifies name uniqueness; it panics
// on construction bugs because a malformed catalog would invalidate
// every downstream result (catalog construction is deterministic
// program initialization, not runtime input handling).
func (c *Catalog) finish() *Catalog {
	c.byName = make(map[string]int, len(c.Classes))
	for i := range c.Classes {
		name := c.Classes[i].Name
		if _, dup := c.byName[name]; dup {
			panic("typesys: duplicate class name " + name)
		}
		c.byName[name] = i
	}
	return c
}

// fnv1a is a small deterministic string hash used to derive stable
// pseudo-random structure (field counts, field kinds) from class
// names.
func fnv1a(s string) uint32 {
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime
	}
	return h
}

// syntheticFields derives a deterministic bean property list for a
// class from its name.
func syntheticFields(name string, n int) []Field {
	if n <= 0 {
		n = 1 + int(fnv1a(name)%4)
	}
	kinds := []FieldKind{FieldString, FieldInt, FieldLong, FieldBool, FieldDouble, FieldDateTime, FieldBytes}
	names := []string{"value", "name", "count", "id", "flags", "size", "data", "label", "index", "state"}
	fields := make([]Field, 0, n)
	seen := make(map[string]bool, n)
	h := fnv1a(name)
	for i := 0; i < n; i++ {
		fn := names[int(h>>uint(i%8))%len(names)]
		for seen[fn] {
			fn += "x"
		}
		seen[fn] = true
		fields = append(fields, Field{Name: fn, Kind: kinds[int(h>>uint((i+3)%8))%len(kinds)]})
		h = h*31 + uint32(i) + 7
	}
	return fields
}

// nameGen deterministically produces unique fully qualified class
// names across a set of packages.
type nameGen struct {
	packages []string
	stems    []string
	nouns    []string
	used     map[string]bool
	i        int
}

func newNameGen(packages, stems, nouns []string) *nameGen {
	return &nameGen{
		packages: packages,
		stems:    stems,
		nouns:    nouns,
		used:     make(map[string]bool, 1024),
	}
}

// reserve marks an explicitly constructed name as taken.
func (g *nameGen) reserve(name string) { g.used[name] = true }

// next returns the next unused fully qualified name, optionally
// forcing a suffix on the local name (e.g. "Exception").
func (g *nameGen) next(suffix string) (pkg, simple string) {
	for {
		i := g.i
		g.i++
		pkg = g.packages[i%len(g.packages)]
		stem := g.stems[(i/len(g.packages))%len(g.stems)]
		noun := g.nouns[(i/(len(g.packages)*len(g.stems)))%len(g.nouns)]
		simple = stem + noun + suffix
		if g.used[pkg+"."+simple] {
			continue
		}
		g.used[pkg+"."+simple] = true
		return pkg, simple
	}
}

// builder accumulates classes for one catalog.
type builder struct {
	lang    Language
	gen     *nameGen
	classes []Class
}

func (b *builder) add(pkg, simple string, kind Kind, hints Hint, fields []Field) {
	name := pkg + "." + simple
	if fields == nil && kind.Bindable() {
		fields = syntheticFields(name, 0)
	}
	b.classes = append(b.classes, Class{
		Name:     name,
		Package:  pkg,
		Simple:   simple,
		Language: b.lang,
		Kind:     kind,
		Hints:    hints,
		Fields:   fields,
	})
}

// addGenerated appends n generator-named classes of the given kind,
// applying hints and an optional per-class field mutation.
func (b *builder) addGenerated(n int, suffix string, kind Kind, hints Hint, mutate func(*Class)) {
	for i := 0; i < n; i++ {
		pkg, simple := b.gen.next(suffix)
		b.add(pkg, simple, kind, hints, nil)
		if mutate != nil {
			mutate(&b.classes[len(b.classes)-1])
		}
	}
}

// SortedPackages returns the distinct package names of the catalog in
// sorted order; used by reporting and documentation tooling.
func (c *Catalog) SortedPackages() []string {
	set := make(map[string]bool, 64)
	for i := range c.Classes {
		set[c.Classes[i].Package] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// NamespaceFor maps a package name to the XML target namespace a Java
// or C# emitter derives for it (reverse-DNS convention for Java,
// tempuri-rooted convention for .NET).
func NamespaceFor(lang Language, pkg string) string {
	key := nsKey{lang, pkg}
	if ns, ok := nsCache.Load(key); ok {
		return ns.(string)
	}
	var ns string
	switch lang {
	case Java:
		parts := strings.Split(pkg, ".")
		for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
			parts[i], parts[j] = parts[j], parts[i]
		}
		ns = "http://" + strings.Join(parts, ".") + "/"
	case CSharp:
		ns = "http://tempuri.org/" + strings.ReplaceAll(pkg, ".", "/") + "/"
	default:
		ns = "http://example.invalid/" + pkg + "/"
	}
	nsCache.Store(key, ns)
	return ns
}

// nsKey identifies one derived namespace. Packages repeat across the
// catalog — a few hundred distinct values name tens of thousands of
// classes — so the derivation is cached rather than re-concatenated on
// every publish.
type nsKey struct {
	lang Language
	pkg  string
}

var nsCache sync.Map // nsKey → string
