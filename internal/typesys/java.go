package typesys

import "sync"

// Java catalog construction.
//
// The catalog has exactly 3 971 classes, partitioned to reproduce the
// paper's service-description filtering:
//
//	bean (bindable by Metro and JBossWS)  2 246
//	bean-vendor (bindable by Metro only)    243
//	async-handle (JBossWS publishes a
//	  zero-operation WSDL, Metro refuses)     2
//	unbindable kinds                      1 480
//	                                      -----
//	                                      3 971
//
// Metro therefore publishes 2 489 WSDLs (bean + bean-vendor) and
// JBossWS 2 248 (bean + async-handle), matching Table III's headers.
//
// Trait populations inside the bindable set (see DESIGN.md §3.5):
// 477 throwable classes (412 bean + 65 bean-vendor), 50 classes with a
// JScript-reserved-word property, and the individually named classes
// of the paper's §IV.B narratives.

// Exact Java catalog quotas.
const (
	JavaTotal        = 3971
	JavaBeanBoth     = 2246
	JavaBeanVendor   = 243
	JavaAsyncHandles = 2

	// JavaThrowablesBoth and JavaThrowablesVendor split the 477
	// throwable classes between the two bindable kinds.
	JavaThrowablesBoth   = 412
	JavaThrowablesVendor = 65

	// JavaReservedWordClasses is the JScript-breaking population.
	JavaReservedWordClasses = 50
)

var javaPackages = []string{
	"java.lang", "java.util", "java.io", "java.net", "java.text",
	"java.awt", "java.awt.image", "java.awt.event", "java.beans",
	"java.math", "java.nio", "java.nio.channels", "java.nio.charset",
	"java.rmi", "java.rmi.server", "java.security", "java.security.cert",
	"java.sql", "java.util.concurrent", "java.util.jar",
	"java.util.logging", "java.util.prefs", "java.util.regex",
	"java.util.zip", "javax.activation", "javax.annotation",
	"javax.crypto", "javax.imageio", "javax.management", "javax.naming",
	"javax.net", "javax.print", "javax.script", "javax.sound.midi",
	"javax.sound.sampled", "javax.sql", "javax.swing", "javax.swing.text",
	"javax.tools", "javax.xml.bind", "javax.xml.datatype",
	"javax.xml.namespace", "javax.xml.parsers", "javax.xml.soap",
	"javax.xml.transform", "javax.xml.validation", "javax.xml.ws",
	"javax.xml.xpath", "org.w3c.dom", "org.xml.sax",
}

var javaStems = []string{
	"Abstract", "Default", "Simple", "Buffered", "Basic", "Composite",
	"Delegating", "Filtered", "Indexed", "Linked", "Managed", "Mutable",
	"Piped", "Pooled", "Ranged", "Scoped", "Shared", "Sorted", "Synced",
	"Tracked", "Typed", "Weighted", "Atomic", "Bounded", "Cached",
	"Chained", "Checked", "Compact", "Direct", "Dual",
}

var javaNouns = []string{
	"Handler", "Manager", "Factory", "Event", "Context", "Stream",
	"Reader", "Writer", "Buffer", "Element", "Builder", "Adapter",
	"Descriptor", "Model", "Entry", "Node", "Registry", "Provider",
	"Resolver", "Validator", "Format", "Token", "Channel", "Session",
	"Record", "Bundle", "Gauge", "Router", "Monitor", "Snapshot",
}

var (
	javaOnce    sync.Once
	javaCatalog *Catalog
)

// JavaCatalog returns the shared, immutable Java class catalog. The
// catalog is built once; callers must not mutate it.
func JavaCatalog() *Catalog {
	javaOnce.Do(func() { javaCatalog = buildJava() })
	return javaCatalog
}

// Individually named Java classes from the paper's narratives.
const (
	JavaW3CEndpointReference  = "javax.xml.ws.wsaddressing.W3CEndpointReference"
	JavaSimpleDateFormat      = "java.text.SimpleDateFormat"
	JavaFuture                = "java.util.concurrent.Future"
	JavaResponse              = "javax.xml.ws.Response"
	JavaXMLGregorianCalendar  = "javax.xml.datatype.XMLGregorianCalendar"
	JavaVBCollisionClass      = "java.awt.Event"
	javaWSAddressingNamespace = "http://www.w3.org/2005/08/addressing"
)

func buildJava() *Catalog {
	b := &builder{
		lang: Java,
		gen:  newNameGen(javaPackages, javaStems, javaNouns),
	}

	// --- individually named classes -------------------------------
	b.gen.reserve(JavaW3CEndpointReference)
	b.add("javax.xml.ws.wsaddressing", "W3CEndpointReference", KindBean,
		HintUnresolvedAddressingRef, []Field{
			{Name: "address", Kind: FieldString},
			{Name: "referenceParameters", Kind: FieldRef, Ref: "EndpointReference"},
		})

	b.gen.reserve(JavaSimpleDateFormat)
	b.add("java.text", "SimpleDateFormat", KindBean, HintVendorFacet, []Field{
		{Name: "pattern", Kind: FieldString},
		{Name: "lenient", Kind: FieldBool},
	})

	b.gen.reserve(JavaFuture)
	b.add("java.util.concurrent", "Future", KindAsyncHandle,
		HintZeroOperations|HintEmptyTypes, nil)

	b.gen.reserve(JavaResponse)
	b.add("javax.xml.ws", "Response", KindAsyncHandle, HintZeroOperations,
		[]Field{{Name: "context", Kind: FieldString}})

	b.gen.reserve(JavaXMLGregorianCalendar)
	b.add("javax.xml.datatype", "XMLGregorianCalendar", KindBean,
		HintCaseCollidingFields, []Field{
			{Name: "timezone", Kind: FieldInt},
			{Name: "timeZone", Kind: FieldString},
			{Name: "year", Kind: FieldInt},
		})

	b.gen.reserve(JavaVBCollisionClass)
	b.add("java.awt", "Event", KindBean, HintEchoField, []Field{
		{Name: "echo", Kind: FieldString},
		{Name: "when", Kind: FieldLong},
	})

	// --- populations with structural hints ------------------------
	b.addGenerated(JavaReservedWordClasses, "", KindBean, HintReservedWordField,
		func(c *Class) {
			c.Fields = append([]Field{{Name: "function", Kind: FieldString}}, c.Fields...)
		})

	throwableFields := func(c *Class) {
		c.Fields = []Field{
			{Name: "message", Kind: FieldString},
			{Name: "cause", Kind: FieldRef, Ref: c.Simple + "Cause"},
		}
	}
	// Alternate Exception/Error suffixes across the throwable family.
	half := JavaThrowablesBoth / 2
	b.addGenerated(half, "Exception", KindBean, HintThrowable, throwableFields)
	b.addGenerated(JavaThrowablesBoth-half, "Error", KindBean, HintThrowable, throwableFields)
	b.addGenerated(JavaThrowablesVendor, "Exception", KindBeanVendor, HintThrowable, throwableFields)

	// --- plain filler populations ---------------------------------
	namedBeanBoth := 4 // W3CEndpointReference, SimpleDateFormat, XMLGregorianCalendar, Event
	fillerBoth := JavaBeanBoth - namedBeanBoth - JavaReservedWordClasses - JavaThrowablesBoth
	b.addGenerated(fillerBoth, "", KindBean, 0, nil)
	b.addGenerated(JavaBeanVendor-JavaThrowablesVendor, "", KindBeanVendor, 0, nil)

	// --- unbindable populations ------------------------------------
	unbindable := JavaTotal - JavaBeanBoth - JavaBeanVendor - JavaAsyncHandles
	quota := []struct {
		n    int
		kind Kind
	}{
		{500, KindInterface},
		{300, KindAbstract},
		{400, KindGeneric},
		{unbindable - 1200, KindNoCtor},
	}
	for _, q := range quota {
		b.addGenerated(q.n, "", q.kind, 0, nil)
	}

	c := &Catalog{Language: Java, Classes: b.classes}
	return c.finish()
}
