package typesys

import (
	"encoding/json"
	"fmt"
	"sort"
)

// JSON export/import for catalogs. The study's original artifact
// published its crawled class lists; this is the equivalent facility —
// and the inverse direction lets users run the campaign over their own
// class catalogs (campaign.Config.CatalogFor).

// hintNames maps each hint bit to its stable wire name.
var hintNames = map[Hint]string{
	HintUnresolvedAddressingRef: "unresolved-addressing-ref",
	HintVendorFacet:             "vendor-facet",
	HintZeroOperations:          "zero-operations",
	HintEmptyTypes:              "empty-types",
	HintLangAttr:                "lang-attr",
	HintSchemaRefHard:           "schema-ref-hard",
	HintSchemaRefNested:         "schema-ref-nested",
	HintSchemaRefWithAny:        "schema-ref-with-any",
	HintSchemaRefUnbounded:      "schema-ref-unbounded",
	HintDoubleLang:              "double-lang",
	HintNillableRef:             "nillable-ref",
	HintOptionalRef:             "optional-ref",
	HintWildcard:                "wildcard",
	HintCaseCollidingFields:     "case-colliding-fields",
	HintThrowable:               "throwable",
	HintReservedWordField:       "reserved-word-field",
	HintDeepNesting:             "deep-nesting",
	HintEchoField:               "echo-field",
}

// namesToHints is the inverse of hintNames, built once.
var namesToHints = func() map[string]Hint {
	m := make(map[string]Hint, len(hintNames))
	for h, n := range hintNames {
		m[n] = h
	}
	return m
}()

// HintNames renders a hint mask as sorted wire names.
func HintNames(h Hint) []string {
	var out []string
	for bit, name := range hintNames {
		if h.Has(bit) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// ParseHints converts wire names back to a hint mask.
func ParseHints(names []string) (Hint, error) {
	var h Hint
	for _, n := range names {
		bit, ok := namesToHints[n]
		if !ok {
			return 0, fmt.Errorf("typesys: unknown hint %q", n)
		}
		h |= bit
	}
	return h, nil
}

// kindNames maps kinds to stable wire names.
var kindNames = map[Kind]string{
	KindBean: "bean", KindBeanVendor: "bean-vendor",
	KindAsyncHandle: "async-handle", KindInterface: "interface",
	KindAbstract: "abstract", KindGeneric: "generic",
	KindNoCtor: "no-ctor", KindStatic: "static", KindDelegate: "delegate",
}

var namesToKinds = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

var fieldKindNames = map[FieldKind]string{
	FieldString: "string", FieldInt: "int", FieldLong: "long",
	FieldBool: "bool", FieldDouble: "double", FieldDateTime: "dateTime",
	FieldBytes: "bytes", FieldRef: "ref",
}

var namesToFieldKinds = func() map[string]FieldKind {
	m := make(map[string]FieldKind, len(fieldKindNames))
	for k, n := range fieldKindNames {
		m[n] = k
	}
	return m
}()

type jsonCatalog struct {
	Language string      `json:"language"`
	Classes  []jsonClass `json:"classes"`
}

type jsonClass struct {
	Name   string      `json:"name"`
	Kind   string      `json:"kind"`
	Hints  []string    `json:"hints,omitempty"`
	Fields []jsonField `json:"fields,omitempty"`
}

type jsonField struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	Ref  string `json:"ref,omitempty"`
}

// ExportJSON serializes the catalog.
func ExportJSON(cat *Catalog) ([]byte, error) {
	out := jsonCatalog{Language: cat.Language.String()}
	out.Classes = make([]jsonClass, 0, cat.Len())
	for i := range cat.Classes {
		c := &cat.Classes[i]
		jc := jsonClass{Name: c.Name, Kind: kindNames[c.Kind], Hints: HintNames(c.Hints)}
		for _, f := range c.Fields {
			jc.Fields = append(jc.Fields, jsonField{Name: f.Name, Kind: fieldKindNames[f.Kind], Ref: f.Ref})
		}
		out.Classes = append(out.Classes, jc)
	}
	return json.MarshalIndent(out, "", "  ")
}

// ImportJSON rebuilds a catalog from its JSON export. The language
// string selects name-splitting and namespace conventions.
func ImportJSON(data []byte) (*Catalog, error) {
	var in jsonCatalog
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("typesys: parse catalog: %w", err)
	}
	var lang Language
	switch in.Language {
	case Java.String():
		lang = Java
	case CSharp.String():
		lang = CSharp
	default:
		return nil, fmt.Errorf("typesys: unknown language %q", in.Language)
	}
	cat := &Catalog{Language: lang, Classes: make([]Class, 0, len(in.Classes))}
	for _, jc := range in.Classes {
		kind, ok := namesToKinds[jc.Kind]
		if !ok {
			return nil, fmt.Errorf("typesys: class %q has unknown kind %q", jc.Name, jc.Kind)
		}
		hints, err := ParseHints(jc.Hints)
		if err != nil {
			return nil, fmt.Errorf("typesys: class %q: %w", jc.Name, err)
		}
		pkg, simple := splitName(jc.Name)
		if pkg == "" || simple == "" {
			return nil, fmt.Errorf("typesys: class name %q is not fully qualified", jc.Name)
		}
		cls := Class{
			Name: jc.Name, Package: pkg, Simple: simple,
			Language: lang, Kind: kind, Hints: hints,
		}
		for _, jf := range jc.Fields {
			fk, ok := namesToFieldKinds[jf.Kind]
			if !ok {
				return nil, fmt.Errorf("typesys: field %s.%s has unknown kind %q", jc.Name, jf.Name, jf.Kind)
			}
			cls.Fields = append(cls.Fields, Field{Name: jf.Name, Kind: fk, Ref: jf.Ref})
		}
		cat.Classes = append(cat.Classes, cls)
	}
	return cat.finishChecked()
}

// splitName separates a fully qualified class name into package and
// simple name at the last dot.
func splitName(fq string) (pkg, simple string) {
	for i := len(fq) - 1; i >= 0; i-- {
		if fq[i] == '.' {
			return fq[:i], fq[i+1:]
		}
	}
	return "", fq
}

// finishChecked indexes the catalog, returning an error (rather than
// panicking) for user-supplied data.
func (c *Catalog) finishChecked() (*Catalog, error) {
	c.byName = make(map[string]int, len(c.Classes))
	for i := range c.Classes {
		name := c.Classes[i].Name
		if _, dup := c.byName[name]; dup {
			return nil, fmt.Errorf("typesys: duplicate class name %q", name)
		}
		c.byName[name] = i
	}
	return c, nil
}
