package typesys

import "sync"

// C# catalog construction.
//
// The catalog has exactly 14 082 classes; 2 502 are bindable, matching
// the number of services WCF .NET published in the study. Inside the
// bindable set the trait populations follow DESIGN.md §3.5:
//
//	80 DataSet-style classes whose WSDL references xs:schema and
//	   xml:lang (fails WS-I): 76 "hard" (13 nested / 2 paired with a
//	   wildcard / 1 unbounded / 60 plain) + 4 benign,
//	 3 wildcard-only classes (DataTable family; WS-I compliant but
//	   break Metro/CXF/JBossWS generation),
//	 1 case-colliding enum wrapper (SocketError; Axis2 compile error),
//	 4 WebControls classes with an "echo" property (VB collisions),
//	301 deeply nested classes (JScript compiler crash).

// Exact C# catalog quotas.
const (
	CSharpTotal    = 14082
	CSharpBindable = 2502

	CSharpSchemaRefTotal     = 80
	CSharpSchemaRefNested    = 13
	CSharpSchemaRefWithAny   = 2
	CSharpSchemaRefUnbounded = 1
	CSharpSchemaRefPlain     = 60
	CSharpSchemaRefBenign    = 4

	CSharpWildcardClasses = 3
	CSharpEchoClasses     = 4
	CSharpDeepNesting     = 301
)

var csharpPackages = []string{
	"System", "System.Collections", "System.Collections.Generic",
	"System.ComponentModel", "System.Configuration", "System.Data",
	"System.Data.Common", "System.Diagnostics", "System.Drawing",
	"System.Globalization", "System.IO", "System.Linq", "System.Net",
	"System.Net.Sockets", "System.Reflection", "System.Resources",
	"System.Runtime", "System.Security", "System.Security.Cryptography",
	"System.ServiceModel", "System.Text", "System.Threading",
	"System.Threading.Tasks", "System.Web", "System.Web.UI",
	"System.Web.UI.WebControls", "System.Windows.Forms", "System.Xml",
	"System.Xml.Schema", "System.Xml.Serialization", "Microsoft.Win32",
	"Microsoft.CSharp", "System.Media", "System.Messaging",
	"System.Printing", "System.Timers", "System.Transactions",
	"System.Activities", "System.AddIn", "System.CodeDom",
}

var csharpStems = []string{
	"Composite", "Linked", "Tracked", "Virtual", "Projected", "Hosted",
	"Bound", "Braced", "Declared", "Derived", "Staged", "Queued",
	"Mapped", "Merged", "Nested", "Paged", "Parsed", "Pinned",
	"Routed", "Sealed", "Signed", "Sliced", "Spooled", "Stamped",
	"Striped", "Tagged", "Threaded", "Tiered", "Traced", "Vaulted",
}

var csharpNouns = []string{
	"Collection", "Provider", "Definition", "Descriptor", "Binding",
	"Exchange", "Fragment", "Gateway", "Envelope", "Inventory",
	"Journal", "Ledger", "Manifest", "Matrix", "Package", "Pipeline",
	"Profile", "Quota", "Relay", "Schedule", "Segment", "Sequence",
	"Surface", "Template", "Ticket", "Tracker", "Vector", "View",
	"Worker", "Zone",
}

var (
	csharpOnce    sync.Once
	csharpCatalog *Catalog
)

// CSharpCatalog returns the shared, immutable C# class catalog.
func CSharpCatalog() *Catalog {
	csharpOnce.Do(func() { csharpCatalog = buildCSharp() })
	return csharpCatalog
}

// Individually named C# classes from the paper's narratives.
const (
	CSharpDataTable           = "System.Data.DataTable"
	CSharpDataTableCollection = "System.Data.DataTableCollection"
	CSharpDataSet             = "System.Data.DataSet"
	CSharpSocketError         = "System.Net.Sockets.SocketError"
)

func buildCSharp() *Catalog {
	b := &builder{
		lang: CSharp,
		gen:  newNameGen(csharpPackages, csharpStems, csharpNouns),
	}

	// --- wildcard (DataSet family): WS-I compliant, break
	// Metro/CXF/JBossWS generation; DataTable and DataTableCollection
	// additionally collide under Axis2's lower-cased locals.
	b.gen.reserve(CSharpDataTable)
	b.add("System.Data", "DataTable", KindBean,
		HintWildcard|HintCaseCollidingFields, []Field{
			{Name: "tableName", Kind: FieldString},
			{Name: "TableName", Kind: FieldString},
		})
	b.gen.reserve(CSharpDataTableCollection)
	b.add("System.Data", "DataTableCollection", KindBean,
		HintWildcard|HintCaseCollidingFields, []Field{
			{Name: "count", Kind: FieldInt},
			{Name: "Count", Kind: FieldInt},
		})
	b.gen.reserve(CSharpDataSet)
	b.add("System.Data", "DataSet", KindBean, HintWildcard, []Field{
		{Name: "dataSetName", Kind: FieldString},
	})

	// --- SocketError: Axis2 duplicate-variable compile error.
	b.gen.reserve(CSharpSocketError)
	b.add("System.Net.Sockets", "SocketError", KindBean,
		HintCaseCollidingFields, []Field{
			{Name: "nativeErrorCode", Kind: FieldInt},
			{Name: "NativeErrorCode", Kind: FieldInt},
		})

	// --- DataSet-style schema-reference family (fails WS-I). The
	// 76 hard classes split into the tool-breaking structural subsets;
	// the first plain class carries the double xml:lang (drawing the
	// single .NET-language warning), and small nillable/minOccurs=0
	// slices draw the Zend and suds warnings.
	addSchemaRef := func(n int, extra Hint, mutate func(i int, c *Class)) {
		for i := 0; i < n; i++ {
			pkg, simple := b.gen.next("Set")
			b.add(pkg, simple, KindBean, HintLangAttr|extra, nil)
			if mutate != nil {
				mutate(i, &b.classes[len(b.classes)-1])
			}
		}
	}
	addSchemaRef(CSharpSchemaRefNested, HintSchemaRefHard|HintSchemaRefNested, nil)
	addSchemaRef(CSharpSchemaRefWithAny, HintSchemaRefHard|HintSchemaRefWithAny, nil)
	addSchemaRef(CSharpSchemaRefUnbounded, HintSchemaRefHard|HintSchemaRefUnbounded, nil)
	addSchemaRef(CSharpSchemaRefPlain, HintSchemaRefHard, func(i int, c *Class) {
		switch {
		case i == 0:
			c.Hints |= HintDoubleLang
		case i >= 1 && i <= 8:
			c.Hints |= HintNillableRef
		case i >= 9 && i <= 16:
			c.Hints |= HintOptionalRef
		}
	})
	addSchemaRef(CSharpSchemaRefBenign, 0, nil)

	// --- WebControls: VB method/parameter collisions.
	webControls := []string{"GridViewRowSet", "ListItemBag", "MenuItemSlab", "TreeNodeCrate"}
	for _, simple := range webControls {
		b.gen.reserve("System.Web.UI.WebControls." + simple)
		b.add("System.Web.UI.WebControls", simple, KindBean, HintEchoField,
			[]Field{
				{Name: "echo", Kind: FieldString},
				{Name: "text", Kind: FieldString},
			})
	}

	// --- JScript compiler crashers: deeply nested inline types.
	b.addGenerated(CSharpDeepNesting, "", KindBean, HintDeepNesting, nil)

	// --- plain bindable filler.
	named := CSharpWildcardClasses + 1 + CSharpEchoClasses // DataSet family + SocketError + WebControls
	filler := CSharpBindable - named - CSharpSchemaRefTotal - CSharpDeepNesting
	b.addGenerated(filler, "", KindBean, 0, nil)

	// --- unbindable populations.
	unbindable := CSharpTotal - CSharpBindable
	quota := []struct {
		n    int
		kind Kind
	}{
		{3000, KindInterface},
		{2000, KindAbstract},
		{4000, KindGeneric},
		{1500, KindStatic},
		{unbindable - 10500, KindDelegate},
	}
	for _, q := range quota {
		b.addGenerated(q.n, "", q.kind, 0, nil)
	}

	c := &Catalog{Language: CSharp, Classes: b.classes}
	return c.finish()
}
