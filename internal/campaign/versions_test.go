package campaign

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wsinterop/internal/framework"
	"wsinterop/internal/obs"
	"wsinterop/internal/soap"
)

func runVersions(t *testing.T, cfg Config) *VersionResult {
	t.Helper()
	res, err := NewRunner(cfg).RunVersions(context.Background())
	if err != nil {
		t.Fatalf("versions run: %v", err)
	}
	return res
}

// versionBytes serializes a VersionResult for byte comparison.
func versionBytes(t *testing.T, res *VersionResult) []byte {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal version result: %v", err)
	}
	return data
}

// TestVersionsScaled checks the matrix semantics on the default
// roster, whose three servers all declare StrictReject: pure 1.1
// accepts everywhere invocable, 1.2 and hybrid requests are refused
// with typed errors by every client, and the hybrid-fault wire is
// never reported as success — the coerce-strictness clients swallow
// it as silent-mishandle, everyone else surfaces the fault.
func TestVersionsScaled(t *testing.T) {
	res := runVersions(t, limitedConfig(robustLimit(80)))
	if len(res.ServerOrder) != 3 {
		t.Fatalf("servers = %v", res.ServerOrder)
	}
	if want := []string{"v11", "v12", "hybrid-headers", "hybrid-fault"}; !reflect.DeepEqual(res.Scenarios, want) {
		t.Fatalf("scenarios = %v, want %v", res.Scenarios, want)
	}

	totals := res.Totals()
	if totals.Cells == 0 {
		t.Fatal("no cells executed")
	}
	if sum := totals.Skipped + totals.Accepted + totals.Rejected + totals.Mishandled; sum != totals.Cells {
		t.Errorf("outcome buckets (%d) do not partition cells (%d)", sum, totals.Cells)
	}

	st := res.ScenarioTotals()
	exchanged := func(c *VersionCounts) int { return c.Cells - c.Skipped }

	// Pure 1.1 is the baseline: every exchanged cell accepts.
	if c := st["v11"]; c.Accepted != exchanged(c) || c.Rejected != 0 || c.Mishandled != 0 {
		t.Errorf("v11 column = %+v, want all %d exchanged cells accepted", c, exchanged(c))
	}
	// Against strict hosts, a 1.2 or hybrid request draws a
	// VersionMismatch fault that every client strictness surfaces.
	for _, name := range []string{"v12", "hybrid-headers"} {
		if c := st[name]; c.Rejected != exchanged(c) || c.Accepted != 0 || c.Mishandled != 0 {
			t.Errorf("%s column = %+v, want all %d exchanged cells typed-rejected", name, c, exchanged(c))
		}
	}
	// The headline acceptance property: a wire-relayed fault in the
	// wrong version vocabulary is never reported as success.
	hf := st["hybrid-fault"]
	if hf.Accepted != 0 {
		t.Errorf("hybrid-fault accepted cells = %d, want 0; column = %+v", hf.Accepted, hf)
	}
	if hf.Rejected == 0 || hf.Mishandled == 0 {
		t.Errorf("hybrid-fault column = %+v, want both typed rejects and mishandles on the mixed-strictness roster", hf)
	}

	// Mishandling is exactly the SilentCoerce clients' hybrid-fault
	// cells: a coerce client parses the 1.2 fault as data, everyone
	// else rejects it, and no other scenario mishandles on this
	// all-strict server roster.
	ns := len(res.Scenarios)
	for _, name := range res.ClientOrder {
		c := res.Clients[name]
		perScenario := exchanged(c) / ns
		want := 0
		if framework.VersionStrictness(name) == soap.SilentCoerce {
			want = perScenario
		}
		if c.Mishandled != want {
			t.Errorf("client %s: mishandled = %d, want %d (strictness %s)",
				name, c.Mishandled, want, framework.VersionStrictness(name))
		}
	}

	// The per-client breakdown re-sums to the matrix totals.
	var clientCells int
	for _, name := range res.ClientOrder {
		clientCells += res.Clients[name].Cells
	}
	if clientCells != totals.Cells {
		t.Errorf("client cells (%d) != matrix cells (%d)", clientCells, totals.Cells)
	}
}

// TestVersionMatrixEquivalence is the determinism acceptance check:
// worker count, scheduling, and the shape-memo ablation must never
// change a cell of the version matrix.
func TestVersionMatrixEquivalence(t *testing.T) {
	limit := 200
	if testing.Short() {
		limit = 60
	}
	run := func(workers int, nodedup bool) *VersionResult {
		res, err := NewRunner(Config{Limit: limit, Workers: workers, NoDedup: nodedup}).
			RunVersions(context.Background())
		if err != nil {
			t.Fatalf("run (workers=%d nodedup=%v): %v", workers, nodedup, err)
		}
		return res
	}
	base := run(4, false)
	baseBytes := versionBytes(t, base)
	for _, v := range []struct {
		label   string
		workers int
		nodedup bool
	}{
		{"serial", 1, false},
		{"parallel", 8, false},
		{"nodedup", 4, true},
	} {
		if got := versionBytes(t, run(v.workers, v.nodedup)); string(got) != string(baseBytes) {
			t.Errorf("matrix differs under %s execution", v.label)
		}
	}
}

// TestVersionsResume is the kill-point matrix for the versions
// journal: interrupt at several append counts, resume, and require
// the byte-identical matrix of a clean run.
func TestVersionsResume(t *testing.T) {
	limit := robustLimit(40)
	clean := runVersions(t, Config{Limit: limit, Workers: 4})
	cleanBytes := versionBytes(t, clean)

	for _, killAt := range []int{1, 5, -1} {
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		cfg := Config{Limit: limit, Workers: 4, Checkpoint: dir}
		if killAt > 0 {
			cfg.checkpointProbe = func(appended int) {
				if appended == killAt {
					cancel()
				}
			}
		}
		_, err := NewRunner(cfg).RunVersions(ctx)
		cancel()
		if killAt < 0 && err != nil {
			t.Fatalf("uninterrupted checkpointed run: %v", err)
		}
		// A cancellation racing the end of the run may still complete;
		// either way the journal resumes below.

		resumed, rerr := NewRunner(Config{Limit: limit, Workers: 4, Checkpoint: dir, Resume: true}).
			RunVersions(context.Background())
		if rerr != nil {
			t.Fatalf("resume (killAt=%d): %v", killAt, rerr)
		}
		if got := versionBytes(t, resumed); string(got) != string(cleanBytes) {
			t.Errorf("resumed matrix (killAt=%d) differs from clean run", killAt)
		}
	}
}

// TestVersionsResumeRefusesDrift: a versions journal written under a
// different configuration (here: strictness-bearing fingerprint with
// another limit) is refused, not silently merged.
func TestVersionsResumeRefusesDrift(t *testing.T) {
	dir := t.TempDir()
	limit := 4
	if _, err := NewRunner(Config{Limit: limit, Workers: 2, Checkpoint: dir}).
		RunVersions(context.Background()); err != nil {
		t.Fatalf("seed run: %v", err)
	}
	_, err := NewRunner(Config{Limit: limit + 1, Workers: 2, Checkpoint: dir, Resume: true}).
		RunVersions(context.Background())
	if err == nil || !strings.Contains(err.Error(), "different campaign configuration") {
		t.Errorf("drifted resume error = %v, want fingerprint refusal", err)
	}
}

// TestVersionsShardMerge: two shard workers journal their slices, the
// coordinator merges, and the merged matrix equals a single-process
// run. PathCollisions is deploy-set-dependent bookkeeping (documented
// on MergeVersions) and is normalized out of the comparison.
func TestVersionsShardMerge(t *testing.T) {
	limit := robustLimit(37)
	const n = 2
	base := t.TempDir()
	dirs := make([]string, n)
	for i := 0; i < n; i++ {
		dirs[i] = filepath.Join(base, "shard", string(rune('a'+i)))
		cfg := Config{Limit: limit, Workers: 2, Checkpoint: dirs[i],
			Shard: ShardSpec{Index: i, Count: n}}
		if _, err := NewRunner(cfg).RunVersions(context.Background()); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	merged, err := MergeVersions(context.Background(), dirs, WithLimit(limit))
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	full := runVersions(t, Config{Limit: limit, Workers: 4})
	merged.PathCollisions, full.PathCollisions = 0, 0
	if got, want := versionBytes(t, merged), versionBytes(t, full); string(got) != string(want) {
		t.Errorf("merged matrix differs from single-process run:\nmerged: %s\nfull:   %s", got, want)
	}

	// Merge guards: a drifted configuration is refused by fingerprint,
	// and a coordinator cannot itself be sharded.
	if _, err := MergeVersions(context.Background(), dirs, WithLimit(limit+1)); err == nil {
		t.Error("drifted merge configuration not refused")
	}
	if _, err := MergeVersions(context.Background(), dirs, WithLimit(limit),
		WithShard(0, n)); err == nil {
		t.Error("sharded coordinator not refused")
	}
}

// TestVersionsMergeRefusesIncomplete: a shard journal without its
// completion sentinels cannot be merged.
func TestVersionsMergeRefusesIncomplete(t *testing.T) {
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Limit: 6, Workers: 2, Checkpoint: dir}
	cfg.checkpointProbe = func(appended int) {
		if appended == 1 {
			cancel()
		}
	}
	if _, err := NewRunner(cfg).RunVersions(ctx); err == nil {
		// The tiny run may outrace the cancel; only an actually
		// interrupted journal exercises the guard.
		t.Skip("run completed before the kill point")
	}
	_, err := MergeVersions(context.Background(), []string{dir}, WithLimit(6))
	if err == nil || !strings.Contains(err.Error(), "resume the shard") {
		t.Errorf("incomplete merge error = %v, want completion refusal", err)
	}
}

// TestVersionsObservability: the serial fold lands the matrix in the
// campaign.versions.* counters exactly.
func TestVersionsObservability(t *testing.T) {
	reg := obs.NewRegistry()
	res, err := NewRunner(Config{Limit: 2, Workers: 2, Obs: reg}).RunVersions(context.Background())
	if err != nil {
		t.Fatalf("versions: %v", err)
	}
	totals := res.Totals()
	for name, want := range map[string]int{
		"campaign.versions.skipped":          totals.Skipped,
		"campaign.versions.accepted":         totals.Accepted,
		"campaign.versions.typed_reject":     totals.Rejected,
		"campaign.versions.silent_mishandle": totals.Mishandled,
	} {
		if got := reg.Counter(name).Value(); got != int64(want) {
			t.Errorf("%s counter = %d, matrix says %d", name, got, want)
		}
	}
}

func TestVersionsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewRunner(limitedConfig(300)).RunVersions(ctx); err == nil {
		t.Error("cancelled context should abort")
	}
}

// TestVersionOutcomeRoundTrip: the String form is the journal
// encoding, so it must parse back exactly.
func TestVersionOutcomeRoundTrip(t *testing.T) {
	for _, o := range []VersionOutcome{VersionSkipped, VersionAccepted, VersionTypedReject, VersionMishandled} {
		s := o.String()
		if s == "" || strings.HasPrefix(s, "Version") {
			t.Errorf("outcome %d has no friendly name: %q", o, s)
		}
		back, err := parseVersionOutcome(s)
		if err != nil || back != o {
			t.Errorf("parse(%q) = %v, %v; want %v", s, back, err, o)
		}
	}
	if _, err := parseVersionOutcome("bogus"); err == nil {
		t.Error("bogus outcome parsed")
	}
}
