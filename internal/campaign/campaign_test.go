package campaign

import (
	"context"
	"testing"
)

// TestFullCampaignReproducesPaper runs the complete campaign — all
// 22 024 services, all eleven clients — and asserts the aggregate
// numbers of the paper's Fig. 4 and headline statistics (see
// DESIGN.md §3 for the canonical reconstruction).
func TestFullCampaignReproducesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign skipped in -short mode")
	}
	res, err := NewRunner(Config{}).Run(context.Background())
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}

	if got, want := res.TotalServices, 22024; got != want {
		t.Errorf("total services = %d, want %d", got, want)
	}
	if got, want := res.TotalPublished, 7239; got != want {
		t.Errorf("published services = %d, want %d", got, want)
	}
	if got, want := res.TotalTests, 79629; got != want {
		t.Errorf("total tests = %d, want %d", got, want)
	}
	if got, want := res.FlaggedServices, 86; got != want {
		t.Errorf("description-step warnings = %d, want %d", got, want)
	}
	if got, want := res.FlaggedCleanServices, 4; got != want {
		t.Errorf("flagged services clean everywhere = %d, want %d", got, want)
	}
	if got, want := res.SameFrameworkErrors, 307; got != want {
		t.Errorf("same-framework errors = %d, want %d", got, want)
	}
	if got, want := res.InteropErrors, 1588; got != want {
		t.Errorf("interoperability errors = %d, want %d", got, want)
	}

	wantServers := map[string]ServerSummary{
		"Metro": {
			Created: 3971, Deployed: 2489,
			DescriptionWarnings: 2, Tests: 27379,
			GenWarnings: 2489, GenErrors: 13,
			CompileWarnings: 4978, CompileErrors: 529,
		},
		"JBossWS CXF": {
			Created: 3971, Deployed: 2248,
			DescriptionWarnings: 4, Tests: 24728,
			GenWarnings: 2255, GenErrors: 21,
			CompileWarnings: 4496, CompileErrors: 464,
		},
		"WCF .NET": {
			Created: 14082, Deployed: 2502,
			DescriptionWarnings: 80, Tests: 27522,
			GenWarnings: 19, GenErrors: 253,
			CompileWarnings: 5004, CompileErrors: 308,
		},
	}
	for name, want := range wantServers {
		got := res.Servers[name]
		if got == nil {
			t.Errorf("missing server summary %q", name)
			continue
		}
		if *got != want {
			t.Errorf("server %s summary:\n got %+v\nwant %+v", name, *got, want)
		}
	}

	// Table III generation-error cells (DESIGN.md §3.2).
	wantGenErrors := map[string]map[string]int{
		"Metro":             {"Metro": 1, "JBossWS CXF": 3, "WCF .NET": 79},
		"Apache Axis1":      {"Metro": 1, "JBossWS CXF": 1, "WCF .NET": 2},
		"Apache Axis2":      {"Metro": 1, "JBossWS CXF": 2, "WCF .NET": 0},
		"Apache CXF":        {"Metro": 1, "JBossWS CXF": 1, "WCF .NET": 79},
		"JBossWS CXF":       {"Metro": 1, "JBossWS CXF": 1, "WCF .NET": 79},
		".NET C#":           {"Metro": 2, "JBossWS CXF": 4, "WCF .NET": 0},
		".NET Visual Basic": {"Metro": 2, "JBossWS CXF": 4, "WCF .NET": 0},
		".NET JScript":      {"Metro": 2, "JBossWS CXF": 4, "WCF .NET": 0},
		"gSOAP":             {"Metro": 1, "JBossWS CXF": 1, "WCF .NET": 13},
		"Zend Framework":    {"Metro": 0, "JBossWS CXF": 0, "WCF .NET": 0},
		"suds":              {"Metro": 1, "JBossWS CXF": 0, "WCF .NET": 1},
	}
	for client, row := range wantGenErrors {
		for server, want := range row {
			cell := res.Matrix[client][server]
			if cell == nil {
				t.Errorf("missing matrix cell %s × %s", client, server)
				continue
			}
			if cell.GenErrors != want {
				t.Errorf("gen errors %s × %s = %d, want %d", client, server, cell.GenErrors, want)
			}
		}
	}

	// Table III compilation cells (DESIGN.md §3.3).
	wantCompile := map[string]map[string][2]int{ // [warnings, errors]
		"Apache Axis1":      {"Metro": {2489, 477}, "JBossWS CXF": {2248, 412}, "WCF .NET": {2502, 0}},
		"Apache Axis2":      {"Metro": {2489, 1}, "JBossWS CXF": {2248, 1}, "WCF .NET": {2502, 3}},
		".NET Visual Basic": {"Metro": {0, 1}, "JBossWS CXF": {0, 1}, "WCF .NET": {0, 4}},
		".NET JScript":      {"Metro": {0, 50}, "JBossWS CXF": {0, 50}, "WCF .NET": {0, 301}},
		"Metro":             {"Metro": {0, 0}, "JBossWS CXF": {0, 0}, "WCF .NET": {0, 0}},
		"Apache CXF":        {"Metro": {0, 0}, "JBossWS CXF": {0, 0}, "WCF .NET": {0, 0}},
		"gSOAP":             {"Metro": {0, 0}, "JBossWS CXF": {0, 0}, "WCF .NET": {0, 0}},
	}
	for client, row := range wantCompile {
		for server, want := range row {
			cell := res.Matrix[client][server]
			if cell == nil {
				t.Errorf("missing matrix cell %s × %s", client, server)
				continue
			}
			if cell.CompileWarnings != want[0] || cell.CompileErrors != want[1] {
				t.Errorf("compile %s × %s = %d/%d warnings/errors, want %d/%d",
					client, server, cell.CompileWarnings, cell.CompileErrors, want[0], want[1])
			}
		}
	}

	// Generation-warning columns (DESIGN.md §3.4).
	wantGenWarnings := map[string]map[string]int{
		".NET JScript":   {"Metro": 2489, "JBossWS CXF": 2248, "WCF .NET": 1},
		"Zend Framework": {"Metro": 0, "JBossWS CXF": 4, "WCF .NET": 8},
		"suds":           {"Metro": 0, "JBossWS CXF": 3, "WCF .NET": 8},
		".NET C#":        {"Metro": 0, "JBossWS CXF": 0, "WCF .NET": 1},
	}
	for client, row := range wantGenWarnings {
		for server, want := range row {
			if got := res.Matrix[client][server].GenWarnings; got != want {
				t.Errorf("gen warnings %s × %s = %d, want %d", client, server, got, want)
			}
		}
	}
}
