package campaign

import (
	"context"
	"reflect"
	"testing"

	"wsinterop/internal/faultinject"
	"wsinterop/internal/soap"
)

// robustLimit shrinks the corpus in -short mode (the -race CI step)
// while keeping every test running — the fault matrix must stay
// exercised under the race detector.
func robustLimit(full int) int {
	if testing.Short() {
		return full / 3
	}
	return full
}

func TestRobustnessScaled(t *testing.T) {
	res, err := NewRunner(limitedConfig(robustLimit(80))).RunRobustness(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.ServerOrder) != 3 {
		t.Fatalf("servers = %v", res.ServerOrder)
	}
	if len(res.Faults) != len(faultinject.Catalog()) {
		t.Fatalf("fault rows = %v", res.Faults)
	}

	totals := res.Totals()
	if totals.Cells == 0 {
		t.Fatal("no cells executed")
	}
	sum := totals.Skipped + totals.Detected + totals.Masked + totals.WrongSuccess + totals.Recovered
	if sum != totals.Cells {
		t.Errorf("outcome buckets (%d) do not partition cells (%d)", sum, totals.Cells)
	}

	// The headline acceptance property: after the status-blind fix, no
	// wire-signaled failure is ever reported as success.
	if totals.WrongSuccess != 0 {
		t.Errorf("wrong-success cells = %d, want 0; totals = %+v", totals.WrongSuccess, totals)
	}
	if totals.Detected == 0 {
		t.Error("hard faults should be detected")
	}
	if totals.Recovered == 0 {
		t.Error("the transient abort-once fault should be recovered by retry")
	}
	if totals.Masked == 0 {
		t.Error("the benign faults (wrong content type, delay) should be masked")
	}

	// Per-fault expectations on this corpus.
	ft := res.FaultTotals()
	exchanged := func(c *RobustCounts) int { return c.Cells - c.Skipped }
	for _, name := range []string{"truncate", "html-error", "status-500", "empty-body", "oversize", "dup-child", "rename-child", "abort"} {
		c := ft[name]
		if c.Detected != exchanged(c) {
			t.Errorf("%s: detected = %d, want %d (every exchanged cell)", name, c.Detected, exchanged(c))
		}
	}
	for _, name := range []string{"wrong-content-type", "delay"} {
		c := ft[name]
		if c.Masked != exchanged(c) {
			t.Errorf("%s: masked = %d, want %d (benign fault)", name, c.Masked, exchanged(c))
		}
	}
	if c := ft["abort-once"]; c.Recovered != exchanged(c) {
		t.Errorf("abort-once: recovered = %d, want %d", c.Recovered, exchanged(c))
	}

	// The per-client breakdown re-sums to the matrix totals.
	var clientCells int
	for _, name := range res.ClientOrder {
		clientCells += res.Clients[name].Cells
	}
	if clientCells != totals.Cells {
		t.Errorf("client cells (%d) != matrix cells (%d)", clientCells, totals.Cells)
	}
}

// TestRobustnessDeterministicAcrossWorkers is the acceptance criterion
// for the matrix: scheduling must never change a cell.
func TestRobustnessDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) *RobustResult {
		res, err := NewRunner(Config{Limit: robustLimit(60), Workers: workers}).RunRobustness(context.Background())
		if err != nil {
			t.Fatalf("run (workers=%d): %v", workers, err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("matrix differs between 1 and 8 workers:\nserial:   %+v\nparallel: %+v",
			serial.Totals(), parallel.Totals())
	}
}

// TestRobustnessReparseEquivalence checks the cache ablation: routing
// WSDL analysis through the shared cache or re-parsing bytes per cell
// must produce the same matrix.
func TestRobustnessReparseEquivalence(t *testing.T) {
	run := func(reparse bool) *RobustResult {
		res, err := NewRunner(Config{Limit: robustLimit(60), Workers: 4, Reparse: reparse}).RunRobustness(context.Background())
		if err != nil {
			t.Fatalf("run (reparse=%v): %v", reparse, err)
		}
		return res
	}
	if cached, reparsed := run(false), run(true); !reflect.DeepEqual(cached, reparsed) {
		t.Errorf("matrix differs between shared-analysis and reparse modes:\ncached:   %+v\nreparsed: %+v",
			cached.Totals(), reparsed.Totals())
	}
}

func TestRobustnessCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewRunner(limitedConfig(300)).RunRobustness(ctx); err == nil {
		t.Error("cancelled context should abort")
	}
}

func TestRobustOutcomeString(t *testing.T) {
	for _, o := range []RobustOutcome{RobustSkipped, RobustDetected, RobustMasked, RobustWrongSuccess, RobustRecovered} {
		if s := o.String(); s == "" || s[0] == 'R' {
			t.Errorf("outcome %d has no friendly name: %q", o, s)
		}
	}
}

// TestClassifyRobustWrongSuccessGuards exercises the two wrong-success
// triggers directly: success against a MustError fault, and a
// well-shaped echo whose probe value was corrupted.
func TestClassifyRobustWrongSuccessGuards(t *testing.T) {
	shape := func(probe string) *robustExchange {
		return &robustExchange{
			resp:      &soap.Message{Local: "echoResponse", Fields: map[string]string{"input": probe}},
			wantLocal: "echoResponse", sent: map[string]string{"input": "ping"},
			probeField: "input",
		}
	}
	mustErr := faultinject.Fault{Name: "status-500", MustError: true}
	if got := classifyRobust(mustErr, 1, shape("ping"), nil); got != RobustWrongSuccess {
		t.Errorf("success against MustError fault = %v, want wrong-success", got)
	}
	benign := faultinject.Fault{Name: "dup-value", MustError: false}
	if got := classifyRobust(benign, 1, shape("pingx"), nil); got != RobustWrongSuccess {
		t.Errorf("corrupted probe echo = %v, want wrong-success", got)
	}
	if got := classifyRobust(benign, 1, shape("ping"), nil); got != RobustMasked {
		t.Errorf("clean benign exchange = %v, want masked", got)
	}
	if got := classifyRobust(benign, 2, shape("ping"), nil); got != RobustRecovered {
		t.Errorf("multi-attempt success = %v, want recovered", got)
	}
}
