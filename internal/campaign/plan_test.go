package campaign

// Tests for shape-first planned execution and the plan cache
// (plan.go). The planner must be invisible in every observable output:
// a planned campaign's Result is byte-identical to the lazy class-first
// ablation's (Config.NoPlan), its counters and histograms DeepEqual
// after stripping the plan's own bookkeeping, and a cache file that is
// stale, corrupt, or hostile degrades to a fresh build — never to a
// wrong plan.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wsinterop/internal/obs"
	"wsinterop/internal/shape"
)

// stripPlan drops the campaign.plan.* bookkeeping counters before a
// planned-vs-lazy comparison: the lazy ablation never builds a plan,
// so they necessarily differ.
func stripPlan(counters []obs.CounterSnapshot) []obs.CounterSnapshot {
	kept := make([]obs.CounterSnapshot, 0, len(counters))
	for _, c := range counters {
		if strings.HasPrefix(c.Name, "campaign.plan.") {
			continue
		}
		kept = append(kept, c)
	}
	return kept
}

func comparePlanSnapshots(t *testing.T, label string, lazy, planned *obs.Snapshot) {
	t.Helper()
	a := stripPlan(stripJournal(lazy.Counters))
	b := stripPlan(stripJournal(planned.Counters))
	if !reflect.DeepEqual(a, b) {
		t.Errorf("%s: counters differ:\nlazy:    %+v\nplanned: %+v", label, a, b)
	}
	if !reflect.DeepEqual(lazy.Histograms, planned.Histograms) {
		t.Errorf("%s: histograms differ:\nlazy:    %+v\nplanned: %+v", label, lazy.Histograms, planned.Histograms)
	}
}

// lazyBaseline runs the class-first ablation once and returns its
// Result, serialized bytes, and metrics snapshot.
func lazyBaseline(t *testing.T, limit int) (*Result, []byte, *obs.Snapshot) {
	t.Helper()
	cfg := resumeConfig(limit, 4)
	cfg.NoPlan = true
	res, err := NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatalf("lazy baseline: %v", err)
	}
	return res, resultBytes(t, res), cfg.Obs.Snapshot()
}

func comparePlanned(t *testing.T, label string, lazy *Result, lazyBytes []byte, lazySnap *obs.Snapshot,
	res *Result, snap *obs.Snapshot) {
	t.Helper()
	compareResults(t, lazy, res)
	if !reflect.DeepEqual(lazy.Dedup, res.Dedup) {
		t.Errorf("%s: dedup stats differ:\nlazy:    %+v\nplanned: %+v", label, lazy.Dedup, res.Dedup)
	}
	if got := resultBytes(t, res); string(got) != string(lazyBytes) {
		t.Errorf("%s: serialized Result is not byte-identical to the lazy run", label)
	}
	comparePlanSnapshots(t, label, lazySnap, snap)
}

// runPlanMatrix is the shared planned-vs-lazy matrix: the planned
// executor at workers 1 and 8, resumed from a mid-run interruption,
// and merged from a 2-way shard split — every variant byte-identical
// to the lazy ablation.
func runPlanMatrix(t *testing.T, limit int) {
	lazy, lazyBytes, lazySnap := lazyBaseline(t, limit)

	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := resumeConfig(limit, workers)
			res, err := NewRunner(cfg).Run(context.Background())
			if err != nil {
				t.Fatalf("planned run: %v", err)
			}
			comparePlanned(t, t.Name(), lazy, lazyBytes, lazySnap, res, cfg.Obs.Snapshot())
		})
	}

	t.Run("resumed", func(t *testing.T) {
		dir := t.TempDir()
		interruptAt(t, resumeConfig(limit, 8), dir, lazy.TotalServices/2)
		res, snap := resume(t, resumeConfig(limit, 8), dir)
		comparePlanned(t, t.Name(), lazy, lazyBytes, lazySnap, res, snap)
	})

	t.Run("sharded", func(t *testing.T) {
		dirs := runShardWorkers(t, limit, 4, 2, -1, 0)
		res, snap := mergeShardJournals(t, limit, 4, dirs)
		comparePlanned(t, t.Name(), lazy, lazyBytes, lazySnap, res, snap)
	})
}

func TestPlanEquivalenceScaled(t *testing.T) {
	runPlanMatrix(t, 150)
}

// TestPlanEquivalenceFull is the acceptance check at full study scale:
// all 22 024 service cells on the planned executor, against the lazy
// ablation, plus the resumed and sharded variants.
func TestPlanEquivalenceFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale plan equivalence skipped in -short mode")
	}
	runPlanMatrix(t, 0)
}

// TestPlanPartition pins the planner's structural invariants: every
// definition index appears in exactly one group or the loose list,
// builders lead their groups in catalog order, every member hashes to
// its group's fingerprint, and the plan summary's accounting is an
// exact identity.
func TestPlanPartition(t *testing.T) {
	r := NewRunner(Config{Limit: 200, Workers: 4})
	p, err := r.ensurePlan()
	if err != nil {
		t.Fatalf("ensurePlan: %v", err)
	}
	if p.source != "built" {
		t.Errorf("plan source = %q, want built", p.source)
	}
	for _, server := range r.servers {
		sp := p.servers[server.Name()]
		if sp == nil {
			t.Fatalf("no stage plan for %s", server.Name())
		}
		defs, err := r.defsFor(server)
		if err != nil {
			t.Fatal(err)
		}
		if sp.Defs != len(defs) {
			t.Fatalf("%s: plan covers %d defs, catalog has %d", sp.Server, sp.Defs, len(defs))
		}
		seen := make([]bool, len(defs))
		claim := func(i int) {
			if i < 0 || i >= len(defs) || seen[i] {
				t.Fatalf("%s: index %d out of range or claimed twice", sp.Server, i)
			}
			seen[i] = true
		}
		for gi := range sp.Groups {
			g := &sp.Groups[gi]
			if len(g.Members) == 0 {
				t.Fatalf("%s: group %d is empty", sp.Server, gi)
			}
			prev := -1
			for _, di := range g.Members {
				claim(di)
				if di <= prev {
					t.Errorf("%s group %d: members not in catalog order: %v", sp.Server, gi, g.Members)
				}
				prev = di
				if shape.Of(defs[di]) != g.fp {
					t.Errorf("%s group %d: member %d does not hash to the group shape", sp.Server, gi, di)
				}
			}
			for mi, di := range g.Members {
				if g.safe[mi] != substitutionSafe(defs[di]) {
					t.Errorf("%s group %d: member %d safety mask is wrong", sp.Server, gi, di)
				}
			}
		}
		for _, di := range sp.Loose {
			claim(di)
			if shape.Memoizable(defs[di]) {
				t.Errorf("%s: loose member %d is memoizable", sp.Server, di)
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("%s: index %d not covered", sp.Server, i)
			}
		}
	}

	sum, err := r.PlanSummary()
	if err != nil {
		t.Fatalf("PlanSummary: %v", err)
	}
	if sum.Classes != p.classes || sum.Shapes != p.shapes {
		t.Errorf("summary totals %d/%d, plan has %d/%d", sum.Classes, sum.Shapes, p.classes, p.shapes)
	}
	for _, row := range sum.Servers {
		if row.Classes != row.Shapes+row.Clones+row.Unsafe+row.Loose {
			t.Errorf("%s: %d classes != %d shapes + %d clones + %d unsafe + %d loose",
				row.Server, row.Classes, row.Shapes, row.Clones, row.Unsafe, row.Loose)
		}
	}

	// NoDedup plans are all loose.
	nd := NewRunner(Config{Limit: 50, NoDedup: true})
	np, err := nd.ensurePlan()
	if err != nil {
		t.Fatalf("NoDedup ensurePlan: %v", err)
	}
	for name, sp := range np.servers {
		if len(sp.Groups) != 0 || len(sp.Loose) != sp.Defs {
			t.Errorf("%s: NoDedup plan has %d groups, %d of %d loose",
				name, len(sp.Groups), len(sp.Loose), sp.Defs)
		}
	}

	// The full-scale shape count is the §6.6 study invariant.
	if !testing.Short() {
		full := NewRunner(Config{})
		fsum, err := full.PlanSummary()
		if err != nil {
			t.Fatalf("full PlanSummary: %v", err)
		}
		if fsum.Classes != 22024 || fsum.Shapes != 4856 {
			t.Errorf("full plan = %d classes in %d shapes, want 22024 in 4856", fsum.Classes, fsum.Shapes)
		}
	}
}

// planCounter reads one campaign.plan.* counter from a registry.
func planCounter(reg *obs.Registry, name string) int64 {
	return reg.Counter(name).Value()
}

// TestPlanCacheReuse proves the cache round trip: the first run builds
// and stores (one miss, one build), the second loads (one hit, no
// build) and produces a byte-identical Result.
func TestPlanCacheReuse(t *testing.T) {
	cache := t.TempDir()
	first := resumeConfig(80, 4)
	first.PlanCache = cache
	a, err := NewRunner(first).Run(context.Background())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	if b, m, h := planCounter(first.Obs, "campaign.plan.builds"), planCounter(first.Obs, "campaign.plan.cache.misses"),
		planCounter(first.Obs, "campaign.plan.cache.hits"); b != 1 || m != 1 || h != 0 {
		t.Errorf("first run: builds=%d misses=%d hits=%d, want 1/1/0", b, m, h)
	}

	second := resumeConfig(80, 4)
	second.PlanCache = cache
	b, err := NewRunner(second).Run(context.Background())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if bu, m, h := planCounter(second.Obs, "campaign.plan.builds"), planCounter(second.Obs, "campaign.plan.cache.misses"),
		planCounter(second.Obs, "campaign.plan.cache.hits"); bu != 0 || m != 0 || h != 1 {
		t.Errorf("second run: builds=%d misses=%d hits=%d, want 0/0/1", bu, m, h)
	}
	compareResults(t, a, b)
	if got, want := resultBytes(t, b), resultBytes(t, a); string(got) != string(want) {
		t.Error("cached-plan Result is not byte-identical to the building run's")
	}

	// A different configuration must miss: its fingerprint names a file
	// that does not exist yet.
	other := resumeConfig(60, 4)
	other.PlanCache = cache
	if _, err := NewRunner(other).Run(context.Background()); err != nil {
		t.Fatalf("other-config run: %v", err)
	}
	if m, h := planCounter(other.Obs, "campaign.plan.cache.misses"), planCounter(other.Obs, "campaign.plan.cache.hits"); m != 1 || h != 0 {
		t.Errorf("other config: misses=%d hits=%d, want 1/0", m, h)
	}
}

// TestSharedPlan proves the in-process sharing path: a plan resolved
// by one runner is adopted by a second with the same configuration
// (no build, one shared-plan credit, byte-identical Result), and a
// plan for any other configuration is refused before it can execute.
func TestSharedPlan(t *testing.T) {
	base := resumeConfig(80, 4)
	a, err := NewRunner(base).Run(context.Background())
	if err != nil {
		t.Fatalf("building run: %v", err)
	}
	plan, err := NewRunner(resumeConfig(80, 4)).ExecutionPlan()
	if err != nil {
		t.Fatalf("ExecutionPlan: %v", err)
	}
	if plan.Fingerprint() == "" {
		t.Fatal("shared plan has no fingerprint")
	}

	second := resumeConfig(80, 4)
	r := NewRunner(second)
	if err := r.AdoptPlan(plan); err != nil {
		t.Fatalf("AdoptPlan: %v", err)
	}
	b, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("adopting run: %v", err)
	}
	if bu, sh := planCounter(second.Obs, "campaign.plan.builds"), planCounter(second.Obs, "campaign.plan.shared"); bu != 0 || sh != 1 {
		t.Errorf("adopting run: builds=%d shared=%d, want 0/1", bu, sh)
	}
	sum, err := r.PlanSummary()
	if err != nil {
		t.Fatalf("PlanSummary: %v", err)
	}
	if sum.Source != "shared" {
		t.Errorf("plan source = %q, want shared", sum.Source)
	}
	compareResults(t, a, b)
	if got, want := resultBytes(t, b), resultBytes(t, a); string(got) != string(want) {
		t.Error("shared-plan Result is not byte-identical to the building run's")
	}

	// Wrong configuration: refused up front, never executed.
	if err := NewRunner(resumeConfig(60, 4)).AdoptPlan(plan); err == nil {
		t.Error("AdoptPlan accepted a plan for a different configuration")
	}
	// NoPlan ablation: nothing to adopt into.
	noplan := resumeConfig(80, 4)
	noplan.NoPlan = true
	if err := NewRunner(noplan).AdoptPlan(plan); err == nil {
		t.Error("AdoptPlan accepted a plan under NoPlan")
	}
	if _, err := NewRunner(noplan).ExecutionPlan(); err == nil {
		t.Error("ExecutionPlan succeeded under NoPlan")
	}
}

// cachedPlanFile locates the single plan file a primed cache holds.
func cachedPlanFile(t *testing.T, cache string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(cache, "plan-*.json"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("plan cache holds %d files (%v)", len(matches), err)
	}
	return matches[0]
}

// TestPlanCacheInvalidation tampers with a primed cache file in every
// way the loader guards against and proves each one degrades to a
// fresh build — rejected counter bumped, Result identical, and the
// rebuilt plan healing the cache file for the next run.
func TestPlanCacheInvalidation(t *testing.T) {
	const limit = 80
	_, cleanBytes, _ := lazyBaseline(t, limit)

	// rewrite unmarshals the primed file, lets the case mutate it, and
	// re-marshals with a consistent digest — so the tamper under test is
	// the only defect the loader can object to.
	rewrite := func(t *testing.T, path string, mutate func(env *planFile, servers []*serverPlan)) {
		t.Helper()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var env planFile
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		var servers []*serverPlan
		if err := json.Unmarshal(env.Servers, &servers); err != nil {
			t.Fatal(err)
		}
		mutate(&env, servers)
		raw, err := json.Marshal(servers)
		if err != nil {
			t.Fatal(err)
		}
		env.Servers = raw
		env.Digest = planDigest(raw)
		out, err := json.Marshal(&env)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, out, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name   string
		tamper func(t *testing.T, path string)
	}{
		{"fingerprint-mismatch", func(t *testing.T, path string) {
			rewrite(t, path, func(env *planFile, _ []*serverPlan) { env.Fingerprint = "deadbeefdeadbeef" })
		}},
		{"version-skew", func(t *testing.T, path string) {
			rewrite(t, path, func(env *planFile, _ []*serverPlan) { env.Version = 99 })
		}},
		{"truncated", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("{definitely not a plan"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"digest-mismatch", func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip one byte inside the servers payload without touching
			// the recorded digest.
			i := strings.Index(string(data), `"members":[`)
			if i < 0 {
				t.Fatal("no members array to corrupt")
			}
			data[i+len(`"members":[`)] ^= 0x01
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"stale-shape", func(t *testing.T, path string) {
			rewrite(t, path, func(_ *planFile, servers []*serverPlan) {
				// A fingerprint from a different shape algorithm: valid hex,
				// right length, wrong value — the builder re-hash must catch
				// it even though the digest is consistent.
				servers[0].Groups[0].FP = strings.Repeat("ab", 32)
			})
		}},
		{"index-out-of-range", func(t *testing.T, path string) {
			rewrite(t, path, func(_ *planFile, servers []*serverPlan) {
				servers[0].Groups[0].Members[0] = 1 << 20
			})
		}},
		{"index-claimed-twice", func(t *testing.T, path string) {
			rewrite(t, path, func(_ *planFile, servers []*serverPlan) {
				servers[0].Loose = append(servers[0].Loose, servers[0].Groups[0].Members[0])
			})
		}},
		{"unsafe-out-of-range", func(t *testing.T, path string) {
			rewrite(t, path, func(_ *planFile, servers []*serverPlan) {
				servers[0].Groups[0].Unsafe = append(servers[0].Groups[0].Unsafe, 99)
			})
		}},
		{"stale-safety-mask", func(t *testing.T, path string) {
			rewrite(t, path, func(_ *planFile, servers []*serverPlan) {
				// Mark a genuinely safe member unsafe: the recomputed
				// predicate disagrees and the plan is refused.
				servers[0].Groups[0].Unsafe = append(servers[0].Groups[0].Unsafe, 0)
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cache := t.TempDir()
			prime := resumeConfig(limit, 4)
			prime.PlanCache = cache
			if _, err := NewRunner(prime).Run(context.Background()); err != nil {
				t.Fatalf("priming run: %v", err)
			}
			path := cachedPlanFile(t, cache)
			tc.tamper(t, path)

			cfg := resumeConfig(limit, 4)
			cfg.PlanCache = cache
			res, err := NewRunner(cfg).Run(context.Background())
			if err != nil {
				t.Fatalf("run with tampered cache: %v", err)
			}
			if rej, b := planCounter(cfg.Obs, "campaign.plan.cache.rejected"), planCounter(cfg.Obs, "campaign.plan.builds"); rej != 1 || b != 1 {
				t.Errorf("rejected=%d builds=%d, want 1/1", rej, b)
			}
			if got := resultBytes(t, res); string(got) != string(cleanBytes) {
				t.Error("Result after cache rejection is not byte-identical to the baseline")
			}

			// The rebuild heals the file: a third run loads it cleanly.
			again := resumeConfig(limit, 4)
			again.PlanCache = cache
			if _, err := NewRunner(again).Run(context.Background()); err != nil {
				t.Fatalf("run after heal: %v", err)
			}
			if h, rej := planCounter(again.Obs, "campaign.plan.cache.hits"), planCounter(again.Obs, "campaign.plan.cache.rejected"); h != 1 || rej != 0 {
				t.Errorf("after heal: hits=%d rejected=%d, want 1/0", h, rej)
			}
		})
	}
}

// FuzzPlanCache throws hostile bytes at the cache loader. The safety
// property: loadCachedPlan either errors (the caller rebuilds) or
// returns a plan structurally identical to a fresh build — it must
// never accept a file that would change execution.
func FuzzPlanCache(f *testing.F) {
	// Seed with the real file and near-miss mutations of it.
	seedCfg := Config{Limit: 30, Workers: 1, PlanCache: f.TempDir()}
	r := NewRunner(seedCfg)
	fp := r.planFingerprint()
	p, err := r.buildPlan(fp)
	if err != nil {
		f.Fatal(err)
	}
	if err := r.storePlan(p); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(r.planCachePath(fp))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"version":1,"fingerprint":"x","digest":"y","servers":[]}`))
	f.Add(valid[:len(valid)/3])
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)/2] ^= 0xff
	f.Add(mutated)

	fresh, err := r.buildPlan(fp)
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if err := os.WriteFile(r.planCachePath(fp), data, 0o644); err != nil {
			t.Fatal(err)
		}
		loaded, err := r.loadCachedPlan(fp)
		if err != nil {
			return // rejected: the runner would rebuild
		}
		if len(loaded.servers) != len(fresh.servers) {
			t.Fatalf("accepted plan has %d stages, fresh build %d", len(loaded.servers), len(fresh.servers))
		}
		for name, want := range fresh.servers {
			got := loaded.servers[name]
			if got == nil {
				t.Fatalf("accepted plan is missing stage %s", name)
			}
			if got.Defs != want.Defs || len(got.Groups) != len(want.Groups) || !reflect.DeepEqual(got.Loose, want.Loose) {
				t.Fatalf("accepted stage %s differs from fresh build", name)
			}
			for gi := range want.Groups {
				if !reflect.DeepEqual(got.Groups[gi].Members, want.Groups[gi].Members) ||
					got.Groups[gi].fp != want.Groups[gi].fp ||
					!reflect.DeepEqual(got.Groups[gi].safe, want.Groups[gi].safe) {
					t.Fatalf("accepted stage %s group %d differs from fresh build", name, gi)
				}
			}
		}
	})
}
