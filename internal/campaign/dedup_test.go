package campaign

import (
	"bytes"
	"context"
	"testing"

	"wsinterop/internal/shape"
	"wsinterop/internal/wsdl"
)

// These tests enforce the structural-shape memo contract (DESIGN.md
// §6.6): a campaign that content-addresses classes by shape and
// performs publish/WS-I/client-test work once per (server, shape) must
// produce a Result identical — every headline statistic, the full
// Table III matrix, and the failure index — to one that processes
// every class individually (Config.NoDedup, the ablation).

// runDedupPair executes the same campaign twice, memoized and
// per-class (with different worker counts, so scheduling differences
// are covered too), and fails on any divergence.
func runDedupPair(t *testing.T, dedup, nodedup Config) {
	t.Helper()
	nodedup.NoDedup = true
	a, err := NewRunner(dedup).Run(context.Background())
	if err != nil {
		t.Fatalf("dedup run: %v", err)
	}
	b, err := NewRunner(nodedup).Run(context.Background())
	if err != nil {
		t.Fatalf("nodedup run: %v", err)
	}
	compareResults(t, a, b)
	if !a.Dedup.Enabled {
		t.Error("dedup run should report Dedup.Enabled")
	}
	if b.Dedup.Enabled || *b.Dedup != (DedupStats{}) {
		t.Errorf("nodedup run should report zero stats, got %+v", *b.Dedup)
	}
	if a.Dedup.Shapes == 0 || a.Dedup.PublishMemoized == 0 || a.Dedup.TestMemoized == 0 {
		t.Errorf("memo layer did not engage: %+v", *a.Dedup)
	}
}

func TestDedupEquivalenceScaled(t *testing.T) {
	runDedupPair(t,
		Config{Limit: 200, Workers: 4, KeepFailures: true},
		Config{Limit: 200, Workers: 2, KeepFailures: true})
}

// TestDedupEquivalenceReparse covers the ablation cross-product: the
// memo must also be invisible when clients re-parse bytes per test.
func TestDedupEquivalenceReparse(t *testing.T) {
	runDedupPair(t,
		Config{Limit: 150, Workers: 4, KeepFailures: true, Reparse: true},
		Config{Limit: 150, Workers: 2, KeepFailures: true, Reparse: true})
}

func TestDedupEquivalenceFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale equivalence skipped in -short mode")
	}
	a, err := NewRunner(Config{KeepFailures: true}).Run(context.Background())
	if err != nil {
		t.Fatalf("dedup run: %v", err)
	}
	b, err := NewRunner(Config{KeepFailures: true, NoDedup: true}).Run(context.Background())
	if err != nil {
		t.Fatalf("nodedup run: %v", err)
	}
	compareResults(t, a, b)

	// The paper's full-scale invariants must hold on both paths.
	for _, res := range []*Result{a, b} {
		if res.TotalServices != 22024 {
			t.Errorf("services created = %d, want 22024", res.TotalServices)
		}
		if res.TotalPublished != 7239 {
			t.Errorf("published = %d, want 7239", res.TotalPublished)
		}
		if res.TotalTests != 79629 {
			t.Errorf("tests = %d, want 79629", res.TotalTests)
		}
		if res.InteropErrors != 1588 {
			t.Errorf("interop errors = %d, want 1588", res.InteropErrors)
		}
		if res.SameFrameworkErrors != 307 {
			t.Errorf("same-framework errors = %d, want 307", res.SameFrameworkErrors)
		}
	}
	// At full scale the corpus must compress hard and no shape may
	// fail its byte-for-byte template verification.
	if a.Dedup.Fallbacks != 0 {
		t.Errorf("template verification fallbacks = %d, want 0", a.Dedup.Fallbacks)
	}
	if a.Dedup.Shapes == 0 || a.Dedup.Shapes >= a.Dedup.PublishTotal/2 {
		t.Errorf("poor shape compression: %d shapes for %d publishes", a.Dedup.Shapes, a.Dedup.PublishTotal)
	}
}

// TestDedupPublishBytes proves the byte-level half of the contract at
// full catalog scale: every published document, flag, and compliance
// verdict from the memoized path is identical to the per-class path.
func TestDedupPublishBytes(t *testing.T) {
	limit := 0
	if testing.Short() {
		limit = 500
	}
	ctx := context.Background()
	dedup := NewRunner(Config{Limit: limit, Workers: 4})
	direct := NewRunner(Config{Limit: limit, Workers: 4, NoDedup: true})
	for i, server := range dedup.servers {
		a, createdA, err := dedup.Publish(ctx, server)
		if err != nil {
			t.Fatalf("dedup publish on %s: %v", server.Name(), err)
		}
		b, createdB, err := direct.Publish(ctx, direct.servers[i])
		if err != nil {
			t.Fatalf("direct publish on %s: %v", server.Name(), err)
		}
		if createdA != createdB || len(a) != len(b) {
			t.Fatalf("%s: created %d/%d published %d/%d", server.Name(), createdA, createdB, len(a), len(b))
		}
		for j := range a {
			if a[j].Class != b[j].Class {
				t.Fatalf("%s service %d: class %q != %q", server.Name(), j, a[j].Class, b[j].Class)
			}
			if !bytes.Equal(a[j].Doc, b[j].Doc) {
				t.Errorf("%s %s: memoized document differs from direct marshal", server.Name(), a[j].Class)
			}
			if a[j].Flagged != b[j].Flagged || a[j].Compliant != b[j].Compliant {
				t.Errorf("%s %s: flagged/compliant %v/%v != %v/%v", server.Name(), a[j].Class,
					a[j].Flagged, a[j].Compliant, b[j].Flagged, b[j].Compliant)
			}
		}
	}
}

// TestDedupWorkerStability asserts the memoized Result — including the
// shape census — is independent of worker count and therefore of
// scheduling and map iteration order.
func TestDedupWorkerStability(t *testing.T) {
	cfgs := []Config{
		{Limit: 200, Workers: 1, KeepFailures: true},
		{Limit: 200, Workers: 8, KeepFailures: true},
	}
	results := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := NewRunner(cfg).Run(context.Background())
		if err != nil {
			t.Fatalf("workers=%d: %v", cfg.Workers, err)
		}
		results[i] = res
	}
	compareResults(t, results[0], results[1])
	if results[0].Dedup.Shapes != results[1].Dedup.Shapes {
		t.Errorf("shape census depends on workers: %d vs %d",
			results[0].Dedup.Shapes, results[1].Dedup.Shapes)
	}
}

// TestShapeTemplateSubstitution is the property test behind the memo:
// two definitions with equal fingerprints must produce byte-identical
// WSDL documents after name substitution. For every shape group in the
// corpus slice, a template split from the sentinel publish must
// re-render every member's direct per-class marshal exactly.
func TestShapeTemplateSubstitution(t *testing.T) {
	r := NewRunner(Config{})
	for _, server := range r.servers {
		defs, err := r.defsFor(server)
		if err != nil {
			t.Fatal(err)
		}
		if len(defs) > 400 {
			defs = defs[:400]
		}
		groups := make(map[shape.Fingerprint][]int)
		for i, def := range defs {
			if shape.Memoizable(def) {
				fp := shape.Of(def)
				groups[fp] = append(groups[fp], i)
			}
		}
		shapes, rejected := 0, 0
		for _, members := range groups {
			sdef, svars := shape.Sentinel(defs[members[0]])
			sdoc, err := server.Publish(sdef)
			if err != nil {
				// NotDeployable is structural: every member must agree.
				rejected++
				for _, i := range members {
					if _, err := server.Publish(defs[i]); err == nil {
						t.Errorf("%s: sentinel rejected but %s deploys", server.Name(), defs[i].Parameter.Name)
					}
				}
				continue
			}
			tmpl, err := wsdl.MarshalTemplate(sdoc, svars)
			if err != nil {
				t.Fatalf("%s: split template: %v", server.Name(), err)
			}
			shapes++
			for _, i := range members {
				doc, err := server.Publish(defs[i])
				if err != nil {
					t.Errorf("%s: sentinel deploys but %s rejected", server.Name(), defs[i].Parameter.Name)
					continue
				}
				want, err := wsdl.Marshal(doc)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tmpl.Render(shape.Vars(defs[i]))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Errorf("%s %s: rendered document differs from direct marshal",
						server.Name(), defs[i].Parameter.Name)
				}
			}
		}
		if shapes == 0 && rejected == 0 {
			t.Errorf("%s: no shape groups exercised", server.Name())
		}
	}
}

// TestDedupCommunicationEquivalence asserts the memo layer is
// invisible to the communication extension, whose endpoint derivation
// is name-dependent (per-class paths must not collide just because
// classes share a shape).
func TestDedupCommunicationEquivalence(t *testing.T) {
	run := func(cfg Config) *CommResult {
		t.Helper()
		res, err := NewRunner(cfg).RunCommunication(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run(Config{Limit: 120, Workers: 4})
	b := run(Config{Limit: 120, Workers: 4, NoDedup: true})
	for _, server := range a.ServerOrder {
		if *a.Servers[server] != *b.Servers[server] {
			t.Errorf("comm %s: dedup %+v != nodedup %+v", server, *a.Servers[server], *b.Servers[server])
		}
	}
	for _, client := range a.ClientOrder {
		if *a.Clients[client] != *b.Clients[client] {
			t.Errorf("comm client %s: dedup %+v != nodedup %+v", client, *a.Clients[client], *b.Clients[client])
		}
	}
}
