package campaign

// Distributed campaign execution (DESIGN.md §11). The campaign is
// embarrassingly parallel across catalog slices, and the durable cell
// journal (checkpoint.go, internal/journal) is already a complete,
// content-addressed record of a slice's outcomes — so scale-out is
// journal-shaped: a planner splits every catalog into deterministic
// shard leases, N worker processes each run one shard under its own
// checkpoint directory, and a merge coordinator folds the shard
// journals back into one Result.
//
// The determinism contract is the regression guard: the merged Result
// and its obs counters are identical to a single-process run's. Replay
// (replayService) already reconstructs exact counter contributions per
// journal record; what merging adds is normalization. Each shard runs
// its own shape memo, so a shape spanning k shards was built k times —
// k "built" records and k executed test sets where a single process
// would have one builder and k-1 memo-served clones. normalizeShards
// rewrites every (server, shape) group of journaled cells into that
// single-builder form before replay; the rewrite is counter-exact
// because builder choice is invariant (the builder contributes
// shapes+1 plus the full publish metrics, every other same-shape class
// contributes one memo hit — the checkpoint.go invariant), and
// outcomes are invariant because same-shape classes classify
// identically (the memo layer's verified property).

import (
	"context"
	"fmt"
	"strconv"

	"wsinterop/internal/journal"
	"wsinterop/internal/obs"
	"wsinterop/internal/services"
	"wsinterop/internal/shape"
	"wsinterop/internal/wsi"
)

// ShardSpec is one worker's lease on a deterministic slice of the
// campaign: catalog definition indexes congruent to Index modulo
// Count (after Config.Limit). The zero value means "the whole
// campaign". Lease, when set, is the content-addressed lease ID the
// planner issued; a runner refuses a lease minted for a different
// campaign configuration, so a spec cannot silently be replayed
// against the wrong catalog or roster.
type ShardSpec struct {
	Index int
	Count int
	Lease string
}

// enabled reports whether the spec selects a proper slice.
func (s ShardSpec) enabled() bool { return s.Count != 0 }

// validate checks the slice bounds.
func (s ShardSpec) validate() error {
	if !s.enabled() {
		if s.Index != 0 || s.Lease != "" {
			return fmt.Errorf("campaign: shard spec %d/%d is not a slice", s.Index, s.Count)
		}
		return nil
	}
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("campaign: shard %d/%d out of range (want 0 <= index < count)", s.Index, s.Count)
	}
	return nil
}

// String renders the CLI form, index/count.
func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index, s.Count) }

// shardLease content-addresses one shard lease: the campaign
// configuration fingerprint plus the slice coordinates.
func shardLease(fingerprint string, index, count int) string {
	return obs.TraceID("shard-lease", fingerprint, strconv.Itoa(index), strconv.Itoa(count))
}

// PlanShards splits the runner's configured campaign into n shard
// leases. The specs are deterministic and content-addressed: planning
// the same configuration twice — on different machines — yields the
// same leases, so workers need no coordinator beyond agreeing on the
// configuration. Each spec is ready for a worker runner
// (WithShard/Config.Shard) or the CLI form `interop -shard i/n`.
func (r *Runner) PlanShards(n int) ([]ShardSpec, error) {
	if n < 1 {
		return nil, fmt.Errorf("campaign: cannot plan %d shards", n)
	}
	if r.cfg.Shard.enabled() {
		return nil, fmt.Errorf("campaign: cannot re-plan from sharded configuration %s", r.cfg.Shard)
	}
	fp := r.checkpointFingerprint()
	specs := make([]ShardSpec, n)
	for i := range specs {
		specs[i] = ShardSpec{Index: i, Count: n, Lease: shardLease(fp, i, n)}
	}
	return specs, nil
}

// Merge folds the shard journals under dirs into one campaign Result,
// using a runner built from opts — which must describe the exact
// campaign the shards ran (the configuration fingerprint is verified).
// The package-level convenience form of Runner.Merge.
func Merge(ctx context.Context, dirs []string, opts ...Option) (*Result, error) {
	return New(opts...).Merge(ctx, dirs)
}

// Merge folds completed shard journals into one Result identical to a
// single-process run of the same configuration
// (TestDistributedEquivalenceFull proves this at full scale). Every
// shard must have run to completion — an interrupted shard is resumed
// in place (Config.Resume) before merging, and incompleteness is
// refused with the missing cell named. The merge itself executes
// nothing: it verifies the journals tile the campaign exactly once,
// normalizes cross-shard memo state, and replays.
func (r *Runner) Merge(ctx context.Context, dirs []string) (*Result, error) {
	if len(dirs) == 0 {
		return nil, fmt.Errorf("campaign: merge needs at least one shard journal directory")
	}
	if r.cfg.Shard.enabled() {
		return nil, fmt.Errorf("campaign: the merge coordinator runs unsharded (drop shard %s)", r.cfg.Shard)
	}
	if r.cfg.Checkpoint != "" || r.cfg.Resume {
		return nil, fmt.Errorf("campaign: merge reads shard journals; it does not take its own Checkpoint/Resume")
	}
	loaded, err := r.loadShardJournals(dirs)
	if err != nil {
		return nil, err
	}
	if err := r.checkMergeComplete(loaded); err != nil {
		return nil, err
	}
	if err := r.normalizeShards(loaded); err != nil {
		return nil, err
	}
	// Replay-only checkpoint state: every cell is in loaded, so the
	// streaming pool executes nothing and the journal writer side (j,
	// ch) stays nil — append is nil-channel-safe and closeCheckpoint is
	// never involved because runCampaign is entered directly.
	r.ckpt = &checkpointState{
		loaded:   loaded,
		resumed:  r.obs.Counter("journal.cells.resumed"),
		executed: r.obs.Counter("journal.cells.executed"),
	}
	defer func() { r.ckpt = nil }()
	return r.runCampaign(ctx)
}

// loadShardJournals reads every shard journal, verifies the set tiles
// this runner's campaign exactly once (fingerprint, lease, shard
// indexes), and unions the records, refusing overlap.
func (r *Runner) loadShardJournals(dirs []string) (map[string]journal.Record, error) {
	fp := r.checkpointFingerprint()
	metas := make([]*journal.Meta, 0, len(dirs))
	loaded := make(map[string]journal.Record)
	for _, dir := range dirs {
		meta, recs, err := journal.Load(dir)
		if err != nil {
			return nil, err
		}
		if meta.Fingerprint != fp {
			return nil, fmt.Errorf("%w: %s (merge must be invoked with the exact configuration the shards ran)",
				journal.ErrFingerprint, dir)
		}
		if sh := meta.Shard; sh != nil && sh.Lease != "" {
			if want := shardLease(fp, sh.Index, sh.Count); sh.Lease != want {
				return nil, fmt.Errorf("campaign: %s: lease %s was not issued for shard %d/%d of this campaign",
					dir, sh.Lease, sh.Index, sh.Count)
			}
		}
		metas = append(metas, meta)
		for _, rec := range recs {
			if prev, dup := loaded[rec.Trace]; dup {
				return nil, fmt.Errorf("campaign: shard journals overlap: cell %s (%s on %s) journaled twice",
					rec.Trace, prev.Class, prev.Server)
			}
			loaded[rec.Trace] = rec
		}
	}
	if err := journal.CheckShards(metas); err != nil {
		return nil, err
	}
	return loaded, nil
}

// checkMergeComplete verifies every cell of the campaign is journaled,
// so the merge replays everything and executes nothing. A missing cell
// means its shard was interrupted; the fix is resuming that shard to
// completion, not silently re-executing inside the coordinator.
func (r *Runner) checkMergeComplete(loaded map[string]journal.Record) error {
	for _, server := range r.servers {
		defs, err := r.defsFor(server)
		if err != nil {
			return err
		}
		for i := range defs {
			class := defs[i].Parameter.Name
			if _, ok := loaded[cellTrace(server.Name(), class)]; !ok {
				return fmt.Errorf("campaign: shard journals are incomplete: no cell for %s on %s — resume the owning shard to completion first",
					class, server.Name())
			}
		}
	}
	return nil
}

// shardMember is one journaled cell within a (server, shape) group.
type shardMember struct {
	trace string
	def   services.Definition
	rec   journal.Record
}

// normalizeShards rewrites the unioned shard records into the form a
// single-process run would have journaled: one builder per (server,
// shape), every other member demoted to its memo-served mode, and
// exactly one executed test set per (shape, client). A no-op for the
// nodedup ablation, whose journals contain only per-class records that
// are already shard-invariant.
func (r *Runner) normalizeShards(loaded map[string]journal.Record) error {
	if !r.dedupOn() {
		return nil
	}
	for _, server := range r.servers {
		defs, err := r.defsFor(server)
		if err != nil {
			return err
		}
		groups := make(map[shape.Fingerprint][]shardMember)
		var order []shape.Fingerprint
		for i := range defs {
			if !shape.Memoizable(defs[i]) {
				continue
			}
			trace := cellTrace(server.Name(), defs[i].Parameter.Name)
			rec, ok := loaded[trace]
			if !ok {
				continue // checkMergeComplete already refused; stay safe
			}
			fp := shape.Of(defs[i])
			if len(groups[fp]) == 0 {
				order = append(order, fp)
			}
			groups[fp] = append(groups[fp], shardMember{trace: trace, def: defs[i], rec: rec})
		}
		for _, fp := range order {
			if err := normalizeShapeGroup(server.Name(), groups[fp], loaded); err != nil {
				return err
			}
		}
	}
	return nil
}

// normalizeShapeGroup folds one (server, shape) group: the designated
// builder is the group's first builder record in catalog order — any
// builder works, the totals are builder-invariant — and every other
// builder is demoted to the memo route it would have taken had the
// designated builder's shard entry been visible to it. Executed test
// flags consolidate onto the builder: one Ran per (shape, client).
func normalizeShapeGroup(server string, group []shardMember, loaded map[string]journal.Record) error {
	builderAt := -1
	for i := range group {
		if group[i].rec.Mode != modeBuilt.id() {
			continue
		}
		if builderAt == -1 {
			builderAt = i
			continue
		}
		// Cross-shard consistency: independent builders of one shape must
		// agree on every shape-level fact, or the journals were produced
		// by diverging builds and the merge would be fiction.
		a, b := group[builderAt].rec, group[i].rec
		if a.Published != b.Published || a.Verified != b.Verified ||
			a.Flagged != b.Flagged || a.Compliant != b.Compliant ||
			!equalProfiles(a.Profiles, b.Profiles) {
			return fmt.Errorf("campaign: shard journals disagree on the shape of %s and %s on %s",
				a.Class, b.Class, server)
		}
	}
	if builderAt == -1 {
		// Every shard builds a shape before memo-serving it, so a group
		// whose cells are all memo-served has no owning builder anywhere —
		// mismatched journals.
		return fmt.Errorf("campaign: no shard journaled a builder for the shape of %s on %s",
			group[0].rec.Class, server)
	}
	builder := group[builderAt].rec
	for i := range group {
		if i == builderAt {
			continue
		}
		rec := group[i].rec
		switch rec.Mode {
		case modeDirect.id(), modeFallback.id():
			// Memoizable classes never take these routes; a journal that
			// says otherwise disagrees with this build's shape guard.
			return fmt.Errorf("campaign: journal record %s (%s on %s) took route %q for a memoizable class",
				rec.Trace, rec.Class, server, rec.Mode)
		}
		switch {
		case !builder.Published:
			rec.Mode = modeMemoRejected.id()
			rec.Published, rec.Verified = false, false
			rec.Flagged, rec.Compliant = false, false
			rec.Profiles = nil
			rec.Doc, rec.Tests = nil, nil
		case builder.Verified && substitutionSafe(group[i].def):
			rec.Mode = modeMemoized.id()
			rec.Verified = false
			rec.Doc = nil
			for ti := range rec.Tests {
				rec.Tests[ti].Ran = false
			}
		default:
			// Unverified shape, or name-sensitive WS-I predicates refuse
			// the substitution: the per-class path, executed in full.
			rec.Mode = modeMemoFallback.id()
			rec.Verified = false
			rec.Doc = nil
			for ti := range rec.Tests {
				rec.Tests[ti].Ran = true
			}
		}
		loaded[group[i].trace] = rec
	}
	if builder.Published && builder.Verified {
		// The single process's builder executes every client test once;
		// its same-shape clones are all memo-served.
		for ti := range builder.Tests {
			builder.Tests[ti].Ran = true
		}
		loaded[group[builderAt].trace] = builder
	}
	return nil
}

// equalProfiles compares two journaled per-profile verdict lists.
// Profile IDs are written in roster order by every shard (the
// fingerprint pins the roster), so element-wise equality is the right
// comparison.
func equalProfiles(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// substitutionSafe reports whether the class's name-derived strings
// pass the WS-I chunk predicates — the publishOne condition for
// serving a clone from the shape template (DESIGN.md §10).
func substitutionSafe(def services.Definition) bool {
	vars := shape.VarsArray(def)
	return wsi.SubstitutionSafe(vars[shape.SlotService], vars[shape.SlotNamespace], vars[shape.SlotSimple])
}
