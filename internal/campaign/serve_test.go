package campaign

// Tests for the campaign daemon (serve.go): the NDJSON campaign
// stream, campaign multiplexing, the status/report resources, and
// publishing a class's WSDL — plus its live SOAP endpoint — over real
// TCP through transport.Host.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wsinterop/internal/framework"
	"wsinterop/internal/soap"
	"wsinterop/internal/transport"
	"wsinterop/internal/typesys"
)

// postCampaign streams one campaign through the daemon and returns the
// decoded NDJSON lines.
func postCampaign(t *testing.T, base, spec string) []map[string]any {
	t.Helper()
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /campaigns: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /campaigns: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	var lines []map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("stream line %q does not parse: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if len(lines) == 0 {
		t.Fatal("stream produced no lines")
	}
	return lines
}

func TestDaemonCampaignStream(t *testing.T) {
	d := NewDaemon(nil)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	lines := postCampaign(t, ts.URL, `{"limit":30,"server":"Metro","workers":2}`)

	if lines[0]["type"] != "accepted" {
		t.Fatalf("first line = %v, want accepted", lines[0])
	}
	id, _ := lines[0]["id"].(string)
	if id == "" {
		t.Fatal("accepted line has no id")
	}
	last := lines[len(lines)-1]
	if last["type"] != "result" {
		t.Fatalf("last line = %v, want result", last)
	}
	progressed := 0
	for _, line := range lines[1 : len(lines)-1] {
		if line["type"] != "progress" {
			t.Errorf("mid-stream line type = %v, want progress", line["type"])
			continue
		}
		progressed++
	}
	if progressed == 0 {
		t.Error("stream carried no progress lines")
	}

	// The streamed summary must match a direct library run of the same
	// configuration — the daemon adds transport, not behavior.
	ref, err := New(WithLimit(30), WithServers(framework.NewMetroServer()), WithWorkers(2)).Run(context.Background())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	summary, _ := last["summary"].(map[string]any)
	for key, want := range map[string]int{
		"totalServices":  ref.TotalServices,
		"totalPublished": ref.TotalPublished,
		"totalTests":     ref.TotalTests,
		"interopErrors":  ref.InteropErrors,
	} {
		if got := int(summary[key].(float64)); got != want {
			t.Errorf("summary %s = %d, want %d", key, got, want)
		}
	}

	// Status and report resources for the finished campaign.
	var status JobStatus
	getJSON(t, ts.URL+"/campaigns/"+id, &status)
	if status.State != "done" || status.ID != id {
		t.Errorf("status = %+v, want done/%s", status, id)
	}
	var list []JobStatus
	getJSON(t, ts.URL+"/campaigns", &list)
	if len(list) != 1 || list[0].ID != id {
		t.Errorf("campaign list = %+v, want one entry %s", list, id)
	}
	var rep struct {
		Result struct {
			TotalServices int
			TotalTests    int
		} `json:"result"`
		Metrics struct {
			Counters []struct {
				Name  string `json:"name"`
				Value int64  `json:"value"`
			} `json:"counters"`
		} `json:"metrics"`
	}
	getJSON(t, ts.URL+"/campaigns/"+id+"/report", &rep)
	if rep.Result.TotalServices != ref.TotalServices || rep.Result.TotalTests != ref.TotalTests {
		t.Errorf("report result = %+v, want totals %d/%d", rep.Result, ref.TotalServices, ref.TotalTests)
	}
	if len(rep.Metrics.Counters) == 0 {
		t.Error("report carries no metrics counters")
	}
}

// getJSON fetches url and decodes the response into v.
func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestDaemonMultiplexesCampaigns: two concurrent campaigns on one
// daemon, each on its own registry, both completing with their own
// results.
func TestDaemonMultiplexesCampaigns(t *testing.T) {
	d := NewDaemon(nil)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	specs := []string{
		`{"limit":20,"server":"Metro"}`,
		`{"limit":20,"server":"WCF"}`,
	}
	results := make([][]map[string]any, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = postCampaign(t, ts.URL, spec)
		}()
	}
	wg.Wait()

	ids := make(map[string]bool)
	for i, lines := range results {
		last := lines[len(lines)-1]
		if last["type"] != "result" {
			t.Errorf("campaign %d ended with %v, want result", i, last)
		}
		ids[lines[0]["id"].(string)] = true
	}
	if len(ids) != len(specs) {
		t.Errorf("campaign ids not unique: %v", ids)
	}
	var list []JobStatus
	getJSON(t, ts.URL+"/campaigns", &list)
	if len(list) != len(specs) {
		t.Fatalf("campaign list has %d entries, want %d", len(list), len(specs))
	}
	for _, st := range list {
		if st.State != "done" {
			t.Errorf("campaign %s state = %q, want done", st.ID, st.State)
		}
	}
}

func TestDaemonRequestErrors(t *testing.T) {
	d := NewDaemon(nil)
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	post := func(body string) int {
		t.Helper()
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST: %v", err)
		}
		defer func() { _ = resp.Body.Close() }()
		return resp.StatusCode
	}
	for body, want := range map[string]int{
		"not json":         http.StatusBadRequest,
		`{"bogus":1}`:      http.StatusBadRequest, // unknown fields are refused
		`{"server":"zzz"}`: http.StatusBadRequest,
		`{"client":"zzz"}`: http.StatusBadRequest,
		`{"limit":-1}`:     http.StatusBadRequest,
	} {
		if got := post(body); got != want {
			t.Errorf("POST %q status = %d, want %d", body, got, want)
		}
	}

	for _, tc := range []struct {
		method, path string
		want         int
	}{
		{http.MethodGet, "/campaigns/c9999", http.StatusNotFound},
		{http.MethodGet, "/campaigns/c9999/report", http.StatusNotFound},
		{http.MethodPut, "/campaigns", http.StatusMethodNotAllowed},
		{http.MethodDelete, "/campaigns/c9999", http.StatusMethodNotAllowed},
		{http.MethodGet, "/services", http.StatusMethodNotAllowed},
		{http.MethodGet, "/healthz", http.StatusOK},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", tc.method, tc.path, err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s status = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
}

// TestDaemonServesWSDLOverTCP is the daemon acceptance check for the
// transport half: POST /services publishes a class on a framework, and
// both its WSDL and its live SOAP endpoint answer over a real TCP
// listener (transport.Host), not the in-process LocalBridge.
func TestDaemonServesWSDLOverTCP(t *testing.T) {
	d := NewDaemon(nil)
	base, err := d.Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("daemon start: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d.Shutdown(ctx); err != nil {
			t.Errorf("daemon shutdown: %v", err)
		}
	}()

	// A clean bean publishes without interop flags on every framework.
	cat := typesys.JavaCatalog()
	var class string
	for i := range cat.Classes {
		if cat.Classes[i].Kind == typesys.KindBean && cat.Classes[i].Hints == 0 {
			class = cat.Classes[i].Name
			break
		}
	}
	if class == "" {
		t.Fatal("no clean bean in the Java catalog")
	}

	publish := func() (pub struct {
		Path, WSDL, Namespace string
		AlreadyDeployed       bool `json:"alreadyDeployed"`
	}) {
		t.Helper()
		body := fmt.Sprintf(`{"server":"metro","class":%q}`, class)
		resp, err := http.Post(base+"/services", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /services: %v", err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /services: status %d", resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(&pub); err != nil {
			t.Fatalf("publish response: %v", err)
		}
		return pub
	}

	pub := publish()
	if pub.AlreadyDeployed {
		t.Error("first publish reported alreadyDeployed")
	}

	// The WSDL over TCP.
	resp, err := http.Get(base + pub.WSDL)
	if err != nil {
		t.Fatalf("GET %s: %v", pub.WSDL, err)
	}
	wsdlBytes := make([]byte, 1<<20)
	n, _ := resp.Body.Read(wsdlBytes)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(wsdlBytes[:n]), "definitions") {
		t.Fatalf("GET %s: status %d, body %q", pub.WSDL, resp.StatusCode, wsdlBytes[:n])
	}

	// The live SOAP endpoint over TCP.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	reply, err := transport.NewClient(nil).Invoke(ctx, base+pub.Path, "", &soap.Message{
		Namespace: pub.Namespace,
		Local:     "echo",
		Fields:    map[string]string{"input": "ping"},
	})
	if err != nil {
		t.Fatalf("SOAP invoke: %v", err)
	}
	if v, _ := reply.Field("input"); v != "ping" {
		t.Errorf("echoed value = %q, want ping", v)
	}

	// Publishing the same class again is idempotent.
	if again := publish(); !again.AlreadyDeployed || again.Path != pub.Path {
		t.Errorf("re-publish = %+v, want alreadyDeployed at %s", again, pub.Path)
	}

	// Unknown classes and ambiguous server names are refused.
	for body, want := range map[string]int{
		`{"server":"metro","class":"NoSuchClass"}`:     http.StatusNotFound,
		fmt.Sprintf(`{"server":"","class":%q}`, class): http.StatusBadRequest,
	} {
		resp, err := http.Post(base+"/services", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /services: %v", err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("POST %s status = %d, want %d", body, resp.StatusCode, want)
		}
	}
}

// TestDaemonShutdownStopsServing: after Shutdown the listener is
// closed and new connections are refused.
func TestDaemonShutdownStopsServing(t *testing.T) {
	d := NewDaemon(nil)
	base, err := d.Start("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("daemon start: %v", err)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz before shutdown: %v", err)
	}
	_ = resp.Body.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("daemon still serving after Shutdown")
	}
}
