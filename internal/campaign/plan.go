package campaign

// Shape-first planned execution (DESIGN.md §12). The lazy memo layer
// (dedup.go) discovers shapes while executing: every worker hashes its
// class, takes the table mutex, and races a sync.Once for the builder
// role. That discovery is pure bookkeeping — the shape partition of a
// catalog is a deterministic function of the campaign configuration —
// so the planner computes it once, up front, into an immutable Plan:
// per server, the catalog's definition indexes grouped by shape
// fingerprint, each group's builder designated (the first member in
// catalog order), and the members whose names fail the substitution-
// safety predicates marked for the per-class path.
//
// Execution then inverts from class-first to shape-first: workers own
// whole groups, so the table mutex is taken exactly once per stage
// (resolveEntries), no sync.Once races ever occur, and once a group's
// representative outcomes exist the remaining safe clones are a pure
// columnar broadcast — one multiplied fold of the representative's
// outcome codes (foldCodes), with counters batched per group instead
// of bumped per class.
//
// The plan is bookkeeping, never authority: builders still publish,
// byte-verify their templates, and execute real client tests exactly
// as on the lazy path (publishEntry/testFor are shared code), so the
// §6.6 guarantee — memoization can never change a Result — carries
// over unchanged. TestPlanEquivalenceFull proves byte-identical
// Results against the Config.NoPlan ablation at full scale.
//
// Because the partition is configuration-addressed, it can also be
// persisted: Config.PlanCache stores each built plan in a JSON file
// keyed by the campaign fingerprint, and later runs — repeated
// benchmarks, daemon campaigns, resumed checkpoints — load it instead
// of re-walking and re-hashing the catalog. A loaded plan is
// re-validated against the live catalog (exact index partition, and
// every group's builder re-fingerprinted and its substitution safety
// recomputed), so a stale or hostile cache file degrades to a fresh
// build, never to a wrong plan.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"wsinterop/internal/framework"
	"wsinterop/internal/journal"
	"wsinterop/internal/obs"
	"wsinterop/internal/services"
	"wsinterop/internal/shape"
)

// planCacheVersion is the on-disk plan schema version. Bump it when
// the plan format — or any algorithm whose output a plan caches, such
// as the shape canonicalization or the substitution-safety predicates
// — changes incompatibly; version skew falls back to a fresh build.
const planCacheVersion = 1

// planGroup is one (server, shape) work unit: the definition indexes
// of every same-shape class, in catalog order. Members[0] is the
// designated builder — it runs the full per-class path (publish,
// marshal, WS-I check, template verification, all client tests) and
// the group's remaining safe members broadcast its outcomes.
type planGroup struct {
	// FP is the full shape fingerprint, hex-encoded for the cache file.
	FP      string `json:"fp"`
	Members []int  `json:"members"`
	// Unsafe holds positions into Members (not definition indexes —
	// they compress better) whose classes fail the substitution-safety
	// predicates and must take the per-class path.
	Unsafe []int `json:"unsafe,omitempty"`

	// Decoded forms, never serialized.
	fp   shape.Fingerprint
	safe []bool
}

// finish materializes the in-memory safety mask from the sparse list.
func (g *planGroup) finish() {
	g.safe = make([]bool, len(g.Members))
	for i := range g.safe {
		g.safe[i] = true
	}
	for _, u := range g.Unsafe {
		g.safe[u] = false
	}
}

// serverPlan is one server's stage plan: a partition of the catalog's
// definition indexes into shape groups plus the loose remainder —
// classes the memo layer cannot serve (shape.Memoizable failures, or
// every class under the NoDedup ablation).
type serverPlan struct {
	Server string      `json:"server"`
	Defs   int         `json:"defs"`
	Groups []planGroup `json:"groups,omitempty"`
	Loose  []int       `json:"loose,omitempty"`

	// defs is the definition list the plan was built against (or bound
	// to, for cache loads), retained so the stage need not regenerate it.
	defs []services.Definition
}

// campaignPlan is the immutable whole-campaign execution plan.
type campaignPlan struct {
	fingerprint string
	servers     map[string]*serverPlan
	order       []string
	classes     int
	shapes      int
	source      string // "built", "cache", or "shared"
}

// planFile is the on-disk cache envelope. Servers stays raw so the
// digest is computed over the exact bytes read back.
type planFile struct {
	Version     int             `json:"version"`
	Fingerprint string          `json:"fingerprint"`
	Digest      string          `json:"digest"`
	Servers     json.RawMessage `json:"servers"`
}

// Plan is an opaque handle to a resolved execution plan. A plan is
// immutable and content-addressed by the campaign configuration, so
// one runner may build it and any number of later runners with the
// identical configuration may adopt it (AdoptPlan), skipping the
// catalog walk and hash pass entirely — the steady state of the
// campaign daemon and of repeated benchmark runs.
type Plan struct {
	p *campaignPlan
}

// Fingerprint returns the configuration fingerprint the plan was
// resolved for.
func (p *Plan) Fingerprint() string {
	if p == nil || p.p == nil {
		return ""
	}
	return p.p.fingerprint
}

// ExecutionPlan resolves the runner's plan (building or cache-loading
// it if it has not been resolved yet) and returns a shareable handle.
// It errors under the NoPlan ablation.
func (r *Runner) ExecutionPlan() (*Plan, error) {
	p, err := r.ensurePlan()
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("campaign: no execution plan under NoPlan")
	}
	return &Plan{p: p}, nil
}

// PlanFingerprint returns the fingerprint the runner's plan resolves
// to, or "" when the configuration cannot share plans (NoPlan, or a
// custom CatalogFor — whose catalogs the fingerprint cannot address).
func (r *Runner) PlanFingerprint() string {
	if !r.planOn() || r.cfg.CatalogFor != nil {
		return ""
	}
	return r.planFingerprint()
}

// AdoptPlan installs a plan resolved by another runner with the same
// configuration. It must be called before Run. The fingerprint check
// makes adoption safe: a plan for any other configuration is refused,
// so a wrong plan can never execute.
func (r *Runner) AdoptPlan(p *Plan) error {
	if p == nil || p.p == nil {
		return fmt.Errorf("campaign: cannot adopt a nil plan")
	}
	if !r.planOn() {
		return fmt.Errorf("campaign: cannot adopt a plan under NoPlan")
	}
	if r.cfg.CatalogFor != nil {
		return fmt.Errorf("campaign: custom catalogs cannot share plans")
	}
	if fp := r.planFingerprint(); p.p.fingerprint != fp {
		return fmt.Errorf("campaign: shared plan fingerprint %s does not match this configuration (%s)", p.p.fingerprint, fp)
	}
	r.sharedPlan = p.p
	return nil
}

// planOn reports whether planned execution is active.
func (r *Runner) planOn() bool { return !r.cfg.NoPlan }

// planFingerprint content-addresses everything the plan depends on:
// the campaign configuration fingerprint (roster, limit, variant,
// style, ablations) plus the shard slice, which changes defsFor's
// output. Workers are excluded — a plan is execution-shape, not
// schedule.
func (r *Runner) planFingerprint() string {
	return obs.TraceID("wsinterop-plan-v1", r.checkpointFingerprint(), r.cfg.Shard.String())
}

// ensurePlan resolves the runner's execution plan exactly once:
// loaded from the plan cache when possible, built from the catalog
// otherwise. Returns (nil, nil) under the NoPlan ablation.
func (r *Runner) ensurePlan() (*campaignPlan, error) {
	if !r.planOn() {
		return nil, nil
	}
	r.planOnce.Do(func() { r.plan, r.planErr = r.buildOrLoadPlan() })
	return r.plan, r.planErr
}

// planFor returns one server's stage plan (nil under NoPlan).
func (r *Runner) planFor(server framework.ServerFramework) (*serverPlan, error) {
	p, err := r.ensurePlan()
	if err != nil || p == nil {
		return nil, err
	}
	sp := p.servers[server.Name()]
	if sp == nil {
		return nil, fmt.Errorf("campaign: plan has no stage for server %s", server.Name())
	}
	return sp, nil
}

func (r *Runner) buildOrLoadPlan() (*campaignPlan, error) {
	fp := r.planFingerprint()
	if sp := r.sharedPlan; sp != nil {
		// AdoptPlan already proved the fingerprint matches. Shallow-copy
		// so the shared immutable body keeps its original source label.
		r.met.planShared.Inc()
		cp := *sp
		cp.source = "shared"
		return &cp, nil
	}
	// A custom catalog is only a boolean in the fingerprint — two
	// different CatalogFor funcs would collide — so such runs never
	// touch the cache.
	cacheable := r.cfg.PlanCache != "" && r.cfg.CatalogFor == nil
	if cacheable {
		p, err := r.loadCachedPlan(fp)
		switch {
		case err == nil:
			r.met.planCacheHits.Inc()
			return p, nil
		case errors.Is(err, fs.ErrNotExist):
			r.met.planCacheMisses.Inc()
		default:
			r.met.planCacheRejected.Inc()
			r.obs.Emit(obs.Event{
				Trace:  obs.TraceID("plan-cache", fp),
				Stage:  "plan",
				Detail: fmt.Sprintf("plan cache rejected, rebuilding: %v", err),
			})
		}
	}
	p, err := r.buildPlan(fp)
	if err != nil {
		return nil, err
	}
	r.met.planBuilds.Inc()
	if cacheable {
		if err := r.storePlan(p); err != nil {
			// A cache that cannot be written only costs the next run a
			// rebuild; the campaign proceeds.
			r.obs.Emit(obs.Event{
				Trace:  obs.TraceID("plan-cache", fp),
				Stage:  "plan",
				Detail: fmt.Sprintf("plan cache write failed: %v", err),
			})
		}
	}
	return p, nil
}

// buildPlan walks every server's catalog once and partitions it into
// shape groups. The per-class fingerprint and safety computations are
// spread over the worker pool; grouping itself is a single cheap pass.
func (r *Runner) buildPlan(fp string) (*campaignPlan, error) {
	p := &campaignPlan{
		fingerprint: fp,
		servers:     make(map[string]*serverPlan, len(r.servers)),
		source:      "built",
	}
	for _, server := range r.servers {
		defs, err := r.defsFor(server)
		if err != nil {
			return nil, fmt.Errorf("publish on %s: %w", server.Name(), err)
		}
		sp := r.buildServerPlan(server.Name(), defs)
		p.servers[sp.Server] = sp
		p.order = append(p.order, sp.Server)
		p.classes += sp.Defs
		p.shapes += len(sp.Groups)
	}
	return p, nil
}

// classTraits is the precomputed per-definition input of grouping.
type classTraits struct {
	fp         shape.Fingerprint
	memoizable bool
	safe       bool
}

func (r *Runner) buildServerPlan(server string, defs []services.Definition) *serverPlan {
	sp := &serverPlan{Server: server, Defs: len(defs), defs: defs}
	if !r.dedupOn() {
		// NoDedup: every class is loose; the executor routes them direct.
		sp.Loose = make([]int, len(defs))
		for i := range sp.Loose {
			sp.Loose[i] = i
		}
		return sp
	}
	traits := r.classTraitsFor(defs)
	index := make(map[shape.Fingerprint]int)
	for i := range defs {
		t := &traits[i]
		if !t.memoizable {
			sp.Loose = append(sp.Loose, i)
			continue
		}
		gi, ok := index[t.fp]
		if !ok {
			gi = len(sp.Groups)
			index[t.fp] = gi
			sp.Groups = append(sp.Groups, planGroup{FP: t.fp.Hex(), fp: t.fp})
		}
		g := &sp.Groups[gi]
		if !t.safe {
			g.Unsafe = append(g.Unsafe, len(g.Members))
		}
		g.Members = append(g.Members, i)
	}
	for gi := range sp.Groups {
		sp.Groups[gi].finish()
	}
	return sp
}

// classTraitsFor hashes and classifies every definition across the
// worker pool — the SHA-256 pass that used to run inside the execution
// hot path, once per class per run.
func (r *Runner) classTraitsFor(defs []services.Definition) []classTraits {
	traits := make([]classTraits, len(defs))
	workers := r.workers()
	if workers > len(defs) {
		workers = len(defs)
	}
	if workers <= 1 {
		for i := range defs {
			fillTraits(&traits[i], defs[i])
		}
		return traits
	}
	chunk := (len(defs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(defs) {
			hi = len(defs)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fillTraits(&traits[i], defs[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return traits
}

func fillTraits(t *classTraits, def services.Definition) {
	t.memoizable = shape.Memoizable(def)
	if t.memoizable {
		t.fp = shape.Of(def)
		t.safe = substitutionSafe(def)
	}
}

func (r *Runner) planCachePath(fp string) string {
	return filepath.Join(r.cfg.PlanCache, "plan-"+fp+".json")
}

// planDigest content-addresses the serialized server plans, so any
// corruption of the payload — truncation, bit rot, hand edits — is
// caught before the indexes are even parsed.
func planDigest(servers []byte) string {
	return obs.TraceID("wsinterop-plan-digest", string(servers))
}

// storePlan persists a built plan atomically (temp file + rename).
func (r *Runner) storePlan(p *campaignPlan) error {
	list := make([]*serverPlan, 0, len(p.order))
	for _, name := range p.order {
		list = append(list, p.servers[name])
	}
	servers, err := json.Marshal(list)
	if err != nil {
		return err
	}
	data, err := json.Marshal(&planFile{
		Version:     planCacheVersion,
		Fingerprint: p.fingerprint,
		Digest:      planDigest(servers),
		Servers:     servers,
	})
	if err != nil {
		return err
	}
	if err := os.MkdirAll(r.cfg.PlanCache, 0o755); err != nil {
		return err
	}
	path := r.planCachePath(p.fingerprint)
	tmp, err := os.CreateTemp(r.cfg.PlanCache, "plan-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadCachedPlan reads, validates, and binds the cached plan for the
// given fingerprint. Every defect — missing file, corrupt JSON, digest
// or fingerprint mismatch, version skew, an index partition that does
// not tile the live catalog, a builder whose recomputed shape differs
// — returns an error and the caller rebuilds. fs.ErrNotExist is the
// only "expected" failure (counted as a miss, not a rejection).
func (r *Runner) loadCachedPlan(fp string) (*campaignPlan, error) {
	data, err := os.ReadFile(r.planCachePath(fp))
	if err != nil {
		return nil, err
	}
	var env planFile
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("plan cache: %w", err)
	}
	if env.Version != planCacheVersion {
		return nil, fmt.Errorf("plan cache: schema version %d, this build reads %d", env.Version, planCacheVersion)
	}
	if env.Fingerprint != fp {
		return nil, fmt.Errorf("plan cache: fingerprint %s, campaign is %s", env.Fingerprint, fp)
	}
	if got := planDigest(env.Servers); got != env.Digest {
		return nil, fmt.Errorf("plan cache: content digest mismatch")
	}
	var list []*serverPlan
	if err := json.Unmarshal(env.Servers, &list); err != nil {
		return nil, fmt.Errorf("plan cache: %w", err)
	}
	if len(list) != len(r.servers) {
		return nil, fmt.Errorf("plan cache: %d server stages, campaign has %d", len(list), len(r.servers))
	}
	p := &campaignPlan{
		fingerprint: fp,
		servers:     make(map[string]*serverPlan, len(list)),
		source:      "cache",
	}
	for i, server := range r.servers {
		sp := list[i]
		if sp == nil || sp.Server != server.Name() {
			return nil, fmt.Errorf("plan cache: stage %d is not for server %s", i, server.Name())
		}
		defs, err := r.defsFor(server)
		if err != nil {
			return nil, fmt.Errorf("publish on %s: %w", server.Name(), err)
		}
		if err := r.bindServerPlan(sp, defs); err != nil {
			return nil, fmt.Errorf("plan cache: %s: %w", sp.Server, err)
		}
		p.servers[sp.Server] = sp
		p.order = append(p.order, sp.Server)
		p.classes += sp.Defs
		p.shapes += len(sp.Groups)
	}
	return p, nil
}

// bindServerPlan validates one cached stage against the live catalog
// and attaches the definition list. The expensive invariant a cache
// hit skips is re-hashing every clone; what it must never skip is
// proof that the partition still describes this catalog, so binding
// checks that the indexes tile [0, len(defs)) exactly once, that each
// group's builder re-fingerprints to the group's stored shape, and
// that the stored safety mask matches the live predicates (builders
// are the only members re-hashed — ~4 856 SHA-256s instead of 22 024;
// a cache written by a build with a different shape algorithm fails
// the builder check and is discarded wholesale).
func (r *Runner) bindServerPlan(sp *serverPlan, defs []services.Definition) error {
	if sp.Defs != len(defs) {
		return fmt.Errorf("plan covers %d definitions, catalog has %d", sp.Defs, len(defs))
	}
	seen := make([]bool, len(defs))
	claim := func(i int) error {
		if i < 0 || i >= len(defs) {
			return fmt.Errorf("definition index %d out of range", i)
		}
		if seen[i] {
			return fmt.Errorf("definition index %d claimed twice", i)
		}
		seen[i] = true
		return nil
	}
	if !r.dedupOn() && len(sp.Groups) > 0 {
		return fmt.Errorf("plan has shape groups, campaign has memoization disabled")
	}
	for gi := range sp.Groups {
		g := &sp.Groups[gi]
		if len(g.Members) == 0 {
			return fmt.Errorf("group %d is empty", gi)
		}
		fp, err := shape.ParseHex(g.FP)
		if err != nil {
			return fmt.Errorf("group %d: %w", gi, err)
		}
		g.fp = fp
		unsafe := make(map[int]bool, len(g.Unsafe))
		for _, u := range g.Unsafe {
			if u < 0 || u >= len(g.Members) {
				return fmt.Errorf("group %d: unsafe position %d out of range", gi, u)
			}
			unsafe[u] = true
		}
		for mi, di := range g.Members {
			if err := claim(di); err != nil {
				return fmt.Errorf("group %d: %w", gi, err)
			}
			def := defs[di]
			if !shape.Memoizable(def) {
				return fmt.Errorf("group %d: member %s is not memoizable", gi, def.Parameter.Name)
			}
			if unsafe[mi] == substitutionSafe(def) {
				return fmt.Errorf("group %d: member %s safety mask is stale", gi, def.Parameter.Name)
			}
		}
		if shape.Of(defs[g.Members[0]]) != g.fp {
			return fmt.Errorf("group %d: builder no longer matches the stored shape fingerprint", gi)
		}
		g.finish()
	}
	for _, i := range sp.Loose {
		if err := claim(i); err != nil {
			return fmt.Errorf("loose: %w", err)
		}
	}
	for i, ok := range seen {
		if !ok {
			return fmt.Errorf("definition index %d is not covered", i)
		}
	}
	sp.defs = defs
	return nil
}

// resolveEntries pins one shape-memo entry per plan group in a single
// pass under the table lock — the only mutex acquisition of a planned
// stage. The entries live in the runner-wide table, so a planned
// stage's built shapes are reused by later Publish calls, the
// communication/robustness extensions, and repeated Runs exactly as a
// lazy stage's would be, and a resumed stage finds the entries
// seedMemoFromJournal already registered.
func (r *Runner) resolveEntries(server framework.ServerFramework, sp *serverPlan) []*shapeEntry {
	if len(sp.Groups) == 0 {
		return nil
	}
	entries := make([]*shapeEntry, len(sp.Groups))
	d := r.dedup
	d.mu.Lock()
	for gi := range sp.Groups {
		key := shapeKey{server: server.Name(), fp: sp.Groups[gi].fp}
		e := d.entries[key]
		if e == nil {
			e = &shapeEntry{tests: make([]testMemo, len(r.clients))}
			// The plan proves single-member shapes up front; their
			// builders skip template construction (see shapeEntry.solo).
			// Entries pre-seeded from a resume journal keep whatever the
			// journaled run decided.
			e.solo = len(sp.Groups[gi].Members) == 1
			d.entries[key] = e
		}
		entries[gi] = e
	}
	d.mu.Unlock()
	return entries
}

// runServerPlanned executes one server's stage shape-first: workers
// own whole plan items (a shape group, or one loose class), so no two
// workers ever touch the same memo entry and the execution phase takes
// no locks. Group outcomes fold into per-worker columnar shards that
// tree-merge at the end, exactly like the lazy pipeline's.
func (r *Runner) runServerPlanned(ctx context.Context, server framework.ServerFramework, res *Result, sp *serverPlan) error {
	defs := sp.defs
	workers := r.workers()
	var failures [][]TestResult
	if r.cfg.KeepFailures {
		failures = make([][]TestResult, len(defs))
	}
	prog := newProgress(r.cfg.Progress, server.Name(), len(defs))
	defer prog.close()

	replay := r.replayPlan(server, defs)
	var replayShard *shard
	if replay != nil {
		if err := r.seedMemoFromJournal(server, defs, replay); err != nil {
			return err
		}
		var err error
		replayShard, err = r.replayStage(server, replay, failures, prog)
		if err != nil {
			return err
		}
	}
	entries := r.resolveEntries(server, sp)

	r.met.workers.Set(int64(workers))
	stageStart := r.met.now()
	items := len(sp.Groups) + len(sp.Loose)
	ch := make(chan int)
	shards := make([]*shard, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sh := newShard(len(r.clients), len(r.profiles))
		shards[w] = sh
		wg.Add(1)
		go func(w int, sh *shard) {
			defer wg.Done()
			// Like the lazy pool, cancellation drains: an item already
			// received executes to completion (folded and journaled — the
			// resumable boundary) before the worker exits.
			for it := range ch {
				var err error
				if it < len(sp.Groups) {
					err = r.runPlannedGroup(ctx, server, defs, &sp.Groups[it], entries[it], replay, sh, failures, prog)
				} else if di := sp.Loose[it-len(sp.Groups)]; replay[di].Trace == "" {
					err = r.runPlannedLoose(ctx, server, defs[di], di, sh, failures, prog)
				}
				if err != nil && errs[w] == nil {
					errs[w] = err
				}
			}
		}(w, sh)
	}
feed:
	for it := 0; it < items; it++ {
		select {
		case <-ctx.Done():
			break feed
		case ch <- it:
		}
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return fmt.Errorf("publish on %s: %w", server.Name(), err)
		}
	}
	if replayShard != nil {
		shards = append(shards, replayShard)
	}
	r.mergeServer(res, server.Name(), len(defs), shards, failures)
	r.obs.Emit(obs.Event{
		Trace:        obs.TraceID(server.Name()),
		Stage:        "server-stage",
		Server:       server.Name(),
		Detail:       fmt.Sprintf("%d services", len(defs)),
		ElapsedNanos: int64(r.met.since(stageStart)),
	})
	return nil
}

// runPlannedGroup executes one shape group on its single owning
// worker. Members run individually — through the exact lazy-path memo
// code (publishEntry/testFor) — until the entry's test slots are all
// filled; every later safe member is then served by the clone
// broadcast: one multiplied fold of the representative's outcome row,
// with the memo-hit counters batched per group. Unsafe members always
// take the individual path, as do all members of unverified shapes
// (publishEntry degrades them to per-class fallbacks, identical to
// lazy).
func (r *Runner) runPlannedGroup(ctx context.Context, server framework.ServerFramework, defs []services.Definition,
	g *planGroup, e *shapeEntry, replay map[int]journal.Record,
	sh *shard, failures [][]TestResult, prog *progress) error {
	d, m := r.dedup, r.met
	nc := len(r.clients)
	// slotsFilled means every test slot of e is known-filled, so a safe
	// clone's row is e's codes with the executed bit cleared. It becomes
	// true after any member runs testFor across the full roster while
	// holding a verified memo — including a memo seeded entirely from a
	// resumed journal.
	slotsFilled := false
	var clones []int
	var firstErr error
	for mi, di := range g.Members {
		if _, ok := replay[di]; ok {
			continue
		}
		if slotsFilled && g.safe[mi] {
			clones = append(clones, di)
			continue
		}
		def := defs[di]
		m.publishTotal.Inc()
		d.pubTotal.Add(1)
		slot := r.publishEntry(e, server, def, false)
		switch {
		case slot.err != nil:
			if firstErr == nil {
				firstErr = slot.err
			}
			prog.serviceDone()
			continue
		case !slot.ok:
			r.journalRejected(server, def, slot)
			prog.serviceDone()
			continue
		}
		st := svcState{
			svc:      slot.svc,
			mode:     slot.mode,
			verified: slot.verified,
			codes:    make([]outcomeCode, nc),
		}
		for ci := 0; ci < nc; ci++ {
			st.codes[ci] = r.testFor(ctx, &st.svc, ci)
		}
		if st.svc.memo != nil {
			slotsFilled = true
		}
		fails := r.foldService(&st, sh)
		if failures != nil {
			failures[di] = fails
		}
		r.journalService(&st)
		prog.serviceDone()
	}
	if len(clones) > 0 {
		r.broadcastClones(server, defs, g, e, clones, sh, failures, prog)
	}
	return firstErr
}

// broadcastClones resolves a group's remaining safe members in one
// columnar step. Counter parity with the lazy path, per clone:
// publishOne's memoized branch contributes publishTotal, pubTotal,
// pubHits, publishMemoized and wsiMemoized; testFor's memo-hit branch
// contributes testTotal (both), testMemoized per client. Those sums
// are batched here; the outcome row is the representative's with the
// executed bit cleared — exactly what testFor returns for a clone —
// so the fold, the Failures index, and the journal see byte-identical
// data to the lazy path's.
func (r *Runner) broadcastClones(server framework.ServerFramework, defs []services.Definition,
	g *planGroup, e *shapeEntry, clones []int,
	sh *shard, failures [][]TestResult, prog *progress) {
	d, m := r.dedup, r.met
	nc := len(r.clients)
	k := int64(len(clones))
	m.publishTotal.Add(k)
	d.pubTotal.Add(k)
	d.pubHits.Add(k)
	m.publishMemoized.Add(k)
	m.wsiMemoized.Add(k)
	kt := k * int64(nc)
	m.testTotal.Add(kt)
	d.testTotal.Add(kt)
	m.testMemoized.Add(kt)

	codes := make([]outcomeCode, nc)
	for ci := 0; ci < nc; ci++ {
		codes[ci] = e.tests[ci].code &^ codeExecuted
	}
	errored := r.foldCodes(sh, server.Name(), e.flagged, e.profiles, codes, len(clones))
	keep := failures != nil && errored
	if keep || r.ckpt != nil {
		for _, di := range clones {
			class := defs[di].Parameter.Name
			if keep {
				failures[di] = r.failsFor(server.Name(), class, codes)
			}
			r.journalClone(server.Name(), class, e, codes)
		}
	}
	prog.add(len(clones))
}

// runPlannedLoose executes one loose class: non-memoizable (the
// fallback route), or any class under the NoDedup ablation (the
// direct route) — publishOne's two non-memo branches, inlined.
func (r *Runner) runPlannedLoose(ctx context.Context, server framework.ServerFramework, def services.Definition,
	di int, sh *shard, failures [][]TestResult, prog *progress) error {
	m := r.met
	m.publishTotal.Inc()
	var slot publishSlot
	if r.dedupOn() {
		r.dedup.fallbacks.Add(1)
		m.publishFallback.Inc()
		slot = r.publishDirect(server, def)
		slot.mode = modeFallback
	} else {
		slot = r.publishDirect(server, def)
		slot.mode = modeDirect
	}
	switch {
	case slot.err != nil:
		prog.serviceDone()
		return slot.err
	case !slot.ok:
		r.journalRejected(server, def, slot)
		prog.serviceDone()
		return nil
	}
	st := svcState{
		svc:      slot.svc,
		mode:     slot.mode,
		verified: slot.verified,
		codes:    make([]outcomeCode, len(r.clients)),
	}
	for ci := range r.clients {
		st.codes[ci] = r.testFor(ctx, &st.svc, ci)
	}
	fails := r.foldService(&st, sh)
	if failures != nil {
		failures[di] = fails
	}
	r.journalService(&st)
	prog.serviceDone()
	return nil
}

// PlanServerSummary is one server stage's row of a PlanSummary.
type PlanServerSummary struct {
	Server string
	// Classes = Shapes' builders + Clones + Unsafe + Loose.
	Classes int
	// Shapes is the number of distinct shape groups.
	Shapes int
	// Clones counts safe non-builder members — the classes the clone
	// broadcast can serve.
	Clones int
	// Unsafe counts non-builder members routed per-class by the
	// substitution-safety predicates; Loose counts classes outside the
	// memo layer entirely.
	Unsafe int
	Loose  int
}

// PlanSummary describes a campaign execution plan — the -report plan
// data. Building it resolves the plan (cache load or catalog walk) but
// runs nothing.
type PlanSummary struct {
	// Fingerprint is the plan's content address; Source is "built" or
	// "cache".
	Fingerprint string
	Source      string
	NoDedup     bool
	Classes     int
	Shapes      int
	Clones      int
	Unsafe      int
	Loose       int
	Servers     []PlanServerSummary
}

// PlanSummary resolves and summarizes the runner's execution plan.
// It errors under the NoPlan ablation — there is no plan to describe.
func (r *Runner) PlanSummary() (*PlanSummary, error) {
	if !r.planOn() {
		return nil, errors.New("campaign: planned execution is disabled (NoPlan)")
	}
	p, err := r.ensurePlan()
	if err != nil {
		return nil, err
	}
	sum := &PlanSummary{
		Fingerprint: p.fingerprint,
		Source:      p.source,
		NoDedup:     r.cfg.NoDedup,
		Classes:     p.classes,
		Shapes:      p.shapes,
	}
	for _, name := range p.order {
		sp := p.servers[name]
		row := PlanServerSummary{
			Server:  name,
			Classes: sp.Defs,
			Shapes:  len(sp.Groups),
			Loose:   len(sp.Loose),
		}
		// Builders run the full path whether or not they are themselves
		// substitution-safe, so only non-builder members split into
		// clones and unsafe — keeping Classes = Shapes+Clones+Unsafe+Loose
		// an exact identity.
		for gi := range sp.Groups {
			g := &sp.Groups[gi]
			for mi := 1; mi < len(g.Members); mi++ {
				if g.safe[mi] {
					row.Clones++
				} else {
					row.Unsafe++
				}
			}
		}
		sum.Clones += row.Clones
		sum.Unsafe += row.Unsafe
		sum.Loose += row.Loose
		sum.Servers = append(sum.Servers, row)
	}
	return sum, nil
}
