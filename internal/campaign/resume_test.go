package campaign

// Tests for the durable checkpoint/resume engine (checkpoint.go,
// internal/journal): a campaign killed at any journaled boundary and
// resumed must produce a byte-identical Result, DeepEqual dedup stats,
// and DeepEqual metrics counters/histograms versus an uninterrupted
// run — at any worker count on either side of the kill.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wsinterop/internal/obs"
)

// resumeConfig is the campaign configuration under test. KeepFailures
// exercises the failure-index path through replay; the frozen-clock
// registry makes histograms comparable.
func resumeConfig(limit, workers int) Config {
	return Config{Limit: limit, Workers: workers, KeepFailures: true, Obs: frozenRegistry()}
}

// interruptAt runs a checkpointed campaign that cancels its context
// once the journal holds killAt records — the cooperative-drain
// equivalent of SIGINT at that boundary. killAt 0 cancels before any
// cell; killAt < 0 lets the run complete (the 100% journal case).
func interruptAt(t *testing.T, cfg Config, dir string, killAt int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg.Checkpoint = dir
	switch {
	case killAt == 0:
		cancel()
	case killAt > 0:
		cfg.checkpointProbe = func(appended int) {
			if appended == killAt {
				cancel()
			}
		}
	}
	res, err := NewRunner(cfg).Run(ctx)
	if killAt < 0 {
		if err != nil {
			t.Fatalf("uninterrupted checkpointed run: %v", err)
		}
		if res == nil {
			t.Fatal("uninterrupted checkpointed run returned nil result")
		}
		return
	}
	// A cancellation racing the end of the run may still complete; any
	// other error is a failure. Either way the journal must be resumable.
	if err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: %v", err)
	}
	if killAt > 0 && err == nil {
		t.Fatalf("run completed before reaching kill point %d", killAt)
	}
}

// resume re-runs the campaign from the journal in dir and returns the
// Result plus the resumed session's metrics snapshot.
func resume(t *testing.T, cfg Config, dir string) (*Result, *obs.Snapshot) {
	t.Helper()
	cfg.Checkpoint, cfg.Resume = dir, true
	reg := frozenRegistry()
	cfg.Obs = reg
	res, err := NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	return res, reg.Snapshot()
}

// resultBytes serializes a Result for byte comparison. Metrics is
// excluded: it is compared structurally (minus journal bookkeeping) by
// compareSnapshots, since journal.* counters exist only on
// checkpointed runs.
func resultBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	clone := *res
	clone.Metrics = nil
	data, err := json.Marshal(&clone)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return data
}

// stripJournal drops the journal.* bookkeeping counters: how many
// cells were resumed versus executed necessarily differs between a
// resumed and a clean run. Like gauges, they are attribution, not
// campaign outcome, and sit outside the determinism contract.
func stripJournal(counters []obs.CounterSnapshot) []obs.CounterSnapshot {
	kept := make([]obs.CounterSnapshot, 0, len(counters))
	for _, c := range counters {
		if strings.HasPrefix(c.Name, "journal.") {
			continue
		}
		kept = append(kept, c)
	}
	return kept
}

func compareSnapshots(t *testing.T, label string, clean, resumed *obs.Snapshot) {
	t.Helper()
	if a, b := stripJournal(clean.Counters), stripJournal(resumed.Counters); !reflect.DeepEqual(a, b) {
		t.Errorf("%s: counters differ:\nclean:   %+v\nresumed: %+v", label, a, b)
	}
	if !reflect.DeepEqual(clean.Histograms, resumed.Histograms) {
		t.Errorf("%s: histograms differ:\nclean:   %+v\nresumed: %+v", label, clean.Histograms, resumed.Histograms)
	}
}

// runResumeMatrix is the shared kill-point matrix: for each worker
// count, interrupt at 0%, ~25%, ~75%, and 100% of the journal and
// verify the resumed run reproduces the clean baseline exactly.
func runResumeMatrix(t *testing.T, limit int) {
	cleanCfg := resumeConfig(limit, 4)
	cleanReg := cleanCfg.Obs
	clean, err := NewRunner(cleanCfg).Run(context.Background())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	cleanBytes := resultBytes(t, clean)
	cleanSnap := cleanReg.Snapshot()
	// One journal record per created service cell.
	totalCells := clean.TotalServices

	for _, workers := range []int{1, 8} {
		for _, frac := range []float64{0, 0.25, 0.75, 1} {
			killAt := int(frac * float64(totalCells))
			if frac == 1 {
				killAt = -1 // run to completion, resume replays everything
			} else if frac > 0 && killAt == 0 {
				killAt = 1
			}
			name := fmt.Sprintf("workers=%d/kill=%d%%", workers, int(frac*100))
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				interruptAt(t, resumeConfig(limit, workers), dir, killAt)
				res, snap := resume(t, resumeConfig(limit, workers), dir)

				compareResults(t, clean, res)
				if !reflect.DeepEqual(clean.Dedup, res.Dedup) {
					t.Errorf("dedup stats differ:\nclean:   %+v\nresumed: %+v", clean.Dedup, res.Dedup)
				}
				if !reflect.DeepEqual(clean.Failures, res.Failures) {
					t.Errorf("failure index differs: clean %d entries, resumed %d",
						len(clean.Failures), len(res.Failures))
				}
				if got := resultBytes(t, res); string(got) != string(cleanBytes) {
					t.Error("serialized Result is not byte-identical to the clean run")
				}
				compareSnapshots(t, name, cleanSnap, snap)
			})
		}
	}
}

func TestResumeEquivalenceScaled(t *testing.T) {
	runResumeMatrix(t, 150)
}

// TestResumeEquivalenceFull is the acceptance check at full study
// scale: 22 024 service cells, killed at several journal sizes under
// workers 1 and 8, resumed, and compared byte-for-byte.
func TestResumeEquivalenceFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale resume equivalence skipped in -short mode")
	}
	cleanCfg := resumeConfig(0, 0)
	clean, err := NewRunner(cleanCfg).Run(context.Background())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	if clean.TotalServices != 22024 {
		t.Fatalf("TotalServices = %d, want the study's 22024", clean.TotalServices)
	}
	cleanBytes := resultBytes(t, clean)
	cleanSnap := cleanCfg.Obs.Snapshot()
	totalCells := clean.TotalServices

	for _, workers := range []int{1, 8} {
		for _, frac := range []float64{0.25, 0.75} {
			killAt := int(frac * float64(totalCells))
			name := fmt.Sprintf("workers=%d/kill=%d", workers, killAt)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				interruptAt(t, resumeConfig(0, workers), dir, killAt)
				res, snap := resume(t, resumeConfig(0, workers), dir)
				compareResults(t, clean, res)
				if !reflect.DeepEqual(clean.Dedup, res.Dedup) {
					t.Errorf("dedup stats differ:\nclean:   %+v\nresumed: %+v", clean.Dedup, res.Dedup)
				}
				if got := resultBytes(t, res); string(got) != string(cleanBytes) {
					t.Error("serialized Result is not byte-identical to the clean run")
				}
				compareSnapshots(t, name, cleanSnap, snap)
			})
		}
	}
}

// TestResumeSurvivesSecondInterruption kills a run, resumes, kills the
// resumed run further in, and resumes again — journals written across
// sessions must merge into one consistent store.
func TestResumeSurvivesSecondInterruption(t *testing.T) {
	const limit = 120
	cleanCfg := resumeConfig(limit, 4)
	clean, err := NewRunner(cleanCfg).Run(context.Background())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	totalCells := clean.TotalServices

	dir := t.TempDir()
	interruptAt(t, resumeConfig(limit, 8), dir, totalCells/4)
	// Second session: resume AND interrupt again deeper in.
	{
		cfg := resumeConfig(limit, 8)
		cfg.Checkpoint, cfg.Resume = dir, true
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cfg.checkpointProbe = func(appended int) {
			// appended counts this session only; the journal already holds
			// ~25%, so this lands around 75% overall.
			if appended == totalCells/2 {
				cancel()
			}
		}
		if _, err := NewRunner(cfg).Run(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("second interruption: err = %v, want context.Canceled", err)
		}
	}
	res, snap := resume(t, resumeConfig(limit, 2), dir)
	compareResults(t, clean, res)
	if !reflect.DeepEqual(clean.Dedup, res.Dedup) {
		t.Errorf("dedup stats differ after double interruption:\nclean:   %+v\nresumed: %+v", clean.Dedup, res.Dedup)
	}
	compareSnapshots(t, "double-interruption", cleanCfg.Obs.Snapshot(), snap)
}

// TestResumeAfterTornJournalTail appends garbage to the journal (the
// hard-kill torn-write scenario) and verifies resume still converges
// to the clean Result: the torn cell is simply re-executed.
func TestResumeAfterTornJournalTail(t *testing.T) {
	const limit = 100
	clean, err := NewRunner(resumeConfig(limit, 4)).Run(context.Background())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	dir := t.TempDir()
	interruptAt(t, resumeConfig(limit, 4), dir, clean.TotalServices/2)
	path := filepath.Join(dir, "journal.jsonl")
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open journal for tearing: %v", err)
	}
	if _, err := f.WriteString(`{"trace":"torn-mid-wri`); err != nil {
		t.Fatalf("tear journal: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close torn journal: %v", err)
	}
	res, _ := resume(t, resumeConfig(limit, 4), dir)
	compareResults(t, clean, res)
}

// TestResumeChecksConfiguration: a journal must only resume under the
// configuration that wrote it, and the CLI-facing misuse modes fail
// loudly instead of corrupting state.
func TestResumeChecksConfiguration(t *testing.T) {
	dir := t.TempDir()
	interruptAt(t, resumeConfig(60, 4), dir, 10)

	cfg := resumeConfig(80, 4) // different Limit → different cell set
	cfg.Checkpoint, cfg.Resume = dir, true
	if _, err := NewRunner(cfg).Run(context.Background()); err == nil {
		t.Error("resume under a different configuration should fail")
	}

	cfg = resumeConfig(60, 4) // same config, but no -resume
	cfg.Checkpoint = dir
	if _, err := NewRunner(cfg).Run(context.Background()); err == nil {
		t.Error("fresh checkpoint into a used directory should fail")
	}

	cfg = resumeConfig(60, 4) // Resume without Checkpoint
	cfg.Resume = true
	if _, err := NewRunner(cfg).Run(context.Background()); err == nil {
		t.Error("Resume without Checkpoint should fail")
	}

	// Worker count is intentionally outside the fingerprint: resuming a
	// workers=4 journal at workers=1 must work (proven equivalent by the
	// matrix tests; here just prove it is accepted).
	okCfg := resumeConfig(60, 1)
	okCfg.Checkpoint, okCfg.Resume = dir, true
	if _, err := NewRunner(okCfg).Run(context.Background()); err != nil {
		t.Errorf("resume at a different worker count: %v", err)
	}
}

// TestResumeNoDedupAblation: the checkpoint layer must compose with
// the shape-memo ablation — journaled direct cells replay without
// touching memo state.
func TestResumeNoDedupAblation(t *testing.T) {
	cfg := resumeConfig(60, 4)
	cfg.NoDedup = true
	clean, err := NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	dir := t.TempDir()
	killed := resumeConfig(60, 4)
	killed.NoDedup = true
	interruptAt(t, killed, dir, clean.TotalServices/2)
	resumedCfg := resumeConfig(60, 4)
	resumedCfg.NoDedup = true
	res, _ := resume(t, resumedCfg, dir)
	compareResults(t, clean, res)
	if !reflect.DeepEqual(clean.Dedup, res.Dedup) {
		t.Errorf("dedup stats differ: %+v vs %+v", clean.Dedup, res.Dedup)
	}
}

// TestRunContextAndOptions covers the context-first package surface:
// Run/RunContext wrappers and the functional-option constructor.
func TestRunContextAndOptions(t *testing.T) {
	res, err := Run(Config{Limit: 2, Workers: 2})
	if err != nil {
		t.Fatalf("package Run: %v", err)
	}
	if res.TotalTests == 0 {
		t.Error("package Run produced an empty result")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunContext(ctx, Config{Limit: 2}); !errors.Is(err, context.Canceled) {
		t.Errorf("RunContext with cancelled context: err = %v, want context.Canceled", err)
	}

	reg := frozenRegistry()
	r := New(
		WithLimit(2),
		WithWorkers(2),
		WithKeepFailures(),
		WithObs(reg),
	)
	optRes, err := r.Run(context.Background())
	if err != nil {
		t.Fatalf("New(...).Run: %v", err)
	}
	if optRes.TotalTests != res.TotalTests {
		t.Errorf("option-built runner: %d tests, struct-built: %d", optRes.TotalTests, res.TotalTests)
	}
	if r.Obs() != reg {
		t.Error("WithObs registry not installed")
	}
	if r.Metrics() == nil {
		t.Error("Runner.Metrics returned nil")
	}

	// Checkpoint options round-trip through a real journaled run.
	dir := t.TempDir()
	if _, err := New(WithLimit(2), WithCheckpoint(dir)).Run(context.Background()); err != nil {
		t.Fatalf("New with WithCheckpoint: %v", err)
	}
	res2, err := New(WithLimit(2), WithCheckpoint(dir), WithResume()).Run(context.Background())
	if err != nil {
		t.Fatalf("New with WithResume: %v", err)
	}
	if res2.TotalTests != res.TotalTests {
		t.Errorf("resumed option runner: %d tests, want %d", res2.TotalTests, res.TotalTests)
	}
}

// TestResumeEmitsEvents: a resumed run announces replayed stages on
// the observability event stream.
func TestResumeEmitsEvents(t *testing.T) {
	dir := t.TempDir()
	interruptAt(t, resumeConfig(40, 4), dir, 20)
	cfg := resumeConfig(40, 4)
	cfg.Checkpoint, cfg.Resume = dir, true
	reg := cfg.Obs
	if _, err := NewRunner(cfg).Run(context.Background()); err != nil {
		t.Fatalf("resume: %v", err)
	}
	found := false
	for _, e := range reg.Events() {
		if e.Stage == "resume" {
			found = true
			if !strings.Contains(e.Detail, "replayed from journal") {
				t.Errorf("resume event detail = %q", e.Detail)
			}
		}
	}
	if !found {
		t.Error("no resume events emitted")
	}
	if reg.Counter("journal.cells.resumed").Value() == 0 {
		t.Error("journal.cells.resumed counter is zero after a resume")
	}
}
