package campaign

import (
	"context"
	"testing"

	"wsinterop/internal/services"
	"wsinterop/internal/wsdl"
)

// TestStyleInvariance verifies the binding-style extension end to end:
// the interoperability defect picture is identical whether the servers
// emit document/literal (the study's configuration) or rpc/literal.
func TestStyleInvariance(t *testing.T) {
	docStyle, err := NewRunner(Config{Limit: 200}).Run(context.Background())
	if err != nil {
		t.Fatalf("document style: %v", err)
	}
	rpcStyle, err := NewRunner(Config{Limit: 200, Style: wsdl.StyleRPC}).Run(context.Background())
	if err != nil {
		t.Fatalf("rpc style: %v", err)
	}
	if docStyle.TotalPublished != rpcStyle.TotalPublished {
		t.Errorf("published: %d vs %d", docStyle.TotalPublished, rpcStyle.TotalPublished)
	}
	if docStyle.InteropErrors != rpcStyle.InteropErrors {
		t.Errorf("interop errors: %d vs %d", docStyle.InteropErrors, rpcStyle.InteropErrors)
	}
	if docStyle.FlaggedServices != rpcStyle.FlaggedServices {
		t.Errorf("flagged services: %d vs %d", docStyle.FlaggedServices, rpcStyle.FlaggedServices)
	}
	for _, client := range docStyle.ClientOrder {
		for _, server := range docStyle.ServerOrder {
			a, b := docStyle.Matrix[client][server], rpcStyle.Matrix[client][server]
			if a.GenErrors != b.GenErrors || a.CompileErrors != b.CompileErrors {
				t.Errorf("%s × %s: document %d/%d vs rpc %d/%d (gen/compile errors)",
					client, server, a.GenErrors, a.CompileErrors, b.GenErrors, b.CompileErrors)
			}
		}
	}
}

// TestRPCCommunication drives the rpc/literal emission through the
// live round trip: typed message parts are all required, so the
// payload builder must fill every part with a lexically valid sample.
func TestRPCCommunication(t *testing.T) {
	cfg := Config{Limit: 80, Style: wsdl.StyleRPC, Variant: services.VariantMultiParam}
	res, err := NewRunner(cfg).RunCommunication(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	totals := res.Totals()
	if totals.Succeeded == 0 {
		t.Error("no successful rpc round trips")
	}
	if totals.Faults != 0 || totals.Mismatches != 0 {
		t.Errorf("rpc runtime failures: %+v", totals)
	}
}
