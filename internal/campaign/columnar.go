package campaign

import "wsinterop/internal/journal"

// Columnar shard results (DESIGN.md §10). The streaming test stage
// used to accumulate one full TestResult struct per (service ×
// client) cell — three interned-elsewhere strings and two outcome
// structs of which the classification fold reads only five booleans.
// At 79 629 cells that struct traffic dominated shard memory. Each
// service row is now a columnar array of packed outcome codes, one
// byte per client slot; the cell's identity (server, client, class)
// is implicit in its coordinates and materialized back into a
// TestResult only where a consumer genuinely needs the struct form:
// the Failures index and the public RunTest API.

// outcomeCode packs one classified test outcome: the five
// classification bits the fold reads, plus the executed bit the cell
// journal persists (memo-served cells have it clear).
type outcomeCode uint8

const (
	codeGenWarning outcomeCode = 1 << iota
	codeGenError
	codeCompileRan
	codeCompileWarning
	codeCompileError
	// codeExecuted records that the test actually ran rather than
	// being served by the shape memo — journal state, not part of the
	// classified outcome.
	codeExecuted

	// numOutcomeBits counts the classification bits below codeExecuted.
	numOutcomeBits = 5
	// outcomeMask selects the classification bits.
	outcomeMask = outcomeCode(1)<<numOutcomeBits - 1
)

// outcomeEntry is one interned decoded outcome.
type outcomeEntry struct {
	gen, compile Outcome
	compileRan   bool
}

// outcomeTable interns every decodable outcome, indexed by the
// classification bits of an outcomeCode. Decoding is a table lookup
// and every distinct outcome value exists exactly once.
var outcomeTable = func() [1 << numOutcomeBits]outcomeEntry {
	var t [1 << numOutcomeBits]outcomeEntry
	for c := range t {
		code := outcomeCode(c)
		t[c] = outcomeEntry{
			gen: Outcome{
				Warning: code&codeGenWarning != 0,
				Error:   code&codeGenError != 0,
			},
			compile: Outcome{
				Warning: code&codeCompileWarning != 0,
				Error:   code&codeCompileError != 0,
			},
			compileRan: code&codeCompileRan != 0,
		}
	}
	return t
}()

// encodeOutcome packs a classified TestResult and its executed flag.
func encodeOutcome(t *TestResult, ran bool) outcomeCode {
	var c outcomeCode
	if t.Gen.Warning {
		c |= codeGenWarning
	}
	if t.Gen.Error {
		c |= codeGenError
	}
	if t.CompileRan {
		c |= codeCompileRan
	}
	if t.Compile.Warning {
		c |= codeCompileWarning
	}
	if t.Compile.Error {
		c |= codeCompileError
	}
	if ran {
		c |= codeExecuted
	}
	return c
}

// encodeRecord packs one journaled cell outcome.
func encodeRecord(tr journal.TestRecord) outcomeCode {
	var c outcomeCode
	if tr.GenWarning {
		c |= codeGenWarning
	}
	if tr.GenError {
		c |= codeGenError
	}
	if tr.CompileRan {
		c |= codeCompileRan
	}
	if tr.CompileWarning {
		c |= codeCompileWarning
	}
	if tr.CompileError {
		c |= codeCompileError
	}
	if tr.Ran {
		c |= codeExecuted
	}
	return c
}

// executed reports whether the test actually ran (journal Ran bit).
func (c outcomeCode) executed() bool { return c&codeExecuted != 0 }

// errorAnywhere mirrors TestResult.ErrorAnywhere over the packed form.
func (c outcomeCode) errorAnywhere() bool {
	return c&(codeGenError|codeCompileError) != 0
}

// testResult materializes the struct form of one cell outcome at its
// (server, client, class) coordinates.
func (c outcomeCode) testResult(server, client, class string) TestResult {
	e := &outcomeTable[c&outcomeMask]
	return TestResult{
		Server:     server,
		Client:     client,
		Class:      class,
		Gen:        e.gen,
		Compile:    e.compile,
		CompileRan: e.compileRan,
	}
}
