package campaign

import (
	"context"
	"testing"

	"wsinterop/internal/framework"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsi"
)

// limitedConfig returns a small, fast campaign configuration.
func limitedConfig(limit int) Config {
	return Config{Limit: limit, Workers: 4}
}

func TestScaledCampaignInvariants(t *testing.T) {
	res, err := NewRunner(limitedConfig(150)).Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.TotalServices != 3*150 {
		t.Errorf("total services = %d, want 450", res.TotalServices)
	}
	if res.TotalTests != res.TotalPublished*11 {
		t.Errorf("tests (%d) != published (%d) × clients (11)", res.TotalTests, res.TotalPublished)
	}
	for name, s := range res.Servers {
		if s.Deployed > s.Created {
			t.Errorf("%s: deployed %d > created %d", name, s.Deployed, s.Created)
		}
		if s.Tests != s.Deployed*11 {
			t.Errorf("%s: tests %d != deployed %d × 11", name, s.Tests, s.Deployed)
		}
		if s.GenErrors > s.Tests || s.GenWarnings > s.Tests {
			t.Errorf("%s: generation counts exceed tests", name)
		}
		if s.CompileErrors+s.CompileWarnings > 2*s.Tests {
			t.Errorf("%s: compile counts implausible", name)
		}
		if s.DescriptionErrors != 0 {
			t.Errorf("%s: description errors must be zero by construction", name)
		}
	}
	// Matrix totals must agree with server summaries.
	for _, server := range res.ServerOrder {
		genE, compE := 0, 0
		for _, client := range res.ClientOrder {
			cell := res.Matrix[client][server]
			genE += cell.GenErrors
			compE += cell.CompileErrors
		}
		if genE != res.Servers[server].GenErrors {
			t.Errorf("%s: matrix gen errors %d != summary %d", server, genE, res.Servers[server].GenErrors)
		}
		if compE != res.Servers[server].CompileErrors {
			t.Errorf("%s: matrix compile errors %d != summary %d", server, compE, res.Servers[server].CompileErrors)
		}
	}
}

func TestCampaignDeterministic(t *testing.T) {
	a, err := NewRunner(limitedConfig(200)).Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := NewRunner(Config{Limit: 200, Workers: 1}).Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if a.TotalTests != b.TotalTests || a.InteropErrors != b.InteropErrors ||
		a.SameFrameworkErrors != b.SameFrameworkErrors {
		t.Errorf("parallel vs sequential runs disagree: %+v vs %+v", a, b)
	}
	for _, client := range a.ClientOrder {
		for _, server := range a.ServerOrder {
			if *a.Matrix[client][server] != *b.Matrix[client][server] {
				t.Errorf("cell %s × %s differs across worker counts", client, server)
			}
		}
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewRunner(limitedConfig(500)).Run(ctx); err == nil {
		t.Error("cancelled context should abort the run")
	}
}

func TestSubsetOfFrameworks(t *testing.T) {
	cfg := Config{
		Servers: []framework.ServerFramework{framework.NewMetroServer()},
		Clients: []framework.ClientFramework{framework.NewAxis1Client()},
		Limit:   100,
	}
	res, err := NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.ServerOrder) != 1 || len(res.ClientOrder) != 1 {
		t.Fatalf("orders = %v / %v", res.ServerOrder, res.ClientOrder)
	}
	if res.TotalTests != res.TotalPublished {
		t.Errorf("one client: tests %d != published %d", res.TotalTests, res.TotalPublished)
	}
	cell := res.Matrix["Apache Axis1"]["Metro"]
	if cell.CompileWarnings != res.TotalPublished {
		t.Errorf("Axis1 should warn on every compile: %d of %d", cell.CompileWarnings, res.TotalPublished)
	}
}

func TestPublishStep(t *testing.T) {
	r := NewRunner(limitedConfig(0))
	published, created, err := r.Publish(context.Background(), framework.NewJBossWSServer())
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if created != typesys.JavaTotal {
		t.Errorf("created = %d, want %d", created, typesys.JavaTotal)
	}
	if len(published) != 2248 {
		t.Errorf("published = %d, want 2248", len(published))
	}
	flagged, compliant := 0, 0
	for i := range published {
		if published[i].Flagged {
			flagged++
		}
		if published[i].Compliant {
			compliant++
		}
		if len(published[i].Doc) == 0 {
			t.Fatalf("service %s has an empty document", published[i].Class)
		}
	}
	if flagged != 4 {
		t.Errorf("flagged = %d, want 4", flagged)
	}
	// Two of the four flagged are WS-I compliant (the zero-operation
	// documents) — the paper's central §IV.A observation.
	if compliant != 2248-2 {
		t.Errorf("compliant = %d, want %d", compliant, 2248-2)
	}
}

func TestOfficialCheckerMissesZeroOperations(t *testing.T) {
	cfg := limitedConfig(0)
	cfg.Checker = wsi.NewChecker(wsi.WithoutExtended())
	r := NewRunner(cfg)
	published, _, err := r.Publish(context.Background(), framework.NewJBossWSServer())
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	flagged := 0
	for i := range published {
		if published[i].Flagged {
			flagged++
		}
	}
	// With the official tool only the two genuine WS-I failures are
	// flagged; the unusable zero-operation WSDLs slip through.
	if flagged != 2 {
		t.Errorf("official checker flagged %d, want 2", flagged)
	}
}

func TestRunTestStepSemantics(t *testing.T) {
	r := NewRunner(limitedConfig(0))
	published, _, err := r.Publish(context.Background(), framework.NewMetroServer())
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	var w3c *PublishedService
	for i := range published {
		if published[i].Class == typesys.JavaW3CEndpointReference {
			w3c = &published[i]
		}
	}
	if w3c == nil {
		t.Fatal("W3CEndpointReference not published")
	}
	// A failing generation must stop the pipeline for clean-failing
	// clients...
	res := RunTest(framework.NewMetroClient(), *w3c)
	if !res.Gen.Error || res.CompileRan {
		t.Errorf("Metro client: %+v", res)
	}
	// ...but silent-artifact tools still reach compilation.
	res = RunTest(framework.NewAxis1Client(), *w3c)
	if !res.Gen.Error || !res.CompileRan {
		t.Errorf("Axis1 client: %+v", res)
	}
	if !res.ErrorAnywhere() {
		t.Error("ErrorAnywhere should be true")
	}
}

func TestStepString(t *testing.T) {
	for _, s := range []Step{StepDescription, StepGeneration, StepCompilation} {
		if s.String() == "" || s.String()[0] == 'S' {
			t.Errorf("step %d has no friendly name: %q", s, s.String())
		}
	}
}

func TestProgressCallback(t *testing.T) {
	var stages []string
	var last, lastTotal int
	cfg := limitedConfig(100)
	cfg.Workers = 1
	cfg.Progress = func(stage string, done, total int) {
		if len(stages) == 0 || stages[len(stages)-1] != stage {
			if len(stages) > 0 && last != lastTotal {
				t.Fatalf("stage %s ended at %d of %d", stages[len(stages)-1], last, lastTotal)
			}
			stages = append(stages, stage)
			last = 0
		}
		// Delivery is asynchronous and coalescing: consecutive
		// completions may arrive as one callback, so done can jump by
		// more than one — but never backward or past the total.
		if done <= last || done > total {
			t.Fatalf("non-monotonic progress: stage %s done %d after %d (total %d)", stage, done, last, total)
		}
		last, lastTotal = done, total
	}
	if _, err := NewRunner(cfg).Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(stages) != 3 {
		t.Errorf("stages = %v, want one per server", stages)
	}
	// The streaming runner reports every created service as resolved —
	// tested or rejected — so each stage must end complete.
	if last != lastTotal || lastTotal != 100 {
		t.Errorf("final stage ended at %d of %d, want 100 of 100", last, lastTotal)
	}
}
