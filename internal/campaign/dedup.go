package campaign

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/shape"
	"wsinterop/internal/wsdl"
)

// This file implements the structural-shape memoization layer
// (DESIGN.md §6.6). Framework behaviour depends only on a class's
// structural traits, so the campaign content-addresses every class by
// its shape fingerprint and performs the expensive per-class work —
// publish, WSDL marshal, WS-I check, and all eleven client tests —
// once per (server, shape) instead of once per class. Per-class
// output is rehydrated by rendering a split document template with
// the class's name-derived strings and by cloning test results with
// the class name rewritten.
//
// The memo never assumes the shape equivalence it exploits: the first
// class of every shape runs the full per-class path, and the shape's
// template is admitted only if it re-renders that class's document
// byte-for-byte. A shape that fails verification (or a class whose
// names fail the shape.Memoizable guard) silently takes the per-class
// path, so enabling the memo can never change a Result — the property
// TestDedupEquivalenceFull proves at full scale.

// DedupStats summarizes the shape memo layer's effect on one
// campaign run (Result.Dedup).
type DedupStats struct {
	// Enabled reports whether the memo layer was active
	// (Config.NoDedup unset).
	Enabled bool
	// Shapes is the number of distinct (server, fingerprint) memo
	// entries built — the structural diversity of the corpus.
	Shapes int
	// PublishTotal counts publishes routed through the memo;
	// PublishMemoized counts those served by a template render or a
	// memoized rejection instead of a full publish+marshal+check.
	PublishTotal    int
	PublishMemoized int
	// TestTotal counts client tests routed through the memo;
	// TestMemoized counts those served by cloning a memoized outcome.
	TestTotal    int
	TestMemoized int
	// Fallbacks counts publishes that bypassed the memo: hostile
	// names failing the shape.Memoizable guard, or shapes whose
	// template failed byte-for-byte verification.
	Fallbacks int
	// WSIChecks counts full WS-I document checks executed during the
	// run; WSIMemoized counts verdicts served from the shape memo's
	// chunk-predicate path instead. They mirror the internal/obs
	// counters campaign.wsi.checks and campaign.wsi.memoized.
	WSIChecks   int
	WSIMemoized int
}

// shapeKey addresses one memo entry: shapes are structural, so the
// emitting server (which fixes language, quirks, and binding style)
// completes the address.
type shapeKey struct {
	server string
	fp     shape.Fingerprint
}

// shapeEntry memoizes everything the campaign derives from one
// structural shape on one server. The entry is built exactly once,
// from the shape's first-seen class; test slots fill lazily as the
// streaming pool first reaches each client.
type shapeEntry struct {
	once sync.Once
	// rejected records a memoized NotDeployable outcome.
	rejected bool
	// err is the underlying marshal failure, re-wrapped per class.
	err error
	// tmpl is the verified document template; nil means verification
	// failed and same-shape classes must take the per-class path.
	tmpl *wsdl.Template
	// solo marks a shape the execution plan proved single-member: no
	// clone will ever render from the template, so buildShape skips
	// constructing and verifying it (about 91% of shapes at full
	// scale). Only the planned executor sets it — the lazy path cannot
	// know a shape's future population, which is exactly the
	// information advantage the plan buys.
	solo               bool
	flagged, compliant bool
	// profiles is the shape's per-profile verdict mask (bit i set =
	// compliant with the i-th registered profile). Like flagged and
	// compliant it is name-invariant under the SubstitutionSafe guard —
	// every registered profile's name-sensitive assertion set is covered
	// by the chunk predicates — so clones inherit it verbatim.
	profiles uint64
	// rep is the shape's representative: the first-seen class, whose
	// outputs were produced on the per-class path and verified against
	// the template. Memoized tests always run against rep (its analysis
	// cell is seeded once per shape), so same-shape clones never parse
	// their own documents in the campaign — while keeping each clone's
	// own analysis cell private for name-dependent consumers like the
	// communication extension's endpoint derivation.
	rep PublishedService
	// tests holds one memoized outcome per client framework, keyed by
	// roster index. Flagged status is constant per entry, so the
	// (client, fingerprint, flagged) memo key of DESIGN.md §6.6
	// collapses to the slot index.
	tests []testMemo
}

type testMemo struct {
	once sync.Once
	code outcomeCode
}

// dedupState is the runner-level memo table plus its counters.
type dedupState struct {
	mu      sync.Mutex
	entries map[shapeKey]*shapeEntry

	shapes    atomic.Int64
	pubTotal  atomic.Int64
	pubHits   atomic.Int64
	testTotal atomic.Int64
	testRuns  atomic.Int64
	fallbacks atomic.Int64
}

type dedupCounters struct {
	shapes, pubTotal, pubHits, testTotal, testRuns, fallbacks int64
}

func (d *dedupState) snapshot() dedupCounters {
	return dedupCounters{
		shapes:    d.shapes.Load(),
		pubTotal:  d.pubTotal.Load(),
		pubHits:   d.pubHits.Load(),
		testTotal: d.testTotal.Load(),
		testRuns:  d.testRuns.Load(),
		fallbacks: d.fallbacks.Load(),
	}
}

// statsSince converts the counter delta since a snapshot into the
// exported statistics.
func (d *dedupState) statsSince(before dedupCounters) *DedupStats {
	now := d.snapshot()
	return &DedupStats{
		Enabled:         true,
		Shapes:          int(now.shapes - before.shapes),
		PublishTotal:    int(now.pubTotal - before.pubTotal),
		PublishMemoized: int(now.pubHits - before.pubHits),
		TestTotal:       int(now.testTotal - before.testTotal),
		TestMemoized:    int(now.testTotal - before.testTotal - (now.testRuns - before.testRuns)),
		Fallbacks:       int(now.fallbacks - before.fallbacks),
	}
}

// dedupOn reports whether the shape memo layer is active.
func (r *Runner) dedupOn() bool { return !r.cfg.NoDedup }

// shapeFor returns (creating if needed) the memo entry for the
// definition's shape on the given server.
func (r *Runner) shapeFor(server framework.ServerFramework, def services.Definition) *shapeEntry {
	key := shapeKey{server: server.Name(), fp: shape.Of(def)}
	d := r.dedup
	d.mu.Lock()
	e := d.entries[key]
	if e == nil {
		e = &shapeEntry{tests: make([]testMemo, len(r.clients))}
		d.entries[key] = e
	}
	d.mu.Unlock()
	return e
}

// publishOne runs the description step for one service definition,
// through the shape memo when it applies. The returned slot carries
// the route taken (recordMode) so the cell journal can replay the
// exact same counter contributions on resume; ctx is threaded from the
// publish workers for parity with the transport APIs (in-process
// publishing runs to completion — the drain contract).
//
// needDoc controls whether a memo-served clone materializes its
// rendered document. Inside Run nothing ever reads a clone's bytes —
// tests run against the shape representative and only builder records
// journal a document — so the streaming pipeline passes false and
// skips the render entirely; the public Publish API passes true. Every
// other route (direct, fallback, builder) always carries its document.
func (r *Runner) publishOne(_ context.Context, server framework.ServerFramework, def services.Definition, needDoc bool) (s publishSlot) {
	r.met.publishTotal.Inc()
	if !r.dedupOn() {
		s = r.publishDirect(server, def)
		s.mode = modeDirect
		return s
	}
	if !shape.Memoizable(def) {
		r.dedup.fallbacks.Add(1)
		r.met.publishFallback.Inc()
		s = r.publishDirect(server, def)
		s.mode = modeFallback
		return s
	}
	r.dedup.pubTotal.Add(1)
	return r.publishEntry(r.shapeFor(server, def), server, def, needDoc)
}

// publishEntry routes one memoizable definition through its shape memo
// entry — publishOne's body once the entry is resolved. The planned
// executor (plan.go) calls it directly with entries resolved in bulk,
// so the hot path shares every memo branch (and every counter
// contribution) with the lazy path.
func (r *Runner) publishEntry(e *shapeEntry, server framework.ServerFramework, def services.Definition, needDoc bool) (s publishSlot) {
	built := false
	e.once.Do(func() {
		built = true
		r.dedup.shapes.Add(1)
		s = r.buildShape(e, server, def)
	})
	if built {
		s.mode = modeBuilt
		// verified means the memo is usable: the template reproduced the
		// document byte-for-byte, or the plan proved the shape solo (no
		// clone will ever consult the template). Resume replay credits
		// memo-path counters from this flag, so it must track memo
		// validity, not template existence.
		s.verified = e.tmpl != nil || e.solo
		return s
	}
	switch {
	case e.rejected:
		r.dedup.pubHits.Add(1)
		r.met.publishMemoized.Inc()
		s.mode = modeMemoRejected
		return s
	case e.err != nil:
		r.dedup.pubHits.Add(1)
		r.met.publishMemoized.Inc()
		s.err = fmt.Errorf("marshal WSDL for %s on %s: %w", def.Parameter.Name, server.Name(), e.err)
		return s
	case e.tmpl == nil:
		// The shape failed template verification: per-class path.
		r.dedup.fallbacks.Add(1)
		r.met.publishFallback.Inc()
		s = r.publishDirect(server, def)
		s.mode = modeMemoFallback
		return s
	}
	if !substitutionSafe(def) {
		// The name-sensitive WS-I chunk predicates failed: the shape's
		// memoized verdict may not transfer to this class's names, so
		// it takes the full per-class path (DESIGN.md §10).
		r.dedup.fallbacks.Add(1)
		r.met.publishFallback.Inc()
		s = r.publishDirect(server, def)
		s.mode = modeMemoFallback
		return s
	}
	var raw []byte
	if needDoc {
		var err error
		raw, err = e.tmpl.Render(shape.Vars(def))
		if err != nil {
			// Unreachable (slot arity is fixed); stay correct regardless.
			r.dedup.fallbacks.Add(1)
			r.met.publishFallback.Inc()
			s = r.publishDirect(server, def)
			s.mode = modeMemoFallback
			return s
		}
	}
	r.dedup.pubHits.Add(1)
	r.met.publishMemoized.Inc()
	// The WS-I verdict rides the memo: count it so the shape-level
	// check path stays observable next to executed checks (wsiChecks).
	r.met.wsiMemoized.Inc()
	s.ok = true
	s.mode = modeMemoized
	s.svc = PublishedService{
		Server:    server.Name(),
		Class:     def.Parameter.Name,
		Doc:       raw,
		Flagged:   e.flagged,
		Compliant: e.compliant,
		Profiles:  e.profiles,
		analysis:  &sharedAnalysis{},
		memo:      e,
	}
	return s
}

// buildShape computes the memo entry from the shape's first-seen
// class. The class's own outputs are produced exactly as on the
// per-class path; the split template is admitted only after it
// reproduces those outputs byte-for-byte.
func (r *Runner) buildShape(e *shapeEntry, server framework.ServerFramework, def services.Definition) (s publishSlot) {
	start := r.met.now()
	doc, err := server.Publish(def)
	if err != nil {
		r.met.observe(r.met.publishSeconds, start)
		r.met.publishRejected.Inc()
		e.rejected = true
		return s
	}
	raw, err := wsdl.Marshal(doc)
	r.met.observe(r.met.publishSeconds, start)
	if err != nil {
		e.err = err
		s.err = fmt.Errorf("marshal WSDL for %s on %s: %w", def.Parameter.Name, server.Name(), err)
		return s
	}
	report, profiles := r.checkDoc(doc)
	e.flagged = len(report.Violations) > 0
	e.compliant = report.Compliant()
	e.profiles = profiles
	if !e.solo {
		e.tmpl = r.splitShape(server, def, raw)
	}
	s.ok = true
	s.svc = PublishedService{
		Server:    server.Name(),
		Class:     def.Parameter.Name,
		Doc:       raw,
		Flagged:   e.flagged,
		Compliant: e.compliant,
		Profiles:  e.profiles,
		analysis:  &sharedAnalysis{},
	}
	if e.tmpl != nil || e.solo {
		// Only a verified shape may share memoized test outcomes (a
		// solo shape has nobody to share with, so it keeps the memo's
		// seeded analysis without needing the template proof). Seed
		// the representative's analysis from the in-memory document:
		// its serialized form just passed byte-for-byte verification,
		// so the serialize→re-parse round trip of the per-class path is
		// skipped — equivalence is proven at full scale by
		// TestDedupEquivalenceFull.
		s.svc.memo = e
		s.svc.analysis.once.Do(func() { s.svc.analysis.a = framework.AnalyzeDoc(doc) })
		e.rep = s.svc
	}
	return s
}

// splitShape publishes the shape's sentinel-renamed definition,
// splits its marshaled document into a template, and verifies the
// template re-renders the first class's real document byte-for-byte.
// Any disagreement returns nil — same-shape classes then fall back to
// the per-class path, trading speed for certainty.
func (r *Runner) splitShape(server framework.ServerFramework, def services.Definition, want []byte) *wsdl.Template {
	sdef, svars := shape.Sentinel(def)
	sdoc, err := server.Publish(sdef)
	if err != nil {
		return nil
	}
	tmpl, err := wsdl.MarshalTemplate(sdoc, svars)
	if err != nil {
		return nil
	}
	got, err := tmpl.Render(shape.Vars(def))
	if err != nil || !bytes.Equal(got, want) {
		return nil
	}
	return tmpl
}

// testFor runs steps 2–3 for one (service × client) test, serving it
// from the shape memo when the service carries a verified entry, and
// returns the packed outcome code for the service's columnar row. The
// memoized outcome is computed by whichever same-shape service
// reaches the client first; because the columnar form carries no
// name-derived strings, a clone IS the memoized code with the
// executed bit cleared — the distinction the cell journal persists so
// resume can re-seed memo slots without double-running tests.
func (r *Runner) testFor(ctx context.Context, svc *PublishedService, ci int) outcomeCode {
	r.met.testTotal.Inc()
	e := svc.memo
	if e == nil {
		res := runTest(ctx, r.clients[ci], svc, r.cfg.Reparse, r.met)
		return encodeOutcome(&res, true)
	}
	r.dedup.testTotal.Add(1)
	tm := &e.tests[ci]
	ran := false
	tm.once.Do(func() {
		ran = true
		r.dedup.testRuns.Add(1)
		res := runTest(ctx, r.clients[ci], &e.rep, r.cfg.Reparse, r.met)
		tm.code = encodeOutcome(&res, true)
	})
	if !ran {
		r.met.testMemoized.Inc()
		return tm.code &^ codeExecuted
	}
	return tm.code
}
