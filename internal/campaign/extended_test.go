package campaign

import (
	"context"
	"testing"

	"wsinterop/internal/framework"
	"wsinterop/internal/typesys"
)

// TestExtendedFourServerCampaign runs the widened setup the paper
// lists as future work: the three study servers plus the Apache Axis2
// server-side model. The new column's behaviour follows from the
// emitter's properties:
//
//   - throwable classes are not deployable, so Axis1's 889-error
//     family cannot occur against this server;
//   - the W3CEndpointReference emission declares a located import, so
//     the class that breaks nine clients elsewhere interoperates;
//   - the adb-format vendor facet still breaks the .NET languages.
func TestExtendedFourServerCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("extended campaign skipped in -short mode")
	}
	servers := append(framework.Servers(), framework.NewAxis2Server())
	res, err := NewRunner(Config{Servers: servers}).Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.ServerOrder) != 4 {
		t.Fatalf("server order = %v", res.ServerOrder)
	}
	axis2 := res.Servers["Apache Axis2 (server)"]
	if axis2 == nil {
		t.Fatal("missing Axis2 server summary")
	}

	wantDeployed := typesys.JavaBeanBoth - typesys.JavaThrowablesBoth
	if axis2.Deployed != wantDeployed {
		t.Errorf("Axis2 server deployed %d, want %d", axis2.Deployed, wantDeployed)
	}
	if res.TotalTests != (7239+wantDeployed)*11 {
		t.Errorf("total tests = %d", res.TotalTests)
	}

	// No throwables → Axis1 compiles everything against this server.
	if got := res.Matrix["Apache Axis1"]["Apache Axis2 (server)"].CompileErrors; got != 0 {
		t.Errorf("Axis1 compile errors = %d, want 0", got)
	}
	// The resolvable addressing variant removes the a/d generation
	// error family: only the vendor facet (b) remains, and only for
	// the .NET languages.
	wantGenErrors := map[string]int{
		"Metro": 0, "Apache Axis1": 0, "Apache Axis2": 0,
		"Apache CXF": 0, "JBossWS CXF": 0,
		".NET C#": 1, ".NET Visual Basic": 1, ".NET JScript": 1,
		"gSOAP": 0, "Zend Framework": 0, "suds": 0,
	}
	for client, want := range wantGenErrors {
		if got := res.Matrix[client]["Apache Axis2 (server)"].GenErrors; got != want {
			t.Errorf("%s gen errors on Axis2 server = %d, want %d", client, got, want)
		}
	}
	// The study's three columns are untouched by adding a fourth.
	if res.Servers["Metro"].CompileErrors != 529 ||
		res.Servers["JBossWS CXF"].CompileErrors != 464 ||
		res.Servers["WCF .NET"].CompileErrors != 308 {
		t.Error("original columns changed when widening the setup")
	}
	// Remaining per-column issues on the new server: Axis2 client's
	// duplicate-local bug still fires (XMLGregorianCalendar), JScript
	// still breaks on the 50 reserved-word classes, VB on the echo
	// field.
	if got := res.Matrix["Apache Axis2"]["Apache Axis2 (server)"].CompileErrors; got != 1 {
		t.Errorf("Axis2 client compile errors = %d, want 1", got)
	}
	if got := res.Matrix[".NET JScript"]["Apache Axis2 (server)"].CompileErrors; got != 50 {
		t.Errorf("JScript compile errors = %d, want 50", got)
	}
	if got := res.Matrix[".NET Visual Basic"]["Apache Axis2 (server)"].CompileErrors; got != 1 {
		t.Errorf("VB compile errors = %d, want 1", got)
	}
}
