package campaign

import (
	"time"

	"wsinterop/internal/obs"
	"wsinterop/internal/wsi"
)

// runnerMetrics caches the campaign's observability instruments so the
// per-cell hot paths pay atomic operations only, never a registry
// lookup. Every counter increment site is guarded by the same
// once-per-unit structure (publish slots, shape entries, test memo
// slots) that makes the Result deterministic, so counter values are
// identical across worker counts — the obs package determinism
// contract. A nil *runnerMetrics (only reachable through the exported
// RunTest convenience API) disables instrumentation.
type runnerMetrics struct {
	reg *obs.Registry

	// Per-stage latency histograms.
	publishSeconds *obs.Histogram // description generation (publish + marshal)
	wsiSeconds     *obs.Histogram // WS-I compliance check
	genSeconds     *obs.Histogram // client artifact generation
	compileSeconds *obs.Histogram // artifact compilation / verification
	commSeconds    *obs.Histogram // communication round trip (steps 4–5)

	// Stage counters.
	publishTotal    *obs.Counter // services routed through the description step
	publishRejected *obs.Counter // not deployable (excluded, the paper's optimistic assumption)
	publishMemoized *obs.Counter // served by the shape memo instead of a full publish
	publishFallback *obs.Counter // memo bypasses (hostile names, failed verification)
	wsiChecks       *obs.Counter // WS-I document checks executed
	wsiFlagged      *obs.Counter // checks that raised at least one finding
	wsiMemoized     *obs.Counter // verdicts served from the shape memo

	// profileCompliant counts folded services compliant with each
	// registered profile (campaign.wsi.profile.<id>.compliant), indexed
	// in roster order. Incremented only inside the deterministic
	// classification fold (foldCodes), so the values obey the obs
	// determinism contract like every other fold counter.
	profileCompliant []*obs.Counter
	genRuns          *obs.Counter // artifact generations executed
	genErrors        *obs.Counter // generations classified as errors
	compileRuns      *obs.Counter // compilations executed
	compileErrors    *obs.Counter // compilations classified as errors
	testTotal        *obs.Counter // client tests routed (memoized or not)
	testMemoized     *obs.Counter // tests served by cloning a memoized outcome
	commCells        *obs.Counter // communication cells exchanged

	// Plan bookkeeping (plan.go) — deliberately namespaced under
	// campaign.plan. so the planned-vs-lazy equivalence tests can strip
	// them: the lazy ablation never builds a plan.
	planBuilds        *obs.Counter // plans built from a catalog walk
	planCacheHits     *obs.Counter // plans loaded from the on-disk cache
	planCacheMisses   *obs.Counter // cache lookups with no file
	planCacheRejected *obs.Counter // cache files refused (stale, corrupt, version skew)
	planShared        *obs.Counter // plans adopted from another runner (AdoptPlan)

	// Robustness outcome counters (folded deterministically).
	robustSkipped      *obs.Counter
	robustDetected     *obs.Counter
	robustMasked       *obs.Counter
	robustWrongSuccess *obs.Counter
	robustRecovered    *obs.Counter

	// Version-matrix outcome counters (folded deterministically).
	versionSkipped    *obs.Counter
	versionAccepted   *obs.Counter
	versionRejected   *obs.Counter
	versionMishandled *obs.Counter

	// Live gauges — outside the determinism contract.
	queueDepth *obs.Gauge // outstanding jobs in the streaming test pool
	workers    *obs.Gauge // configured worker count
}

// newRunnerMetrics resolves every instrument once.
func newRunnerMetrics(reg *obs.Registry) *runnerMetrics {
	if reg == nil {
		return nil
	}
	var profileCompliant []*obs.Counter
	for _, p := range wsi.Profiles() {
		profileCompliant = append(profileCompliant,
			reg.Counter("campaign.wsi.profile."+p.ID+".compliant"))
	}
	return &runnerMetrics{
		reg:                reg,
		publishSeconds:     reg.Histogram("campaign.publish.seconds"),
		wsiSeconds:         reg.Histogram("campaign.wsi.seconds"),
		genSeconds:         reg.Histogram("campaign.generate.seconds"),
		compileSeconds:     reg.Histogram("campaign.compile.seconds"),
		commSeconds:        reg.Histogram("campaign.communication.seconds"),
		publishTotal:       reg.Counter("campaign.publish.total"),
		publishRejected:    reg.Counter("campaign.publish.rejected"),
		publishMemoized:    reg.Counter("campaign.publish.memoized"),
		publishFallback:    reg.Counter("campaign.publish.fallbacks"),
		wsiChecks:          reg.Counter("campaign.wsi.checks"),
		wsiFlagged:         reg.Counter("campaign.wsi.flagged"),
		wsiMemoized:        reg.Counter("campaign.wsi.memoized"),
		profileCompliant:   profileCompliant,
		genRuns:            reg.Counter("campaign.generate.runs"),
		genErrors:          reg.Counter("campaign.generate.errors"),
		compileRuns:        reg.Counter("campaign.compile.runs"),
		compileErrors:      reg.Counter("campaign.compile.errors"),
		testTotal:          reg.Counter("campaign.test.total"),
		testMemoized:       reg.Counter("campaign.test.memoized"),
		commCells:          reg.Counter("campaign.communication.cells"),
		planBuilds:         reg.Counter("campaign.plan.builds"),
		planCacheHits:      reg.Counter("campaign.plan.cache.hits"),
		planCacheMisses:    reg.Counter("campaign.plan.cache.misses"),
		planCacheRejected:  reg.Counter("campaign.plan.cache.rejected"),
		planShared:         reg.Counter("campaign.plan.shared"),
		robustSkipped:      reg.Counter("campaign.robust.skipped"),
		robustDetected:     reg.Counter("campaign.robust.detected"),
		robustMasked:       reg.Counter("campaign.robust.masked"),
		robustWrongSuccess: reg.Counter("campaign.robust.wrong_success"),
		robustRecovered:    reg.Counter("campaign.robust.recovered"),
		versionSkipped:     reg.Counter("campaign.versions.skipped"),
		versionAccepted:    reg.Counter("campaign.versions.accepted"),
		versionRejected:    reg.Counter("campaign.versions.typed_reject"),
		versionMishandled:  reg.Counter("campaign.versions.silent_mishandle"),
		queueDepth:         reg.Gauge("campaign.queue.depth"),
		workers:            reg.Gauge("campaign.workers"),
	}
}

// now reads the registry clock; the zero time when metering is off.
func (m *runnerMetrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return m.reg.Now()
}

// since measures elapsed stage time on the registry clock.
func (m *runnerMetrics) since(start time.Time) time.Duration {
	if m == nil {
		return 0
	}
	return m.reg.Since(start)
}

// observe folds one stage latency into a histogram.
func (m *runnerMetrics) observe(h *obs.Histogram, start time.Time) {
	if m == nil {
		return
	}
	h.Observe(m.reg.Since(start))
}

// recordGen folds one artifact-generation run and returns the stage
// boundary it stamped, so the caller can start the next stage on the
// same clock read instead of taking another.
func (m *runnerMetrics) recordGen(start time.Time, errored bool) time.Time {
	if m == nil {
		return time.Time{}
	}
	end := m.reg.Now()
	m.genSeconds.Observe(end.Sub(start))
	m.genRuns.Inc()
	if errored {
		m.genErrors.Inc()
	}
	return end
}

// recordCompile folds one compilation run.
func (m *runnerMetrics) recordCompile(start time.Time, errored bool) {
	if m == nil {
		return
	}
	m.compileSeconds.Observe(m.reg.Since(start))
	m.compileRuns.Inc()
	if errored {
		m.compileErrors.Inc()
	}
}

// recordVersion folds one version-matrix cell outcome. Like
// recordRobust it is called only from the deterministic per-server
// fold (and resume replay), keeping the counters inside the
// determinism contract.
func (m *runnerMetrics) recordVersion(o VersionOutcome) {
	if m == nil {
		return
	}
	switch o {
	case VersionSkipped:
		m.versionSkipped.Inc()
	case VersionAccepted:
		m.versionAccepted.Inc()
	case VersionTypedReject:
		m.versionRejected.Inc()
	case VersionMishandled:
		m.versionMishandled.Inc()
	}
}

// recordRobust folds one robustness cell outcome. Called from the
// deterministic per-server fold, never from workers, so the counters
// stay inside the determinism contract.
func (m *runnerMetrics) recordRobust(o RobustOutcome) {
	if m == nil {
		return
	}
	switch o {
	case RobustSkipped:
		m.robustSkipped.Inc()
	case RobustDetected:
		m.robustDetected.Inc()
	case RobustMasked:
		m.robustMasked.Inc()
	case RobustWrongSuccess:
		m.robustWrongSuccess.Inc()
	case RobustRecovered:
		m.robustRecovered.Inc()
	}
}
