package campaign

// This file is the package's stable construction surface (DESIGN.md
// §9.4): context-first package-level entry points plus a functional-
// option constructor. The Config struct remains exported for
// compatibility, but new knobs are added here first.

import (
	"context"

	"wsinterop/internal/framework"
	"wsinterop/internal/obs"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

// Run executes a full campaign with the given configuration on a
// background context — the package-level convenience entry point.
// Use RunContext to make the run cancellable.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes a full campaign under ctx. Cancellation is
// cooperative: in-flight services drain to completion (and, with
// Config.Checkpoint set, are journaled) before the run returns
// ctx.Err(), so a cancelled checkpointed run always leaves resumable
// state.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return NewRunner(cfg).Run(ctx)
}

// Option configures a campaign Runner built by New.
type Option func(*Config)

// New builds a Runner from functional options — the recommended
// construction surface. A runner built with no options runs the full
// study: every server and client framework, full catalogs, GOMAXPROCS
// workers.
//
//	r := campaign.New(campaign.WithLimit(500), campaign.WithCheckpoint(dir))
//	res, err := r.Run(ctx)
func New(opts ...Option) *Runner {
	var cfg Config
	for _, opt := range opts {
		if opt != nil {
			opt(&cfg)
		}
	}
	return NewRunner(cfg)
}

// WithServers restricts the campaign to the given server frameworks.
func WithServers(servers ...framework.ServerFramework) Option {
	return func(cfg *Config) { cfg.Servers = servers }
}

// WithClients restricts the campaign to the given client frameworks.
func WithClients(clients ...framework.ClientFramework) Option {
	return func(cfg *Config) { cfg.Clients = clients }
}

// WithCatalog overrides catalog selection per language.
func WithCatalog(catalogFor func(lang typesys.Language) *typesys.Catalog) Option {
	return func(cfg *Config) { cfg.CatalogFor = catalogFor }
}

// WithLimit caps the number of classes per catalog (0 = all).
func WithLimit(n int) Option {
	return func(cfg *Config) { cfg.Limit = n }
}

// WithWorkers bounds the worker pool (0 = GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(cfg *Config) { cfg.Workers = n }
}

// WithKeepFailures retains per-test detail for every errored test in
// Result.Failures.
func WithKeepFailures() Option {
	return func(cfg *Config) { cfg.KeepFailures = true }
}

// WithReparse forces the byte-level client path — the shared-analysis
// cache ablation (DESIGN.md §6.3).
func WithReparse() Option {
	return func(cfg *Config) { cfg.Reparse = true }
}

// WithoutDedup disables the structural-shape memo layer — the
// memoization ablation (DESIGN.md §6.6).
func WithoutDedup() Option {
	return func(cfg *Config) { cfg.NoDedup = true }
}

// WithVariant selects the service interface complexity.
func WithVariant(v services.Variant) Option {
	return func(cfg *Config) { cfg.Variant = v }
}

// WithStyle selects the SOAP binding style the default servers emit.
func WithStyle(s wsdl.Style) Option {
	return func(cfg *Config) { cfg.Style = s }
}

// WithProgress installs a live progress callback.
func WithProgress(fn func(stage string, done, total int)) Option {
	return func(cfg *Config) { cfg.Progress = fn }
}

// WithChecker overrides the WS-I compliance checker.
func WithChecker(c *wsi.Checker) Option {
	return func(cfg *Config) { cfg.Checker = c }
}

// WithObs instruments the runner into the given metrics registry.
func WithObs(reg *obs.Registry) Option {
	return func(cfg *Config) { cfg.Obs = reg }
}

// WithCheckpoint makes runs durable: completed cells are journaled to
// dir as they finish (DESIGN.md §9).
func WithCheckpoint(dir string) Option {
	return func(cfg *Config) { cfg.Checkpoint = dir }
}

// WithResume replays the cells journaled under the checkpoint
// directory instead of re-executing them. Combine with WithCheckpoint.
func WithResume() Option {
	return func(cfg *Config) { cfg.Resume = true }
}

// WithShard restricts the run to one deterministic slice of every
// catalog — shard index of count — for distributed execution
// (DESIGN.md §11). Combine with WithCheckpoint so the shard journals
// for a later Merge.
func WithShard(index, count int) Option {
	return func(cfg *Config) { cfg.Shard = ShardSpec{Index: index, Count: count} }
}

// WithShardSpec is WithShard taking a planned spec (PlanShards),
// including its lease: a lease minted for a different campaign
// configuration is refused at Run.
func WithShardSpec(spec ShardSpec) Option {
	return func(cfg *Config) { cfg.Shard = spec }
}

// WithoutPlan disables shape-first planned execution — the planner
// ablation (DESIGN.md §12). The campaign runs on the lazy class-first
// path, discovering shapes during execution.
func WithoutPlan() Option {
	return func(cfg *Config) { cfg.NoPlan = true }
}

// WithPlanCache persists built execution plans to dir, keyed by the
// campaign fingerprint, so repeated runs of the same configuration
// skip the catalog walk and shape hashing (DESIGN.md §12).
func WithPlanCache(dir string) Option {
	return func(cfg *Config) { cfg.PlanCache = dir }
}
