package campaign

import (
	"context"
	"testing"

	"wsinterop/internal/services"
)

// TestVariantCampaignsAgree verifies the complexity extension's
// central claim: the interoperability defects of this corpus are
// driven by the parameter classes, so raising the interface
// complexity (multi-parameter operations, nested envelopes,
// collections) must not change the error picture.
func TestVariantCampaignsAgree(t *testing.T) {
	baseline, err := NewRunner(Config{Limit: 200}).Run(context.Background())
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	for _, v := range services.Variants()[1:] {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			res, err := NewRunner(Config{Limit: 200, Variant: v}).Run(context.Background())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.TotalPublished != baseline.TotalPublished {
				t.Errorf("published = %d, baseline %d", res.TotalPublished, baseline.TotalPublished)
			}
			if res.InteropErrors != baseline.InteropErrors {
				t.Errorf("interop errors = %d, baseline %d", res.InteropErrors, baseline.InteropErrors)
			}
			if res.SameFrameworkErrors != baseline.SameFrameworkErrors {
				t.Errorf("same-framework = %d, baseline %d", res.SameFrameworkErrors, baseline.SameFrameworkErrors)
			}
			for _, server := range res.ServerOrder {
				got, want := res.Servers[server], baseline.Servers[server]
				if got.GenErrors != want.GenErrors || got.CompileErrors != want.CompileErrors {
					t.Errorf("%s: errors %d/%d, baseline %d/%d", server,
						got.GenErrors, got.CompileErrors, want.GenErrors, want.CompileErrors)
				}
			}
		})
	}
}

// TestVariantCommunication drives the complexity variants through the
// live round trip: the richer interfaces must still echo correctly.
func TestVariantCommunication(t *testing.T) {
	for _, v := range services.Variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			r := NewRunner(Config{Limit: 60, Variant: v})
			res, err := r.RunCommunication(context.Background())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			totals := res.Totals()
			if totals.Succeeded == 0 {
				t.Error("no successful round trips")
			}
			if totals.Faults != 0 || totals.Mismatches != 0 {
				t.Errorf("runtime failures under variant %s: %+v", v, totals)
			}
		})
	}
}
