package campaign

// Tests for distributed campaign execution (distributed.go): the
// shard-lease planner, shard-restricted runs journaling independently,
// and the merge coordinator folding shard journals into a Result —
// and metrics — identical to a single-process run. The determinism
// contract is the acceptance criterion, proven at full study scale by
// TestDistributedEquivalenceFull.

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"wsinterop/internal/journal"
	"wsinterop/internal/obs"
)

func TestShardSpecValidate(t *testing.T) {
	cases := []struct {
		spec ShardSpec
		ok   bool
	}{
		{ShardSpec{}, true},
		{ShardSpec{Index: 0, Count: 1}, true},
		{ShardSpec{Index: 3, Count: 4}, true},
		{ShardSpec{Index: 4, Count: 4}, false},
		{ShardSpec{Index: -1, Count: 4}, false},
		{ShardSpec{Index: 0, Count: -2}, false},
		{ShardSpec{Index: 2, Count: 0}, false},
		{ShardSpec{Lease: "dangling"}, false},
	}
	for _, c := range cases {
		if err := c.spec.validate(); (err == nil) != c.ok {
			t.Errorf("validate(%+v) = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestPlanShards(t *testing.T) {
	r := New(WithLimit(50))
	specs, err := r.PlanShards(4)
	if err != nil {
		t.Fatalf("PlanShards: %v", err)
	}
	if len(specs) != 4 {
		t.Fatalf("planned %d specs, want 4", len(specs))
	}
	again, _ := New(WithLimit(50)).PlanShards(4)
	if !reflect.DeepEqual(specs, again) {
		t.Error("planning the same configuration twice produced different leases")
	}
	other, _ := New(WithLimit(51)).PlanShards(4)
	seen := map[string]bool{}
	for i, s := range specs {
		if s.Index != i || s.Count != 4 {
			t.Errorf("spec %d = %s", i, s)
		}
		if s.Lease == "" || seen[s.Lease] {
			t.Errorf("spec %d lease %q missing or duplicated", i, s.Lease)
		}
		seen[s.Lease] = true
		if s.Lease == other[i].Lease {
			t.Errorf("spec %d lease identical across different configurations", i)
		}
	}
	if _, err := r.PlanShards(0); err == nil {
		t.Error("PlanShards(0) should fail")
	}
	if _, err := New(WithShard(0, 2)).PlanShards(2); err == nil {
		t.Error("planning from a sharded configuration should fail")
	}
}

// TestShardPartitionTiles proves the shard filter is a partition: for
// every server the shard slices are disjoint and their union, ordered
// by shard-interleaving, is exactly the unsharded definition list.
func TestShardPartitionTiles(t *testing.T) {
	full := NewRunner(Config{Limit: 37})
	for _, server := range full.servers {
		defs, err := full.defsFor(server)
		if err != nil {
			t.Fatal(err)
		}
		const n = 4
		seen := make(map[string]int)
		total := 0
		for i := 0; i < n; i++ {
			shr := NewRunner(Config{Limit: 37, Shard: ShardSpec{Index: i, Count: n}})
			sdefs, err := shr.defsFor(server)
			if err != nil {
				t.Fatal(err)
			}
			total += len(sdefs)
			for k, d := range sdefs {
				if prev, dup := seen[d.Parameter.Name]; dup {
					t.Fatalf("%s: class %s in shards %d and %d", server.Name(), d.Parameter.Name, prev, i)
				}
				seen[d.Parameter.Name] = i
				if want := defs[i+k*n].Parameter.Name; d.Parameter.Name != want {
					t.Fatalf("%s shard %d slot %d = %s, want %s", server.Name(), i, k, d.Parameter.Name, want)
				}
			}
		}
		if total != len(defs) {
			t.Fatalf("%s: shards cover %d of %d definitions", server.Name(), total, len(defs))
		}
	}
}

// runShardWorkers executes every shard of an n-way split to completion
// in its own checkpoint directory — simulating n worker processes —
// and returns the journal directories. killShard, when >= 0, first
// interrupts that shard's run mid-journal and then resumes it, so the
// matrix covers the worker-crash-and-resume path.
func runShardWorkers(t *testing.T, limit, workers, n, killShard, killAt int) []string {
	t.Helper()
	base := t.TempDir()
	dirs := make([]string, n)
	for i := 0; i < n; i++ {
		dirs[i] = filepath.Join(base, fmt.Sprintf("shard%d", i))
		cfg := resumeConfig(limit, workers)
		cfg.Shard = ShardSpec{Index: i, Count: n}
		if i == killShard {
			interruptAt(t, cfg, dirs[i], killAt)
			rcfg := resumeConfig(limit, workers)
			rcfg.Shard = ShardSpec{Index: i, Count: n}
			rcfg.Checkpoint, rcfg.Resume = dirs[i], true
			if _, err := NewRunner(rcfg).Run(context.Background()); err != nil {
				t.Fatalf("resume killed shard %d/%d: %v", i, n, err)
			}
			continue
		}
		cfg.Checkpoint = dirs[i]
		if _, err := NewRunner(cfg).Run(context.Background()); err != nil {
			t.Fatalf("shard %d/%d: %v", i, n, err)
		}
	}
	return dirs
}

// mergeShardJournals folds shard journals with a fresh frozen-clock runner of
// the same campaign configuration.
func mergeShardJournals(t *testing.T, limit, workers int, dirs []string) (*Result, *obs.Snapshot) {
	t.Helper()
	cfg := resumeConfig(limit, workers)
	r := NewRunner(cfg)
	res, err := r.Merge(context.Background(), dirs)
	if err != nil {
		t.Fatalf("merge %d shards: %v", len(dirs), err)
	}
	return res, cfg.Obs.Snapshot()
}

// runDistributedMatrix is the shared equivalence matrix: split the
// campaign 1, 2, and 4 ways (one 4-way shard killed and resumed),
// merge, and compare against a single-process run byte-for-byte.
func runDistributedMatrix(t *testing.T, limit int) {
	cleanCfg := resumeConfig(limit, 4)
	clean, err := NewRunner(cleanCfg).Run(context.Background())
	if err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	cleanBytes := resultBytes(t, clean)
	cleanSnap := cleanCfg.Obs.Snapshot()

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			killShard, killAt := -1, 0
			if n == 4 {
				// One worker dies mid-shard and is resumed before merging.
				killShard, killAt = 1, clean.TotalServices/(n*4)
			}
			dirs := runShardWorkers(t, limit, 4, n, killShard, killAt)
			res, snap := mergeShardJournals(t, limit, 4, dirs)

			compareResults(t, clean, res)
			if !reflect.DeepEqual(clean.Dedup, res.Dedup) {
				t.Errorf("dedup stats differ:\nsingle: %+v\nmerged: %+v", clean.Dedup, res.Dedup)
			}
			if !reflect.DeepEqual(clean.Failures, res.Failures) {
				t.Errorf("failure index differs: single %d entries, merged %d",
					len(clean.Failures), len(res.Failures))
			}
			if got := resultBytes(t, res); string(got) != string(cleanBytes) {
				t.Error("merged Result is not byte-identical to the single-process run")
			}
			compareSnapshots(t, fmt.Sprintf("shards=%d", n), cleanSnap, snap)
		})
	}
}

func TestDistributedEquivalenceScaled(t *testing.T) {
	runDistributedMatrix(t, 150)
}

// TestDistributedEquivalenceFull is the acceptance check at full study
// scale: 22 024 service cells split 1, 2, and 4 ways across
// independently journaling workers (one killed and resumed), merged
// into a Result byte-identical — and counters/histograms DeepEqual —
// to the single-process run.
func TestDistributedEquivalenceFull(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale distributed equivalence skipped in -short mode")
	}
	cleanCfg := resumeConfig(0, 0)
	clean, err := NewRunner(cleanCfg).Run(context.Background())
	if err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	if clean.TotalServices != 22024 {
		t.Fatalf("TotalServices = %d, want the study's 22024", clean.TotalServices)
	}
	cleanBytes := resultBytes(t, clean)
	cleanSnap := cleanCfg.Obs.Snapshot()

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			killShard, killAt := -1, 0
			if n == 4 {
				killShard, killAt = 2, clean.TotalServices/(n*2)
			}
			dirs := runShardWorkers(t, 0, 0, n, killShard, killAt)
			res, snap := mergeShardJournals(t, 0, 0, dirs)
			compareResults(t, clean, res)
			if !reflect.DeepEqual(clean.Dedup, res.Dedup) {
				t.Errorf("dedup stats differ:\nsingle: %+v\nmerged: %+v", clean.Dedup, res.Dedup)
			}
			if got := resultBytes(t, res); string(got) != string(cleanBytes) {
				t.Error("merged Result is not byte-identical to the single-process run")
			}
			compareSnapshots(t, fmt.Sprintf("shards=%d", n), cleanSnap, snap)
		})
	}
}

// TestDistributedNoDedupAblation: sharded execution composes with the
// shape-memo ablation — per-class journals merge without any
// cross-shard normalization.
func TestDistributedNoDedupAblation(t *testing.T) {
	const limit = 60
	cleanCfg := resumeConfig(limit, 4)
	cleanCfg.NoDedup = true
	clean, err := NewRunner(cleanCfg).Run(context.Background())
	if err != nil {
		t.Fatalf("single-process run: %v", err)
	}
	base := t.TempDir()
	dirs := make([]string, 2)
	for i := range dirs {
		dirs[i] = filepath.Join(base, fmt.Sprintf("shard%d", i))
		cfg := resumeConfig(limit, 4)
		cfg.NoDedup = true
		cfg.Shard = ShardSpec{Index: i, Count: 2}
		cfg.Checkpoint = dirs[i]
		if _, err := NewRunner(cfg).Run(context.Background()); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	mcfg := resumeConfig(limit, 4)
	mcfg.NoDedup = true
	res, err := NewRunner(mcfg).Merge(context.Background(), dirs)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	compareResults(t, clean, res)
	if got, want := resultBytes(t, res), resultBytes(t, clean); string(got) != string(want) {
		t.Error("merged nodedup Result is not byte-identical to the single-process run")
	}
}

// TestMergeRefusals: every way a merge can be wrong fails loudly with
// nothing executed, instead of producing a silently-miscounted Result.
func TestMergeRefusals(t *testing.T) {
	const limit = 40
	dirs := runShardWorkers(t, limit, 4, 2, -1, 0)

	t.Run("fingerprint-mismatch", func(t *testing.T) {
		cfg := resumeConfig(limit+1, 4) // different Limit → different campaign
		_, err := NewRunner(cfg).Merge(context.Background(), dirs)
		if !errors.Is(err, journal.ErrFingerprint) {
			t.Errorf("err = %v, want journal.ErrFingerprint", err)
		}
	})
	t.Run("missing-shard", func(t *testing.T) {
		_, err := NewRunner(resumeConfig(limit, 4)).Merge(context.Background(), dirs[:1])
		if err == nil || !strings.Contains(err.Error(), "journals for a") {
			t.Errorf("merging 1 of 2 shards: err = %v", err)
		}
	})
	t.Run("duplicate-shard", func(t *testing.T) {
		_, err := NewRunner(resumeConfig(limit, 4)).Merge(context.Background(), []string{dirs[0], dirs[0]})
		if err == nil || !strings.Contains(err.Error(), "overlap") {
			t.Errorf("merging one shard twice: err = %v", err)
		}
	})
	t.Run("incomplete-shard", func(t *testing.T) {
		base := t.TempDir()
		half := []string{filepath.Join(base, "s0"), filepath.Join(base, "s1")}
		cfg := resumeConfig(limit, 4)
		cfg.Shard = ShardSpec{Index: 0, Count: 2}
		cfg.Checkpoint = half[0]
		if _, err := NewRunner(cfg).Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Shard 1 is interrupted and never resumed.
		icfg := resumeConfig(limit, 4)
		icfg.Shard = ShardSpec{Index: 1, Count: 2}
		interruptAt(t, icfg, half[1], 3)
		_, err := NewRunner(resumeConfig(limit, 4)).Merge(context.Background(), half)
		if err == nil || !strings.Contains(err.Error(), "incomplete") {
			t.Errorf("merging an interrupted shard: err = %v", err)
		}
	})
	t.Run("merge-while-sharded", func(t *testing.T) {
		cfg := resumeConfig(limit, 4)
		cfg.Shard = ShardSpec{Index: 0, Count: 2}
		if _, err := NewRunner(cfg).Merge(context.Background(), dirs); err == nil {
			t.Error("merge on a sharded runner should fail")
		}
	})
	t.Run("merge-with-checkpoint", func(t *testing.T) {
		cfg := resumeConfig(limit, 4)
		cfg.Checkpoint = t.TempDir()
		if _, err := NewRunner(cfg).Merge(context.Background(), dirs); err == nil {
			t.Error("merge with its own checkpoint should fail")
		}
	})
	t.Run("no-dirs", func(t *testing.T) {
		if _, err := NewRunner(resumeConfig(limit, 4)).Merge(context.Background(), nil); err == nil {
			t.Error("merge with no directories should fail")
		}
	})
}

// TestShardJournalIdentity: a shard journal refuses to resume as a
// different shard or as a whole-campaign checkpoint, and a planned
// lease is bound to its configuration.
func TestShardJournalIdentity(t *testing.T) {
	const limit = 30
	dir := t.TempDir()
	cfg := resumeConfig(limit, 2)
	cfg.Shard = ShardSpec{Index: 0, Count: 2}
	cfg.Checkpoint = dir
	if _, err := NewRunner(cfg).Run(context.Background()); err != nil {
		t.Fatalf("shard run: %v", err)
	}

	wrong := resumeConfig(limit, 2)
	wrong.Shard = ShardSpec{Index: 1, Count: 2}
	wrong.Checkpoint, wrong.Resume = dir, true
	if _, err := NewRunner(wrong).Run(context.Background()); !errors.Is(err, journal.ErrShard) {
		t.Errorf("resuming as the wrong shard: err = %v, want journal.ErrShard", err)
	}

	whole := resumeConfig(limit, 2)
	whole.Checkpoint, whole.Resume = dir, true
	if _, err := NewRunner(whole).Run(context.Background()); !errors.Is(err, journal.ErrShard) {
		t.Errorf("resuming a shard journal unsharded: err = %v, want journal.ErrShard", err)
	}

	// A lease planned for one configuration is refused by another.
	specs, err := New(WithLimit(limit)).PlanShards(2)
	if err != nil {
		t.Fatal(err)
	}
	stale := New(WithLimit(limit+5), WithShardSpec(specs[0]))
	if _, err := stale.Run(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "different campaign configuration") {
		t.Errorf("stale lease: err = %v", err)
	}
	// The same spec under the configuration that planned it is accepted.
	good := New(WithLimit(limit), WithShardSpec(specs[0]), WithWorkers(2))
	if _, err := good.Run(context.Background()); err != nil {
		t.Errorf("planned spec under its own configuration: %v", err)
	}
}
