package campaign

import (
	"context"
	"testing"
	"testing/quick"

	"wsinterop/internal/typesys"
)

// TestCampaignInvariantsProperty runs scaled campaigns at
// pseudo-random limits and checks the structural invariants that must
// hold at every scale.
func TestCampaignInvariantsProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property campaign sweep skipped in -short mode")
	}
	prop := func(seed uint16) bool {
		limit := 20 + int(seed)%180 // 20..199 classes per catalog
		res, err := NewRunner(Config{Limit: limit}).Run(context.Background())
		if err != nil {
			t.Logf("limit %d: %v", limit, err)
			return false
		}
		if res.TotalServices != 3*limit {
			return false
		}
		if res.TotalTests != res.TotalPublished*len(res.ClientOrder) {
			return false
		}
		genE, compE := 0, 0
		for _, s := range res.Servers {
			if s.Deployed > s.Created || s.DescriptionErrors != 0 {
				return false
			}
			genE += s.GenErrors
			compE += s.CompileErrors
		}
		if res.InteropErrors != genE+compE {
			return false
		}
		if res.FlaggedCleanServices > res.FlaggedServices {
			return false
		}
		return res.SameFrameworkErrors <= res.InteropErrors
	}
	cfg := &quick.Config{MaxCount: 12}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestCustomCatalogCampaign runs the campaign over a user-supplied
// catalog (the ImportJSON facility), demonstrating Config.CatalogFor.
func TestCustomCatalogCampaign(t *testing.T) {
	data := `{"language":"Java","classes":[
	  {"name":"com.acme.Widget","kind":"bean",
	   "fields":[{"name":"value","kind":"string"}]},
	  {"name":"com.acme.Colliding","kind":"bean","hints":["case-colliding-fields"],
	   "fields":[{"name":"total","kind":"int"},{"name":"Total","kind":"int"}]},
	  {"name":"com.acme.Hidden","kind":"interface"}
	]}`
	javaCat, err := typesys.ImportJSON([]byte(data))
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	csData := `{"language":"C#","classes":[
	  {"name":"Acme.Gadget","kind":"bean",
	   "fields":[{"name":"label","kind":"string"}]}
	]}`
	csCat, err := typesys.ImportJSON([]byte(csData))
	if err != nil {
		t.Fatalf("import: %v", err)
	}

	cfg := Config{CatalogFor: func(lang typesys.Language) *typesys.Catalog {
		if lang == typesys.Java {
			return javaCat
		}
		return csCat
	}}
	res, err := NewRunner(cfg).Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.TotalServices != 3+3+1 {
		t.Errorf("total services = %d, want 7", res.TotalServices)
	}
	// Widget+Colliding deploy on both Java servers; Gadget on WCF.
	if res.TotalPublished != 2+2+1 {
		t.Errorf("published = %d, want 5", res.TotalPublished)
	}
	// The case-colliding custom class trips Axis2 on both Java
	// servers, exactly like the built-in narrative classes.
	for _, server := range []string{"Metro", "JBossWS CXF"} {
		if got := res.Matrix["Apache Axis2"][server].CompileErrors; got != 1 {
			t.Errorf("Axis2 × %s compile errors = %d, want 1", server, got)
		}
	}
}
