package campaign

import (
	"context"
	"reflect"
	"testing"

	"wsinterop/internal/framework"
)

func TestCommunicationScaled(t *testing.T) {
	r := NewRunner(limitedConfig(150))
	res, err := r.RunCommunication(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.ServerOrder) != 3 {
		t.Fatalf("servers = %v", res.ServerOrder)
	}
	totals := res.Totals()
	if totals.Combinations == 0 {
		t.Fatal("no combinations executed")
	}
	sum := totals.Blocked + totals.NoOperations + totals.Faults + totals.Mismatches + totals.Succeeded
	if sum != totals.Combinations {
		t.Errorf("outcome buckets (%d) do not partition combinations (%d)", sum, totals.Combinations)
	}
	if totals.Succeeded == 0 {
		t.Error("clean combinations should complete the round trip")
	}
	// The extension's headline property: nothing that passed the three
	// static steps fails at communication time (echo semantics hold),
	// so faults and mismatches are zero in this corpus.
	if totals.Faults != 0 || totals.Mismatches != 0 {
		t.Errorf("unexpected runtime failures: %+v", totals)
	}
}

func TestCommunicationSurfacesSilentFailures(t *testing.T) {
	// JBossWS publishes the two zero-operation WSDLs; Axis1, CXF and
	// JBossWS client tools generate method-less stubs silently. The
	// communication step is where those become visible.
	cfg := Config{
		Servers: []framework.ServerFramework{framework.NewJBossWSServer()},
		Clients: []framework.ClientFramework{
			framework.NewAxis1Client(),
			framework.NewCXFClient(),
			framework.NewJBossWSClient(),
		},
	}
	r := NewRunner(cfg)
	res, err := r.RunCommunication(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := res.Servers["JBossWS CXF"]
	// Two zero-operation services × three silent clients.
	if s.NoOperations != 6 {
		t.Errorf("no-operation combinations = %d, want 6", s.NoOperations)
	}
}

func TestCommunicationBlockedMatchesStaticErrors(t *testing.T) {
	// On Metro with only the Metro client, exactly one combination is
	// blocked (the W3CEndpointReference generation error).
	cfg := Config{
		Servers: []framework.ServerFramework{framework.NewMetroServer()},
		Clients: []framework.ClientFramework{framework.NewMetroClient()},
	}
	res, err := NewRunner(cfg).RunCommunication(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	s := res.Servers["Metro"]
	if s.Blocked != 1 {
		t.Errorf("blocked = %d, want 1", s.Blocked)
	}
	if s.Succeeded != s.Combinations-1 {
		t.Errorf("succeeded = %d, want %d", s.Succeeded, s.Combinations-1)
	}
}

func TestCommOutcomeString(t *testing.T) {
	for _, o := range []CommOutcome{CommBlocked, CommNoOperations, CommFault, CommEchoMismatch, CommOK} {
		if s := o.String(); s == "" || s[0] == 'C' {
			t.Errorf("outcome %d has no friendly name: %q", o, s)
		}
	}
}

// TestCommunicationReparseEquivalence checks that routing the
// communication extension through the shared WSDL analysis cache
// (the default) and re-parsing the published bytes per step
// (Config.Reparse, the ablation) classify every combination the same.
func TestCommunicationReparseEquivalence(t *testing.T) {
	run := func(reparse bool) *CommResult {
		res, err := NewRunner(Config{Limit: 100, Workers: 4, Reparse: reparse}).RunCommunication(context.Background())
		if err != nil {
			t.Fatalf("run (reparse=%v): %v", reparse, err)
		}
		return res
	}
	cached, reparsed := run(false), run(true)
	if !reflect.DeepEqual(cached, reparsed) {
		t.Errorf("outcomes differ between shared-analysis and reparse modes:\ncached:   %+v\nreparsed: %+v",
			cached.Totals(), reparsed.Totals())
	}
}

func TestCommunicationCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewRunner(limitedConfig(300)).RunCommunication(ctx); err == nil {
		t.Error("cancelled context should abort")
	}
}

func TestCommunicationPerClientBreakdown(t *testing.T) {
	r := NewRunner(limitedConfig(150))
	res, err := r.RunCommunication(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.ClientOrder) != 11 {
		t.Fatalf("client order = %v", res.ClientOrder)
	}
	// The per-client breakdown must re-sum to the per-server totals.
	totals := res.Totals()
	var blocked, noOps, succeeded int
	for _, name := range res.ClientOrder {
		c := res.Clients[name]
		blocked += c.Blocked
		noOps += c.NoOperations
		succeeded += c.Succeeded
	}
	if blocked != totals.Blocked || noOps != totals.NoOperations || succeeded != totals.Succeeded {
		t.Errorf("client sums %d/%d/%d != server totals %d/%d/%d",
			blocked, noOps, succeeded, totals.Blocked, totals.NoOperations, totals.Succeeded)
	}
	// The silent failures belong to the five tools that build
	// method-less clients on zero-operation WSDLs.
	for _, name := range []string{"Apache Axis1", "Apache CXF", "JBossWS CXF", "Zend Framework", "suds"} {
		if res.Clients[name].NoOperations == 0 {
			t.Errorf("%s should own silent no-operation combinations", name)
		}
	}
	for _, name := range []string{"Metro", ".NET C#"} {
		if res.Clients[name].NoOperations != 0 {
			t.Errorf("%s rejects zero-operation WSDLs at generation; no silent combos expected", name)
		}
	}
}
