// Package campaign implements the paper's interoperability assessment
// approach — the primary contribution of the reproduction.
//
// The approach has two phases (§III):
//
//	Preparation Phase
//	  a) select server frameworks     b) select client frameworks
//	  c) create test services (one echo service per native class)
//
//	Testing Phase
//	  a) service description generation  (+ WS-I compliance check)
//	  b) client artifact generation
//	  c) client artifact compilation / instantiation
//	  d) results classification, interleaved with a–c
//
// The campaign runner executes every (published service × client
// framework) combination — 7 239 × 11 = 79 629 tests at full scale —
// classifying each step's outcome into errors (no usable output) and
// warnings (output produced, but the tool reported an issue). Errors
// are disruptive: a step that fails stops the pipeline for that test.
package campaign

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"wsinterop/internal/artifact"
	"wsinterop/internal/framework"
	"wsinterop/internal/services"
	"wsinterop/internal/typesys"
	"wsinterop/internal/wsdl"
	"wsinterop/internal/wsi"
)

// Step identifies one of the three tested inter-operation steps.
type Step int

// Testing Phase steps.
const (
	StepDescription Step = iota + 1
	StepGeneration
	StepCompilation
)

// String implements fmt.Stringer.
func (s Step) String() string {
	switch s {
	case StepDescription:
		return "service description generation"
	case StepGeneration:
		return "client artifact generation"
	case StepCompilation:
		return "client artifact compilation"
	default:
		return fmt.Sprintf("Step(%d)", int(s))
	}
}

// Outcome classifies one step of one test: whether the tool reported
// at least one warning and whether it reported at least one error.
// The paper counts tests-with-warnings and tests-with-errors, not
// individual messages.
type Outcome struct {
	Warning bool
	Error   bool
}

// merge folds tool issues into the outcome.
func (o *Outcome) mergeIssues(issues []framework.Issue) {
	for _, i := range issues {
		switch {
		case i.Severity >= artifact.SeverityError:
			o.Error = true
		case i.Severity == artifact.SeverityWarning:
			o.Warning = true
		}
	}
}

func (o *Outcome) mergeDiagnostics(diags []artifact.Diagnostic) {
	for _, d := range diags {
		switch {
		case d.Severity >= artifact.SeverityError:
			o.Error = true
		case d.Severity == artifact.SeverityWarning:
			o.Warning = true
		}
	}
}

// PublishedService is one service that survived the description step:
// its WSDL exists and is ready for client-side testing.
type PublishedService struct {
	Server string
	// Class is the parameter class's fully qualified name.
	Class string
	// Doc is the serialized WSDL as clients will consume it.
	Doc []byte
	// Flagged reports whether the compliance check raised any finding
	// (profile violation or extended finding) — the paper's
	// description-step "warning".
	Flagged bool
	// Compliant reports WS-I (official profile) compliance.
	Compliant bool
}

// TestResult is the classified outcome of one (service × client)
// test.
type TestResult struct {
	Server  string
	Client  string
	Class   string
	Gen     Outcome
	Compile Outcome
	// CompileRan reports whether the third step executed (it is
	// skipped when generation produced no artifacts).
	CompileRan bool
}

// ErrorAnywhere reports whether any executed step errored.
func (t *TestResult) ErrorAnywhere() bool { return t.Gen.Error || t.Compile.Error }

// Cell aggregates the (client × server) combination for Table III.
type Cell struct {
	Tests           int
	GenWarnings     int
	GenErrors       int
	CompileWarnings int
	CompileErrors   int
}

// ClientSummary aggregates one client framework across every server —
// the data behind the paper's §IV.A maturity discussion.
type ClientSummary struct {
	Tests           int
	GenWarnings     int
	GenErrors       int
	CompileWarnings int
	CompileErrors   int
	// ErrorsOnFlagged counts errored tests whose service had been
	// flagged by the description-step compliance check;
	// ErrorsOnClean counts errored tests against unflagged services.
	// The paper observes that mature tools "fail almost only in
	// presence of non WS-I compliant WSDL documents".
	ErrorsOnFlagged int
	ErrorsOnClean   int
}

// Mature reports the paper's §IV.A maturity criterion for compiled
// artifact generators: the tool never produces code that later fails
// or warns at compilation, so all its failures are clean, immediate
// generation errors.
func (c *ClientSummary) Mature() bool {
	return c.CompileErrors == 0 && c.CompileWarnings == 0
}

// ServerSummary aggregates one server framework's column of Fig. 4.
type ServerSummary struct {
	Created  int
	Deployed int
	// DescriptionWarnings counts published services flagged by the
	// compliance check; DescriptionErrors is always zero by
	// construction (undeployable services are excluded, following the
	// paper's optimistic assumption).
	DescriptionWarnings int
	DescriptionErrors   int
	Tests               int
	GenWarnings         int
	GenErrors           int
	CompileWarnings     int
	CompileErrors       int
}

// Result is the complete campaign outcome.
type Result struct {
	// Servers maps server framework name to its Fig. 4 column.
	Servers map[string]*ServerSummary
	// Clients maps client framework name to its cross-server summary.
	Clients map[string]*ClientSummary
	// Matrix maps client name → server name → Table III cell.
	Matrix map[string]map[string]*Cell
	// ServerOrder and ClientOrder preserve the study's presentation
	// order for reporting.
	ServerOrder []string
	ClientOrder []string

	// TotalServices, TotalPublished and TotalTests are the campaign
	// scale numbers (22 024 / 7 239 / 79 629 at full scale).
	TotalServices  int
	TotalPublished int
	TotalTests     int

	// SameFrameworkErrors counts tests where the client and server
	// subsystems belong to the same framework and an error occurred
	// (307 in the study).
	SameFrameworkErrors int
	// InteropErrors counts error situations across the generation and
	// compilation steps.
	InteropErrors int

	// FlaggedServices counts services flagged at the description step
	// (86); FlaggedCleanServices counts those that nevertheless passed
	// every client test without errors (4).
	FlaggedServices      int
	FlaggedCleanServices int
	// UnflaggedFailingServices counts services the compliance check
	// passed without findings that nevertheless errored in at least
	// one client — the paper's "among those that pass, some still
	// present interoperability issues" observation.
	UnflaggedFailingServices int

	// Failures retains every test that errored, in deterministic
	// (service, client) order, when Config.KeepFailures is set. It is
	// the data behind the Table III footnotes (1 588 entries at full
	// scale).
	Failures []TestResult
}

// Config parameterizes a campaign run.
type Config struct {
	// Servers and Clients select the frameworks under test; nil means
	// the full sets of the study.
	Servers []framework.ServerFramework
	Clients []framework.ClientFramework
	// CatalogFor overrides catalog selection per language; nil uses
	// the full study catalogs.
	CatalogFor func(lang typesys.Language) *typesys.Catalog
	// Limit caps the number of classes per catalog (0 = all); used by
	// examples and benchmarks for scaled-down runs.
	Limit int
	// Workers bounds the worker pool; 0 uses GOMAXPROCS.
	Workers int
	// KeepFailures retains per-test detail for every errored test in
	// Result.Failures (the Table III footnote data).
	KeepFailures bool
	// Variant selects the service interface complexity (the paper's
	// future-work extension); zero means services.VariantSimple.
	Variant services.Variant
	// Style selects the SOAP binding style the default servers emit
	// (document/literal when empty); ignored when Servers is set.
	Style wsdl.Style
	// Progress, when non-nil, receives coarse progress notifications
	// from the classification loop: the current stage (server name)
	// and services classified so far out of the stage total. Called
	// from a single goroutine.
	Progress func(stage string, done, total int)
	// Checker overrides the compliance checker; nil uses the default
	// (extended assertions enabled).
	Checker *wsi.Checker
}

// Runner executes campaigns.
type Runner struct {
	cfg     Config
	servers []framework.ServerFramework
	clients []framework.ClientFramework
	checker *wsi.Checker
	// sameFramework maps client name → server name of the same
	// framework, for the same-framework failure statistic.
	sameFramework map[string]string
}

// NewRunner builds a runner from the configuration.
func NewRunner(cfg Config) *Runner {
	r := &Runner{cfg: cfg, servers: cfg.Servers, clients: cfg.Clients, checker: cfg.Checker}
	if r.servers == nil {
		var opts []framework.ServerOption
		if cfg.Style != "" {
			opts = append(opts, framework.WithBindingStyle(cfg.Style))
		}
		r.servers = framework.ServersWithOptions(opts...)
	}
	if r.clients == nil {
		r.clients = framework.Clients()
	}
	if r.checker == nil {
		r.checker = wsi.NewChecker()
	}
	r.sameFramework = map[string]string{
		"Metro":             "Metro",
		"JBossWS CXF":       "JBossWS CXF",
		".NET C#":           "WCF .NET",
		".NET Visual Basic": "WCF .NET",
		".NET JScript":      "WCF .NET",
	}
	return r
}

// catalog selects the class catalog for a language.
func (r *Runner) catalog(lang typesys.Language) *typesys.Catalog {
	if r.cfg.CatalogFor != nil {
		return r.cfg.CatalogFor(lang)
	}
	switch lang {
	case typesys.Java:
		return typesys.JavaCatalog()
	case typesys.CSharp:
		return typesys.CSharpCatalog()
	default:
		return nil
	}
}

// Publish runs the service description generation step for one server
// framework over its catalog, returning the published services and
// the created-service count.
func (r *Runner) Publish(ctx context.Context, server framework.ServerFramework) ([]PublishedService, int, error) {
	cat := r.catalog(server.Language())
	if cat == nil {
		return nil, 0, fmt.Errorf("campaign: no catalog for language %s", server.Language())
	}
	variant := r.cfg.Variant
	if variant == 0 {
		variant = services.VariantSimple
	}
	defs := services.GenerateVariant(cat, variant)
	if r.cfg.Limit > 0 && len(defs) > r.cfg.Limit {
		defs = defs[:r.cfg.Limit]
	}

	type slot struct {
		ok  bool
		svc PublishedService
		err error
	}
	slots := make([]slot, len(defs))

	workers := r.workers()
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				slots[i] = r.publishOne(server, defs[i])
			}
		}()
	}
feed:
	for i := range defs {
		select {
		case <-ctx.Done():
			break feed
		case ch <- i:
		}
	}
	close(ch)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}

	published := make([]PublishedService, 0, len(defs))
	for i := range slots {
		if slots[i].err != nil {
			return nil, 0, slots[i].err
		}
		if slots[i].ok {
			published = append(published, slots[i].svc)
		}
	}
	return published, len(defs), nil
}

func (r *Runner) publishOne(server framework.ServerFramework, def services.Definition) (s struct {
	ok  bool
	svc PublishedService
	err error
}) {
	doc, err := server.Publish(def)
	if err != nil {
		// Not deployable: excluded from further testing (the paper's
		// optimistic assumption at the description step).
		return s
	}
	raw, err := wsdl.Marshal(doc)
	if err != nil {
		s.err = fmt.Errorf("marshal WSDL for %s on %s: %w", def.Parameter.Name, server.Name(), err)
		return s
	}
	report := r.checker.Check(doc)
	s.ok = true
	s.svc = PublishedService{
		Server:    server.Name(),
		Class:     def.Parameter.Name,
		Doc:       raw,
		Flagged:   len(report.Violations) > 0,
		Compliant: report.Compliant(),
	}
	return s
}

func (r *Runner) workers() int {
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// RunTest executes steps 2–3 for one published service against one
// client framework.
func RunTest(client framework.ClientFramework, svc PublishedService) TestResult {
	t := TestResult{Server: svc.Server, Client: client.Name(), Class: svc.Class}
	gen := client.Generate(svc.Doc)
	t.Gen.mergeIssues(gen.Issues)
	if gen.Unit == nil {
		return t
	}
	t.CompileRan = true
	t.Compile.mergeDiagnostics(client.Verify(gen.Unit))
	return t
}

// Run executes the full campaign.
func (r *Runner) Run(ctx context.Context) (*Result, error) {
	res := newResult(r)

	for _, server := range r.servers {
		published, created, err := r.Publish(ctx, server)
		if err != nil {
			return nil, fmt.Errorf("publish on %s: %w", server.Name(), err)
		}
		sum := res.Servers[server.Name()]
		sum.Created = created
		sum.Deployed = len(published)
		res.TotalServices += created
		res.TotalPublished += len(published)
		for i := range published {
			if published[i].Flagged {
				sum.DescriptionWarnings++
				res.FlaggedServices++
			}
		}
		if err := r.runClients(ctx, published, res); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func newResult(r *Runner) *Result {
	res := &Result{
		Servers: make(map[string]*ServerSummary, len(r.servers)),
		Clients: make(map[string]*ClientSummary, len(r.clients)),
		Matrix:  make(map[string]map[string]*Cell, len(r.clients)),
	}
	for _, s := range r.servers {
		res.Servers[s.Name()] = &ServerSummary{}
		res.ServerOrder = append(res.ServerOrder, s.Name())
	}
	for _, c := range r.clients {
		row := make(map[string]*Cell, len(r.servers))
		for _, s := range r.servers {
			row[s.Name()] = &Cell{}
		}
		res.Matrix[c.Name()] = row
		res.Clients[c.Name()] = &ClientSummary{}
		res.ClientOrder = append(res.ClientOrder, c.Name())
	}
	return res
}

// runClients fans the published services of one server out over every
// client framework using a bounded worker pool, then folds the
// classified outcomes into the aggregate result.
func (r *Runner) runClients(ctx context.Context, published []PublishedService, res *Result) error {
	type job struct{ svc, cli int }
	jobs := make(chan job)
	results := make([]TestResult, len(published)*len(r.clients))

	var wg sync.WaitGroup
	for w := 0; w < r.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results[j.svc*len(r.clients)+j.cli] = RunTest(r.clients[j.cli], published[j.svc])
			}
		}()
	}
feed:
	for si := range published {
		for ci := range r.clients {
			select {
			case <-ctx.Done():
				break feed
			case jobs <- job{svc: si, cli: ci}:
			}
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Classification: fold each test into the Fig. 4 and Table III
	// aggregates, plus the headline statistics.
	for si := range published {
		if r.cfg.Progress != nil {
			r.cfg.Progress(published[si].Server, si+1, len(published))
		}
		svc := &published[si]
		cleanEverywhere := true
		for ci := range r.clients {
			t := &results[si*len(r.clients)+ci]
			cell := res.Matrix[t.Client][t.Server]
			sum := res.Servers[t.Server]
			cli := res.Clients[t.Client]

			cell.Tests++
			sum.Tests++
			cli.Tests++
			res.TotalTests++
			if t.Gen.Warning {
				cell.GenWarnings++
				sum.GenWarnings++
				cli.GenWarnings++
			}
			if t.Gen.Error {
				cell.GenErrors++
				sum.GenErrors++
				cli.GenErrors++
				res.InteropErrors++
			}
			if t.CompileRan {
				if t.Compile.Warning {
					cell.CompileWarnings++
					sum.CompileWarnings++
					cli.CompileWarnings++
				}
				if t.Compile.Error {
					cell.CompileErrors++
					sum.CompileErrors++
					cli.CompileErrors++
					res.InteropErrors++
				}
			}
			if t.ErrorAnywhere() {
				cleanEverywhere = false
				if svc.Flagged {
					cli.ErrorsOnFlagged++
				} else {
					cli.ErrorsOnClean++
				}
				if r.sameFramework[t.Client] == t.Server {
					res.SameFrameworkErrors++
				}
				if r.cfg.KeepFailures {
					res.Failures = append(res.Failures, *t)
				}
			}
		}
		if svc.Flagged && cleanEverywhere {
			res.FlaggedCleanServices++
		}
		if !svc.Flagged && !cleanEverywhere {
			res.UnflaggedFailingServices++
		}
	}
	return nil
}
